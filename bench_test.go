package fedsz

// One benchmark per paper table/figure. Each delegates to the experiment
// generator in internal/experiments under a reduced configuration so that
// `go test -bench=.` regenerates every artifact in bounded time; use
// `cmd/fedsz-bench -full` for the high-fidelity sweeps.

import (
	"testing"

	"repro/internal/experiments"
)

// benchConfig is smaller than QuickConfig: benchmarks re-run generators
// b.N times.
func benchConfig() experiments.Config {
	return experiments.Config{
		Seed:         1,
		ProfileScale: 0.02,
		Rounds:       3,
		Clients:      2,
		TrainN:       64,
		TestN:        32,
		ImageSide:    10,
	}
}

func benchExperiment(b *testing.B, id string) {
	gen, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := gen(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1_EBLC(b *testing.B)         { benchExperiment(b, "table1") }
func BenchmarkTable2_Lossless(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkTable3_ModelStats(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkTable4_Datasets(b *testing.B)     { benchExperiment(b, "table4") }
func BenchmarkTable5_Ratios(b *testing.B)       { benchExperiment(b, "table5") }
func BenchmarkFig2_Smoothness(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3_WeightDist(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4_Convergence(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5_AccuracySweep(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6_TimeBreakdown(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7_CommTime(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8_BandwidthSweep(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig9_Scaling(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10_ErrorDist(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkEqn1_Decision(b *testing.B)       { benchExperiment(b, "eqn1") }

func BenchmarkAblatePartition(b *testing.B) { benchExperiment(b, "ablate-partition") }
func BenchmarkAblateThreshold(b *testing.B) { benchExperiment(b, "ablate-threshold") }
func BenchmarkAblateErrorMode(b *testing.B) { benchExperiment(b, "ablate-errormode") }
func BenchmarkAblateLossless(b *testing.B)  { benchExperiment(b, "ablate-lossless") }
func BenchmarkAblateLR(b *testing.B)        { benchExperiment(b, "ablate-lr") }
