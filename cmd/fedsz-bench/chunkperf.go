package main

// Chunk-scaling leg of the perf snapshot: the first multicore measurement
// in the trajectory. The fixture is deliberately skewed — one dominant
// 4M-element tensor plus a tail of small ones — because that is the shape
// where per-tensor parallelism flatlines (the big tensor serializes the
// whole encode) and intra-tensor chunking is the only lever left. The
// chunked legs run the v4 chunk-parallel path on a GOMAXPROCS pool; the
// unchunked legs run the same fixture with chunking disabled. On a 1-CPU
// container the derived speedups hover near 1 (chunk framing overhead
// only); on a ≥4-CPU host they track the chunk fan-out, and the committed
// baseline's class-matched gate in checkPerfBaseline holds them there.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
	"repro/internal/eblctest"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// chunkFixtureElems sizes the dominant tensor: 4M elements = 8 chunks at
// the default 512Ki-element chunk target.
const chunkFixtureElems = 1 << 22

// chunkFixture builds the skewed dict: one fc.weight at chunkFixtureElems
// plus eight small conv tensors and a bias tail.
func chunkFixture() (*tensor.StateDict, int) {
	rng := rand.New(rand.NewPCG(0xC0DE, 0x41C))
	sd := tensor.NewStateDict()
	sd.Add("fc.weight", tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, chunkFixtureElems), 1024, chunkFixtureElems/1024))
	raw := 4 * chunkFixtureElems
	for i := 0; i < 8; i++ {
		sd.Add(fmt.Sprintf("conv%d.weight", i), tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, 4096), 64, 64))
		raw += 4 * 4096
	}
	b := tensor.New(256)
	for j := range b.Data {
		b.Data[j] = float32(0.01 * rng.NormFloat64())
	}
	sd.Add("fc.bias", tensor.KindBias, b)
	raw += 4 * 256
	return sd, raw
}

// measureChunkScaling records the chunked-vs-unchunked encode/decode legs
// and their derived speedups into the snapshot via the caller's record
// closure.
func measureChunkScaling(snap *perfSnapshot, record func(name string, bytesMoved int, fn func(b *testing.B)) perfEntry) error {
	sd, rawBytes := chunkFixture()
	pool := sched.NewPool(0)
	ctx := context.Background()

	legs := []struct {
		name string
		opts core.Options
	}{
		{"chunked", core.Options{}},               // default ChunkElems → 8 chunks on fc.weight
		{"unchunked", core.Options{ChunkElems: -1}}, // v2 layout, per-tensor parallelism only
	}
	encEntries := map[string]perfEntry{}
	decEntries := map[string]perfEntry{}
	for _, leg := range legs {
		stream, _, err := core.CompressWith(ctx, pool, sd, leg.opts)
		if err != nil {
			return err
		}
		var benchErr error
		encEntries[leg.name] = record("chunk_encode_"+leg.name, rawBytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, _, err := core.CompressWith(ctx, pool, sd, leg.opts)
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				sched.PutBytes(out)
			}
		})
		if benchErr != nil {
			return benchErr
		}
		decEntries[leg.name] = record("chunk_decode_"+leg.name, rawBytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, _, err := core.DecompressWith(ctx, pool, stream)
				if err != nil {
					benchErr = err
					b.Fatal(err)
				}
				core.Release(got)
			}
		})
		if benchErr != nil {
			return benchErr
		}
	}
	if s := encEntries["chunked"].NsPerOp; s > 0 {
		snap.Derived["chunk_encode_speedup"] = encEntries["unchunked"].NsPerOp / s
	}
	if s := decEntries["chunked"].NsPerOp; s > 0 {
		snap.Derived["chunk_decode_speedup"] = decEntries["unchunked"].NsPerOp / s
	}
	return nil
}
