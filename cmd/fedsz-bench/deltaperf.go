package main

// Delta-ratio leg of the perf snapshot: a 12-round FedAvg sim on the
// fl test fixture (seed 42), with every client update compressed twice —
// absolute (v2) and residual against the round's broadcast global (v3) —
// so the snapshot records bytes-per-round for both paths and the reduction
// the cross-round delta mode buys. The baseline check gates the reduction:
// once a committed baseline records delta_reduction, later sessions may not
// let it fall below deltaReductionFloor.

import (
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ebcl"
	"repro/internal/fl"
	"repro/internal/nn/models"
	"repro/internal/tensor"
)

// deltaReductionFloor is the acceptance bar for the delta mode: residual
// streams must cut bytes-per-round by at least this fraction versus
// absolute streams on the convergence fixture.
const deltaReductionFloor = 0.25

// deltaRatioRounds/deltaRatioSeed pin the sim to the fl package's 12-round
// seed-42 convergence fixture so the snapshot numbers and the test-suite
// behaviour describe the same run.
const (
	deltaRatioRounds = 12
	deltaRatioSeed   = 42
)

// measureDeltaRatio trains the fixture federation and accounts both
// encodings of every client update, filling the delta_* derived metrics.
func measureDeltaRatio(prog io.Writer, snap *perfSnapshot) error {
	const nClients = 4
	cfg, err := dataset.ScaledConfig("cifar10", 12, 192, 64, deltaRatioSeed)
	if err != nil {
		return err
	}
	train, _ := dataset.Generate(cfg)
	shards := dataset.ShardIID(train, nClients, deltaRatioSeed)
	in := models.Input{Channels: cfg.Channels, Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes}
	rng := rand.New(rand.NewPCG(deltaRatioSeed, 1))
	global, err := models.BuildMini("alexnet", rng, in)
	if err != nil {
		return err
	}
	clients := make([]*fl.Client, nClients)
	for i := range clients {
		crng := rand.New(rand.NewPCG(deltaRatioSeed, uint64(i)+10))
		net, err := models.BuildMini("alexnet", crng, in)
		if err != nil {
			return err
		}
		clients[i] = fl.NewClient(i, net, shards[i], 16, 0.02, deltaRatioSeed)
	}

	opts := core.Options{LossyParams: ebcl.Rel(1e-2)}
	absBytes, deltaBytes := 0, 0
	var acc *tensor.StateDict
	t0 := time.Now()
	for round := 0; round < deltaRatioRounds; round++ {
		gsd := global.StateDict()
		acc = gsd.ZeroInto(acc)
		for _, c := range clients {
			if err := c.Net.LoadStateDict(gsd); err != nil {
				return err
			}
			c.TrainEpochs(1)
			sd := c.Net.StateDict()
			absStream, _, err := core.Compress(sd, opts)
			if err != nil {
				return err
			}
			absBytes += len(absStream)
			dOpts := opts
			dOpts.Reference, dOpts.RefEpoch = gsd, uint32(round+1)
			dStream, _, err := core.Compress(sd, dOpts)
			if err != nil {
				return err
			}
			deltaBytes += len(dStream)
			if err := acc.AddScaled(sd, 1/float32(nClients)); err != nil {
				return err
			}
		}
		if err := global.LoadStateDict(acc); err != nil {
			return err
		}
	}
	reduction := 1 - float64(deltaBytes)/float64(absBytes)
	snap.Derived["delta_abs_bytes_per_round"] = float64(absBytes) / deltaRatioRounds
	snap.Derived["delta_bytes_per_round"] = float64(deltaBytes) / deltaRatioRounds
	snap.Derived["delta_reduction"] = reduction
	fmt.Fprintf(prog, "%-28s %12.0f B/round abs %10.0f B/round delta  (%.1f%% saved, %d rounds in %v)\n",
		"delta_ratio", float64(absBytes)/deltaRatioRounds, float64(deltaBytes)/deltaRatioRounds,
		100*reduction, deltaRatioRounds, time.Since(t0).Round(time.Millisecond))
	return nil
}
