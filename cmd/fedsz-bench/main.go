// Command fedsz-bench regenerates the tables and figures of the FedSZ paper
// (Wilkins et al., IPDPS 2024) from this module's from-scratch
// implementation, and simulates the aggregation-server ingest path that
// motivates the paper's Equation 1.
//
// Usage:
//
//	fedsz-bench                  # run every experiment at quick fidelity
//	fedsz-bench -run fig8        # run one experiment
//	fedsz-bench -run table1,fig4 # run a comma-separated subset
//	fedsz-bench -full            # high-fidelity settings (slower)
//	fedsz-bench -list            # list experiment IDs
//
// Server-ingest simulation (batched decode, paper Eqn 1):
//
//	fedsz-bench -clients 64 -parallel 8      # 64 client streams, 8-way budget
//	fedsz-bench -clients 64 -rounds 5 -scale 0.05
//
// One process stands in for an aggregation server receiving N concurrent
// client streams per round; it reports per-round decode wall time and
// throughput for a serial decoder versus the shared-pool parallel decoder,
// plus the Eqn-1 compress/don't-compress decision on a constrained link.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/nn/models"
	"repro/internal/sched"
	"repro/internal/tensor"
)

func main() {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		full     = flag.Bool("full", false, "high-fidelity configuration (slower)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		seed     = flag.Uint64("seed", 1, "base seed for synthetic data and training")
		clients  = flag.Int("clients", 0, "simulate an aggregation server ingesting N client streams (0 = run experiments instead)")
		parallel = flag.Int("parallel", 0, "decode parallelism budget shared across the batch (0 = GOMAXPROCS)")
		rounds   = flag.Int("rounds", 3, "ingest rounds to simulate (with -clients)")
		scale    = flag.Float64("scale", 0.05, "model profile scale (with -clients)")
		model    = flag.String("model", "alexnet", "profile model for client updates (with -clients)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *clients > 0 {
		if err := runServerSim(os.Stdout, *clients, *parallel, *rounds, *model, *scale, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.QuickConfig()
	if *full {
		cfg = experiments.FullConfig()
	}
	cfg.Seed = *seed

	var ids []string
	if *runIDs == "" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*runIDs, ",")
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Printf("FedSZ reproduction harness — %d experiment(s), %s mode, seed %d\n\n", len(ids), mode, cfg.Seed)

	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		gen, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			failed++
			continue
		}
		t0 := time.Now()
		table, err := gen(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(table.Render())
		fmt.Printf("(%s generated in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runServerSim plays one process as the aggregation server of the paper's
// Eqn-1 scenario: nClients updates arrive each round and must be decoded
// before FedAvg can aggregate. It compares the serial seed-style decoder
// against the shared-pool batched decoder at the requested budget.
func runServerSim(w io.Writer, nClients, parallelism, rounds int, model string, scale float64, seed uint64) error {
	// Synthesize per-client updates: same architecture, different weights,
	// like a real round's worth of client deltas.
	updates := make([]*tensor.StateDict, nClients)
	for i := range updates {
		rng := rand.New(rand.NewPCG(seed, uint64(i)+1))
		sd, err := models.BuildProfile(model, rng, scale)
		if err != nil {
			return err
		}
		updates[i] = sd
	}
	rawBytes := 0
	for _, sd := range updates {
		rawBytes += sd.SizeBytes()
	}

	t0 := time.Now()
	streams, _, err := core.CompressAll(updates, core.Options{LossyParams: ebcl.Rel(1e-2)}, parallelism)
	if err != nil {
		return err
	}
	tC := time.Since(t0)
	wireBytes := 0
	for _, s := range streams {
		wireBytes += len(s)
	}

	fmt.Fprintf(w, "server ingest simulation: %d clients × %s profile (scale %g)\n", nClients, model, scale)
	fmt.Fprintf(w, "raw %d B -> wire %d B (ratio %.2fx), batch compress %v\n\n",
		rawBytes, wireBytes, float64(rawBytes)/float64(wireBytes), tC.Round(time.Millisecond))

	fmt.Fprintf(w, "%-10s %-8s %-14s %-14s %-12s\n", "decoder", "round", "decode time", "streams/s", "MB/s (raw)")
	for _, mode := range []struct {
		label string
		par   int
	}{
		{"serial", 1},
		{fmt.Sprintf("pool(%d)", sched.NewPool(parallelism).Parallelism()), parallelism},
	} {
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			decoded, _, err := core.DecompressAll(streams, mode.par)
			if err != nil {
				return err
			}
			dur := time.Since(t0)
			if len(decoded) != nClients {
				return fmt.Errorf("decoded %d of %d streams", len(decoded), nClients)
			}
			fmt.Fprintf(w, "%-10s %-8d %-14v %-14.1f %-12.1f\n",
				mode.label, r, dur.Round(time.Microsecond),
				float64(nClients)/dur.Seconds(),
				float64(rawBytes)/dur.Seconds()/1e6)
		}
	}

	// Eqn 1 on the edge uplink: does compression pay off per client? The
	// per-client tC/tD are measured on a single update/stream — an edge
	// client compresses alone and cannot amortize the batch parallelism,
	// so dividing the batch wall time by N would understate its cost.
	t0 = time.Now()
	if _, _, err := core.Compress(updates[0], core.Options{LossyParams: ebcl.Rel(1e-2)}); err != nil {
		return err
	}
	tC1 := time.Since(t0)
	t0 = time.Now()
	if _, _, err := core.Decompress(streams[0]); err != nil {
		return err
	}
	tD1 := time.Since(t0)
	perClientRaw := rawBytes / nClients
	perClientWire := wireBytes / nClients
	link := netsim.EdgeLink
	dec := netsim.ShouldCompress(tC1, tD1, perClientRaw, perClientWire, link)
	fmt.Fprintf(w, "\nEqn 1 @ %.0f Mbps: compress=%v (compressed %v vs raw %v per client)\n",
		link.BandwidthMbps, dec.Compress,
		dec.CompressedTime.Round(time.Microsecond), dec.UncompressedTime.Round(time.Microsecond))
	return nil
}
