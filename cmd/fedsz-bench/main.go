// Command fedsz-bench regenerates the tables and figures of the FedSZ paper
// (Wilkins et al., IPDPS 2024) from this module's from-scratch
// implementation.
//
// Usage:
//
//	fedsz-bench                  # run every experiment at quick fidelity
//	fedsz-bench -run fig8        # run one experiment
//	fedsz-bench -run table1,fig4 # run a comma-separated subset
//	fedsz-bench -full            # high-fidelity settings (slower)
//	fedsz-bench -list            # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		runIDs = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		full   = flag.Bool("full", false, "high-fidelity configuration (slower)")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		seed   = flag.Uint64("seed", 1, "base seed for synthetic data and training")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.QuickConfig()
	if *full {
		cfg = experiments.FullConfig()
	}
	cfg.Seed = *seed

	var ids []string
	if *runIDs == "" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*runIDs, ",")
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Printf("FedSZ reproduction harness — %d experiment(s), %s mode, seed %d\n\n", len(ids), mode, cfg.Seed)

	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		gen, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			failed++
			continue
		}
		t0 := time.Now()
		table, err := gen(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(table.Render())
		fmt.Printf("(%s generated in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
