// Command fedsz-bench regenerates the tables and figures of the FedSZ paper
// (Wilkins et al., IPDPS 2024) from this module's from-scratch
// implementation, and simulates the aggregation-server ingest path that
// motivates the paper's Equation 1.
//
// Usage:
//
//	fedsz-bench                  # run every experiment at quick fidelity
//	fedsz-bench -run fig8        # run one experiment
//	fedsz-bench -run table1,fig4 # run a comma-separated subset
//	fedsz-bench -full            # high-fidelity settings (slower)
//	fedsz-bench -list            # list experiment IDs
//
// Server-ingest simulation (batched decode, paper Eqn 1):
//
//	fedsz-bench -clients 64 -parallel 8      # 64 client streams, 8-way budget
//	fedsz-bench -clients 64 -rounds 5 -scale 0.05
//
// One process stands in for an aggregation server receiving N concurrent
// client streams per round; it reports per-round decode wall time and
// throughput for a serial decoder versus the shared-pool parallel decoder,
// plus the Eqn-1 compress/don't-compress decision on a constrained link.
//
// Streaming ingest over real sockets (decode-while-receiving):
//
//	fedsz-bench -serve -clients 32                # loopback server + 32 uploads
//	fedsz-bench -serve -clients 32 -mbps 100      # throttle each uplink to 100 Mbps
//	fedsz-bench -serve -clients 32 -upload host:9464  # upload to a running fedsz-serve
//
// Unlike -clients alone (in-memory byte slices), -serve moves every update
// through the internal/wire framing and a TCP socket into the streaming
// aggregation server, and reports updates/s, bytes/s, and the
// decode/receive overlap ratio against the serial and batched in-memory
// baselines.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/experiments"
	"repro/internal/flserve"
	"repro/internal/netsim"
	"repro/internal/nn/models"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

func main() {
	var (
		runIDs   = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		full     = flag.Bool("full", false, "high-fidelity configuration (slower)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		seed     = flag.Uint64("seed", 1, "base seed for synthetic data and training")
		clients  = flag.Int("clients", 0, "simulate an aggregation server ingesting N client streams (0 = run experiments instead)")
		parallel = flag.Int("parallel", 0, "decode parallelism budget shared across the batch (0 = GOMAXPROCS)")
		rounds   = flag.Int("rounds", 3, "ingest rounds to simulate (with -clients)")
		scale    = flag.Float64("scale", 0.05, "model profile scale (with -clients)")
		model    = flag.String("model", "alexnet", "profile model for client updates (with -clients)")
		serve    = flag.Bool("serve", false, "stream the client updates over TCP into the flserve aggregation server (with -clients)")
		mbps     = flag.Float64("mbps", 0, "throttle each client uplink to this bandwidth (with -serve; 0 = unthrottled)")
		upload   = flag.String("upload", "", "upload to an external fedsz-serve at this address instead of an in-process server (with -serve)")
		jsonOut  = flag.String("json", "", "measure the entropy stage + SZ2/SZ3 codec paths and write a machine-readable perf snapshot to this path ('-' for stdout)")
		baseline = flag.String("baseline", "", "diff the -json snapshot against this committed baseline's schema (fields present, no NaNs)")
		tracePth = flag.String("trace", "", "write JSONL trace events (phase spans, per-connection/update events) to this path ('-' for stderr)")
	)
	flag.Parse()

	var tracer *telemetry.Tracer
	if *tracePth != "" {
		tw := io.Writer(os.Stderr)
		if *tracePth != "-" {
			f, err := os.Create(*tracePth)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			tw = f
		}
		tracer = telemetry.NewTracer(tw)
		defer func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			}
		}()
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *jsonOut != "" {
		if err := runPerfSnapshot(os.Stdout, *jsonOut, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *serve {
		if *clients <= 0 {
			*clients = 32
		}
		if err := runStreamSim(os.Stdout, *clients, *parallel, *mbps, *model, *scale, *seed, *upload, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clients > 0 {
		if err := runServerSim(os.Stdout, *clients, *parallel, *rounds, *model, *scale, *seed, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.QuickConfig()
	if *full {
		cfg = experiments.FullConfig()
	}
	cfg.Seed = *seed

	var ids []string
	if *runIDs == "" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*runIDs, ",")
	}

	mode := "quick"
	if *full {
		mode = "full"
	}
	fmt.Printf("FedSZ reproduction harness — %d experiment(s), %s mode, seed %d\n\n", len(ids), mode, cfg.Seed)

	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		gen, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			failed++
			continue
		}
		t0 := time.Now()
		table, err := gen(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(table.Render())
		fmt.Printf("(%s generated in %v)\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// buildUpdates synthesizes per-client updates (same architecture,
// different weights, like a real round's worth of deltas) and their
// compressed streams.
func buildUpdates(nClients int, model string, scale float64, seed uint64, parallelism int) (updates []*tensor.StateDict, streams [][]byte, rawBytes, wireBytes int, err error) {
	updates = make([]*tensor.StateDict, nClients)
	for i := range updates {
		rng := rand.New(rand.NewPCG(seed, uint64(i)+1))
		sd, err := models.BuildProfile(model, rng, scale)
		if err != nil {
			return nil, nil, 0, 0, err
		}
		updates[i] = sd
		rawBytes += sd.SizeBytes()
	}
	streams, _, err = core.CompressAll(context.Background(), updates, core.Options{LossyParams: ebcl.Rel(1e-2)}, parallelism)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	for _, s := range streams {
		wireBytes += len(s)
	}
	return updates, streams, rawBytes, wireBytes, nil
}

// runStreamSim measures the full streaming ingest path — wire framing,
// TCP loopback, decode-while-receiving, incremental FedAvg fold — against
// the serial and batched in-memory decoders on the same payloads.
func runStreamSim(w io.Writer, nClients, parallelism int, mbps float64, model string, scale float64, seed uint64, uploadAddr string, tracer *telemetry.Tracer) error {
	buildSpan := tracer.Span("build_updates", telemetry.A("clients", nClients), telemetry.A("model", model))
	updates, streams, rawBytes, wireBytes, err := buildUpdates(nClients, model, scale, seed, parallelism)
	buildSpan.End(telemetry.A("raw_bytes", rawBytes), telemetry.A("wire_bytes", wireBytes))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "streaming ingest: %d clients × %s profile (scale %g)\n", nClients, model, scale)
	fmt.Fprintf(w, "raw %d B -> wire %d B (ratio %.2fx)\n\n", rawBytes, wireBytes, float64(rawBytes)/float64(wireBytes))

	report := func(label string, dur time.Duration, note string) {
		fmt.Fprintf(w, "%-14s %-14v %10.1f updates/s %10.1f MB/s (raw) %s\n",
			label, dur.Round(time.Microsecond),
			float64(nClients)/dur.Seconds(), float64(rawBytes)/dur.Seconds()/1e6, note)
	}

	// In-memory baselines: the PR-1 batched path at budget 1 and at the
	// requested budget.
	for _, mode := range []struct {
		label string
		par   int
	}{
		{"serial", 1},
		{fmt.Sprintf("batched(%d)", sched.NewPool(parallelism).Parallelism()), parallelism},
	} {
		sp := tracer.Span("baseline_decode", telemetry.A("mode", mode.label))
		t0 := time.Now()
		if _, _, err := core.DecompressAll(context.Background(), streams, mode.par); err != nil {
			return err
		}
		sp.End()
		report(mode.label, time.Since(t0), "")
	}

	// Streaming path: wire frames over TCP into the aggregation server.
	addr := uploadAddr
	var srv *flserve.Server
	var agg flserve.Aggregator
	if addr == "" {
		srv, err = flserve.Listen("127.0.0.1:0", flserve.Config{Parallel: parallelism, Handler: agg.Add, Tracer: tracer})
		if err != nil {
			return err
		}
		addr = srv.Addr().String()
	}
	uploadSpan := tracer.Span("stream_upload", telemetry.A("clients", nClients), telemetry.A("mbps", mbps))
	link := netsim.Link{BandwidthMbps: mbps}
	errs := make([]error, nClients)
	t0 := time.Now()
	var wg sync.WaitGroup
	for i, s := range streams {
		wg.Add(1)
		go func(i int, s []byte) {
			defer wg.Done()
			c := &flserve.Client{Addr: addr, Link: link}
			errs[i] = c.Upload(context.Background(), uint32(i), s)
		}(i, s)
	}
	wg.Wait()
	dur := time.Since(t0)
	uploadSpan.End()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d upload: %w", i, err)
		}
	}
	if srv == nil {
		report("upload", dur, fmt.Sprintf("(remote %s; see its summary for overlap)", uploadAddr))
		return nil
	}
	if err := srv.Close(); err != nil {
		return err
	}
	st := srv.Stats()
	note := fmt.Sprintf("overlap %.2f", st.OverlapRatio())
	if mbps > 0 {
		note += fmt.Sprintf(" @ %g Mbps/client", mbps)
	}
	report("streamed", dur, note)
	if n := agg.Count(); n != nClients {
		return fmt.Errorf("aggregated %d of %d updates", n, nClients)
	}
	fmt.Fprintf(w, "\ndecode work %v, read wait %v across %d connections\n",
		st.DecodeWork.Round(time.Microsecond), st.ReadWait.Round(time.Microsecond), st.Updates)
	fmt.Fprintf(w, "overlap ratio %.2f: fraction of decode hidden behind receive\n", st.OverlapRatio())

	// Streaming *encode* path: each client compresses straight into its
	// socket (core.CompressSections → wire frames), so upload overlaps the
	// encode — the client-side mirror of the server's overlap above.
	var agg2 flserve.Aggregator
	srv2, err := flserve.Listen("127.0.0.1:0", flserve.Config{Parallel: parallelism, Handler: agg2.Add, Tracer: tracer})
	if err != nil {
		return err
	}
	encSpan := tracer.Span("stream_encode_upload", telemetry.A("clients", nClients))
	// Each client encodes on a pool with at least one helper so section
	// writes can overlap later tensors' compression even on 1-CPU hosts
	// (a helper compresses while the caller sleeps in the throttled
	// write; a serial pool would compress inline, strictly before writes).
	encPool := sched.NewPool(max(2, sched.NewPool(parallelism).Parallelism()))
	encOverlap := make([]float64, nClients)
	errs = make([]error, nClients)
	t0 = time.Now()
	for i, sd := range updates {
		wg.Add(1)
		go func(i int, sd *tensor.StateDict) {
			defer wg.Done()
			c := &flserve.Client{Addr: srv2.Addr().String(), Link: link}
			stats, err := c.UploadState(context.Background(), uint32(i), sd,
				core.Options{LossyParams: ebcl.Rel(1e-2)}, encPool)
			if err != nil {
				errs[i] = err
				return
			}
			encOverlap[i] = stats.EncodeOverlapRatio()
		}(i, sd)
	}
	wg.Wait()
	dur = time.Since(t0)
	encSpan.End()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d streaming-encode upload: %w", i, err)
		}
	}
	if err := srv2.Close(); err != nil {
		return err
	}
	meanEnc := 0.0
	for _, r := range encOverlap {
		meanEnc += r / float64(nClients)
	}
	report("stream-enc", dur, fmt.Sprintf("encode overlap %.2f (client side, compress-while-send)", meanEnc))
	if n := agg2.Count(); n != nClients {
		return fmt.Errorf("stream-enc aggregated %d of %d updates", n, nClients)
	}
	return nil
}

// runServerSim plays one process as the aggregation server of the paper's
// Eqn-1 scenario: nClients updates arrive each round and must be decoded
// before FedAvg can aggregate. It compares the serial seed-style decoder
// against the shared-pool batched decoder at the requested budget.
func runServerSim(w io.Writer, nClients, parallelism, rounds int, model string, scale float64, seed uint64, tracer *telemetry.Tracer) error {
	// Synthesize per-client updates: same architecture, different weights,
	// like a real round's worth of client deltas.
	updates := make([]*tensor.StateDict, nClients)
	for i := range updates {
		rng := rand.New(rand.NewPCG(seed, uint64(i)+1))
		sd, err := models.BuildProfile(model, rng, scale)
		if err != nil {
			return err
		}
		updates[i] = sd
	}
	rawBytes := 0
	for _, sd := range updates {
		rawBytes += sd.SizeBytes()
	}

	compressSpan := tracer.Span("batch_compress", telemetry.A("clients", nClients), telemetry.A("model", model))
	t0 := time.Now()
	streams, _, err := core.CompressAll(context.Background(), updates, core.Options{LossyParams: ebcl.Rel(1e-2)}, parallelism)
	if err != nil {
		return err
	}
	tC := time.Since(t0)
	compressSpan.End(telemetry.A("raw_bytes", rawBytes))
	wireBytes := 0
	for _, s := range streams {
		wireBytes += len(s)
	}

	fmt.Fprintf(w, "server ingest simulation: %d clients × %s profile (scale %g)\n", nClients, model, scale)
	fmt.Fprintf(w, "raw %d B -> wire %d B (ratio %.2fx), batch compress %v\n\n",
		rawBytes, wireBytes, float64(rawBytes)/float64(wireBytes), tC.Round(time.Millisecond))

	fmt.Fprintf(w, "%-10s %-8s %-14s %-14s %-12s\n", "decoder", "round", "decode time", "streams/s", "MB/s (raw)")
	for _, mode := range []struct {
		label string
		par   int
	}{
		{"serial", 1},
		{fmt.Sprintf("pool(%d)", sched.NewPool(parallelism).Parallelism()), parallelism},
	} {
		for r := 0; r < rounds; r++ {
			sp := tracer.Span("decode_round", telemetry.A("mode", mode.label), telemetry.A("round", r))
			t0 := time.Now()
			decoded, _, err := core.DecompressAll(context.Background(), streams, mode.par)
			if err != nil {
				return err
			}
			dur := time.Since(t0)
			sp.End(telemetry.A("streams", len(decoded)))
			if len(decoded) != nClients {
				return fmt.Errorf("decoded %d of %d streams", len(decoded), nClients)
			}
			fmt.Fprintf(w, "%-10s %-8d %-14v %-14.1f %-12.1f\n",
				mode.label, r, dur.Round(time.Microsecond),
				float64(nClients)/dur.Seconds(),
				float64(rawBytes)/dur.Seconds()/1e6)
		}
	}

	// Eqn 1 on the edge uplink: does compression pay off per client? The
	// per-client tC/tD are measured on a single update/stream — an edge
	// client compresses alone and cannot amortize the batch parallelism,
	// so dividing the batch wall time by N would understate its cost.
	t0 = time.Now()
	if _, _, err := core.Compress(updates[0], core.Options{LossyParams: ebcl.Rel(1e-2)}); err != nil {
		return err
	}
	tC1 := time.Since(t0)
	t0 = time.Now()
	if _, _, err := core.Decompress(streams[0]); err != nil {
		return err
	}
	tD1 := time.Since(t0)
	perClientRaw := rawBytes / nClients
	perClientWire := wireBytes / nClients
	link := netsim.EdgeLink
	dec := netsim.ShouldCompress(tC1, tD1, perClientRaw, perClientWire, link)
	fmt.Fprintf(w, "\nEqn 1 @ %.0f Mbps: compress=%v (compressed %v vs raw %v per client)\n",
		link.BandwidthMbps, dec.Compress,
		dec.CompressedTime.Round(time.Microsecond), dec.UncompressedTime.Round(time.Microsecond))
	return nil
}
