package main

import (
	"strings"
	"testing"
)

// TestServerSimSmoke drives the -clients/-parallel aggregation-server
// simulation at quickstart size and checks the report structure.
func TestServerSimSmoke(t *testing.T) {
	var sb strings.Builder
	if err := runServerSim(&sb, 4, 2, 1, "alexnet", 0.01, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"server ingest simulation", "serial", "pool(2)", "Eqn 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestServerSimRejectsUnknownModel(t *testing.T) {
	var sb strings.Builder
	if err := runServerSim(&sb, 2, 1, 1, "nope", 0.01, 1); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

// TestStreamSimSmoke drives the -serve streaming ingest at quickstart size:
// in-memory baselines plus a real loopback server round.
func TestStreamSimSmoke(t *testing.T) {
	var sb strings.Builder
	if err := runStreamSim(&sb, 6, 2, 0, "alexnet", 0.01, 1, ""); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"streaming ingest", "serial", "batched(2)", "streamed", "overlap ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestStreamSimRejectsUnknownModel(t *testing.T) {
	var sb strings.Builder
	if err := runStreamSim(&sb, 2, 1, 0, "nope", 0.01, 1, ""); err == nil {
		t.Fatal("expected error for unknown model")
	}
}
