package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestServerSimSmoke drives the -clients/-parallel aggregation-server
// simulation at quickstart size and checks the report structure.
func TestServerSimSmoke(t *testing.T) {
	var sb strings.Builder
	if err := runServerSim(&sb, 4, 2, 1, "alexnet", 0.01, 1, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"server ingest simulation", "serial", "pool(2)", "Eqn 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestServerSimRejectsUnknownModel(t *testing.T) {
	var sb strings.Builder
	if err := runServerSim(&sb, 2, 1, 1, "nope", 0.01, 1, nil); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

// TestStreamSimSmoke drives the -serve streaming ingest at quickstart size:
// in-memory baselines plus a real loopback server round. A tracer rides
// along and must produce one intact JSONL span per phase plus the server's
// per-connection/per-update events.
func TestStreamSimSmoke(t *testing.T) {
	var sb strings.Builder
	var traceBuf bytes.Buffer
	tracer := telemetry.NewTracer(&traceBuf)
	if err := runStreamSim(&sb, 6, 2, 0, "alexnet", 0.01, 1, "", tracer); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"streaming ingest", "serial", "batched(2)", "streamed", "overlap ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}
	events := map[string]int{}
	sc := bufio.NewScanner(&traceBuf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad trace line %q: %v", sc.Text(), err)
		}
		ev, _ := m["event"].(string)
		events[ev]++
	}
	for _, want := range []string{"build_updates", "baseline_decode", "stream_upload", "conn", "update", "stream_encode_upload"} {
		if events[want] == 0 {
			t.Fatalf("trace missing %q events (have %v)", want, events)
		}
	}
	if events["update"] < 12 { // 6 streamed + 6 stream-encoded
		t.Fatalf("trace has %d update events, want >= 12", events["update"])
	}
}

func TestStreamSimRejectsUnknownModel(t *testing.T) {
	var sb strings.Builder
	if err := runStreamSim(&sb, 2, 1, 0, "nope", 0.01, 1, "", nil); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

// TestPerfSnapshotSmoke drives the -json perf-snapshot mode end to end and
// validates the written record. Skipped under -short: testing.Benchmark
// targets ~1s per entry, so the full snapshot takes ~10s.
func TestPerfSnapshotSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf snapshot runs full benchmarks; skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "perf.json")
	var sb strings.Builder
	if err := runPerfSnapshot(&sb, path, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap perfSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Schema != perfSchema {
		t.Fatalf("schema %q want %q", snap.Schema, perfSchema)
	}
	names := map[string]bool{}
	for _, e := range snap.Benchmarks {
		if e.NsPerOp <= 0 {
			t.Fatalf("%s: non-positive ns/op %g", e.Name, e.NsPerOp)
		}
		names[e.Name] = true
	}
	for _, want := range []string{
		"huffman_decode_table", "huffman_decode_reference",
		"huffman_encode_bulk", "huffman_decode_bulk",
		"sz2_compress", "sz2_decompress", "sz3_compress", "sz3_decompress",
		"chunk_encode_chunked", "chunk_encode_unchunked",
		"chunk_decode_chunked", "chunk_decode_unchunked",
	} {
		if !names[want] {
			t.Fatalf("snapshot missing benchmark %q (have %v)", want, names)
		}
	}
	if s := snap.Derived["huffman_decode_speedup_table_vs_reference"]; s <= 1 {
		t.Fatalf("table decoder not faster than reference (speedup %.2f)", s)
	}
}

// TestChunkSpeedupGateClassMatched locks the multicore gate's CPU-class
// matching: the chunk speedup floor applies only when both the committed
// baseline and the current host are multicore-class, so a 1-CPU CI
// container can diff a workstation baseline without false failures.
func TestChunkSpeedupGateClassMatched(t *testing.T) {
	writeBaseline := func(t *testing.T, numCPU int, speedup float64) string {
		t.Helper()
		base := perfSnapshot{
			Schema: perfSchema,
			NumCPU: numCPU,
			Derived: map[string]float64{
				"chunk_encode_speedup": speedup,
				"chunk_decode_speedup": speedup,
			},
		}
		data, err := json.Marshal(&base)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "base.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	snap := func(numCPU int, speedup float64) *perfSnapshot {
		return &perfSnapshot{
			Schema: perfSchema,
			NumCPU: numCPU,
			Derived: map[string]float64{
				"chunk_encode_speedup": speedup,
				"chunk_decode_speedup": speedup,
			},
		}
	}

	// Class mismatch in either direction: floor never applies.
	if err := checkPerfBaseline(snap(1, 0.9), writeBaseline(t, 8, 3.0)); err != nil {
		t.Fatalf("1-CPU host vs 8-CPU baseline should pass, got %v", err)
	}
	if err := checkPerfBaseline(snap(8, 0.9), writeBaseline(t, 1, 1.0)); err != nil {
		t.Fatalf("8-CPU host vs 1-CPU baseline should pass, got %v", err)
	}
	// Both multicore-class: the floor gates.
	if err := checkPerfBaseline(snap(8, 1.2), writeBaseline(t, 8, 3.0)); err == nil {
		t.Fatal("sub-floor speedup on a class-matched multicore host must fail")
	}
	if err := checkPerfBaseline(snap(8, 2.5), writeBaseline(t, 8, 3.0)); err != nil {
		t.Fatalf("above-floor speedup should pass, got %v", err)
	}
}
