package main

// Perf-snapshot mode (-json): measures the entropy stage and the SZ2/SZ3
// codec paths with testing.Benchmark and writes a machine-readable JSON
// record. Committed snapshots (BENCH_PR3.json, ...) form the performance
// trajectory across PRs: later sessions diff their snapshot against the
// checked-in baselines instead of eyeballing benchmark logs.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bitio"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/huffman"
	"repro/internal/sched"
	"repro/internal/sz2"
	"repro/internal/sz3"
)

// perfSchema versions the snapshot layout for future tooling.
const perfSchema = "fedsz-perf/1"

type perfEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type perfSnapshot struct {
	Schema    string `json:"schema"`
	CreatedAt string `json:"created_at"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS and NumCPU record the host's effective and physical
	// parallelism: committed baselines from a multicore workstation and a
	// 1-2 CPU CI container are otherwise indistinguishable, which is
	// exactly the ROADMAP's multicore-vs-CI ambiguity.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Pool hit/miss deltas (byte and float32 pools) observed across the
	// whole benchmark run: a healthy zero-copy hot path shows hits
	// dominating once the pools are warm.
	PoolHits        uint64             `json:"pool_hits"`
	PoolMisses      uint64             `json:"pool_misses"`
	FloatPoolHits   uint64             `json:"float_pool_hits"`
	FloatPoolMisses uint64             `json:"float_pool_misses"`
	Benchmarks      []perfEntry        `json:"benchmarks"`
	Derived         map[string]float64 `json:"derived"`
}

// quantSymbols synthesizes an SZ2-shaped quantization-code stream: tight
// normal mass at the alphabet center plus occasional escapes.
func quantSymbols(n int) []uint16 {
	rng := rand.New(rand.NewPCG(42, 1105))
	syms := make([]uint16, n)
	for i := range syms {
		if rng.IntN(512) == 0 {
			syms[i] = ebcl.EscapeCode
			continue
		}
		v := ebcl.QuantRadius + int(rng.NormFloat64()*6)
		if v < 1 {
			v = 1
		}
		if v >= ebcl.QuantAlphabet {
			v = ebcl.QuantAlphabet - 1
		}
		syms[i] = uint16(v)
	}
	return syms
}

// allocGated reports whether a benchmark participates in the
// alloc-regression gate: the sz2/sz3 compress and decompress legs — the
// round trip the zero-copy contract exists to keep allocation-free.
func allocGated(name string) bool {
	return strings.HasPrefix(name, "sz2_") || strings.HasPrefix(name, "sz3_")
}

// throughputGated reports whether a benchmark's MB/s participates in the
// throughput-regression gate. Only the bulk entropy decode is gated: it is
// long enough (64Ki symbols/op) to be stable on a noisy CI container, and
// it is the number the multi-stream format exists to improve — a silent
// fallback to the serial path would halve it.
func throughputGated(name string) bool {
	return name == "huffman_decode_bulk"
}

// checkPerfBaseline diffs a fresh snapshot against a committed baseline:
// same schema tag, every baseline benchmark and derived metric still
// present, and every recorded number finite and positive where it must be.
// Timing magnitudes are deliberately not compared — CI containers are too
// noisy for that — but allocs/op is deterministic enough to gate: the
// sz2/sz3 round-trip benchmarks fail the check when they regress more
// than 10% (plus one alloc of pool warm-up slack) over the baseline.
func checkPerfBaseline(snap *perfSnapshot, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("perf baseline: %w", err)
	}
	var base perfSnapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("perf baseline %s: %w", baselinePath, err)
	}
	if base.Schema != snap.Schema {
		return fmt.Errorf("perf schema drifted: snapshot %q, baseline %q", snap.Schema, base.Schema)
	}
	have := map[string]perfEntry{}
	for _, e := range snap.Benchmarks {
		have[e.Name] = e
	}
	for _, b := range base.Benchmarks {
		e, ok := have[b.Name]
		if !ok {
			return fmt.Errorf("perf baseline: benchmark %q missing from snapshot", b.Name)
		}
		if !(e.NsPerOp > 0) || math.IsNaN(e.NsPerOp) || math.IsInf(e.NsPerOp, 0) {
			return fmt.Errorf("perf baseline: %q ns_per_op %v not finite-positive", b.Name, e.NsPerOp)
		}
		if math.IsNaN(e.MBPerS) || math.IsInf(e.MBPerS, 0) {
			return fmt.Errorf("perf baseline: %q mb_per_s %v not finite", b.Name, e.MBPerS)
		}
		if allocGated(b.Name) {
			limit := int64(float64(b.AllocsPerOp)*1.10) + 1
			if e.AllocsPerOp > limit {
				return fmt.Errorf("perf baseline: %q allocs/op regressed: %d > %d (baseline %d +10%%)",
					b.Name, e.AllocsPerOp, limit, b.AllocsPerOp)
			}
		}
		if throughputGated(b.Name) && b.MBPerS > 0 {
			floor := b.MBPerS * 0.90
			if e.MBPerS < floor {
				return fmt.Errorf("perf baseline: %q throughput regressed: %.1f MB/s < %.1f MB/s (baseline %.1f -10%%)",
					b.Name, e.MBPerS, floor, b.MBPerS)
			}
		}
	}
	for k := range base.Derived {
		v, ok := snap.Derived[k]
		if !ok {
			return fmt.Errorf("perf baseline: derived metric %q missing from snapshot", k)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("perf baseline: derived %q = %v not finite", k, v)
		}
	}
	// Delta-mode gate: a baseline that records the cross-round reduction
	// pins it — bytes-per-round with residual streams must stay at least
	// deltaReductionFloor below absolute streams on the fixture.
	if _, ok := base.Derived["delta_reduction"]; ok {
		if r := snap.Derived["delta_reduction"]; r < deltaReductionFloor {
			return fmt.Errorf("perf baseline: delta_reduction %.3f below the %.2f floor", r, deltaReductionFloor)
		}
	}
	// Multicore chunk-speedup gate, class-matched on CPU count: the chunked
	// encode/decode legs are only meaningfully parallel on a ≥4-CPU host, so
	// the floor applies only when the baseline was recorded on one AND this
	// host is one — a 1-CPU CI container diffing a workstation baseline (or
	// vice versa) checks presence/finiteness above but never the ratio.
	if base.NumCPU >= multicoreClassCPUs && snap.NumCPU >= multicoreClassCPUs {
		for _, k := range []string{"chunk_encode_speedup", "chunk_decode_speedup"} {
			if _, ok := base.Derived[k]; !ok {
				continue
			}
			if s := snap.Derived[k]; s < chunkSpeedupFloor {
				return fmt.Errorf("perf baseline: %s %.2fx below the %.1fx multicore floor (baseline host %d CPUs, this host %d)",
					k, s, chunkSpeedupFloor, base.NumCPU, snap.NumCPU)
			}
		}
	}
	return nil
}

const (
	// multicoreClassCPUs is the CPU-count class boundary for the chunk
	// speedup gate: hosts at or above it are "multicore class".
	multicoreClassCPUs = 4
	// chunkSpeedupFloor is the minimum chunked-vs-unchunked speedup a
	// multicore-class host must sustain on the skewed fixture.
	chunkSpeedupFloor = 2.0
)

// runPerfSnapshot measures the entropy-stage decoders (table vs reference),
// the bulk codec APIs, and the SZ2/SZ3 end-to-end paths, then writes the
// JSON snapshot to outPath ("-" for stdout) and a human summary to w. A
// non-empty baselinePath additionally diffs the snapshot against that
// committed baseline's schema (fields present, values finite).
func runPerfSnapshot(w io.Writer, outPath, baselinePath string) error {
	prog := w
	if outPath == "-" {
		// Keep stdout machine-readable: progress lines go to stderr.
		prog = os.Stderr
	}
	snap := &perfSnapshot{
		Schema:     perfSchema,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Derived:    map[string]float64{},
	}
	poolHits0, poolMisses0 := sched.BytePoolCounters()
	floatHits0, floatMisses0 := sched.FloatPoolCounters()
	record := func(name string, bytesMoved int, fn func(b *testing.B)) perfEntry {
		r := testing.Benchmark(fn)
		e := perfEntry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if bytesMoved > 0 && r.T > 0 {
			e.MBPerS = float64(bytesMoved) * float64(r.N) / r.T.Seconds() / 1e6
		}
		snap.Benchmarks = append(snap.Benchmarks, e)
		fmt.Fprintf(prog, "%-28s %12.0f ns/op %10.1f MB/s %8d allocs/op\n",
			name, e.NsPerOp, e.MBPerS, e.AllocsPerOp)
		return e
	}

	// Symbol-level decoders over one shared codec, so the comparison
	// isolates decode strategy from table construction.
	const nSyms = 1 << 16
	syms := quantSymbols(nSyms)
	freqs := make([]uint64, ebcl.QuantAlphabet)
	for _, s := range syms {
		freqs[s]++
	}
	codec, err := huffman.NewCodec(freqs)
	if err != nil {
		return err
	}
	bw := bitio.NewWriter(nSyms)
	for _, s := range syms {
		codec.Encode(bw, int(s))
	}
	stream := bw.Bytes()

	tbl := record("huffman_decode_table", nSyms, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := bitio.NewReader(stream)
			for j := 0; j < nSyms; j++ {
				if _, err := codec.DecodeFast(r); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	ref := record("huffman_decode_reference", nSyms, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := bitio.NewReader(stream)
			for j := 0; j < nSyms; j++ {
				if _, err := codec.Decode(r); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	if tbl.NsPerOp > 0 {
		snap.Derived["huffman_decode_speedup_table_vs_reference"] = ref.NsPerOp / tbl.NsPerOp
	}

	// Bulk entropy-stage APIs (include table build + header parsing).
	// huffman_{encode,decode}_bulk measure the path the sz2/sz3 pipelines
	// actually call — the 4-stream layout since format v2 — while
	// huffman_decode_bulk_v1 keeps the single-stream decode measurable so
	// the multi-stream speedup stays an explicit, tracked number.
	blobV1, err := huffman.EncodeAllU16(syms, ebcl.QuantAlphabet)
	if err != nil {
		return err
	}
	blob, err := huffman.EncodeMultiU16(syms, ebcl.QuantAlphabet, huffman.DefaultStreams)
	if err != nil {
		return err
	}
	record("huffman_encode_bulk", nSyms, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			enc, err := huffman.EncodeMultiU16(syms, ebcl.QuantAlphabet, huffman.DefaultStreams)
			if err != nil {
				b.Fatal(err)
			}
			sched.PutBytes(enc)
		}
	})
	bulk := record("huffman_decode_bulk", nSyms, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := huffman.DecodeMultiU16(blob, ebcl.QuantAlphabet)
			if err != nil {
				b.Fatal(err)
			}
			sched.PutUint16s(out)
		}
	})
	bulkV1 := record("huffman_decode_bulk_v1", nSyms, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := huffman.DecodeAllU16(blobV1, ebcl.QuantAlphabet)
			if err != nil {
				b.Fatal(err)
			}
			sched.PutUint16s(out)
		}
	})
	if bulk.NsPerOp > 0 {
		snap.Derived["huffman_decode_multi_speedup_vs_v1"] = bulkV1.NsPerOp / bulk.NsPerOp
	}

	// End-to-end SZ2/SZ3 on weight-like data: the aggregation-server round
	// trip the entropy stage feeds, measured through the zero-copy contract
	// the pipeline actually uses — CompressAppend into a recycled buffer,
	// DecompressInto a pool-sized reconstruction buffer (the steady-state
	// loop of a streaming server; allocs/op here is what the CI alloc gate
	// watches).
	rng := rand.New(rand.NewPCG(7, 9))
	weights := eblctest.WeightLike(rng, 1<<18)
	rawBytes := 4 * len(weights)
	for _, cp := range []ebcl.Compressor{sz2.NewCompressor(), sz3.NewCompressor()} {
		enc, err := cp.Compress(weights, ebcl.Rel(1e-2))
		if err != nil {
			return err
		}
		record(cp.Name()+"_compress", rawBytes, func(b *testing.B) {
			dst := sched.GetBytes(len(weights))
			for i := 0; i < b.N; i++ {
				out, err := cp.CompressAppend(dst[:0], weights, ebcl.Rel(1e-2))
				if err != nil {
					b.Fatal(err)
				}
				dst = out
			}
			sched.PutBytes(dst)
		})
		record(cp.Name()+"_decompress", rawBytes, func(b *testing.B) {
			n, err := cp.DecodedLen(enc)
			if err != nil {
				b.Fatal(err)
			}
			dst := sched.GetFloats(n)
			for i := 0; i < b.N; i++ {
				out, err := cp.DecompressInto(dst, enc)
				if err != nil {
					b.Fatal(err)
				}
				dst = out[:0]
			}
			sched.PutFloats(dst)
		})
	}

	// Cross-round delta mode: bytes-per-round absolute vs residual on the
	// 12-round convergence fixture.
	if err := measureDeltaRatio(prog, snap); err != nil {
		return err
	}

	// Section-routed sharded ingest at P = 1, 2, 4.
	if err := measureShardScaling(snap, record); err != nil {
		return err
	}

	// Intra-tensor chunk parallelism on the skewed fixture (v4 streams).
	if err := measureChunkScaling(snap, record); err != nil {
		return err
	}

	poolHits1, poolMisses1 := sched.BytePoolCounters()
	floatHits1, floatMisses1 := sched.FloatPoolCounters()
	snap.PoolHits, snap.PoolMisses = poolHits1-poolHits0, poolMisses1-poolMisses0
	snap.FloatPoolHits, snap.FloatPoolMisses = floatHits1-floatHits0, floatMisses1-floatMisses0

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		if _, err := w.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(prog, "\nperf snapshot written to %s (speedup table vs reference: %.2fx)\n",
			outPath, snap.Derived["huffman_decode_speedup_table_vs_reference"])
	}
	if baselinePath != "" {
		if err := checkPerfBaseline(snap, baselinePath); err != nil {
			return err
		}
		fmt.Fprintf(prog, "baseline %s: schema OK (all fields present, no NaNs)\n", baselinePath)
	}
	return nil
}
