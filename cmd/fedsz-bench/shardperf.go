package main

// Shard-scaling leg of the perf snapshot: ingest a fixed batch of
// wire-framed updates through the section-routed sharded aggregator at
// P = 1, 2, 4 shards. The interesting numbers are the per-P ingest
// throughputs and the derived p4-vs-p1 ratio; on a 1-CPU container the
// ratio hovers near 1 (routing overhead vs fold parallelism), on real
// hardware it tracks the fold's parallel speedup.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/sched"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// shardFixture builds n compressed, wire-framed client updates sized like
// the flserve test model (two weight tensors + bias, ~25 KB each framed).
func shardFixture(n int) ([][]byte, int, error) {
	framed := make([][]byte, n)
	total := 0
	for i := range framed {
		rng := rand.New(rand.NewPCG(uint64(i)+1, 0x5ADE))
		sd := tensor.NewStateDict()
		sd.Add("conv.weight", tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, 16384), 128, 128))
		sd.Add("fc.weight", tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, 8192), 8192))
		b := tensor.New(128)
		for j := range b.Data {
			b.Data[j] = float32(0.01 * rng.NormFloat64())
		}
		sd.Add("conv.bias", tensor.KindBias, b)
		stream, _, err := core.Compress(sd, core.Options{LossyParams: ebcl.Rel(1e-2)})
		if err != nil {
			return nil, 0, err
		}
		var buf bytes.Buffer
		if err := wire.NewWriter(&buf).WriteStream(stream); err != nil {
			return nil, 0, err
		}
		framed[i] = buf.Bytes()
		total += buf.Len()
	}
	return framed, total, nil
}

// measureShardScaling records shard_ingest_p{1,2,4} and the derived
// scaling ratio into the snapshot via the caller's record closure.
func measureShardScaling(snap *perfSnapshot, record func(name string, bytesMoved int, fn func(b *testing.B)) perfEntry) error {
	const updates = 4
	framed, wireBytes, err := shardFixture(updates)
	if err != nil {
		return err
	}
	ctx := context.Background()
	entries := map[int]perfEntry{}
	for _, p := range []int{1, 2, 4} {
		sh := agg.New(agg.Config{Shards: p, Pool: sched.NewPool(p)})
		var ingestErr error
		entries[p] = record(fmt.Sprintf("shard_ingest_p%d", p), wireBytes, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sh.Reset()
				for c, f := range framed {
					if _, _, err := sh.IngestStream(ctx, uint32(c), 1, core.DecodeOptions{}, bytes.NewReader(f)); err != nil {
						ingestErr = err
						b.Fatal(err)
					}
				}
			}
			sh.Reset()
		})
		if ingestErr != nil {
			return ingestErr
		}
	}
	if p1 := entries[1].NsPerOp; p1 > 0 {
		snap.Derived["shard_ingest_scaling_p4_vs_p1"] = p1 / entries[4].NsPerOp
	}
	return nil
}
