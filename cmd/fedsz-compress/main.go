// Command fedsz-compress applies the FedSZ pipeline to a serialized state
// dict file (the binary format produced by StateDict.Marshal — this
// module's replacement for pickle), or generates a synthetic profile model
// to demonstrate the pipeline end-to-end.
//
// Usage:
//
//	fedsz-compress -in model.sd -out model.fsz           # compress
//	fedsz-compress -d -in model.fsz -out restored.sd     # decompress
//	fedsz-compress -demo alexnet -eb 1e-2                # synthetic demo
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"

	fedsz "repro"
	"repro/internal/nn/models"
	"repro/internal/tensor"
)

func main() {
	var (
		in         = flag.String("in", "", "input file")
		out        = flag.String("out", "", "output file")
		decompress = flag.Bool("d", false, "decompress instead of compress")
		demo       = flag.String("demo", "", "generate a profile model (alexnet|mobilenetv2|resnet50) instead of reading -in")
		scale      = flag.Float64("scale", 0.05, "profile scale for -demo")
		eb         = flag.Float64("eb", 1e-2, "relative error bound")
		lossy      = flag.String("lossy", "sz2", "lossy compressor (sz2|sz3|szx|zfp)")
		codec      = flag.String("lossless", "blosclz", "lossless codec for metadata")
	)
	flag.Parse()

	if err := run(*in, *out, *decompress, *demo, *scale, *eb, *lossy, *codec); err != nil {
		fmt.Fprintf(os.Stderr, "fedsz-compress: %v\n", err)
		os.Exit(1)
	}
}

func run(in, out string, decompress bool, demo string, scale, eb float64, lossyName, codecName string) error {
	if decompress {
		data, err := os.ReadFile(in)
		if err != nil {
			return err
		}
		sd, err := fedsz.Decompress(data)
		if err != nil {
			return err
		}
		fmt.Printf("restored %d tensors, %d parameters (%d bytes)\n", sd.Len(), sd.NumParams(), sd.SizeBytes())
		if out != "" {
			return os.WriteFile(out, sd.Marshal(), 0o644)
		}
		return nil
	}

	var sd *fedsz.StateDict
	switch {
	case demo != "":
		rng := rand.New(rand.NewPCG(1, 2))
		var err error
		sd, err = models.BuildProfile(demo, rng, scale)
		if err != nil {
			return err
		}
		fmt.Printf("generated %s profile: %d tensors, %d parameters\n", demo, sd.Len(), sd.NumParams())
	case in != "":
		data, err := os.ReadFile(in)
		if err != nil {
			return err
		}
		sd, err = tensor.UnmarshalStateDict(data)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -in or -demo")
	}

	// The session API validates the whole configuration up front: a typo
	// in -lossy or -lossless fails here, before any compression work.
	codec, err := fedsz.New(
		fedsz.WithCompressor(lossyName),
		fedsz.WithRelBound(eb),
		fedsz.WithLossless(codecName),
	)
	if err != nil {
		return err
	}
	stream, stats, err := codec.Compress(context.Background(), sd)
	if err != nil {
		return err
	}
	fmt.Printf("compressed %d -> %d bytes (ratio %.2fx) in %v\n",
		stats.RawBytes, stats.CompressedBytes, stats.Ratio(), stats.CompressTime.Round(1000))
	fmt.Printf("  lossy partition:    %d tensors, %d -> %d bytes (%.2fx)\n",
		stats.LossyTensors, stats.LossyRaw, stats.LossyCompressed, stats.LossyRatio())
	fmt.Printf("  lossless partition: %d tensors, %d -> %d bytes\n",
		stats.LosslessTensors, stats.LosslessRaw, stats.LosslessCompressed)
	if out != "" {
		return os.WriteFile(out, stream, 0o644)
	}
	return nil
}
