package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDemoCompressDecompressRoundTrip drives the CLI logic end-to-end:
// generate a small profile, compress to a file, decompress it back.
func TestDemoCompressDecompressRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsz := filepath.Join(dir, "model.fsz")
	sd := filepath.Join(dir, "restored.sd")

	if err := run("", fsz, false, "alexnet", 0.01, 1e-2, "sz2", "blosclz"); err != nil {
		t.Fatalf("compress: %v", err)
	}
	if fi, err := os.Stat(fsz); err != nil || fi.Size() == 0 {
		t.Fatalf("no compressed output: %v", err)
	}
	if err := run(fsz, sd, true, "", 0, 0, "", ""); err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if fi, err := os.Stat(sd); err != nil || fi.Size() == 0 {
		t.Fatalf("no restored output: %v", err)
	}
	// The restored state dict must compress again (valid Marshal format).
	if err := run(sd, "", false, "", 0, 1e-2, "szx", "gzip"); err != nil {
		t.Fatalf("recompress restored dict: %v", err)
	}
}

func TestRunRejectsMissingInput(t *testing.T) {
	if err := run("", "", false, "", 0, 1e-2, "sz2", "blosclz"); err == nil {
		t.Fatal("expected error without -in or -demo")
	}
	if err := run("", "", false, "alexnet", 0.01, 1e-2, "nope", "blosclz"); err == nil {
		t.Fatal("expected error for unknown compressor")
	}
}
