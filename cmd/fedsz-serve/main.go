// Command fedsz-serve runs the streaming FedSZ aggregation server: it
// listens on a TCP address, ingests wire-framed compressed client updates
// over concurrent connections (decoding each tensor while the next is
// still arriving), folds them incrementally into a FedAvg mean, and
// reports ingest throughput and the decode/receive overlap ratio.
//
// Usage:
//
//	fedsz-serve                          # listen on 127.0.0.1:9464 until interrupted
//	fedsz-serve -addr :9000 -parallel 8  # custom port, 8-way decode budget
//	fedsz-serve -updates 64              # exit after 64 updates, print summary
//	fedsz-serve -metrics-addr :9465      # expose /metrics, /healthz, /debug/pprof
//
// Pair it with the upload side of the benchmark harness:
//
//	fedsz-serve -updates 32 &
//	fedsz-bench -serve -clients 32 -upload 127.0.0.1:9464
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flserve"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9464", "TCP listen address")
		metricsAddr = flag.String("metrics-addr", "", "HTTP listen address for /metrics, /healthz and /debug/pprof (empty = disabled)")
		parallel    = flag.Int("parallel", 0, "decode budget shared across connections (0 = GOMAXPROCS)")
		maxConns    = flag.Int("max-conns", 0, "concurrent connection cap (0 = 4×GOMAXPROCS)")
		updates     = flag.Int("updates", 0, "exit after N ingested updates (0 = run until interrupted)")
		quiet       = flag.Bool("quiet", false, "suppress the per-update log lines")
		upTO        = flag.Duration("upload-timeout", 0, "per-update deadline: clientID through ack (0 = no bound)")
	)
	flag.Parse()

	stop := make(chan struct{})
	if *updates == 0 {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		go func() {
			<-sig
			close(stop)
		}()
	}
	o := serveOpts{
		addr:          *addr,
		metricsAddr:   *metricsAddr,
		parallel:      *parallel,
		maxConns:      *maxConns,
		updates:       *updates,
		uploadTimeout: *upTO,
		quiet:         *quiet,
		stop:          stop,
		out:           os.Stdout,
	}
	if err := serve(o); err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
}

// serveOpts carries the wiring for one serve run. ready and metricsReady,
// when non-nil, receive the bound addresses once the listeners are up (the
// test hooks for ":0" addresses).
type serveOpts struct {
	addr          string
	metricsAddr   string
	parallel      int
	maxConns      int
	updates       int
	uploadTimeout time.Duration
	quiet         bool
	ready         chan<- string
	metricsReady  chan<- string
	stop          <-chan struct{}
	out           io.Writer
}

// serve runs the server until opts.updates have been ingested (when > 0)
// or opts.stop closes.
func serve(o serveOpts) error {
	if o.metricsAddr != "" {
		sched.RegisterMetrics(telemetry.Default())
		ln, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		hs := &http.Server{Handler: telemetry.NewHTTPHandler(telemetry.Default())}
		go hs.Serve(ln)
		defer hs.Close()
		fmt.Fprintf(o.out, "metrics on http://%s/metrics\n", ln.Addr())
		if o.metricsReady != nil {
			o.metricsReady <- ln.Addr().String()
		}
	}

	var agg flserve.Aggregator
	done := make(chan struct{})
	var once sync.Once
	var count atomic.Int64
	// slog serializes its own writes, so the handler needs no extra lock
	// around the shared writer.
	logger := slog.New(slog.NewTextHandler(o.out, nil))
	handler := func(u flserve.Update) error {
		if err := agg.Add(u); err != nil {
			return err
		}
		if !o.quiet {
			logger.Info("update",
				slog.Uint64("client", uint64(u.Client)),
				slog.String("remote", u.Remote),
				slog.Int64("wire_bytes", u.WireBytes),
				slog.Duration("decode", u.Stats.DecompressTime.Round(time.Microsecond)),
				slog.Float64("overlap", u.Stats.OverlapRatio()))
		}
		if o.updates > 0 && count.Add(1) >= int64(o.updates) {
			once.Do(func() { close(done) })
		}
		return nil
	}
	srv, err := flserve.Listen(o.addr, flserve.Config{Parallel: o.parallel, MaxConns: o.maxConns, UploadTimeout: o.uploadTimeout, Handler: handler})
	if err != nil {
		return err
	}
	fmt.Fprintf(o.out, "fedsz-serve listening on %s (parallel=%d)\n", srv.Addr(), o.parallel)
	if o.ready != nil {
		o.ready <- srv.Addr().String()
	}
	t0 := time.Now()
	select {
	case <-done:
	case <-o.stop:
	}
	wall := time.Since(t0)
	if err := srv.Close(); err != nil {
		return err
	}

	st := srv.Snapshot()
	fmt.Fprintf(o.out, "\ningested %d update(s) (%d rejected), %.2f MB wire in %v\n",
		st.Updates, st.Rejected, float64(st.WireBytes)/1e6, wall.Round(time.Millisecond))
	if wall > 0 && st.Updates > 0 {
		fmt.Fprintf(o.out, "throughput: %.1f updates/s, %.1f MB/s wire\n",
			float64(st.Updates)/wall.Seconds(), float64(st.WireBytes)/wall.Seconds()/1e6)
	}
	fmt.Fprintf(o.out, "decode work %v, read wait %v, overlap ratio %.2f\n",
		st.DecodeWork.Round(time.Microsecond), st.ReadWait.Round(time.Microsecond), st.OverlapRatio())
	if mean, n := agg.Mean(); n > 0 {
		fmt.Fprintf(o.out, "FedAvg mean over %d update(s): %d tensors, %d parameters\n",
			n, mean.Len(), mean.NumParams())
	}
	return nil
}
