// Command fedsz-serve runs the streaming FedSZ aggregation server: it
// listens on a TCP address, ingests wire-framed compressed client updates
// over concurrent connections (decoding each tensor while the next is
// still arriving), folds them incrementally into a FedAvg mean, and
// reports ingest throughput and the decode/receive overlap ratio.
//
// Usage:
//
//	fedsz-serve                          # listen on 127.0.0.1:9464 until interrupted
//	fedsz-serve -addr :9000 -parallel 8  # custom port, 8-way decode budget
//	fedsz-serve -updates 64              # exit after 64 updates, print summary
//
// Pair it with the upload side of the benchmark harness:
//
//	fedsz-serve -updates 32 &
//	fedsz-bench -serve -clients 32 -upload 127.0.0.1:9464
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flserve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9464", "TCP listen address")
		parallel = flag.Int("parallel", 0, "decode budget shared across connections (0 = GOMAXPROCS)")
		maxConns = flag.Int("max-conns", 0, "concurrent connection cap (0 = 4×GOMAXPROCS)")
		updates  = flag.Int("updates", 0, "exit after N ingested updates (0 = run until interrupted)")
		quiet    = flag.Bool("quiet", false, "suppress the per-update log lines")
		upTO     = flag.Duration("upload-timeout", 0, "per-update deadline: clientID through ack (0 = no bound)")
	)
	flag.Parse()

	stop := make(chan struct{})
	if *updates == 0 {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		go func() {
			<-sig
			close(stop)
		}()
	}
	if err := serve(*addr, *parallel, *maxConns, *updates, *upTO, *quiet, nil, stop, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
}

// serve runs the server until `updates` have been ingested (when > 0) or
// stop closes. ready, when non-nil, receives the bound address once the
// listener is up (the test hook for -addr :0).
func serve(addr string, parallel, maxConns, updates int, uploadTimeout time.Duration, quiet bool, ready chan<- string, stop <-chan struct{}, out io.Writer) error {
	var agg flserve.Aggregator
	done := make(chan struct{})
	var once sync.Once
	var count atomic.Int64
	// The handler runs concurrently across connections; outMu serializes
	// the shared writer.
	var outMu sync.Mutex
	handler := func(u flserve.Update) error {
		if err := agg.Add(u); err != nil {
			return err
		}
		if !quiet {
			outMu.Lock()
			fmt.Fprintf(out, "client %-6d %8d B wire   decode %-12v overlap %.2f\n",
				u.Client, u.WireBytes, u.Stats.DecompressTime.Round(time.Microsecond), u.Stats.OverlapRatio())
			outMu.Unlock()
		}
		if updates > 0 && count.Add(1) >= int64(updates) {
			once.Do(func() { close(done) })
		}
		return nil
	}
	srv, err := flserve.Listen(addr, flserve.Config{Parallel: parallel, MaxConns: maxConns, UploadTimeout: uploadTimeout, Handler: handler})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "fedsz-serve listening on %s (parallel=%d)\n", srv.Addr(), parallel)
	if ready != nil {
		ready <- srv.Addr().String()
	}
	t0 := time.Now()
	select {
	case <-done:
	case <-stop:
	}
	wall := time.Since(t0)
	if err := srv.Close(); err != nil {
		return err
	}

	st := srv.Stats()
	fmt.Fprintf(out, "\ningested %d update(s) (%d rejected), %.2f MB wire in %v\n",
		st.Updates, st.Rejected, float64(st.WireBytes)/1e6, wall.Round(time.Millisecond))
	if wall > 0 && st.Updates > 0 {
		fmt.Fprintf(out, "throughput: %.1f updates/s, %.1f MB/s wire\n",
			float64(st.Updates)/wall.Seconds(), float64(st.WireBytes)/wall.Seconds()/1e6)
	}
	fmt.Fprintf(out, "decode work %v, read wait %v, overlap ratio %.2f\n",
		st.DecodeWork.Round(time.Microsecond), st.ReadWait.Round(time.Microsecond), st.OverlapRatio())
	if mean, n := agg.Mean(); n > 0 {
		fmt.Fprintf(out, "FedAvg mean over %d update(s): %d tensors, %d parameters\n",
			n, mean.Len(), mean.NumParams())
	}
	return nil
}
