// Command fedsz-serve runs the streaming FedSZ aggregation server: it
// listens on a TCP address, ingests wire-framed compressed client updates
// over concurrent connections (decoding each tensor while the next is
// still arriving), folds them incrementally into a FedAvg mean, and
// reports ingest throughput and the decode/receive overlap ratio.
//
// Usage:
//
//	fedsz-serve                          # listen on 127.0.0.1:9464 until interrupted
//	fedsz-serve -addr :9000 -parallel 8  # custom port, 8-way decode budget
//	fedsz-serve -updates 64              # exit after 64 updates, print summary
//	fedsz-serve -metrics-addr :9465      # expose /metrics, /healthz, /debug/pprof
//
// Pair it with the upload side of the benchmark harness:
//
//	fedsz-serve -updates 32 &
//	fedsz-bench -serve -clients 32 -upload 127.0.0.1:9464
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/flserve"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9464", "TCP listen address")
		metricsAddr = flag.String("metrics-addr", "", "HTTP listen address for /metrics, /healthz and /debug/pprof (empty = disabled)")
		parallel    = flag.Int("parallel", 0, "decode budget shared across connections (0 = GOMAXPROCS)")
		maxConns    = flag.Int("max-conns", 0, "concurrent connection cap (0 = 4×GOMAXPROCS)")
		updates     = flag.Int("updates", 0, "exit after N ingested updates (0 = run until interrupted)")
		quiet       = flag.Bool("quiet", false, "suppress the per-update log lines")
		upTO        = flag.Duration("upload-timeout", 0, "per-update deadline: clientID through ack (0 = no bound)")
		shards      = flag.Int("shards", 0, "section-routed aggregation shards (0 = flat single-accumulator fold)")
		queueDepth  = flag.Int("queue-depth", 0, "admission-control ingest queue; connections beyond max-conns+queue are shed (0 = block, never shed)")
		upstream    = flag.String("upstream", "", "run as an edge: after the run, forward the fused weighted mean to this root address")
		edgeID      = flag.Uint("edge-id", 1, "client ID used on the upstream hop (with -upstream)")
	)
	flag.Parse()

	stop := make(chan struct{})
	if *updates == 0 {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			close(stop)
		}()
	}
	o := serveOpts{
		addr:          *addr,
		metricsAddr:   *metricsAddr,
		parallel:      *parallel,
		maxConns:      *maxConns,
		updates:       *updates,
		uploadTimeout: *upTO,
		quiet:         *quiet,
		shards:        *shards,
		queueDepth:    *queueDepth,
		upstream:      *upstream,
		edgeID:        uint32(*edgeID),
		stop:          stop,
		out:           os.Stdout,
	}
	if err := serve(o); err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
}

// serveOpts carries the wiring for one serve run. ready and metricsReady,
// when non-nil, receive the bound addresses once the listeners are up (the
// test hooks for ":0" addresses).
type serveOpts struct {
	addr          string
	metricsAddr   string
	parallel      int
	maxConns      int
	updates       int
	uploadTimeout time.Duration
	quiet         bool
	shards        int
	queueDepth    int
	upstream      string
	edgeID        uint32
	ready         chan<- string
	metricsReady  chan<- string
	stop          <-chan struct{}
	out           io.Writer
}

// serve runs the server until opts.updates have been ingested (when > 0)
// or opts.stop closes.
func serve(o serveOpts) error {
	if o.metricsAddr != "" {
		sched.RegisterMetrics(telemetry.Default())
		ln, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		hs := &http.Server{Handler: telemetry.NewHTTPHandler(telemetry.Default())}
		go hs.Serve(ln)
		defer hs.Close()
		fmt.Fprintf(o.out, "metrics on http://%s/metrics\n", ln.Addr())
		if o.metricsReady != nil {
			o.metricsReady <- ln.Addr().String()
		}
	}

	done := make(chan struct{})
	var once sync.Once
	var count atomic.Int64
	countUpdate := func() {
		if o.updates > 0 && count.Add(1) >= int64(o.updates) {
			once.Do(func() { close(done) })
		}
	}
	// slog serializes its own writes, so the handler needs no extra lock
	// around the shared writer.
	logger := slog.New(slog.NewTextHandler(o.out, nil))

	cfg := flserve.Config{Parallel: o.parallel, MaxConns: o.maxConns, UploadTimeout: o.uploadTimeout, QueueDepth: o.queueDepth}
	var flat flserve.Aggregator
	var sharded *agg.Sharded
	var pool *sched.Pool
	sharding := o.shards > 0 || o.upstream != ""
	if sharding {
		// The section-routed sharded fold ingests the framed stream
		// directly, so there is no per-update Handler callback; the
		// counting wrapper preserves the -updates exit condition.
		pool = sched.NewPool(o.parallel)
		sharded = agg.New(agg.Config{Shards: o.shards, Pool: pool})
		cfg.Ingestor = countingIngestor{sharded, countUpdate}
	} else {
		cfg.Handler = func(u flserve.Update) error {
			if err := flat.Add(u); err != nil {
				return err
			}
			if !o.quiet {
				logger.Info("update",
					slog.Uint64("client", uint64(u.Client)),
					slog.String("remote", u.Remote),
					slog.Int64("wire_bytes", u.WireBytes),
					slog.Duration("decode", u.Stats.DecompressTime.Round(time.Microsecond)),
					slog.Float64("overlap", u.Stats.OverlapRatio()))
			}
			countUpdate()
			return nil
		}
	}
	srv, err := flserve.Listen(o.addr, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.out, "fedsz-serve listening on %s (parallel=%d, shards=%d)\n", srv.Addr(), o.parallel, o.shards)
	if o.ready != nil {
		o.ready <- srv.Addr().String()
	}
	t0 := time.Now()
	select {
	case <-done:
	case <-o.stop:
	}
	wall := time.Since(t0)
	if err := srv.Close(); err != nil {
		return err
	}

	st := srv.Snapshot()
	fmt.Fprintf(o.out, "\ningested %d update(s) (%d rejected, %d shed), %.2f MB wire in %v\n",
		st.Updates, st.Rejected, st.Shed, float64(st.WireBytes)/1e6, wall.Round(time.Millisecond))
	if wall > 0 && st.Updates > 0 {
		fmt.Fprintf(o.out, "throughput: %.1f updates/s, %.1f MB/s wire\n",
			float64(st.Updates)/wall.Seconds(), float64(st.WireBytes)/wall.Seconds()/1e6)
	}
	fmt.Fprintf(o.out, "decode work %v, read wait %v, overlap ratio %.2f\n",
		st.DecodeWork.Round(time.Microsecond), st.ReadWait.Round(time.Microsecond), st.OverlapRatio())

	if sharding {
		if o.upstream != "" {
			w, err := flushUpstream(sharded, pool, o)
			if err != nil {
				return err
			}
			if w > 0 {
				fmt.Fprintf(o.out, "forwarded fused update to %s (weight %g)\n", o.upstream, w)
			}
		} else if mean, n := sharded.Mean(); n > 0 {
			fmt.Fprintf(o.out, "FedAvg mean over %d update(s): %d tensors, %d parameters\n",
				n, mean.Len(), mean.NumParams())
			core.Release(mean)
		}
	} else if mean, n := flat.Mean(); n > 0 {
		fmt.Fprintf(o.out, "FedAvg mean over %d update(s): %d tensors, %d parameters\n",
			n, mean.Len(), mean.NumParams())
	}
	return nil
}

// countingIngestor forwards to the sharded fold and bumps the -updates
// counter on each success.
type countingIngestor struct {
	inner *agg.Sharded
	tick  func()
}

func (c countingIngestor) IngestStream(ctx context.Context, client uint32, weight float64, dopts core.DecodeOptions, r io.Reader) (int64, core.DecompressStats, error) {
	n, stats, err := c.inner.IngestStream(ctx, client, weight, dopts, r)
	if err == nil {
		c.tick()
	}
	return n, stats, err
}

// flushUpstream forwards the fused, weighted local mean to the root over
// the FLS3 weighted protocol — the edge half of the two-tier topology.
// The mean is re-encoded at a tight error bound (REL 1e-4) so the extra
// lossy hop stays well under the client-side bound.
func flushUpstream(sh *agg.Sharded, pool *sched.Pool, o serveOpts) (float64, error) {
	mean, n := sh.Mean()
	if n == 0 {
		return 0, nil
	}
	weight := sh.WeightSum()
	stream, _, err := core.CompressWith(context.Background(), pool, mean, core.Options{LossyParams: ebcl.Rel(1e-4)})
	core.Release(mean)
	if err != nil {
		return 0, fmt.Errorf("edge flush encode: %w", err)
	}
	client := &flserve.Client{Addr: o.upstream, Retries: 3, RetryBackoff: 100 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := client.UploadWeighted(ctx, o.edgeID, weight, stream); err != nil {
		return 0, fmt.Errorf("edge flush upload to %s: %w", o.upstream, err)
	}
	return weight, nil
}
