package main

import (
	"bytes"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/flserve"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// uploadN compresses n single-tensor updates and uploads them concurrently.
func uploadN(t *testing.T, addr string, n int, seed uint64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed+1))
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		sd := tensor.NewStateDict()
		sd.Add("w.weight", tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, 2048), 2048))
		stream, _, err := core.Compress(sd, core.Options{LossyParams: ebcl.Rel(1e-2)})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, stream []byte) {
			defer wg.Done()
			errs[i] = flserve.Upload(addr, uint32(i), stream)
		}(i, stream)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
}

// TestServeSmoke boots the server on a free port, uploads three updates
// concurrently, and checks the summary output.
func TestServeSmoke(t *testing.T) {
	ready := make(chan string, 1)
	var out bytes.Buffer
	// The errCh receive below happens-after serve returns, so reading out
	// afterwards is race-free.
	errCh := make(chan error, 1)
	go func() {
		errCh <- serve(serveOpts{addr: "127.0.0.1:0", parallel: 2, updates: 3, ready: ready, out: &out})
	}()
	addr := <-ready
	uploadN(t, addr, 3, 3)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	output := out.String()
	for _, want := range []string{
		"listening on", "ingested 3 update(s)", "overlap ratio", "FedAvg mean over 3",
		// slog per-update lines with client/remote attrs
		`msg=update`, `client=`, `remote=127.0.0.1:`, `wire_bytes=`,
	} {
		if !strings.Contains(output, want) {
			t.Fatalf("output missing %q:\n%s", want, output)
		}
	}
}

// TestServeMetricsEndpoint runs serve with a metrics listener, pushes one
// update through the ingest path, and scrapes /metrics and /healthz while
// the server is still up.
func TestServeMetricsEndpoint(t *testing.T) {
	ready := make(chan string, 1)
	metricsReady := make(chan string, 1)
	stop := make(chan struct{})
	var out bytes.Buffer
	errCh := make(chan error, 1)
	go func() {
		errCh <- serve(serveOpts{
			addr:         "127.0.0.1:0",
			metricsAddr:  "127.0.0.1:0",
			quiet:        true,
			ready:        ready,
			metricsReady: metricsReady,
			stop:         stop,
			out:          &out,
		})
	}()
	maddr := <-metricsReady
	addr := <-ready
	uploadN(t, addr, 1, 7)

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + maddr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/healthz"); body != "ok\n" {
		t.Fatalf("/healthz = %q", body)
	}
	body := get("/metrics")
	samples, err := telemetry.ParseText([]byte(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	for _, name := range []string{
		"fedsz_server_connections_accepted_total",
		"fedsz_server_updates_total",
		"fedsz_server_wire_bytes_total",
		"fedsz_server_decode_seconds_count",
		"fedsz_server_overlap_ratio_count",
		"fedsz_pool_hits_total",
		"fedsz_pool_recycled_bytes_total",
		"fedsz_decode_seconds_count",
	} {
		if _, ok := telemetry.FindSample(samples, name); !ok {
			t.Errorf("/metrics missing %s", name)
		}
	}
	// The process-wide counters are shared across tests, so assert a lower
	// bound rather than equality.
	if s, ok := telemetry.FindSample(samples, "fedsz_server_updates_total"); !ok || s.Value < 1 {
		t.Fatalf("fedsz_server_updates_total = %+v (ok=%v), want >= 1", s, ok)
	}

	close(stop)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestServeTwoTier wires the CLI pieces into an edge→root tree: a sharded
// root, two edge serves pointed at it with -upstream, five clients split
// across the edges. The root must fold exactly two fused updates whose
// weights sum to the client population.
func TestServeTwoTier(t *testing.T) {
	rootReady := make(chan string, 1)
	var rootOut bytes.Buffer
	rootErr := make(chan error, 1)
	go func() {
		rootErr <- serve(serveOpts{addr: "127.0.0.1:0", parallel: 2, shards: 2, updates: 2, quiet: true, ready: rootReady, out: &rootOut})
	}()
	rootAddr := <-rootReady

	runEdge := func(id uint32, clients int, seed uint64, out *bytes.Buffer) error {
		ready := make(chan string, 1)
		errCh := make(chan error, 1)
		go func() {
			errCh <- serve(serveOpts{addr: "127.0.0.1:0", parallel: 2, shards: 2, updates: clients, quiet: true,
				upstream: rootAddr, edgeID: id, ready: ready, out: out})
		}()
		uploadN(t, <-ready, clients, seed)
		return <-errCh
	}
	var outA, outB bytes.Buffer
	if err := runEdge(1000, 3, 11, &outA); err != nil {
		t.Fatalf("edge A: %v", err)
	}
	if err := runEdge(1001, 2, 13, &outB); err != nil {
		t.Fatalf("edge B: %v", err)
	}
	if err := <-rootErr; err != nil {
		t.Fatalf("root: %v", err)
	}
	for name, out := range map[string]*bytes.Buffer{"edge A": &outA, "edge B": &outB} {
		if !strings.Contains(out.String(), "forwarded fused update to "+rootAddr) {
			t.Fatalf("%s did not forward upstream:\n%s", name, out.String())
		}
	}
	if !strings.Contains(outA.String(), "(weight 3)") || !strings.Contains(outB.String(), "(weight 2)") {
		t.Fatalf("edge weights wrong:\nA: %s\nB: %s", outA.String(), outB.String())
	}
	if !strings.Contains(rootOut.String(), "ingested 2 update(s)") ||
		!strings.Contains(rootOut.String(), "FedAvg mean over 2") {
		t.Fatalf("root summary wrong:\n%s", rootOut.String())
	}
}
