package main

import (
	"bytes"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/flserve"
	"repro/internal/tensor"
)

// TestServeSmoke boots the server on a free port, uploads three updates
// concurrently, and checks the summary output.
func TestServeSmoke(t *testing.T) {
	ready := make(chan string, 1)
	var out bytes.Buffer
	// The errCh receive below happens-after serve returns, so reading out
	// afterwards is race-free.
	errCh := make(chan error, 1)
	go func() {
		errCh <- serve("127.0.0.1:0", 2, 0, 3, 0, false, ready, nil, &out)
	}()
	addr := <-ready

	rng := rand.New(rand.NewPCG(3, 4))
	var wg sync.WaitGroup
	uploadErrs := make([]error, 3)
	for i := 0; i < 3; i++ {
		sd := tensor.NewStateDict()
		sd.Add("w.weight", tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, 2048), 2048))
		stream, _, err := core.Compress(sd, core.Options{LossyParams: ebcl.Rel(1e-2)})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, stream []byte) {
			defer wg.Done()
			uploadErrs[i] = flserve.Upload(addr, uint32(i), stream)
		}(i, stream)
	}
	wg.Wait()
	for i, err := range uploadErrs {
		if err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	output := out.String()
	for _, want := range []string{"listening on", "ingested 3 update(s)", "overlap ratio", "FedAvg mean over 3"} {
		if !strings.Contains(output, want) {
			t.Fatalf("output missing %q:\n%s", want, output)
		}
	}
}
