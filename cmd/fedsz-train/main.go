// Command fedsz-train runs a federated-learning simulation (FedAvg over
// synthetic class-prototype data) with or without FedSZ compression and
// reports per-round accuracy, byte counts, and simulated communication
// times on a constrained link.
//
// Usage:
//
//	fedsz-train -model alexnet -dataset cifar10 -rounds 10
//	fedsz-train -no-compress               # uncompressed baseline
//	fedsz-train -eb 1e-3 -bandwidth 10     # tighter bound, 10 Mbps link
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	fedsz "repro"
	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/netsim"
	"repro/internal/nn/models"

	"math/rand/v2"
)

func main() {
	var (
		model      = flag.String("model", "alexnet", "model (alexnet|mobilenetv2|resnet50)")
		ds         = flag.String("dataset", "cifar10", "dataset (cifar10|fmnist|caltech101)")
		rounds     = flag.Int("rounds", 10, "communication rounds")
		clients    = flag.Int("clients", 4, "FedAvg clients")
		eb         = flag.Float64("eb", 1e-2, "relative error bound")
		lossy      = flag.String("lossy", "sz2", "lossy compressor")
		noCompress = flag.Bool("no-compress", false, "disable FedSZ (raw transport)")
		bandwidth  = flag.Float64("bandwidth", 10, "simulated link bandwidth (Mbps)")
		imageSide  = flag.Int("image-side", 16, "training image side (paper dims capped for CPU training)")
		trainN     = flag.Int("train-n", 256, "training samples")
		seed       = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()
	if err := run(*model, *ds, *rounds, *clients, *eb, *lossy, *noCompress, *bandwidth, *imageSide, *trainN, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "fedsz-train: %v\n", err)
		os.Exit(1)
	}
}

func run(model, ds string, rounds, nClients int, eb float64, lossyName string, noCompress bool, bandwidth float64, imageSide, trainN int, seed uint64) error {
	dcfg, err := dataset.ScaledConfig(ds, imageSide, trainN, trainN/4, seed)
	if err != nil {
		return err
	}
	ctx := context.Background()
	train, test := dataset.Generate(dcfg)
	shards := dataset.ShardIID(train, nClients, seed)
	in := models.Input{Channels: dcfg.Channels, Height: dcfg.Height, Width: dcfg.Width, Classes: dcfg.Classes}
	rng := rand.New(rand.NewPCG(seed, 1))
	global, err := models.BuildMini(model, rng, in)
	if err != nil {
		return err
	}
	clients := make([]*fl.Client, nClients)
	for i := range clients {
		crng := rand.New(rand.NewPCG(seed, uint64(i)+10))
		net, err := models.BuildMini(model, crng, in)
		if err != nil {
			return err
		}
		clients[i] = fl.NewClient(i, net, shards[i], 16, 0.02, seed)
	}

	var transport fl.Transport = fl.RawTransport{}
	if !noCompress {
		// Build the pipeline configuration through the session API so a
		// bad -lossy name or -eb value fails here, before any training.
		codec, err := fedsz.New(fedsz.WithCompressor(lossyName), fedsz.WithRelBound(eb))
		if err != nil {
			return err
		}
		transport = fl.NewFedSZTransport(codec.Options())
	}
	fed := fl.NewFederation(global, clients, transport, test)
	link := netsim.Link{BandwidthMbps: bandwidth}

	fmt.Printf("federated %s on %s-like data: %d clients, %d rounds, transport=%s\n",
		model, ds, nClients, rounds, transport.Name())
	fmt.Printf("%-6s %-8s %-10s %-12s %-12s %-10s\n", "round", "loss", "top1(%)", "wire(bytes)", "comm@link", "ratio")
	for r := 0; r < rounds; r++ {
		res, err := fed.RunRound(ctx, r, 1)
		if err != nil {
			return err
		}
		commTime := link.TransmitTime(res.WireBytes)
		ratio := float64(res.RawBytes) / float64(res.WireBytes)
		fmt.Printf("%-6d %-8.4f %-10.2f %-12d %-12v %-10.2f\n",
			r, res.Loss, 100*res.Accuracy, res.WireBytes, commTime.Round(1000000), ratio)
	}
	return nil
}
