package main

import "testing"

// TestTrainSmoke runs a quickstart-sized federated simulation through the
// CLI entry point: 1 round, 2 clients, tiny images.
func TestTrainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("one full training round; skipped in short mode")
	}
	if err := run("alexnet", "cifar10", 1, 2, 1e-2, "sz2", false, 10, 10, 64, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTrainRejectsUnknownModel(t *testing.T) {
	if err := run("nope", "cifar10", 1, 2, 1e-2, "sz2", false, 10, 10, 64, 1); err == nil {
		t.Fatal("expected error for unknown model")
	}
}
