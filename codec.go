package fedsz

// Codec is the session-oriented public API: configuration is validated
// once at construction (fedsz.New) instead of on every call, the codec
// owns its parallelism budget, and every method takes a context so
// callers get real deadlines and cancellation — the evolution from the
// historical one-shot free functions, which remain as thin wrappers over
// a package-level default codec.

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/compressors"
	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/lossless"
	"repro/internal/sched"
)

// Codec is a reusable, configured FedSZ session. It is safe for
// concurrent use: all methods may be called from any number of
// goroutines, drawing per-tensor parallelism from the codec's one pool.
//
// Build one with New and reuse it — construction validates the
// configuration (unknown compressor names, bad bounds) so the pipeline
// never discovers a misconfiguration mid-stream, and a long-lived codec
// is the object per-session state (parallelism budget, future retry
// policy) hangs on.
type Codec struct {
	opts core.Options
	pool *sched.Pool
}

// codecConfig accumulates functional options before validation.
type codecConfig struct {
	lossyName    string
	lossy        Compressor
	params       Params
	hasParams    bool
	losslessName string
	lossless     LosslessCodec
	parallelism  int
	hasParallel  bool
	threshold    int
	noPartition  bool
	chunkElems   int
}

// Option configures a Codec under construction; see New.
type Option func(*codecConfig) error

// WithCompressor selects the error-bounded lossy compressor by registry
// name ("sz2", "sz3", "szx", "zfp", or a RegisterCompressor name). The
// name resolves at New, so a typo fails construction, not a compress call
// mid-pipeline.
func WithCompressor(name string) Option {
	return func(c *codecConfig) error {
		c.lossyName, c.lossy = name, nil
		return nil
	}
}

// WithLossy supplies an explicit Compressor instance (for compressors not
// in the registry).
func WithLossy(comp Compressor) Option {
	return func(c *codecConfig) error {
		if comp == nil {
			return fmt.Errorf("fedsz: WithLossy: nil compressor")
		}
		c.lossy, c.lossyName = comp, ""
		return nil
	}
}

// WithRelBound sets a value-range-relative error bound (the SZ convention;
// the paper recommends 1e-2).
func WithRelBound(eb float64) Option {
	return func(c *codecConfig) error {
		if eb <= 0 {
			return fmt.Errorf("fedsz: relative error bound must be positive, got %g", eb)
		}
		c.params, c.hasParams = RelBound(eb), true
		return nil
	}
}

// WithAbsBound sets an absolute error bound.
func WithAbsBound(eb float64) Option {
	return func(c *codecConfig) error {
		if eb <= 0 {
			return fmt.Errorf("fedsz: absolute error bound must be positive, got %g", eb)
		}
		c.params, c.hasParams = AbsBound(eb), true
		return nil
	}
}

// WithParams sets the error-control parameters directly (e.g. the ZFP
// fixed-precision mode).
func WithParams(p Params) Option {
	return func(c *codecConfig) error {
		c.params, c.hasParams = p, true
		return nil
	}
}

// WithLossless selects the metadata-partition codec by registry name
// ("blosclz", "zstdlike", "xzlike", "gzip", "zlib"), resolved at New.
func WithLossless(name string) Option {
	return func(c *codecConfig) error {
		c.losslessName, c.lossless = name, nil
		return nil
	}
}

// WithLosslessCodec supplies an explicit LosslessCodec instance.
func WithLosslessCodec(codec LosslessCodec) Option {
	return func(c *codecConfig) error {
		if codec == nil {
			return fmt.Errorf("fedsz: WithLosslessCodec: nil codec")
		}
		c.lossless, c.losslessName = codec, ""
		return nil
	}
}

// WithParallelism gives the codec its own worker pool with the given
// budget (0 selects GOMAXPROCS): every Compress/Decompress on this codec
// — and the per-tensor fan-out inside each call — draws from that one
// budget, so a server codec never oversubscribes the machine however many
// connections feed it. Without this option the codec shares the
// process-wide default pool.
func WithParallelism(n int) Option {
	return func(c *codecConfig) error {
		if n < 0 {
			return fmt.Errorf("fedsz: parallelism must be >= 0, got %d", n)
		}
		c.parallelism, c.hasParallel = n, true
		return nil
	}
}

// WithThreshold sets Algorithm 1's size gate: weight tensors with more
// than n elements take the lossy path (0 keeps the default 1024; negative
// disables the gate).
func WithThreshold(n int) Option {
	return func(c *codecConfig) error {
		c.threshold = n
		return nil
	}
}

// WithChunkElems sets the intra-tensor chunking target: a lossy tensor
// with more than n elements splits into block-aligned chunks that
// compress and decode concurrently on the codec's pool, emitting the v4
// stream format. 0 keeps the default (core.DefaultChunkElems, 512 Ki
// elements); negative disables chunking so every stream keeps the v2/v3
// layout. The chunk split is derived from element counts alone — emitted
// bytes never depend on the pool's parallelism.
func WithChunkElems(n int) Option {
	return func(c *codecConfig) error {
		c.chunkElems = n
		return nil
	}
}

// WithoutPartitioning routes every tensor through the lossy path — the
// ablation the paper warns causes "extreme degradation" (§V-C); useful
// for reproducing that experiment.
func WithoutPartitioning() Option {
	return func(c *codecConfig) error {
		c.noPartition = true
		return nil
	}
}

// New builds a Codec, validating the whole configuration up front: an
// unknown compressor or lossless name, a non-positive bound, or a bad
// parallelism fails here with a descriptive error instead of surfacing
// mid-pipeline. The zero-option call New() is the paper's recommended
// configuration (SZ2, REL 1e-2, blosc-lz, threshold 1024) on the shared
// process-wide pool.
func New(options ...Option) (*Codec, error) {
	var cfg codecConfig
	for _, opt := range options {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	c := &Codec{}
	if cfg.lossyName != "" {
		comp, err := compressors.Get(cfg.lossyName)
		if err != nil {
			return nil, fmt.Errorf("fedsz: unknown compressor %q (available: %s)",
				cfg.lossyName, strings.Join(compressors.Names(), ", "))
		}
		c.opts.Lossy = comp
	} else if cfg.lossy != nil {
		// A one-shot codec is promoted to the zero-copy contract here, so
		// the pipeline always runs append/into calls.
		c.opts.Lossy = ebcl.Adapt(cfg.lossy)
	}
	if cfg.losslessName != "" {
		codec, err := lossless.Get(cfg.losslessName)
		if err != nil {
			return nil, fmt.Errorf("fedsz: unknown lossless codec %q (available: %s)",
				cfg.losslessName, strings.Join(lossless.Names(), ", "))
		}
		c.opts.Lossless = codec
	} else {
		c.opts.Lossless = cfg.lossless // nil selects the blosc-lz default
	}
	if cfg.hasParams {
		if _, err := ebcl.ResolveAbs([]float32{0, 1}, cfg.params); err != nil {
			return nil, fmt.Errorf("fedsz: invalid error-control parameters: %w", err)
		}
		c.opts.LossyParams = cfg.params
	}
	c.opts.Threshold = cfg.threshold
	c.opts.DisablePartitioning = cfg.noPartition
	c.opts.ChunkElems = cfg.chunkElems
	if cfg.hasParallel {
		c.pool = sched.NewPool(cfg.parallelism)
	} else {
		c.pool = sched.Default()
	}
	return c, nil
}

// Options returns the resolved pipeline options the codec was built with
// (a copy; mutating it does not affect the codec).
func (c *Codec) Options() Options { return c.opts }

// Parallelism returns the codec's worker-pool budget.
func (c *Codec) Parallelism() int { return c.pool.Parallelism() }

// Compress runs the FedSZ pipeline over a state dict on the codec's pool.
func (c *Codec) Compress(ctx context.Context, sd *StateDict) ([]byte, *Stats, error) {
	return core.CompressWith(ctx, c.pool, sd, c.opts)
}

// CompressTo streams the encode of sd straight into w: the stream header
// and each finished tensor section are written while later tensors are
// still compressing on the codec's pool, so on a socket the upload
// overlaps the encode (Stats.EncodeOverlapRatio reports how much). The
// bytes written are identical to Compress. Cancelling ctx aborts at the
// next section boundary and returns ctx.Err().
func (c *Codec) CompressTo(ctx context.Context, w io.Writer, sd *StateDict) (*Stats, error) {
	return core.CompressToWith(ctx, c.pool, w, sd, c.opts)
}

// CompressDelta runs the pipeline with ref as the cross-round baseline:
// the emitted stream uses the v3 delta format, encoding each lossy tensor
// as the residual sd − ref when that wins and falling back to absolute
// per tensor otherwise. epoch tags the stream so DecompressDelta can verify
// both ends agree on the baseline. The error contract is unchanged: a REL
// bound is resolved against each original tensor's value range before the
// residual is encoded, so reconstruction error on the original data stays
// within the configured bound. internal/delta.Codec layers reference
// retention and epoch management on top of this call.
func (c *Codec) CompressDelta(ctx context.Context, sd, ref *StateDict, epoch uint32) ([]byte, *Stats, error) {
	opts := c.opts
	opts.Reference, opts.RefEpoch = ref, epoch
	return core.CompressWith(ctx, c.pool, sd, opts)
}

// DecompressDelta reverses CompressDelta against the same reference and
// epoch. Absolute (v1/v2) streams decode exactly as Decompress would; a v3
// stream whose residual sections cannot be reconstructed here — nil ref,
// epoch mismatch, or a reference missing a tensor — fails with
// core.ErrReference (distinct from ErrCorrupt, so callers can renegotiate
// an absolute exchange).
func (c *Codec) DecompressDelta(ctx context.Context, stream []byte, ref *StateDict, epoch uint32) (*StateDict, *DecompressStats, error) {
	return core.DecompressOpts(ctx, c.pool, stream, core.DecodeOptions{Reference: ref, RefEpoch: epoch})
}

// CompressAll compresses many client state dicts with the codec's one
// parallelism budget shared across the whole batch. Output i is
// bit-identical to Compress(sds[i]).
func (c *Codec) CompressAll(ctx context.Context, sds []*StateDict) ([][]byte, []*Stats, error) {
	return core.CompressAllWith(ctx, c.pool, sds, c.opts)
}

// Decompress reverses Compress on the codec's pool. The stream is
// self-describing: the compressors it was encoded with are selected by
// the names it carries, independent of this codec's configuration.
func (c *Codec) Decompress(ctx context.Context, stream []byte) (*StateDict, *DecompressStats, error) {
	return core.DecompressWith(ctx, c.pool, stream)
}

// DecompressFrom decodes a FedSZ stream incrementally from r: each fully
// received tensor section decodes on the codec's pool while the next is
// still being read, so on a socket the decode overlaps the receive — the
// mirror of CompressTo. Cancelling ctx aborts the decode promptly and
// returns ctx.Err().
func (c *Codec) DecompressFrom(ctx context.Context, r io.Reader) (*StateDict, *DecompressStats, error) {
	return core.DecompressFromWith(ctx, c.pool, r)
}

// DecompressAll reverses CompressAll — the aggregation-server hot path:
// all streams, and all tensors within them, decode under the codec's one
// parallelism budget. Output i is bit-identical to Decompress(streams[i]).
func (c *Codec) DecompressAll(ctx context.Context, streams [][]byte) ([]*StateDict, []*DecompressStats, error) {
	return core.DecompressAllWith(ctx, c.pool, streams)
}

// defaultCodec backs the package-level free functions: the paper's
// recommended configuration on the shared process-wide pool.
var defaultCodec = sync.OnceValue(func() *Codec {
	c, err := New()
	if err != nil {
		panic(fmt.Sprintf("fedsz: default codec: %v", err))
	}
	return c
})

// Default returns the package-level codec the free functions delegate to.
func Default() *Codec { return defaultCodec() }
