package fedsz

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"testing"
)

// TestNewValidatesConfiguration: every misconfiguration must fail at
// construction with a descriptive error — never mid-pipeline. The unknown
// compressor / lossless messages are regression-locked: callers match on
// them to print available options.
func TestNewValidatesConfiguration(t *testing.T) {
	if _, err := New(WithCompressor("lz4")); err == nil ||
		err.Error() != `fedsz: unknown compressor "lz4" (available: sz2, sz3, szx, zfp)` {
		t.Fatalf("unknown compressor error = %v", err)
	}
	if _, err := New(WithLossless("snappy")); err == nil ||
		err.Error() != `fedsz: unknown lossless codec "snappy" (available: blosclz, gzip, xzlike, zlib, zstdlike)` {
		t.Fatalf("unknown lossless error = %v", err)
	}
	if _, err := New(WithRelBound(0)); err == nil {
		t.Fatal("zero relative bound accepted")
	}
	if _, err := New(WithAbsBound(-1)); err == nil {
		t.Fatal("negative absolute bound accepted")
	}
	if _, err := New(WithParams(Params{})); err == nil {
		t.Fatal("zero-value params accepted")
	}
	if _, err := New(WithParallelism(-1)); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	if _, err := New(WithLossy(nil)); err == nil {
		t.Fatal("nil compressor accepted")
	}
	if _, err := New(WithLosslessCodec(nil)); err == nil {
		t.Fatal("nil lossless codec accepted")
	}

	c, err := New(
		WithCompressor("sz3"),
		WithRelBound(1e-3),
		WithLossless("zstdlike"),
		WithParallelism(3),
		WithThreshold(512),
	)
	if err != nil {
		t.Fatal(err)
	}
	o := c.Options()
	if o.Lossy.Name() != "sz3" || o.Lossless.Name() != "zstdlike" || o.Threshold != 512 {
		t.Fatalf("options not applied: %+v", o)
	}
	if c.Parallelism() != 3 {
		t.Fatalf("parallelism %d, want 3", c.Parallelism())
	}
}

// TestCodecMatchesFreeFunctions locks the compatibility contract: the
// session codec and the historical free functions produce byte-identical
// streams and identical reconstructions.
func TestCodecMatchesFreeFunctions(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(21, 22))
	sd := buildDemoDict(rng)

	codec, err := New(WithCompressor("sz2"), WithRelBound(1e-2), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	legacy, _, err := Compress(sd, Options{LossyParams: RelBound(1e-2)})
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := codec.Compress(ctx, sd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream, legacy) {
		t.Fatal("Codec.Compress differs from free Compress")
	}
	var buf bytes.Buffer
	if _, err := codec.CompressTo(ctx, &buf, sd); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), legacy) {
		t.Fatal("Codec.CompressTo differs from free Compress")
	}

	want, err := Decompress(legacy)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := codec.Decompress(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := got.MaxAbsDiff(want); err != nil || d != 0 {
		t.Fatalf("codec decode differs: d=%v err=%v", d, err)
	}
	gotFrom, _, err := codec.DecompressFrom(ctx, bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if d, err := gotFrom.MaxAbsDiff(want); err != nil || d != 0 {
		t.Fatalf("codec streaming decode differs: d=%v err=%v", d, err)
	}
}

// TestCodecBatchMatrix: the batch methods share the codec's budget and
// reproduce the single-call outputs bit-for-bit.
func TestCodecBatchMatrix(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(31, 32))
	sds := []*StateDict{buildDemoDict(rng), buildDemoDict(rng), buildDemoDict(rng)}
	codec, err := New(WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	streams, stats, err := codec.CompressAll(ctx, sds)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 3 || len(stats) != 3 {
		t.Fatalf("batch sizes: %d streams, %d stats", len(streams), len(stats))
	}
	for i, sd := range sds {
		single, _, err := codec.Compress(ctx, sd)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(streams[i], single) {
			t.Fatalf("batch stream %d differs from single compress", i)
		}
	}
	decoded, dstats, err := codec.DecompressAll(ctx, streams)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 3 || len(dstats) != 3 {
		t.Fatalf("batch decode sizes: %d dicts, %d stats", len(decoded), len(dstats))
	}
	for i := range decoded {
		want, _, err := codec.Decompress(ctx, streams[i])
		if err != nil {
			t.Fatal(err)
		}
		if d, err := decoded[i].MaxAbsDiff(want); err != nil || d != 0 {
			t.Fatalf("batch decode %d differs: d=%v err=%v", i, d, err)
		}
	}
}

// TestCodecContextCancelled: a pre-cancelled context fails every codec
// entry point with the context error.
func TestCodecContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	sd := buildDemoDict(rng)
	codec, err := New(WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := codec.Compress(context.Background(), sd)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := codec.Compress(ctx, sd); !errors.Is(err, context.Canceled) {
		t.Fatalf("Compress: %v", err)
	}
	if _, err := codec.CompressTo(ctx, &bytes.Buffer{}, sd); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompressTo: %v", err)
	}
	if _, _, err := codec.CompressAll(ctx, []*StateDict{sd}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompressAll: %v", err)
	}
	if _, _, err := codec.Decompress(ctx, stream); !errors.Is(err, context.Canceled) {
		t.Fatalf("Decompress: %v", err)
	}
	if _, _, err := codec.DecompressFrom(ctx, bytes.NewReader(stream)); !errors.Is(err, context.Canceled) {
		t.Fatalf("DecompressFrom: %v", err)
	}
	if _, _, err := codec.DecompressAll(ctx, [][]byte{stream}); !errors.Is(err, context.Canceled) {
		t.Fatalf("DecompressAll: %v", err)
	}
}

// TestDefaultCodecSharedPool: the free functions and Default() ride the
// same process-wide budget.
func TestDefaultCodecSharedPool(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default not a singleton")
	}
	if Default().Parallelism() < 1 {
		t.Fatal("default codec has no budget")
	}
}

// TestCodecChunkedStreams: WithChunkElems flips large tensors to the v4
// chunked layout; disabling keeps the legacy bytes.
func TestCodecChunkedStreams(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(31, 32))
	sd := buildDemoDict(rng) // conv.weight: 4608 elements → 3 chunks at 2048

	chunked, err := New(WithChunkElems(2048), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if chunked.Options().ChunkElems != 2048 {
		t.Fatalf("ChunkElems not applied: %+v", chunked.Options())
	}
	stream, stats, err := chunked.Compress(ctx, sd)
	if err != nil {
		t.Fatal(err)
	}
	if stream[4] != 4 {
		t.Fatalf("stream version %d, want 4", stream[4])
	}
	if stats.ChunkedTensors != 1 {
		t.Fatalf("ChunkedTensors = %d, want 1", stats.ChunkedTensors)
	}
	got, dstats, err := chunked.Decompress(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}
	if dstats.ChunkedTensors != 1 {
		t.Fatalf("decode ChunkedTensors = %d, want 1", dstats.ChunkedTensors)
	}
	// Chunking must not loosen the error contract.
	want := sd.Get("conv.weight").Data
	have := got.Get("conv.weight").Data
	var rangeW float64
	lo, hi := want[0], want[0]
	for _, v := range want {
		lo, hi = min(lo, v), max(hi, v)
	}
	rangeW = float64(hi - lo)
	for i := range want {
		d := float64(want[i] - have[i])
		if d < 0 {
			d = -d
		}
		if d > 1e-2*rangeW*(1+1e-6) {
			t.Fatalf("element %d error %g exceeds REL 1e-2 bound", i, d)
		}
	}

	// A stream from any codec stays self-describing: the default codec
	// (chunking unconfigured) decodes it identically.
	plainCodec, err := New()
	if err != nil {
		t.Fatal(err)
	}
	got2, _, err := plainCodec.Decompress(ctx, stream)
	if err != nil {
		t.Fatal(err)
	}
	if d, err := got2.MaxAbsDiff(got); err != nil || d != 0 {
		t.Fatalf("cross-codec decode differs: d=%v err=%v", d, err)
	}

	// Disabled chunking reproduces the legacy v2 bytes exactly.
	off, err := New(WithChunkElems(-1))
	if err != nil {
		t.Fatal(err)
	}
	offStream, _, err := off.Compress(ctx, sd)
	if err != nil {
		t.Fatal(err)
	}
	legacy, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(offStream, legacy) {
		t.Fatal("WithChunkElems(-1) stream differs from legacy bytes")
	}
}
