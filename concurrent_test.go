package fedsz

// Concurrent-codec race test for the zero-copy contract: one fedsz.Codec
// value compressing and decompressing on N goroutines with shared buffer
// pools. Run under -race in CI. Asserts that the codec's worker pool is
// quiescent afterwards (Pool.Busy() == 0) and that no decode buffer is
// aliased across goroutines — pooled reconstruction buffers must never be
// handed to two live decodes.

import (
	"context"
	"math"
	"math/rand/v2"
	"sync"
	"testing"
)

func TestCodecConcurrentSharedPools(t *testing.T) {
	codec, err := New(WithParallelism(4), WithThreshold(-1))
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 5

	// Distinct, recognizable payloads per goroutine: tensor g is filled
	// with values centered on g+1 so cross-goroutine mixups are visible in
	// the data, not just in shapes.
	dicts := make([]*StateDict, goroutines)
	for g := range dicts {
		rng := rand.New(rand.NewPCG(uint64(g), 99))
		data := make([]float32, 2048+g*17)
		for i := range data {
			data[i] = float32(g+1) + float32(rng.NormFloat64())*0.01
		}
		sd := NewStateDict()
		sd.Add("w", KindWeight, NewTensor(data, len(data)))
		sd.Add("meta", KindScalarMeta, NewTensor([]float32{float32(g)}, 1))
		dicts[g] = sd
	}

	decoded := make([]*StateDict, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for it := 0; it < iters; it++ {
				stream, _, err := codec.Compress(ctx, dicts[g])
				if err != nil {
					errs[g] = err
					return
				}
				sd, _, err := codec.Decompress(ctx, stream)
				if err != nil {
					errs[g] = err
					return
				}
				if it < iters-1 {
					// Fold-and-discard iterations recycle their buffers —
					// the steady-state server loop under contention.
					Recycle(sd)
				} else {
					decoded[g] = sd
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	// The shared budget must be fully returned.
	if busy := codec.pool.Busy(); busy != 0 {
		t.Fatalf("codec pool still holds %d helper tokens after completion", busy)
	}

	// Every goroutine's final decode must match its own input within the
	// bound — values near g+1 prove no cross-goroutine buffer mixup.
	check := func() {
		for g, sd := range decoded {
			w := sd.Get("w")
			want := dicts[g].Get("w")
			if w == nil || len(w.Data) != len(want.Data) {
				t.Fatalf("goroutine %d: bad decoded tensor", g)
			}
			for i := range w.Data {
				if math.Abs(float64(w.Data[i])-float64(want.Data[i])) > 0.05 {
					t.Fatalf("goroutine %d: element %d = %v, want ~%v (cross-goroutine aliasing?)",
						g, i, w.Data[i], want.Data[i])
				}
			}
		}
	}
	check()

	// Aliasing probe: scribbling over goroutine 0's decode buffers must
	// not perturb any other goroutine's result.
	for _, e := range decoded[0].Entries() {
		for i := range e.Tensor.Data {
			e.Tensor.Data[i] = -1e9
		}
	}
	for g := 1; g < goroutines; g++ {
		w := decoded[g].Get("w")
		for i, v := range w.Data {
			if v == -1e9 {
				t.Fatalf("goroutine %d element %d shares storage with goroutine 0's decode", g, i)
			}
		}
	}
}
