package fedsz

// DeltaCodec: the session-oriented cross-round delta API, layered on Codec
// the way Codec layers on the free functions. It owns the retained
// reference state dict and its epoch, compresses round-t updates as
// residuals against the round-(t−1) baseline (the v3 stream format, with
// per-tensor fallback to absolute whenever a residual doesn't win), and
// decodes them back against the same baseline.

import (
	"context"

	"repro/internal/delta"
	"repro/internal/tensor"
)

// DeltaCodec is a cross-round delta session layered on a Codec. Compress
// and Decompress may be called concurrently with each other but not with
// SetReference — advance the reference at round boundaries, as
// fl.RunRound does.
type DeltaCodec struct {
	base *Codec
	ref  delta.Ref
}

// NewDelta layers cross-round delta compression on an existing Codec.
// Before the first SetReference every Compress emits a plain absolute
// stream — a fresh session is wire-compatible with non-delta receivers by
// construction.
func NewDelta(base *Codec) *DeltaCodec { return &DeltaCodec{base: base} }

// Base returns the underlying Codec.
func (c *DeltaCodec) Base() *Codec { return c.base }

// SetReference retains a deep copy of sd as the baseline for subsequent
// Compress/Decompress calls and returns the new epoch — call it with the
// broadcast global state at the top of each round. The copy reuses the
// previous reference's storage when shapes match, so steady-state rounds
// allocate nothing.
func (c *DeltaCodec) SetReference(sd *StateDict) uint32 { return c.ref.Set(sd) }

// Epoch returns the current reference epoch (0 before the first
// SetReference).
func (c *DeltaCodec) Epoch() uint32 {
	_, epoch, _ := c.ref.Get()
	return epoch
}

// RefProvider returns the epoch-checked reference lookup an flserve server
// consumes (Config.RefProvider), so uploads compressed by this session
// reconstruct against its exact baseline.
func (c *DeltaCodec) RefProvider() func(epoch uint32) *tensor.StateDict {
	return c.ref.Provider()
}

// Compress encodes sd against the retained reference (absolute stream
// before the first SetReference). Stats.DeltaTensors and
// Stats.DeltaBytesSaved report what the residual encoding won.
func (c *DeltaCodec) Compress(ctx context.Context, sd *StateDict) ([]byte, *Stats, error) {
	ref, epoch, ok := c.ref.Get()
	if !ok {
		return c.base.Compress(ctx, sd)
	}
	return c.base.CompressDelta(ctx, sd, ref, epoch)
}

// Decompress reverses Compress against the retained reference. Residual
// streams from a different epoch — or arriving before any SetReference —
// fail with an error wrapping core.ErrReference, the signal to renegotiate
// an absolute exchange rather than treat the stream as corrupt.
func (c *DeltaCodec) Decompress(ctx context.Context, stream []byte) (*StateDict, *DecompressStats, error) {
	ref, epoch, _ := c.ref.Get()
	return c.base.DecompressDelta(ctx, stream, ref, epoch)
}
