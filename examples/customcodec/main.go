// Custom-codec scenario: FedSZ is a pipeline, not a single compressor —
// the paper positions it as a "last step" any EBLC can plug into. This
// example implements a minimal custom error-bounded compressor (a plain
// uniform quantizer with no prediction or entropy stage), registers it,
// runs it through the full FedSZ pipeline, and compares it against SZ2 to
// show what the prediction + Huffman stages buy.
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	fedsz "repro"
)

// uniformQuantizer is the simplest possible EBLC: values are quantized to
// bins of width 2·ebAbs and stored as raw 16-bit codes. Residuals outside
// the code range fall back to literals. It satisfies the same error-bound
// contract as SZ2 but skips prediction and entropy coding entirely.
//
// It implements the zero-copy contract (fedsz.ZeroCopyCompressor)
// directly: CompressAppend extends the caller's buffer, DecompressInto
// reconstructs into the caller's buffer, DecodedLen probes the header, and
// the one-shot Compress/Decompress are thin wrappers. A codec that only
// has the one-shot pair still registers fine — the registry adapts it —
// but pays one copy per call; implementing the three zero-copy methods is
// what keeps a custom codec on the pipeline's pooled hot path.
type uniformQuantizer struct{}

func (uniformQuantizer) Name() string { return "uniform16" }

// Compress is CompressAppend with a nil dst.
func (u uniformQuantizer) Compress(data []float32, p fedsz.Params) ([]byte, error) {
	return u.CompressAppend(nil, data, p)
}

// Decompress is DecompressInto with a nil dst.
func (u uniformQuantizer) Decompress(stream []byte) ([]float32, error) {
	return u.DecompressInto(nil, stream)
}

// DecodedLen reads the element count from the 16-byte header without
// decoding any payload — callers use it to size the DecompressInto buffer.
func (uniformQuantizer) DecodedLen(stream []byte) (int, error) {
	if len(stream) < 16 {
		return 0, errors.New("uniform16: short stream")
	}
	return int(binary.LittleEndian.Uint32(stream)), nil
}

// CompressAppend appends the encoded stream to dst, like append: the
// appended bytes must not depend on dst's prior contents, and must alias
// neither data nor any retained state.
func (uniformQuantizer) CompressAppend(dst []byte, data []float32, p fedsz.Params) ([]byte, error) {
	if p.Value <= 0 {
		return nil, errors.New("uniform16: bound must be positive")
	}
	// Resolve a REL bound against the value range, SZ-style.
	lo, hi := float32(0), float32(0)
	if len(data) > 0 {
		lo, hi = data[0], data[0]
		for _, v := range data {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	ebAbs := p.Value
	if p.Mode == fedsz.RelBound(1).Mode { // ModeRelative
		ebAbs = p.Value * float64(hi-lo)
	}
	out := binary.LittleEndian.AppendUint32(dst, uint32(len(data)))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(ebAbs))
	out = binary.LittleEndian.AppendUint32(out, math.Float32bits(lo))
	if ebAbs == 0 {
		// Constant or empty input: store literals verbatim.
		for _, v := range data {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
		}
		return out, nil
	}
	for _, v := range data {
		code := int64(math.Round(float64(v-lo) / (2 * ebAbs)))
		if code < 0 || code > math.MaxUint16-1 {
			out = binary.LittleEndian.AppendUint16(out, math.MaxUint16)
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
			continue
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(code))
	}
	return out, nil
}

// DecompressInto reconstructs into dst's storage: the result reuses dst's
// backing array when its capacity suffices and is freshly allocated
// otherwise. Every element is overwritten, so a dirty recycled buffer
// decodes identically to a nil one.
func (uniformQuantizer) DecompressInto(dst []float32, stream []byte) ([]float32, error) {
	if len(stream) < 16 {
		return nil, errors.New("uniform16: short stream")
	}
	n := int(binary.LittleEndian.Uint32(stream))
	ebAbs := math.Float64frombits(binary.LittleEndian.Uint64(stream[4:]))
	lo := math.Float32frombits(binary.LittleEndian.Uint32(stream[12:]))
	pos := 16
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	out := dst[:0]
	if ebAbs == 0 {
		for i := 0; i < n; i++ {
			if pos+4 > len(stream) {
				return nil, errors.New("uniform16: truncated")
			}
			out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(stream[pos:])))
			pos += 4
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		if pos+2 > len(stream) {
			return nil, errors.New("uniform16: truncated")
		}
		code := binary.LittleEndian.Uint16(stream[pos:])
		pos += 2
		if code == math.MaxUint16 {
			if pos+4 > len(stream) {
				return nil, errors.New("uniform16: truncated")
			}
			out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(stream[pos:])))
			pos += 4
			continue
		}
		out = append(out, lo+float32(float64(code)*2*ebAbs))
	}
	return out, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := fedsz.RegisterCompressor("uniform16", func() fedsz.Compressor {
		return uniformQuantizer{}
	}); err != nil {
		return err
	}

	// A weight-shaped update.
	rng := rand.New(rand.NewPCG(9, 9))
	weights := make([]float32, 1<<18)
	for i := range weights {
		weights[i] = float32(0.02 * (rng.ExpFloat64() - rng.ExpFloat64()))
	}
	sd := fedsz.NewStateDict()
	sd.Add("layer.weight", fedsz.KindWeight, fedsz.NewTensor(weights, len(weights)))

	fmt.Println("same pipeline, two lossy backends at REL 1e-2:")
	for _, name := range []string{"uniform16", "sz2"} {
		// A registered custom compressor builds into a session codec by
		// name like any built-in; a typo would fail here, not mid-stream.
		codec, err := fedsz.New(fedsz.WithCompressor(name), fedsz.WithRelBound(1e-2))
		if err != nil {
			return err
		}
		stream, stats, err := codec.Compress(context.Background(), sd)
		if err != nil {
			return err
		}
		// Streams are self-describing: Decompress finds uniform16 in the
		// registry without being told.
		restored, _, err := codec.Decompress(context.Background(), stream)
		if err != nil {
			return err
		}
		var maxErr float64
		r := restored.Get("layer.weight").Data
		for i := range weights {
			if d := math.Abs(float64(weights[i]) - float64(r[i])); d > maxErr {
				maxErr = d
			}
		}
		fmt.Printf("  %-10s ratio %6.2fx  max error %.6f\n", name, stats.Ratio(), maxErr)
	}
	fmt.Println("\nSZ2's prediction + Huffman stages buy ~4-8x over plain 16-bit")
	fmt.Println("quantization at the same error bound — the gap the paper's")
	fmt.Println("compressor study (Table I) is about.")
	return nil
}
