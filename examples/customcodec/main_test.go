package main

import "testing"

// TestCustomCodecRuns registers the uniform quantizer and round-trips
// through the full pipeline with both backends.
func TestCustomCodecRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
