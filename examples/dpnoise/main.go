// Differential-privacy scenario (paper §VII-D): the error FedSZ's lossy
// stage injects into the weights looks Laplacian — the noise family used by
// classic ε-differential-privacy mechanisms. This example compresses a
// model at several error bounds, extracts the error vector, fits Laplace
// and Gaussian distributions, and compares goodness of fit with the
// Kolmogorov–Smirnov statistic.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"

	fedsz "repro"
	"repro/internal/nn/models"
	"repro/internal/stats"
)

func main() {
	if err := run(0.02); err != nil {
		log.Fatal(err)
	}
}

func run(scale float64) error {
	rng := rand.New(rand.NewPCG(3, 3))
	sd, err := models.BuildProfile("alexnet", rng, scale)
	if err != nil {
		return err
	}
	// Flatten the weight partition: the data the EBLC perturbs.
	var weights []float32
	for _, e := range sd.Entries() {
		if e.Kind == fedsz.KindWeight {
			weights = append(weights, e.Tensor.Data...)
		}
	}
	comp, err := fedsz.CompressorByName("sz2")
	if err != nil {
		return err
	}

	fmt.Println("FedSZ decompression-error analysis (paper Fig. 10 methodology)")
	fmt.Printf("%-8s %-12s %-12s %-12s %-12s %-8s\n",
		"REL", "err std", "laplace b", "KS laplace", "KS gauss", "winner")
	for _, eb := range []float64{0.5, 0.1, 0.05, 0.01} {
		stream, err := comp.Compress(weights, fedsz.RelBound(eb))
		if err != nil {
			return err
		}
		recon, err := comp.Decompress(stream)
		if err != nil {
			return err
		}
		errs := stats.Errors(weights, recon)
		summ := stats.Summarize(errs)
		lf := stats.FitLaplace(errs)
		gf := stats.FitGaussian(errs)
		ksL := stats.KSDistance(errs, lf.CDF)
		ksG := stats.KSDistance(errs, gf.CDF)
		winner := "laplace"
		if ksG < ksL {
			winner = "gauss"
		}
		fmt.Printf("%-8g %-12.3e %-12.3e %-12.4f %-12.4f %-8s\n",
			eb, summ.Std, lf.B, ksL, ksG, winner)

		// Text histogram of the error distribution.
		lim := 3 * summ.Std
		if lim > 0 {
			h := stats.NewHistogram(errs, -lim, lim, 41)
			maxC := 1
			for _, c := range h.Counts {
				if c > maxC {
					maxC = c
				}
			}
			for i := 0; i < len(h.Counts); i += 4 {
				bar := strings.Repeat("#", h.Counts[i]*40/maxC)
				fmt.Printf("  %+9.2e |%s\n", h.BinCenter(i), bar)
			}
		}
	}
	fmt.Println("\nA Laplacian error profile suggests the compressor's noise could")
	fmt.Println("double as DP noise — the paper's §VII-D observation. Formal ε")
	fmt.Println("guarantees would need calibrated sensitivity analysis (future work).")
	return nil
}
