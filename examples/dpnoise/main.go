// Differential-privacy scenario (paper §VII-D): the error FedSZ's lossy
// stage injects into the weights looks Laplacian — the noise family used by
// classic ε-differential-privacy mechanisms. This example compresses a
// model at several error bounds, extracts the error vector, fits Laplace
// and Gaussian distributions, and compares goodness of fit with the
// Kolmogorov–Smirnov statistic.
//
// The second stage composes DP noise with the cross-round delta mode: a
// client adds calibrated Laplace noise to its update, then ships it as a
// residual against the broadcast global. The residual is the (small) SGD
// step plus the (small) DP noise, so the delta encoding keeps winning, and
// the lossy bound applies to the noised update — the mechanism's noise
// survives the round trip within the usual error contract.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"strings"

	fedsz "repro"
	"repro/internal/nn/models"
	"repro/internal/stats"
)

func main() {
	if err := run(0.02); err != nil {
		log.Fatal(err)
	}
	if _, err := runDelta(0.02, 5e-4, 1e-3); err != nil {
		log.Fatal(err)
	}
}

func run(scale float64) error {
	rng := rand.New(rand.NewPCG(3, 3))
	sd, err := models.BuildProfile("alexnet", rng, scale)
	if err != nil {
		return err
	}
	// Flatten the weight partition: the data the EBLC perturbs.
	var weights []float32
	for _, e := range sd.Entries() {
		if e.Kind == fedsz.KindWeight {
			weights = append(weights, e.Tensor.Data...)
		}
	}
	comp, err := fedsz.CompressorByName("sz2")
	if err != nil {
		return err
	}

	fmt.Println("FedSZ decompression-error analysis (paper Fig. 10 methodology)")
	fmt.Printf("%-8s %-12s %-12s %-12s %-12s %-8s\n",
		"REL", "err std", "laplace b", "KS laplace", "KS gauss", "winner")
	for _, eb := range []float64{0.5, 0.1, 0.05, 0.01} {
		stream, err := comp.Compress(weights, fedsz.RelBound(eb))
		if err != nil {
			return err
		}
		recon, err := comp.Decompress(stream)
		if err != nil {
			return err
		}
		errs := stats.Errors(weights, recon)
		summ := stats.Summarize(errs)
		lf := stats.FitLaplace(errs)
		gf := stats.FitGaussian(errs)
		ksL := stats.KSDistance(errs, lf.CDF)
		ksG := stats.KSDistance(errs, gf.CDF)
		winner := "laplace"
		if ksG < ksL {
			winner = "gauss"
		}
		fmt.Printf("%-8g %-12.3e %-12.3e %-12.4f %-12.4f %-8s\n",
			eb, summ.Std, lf.B, ksL, ksG, winner)

		// Text histogram of the error distribution.
		lim := 3 * summ.Std
		if lim > 0 {
			h := stats.NewHistogram(errs, -lim, lim, 41)
			maxC := 1
			for _, c := range h.Counts {
				if c > maxC {
					maxC = c
				}
			}
			for i := 0; i < len(h.Counts); i += 4 {
				bar := strings.Repeat("#", h.Counts[i]*40/maxC)
				fmt.Printf("  %+9.2e |%s\n", h.BinCenter(i), bar)
			}
		}
	}
	fmt.Println("\nA Laplacian error profile suggests the compressor's noise could")
	fmt.Println("double as DP noise — the paper's §VII-D observation. Formal ε")
	fmt.Println("guarantees would need calibrated sensitivity analysis (future work).")
	return nil
}

// deltaReport is what one DP-noised delta round trip measured, for the test
// to assert on.
type deltaReport struct {
	DeltaTensors   int
	BytesSaved     int
	WireBytes      int
	AbsWireBytes   int
	MaxReconErr    float64
	NoiseKSLaplace float64
}

// laplace draws one Laplace(0, b) sample by inverse CDF.
func laplace(rng *rand.Rand, b float64) float64 {
	u := rng.Float64() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// runDelta runs the DP-noise × delta-residual × lossy-bound composition:
// reference global, update = reference + SGD-sized drift + Laplace(b) DP
// noise, shipped as a v3 residual under an ABS bound.
func runDelta(scale, noiseB, eb float64) (*deltaReport, error) {
	rng := rand.New(rand.NewPCG(5, 7))
	ref, err := models.BuildProfile("alexnet", rng, scale)
	if err != nil {
		return nil, err
	}
	upd := ref.Clone()
	noise := make([]float32, 0, 1024)
	for _, e := range upd.Entries() {
		for i := range e.Tensor.Data {
			n := laplace(rng, noiseB)
			e.Tensor.Data[i] += float32(1e-3*rng.NormFloat64() + n)
			noise = append(noise, float32(n))
		}
	}

	base, err := fedsz.New(fedsz.WithAbsBound(eb))
	if err != nil {
		return nil, err
	}
	codec := fedsz.NewDelta(base)
	codec.SetReference(ref)
	ctx := context.Background()
	stream, st, err := codec.Compress(ctx, upd)
	if err != nil {
		return nil, err
	}
	recon, _, err := codec.Decompress(ctx, stream)
	if err != nil {
		return nil, err
	}
	maxErr, err := recon.MaxAbsDiff(upd)
	if err != nil {
		return nil, err
	}
	absStream, _, err := base.Compress(ctx, upd)
	if err != nil {
		return nil, err
	}
	lf := stats.FitLaplace(noise)
	rep := &deltaReport{
		DeltaTensors:   st.DeltaTensors,
		BytesSaved:     st.DeltaBytesSaved,
		WireBytes:      len(stream),
		AbsWireBytes:   len(absStream),
		MaxReconErr:    maxErr,
		NoiseKSLaplace: stats.KSDistance(noise, lf.CDF),
	}
	fmt.Printf("\nDP noise × delta residual (Laplace b=%g, ABS bound %g):\n", noiseB, eb)
	fmt.Printf("  residual sections %d, wire %d B vs absolute %d B (%.1f%% saved)\n",
		rep.DeltaTensors, rep.WireBytes, rep.AbsWireBytes,
		100*(1-float64(rep.WireBytes)/float64(rep.AbsWireBytes)))
	fmt.Printf("  max reconstruction error %.3e (bound %g): the DP noise rides\n", maxErr, eb)
	fmt.Println("  the residual and survives the lossy round trip within the bound.")
	return rep, nil
}
