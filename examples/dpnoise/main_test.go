package main

import "testing"

// TestDPNoiseRuns fits the error distributions on a small profile — the
// CLI default uses scale 0.02; the smoke test shrinks it further.
func TestDPNoiseRuns(t *testing.T) {
	if err := run(0.005); err != nil {
		t.Fatal(err)
	}
}
