package main

import "testing"

// TestDPNoiseRuns fits the error distributions on a small profile — the
// CLI default uses scale 0.02; the smoke test shrinks it further.
func TestDPNoiseRuns(t *testing.T) {
	if err := run(0.005); err != nil {
		t.Fatal(err)
	}
}

// TestDPNoiseDeltaScenario is the promoted DP × delta × lossy-bound
// scenario: Laplace DP noise added to an update must ride the residual
// encoding (which still wins over absolute) and come back within the lossy
// bound — noise calibrated for privacy is not eaten by compression.
func TestDPNoiseDeltaScenario(t *testing.T) {
	const (
		noiseB = 5e-4
		bound  = 1e-3
	)
	rep, err := runDelta(0.01, noiseB, bound)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeltaTensors == 0 {
		t.Fatal("DP-noised update never took the residual path")
	}
	if rep.BytesSaved <= 0 {
		t.Fatalf("residual path engaged but saved nothing: %+v", rep)
	}
	if rep.WireBytes >= rep.AbsWireBytes {
		t.Fatalf("delta stream %d B not below absolute %d B", rep.WireBytes, rep.AbsWireBytes)
	}
	// The error contract holds on the noised data (small float slack).
	if rep.MaxReconErr > bound*(1+1e-6) {
		t.Fatalf("reconstruction error %g exceeds bound %g", rep.MaxReconErr, bound)
	}
	// Sanity on the mechanism itself: the injected noise is Laplacian.
	if rep.NoiseKSLaplace > 0.05 {
		t.Fatalf("injected noise KS distance to Laplace %g — mechanism broken", rep.NoiseKSLaplace)
	}
}
