// Edge-device scenario: an autonomous-vehicle-style client (paper §I) must
// decide whether compressing its model update pays off on its current
// uplink, using the paper's Equation 1 with *measured* compression costs.
//
// The example sweeps bandwidths from congested cellular (1 Mbps) to a
// data-center fabric (10 Gbps) and prints where the compress/don't-compress
// crossover falls (the paper locates it near 500 Mbps).
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	fedsz "repro"
	"repro/internal/nn/models"
)

func main() {
	// A scaled AlexNet profile stands in for the client's trained model
	// (full-size weights are synthesized at 5% scale; times and sizes are
	// extrapolated linearly back to paper scale below).
	if err := run(0.05); err != nil {
		log.Fatal(err)
	}
}

func run(scale float64) error {
	rng := rand.New(rand.NewPCG(7, 7))
	sd, err := models.BuildProfile("alexnet", rng, scale)
	if err != nil {
		return err
	}

	stream, stats, err := fedsz.Compress(sd, fedsz.Options{LossyParams: fedsz.RelBound(1e-2)})
	if err != nil {
		return err
	}
	t0 := time.Now()
	if _, err := fedsz.Decompress(stream); err != nil {
		return err
	}
	tD := time.Since(t0)

	// Extrapolate to paper scale (linear in bytes).
	up := 1 / scale
	tC := time.Duration(float64(stats.CompressTime) * up)
	tDfull := time.Duration(float64(tD) * up)
	raw := int(float64(stats.RawBytes) * up)
	comp := int(float64(stats.CompressedBytes) * up)

	fmt.Printf("AlexNet update: %.0f MB raw, %.0f MB compressed (%.2fx), codec %.2fs\n",
		float64(raw)/1e6, float64(comp)/1e6, stats.Ratio(), (tC + tDfull).Seconds())
	fmt.Printf("\n%-16s %-14s %-14s %-10s %s\n", "bandwidth", "raw xfer", "fedsz total", "compress?", "speedup")

	var crossover float64 = -1
	for _, mbps := range []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000} {
		link := fedsz.Link{BandwidthMbps: mbps}
		d := fedsz.ShouldCompress(tC, tDfull, raw, comp, link)
		fmt.Printf("%-16s %-14s %-14s %-10v %.2fx\n",
			fmt.Sprintf("%g Mbps", mbps),
			d.UncompressedTime.Round(time.Millisecond),
			d.CompressedTime.Round(time.Millisecond),
			d.Compress, d.Speedup())
		if !d.Compress && crossover < 0 {
			crossover = mbps
		}
	}
	if crossover > 0 {
		fmt.Printf("\ncompression stops paying off near %g Mbps (paper: ~500 Mbps)\n", crossover)
	} else {
		fmt.Println("\ncompression pays off at every tested bandwidth")
	}
	return nil
}
