package main

import "testing"

// TestEdgeDeviceRuns sweeps the Eqn-1 crossover on a small profile — the
// CLI default uses scale 0.05; the smoke test shrinks it for speed.
func TestEdgeDeviceRuns(t *testing.T) {
	if err := run(0.01); err != nil {
		t.Fatal(err)
	}
}
