// Federated scenario: the paper's end-to-end loop — four FedAvg clients
// training a CNN on (synthetic) CIFAR-10-like shards, uploading FedSZ-
// compressed updates each round, with a side-by-side uncompressed baseline
// and simulated 10 Mbps communication times.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ebcl"
	"repro/internal/fl"
	"repro/internal/netsim"
	"repro/internal/nn/models"
)

func main() {
	const (
		rounds   = 8
		nClients = 4
		seed     = 11
	)
	for _, compressed := range []bool{false, true} {
		label := "uncompressed"
		var transport fl.Transport = fl.RawTransport{}
		if compressed {
			label = "fedsz (SZ2 @ REL 1e-2 + blosclz)"
			transport = fl.NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
		}
		fmt.Printf("=== %s ===\n", label)
		if err := run(transport, rounds, nClients, seed); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

func run(transport fl.Transport, rounds, nClients int, seed uint64) error {
	cfg, err := dataset.ScaledConfig("cifar10", 16, 256, 64, seed)
	if err != nil {
		return err
	}
	train, test := dataset.Generate(cfg)
	shards := dataset.ShardIID(train, nClients, seed)
	in := models.Input{Channels: cfg.Channels, Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes}
	rng := rand.New(rand.NewPCG(seed, 1))
	global, err := models.BuildMini("alexnet", rng, in)
	if err != nil {
		return err
	}
	clients := make([]*fl.Client, nClients)
	for i := range clients {
		crng := rand.New(rand.NewPCG(seed, uint64(i)+10))
		net, err := models.BuildMini("alexnet", crng, in)
		if err != nil {
			return err
		}
		clients[i] = fl.NewClient(i, net, shards[i], 16, 0.02, seed)
	}
	fed := fl.NewFederation(global, clients, transport, test)

	fmt.Printf("%-6s %-8s %-9s %-12s %-8s %-12s\n",
		"round", "loss", "top1(%)", "wire bytes", "ratio", "comm@10Mbps")
	var totalComm float64
	for r := 0; r < rounds; r++ {
		res, err := fed.RunRound(context.Background(), r, 1)
		if err != nil {
			return err
		}
		comm := netsim.EdgeLink.TransmitTime(res.WireBytes)
		totalComm += comm.Seconds()
		fmt.Printf("%-6d %-8.4f %-9.2f %-12d %-8.2f %-12v\n",
			r, res.Loss, 100*res.Accuracy, res.WireBytes,
			float64(res.RawBytes)/float64(res.WireBytes), comm.Round(1000000))
	}
	fmt.Printf("total simulated communication: %.1fs over %d rounds\n", totalComm, rounds)
	return nil
}
