package main

import (
	"testing"

	"repro/internal/fl"
)

// TestFederatedExampleRuns executes a single quickstart-sized round with
// the raw transport (the FedSZ variant is covered by internal/fl tests).
func TestFederatedExampleRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("one full training round; skipped in short mode")
	}
	if err := run(fl.RawTransport{}, 1, 2, 11); err != nil {
		t.Fatal(err)
	}
}
