// Quickstart: compress one model update with FedSZ and verify the
// round-trip properties the paper relies on — weights reconstructed within
// the relative error bound, metadata bit-exact, and a substantial size
// reduction.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	fedsz "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build a model update through the public API: one dense weight tensor
	// (spiky, near-zero mass like real FL weights) plus small metadata.
	rng := rand.New(rand.NewPCG(42, 1))
	weights := make([]float32, 256*128*3*3)
	for i := range weights {
		weights[i] = float32(0.02 * (rng.ExpFloat64() - rng.ExpFloat64()))
	}
	bias := make([]float32, 256)
	for i := range bias {
		bias[i] = float32(0.01 * rng.NormFloat64())
	}
	running := make([]float32, 256)
	for i := range running {
		running[i] = float32(1 + 0.1*rng.NormFloat64())
	}

	sd := fedsz.NewStateDict()
	sd.Add("conv1.weight", fedsz.KindWeight, fedsz.NewTensor(weights, 256, 128, 3, 3))
	sd.Add("conv1.bias", fedsz.KindBias, fedsz.NewTensor(bias, 256))
	sd.Add("bn1.running_var", fedsz.KindRunningStat, fedsz.NewTensor(running, 256))

	// Build a session codec with the paper's recommended setting (SZ2 at
	// REL 1e-2): configuration is validated here, once, and the codec is
	// reusable across any number of updates.
	codec, err := fedsz.New(fedsz.WithCompressor("sz2"), fedsz.WithRelBound(1e-2))
	if err != nil {
		return err
	}
	stream, stats, err := codec.Compress(context.Background(), sd)
	if err != nil {
		return err
	}
	fmt.Printf("state dict: %d tensors, %d parameters (%.2f MB)\n",
		sd.Len(), sd.NumParams(), float64(sd.SizeBytes())/1e6)
	fmt.Printf("compressed: %.2f MB -> %.2f MB  (%.2fx) in %v\n",
		float64(stats.RawBytes)/1e6, float64(stats.CompressedBytes)/1e6,
		stats.Ratio(), stats.CompressTime.Round(1000))

	// Decompress and verify.
	restored, _, err := codec.Decompress(context.Background(), stream)
	if err != nil {
		return err
	}
	// Metadata is bit-exact.
	for i, v := range bias {
		if restored.Get("conv1.bias").Data[i] != v {
			return fmt.Errorf("bias corrupted at %d", i)
		}
	}
	// Weights are within the relative bound.
	lo, hi := weights[0], weights[0]
	for _, v := range weights {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	bound := 1e-2 * float64(hi-lo)
	var maxErr float64
	rw := restored.Get("conv1.weight").Data
	for i := range weights {
		if d := math.Abs(float64(weights[i]) - float64(rw[i])); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("max weight error: %.6f (bound %.6f) — within bound: %v\n",
		maxErr, bound, maxErr <= bound*(1+1e-6))
	fmt.Println("metadata: bit-exact")
	if maxErr > bound*(1+1e-6) {
		return fmt.Errorf("weight error %g exceeds bound %g", maxErr, bound)
	}
	return nil
}
