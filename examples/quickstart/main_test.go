package main

import "testing"

// TestQuickstartRuns executes the example end-to-end; run returns an error
// if the round trip violates the bound or corrupts metadata.
func TestQuickstartRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
