// Streaming scenario: the paper's aggregation server fed by real sockets.
// Eight clients compress one model update each and upload it concurrently
// over loopback TCP through a 100 Mbps-throttled uplink; the server
// decodes each tensor while the next is still arriving (internal/wire
// framing into core.DecompressFrom on a shared worker pool) and folds
// finished updates incrementally into a FedAvg mean. The run verifies the
// streamed aggregate against the in-memory decode of the same payloads and
// prints the decode/receive overlap the pipelining buys.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/flserve"
	"repro/internal/netsim"
	"repro/internal/nn/models"
	"repro/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const nClients = 8
	link := netsim.Link{BandwidthMbps: 100}

	// Each client trains locally in the real loop; here one scaled AlexNet
	// profile per client stands in for a round's update.
	streams := make([][]byte, nClients)
	rawBytes := 0
	for i := range streams {
		rng := rand.New(rand.NewPCG(7, uint64(i)+1))
		sd, err := models.BuildProfile("alexnet", rng, 0.02)
		if err != nil {
			return err
		}
		rawBytes += sd.SizeBytes()
		if streams[i], _, err = core.Compress(sd, core.Options{LossyParams: ebcl.Rel(1e-2)}); err != nil {
			return err
		}
	}

	// The aggregation server: shared decode budget, incremental FedAvg.
	var agg flserve.Aggregator
	srv, err := flserve.Listen("127.0.0.1:0", flserve.Config{Parallel: 4, Handler: agg.Add})
	if err != nil {
		return err
	}
	fmt.Printf("aggregation server on %s, %d clients @ %g Mbps each\n",
		srv.Addr(), nClients, link.BandwidthMbps)

	t0 := time.Now()
	errs := make([]error, nClients)
	var wg sync.WaitGroup
	for i, s := range streams {
		wg.Add(1)
		go func(i int, s []byte) {
			defer wg.Done()
			c := &flserve.Client{Addr: srv.Addr().String(), Link: link}
			errs[i] = c.Upload(uint32(i), s)
		}(i, s)
	}
	wg.Wait()
	ingestWall := time.Since(t0)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
	}
	if err := srv.Close(); err != nil {
		return err
	}

	st := srv.Stats()
	fmt.Printf("ingested %d updates (%.2f MB wire) in %v — %.1f updates/s\n",
		st.Updates, float64(st.WireBytes)/1e6, ingestWall.Round(time.Millisecond),
		float64(st.Updates)/ingestWall.Seconds())
	fmt.Printf("decode work %v hidden behind receive: overlap ratio %.2f\n",
		st.DecodeWork.Round(time.Microsecond), st.OverlapRatio())

	// Verify: the streamed FedAvg mean must match the mean of the
	// in-memory decodes of the same payloads.
	mean, n := agg.Mean()
	if n != nClients {
		return fmt.Errorf("aggregated %d of %d updates", n, nClients)
	}
	var want *tensor.StateDict
	for _, s := range streams {
		sd, _, err := core.Decompress(s)
		if err != nil {
			return err
		}
		if want == nil {
			want = sd.Zero()
		}
		if err := want.AddScaled(sd, 1/float32(nClients)); err != nil {
			return err
		}
	}
	d, err := mean.MaxAbsDiff(want)
	if err != nil {
		return err
	}
	if d > 1e-5 {
		return fmt.Errorf("streamed mean differs from in-memory mean by %g", d)
	}
	fmt.Printf("streamed FedAvg mean matches in-memory decode (max diff %g)\n", d)
	return nil
}
