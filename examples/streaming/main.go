// Streaming scenario: the paper's aggregation server fed by real sockets,
// now streaming on *both* sides of the wire. Eight clients compress one
// model update each straight into a 100 Mbps-throttled uplink — the
// session codec's CompressTo path emits the stream header and each
// finished tensor section while later tensors are still compressing, so
// the upload overlaps the encode (no client ever materializes its whole
// compressed stream). The server decodes each tensor while the next is
// still arriving (internal/wire framing into core.DecompressFrom on a
// shared worker pool) and folds finished updates incrementally into a
// FedAvg mean. The run verifies the streamed aggregate against the
// in-memory decode of the same updates and prints the overlap each side
// of the pipeline buys.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net"
	"net/http"
	"sync"
	"time"

	fedsz "repro"
	"repro/internal/flserve"
	"repro/internal/netsim"
	"repro/internal/nn/models"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const nClients = 8
	ctx := context.Background()
	link := netsim.Link{BandwidthMbps: 100}

	// One session codec for the whole run: configuration validated once,
	// one shared parallelism budget for every encode below.
	codec, err := fedsz.New(
		fedsz.WithCompressor("sz2"),
		fedsz.WithRelBound(1e-2),
		fedsz.WithParallelism(4),
	)
	if err != nil {
		return err
	}

	// Each client trains locally in the real loop; here one scaled AlexNet
	// profile per client stands in for a round's update.
	updates := make([]*tensor.StateDict, nClients)
	rawBytes := 0
	for i := range updates {
		rng := rand.New(rand.NewPCG(7, uint64(i)+1))
		sd, err := models.BuildProfile("alexnet", rng, 0.02)
		if err != nil {
			return err
		}
		rawBytes += sd.SizeBytes()
		updates[i] = sd
	}
	fmt.Printf("%d clients, %.2f MB raw updates\n", nClients, float64(rawBytes)/1e6)

	// Every server and codec in the process reports into the default
	// telemetry registry; one HTTP listener exposes it all. This is the
	// same endpoint fedsz-serve -metrics-addr serves.
	sched.RegisterMetrics(telemetry.Default())
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ms := &http.Server{Handler: telemetry.NewHTTPHandler(telemetry.Default())}
	go ms.Serve(mln)
	defer ms.Close()
	scrapeURL := fmt.Sprintf("http://%s/metrics", mln.Addr())
	fmt.Printf("metrics at %s (pprof at /debug/pprof/)\n", scrapeURL)

	// The aggregation server: shared decode budget, incremental FedAvg,
	// and a per-upload deadline so a stalled client cannot pin a round.
	// DedupByClient pairs with the clients' retry policy below — a retry
	// whose first attempt actually folded (lost ack) must not
	// double-weight its client.
	agg := flserve.Aggregator{DedupByClient: true}
	srv, err := flserve.Listen("127.0.0.1:0", flserve.Config{
		Parallel:      4,
		UploadTimeout: 30 * time.Second,
		Handler:       agg.Add,
	})
	if err != nil {
		return err
	}
	fmt.Printf("aggregation server on %s, %g Mbps per uplink\n",
		srv.Addr(), link.BandwidthMbps)

	// Streaming-encode uploads: UploadState pipes codec sections straight
	// into wire frames on the socket. Each client gets a per-attempt
	// timeout and one retry — the session API's transport policy. The
	// encode pool has helpers so a throttled send overlaps later tensors'
	// compression even on small hosts.
	encPool := sched.NewPool(4)
	t0 := time.Now()
	errs := make([]error, nClients)
	encOverlap := make([]float64, nClients)
	var wg sync.WaitGroup
	for i, sd := range updates {
		wg.Add(1)
		go func(i int, sd *tensor.StateDict) {
			defer wg.Done()
			c := &flserve.Client{
				Addr: srv.Addr().String(), Link: link,
				Timeout: time.Minute, Retries: 1,
			}
			stats, err := c.UploadState(ctx, uint32(i), sd, codec.Options(), encPool)
			if err != nil {
				errs[i] = err
				return
			}
			encOverlap[i] = stats.EncodeOverlapRatio()
		}(i, sd)
	}
	wg.Wait()
	ingestWall := time.Since(t0)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
	}
	if err := srv.Close(); err != nil {
		return err
	}

	st := srv.Snapshot()
	meanEnc := 0.0
	for _, r := range encOverlap {
		meanEnc += r / nClients
	}
	fmt.Printf("ingested %d updates (%.2f MB wire) in %v — %.1f updates/s\n",
		st.Updates, float64(st.WireBytes)/1e6, ingestWall.Round(time.Millisecond),
		float64(st.Updates)/ingestWall.Seconds())
	fmt.Printf("client side: encode overlap %.2f (compress hidden behind send)\n", meanEnc)

	// The server-side decode story now comes off the wire the way an
	// operator would read it: scrape /metrics and pick the samples out of
	// the exposition instead of reaching into Server internals.
	resp, err := http.Get(scrapeURL)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	samples, err := telemetry.ParseText(body)
	if err != nil {
		return fmt.Errorf("parse /metrics: %w", err)
	}
	dCount, ok1 := telemetry.FindSample(samples, "fedsz_server_decode_seconds_count")
	dSum, ok2 := telemetry.FindSample(samples, "fedsz_server_decode_seconds_sum")
	if !ok1 || !ok2 || dCount.Value == 0 {
		return fmt.Errorf("scrape missing fedsz_server_decode_seconds (count ok=%v sum ok=%v)", ok1, ok2)
	}
	meanDecode := time.Duration(dSum.Value / dCount.Value * float64(time.Second))
	oSum, _ := telemetry.FindSample(samples, "fedsz_server_overlap_ratio_sum")
	fmt.Printf("server side (scraped): %d decodes, mean %v each, overlap %.2f\n",
		int(dCount.Value), meanDecode.Round(time.Microsecond), oSum.Value/dCount.Value)

	// Verify: the streamed FedAvg mean must match the mean of in-memory
	// compress + decode of the same updates through the same codec.
	mean, n := agg.Mean()
	if n != nClients {
		return fmt.Errorf("aggregated %d of %d updates", n, nClients)
	}
	var want *tensor.StateDict
	for _, u := range updates {
		stream, _, err := codec.Compress(ctx, u)
		if err != nil {
			return err
		}
		sd, _, err := codec.Decompress(ctx, stream)
		if err != nil {
			return err
		}
		if want == nil {
			want = sd.Zero()
		}
		if err := want.AddScaled(sd, 1/float32(nClients)); err != nil {
			return err
		}
	}
	d, err := mean.MaxAbsDiff(want)
	if err != nil {
		return err
	}
	if d > 1e-5 {
		return fmt.Errorf("streamed mean differs from in-memory mean by %g", d)
	}
	fmt.Printf("streamed FedAvg mean matches in-memory decode (max diff %g)\n", d)
	return nil
}
