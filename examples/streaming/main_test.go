package main

import "testing"

// TestStreamingRuns executes the example end-to-end; run returns an error
// if any upload fails or the streamed aggregate diverges from the
// in-memory decode.
func TestStreamingRuns(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
