// Package fedsz is the public API of this FedSZ reproduction: error-bounded
// lossy compression for federated-learning model updates (Wilkins et al.,
// IPDPS 2024).
//
// The pipeline compresses a model state dictionary by partitioning it into
// large dense weight tensors — lossy-compressed with an error-bounded
// compressor (SZ2 by default, at relative error bound 1e-2) — and the
// remaining metadata, which is serialized and lossless-compressed (blosc-lz
// by default).
//
// # Session API
//
// The primary surface is the reusable Codec session, built once via
// functional options (configuration validated at construction) and safe
// for concurrent use; every method takes a context:
//
//	codec, err := fedsz.New(fedsz.WithCompressor("sz2"), fedsz.WithRelBound(1e-2))
//	...
//	sd := fedsz.NewStateDict()
//	sd.Add("conv1.weight", fedsz.KindWeight, fedsz.NewTensor(weights, 64, 32, 3, 3))
//	stream, stats, err := codec.Compress(ctx, sd)
//	...
//	restored, _, err := codec.Decompress(ctx, stream)
//
// The codec exposes the full symmetric matrix — Compress / CompressTo /
// CompressAll and Decompress / DecompressFrom / DecompressAll — where the
// streaming pair overlaps codec work with socket I/O in both directions.
// The package-level free functions below remain as thin wrappers over a
// default codec (bit-identical output) for one-shot use.
//
// Sub-systems (the four EBLCs, the lossless codecs, the FL substrate, the
// network simulator) live under internal/ and are exercised through this
// package, the example programs, and the experiment harness in
// cmd/fedsz-bench.
//
// # Batched server-side decode
//
// The paper's Equation 1 makes compression worthwhile only when
// tC + tD + S'/B < S/B, so server-side decompression time tD is on the
// critical path: an aggregation server ingests one stream per client per
// round, and with hundreds of clients the decode dominates. CompressAll
// and DecompressAll process many client state dicts under one shared
// parallelism budget — per-tensor decode inside each stream and the
// across-stream fan-out draw helper slots from the same bounded pool, so
// batch size never oversubscribes the machine:
//
//	streams, _, err := fedsz.CompressAll(updates, fedsz.Options{}, 0)
//	...
//	restored, err := fedsz.DecompressAll(streams, 8) // 8-way budget
//
// Results are bit-identical to per-call Compress/Decompress. See
// cmd/fedsz-bench -clients N -parallel P for a one-process simulation of
// the aggregation-server round loop.
//
// # Streaming ingest
//
// A FedSZ stream is sequential — header, per-tensor sections, one
// lossless section — so it decodes incrementally while still arriving:
// DecompressFrom reads from any io.Reader and decodes tensor i on the
// shared worker pool while tensor i+1 is still being received. Around it,
// internal/wire adds a length-framed, CRC-checked transport encoding and
// internal/flserve a TCP aggregation server that ingests concurrent
// client uploads with bounded memory and per-connection backpressure; see
// cmd/fedsz-serve and cmd/fedsz-bench -serve for the socket-level round
// loop, and the README for the wire-format layout.
package fedsz

import (
	"context"
	"io"
	"time"

	"repro/internal/compressors"
	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/lossless"
	"repro/internal/netsim"
	"repro/internal/tensor"
)

// Tensor is a dense float32 array with a shape (row-major).
type Tensor = tensor.Tensor

// StateDict is an ordered collection of named, kinded tensors — the Go
// analogue of a PyTorch state_dict().
type StateDict = tensor.StateDict

// Kind classifies a state-dict entry for the partitioner.
type Kind = tensor.Kind

// Entry kinds (Algorithm 1 routes KindWeight tensors above the size
// threshold to the lossy path; everything else goes lossless).
const (
	KindWeight      = tensor.KindWeight
	KindBias        = tensor.KindBias
	KindRunningStat = tensor.KindRunningStat
	KindScalarMeta  = tensor.KindScalarMeta
)

// NewStateDict returns an empty state dict.
func NewStateDict() *StateDict { return tensor.NewStateDict() }

// NewTensor wraps data (not copied) with a shape.
func NewTensor(data []float32, shape ...int) *Tensor { return tensor.FromData(data, shape...) }

// Options configures the pipeline; the zero value is the paper's
// recommended configuration (SZ2, REL 1e-2, blosc-lz, threshold 1024).
type Options = core.Options

// Stats reports what one Compress call did, including the encode/send
// overlap accounting of a streaming CompressTo.
type Stats = core.Stats

// DecompressStats reports what one Decompress call did, including the
// decode/receive overlap accounting of a streaming DecompressFrom and the
// buffer-pool hit counters.
type DecompressStats = core.DecompressStats

// Params selects the error-control mode for the lossy compressor.
type Params = ebcl.Params

// RelBound returns a value-range-relative error bound (the SZ convention
// the paper uses; 1e-2 is its recommended setting).
func RelBound(eb float64) Params { return ebcl.Rel(eb) }

// AbsBound returns an absolute error bound.
func AbsBound(eb float64) Params { return ebcl.Abs(eb) }

// Compress runs the FedSZ pipeline over a state dict — a thin wrapper
// over the default codec's pool with per-call options; output is
// bit-identical to Codec.Compress under the same configuration. New code
// should build a Codec (fedsz.New) for construction-time validation,
// contexts, and a dedicated parallelism budget.
func Compress(sd *StateDict, opts Options) ([]byte, *Stats, error) {
	return core.CompressWith(context.Background(), Default().pool, sd, opts)
}

// CompressTo streams the encode of sd straight into w (see
// Codec.CompressTo); the bytes written are identical to Compress.
func CompressTo(w io.Writer, sd *StateDict, opts Options) (*Stats, error) {
	return core.CompressToWith(context.Background(), Default().pool, w, sd, opts)
}

// Decompress reverses Compress; the stream is self-describing.
func Decompress(stream []byte) (*StateDict, error) {
	sd, _, err := core.DecompressWith(context.Background(), Default().pool, stream)
	return sd, err
}

// DecompressFrom decodes a FedSZ stream incrementally from r: each
// tensor's compressed blob decodes on the shared worker pool while the
// next is still being read, so on a socket the decode overlaps the
// receive. The result is bit-identical to Decompress of the same bytes.
func DecompressFrom(r io.Reader) (*StateDict, error) {
	sd, _, err := core.DecompressFromWith(context.Background(), Default().pool, r)
	return sd, err
}

// CompressAll runs the pipeline over many client state dicts with one
// parallelism budget shared across the whole batch (0 selects GOMAXPROCS).
// Output i is bit-identical to Compress(sds[i], opts).
func CompressAll(sds []*StateDict, opts Options, parallelism int) ([][]byte, []*Stats, error) {
	return core.CompressAll(context.Background(), sds, opts, parallelism)
}

// DecompressAll reverses CompressAll — the aggregation-server hot path:
// all streams, and all tensors within them, decode under one shared
// parallelism budget (0 selects GOMAXPROCS). Output i is bit-identical to
// Decompress(streams[i]).
func DecompressAll(streams [][]byte, parallelism int) ([]*StateDict, error) {
	sds, _, err := core.DecompressAll(context.Background(), streams, parallelism)
	return sds, err
}

// Compressor is an error-bounded lossy compressor over flat float32 data —
// the minimal one-shot contract a custom codec must implement (Name,
// Compress, Decompress). The pipeline itself runs on the zero-copy
// ZeroCopyCompressor contract; codecs implementing only this shape are
// promoted automatically with AdaptCompressor, at the cost of one copy per
// call.
type Compressor = ebcl.BasicCompressor

// ZeroCopyCompressor is the full append/into codec contract the pipeline
// runs on: CompressAppend extends a caller-supplied byte buffer,
// DecompressInto reconstructs into a caller-supplied float32 buffer sized
// via DecodedLen, and the one-shot Compress/Decompress remain as thin
// wrappers. All four built-in EBLCs implement it natively; custom codecs
// should too (see examples/customcodec and the README migration note) so
// their tensors ride the pooled hot path.
type ZeroCopyCompressor = ebcl.Compressor

// AdaptCompressor promotes a one-shot Compressor to the zero-copy
// contract (a codec already implementing it passes through untouched) —
// useful for placing a legacy codec in Options.Lossy directly.
func AdaptCompressor(c Compressor) ZeroCopyCompressor { return ebcl.Adapt(c) }

// CompressorByName returns one of the four EBLCs ("sz2", "sz3", "szx",
// "zfp") for use in Options.Lossy.
func CompressorByName(name string) (ZeroCopyCompressor, error) { return compressors.Get(name) }

// CompressorNames lists the available EBLCs.
func CompressorNames() []string { return compressors.Names() }

// RegisterCompressor adds a custom error-bounded compressor to the
// registry so FedSZ streams produced with it can be decompressed (streams
// carry the compressor name). Built-in names cannot be replaced. The
// factory may return a codec implementing just the one-shot Compressor
// shape (it is adapted on resolution) or the full ZeroCopyCompressor
// contract. See examples/customcodec for a full walk-through.
func RegisterCompressor(name string, factory func() Compressor) error {
	return compressors.Register(name, factory)
}

// Recycle returns a decoded state dict's tensor buffers to the shared
// buffer pool. Decompress lands reconstructed tensors in pool-backed
// buffers; an aggregation loop that folds each decoded dict into an
// accumulator and discards it can call Recycle to hand the storage to the
// next decode — the steady-state zero-allocation hot path. The dict must
// not be used afterwards.
func Recycle(sd *StateDict) { core.Release(sd) }

// LosslessCodec compresses the metadata partition.
type LosslessCodec = lossless.Codec

// LosslessByName returns a lossless codec ("blosclz", "zstdlike", "xzlike",
// "gzip", "zlib") for use in Options.Lossless.
func LosslessByName(name string) (LosslessCodec, error) { return lossless.Get(name) }

// LosslessNames lists the available lossless codecs.
func LosslessNames() []string { return lossless.Names() }

// Link models a constrained network path for the Eqn-1 decision.
type Link = netsim.Link

// Decision is the outcome of the compress/don't-compress test.
type Decision = netsim.Decision

// ShouldCompress evaluates the paper's Equation 1: compression pays off
// when tC + tD + S'/B < S/B.
func ShouldCompress(tC, tD time.Duration, rawBytes, compressedBytes int, link Link) Decision {
	return netsim.ShouldCompress(tC, tD, rawBytes, compressedBytes, link)
}
