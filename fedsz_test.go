package fedsz

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

// buildDemoDict assembles a state dict through the public API only.
func buildDemoDict(rng *rand.Rand) *StateDict {
	sd := NewStateDict()
	w := make([]float32, 32*16*3*3)
	for i := range w {
		w[i] = float32(0.03 * (rng.ExpFloat64() - rng.ExpFloat64()))
	}
	sd.Add("conv.weight", KindWeight, NewTensor(w, 32, 16, 3, 3))
	b := make([]float32, 32)
	for i := range b {
		b[i] = float32(0.01 * rng.NormFloat64())
	}
	sd.Add("conv.bias", KindBias, NewTensor(b, 32))
	rm := make([]float32, 32)
	sd.Add("bn.running_mean", KindRunningStat, NewTensor(rm, 32))
	return sd
}

func TestPublicAPIRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	sd := buildDemoDict(rng)
	stream, stats, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ratio() < 2 {
		t.Errorf("ratio %.2f", stats.Ratio())
	}
	got, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sd.Len() {
		t.Fatalf("entries %d != %d", got.Len(), sd.Len())
	}
	// Bias must be exact (lossless path); weight within REL 1e-2.
	for i, v := range sd.Get("conv.bias").Data {
		if got.Get("conv.bias").Data[i] != v {
			t.Fatal("bias not exact")
		}
	}
	a := sd.Get("conv.weight").Data
	bb := got.Get("conv.weight").Data
	lo, hi := a[0], a[0]
	for _, v := range a {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	bound := 1e-2 * float64(hi-lo)
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(bb[i])); d > bound*(1+1e-6) {
			t.Fatalf("weight error %g exceeds %g", d, bound)
		}
	}
}

func TestCompressorSelection(t *testing.T) {
	names := CompressorNames()
	if len(names) != 4 {
		t.Fatalf("want 4 EBLCs, got %v", names)
	}
	for _, n := range names {
		c, err := CompressorByName(n)
		if err != nil || c.Name() != n {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if _, err := CompressorByName("lz4"); err == nil {
		t.Fatal("unknown compressor should error")
	}
	rng := rand.New(rand.NewPCG(3, 4))
	sd := buildDemoDict(rng)
	for _, n := range names {
		c, _ := CompressorByName(n)
		stream, _, err := Compress(sd, Options{Lossy: c, LossyParams: RelBound(1e-2)})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if _, err := Decompress(stream); err != nil {
			t.Fatalf("%s decompress: %v", n, err)
		}
	}
}

func TestLosslessSelection(t *testing.T) {
	names := LosslessNames()
	if len(names) != 5 {
		t.Fatalf("want 5 codecs, got %v", names)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	sd := buildDemoDict(rng)
	for _, n := range names {
		codec, err := LosslessByName(n)
		if err != nil {
			t.Fatal(err)
		}
		stream, _, err := Compress(sd, Options{Lossless: codec})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		got, err := Decompress(stream)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		for i, v := range sd.Get("bn.running_mean").Data {
			if got.Get("bn.running_mean").Data[i] != v {
				t.Fatalf("%s: metadata corrupted", n)
			}
		}
	}
}

func TestShouldCompressAPI(t *testing.T) {
	d := ShouldCompress(time.Second, time.Second, 100<<20, 10<<20, Link{BandwidthMbps: 10})
	if !d.Compress {
		t.Fatal("10 Mbps should favour compression")
	}
	d = ShouldCompress(time.Second, time.Second, 100<<20, 10<<20, Link{BandwidthMbps: 100000})
	if d.Compress {
		t.Fatal("100 Gbps should not favour compression")
	}
}

func TestBoundHelpers(t *testing.T) {
	if RelBound(1e-2).Value != 1e-2 || AbsBound(0.5).Value != 0.5 {
		t.Fatal("bound helpers broken")
	}
	if RelBound(1e-2).Mode == AbsBound(1e-2).Mode {
		t.Fatal("modes must differ")
	}
}

func TestDecompressFromMatchesDecompress(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	sd := buildDemoDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressFrom(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	d, err := got.MaxAbsDiff(want)
	if err != nil || d != 0 {
		t.Fatalf("streaming decode differs: d=%v err=%v", d, err)
	}
}
