package fedsz

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/core"
)

// fuzzDict builds a deterministic state dict from fuzz input: raw bytes
// become literal float32 weight values (sanitized to finite, so the REL
// configurations stay well-defined), topped up with seeded spiky filler,
// plus a lossless-path bias tensor.
func fuzzDict(seed uint64, n1, n2 uint16, raw []byte) *StateDict {
	rng := rand.New(rand.NewPCG(seed, 0x5A17))
	mk := func(n int) []float32 {
		if n < 1 {
			n = 1
		}
		data := make([]float32, n)
		for i := range data {
			if 4*i+4 <= len(raw) {
				v := math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
				if f64 := float64(v); !math.IsNaN(f64) && !math.IsInf(f64, 0) && math.Abs(f64) < 1e6 {
					data[i] = v
					continue
				}
			}
			data[i] = float32(0.05 * (rng.ExpFloat64() - rng.ExpFloat64()))
		}
		return data
	}
	// Sizes above DefaultThreshold so both tensors take the lossy path;
	// capped to keep a fuzz iteration cheap.
	e1 := 1025 + int(n1)%3072
	e2 := 1025 + int(n2)%3072
	sd := NewStateDict()
	sd.Add("a.weight", KindWeight, NewTensor(mk(e1), e1))
	sd.Add("b.weight", KindWeight, NewTensor(mk(e2), e2))
	b := make([]float32, 16)
	for i := range b {
		b[i] = float32(0.01 * rng.NormFloat64())
	}
	sd.Add("a.bias", KindBias, NewTensor(b, 16))
	return sd
}

// maxAbsErr returns the largest elementwise reconstruction error.
func maxAbsErr(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

// deltaModeByteOffset locates the v3 mode byte inside one tensor section
// view (layout: len-prefixed name, kind, rank, dims, mode, length prefix,
// blob).
func deltaModeByteOffset(section []byte) int {
	nameLen := int(section[0])
	rank := int(section[1+nameLen+1])
	return 1 + nameLen + 1 + 1 + 4*rank
}

// FuzzDeltaDifferential holds the v3 cross-round delta format to its
// contracts on adversarial input: a residual round trip stays within the
// error bound; decoding without the reference — or with a mismatched epoch
// or a structurally different reference dict — fails with ErrReference;
// flipping a mode byte to an invalid value or truncating a residual section
// wraps ErrCorrupt; and no mutation ever panics the decoder.
func FuzzDeltaDifferential(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint16(0), []byte{}, uint8(0))
	f.Add(uint64(42), uint16(512), uint16(77), []byte{0, 0, 128, 63, 0, 0, 0, 192}, uint8(3))
	f.Add(uint64(7), uint16(3000), uint16(1), bytes.Repeat([]byte{0xAA, 0x3D, 0x11, 0xBE}, 32), uint8(255))
	f.Add(uint64(9), uint16(1), uint16(4000), []byte{0xFF, 0xFF, 0x7F, 0x7F}, uint8(64))

	f.Fuzz(func(t *testing.T, seed uint64, n1, n2 uint16, raw []byte, mut uint8) {
		if len(raw) > 1<<14 {
			return
		}
		ctx := context.Background()
		sd := fuzzDict(seed, n1, n2, raw)
		// The reference is the update nudged by a small deterministic step —
		// the correlated regime where residual sections engage.
		ref := sd.Clone()
		rng := rand.New(rand.NewPCG(seed, 0xD317A))
		for _, e := range ref.Entries() {
			for i := range e.Tensor.Data {
				e.Tensor.Data[i] += float32(1e-3 * rng.NormFloat64())
			}
		}
		const epoch = 3

		for _, comp := range []string{"sz2", "szx"} {
			codec, err := New(WithCompressor(comp), WithAbsBound(1e-3), WithParallelism(2))
			if err != nil {
				t.Fatal(err)
			}
			stream, stats, err := codec.CompressDelta(ctx, sd, ref, epoch)
			if err != nil {
				t.Fatalf("%s: delta compress: %v", comp, err)
			}
			if stream[4] != 3 {
				t.Fatalf("%s: delta stream version %d, want 3", comp, stream[4])
			}

			// Round trip against the right reference: bound + metadata hold.
			got, dstats, err := codec.DecompressDelta(ctx, stream, ref, epoch)
			if err != nil {
				t.Fatalf("%s: delta decompress: %v", comp, err)
			}
			if dstats.DeltaTensors != stats.DeltaTensors {
				t.Fatalf("%s: decoder saw %d residual tensors, encoder emitted %d",
					comp, dstats.DeltaTensors, stats.DeltaTensors)
			}
			for _, name := range []string{"a.weight", "b.weight"} {
				if e := maxAbsErr(sd.Get(name).Data, got.Get(name).Data); e > 1e-3*(1+1e-5)+1e-12 {
					t.Fatalf("%s: %s delta error %g exceeds bound", comp, name, e)
				}
			}
			for i, v := range sd.Get("a.bias").Data {
				if got.Get("a.bias").Data[i] != v {
					t.Fatalf("%s: metadata not bit-exact through delta stream", comp)
				}
			}

			// Reference mismatches: nil reference, wrong epoch, and a
			// structurally different dict must fail with ErrReference when
			// any section is residual — and must never panic.
			if stats.DeltaTensors > 0 {
				if _, _, err := codec.DecompressDelta(ctx, stream, nil, epoch); !errors.Is(err, core.ErrReference) {
					t.Fatalf("%s: nil reference: %v, want ErrReference", comp, err)
				}
				if _, _, err := codec.DecompressDelta(ctx, stream, ref, epoch+1); !errors.Is(err, core.ErrReference) {
					t.Fatalf("%s: wrong epoch: %v, want ErrReference", comp, err)
				}
				other := fuzzDict(seed+0x9E37, n2, n1, nil)
				if _, _, err := codec.DecompressDelta(ctx, stream, other, epoch); err != nil &&
					!errors.Is(err, core.ErrReference) && !errors.Is(err, core.ErrCorrupt) {
					t.Fatalf("%s: mismatched reference dict: unexpected error class %v", comp, err)
				}
			}

			secs, err := core.Sections(stream)
			if err != nil {
				t.Fatalf("%s: sections: %v", comp, err)
			}
			if len(secs.Tensors) > 0 {
				idx := int(mut) % len(secs.Tensors)
				badOff := len(secs.Header)
				for i := 0; i < idx; i++ {
					badOff += len(secs.Tensors[i])
				}
				badOff += deltaModeByteOffset(secs.Tensors[idx])

				// An invalid mode byte must be ErrCorrupt from both the
				// section parser and the decoder.
				bad := append([]byte(nil), stream...)
				bad[badOff] = 2 + mut%250
				if _, err := core.Sections(bad); !errors.Is(err, core.ErrCorrupt) {
					t.Fatalf("%s: invalid mode byte in Sections: %v, want ErrCorrupt", comp, err)
				}
				if _, _, err := codec.DecompressDelta(ctx, bad, ref, epoch); !errors.Is(err, core.ErrCorrupt) {
					t.Fatalf("%s: invalid mode byte in decode: %v, want ErrCorrupt", comp, err)
				}

				// Flipping a valid mode byte re-routes the blob through the
				// other path: the decode may fail (corrupt blob, missing
				// reference) but must never panic, and any failure must be a
				// classified sentinel.
				flip := append([]byte(nil), stream...)
				if flip[badOff] == 0 {
					flip[badOff] = 1
				} else {
					flip[badOff] = 0
				}
				if _, _, err := codec.DecompressDelta(ctx, flip, ref, epoch); err != nil &&
					!errors.Is(err, core.ErrCorrupt) && !errors.Is(err, core.ErrReference) {
					t.Fatalf("%s: flipped mode byte: unclassified error %v", comp, err)
				}
			}

			// Truncation anywhere in the stream must be ErrCorrupt (or
			// ErrReference when the cut hides the residual's reference
			// check), never a panic or a silent short decode.
			cut := 1 + int(mut)%(len(stream)-1)
			if _, _, err := codec.DecompressDelta(ctx, stream[:len(stream)-cut], ref, epoch); err == nil {
				t.Fatalf("%s: truncated delta stream decoded successfully", comp)
			} else if !errors.Is(err, core.ErrCorrupt) && !errors.Is(err, core.ErrReference) {
				t.Fatalf("%s: truncated delta stream: unclassified error %v", comp, err)
			}
		}
	})
}

// FuzzCodecDifferential cross-checks every EBLC × bound-mode configuration
// across all four pipeline paths on one generated state dict: serial
// encode, parallel encode, and streaming encode must be byte-identical;
// in-memory decode and streaming decode must reconstruct identically; and
// every lossy tensor must land within its error bound. Any divergence
// between paths is a bug even when each path round-trips on its own.
func FuzzCodecDifferential(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint16(0), []byte{})
	f.Add(uint64(42), uint16(512), uint16(77), []byte{0, 0, 128, 63, 0, 0, 0, 192})
	f.Add(uint64(7), uint16(3000), uint16(1), bytes.Repeat([]byte{0xAA, 0x3D, 0x11, 0xBE}, 32))

	type config struct {
		comp   string
		params Params
		bound  func(data []float32) float64
	}
	// ZFP's REL/ABS mapping has no formal bound (paper §V-D1) — on
	// adversarial data even the conformance suite's 8× slack is exceeded —
	// so zfp is held to the differential contracts only (identical streams
	// and reconstructions across paths, exact metadata), not a bound.
	slack := map[string]float64{"sz2": 1, "sz3": 1, "szx": 1, "zfp": math.Inf(1)}
	var configs []config
	for _, name := range []string{"sz2", "sz3", "szx", "zfp"} {
		loose := slack[name]
		configs = append(configs,
			config{name, RelBound(1e-2), func(data []float32) float64 {
				lo, hi := data[0], data[0]
				for _, v := range data {
					lo, hi = min(lo, v), max(hi, v)
				}
				return loose * 1e-2 * float64(hi-lo)
			}},
			config{name, AbsBound(1e-3), func([]float32) float64 { return loose * 1e-3 }},
		)
	}

	f.Fuzz(func(t *testing.T, seed uint64, n1, n2 uint16, raw []byte) {
		if len(raw) > 1<<14 {
			return
		}
		ctx := context.Background()
		sd := fuzzDict(seed, n1, n2, raw)
		for _, cfg := range configs {
			serial, err := New(WithCompressor(cfg.comp), WithParams(cfg.params), WithParallelism(1))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := New(WithCompressor(cfg.comp), WithParams(cfg.params), WithParallelism(4))
			if err != nil {
				t.Fatal(err)
			}

			ref, _, err := serial.Compress(ctx, sd)
			if err != nil {
				t.Fatalf("%s/%v: serial compress: %v", cfg.comp, cfg.params.Mode, err)
			}
			par, _, err := parallel.Compress(ctx, sd)
			if err != nil {
				t.Fatalf("%s/%v: parallel compress: %v", cfg.comp, cfg.params.Mode, err)
			}
			if !bytes.Equal(ref, par) {
				t.Fatalf("%s/%v: parallel stream differs from serial", cfg.comp, cfg.params.Mode)
			}
			var streamed bytes.Buffer
			if _, err := parallel.CompressTo(ctx, &streamed, sd); err != nil {
				t.Fatalf("%s/%v: streaming encode: %v", cfg.comp, cfg.params.Mode, err)
			}
			if !bytes.Equal(ref, streamed.Bytes()) {
				t.Fatalf("%s/%v: streaming-encode stream differs from serial", cfg.comp, cfg.params.Mode)
			}

			mem, _, err := parallel.Decompress(ctx, ref)
			if err != nil {
				t.Fatalf("%s/%v: decompress: %v", cfg.comp, cfg.params.Mode, err)
			}
			viaReader, _, err := serial.DecompressFrom(ctx, bytes.NewReader(ref))
			if err != nil {
				t.Fatalf("%s/%v: streaming decode: %v", cfg.comp, cfg.params.Mode, err)
			}
			if d, err := mem.MaxAbsDiff(viaReader); err != nil || d != 0 {
				t.Fatalf("%s/%v: streaming decode differs from in-memory (d=%v err=%v)",
					cfg.comp, cfg.params.Mode, d, err)
			}

			// Error-bound and metadata contracts on the reconstruction.
			for _, name := range []string{"a.weight", "b.weight"} {
				orig := sd.Get(name).Data
				got := mem.Get(name).Data
				if len(got) != len(orig) {
					t.Fatalf("%s/%v: %s length %d, want %d", cfg.comp, cfg.params.Mode, name, len(got), len(orig))
				}
				bound := cfg.bound(orig)
				if e := maxAbsErr(orig, got); e > bound*(1+1e-5)+1e-12 {
					t.Fatalf("%s/%v: %s error %g exceeds bound %g", cfg.comp, cfg.params.Mode, name, e, bound)
				}
			}
			for i, v := range sd.Get("a.bias").Data {
				if mem.Get("a.bias").Data[i] != v {
					t.Fatalf("%s/%v: metadata not bit-exact", cfg.comp, cfg.params.Mode)
				}
			}
		}
	})
}
