// Package agg implements the sharded, hierarchical aggregation tier: the
// scale-out story for the one-process, one-Aggregator flserve baseline.
//
// # Section-sharded fold
//
// The wire format frames a FedSZ stream at section granularity, so an
// ingest front-end can route each tensor section to an aggregator shard
// without decoding — only the small per-section metadata (name, shape,
// mode byte) is parsed on the connection goroutine. Sharded routes every
// tensor to one of P shards keyed by a hash of the tensor name, decodes
// routed sections on the shared sched.Pool (the same caller-runs budget
// discipline as the whole-stream decoder, so saturation still turns into
// TCP backpressure), and each shard folds its slice of the FedAvg
// accumulator. A tensor name lives on exactly one shard, so the root
// merge is pure concatenation in the model's original entry order — no
// cross-shard float addition.
//
// # Fold semantics and conformance
//
// An update is staged first and folded only after its wire trailer
// verifies, so a mid-stream corruption never half-folds into the
// accumulator — the same atomicity the decode-then-Handler path has.
// Sequential ingest at weight 1 is bit-for-bit identical to
// flserve.Aggregator: the first update is adopted (not added), later
// updates fold with the same a[i] += w·b[i] kernel in the same order.
// Under concurrent ingest only the per-tensor fold order can differ,
// which reassociates float addition; the conformance tests bound that
// difference (see TestShardedConformance).
//
// # Hierarchical topology
//
// Edge composes a local flserve.Server (fed by Sharded) with an upstream
// flserve.Client: the edge folds its local population and forwards ONE
// fused, weighted (FLS3) update, so a root folding E edges at weights
// n_1..n_E computes the same weighted mean as a flat fold of Σn_i clients
// — up to float reassociation and the one extra lossy encode of each
// edge's fused mean.
package agg

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// Config tunes a Sharded aggregator.
type Config struct {
	// Shards is P, the number of accumulator shards (0 selects 1).
	Shards int
	// Pool supplies decode parallelism (nil selects the process-wide
	// shared pool). Routed sections decode under this budget exactly like
	// the whole-stream path, so a server passing its own pool keeps one
	// parallelism budget across both ingest modes.
	Pool *sched.Pool
	// DedupByClient folds only the first update per client ID and silently
	// accepts (acks, drains, drops) later duplicates — the at-least-once
	// delivery guard, matching flserve.Aggregator.DedupByClient.
	DedupByClient bool
}

// shard is one slice of the accumulator: the tensors whose name hashes
// here. Only commit and Mean touch acc, both under Sharded.mu.
type shard struct {
	acc map[string]*tensor.Tensor
}

// lossyMeta pins a lossy tensor's identity from the first update, so
// later updates are validated against it before anything folds.
type lossyMeta struct {
	name  string
	kind  tensor.Kind
	shape []int
	elems int
	shard int
}

// layout is the stream structure the first committed update defines:
// every later update must match it exactly, mirroring the structural
// strictness of StateDict.AddScaled.
type layout struct {
	flags []byte
	lossy []lossyMeta
}

// Sharded is a section-routing FedAvg aggregator implementing
// flserve.StreamIngestor. Zero value is not usable; construct with New.
type Sharded struct {
	cfg    Config
	pool   *sched.Pool
	shards []shard

	mu sync.Mutex
	// structure is the layout adopted from the first committed update.
	structure *layout
	// meta is the lossless-partition accumulator (heap-backed).
	meta *tensor.StateDict
	// sumView assembles the sharded accumulator slices and meta entries
	// into one StateDict in original entry order — the tensors alias the
	// shard buffers, so folds are visible through it and Mean/MeanInto
	// mirror flserve.Aggregator exactly.
	sumView *tensor.StateDict
	n       int
	wsum    float64
	seen    map[uint32]bool
}

// New builds a Sharded aggregator.
func New(cfg Config) *Sharded {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	pool := cfg.Pool
	if pool == nil {
		pool = sched.Default()
	}
	s := &Sharded{cfg: cfg, pool: pool, shards: make([]shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i].acc = make(map[string]*tensor.Tensor)
	}
	metrics().shards.Set(float64(cfg.Shards))
	return s
}

// Shards returns the configured shard count P.
func (s *Sharded) Shards() int { return len(s.shards) }

// shardOf routes a tensor name to its owning shard (FNV-1a).
func (s *Sharded) shardOf(name string) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return int(h % uint32(len(s.shards)))
}

// staged is one routed tensor between decode and commit.
type staged struct {
	meta lossyMeta
	data []float32 // pooled; owned by the update until commit or abort
	err  error
}

// readTracker accumulates time blocked in Read — the ReadWait component
// of the decode stats, mirroring the whole-stream decoder's accounting.
type readTracker struct {
	r       io.Reader
	blocked time.Duration
}

func (t *readTracker) Read(p []byte) (int, error) {
	t0 := time.Now()
	n, err := t.r.Read(p)
	t.blocked += time.Since(t0)
	return n, err
}

// IngestStream consumes one wire-framed update from r, routing each
// tensor section to its shard: the flserve.StreamIngestor contract. The
// update folds atomically — staged through the trailer check, then
// committed — and the returned stats carry wall/read-wait/decode-work
// timings for the server's overlap accounting.
func (s *Sharded) IngestStream(ctx context.Context, client uint32, weight float64, dopts core.DecodeOptions, r io.Reader) (int64, core.DecompressStats, error) {
	start := time.Now()
	poolHits0, poolMisses0 := sched.BytePoolCounters()
	floatHits0, floatMisses0 := sched.FloatPoolCounters()
	recycled0 := sched.RecycledBytes()
	if weight == 0 {
		weight = 1
	}
	m := metrics()

	tr := &readTracker{r: r}
	sc := wire.NewFrameScanner(tr)

	// Duplicate from a retried at-least-once upload: consume and verify
	// the stream (protocol stays in sync, trailer still checked) but fold
	// nothing — the sharded mirror of Aggregator's dedup drop.
	if s.cfg.DedupByClient && s.isDup(client) {
		if err := drain(sc); err != nil {
			return 0, core.DecompressStats{}, err
		}
		return sc.WireBytes(), core.DecompressStats{DecompressTime: time.Since(start), ReadWait: tr.blocked}, nil
	}

	kind, payload, err := sc.Next()
	if err != nil {
		return 0, core.DecompressStats{}, err
	}
	if kind != wire.FrameHeader {
		sched.PutBytes(payload)
		return 0, core.DecompressStats{}, fmt.Errorf("%w: agg: first frame kind 0x%02x, want header", core.ErrCorrupt, kind)
	}
	hdr, err := core.ParseHeader(payload)
	if err != nil {
		sched.PutBytes(payload)
		return 0, core.DecompressStats{}, err
	}
	dec, err := core.NewSectionDecoder(hdr)
	if err != nil {
		sched.PutBytes(payload)
		return 0, core.DecompressStats{}, err
	}
	flags := append([]byte(nil), hdr.Flags...)
	refEpoch, lossyCount := hdr.RefEpoch, hdr.LossyCount
	sched.PutBytes(payload)

	// structure, when already adopted, validates each section at routing
	// time; a first update is validated wholesale at commit instead.
	structure := s.currentStructure()
	if structure != nil && !bytesEqual(structure.flags, flags) {
		return 0, core.DecompressStats{}, fmt.Errorf("%w: agg: update path flags differ from accumulator", core.ErrCorrupt)
	}

	entries := make([]staged, lossyCount)
	var decodeWork atomicDuration
	var metaDict *tensor.StateDict
	var metaErr error
	nDelta := 0
	g := s.pool.Group()
	// abort drains in-flight decodes and releases every staged buffer.
	abort := func(err error) (int64, core.DecompressStats, error) {
		g.Wait()
		for i := range entries {
			if entries[i].data != nil {
				sched.PutFloats(entries[i].data)
				entries[i].data = nil
			}
		}
		metaDict = nil
		if cerr := ctx.Err(); cerr != nil {
			return 0, core.DecompressStats{}, cerr
		}
		return 0, core.DecompressStats{}, err
	}

	for i := 0; i < lossyCount; i++ {
		if err := ctx.Err(); err != nil {
			return abort(err)
		}
		kind, payload, err := sc.Next()
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("%w: agg: stream ended after %d of %d tensor sections", core.ErrCorrupt, i, lossyCount)
			}
			return abort(err)
		}
		if kind != wire.FrameTensor {
			sched.PutBytes(payload)
			return abort(fmt.Errorf("%w: agg: frame kind 0x%02x, want tensor", core.ErrCorrupt, kind))
		}
		pt, err := core.ParseTensorSection(hdr, payload)
		if err != nil {
			sched.PutBytes(payload)
			return abort(err)
		}
		e := &entries[i]
		e.meta = lossyMeta{name: pt.Name, kind: pt.Kind, shape: pt.Shape, elems: pt.Elems, shard: s.shardOf(pt.Name)}
		if structure != nil {
			if want := &structure.lossy[i]; pt.Name != want.name || pt.Elems != want.elems {
				sched.PutBytes(payload)
				return abort(fmt.Errorf("%w: agg: tensor %d is %q[%d], accumulator holds %q[%d]",
					core.ErrCorrupt, i, pt.Name, pt.Elems, want.name, want.elems))
			}
		}
		// Resolve the delta reference on the routing goroutine so shard
		// decode tasks carry plain slices, and reference problems surface
		// as ErrReference before any decode work is spent.
		var ref []float32
		if pt.Delta {
			nDelta++
			if dopts.Reference == nil {
				sched.PutBytes(payload)
				return abort(fmt.Errorf("%w: residual section %q but no reference supplied", core.ErrReference, pt.Name))
			}
			if dopts.RefEpoch != refEpoch {
				sched.PutBytes(payload)
				return abort(fmt.Errorf("%w: stream encoded against epoch %d, decoder holds %d", core.ErrReference, refEpoch, dopts.RefEpoch))
			}
			rt := dopts.Reference.Get(pt.Name)
			if rt == nil || rt.NumElems() != pt.Elems {
				sched.PutBytes(payload)
				return abort(fmt.Errorf("%w: reference lacks matching tensor %q", core.ErrReference, pt.Name))
			}
			ref = rt.Data
		}
		m.sectionsRouted(e.meta.shard).Inc()
		// Decode on the pool: when the budget is saturated the routing
		// goroutine decodes inline, stops draining the socket, and TCP
		// pushes back on the sender — same discipline as the whole-stream
		// decoder. The task owns payload (pt.Blob aliases it).
		g.Go(func() {
			if cerr := ctx.Err(); cerr != nil {
				sched.PutBytes(payload)
				e.err = cerr
				return
			}
			t0 := time.Now()
			data, derr := dec.DecodeTensor(pt, ref)
			decodeWork.add(time.Since(t0))
			sched.PutBytes(payload)
			if derr != nil {
				e.err = derr
				return
			}
			e.data = data
		})
	}

	kind, payload, err = sc.Next()
	if err != nil {
		if err == io.EOF {
			err = fmt.Errorf("%w: agg: stream ended before metadata section", core.ErrCorrupt)
		}
		return abort(err)
	}
	if kind != wire.FrameLossless {
		sched.PutBytes(payload)
		return abort(fmt.Errorf("%w: agg: frame kind 0x%02x, want lossless", core.ErrCorrupt, kind))
	}
	g.Go(func() {
		if cerr := ctx.Err(); cerr != nil {
			sched.PutBytes(payload)
			metaErr = cerr
			return
		}
		t0 := time.Now()
		metaDict, metaErr = dec.DecodeLossless(payload)
		decodeWork.add(time.Since(t0))
		sched.PutBytes(payload)
	})

	// The trailer must verify before anything folds: Next returns the
	// final io.EOF only after the frame counts and whole-stream CRC check.
	if _, extra, err := sc.Next(); err != io.EOF {
		sched.PutBytes(extra)
		if err == nil {
			err = fmt.Errorf("%w: agg: frames after the metadata section", core.ErrCorrupt)
		}
		return abort(err)
	}
	g.Wait()
	if err := ctx.Err(); err != nil {
		return abort(err)
	}
	if metaErr != nil {
		return abort(metaErr)
	}
	for i := range entries {
		if entries[i].err != nil {
			return abort(entries[i].err)
		}
	}

	if err := s.commit(client, weight, flags, entries, metaDict); err != nil {
		return abort(err)
	}
	m.updates.Inc()

	poolHits1, poolMisses1 := sched.BytePoolCounters()
	floatHits1, floatMisses1 := sched.FloatPoolCounters()
	return sc.WireBytes(), core.DecompressStats{
		DecompressTime:  time.Since(start),
		ReadWait:        tr.blocked,
		DecodeWork:      decodeWork.load(),
		PoolHits:        poolHits1 - poolHits0,
		PoolMisses:      poolMisses1 - poolMisses0,
		FloatPoolHits:   floatHits1 - floatHits0,
		FloatPoolMisses: floatMisses1 - floatMisses0,
		BytesRecycled:   sched.RecycledBytes() - recycled0,
		DeltaTensors:    nDelta,
	}, nil
}

// commit folds one fully verified, fully decoded update into the sharded
// accumulator. It validates first and folds second, so a structural
// mismatch aborts with the accumulator untouched. The caller releases the
// staged buffers on error; on success adopted buffers transfer to the
// accumulator and added ones are recycled here.
func (s *Sharded) commit(client uint32, weight float64, flags []byte, entries []staged, metaDict *tensor.StateDict) error {
	t0 := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.DedupByClient {
		if s.seen == nil {
			s.seen = make(map[uint32]bool)
		}
		if s.seen[client] {
			// A concurrent duplicate slipped past the ingest-time check;
			// drop it here exactly like Aggregator would.
			for i := range entries {
				sched.PutFloats(entries[i].data)
				entries[i].data = nil
			}
			return nil
		}
	}

	adopt := s.structure == nil
	if adopt {
		// First update: its layout becomes the accumulator structure.
		lossy := make([]lossyMeta, len(entries))
		for i := range entries {
			lossy[i] = entries[i].meta
		}
		s.structure = &layout{flags: flags, lossy: lossy}
	} else {
		// Validate everything before folding anything. Routing already
		// checked per-section when the structure pre-dated this update;
		// re-checking here closes the race where two first updates ingest
		// concurrently and only one gets to define the structure.
		if !bytesEqual(s.structure.flags, flags) {
			return fmt.Errorf("%w: agg: update path flags differ from accumulator", core.ErrCorrupt)
		}
		if len(entries) != len(s.structure.lossy) {
			return fmt.Errorf("%w: agg: update has %d lossy tensors, accumulator %d", core.ErrCorrupt, len(entries), len(s.structure.lossy))
		}
		for i := range entries {
			want := &s.structure.lossy[i]
			if entries[i].meta.name != want.name || entries[i].meta.elems != want.elems {
				return fmt.Errorf("%w: agg: tensor %d is %q[%d], accumulator holds %q[%d]",
					core.ErrCorrupt, i, entries[i].meta.name, entries[i].meta.elems, want.name, want.elems)
			}
		}
		if err := s.meta.CheckCompatible(metaDict); err != nil {
			return fmt.Errorf("agg: metadata partition: %w", err)
		}
	}

	w := float32(weight)
	// Group this update's tensors by shard, then fold each shard's slice
	// as one independent task on the pool — P-way fold parallelism, with
	// every tensor folded by exactly its owning shard.
	perShard := make([][]int, len(s.shards))
	for i := range entries {
		sh := entries[i].meta.shard
		perShard[sh] = append(perShard[sh], i)
	}
	s.pool.ForEach(len(s.shards), func(si int) {
		acc := s.shards[si].acc
		for _, i := range perShard[si] {
			e := &entries[i]
			if adopt {
				if weight != 1 {
					scale(e.data, w)
				}
				acc[e.meta.name] = tensor.FromData(e.data, e.meta.shape...)
				e.data = nil // ownership transferred to the accumulator
				continue
			}
			addScaled(acc[e.meta.name].Data, e.data, w)
			sched.PutFloats(e.data)
			e.data = nil
		}
	})

	if adopt {
		s.meta = metaDict
		if weight != 1 {
			s.meta.Scale(w)
		}
		s.assembleSumView()
	} else if err := s.meta.AddScaled(metaDict, w); err != nil {
		// Unreachable after CheckCompatible above; kept as a hard stop so
		// a silent partial fold can never happen.
		return fmt.Errorf("agg: metadata partition: %w", err)
	}

	if s.cfg.DedupByClient {
		s.seen[client] = true
	}
	s.n++
	s.wsum += weight
	metrics().mergeHist.Observe(time.Since(t0).Seconds())
	return nil
}

// assembleSumView builds the accumulator-order StateDict whose tensors
// alias the shard buffers and meta entries. Called once, at adoption;
// every later fold mutates those buffers in place, so the view stays
// current.
func (s *Sharded) assembleSumView() {
	view := tensor.NewStateDict()
	li, ri := 0, 0
	metaEntries := s.meta.Entries()
	for _, f := range s.structure.flags {
		if f == 1 { // pathLossy
			lm := &s.structure.lossy[li]
			li++
			view.Add(lm.name, lm.kind, s.shards[lm.shard].acc[lm.name])
		} else {
			e := metaEntries[ri]
			ri++
			view.Add(e.Name, e.Kind, e.Tensor)
		}
	}
	s.sumView = view
}

// currentStructure snapshots the adopted layout (nil before the first
// commit). The layout is immutable once set, so routing may validate
// against it lock-free afterwards.
func (s *Sharded) currentStructure() *layout {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.structure
}

// isDup reports whether client already folded (DedupByClient only).
func (s *Sharded) isDup(client uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[client]
}

// drain consumes a stream to its verified trailer, releasing every
// payload — the dedup path still checks integrity and keeps the
// connection's framing in sync.
func drain(sc *wire.FrameScanner) error {
	for {
		_, payload, err := sc.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		sched.PutBytes(payload)
	}
}

// Count returns the number of folded updates.
func (s *Sharded) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// WeightSum returns the total aggregation weight folded so far.
func (s *Sharded) WeightSum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wsum
}

// Mean returns the weighted FedAvg mean of the folded updates (a copy
// over pooled tensor buffers, original entry order) and the update count;
// nil and 0 before the first update. Recycle via core.Release.
func (s *Sharded) Mean() (*tensor.StateDict, int) {
	sd, n, _ := s.MeanInto(nil)
	return sd, n
}

// MeanInto is Mean writing into dst's storage; a structurally
// incompatible dst returns an explicit error. Semantics mirror
// flserve.Aggregator.MeanInto.
func (s *Sharded) MeanInto(dst *tensor.StateDict) (*tensor.StateDict, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sumView == nil {
		return nil, 0, nil
	}
	if dst != nil {
		if err := dst.CheckCompatible(s.sumView); err != nil {
			return nil, s.n, fmt.Errorf("agg: MeanInto destination incompatible with accumulator: %w", err)
		}
	}
	out := s.sumView.CloneInto(dst)
	if s.wsum == float64(s.n) {
		// Unweighted traffic: the historical float32 divide, bit-identical
		// to flserve.Aggregator.
		out.Scale(1 / float32(s.n))
	} else {
		out.Scale(float32(1 / s.wsum))
	}
	return out, s.n, nil
}

// Reset clears the accumulator for the next round, recycling the shard
// buffers. The structure is re-adopted from the next round's first
// update, so a model shape change between rounds is permitted.
func (s *Sharded) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.shards {
		for _, t := range s.shards[i].acc {
			sched.PutFloats(t.Data)
		}
		s.shards[i].acc = make(map[string]*tensor.Tensor)
	}
	s.structure = nil
	s.meta = nil
	s.sumView = nil
	s.n = 0
	s.wsum = 0
	s.seen = nil
}

// atomicDuration accumulates decode work across pool tasks.
type atomicDuration struct {
	mu sync.Mutex
	d  time.Duration
}

func (a *atomicDuration) add(d time.Duration) {
	a.mu.Lock()
	a.d += d
	a.mu.Unlock()
}

func (a *atomicDuration) load() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.d
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scale multiplies in place.
func scale(a []float32, w float32) {
	for i := range a {
		a[i] *= w
	}
}

// addScaled is the fold kernel: a[i] += w·b[i], the same arithmetic as
// StateDict.AddScaled so sequential unweighted ingest stays bit-for-bit
// with the single-aggregator path.
func addScaled(a, b []float32, w float32) {
	for i := range a {
		a[i] += w * b[i]
	}
}
