package agg

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/flserve"
	"repro/internal/sched"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// clientUpdate synthesizes one client's model update: two lossy weight
// tensors plus metadata, distinct per seed.
func clientUpdate(seed uint64) *tensor.StateDict {
	rng := rand.New(rand.NewPCG(seed, seed^0x9E37))
	sd := tensor.NewStateDict()
	sd.Add("conv.weight", tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, 4096), 64, 64))
	sd.Add("fc.weight", tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, 2048), 2048))
	b := tensor.New(64)
	for i := range b.Data {
		b.Data[i] = float32(0.01 * rng.NormFloat64())
	}
	sd.Add("conv.bias", tensor.KindBias, b)
	return sd
}

// compressUpdates builds n compressed client streams plus their decoded
// (post-quantization) forms — the values any aggregator actually folds.
func compressUpdates(t testing.TB, n int) ([][]byte, []*tensor.StateDict) {
	t.Helper()
	streams := make([][]byte, n)
	decoded := make([]*tensor.StateDict, n)
	for i := range streams {
		var err error
		streams[i], _, err = core.Compress(clientUpdate(uint64(i)+1), core.Options{LossyParams: ebcl.Rel(1e-2)})
		if err != nil {
			t.Fatal(err)
		}
		decoded[i], _, err = core.Decompress(streams[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	return streams, decoded
}

// frame wire-frames a FedSZ stream the way a client upload would.
func frame(t testing.TB, stream []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.NewWriter(&buf).WriteStream(stream); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// ingest pushes one framed stream through IngestStream.
func ingest(t testing.TB, s *Sharded, client uint32, weight float64, framed []byte) {
	t.Helper()
	if _, _, err := s.IngestStream(context.Background(), client, weight, core.DecodeOptions{}, bytes.NewReader(framed)); err != nil {
		t.Fatalf("ingest client %d: %v", client, err)
	}
}

// TestShardedConformance is the correctness anchor: for P ∈ {1, 2, 4},
// sequentially ingesting the same streams through the section-routed
// sharded fold produces a mean BIT-FOR-BIT identical to the
// single-Aggregator fold — same adopt-first semantics, same fold kernel,
// same fold order, same final divide.
func TestShardedConformance(t *testing.T) {
	const n = 6
	streams, decoded := compressUpdates(t, n)

	single := &flserve.Aggregator{}
	for i, sd := range decoded {
		if err := single.Add(flserve.Update{Client: uint32(i), State: sd}); err != nil {
			t.Fatal(err)
		}
	}
	want, wn := single.Mean()
	if wn != n {
		t.Fatalf("single aggregator folded %d, want %d", wn, n)
	}

	for _, p := range []int{1, 2, 4} {
		sh := New(Config{Shards: p, Pool: sched.NewPool(2)})
		for i, s := range streams {
			ingest(t, sh, uint32(i), 1, frame(t, s))
		}
		got, gn := sh.Mean()
		if gn != n {
			t.Fatalf("P=%d folded %d, want %d", p, gn, n)
		}
		diff, err := want.MaxAbsDiff(got)
		if err != nil {
			t.Fatalf("P=%d structure mismatch: %v", p, err)
		}
		if diff != 0 {
			t.Fatalf("P=%d sequential shard-merged fold differs from single aggregator: max abs diff %g, want bit-for-bit 0", p, diff)
		}
		core.Release(got)
	}
}

// TestShardedConformanceConcurrent ingests concurrently, where only the
// per-tensor fold order may differ from the single fold — a float
// reassociation bounded well below the codec's own error bound. The
// asserted tolerance (1e-5) is the documented weighted-merge tolerance
// from the README's scale-out section.
func TestShardedConformanceConcurrent(t *testing.T) {
	const n = 8
	streams, decoded := compressUpdates(t, n)
	single := &flserve.Aggregator{}
	for i, sd := range decoded {
		if err := single.Add(flserve.Update{Client: uint32(i), State: sd}); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := single.Mean()

	for _, p := range []int{2, 4} {
		sh := New(Config{Shards: p, Pool: sched.NewPool(4)})
		var wg sync.WaitGroup
		for i, s := range streams {
			wg.Add(1)
			go func(i int, framed []byte) {
				defer wg.Done()
				ingest(t, sh, uint32(i), 1, framed)
			}(i, frame(t, s))
		}
		wg.Wait()
		got, gn := sh.Mean()
		if gn != n {
			t.Fatalf("P=%d folded %d, want %d", p, gn, n)
		}
		diff, err := want.MaxAbsDiff(got)
		if err != nil {
			t.Fatal(err)
		}
		if diff > 1e-5 {
			t.Fatalf("P=%d concurrent fold diverged: max abs diff %g > 1e-5", p, diff)
		}
		core.Release(got)
	}
}

// TestShardedWeighted checks the weighted merge: ingesting updates at
// weights 2 and 3 must equal the manual (2a + 3b)/5.
func TestShardedWeighted(t *testing.T) {
	streams, decoded := compressUpdates(t, 2)
	sh := New(Config{Shards: 2})
	ingest(t, sh, 0, 2, frame(t, streams[0]))
	ingest(t, sh, 1, 3, frame(t, streams[1]))
	got, n := sh.Mean()
	if n != 2 {
		t.Fatalf("folded %d, want 2", n)
	}
	if ws := sh.WeightSum(); ws != 5 {
		t.Fatalf("WeightSum = %v, want 5", ws)
	}

	want := decoded[0].Clone()
	want.Scale(2)
	if err := want.AddScaled(decoded[1], 3); err != nil {
		t.Fatal(err)
	}
	want.Scale(float32(1.0 / 5.0))
	diff, err := want.MaxAbsDiff(got)
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-6 {
		t.Fatalf("weighted mean off by %g", diff)
	}
	core.Release(got)
}

// TestShardedDelta routes v3 residual sections: the shard decode must
// fold the reference back in, and an epoch mismatch must surface as
// ErrReference (renegotiable), never ErrCorrupt.
func TestShardedDelta(t *testing.T) {
	ref := clientUpdate(99)
	// A small perturbation of the reference, so residual encoding wins and
	// the encoder actually emits delta sections.
	upd := ref.Clone()
	rng := rand.New(rand.NewPCG(7, 7^0xD317A))
	for _, e := range upd.Entries() {
		for i := range e.Tensor.Data {
			e.Tensor.Data[i] += float32(1e-3 * rng.NormFloat64())
		}
	}
	stream, _, err := core.Compress(upd, core.Options{LossyParams: ebcl.Rel(1e-2), Reference: ref, RefEpoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := core.DecompressOpts(context.Background(), nil, stream, core.DecodeOptions{Reference: ref, RefEpoch: 7})
	if err != nil {
		t.Fatal(err)
	}

	sh := New(Config{Shards: 2})
	_, dstats, err := sh.IngestStream(context.Background(), 1, 1, core.DecodeOptions{Reference: ref, RefEpoch: 7}, bytes.NewReader(frame(t, stream)))
	if err != nil {
		t.Fatal(err)
	}
	if dstats.DeltaTensors == 0 {
		t.Fatal("no residual sections routed; fixture did not exercise delta")
	}
	got, _ := sh.Mean()
	diff, err := want.MaxAbsDiff(got)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Fatalf("delta fold differs from whole-stream decode: %g", diff)
	}
	core.Release(got)

	// Wrong epoch: ErrReference, accumulator untouched.
	sh2 := New(Config{Shards: 2})
	_, _, err = sh2.IngestStream(context.Background(), 1, 1, core.DecodeOptions{Reference: ref, RefEpoch: 8}, bytes.NewReader(frame(t, stream)))
	if !errors.Is(err, core.ErrReference) {
		t.Fatalf("epoch mismatch err = %v, want ErrReference", err)
	}
	if errors.Is(err, core.ErrCorrupt) {
		t.Fatal("epoch mismatch classified as corruption")
	}
	if n := sh2.Count(); n != 0 {
		t.Fatalf("failed update folded: count %d", n)
	}
}

// TestShardedCorruptAtomicity flips a byte mid-stream: the update must
// fail with ErrCorrupt and fold NOTHING, even though earlier sections
// were already decodable — the staged-commit atomicity guarantee.
func TestShardedCorruptAtomicity(t *testing.T) {
	streams, _ := compressUpdates(t, 2)
	sh := New(Config{Shards: 2})
	ingest(t, sh, 0, 1, frame(t, streams[0]))

	framed := frame(t, streams[1])
	framed[len(framed)-3] ^= 0x40 // damage the trailer
	_, _, err := sh.IngestStream(context.Background(), 1, 1, core.DecodeOptions{}, bytes.NewReader(framed))
	if !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if n := sh.Count(); n != 1 {
		t.Fatalf("corrupt update folded: count %d, want 1", n)
	}

	// The undamaged copy still folds afterwards.
	ingest(t, sh, 1, 1, frame(t, streams[1]))
	if n := sh.Count(); n != 2 {
		t.Fatalf("count %d after recovery, want 2", n)
	}
}

// TestShardedDedupAcrossSessions is the at-least-once regression: the
// same client uploading the same update on two separate sessions (the
// retry-after-lost-ack pattern) must fold exactly once, and the duplicate
// must still be acked as success.
func TestShardedDedupAcrossSessions(t *testing.T) {
	streams, decoded := compressUpdates(t, 1)
	sh := New(Config{Shards: 2, DedupByClient: true})
	srv, err := flserve.Listen("127.0.0.1:0", flserve.Config{Ingestor: sh, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for session := 0; session < 2; session++ {
		c := &flserve.Client{Addr: srv.Addr().String()}
		if err := c.Upload(context.Background(), 42, streams[0]); err != nil {
			t.Fatalf("session %d upload: %v", session, err)
		}
	}
	if n := sh.Count(); n != 1 {
		t.Fatalf("duplicate across sessions folded %d times, want 1", n)
	}
	got, _ := sh.Mean()
	diff, err := decoded[0].MaxAbsDiff(got)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Fatalf("dedup mean differs from the single update: %g", diff)
	}
	core.Release(got)
}

// TestTwoTierE2E runs a real root + two edges over TCP: clients upload to
// the edges, the edges flush one fused weighted update each, and the root
// mean must match the flat fold of all five clients within the documented
// tolerance (float reassociation + one extra lossy encode of each edge
// mean at the edge's tighter bound).
func TestTwoTierE2E(t *testing.T) {
	const nA, nB = 3, 2
	streams, decoded := compressUpdates(t, nA+nB)

	rootAgg := New(Config{Shards: 2, Pool: sched.NewPool(2)})
	root, err := flserve.Listen("127.0.0.1:0", flserve.Config{Ingestor: rootAgg, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()

	edgeCfg := func(id uint32) EdgeConfig {
		return EdgeConfig{
			Upstream: root.Addr().String(),
			ClientID: id,
			Shards:   2,
			Options:  core.Options{LossyParams: ebcl.Rel(1e-4)},
		}
	}
	edgeA, err := ListenEdge("127.0.0.1:0", edgeCfg(1000))
	if err != nil {
		t.Fatal(err)
	}
	defer edgeA.Close()
	edgeB, err := ListenEdge("127.0.0.1:0", edgeCfg(1001))
	if err != nil {
		t.Fatal(err)
	}
	defer edgeB.Close()

	var wg sync.WaitGroup
	upload := func(addr string, client uint32, stream []byte) {
		defer wg.Done()
		c := &flserve.Client{Addr: addr}
		if err := c.Upload(context.Background(), client, stream); err != nil {
			t.Errorf("client %d: %v", client, err)
		}
	}
	for i := 0; i < nA; i++ {
		wg.Add(1)
		go upload(edgeA.Addr().String(), uint32(i), streams[i])
	}
	for i := 0; i < nB; i++ {
		wg.Add(1)
		go upload(edgeB.Addr().String(), uint32(nA+i), streams[nA+i])
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	wA, err := edgeA.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wB, err := edgeB.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if wA != nA || wB != nB {
		t.Fatalf("flush weights %v/%v, want %d/%d", wA, wB, nA, nB)
	}
	// A second flush with nothing folded is a no-op, not a zero-weight
	// upload.
	if w, err := edgeA.Flush(context.Background()); err != nil || w != 0 {
		t.Fatalf("empty flush = (%v, %v), want (0, nil)", w, err)
	}

	if n := rootAgg.Count(); n != 2 {
		t.Fatalf("root folded %d edge updates, want 2", n)
	}
	if ws := rootAgg.WeightSum(); ws != nA+nB {
		t.Fatalf("root weight sum %v, want %d", ws, nA+nB)
	}
	got, _ := rootAgg.Mean()

	flat := &flserve.Aggregator{}
	for i, sd := range decoded {
		if err := flat.Add(flserve.Update{Client: uint32(i), State: sd}); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := flat.Mean()
	diff, err := want.MaxAbsDiff(got)
	if err != nil {
		t.Fatalf("root/flat structure mismatch: %v", err)
	}
	// Tolerance: the edge means were re-encoded at REL 1e-4, so each
	// absolute error is bounded by 1e-4·|value| (values are O(1)), plus
	// float reassociation far below that.
	if diff > 1e-3 {
		t.Fatalf("two-tier mean diverged from flat fold: max abs diff %g > 1e-3", diff)
	}
	core.Release(got)
}

// TestOverloadSheds drives far more concurrent uploads than MaxConns +
// QueueDepth can admit: the excess must be shed — classified as ErrShed
// with a retry-after hint, never as corruption or rejection — while the
// admitted updates all fold, and the decode pool must be fully idle after
// the drain.
func TestOverloadSheds(t *testing.T) {
	const clients = 10
	streams, _ := compressUpdates(t, 1)
	pool := sched.NewPool(2)
	sh := New(Config{Shards: 2, Pool: pool})
	gate := make(chan struct{})
	srv, err := flserve.Listen("127.0.0.1:0", flserve.Config{
		Ingestor:       gatedIngestor{sh, gate},
		MaxConns:       1,
		QueueDepth:     2,
		RetryAfterHint: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &flserve.Client{Addr: srv.Addr().String()}
			errs[i] = c.Upload(context.Background(), uint32(i), streams[0])
		}(i)
	}
	// Let the queue fill and the excess shed before releasing the gate.
	time.Sleep(200 * time.Millisecond)
	close(gate)
	wg.Wait()

	shed, ok := 0, 0
	var retryAfter time.Duration
	for i, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, flserve.ErrShed):
			shed++
			var se *flserve.ShedError
			if !errors.As(err, &se) {
				t.Fatalf("client %d: shed not surfaced as *ShedError: %v", i, err)
			}
			retryAfter = se.RetryAfter
		case errors.Is(err, core.ErrCorrupt), errors.Is(err, flserve.ErrRejected):
			t.Fatalf("client %d: shed misclassified: %v", i, err)
		default:
			t.Fatalf("client %d: unexpected error class: %v", i, err)
		}
	}
	if shed == 0 {
		t.Fatal("no client was shed under overload")
	}
	if ok == 0 {
		t.Fatal("no client was admitted under overload")
	}
	if retryAfter != 25*time.Millisecond {
		t.Fatalf("retry-after hint %v, want 25ms", retryAfter)
	}
	if snap := srv.Snapshot(); snap.Shed != shed {
		t.Fatalf("server counted %d sheds, clients saw %d", snap.Shed, shed)
	}
	if n := sh.Count(); n != ok {
		t.Fatalf("folded %d, acked %d", sh.Count(), ok)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if busy := pool.Busy(); busy != 0 {
		t.Fatalf("pool still busy after drain: %d", busy)
	}
}

// gatedIngestor blocks every ingest until the gate closes — the overload
// test's way of pinning the MaxConns slot.
type gatedIngestor struct {
	inner *Sharded
	gate  chan struct{}
}

func (g gatedIngestor) IngestStream(ctx context.Context, client uint32, weight float64, dopts core.DecodeOptions, r io.Reader) (int64, core.DecompressStats, error) {
	<-g.gate
	return g.inner.IngestStream(ctx, client, weight, dopts, r)
}

// TestShedRetrySucceeds: a client with retries enabled rides out the shed
// using the server's hint and eventually lands its update.
func TestShedRetrySucceeds(t *testing.T) {
	streams, _ := compressUpdates(t, 1)
	sh := New(Config{Shards: 1})
	gate := make(chan struct{})
	srv, err := flserve.Listen("127.0.0.1:0", flserve.Config{
		Ingestor:       gatedIngestor{sh, gate},
		MaxConns:       1,
		QueueDepth:     1,
		RetryAfterHint: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Occupy the serving slot and the queue.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &flserve.Client{Addr: srv.Addr().String()}
			if err := c.Upload(context.Background(), uint32(i), streams[0]); err != nil {
				t.Errorf("pinned client %d: %v", i, err)
			}
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(gate)
	}()
	c := &flserve.Client{Addr: srv.Addr().String(), Retries: 20, RetryBackoff: 5 * time.Millisecond}
	if err := c.Upload(context.Background(), 99, streams[0]); err != nil {
		t.Fatalf("retrying client never landed: %v", err)
	}
	wg.Wait()
	if n := sh.Count(); n != 3 {
		t.Fatalf("folded %d, want 3", n)
	}
}
