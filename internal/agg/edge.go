package agg

import (
	"context"
	"fmt"
	"net"

	"repro/internal/core"
	"repro/internal/flserve"
	"repro/internal/sched"
)

// EdgeConfig tunes an Edge aggregator.
type EdgeConfig struct {
	// Upstream is the root (or next-tier) server's TCP address. Required.
	Upstream string
	// ClientID identifies this edge on the upstream hop.
	ClientID uint32
	// Shards is the local fold's shard count (0 selects 1).
	Shards int
	// DedupByClient guards the local population's at-least-once retries.
	DedupByClient bool
	// Server configures the local ingest listener; Handler and Ingestor
	// are owned by the Edge and must be nil.
	Server flserve.Config
	// Options encode the fused update for the upstream hop. The edge mean
	// is lossy-compressed again here, so the edge→root tolerance is one
	// extra error bound on top of the client→edge one; tighten the bound
	// (e.g. ebcl.Rel(1e-4)) when the tree is deep.
	Options core.Options
	// Client is the upstream uploader template (retry policy, link
	// shaping); Addr is overridden with Upstream.
	Client flserve.Client
}

// Edge is one interior node of an edge→root aggregation tree: a local
// flserve.Server folds its population through a Sharded accumulator, and
// Flush forwards ONE fused update upstream, weighted by the folded
// population weight, over the FLS3 weighted protocol. Legacy clients
// upload to an Edge exactly as they would to a flat server — the
// hierarchy is invisible below it.
type Edge struct {
	cfg  EdgeConfig
	agg  *Sharded
	srv  *flserve.Server
	pool *sched.Pool
}

// ListenEdge starts an edge aggregator listening on addr.
func ListenEdge(addr string, cfg EdgeConfig) (*Edge, error) {
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("agg: EdgeConfig.Upstream is required")
	}
	if cfg.Server.Handler != nil || cfg.Server.Ingestor != nil {
		return nil, fmt.Errorf("agg: EdgeConfig.Server.Handler/Ingestor are owned by the Edge")
	}
	pool := sched.NewPool(cfg.Server.Parallel)
	sh := New(Config{Shards: cfg.Shards, Pool: pool, DedupByClient: cfg.DedupByClient})
	scfg := cfg.Server
	scfg.Ingestor = sh
	srv, err := flserve.Listen(addr, scfg)
	if err != nil {
		return nil, err
	}
	return &Edge{cfg: cfg, agg: sh, srv: srv, pool: pool}, nil
}

// Addr returns the local listening address.
func (e *Edge) Addr() net.Addr { return e.srv.Addr() }

// Agg exposes the local accumulator (count, weight sum, mean).
func (e *Edge) Agg() *Sharded { return e.agg }

// Server exposes the local ingest server (stats, snapshot).
func (e *Edge) Server() *flserve.Server { return e.srv }

// Flush forwards the local fold upstream as one fused, weighted update
// and resets the accumulator for the next round. It returns the weight
// forwarded (the represented population size); 0 with a nil error means
// there was nothing to flush. On error the accumulator is kept so a
// later Flush can retry.
func (e *Edge) Flush(ctx context.Context) (float64, error) {
	mean, n := e.agg.Mean()
	if n == 0 {
		return 0, nil
	}
	weight := e.agg.WeightSum()
	stream, _, err := core.CompressWith(ctx, e.pool, mean, e.cfg.Options)
	core.Release(mean)
	if err != nil {
		return 0, fmt.Errorf("agg: edge flush encode: %w", err)
	}
	client := e.cfg.Client
	client.Addr = e.cfg.Upstream
	if err := client.UploadWeighted(ctx, e.cfg.ClientID, weight, stream); err != nil {
		return 0, fmt.Errorf("agg: edge flush upload: %w", err)
	}
	e.agg.Reset()
	return weight, nil
}

// Close stops the local listener and waits for in-flight connections. It
// does not flush; call Flush first when the round is complete.
func (e *Edge) Close() error { return e.srv.Close() }
