package agg

// Sharded-aggregation metrics on the process-wide telemetry registry:
// per-shard section routing counters (the observable that routing is
// actually spreading load), fold/merge latency, and the configured shard
// count. Registration is lazy and get-or-create, matching the flserve
// metric families these sit beside on a /metrics scrape.

import (
	"strconv"
	"sync"

	"repro/internal/telemetry"
)

type aggMetrics struct {
	updates   *telemetry.Counter
	mergeHist *telemetry.Histogram
	shards    *telemetry.Gauge

	mu       sync.Mutex
	perShard []*telemetry.Counter
}

// sectionsRouted returns the routing counter for shard i, registering it
// on first use (shard counts vary per Sharded instance, so the label set
// grows on demand).
func (m *aggMetrics) sectionsRouted(i int) *telemetry.Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.perShard) <= i {
		m.perShard = append(m.perShard, telemetry.Default().Counter(
			"fedsz_agg_sections_routed_total",
			"Tensor sections routed to aggregator shards, by shard index.",
			telemetry.L("shard", strconv.Itoa(len(m.perShard)))))
	}
	return m.perShard[i]
}

var metrics = sync.OnceValue(func() *aggMetrics {
	r := telemetry.Default()
	return &aggMetrics{
		updates: r.Counter("fedsz_agg_updates_total",
			"Updates folded through the section-routed sharded aggregator."),
		mergeHist: r.Histogram("fedsz_agg_merge_seconds",
			"Per-update commit time: structural validation plus the sharded fold.",
			telemetry.DurationBuckets),
		shards: r.Gauge("fedsz_agg_shards",
			"Configured shard count of the most recently constructed sharded aggregator."),
	}
})
