// Package bitio provides MSB-first bit-level readers and writers used by the
// entropy-coding stages of the lossy and lossless compressors in this module.
//
// Writer accumulates bits into an internal byte buffer; Reader consumes bits
// from a byte slice. Both operate most-significant-bit first so that encoded
// streams are byte-order independent and diffable.
package bitio

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a Reader runs out of bits mid-read.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bitstream")

// Writer writes individual bits and fixed-width bit fields to an in-memory
// buffer, most significant bit first. The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bit accumulator, filled from the MSB side
	nCur uint   // number of bits currently in cur (0..63)
}

// NewWriter returns a Writer whose internal buffer is pre-allocated to hold
// sizeHint bytes. A zero or negative hint is treated as zero.
func NewWriter(sizeHint int) *Writer {
	w := &Writer{}
	if sizeHint > 0 {
		w.buf = make([]byte, 0, sizeHint)
	}
	return w
}

// flushFullBytes drains complete bytes from the accumulator.
func (w *Writer) flushFullBytes() {
	for w.nCur >= 8 {
		w.buf = append(w.buf, byte(w.cur>>(w.nCur-8)))
		w.nCur -= 8
	}
	w.cur &= 1<<w.nCur - 1
}

// WriteBit appends a single bit; any nonzero value writes 1.
func (w *Writer) WriteBit(bit uint) {
	w.cur <<= 1
	if bit != 0 {
		w.cur |= 1
	}
	w.nCur++
	if w.nCur >= 56 {
		w.flushFullBytes()
	}
}

// WriteBits appends the low n bits of v, most significant of those bits
// first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits width %d > 64", n))
	}
	if n == 0 {
		return
	}
	if n < 64 {
		v &= 1<<n - 1
	}
	if w.nCur+n <= 64 {
		w.cur = w.cur<<n | v
		w.nCur += n
		if w.nCur >= 56 {
			w.flushFullBytes()
		}
		return
	}
	hi := 64 - w.nCur // bits that still fit
	w.cur = w.cur<<hi | v>>(n-hi)
	w.nCur = 64
	w.flushFullBytes()
	rest := n - hi
	w.cur = w.cur<<rest | v&(1<<rest-1)
	w.nCur += rest
	if w.nCur >= 56 {
		w.flushFullBytes()
	}
}

// WriteUnary writes v as v one-bits followed by a terminating zero-bit.
func (w *Writer) WriteUnary(v uint64) {
	for i := uint64(0); i < v; i++ {
		w.WriteBit(1)
	}
	w.WriteBit(0)
}

// WriteBytes appends whole bytes. The writer need not be byte aligned.
func (w *Writer) WriteBytes(p []byte) {
	w.flushFullBytes()
	if w.nCur == 0 {
		w.buf = append(w.buf, p...)
		return
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Align pads the current byte with zero bits up to the next byte boundary.
func (w *Writer) Align() {
	w.flushFullBytes()
	if w.nCur != 0 {
		w.WriteBits(0, 8-w.nCur)
	}
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes returns the encoded stream, padding the final partial byte with zero
// bits. The returned slice aliases the writer's buffer; the writer must not
// be reused afterwards unless Reset is called.
func (w *Writer) Bytes() []byte {
	w.flushFullBytes()
	if w.nCur != 0 {
		b := byte(w.cur << (8 - w.nCur))
		return append(w.buf, b)
	}
	return w.buf
}

// Reset discards all written data, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// Reader reads bits from a byte slice, most significant bit first.
type Reader struct {
	data []byte
	pos  int  // byte index
	nRem uint // bits remaining in data[pos] (8..1); 0 means advance
}

// NewReader returns a Reader over data. The slice is not copied.
func NewReader(data []byte) *Reader {
	return &Reader{data: data, nRem: 8}
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.pos >= len(r.data) {
		return 0, ErrUnexpectedEOF
	}
	r.nRem--
	bit := uint(r.data[r.pos]>>r.nRem) & 1
	if r.nRem == 0 {
		r.pos++
		r.nRem = 8
	}
	return bit, nil
}

// ReadBits reads an n-bit big-endian field, n in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits width %d > 64", n))
	}
	var v uint64
	// Bulk path: take the remainder of the current byte, then whole bytes.
	for n > 0 {
		if r.pos >= len(r.data) {
			return 0, ErrUnexpectedEOF
		}
		take := r.nRem
		if take > n {
			take = n
		}
		chunk := uint64(r.data[r.pos]>>(r.nRem-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.nRem -= take
		n -= take
		if r.nRem == 0 {
			r.pos++
			r.nRem = 8
		}
	}
	return v, nil
}

// ReadUnary reads a unary-coded value (count of one-bits before a zero-bit).
func (r *Reader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if bit == 0 {
			return v, nil
		}
		v++
	}
}

// ReadBytes reads n whole bytes. The reader need not be byte aligned.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	out := make([]byte, n)
	if r.nRem == 8 {
		// Fast path: byte aligned.
		if r.pos+n > len(r.data) {
			return nil, ErrUnexpectedEOF
		}
		copy(out, r.data[r.pos:r.pos+n])
		r.pos += n
		return out, nil
	}
	for i := range out {
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Align skips forward to the next byte boundary.
func (r *Reader) Align() {
	if r.nRem != 8 {
		r.pos++
		r.nRem = 8
	}
}

// BitsRemaining reports the number of unread bits.
func (r *Reader) BitsRemaining() int {
	if r.pos >= len(r.data) {
		return 0
	}
	return (len(r.data)-r.pos-1)*8 + int(r.nRem)
}
