// Package bitio provides MSB-first bit-level readers and writers used by the
// entropy-coding stages of the lossy and lossless compressors in this module.
//
// Writer accumulates bits into an internal byte buffer; Reader consumes bits
// from a byte slice. Both operate most-significant-bit first so that encoded
// streams are byte-order independent and diffable.
//
// Reader additionally exposes a branchless word-oriented fast path —
// Refill / Peek / Consume over a cached 64-bit accumulator — which is what
// the table-driven Huffman decoder and the bit-plane scanners use. The wire
// format is identical either way; the fast path only changes how many bits
// are moved per memory access.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ErrUnexpectedEOF is returned when a Reader runs out of bits mid-read.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of bitstream")

// Writer writes individual bits and fixed-width bit fields to an in-memory
// buffer, most significant bit first. The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bit accumulator, filled from the MSB side
	nCur uint   // number of bits currently in cur (0..63)
}

// NewWriter returns a Writer whose internal buffer is pre-allocated to hold
// sizeHint bytes. A zero or negative hint is treated as zero.
func NewWriter(sizeHint int) *Writer {
	w := &Writer{}
	if sizeHint > 0 {
		w.buf = make([]byte, 0, sizeHint)
	}
	return w
}

// NewWriterBuffer returns a Writer that appends into buf's backing array,
// so callers recycling buffers through a pool can supply the storage and
// recover it (possibly regrown) from Bytes.
func NewWriterBuffer(buf []byte) *Writer {
	return &Writer{buf: buf[:0]}
}

// NewWriterAppend returns a Writer that appends after buf's existing
// contents — the zero-copy path for codecs emitting a bit stream directly
// behind an already-written header: Bytes returns the header and the bit
// stream in one slice, no intermediate buffer or copy.
func NewWriterAppend(buf []byte) *Writer {
	return &Writer{buf: buf}
}

// flushFullBytes drains complete bytes from the accumulator in one append,
// rather than a byte at a time.
func (w *Writer) flushFullBytes() {
	k := w.nCur >> 3
	if k == 0 {
		return
	}
	v := w.cur >> (w.nCur - 8*k)
	w.nCur -= 8 * k
	w.cur &= 1<<w.nCur - 1
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v<<(64-8*k))
	w.buf = append(w.buf, tmp[:k]...)
}

// WriteBit appends a single bit; any nonzero value writes 1.
func (w *Writer) WriteBit(bit uint) {
	w.cur <<= 1
	if bit != 0 {
		w.cur |= 1
	}
	w.nCur++
	if w.nCur >= 56 {
		w.flushFullBytes()
	}
}

// WriteBits appends the low n bits of v, most significant of those bits
// first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits width %d > 64", n))
	}
	if n == 0 {
		return
	}
	if n < 64 {
		v &= 1<<n - 1
	}
	if w.nCur+n <= 64 {
		w.cur = w.cur<<n | v
		w.nCur += n
		if w.nCur >= 56 {
			w.flushFullBytes()
		}
		return
	}
	hi := 64 - w.nCur // bits that still fit
	w.cur = w.cur<<hi | v>>(n-hi)
	w.nCur = 64
	w.flushFullBytes()
	rest := n - hi
	w.cur = w.cur<<rest | v&(1<<rest-1)
	w.nCur += rest
	if w.nCur >= 56 {
		w.flushFullBytes()
	}
}

// WriteUnary writes v as v one-bits followed by a terminating zero-bit,
// batched into WriteBits chunks of up to 64 bits.
func (w *Writer) WriteUnary(v uint64) {
	for v >= 64 {
		w.WriteBits(^uint64(0), 64)
		v -= 64
	}
	if v == 63 {
		w.WriteBits(^uint64(1), 64) // 63 ones + the terminating zero
		return
	}
	w.WriteBits(1<<(v+1)-2, uint(v)+1) // v ones + the terminating zero
}

// WriteBytes appends whole bytes. The writer need not be byte aligned.
func (w *Writer) WriteBytes(p []byte) {
	w.flushFullBytes()
	if w.nCur == 0 {
		w.buf = append(w.buf, p...)
		return
	}
	for len(p) >= 8 {
		w.WriteBits(binary.BigEndian.Uint64(p), 64)
		p = p[8:]
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Align pads the current byte with zero bits up to the next byte boundary.
func (w *Writer) Align() {
	w.flushFullBytes()
	if w.nCur != 0 {
		w.WriteBits(0, 8-w.nCur)
	}
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Bytes returns the encoded stream, padding the final partial byte with zero
// bits. The returned slice aliases the writer's buffer; the writer must not
// be reused afterwards unless Reset is called.
func (w *Writer) Bytes() []byte {
	w.flushFullBytes()
	if w.nCur != 0 {
		b := byte(w.cur << (8 - w.nCur))
		return append(w.buf, b)
	}
	return w.buf
}

// Reset discards all written data, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// Reader reads bits from a byte slice, most significant bit first.
//
// All reads go through a 64-bit accumulator: the next unread bit is bit 63
// of bits, and only the top nBits bits are valid (the rest are zero). The
// table-driven decoders drive the accumulator directly via Refill / Peek /
// Consume; ReadBit / ReadBits / ReadUnary are defined on top of it.
type Reader struct {
	data  []byte
	pos   int    // next byte of data to load into the accumulator
	bits  uint64 // accumulator, MSB-justified: top nBits bits are valid
	nBits uint   // valid bits in the accumulator (0..64)
}

// NewReader returns a Reader over data. The slice is not copied.
func NewReader(data []byte) *Reader {
	return &Reader{data: data}
}

// Reset re-points r at data, discarding any buffered state. It lets hot
// loops keep Readers as stack values (e.g. one per sub-stream in the
// multi-stream Huffman decoder) instead of allocating via NewReader.
func (r *Reader) Reset(data []byte) {
	*r = Reader{data: data}
}

// Refill tops the accumulator up to at least 56 valid bits, or to all
// remaining stream bits when fewer are left. After Refill, any Peek/Consume
// of up to min(56, BitsRemaining()) bits is safe without further checks.
func (r *Reader) Refill() {
	if r.nBits >= 56 {
		return
	}
	if r.pos+8 <= len(r.data) {
		// One 64-bit load tops the accumulator up to 56..63 valid bits.
		// The load may bring in up to 7 bits beyond the bytes pos advances
		// over; they sit below the valid region and are re-ORed with
		// identical values on the next refill, so they are harmless — and
		// being real stream bits, they never fake data past the end.
		r.bits |= binary.BigEndian.Uint64(r.data[r.pos:]) >> r.nBits
		r.pos += int((63 - r.nBits) >> 3)
		r.nBits |= 56
		return
	}
	r.refillTail()
}

// refillTail is Refill's byte-at-a-time path for the last <8 bytes of the
// stream, kept out of line so Refill itself stays inlinable.
func (r *Reader) refillTail() {
	for r.nBits < 56 && r.pos < len(r.data) {
		r.bits |= uint64(r.data[r.pos]) << (56 - r.nBits)
		r.pos++
		r.nBits += 8
	}
}

// Peek returns the next n bits (MSB-first) without consuming them, n in
// [0, 56]. Bits past the end of the stream read as zero. Callers are
// responsible for calling Refill first and for checking Buffered /
// BitsRemaining before trusting more than Buffered() bits.
func (r *Reader) Peek(n uint) uint64 {
	return r.bits >> (64 - n)
}

// Consume discards the next n bits. n must not exceed Buffered().
func (r *Reader) Consume(n uint) {
	if n > r.nBits {
		panic("bitio: Consume exceeds buffered bits")
	}
	r.bits <<= n
	r.nBits -= n
}

// ConsumeFast is Consume without the buffered-bits guard, for hot loops
// that have already established n <= Buffered() as a loop invariant (the
// wide Huffman decoder checks one max-length code per stream per round).
// Violating the invariant corrupts the reader's position instead of
// panicking.
func (r *Reader) ConsumeFast(n uint) {
	r.bits <<= n
	r.nBits -= n
}

// Buffered reports the number of valid bits currently in the accumulator.
// After Refill it is min(56..63, BitsRemaining()); a value below a needed
// width after Refill therefore means the stream itself is short.
func (r *Reader) Buffered() uint { return r.nBits }

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.nBits == 0 {
		r.Refill()
		if r.nBits == 0 {
			return 0, ErrUnexpectedEOF
		}
	}
	bit := uint(r.bits >> 63)
	r.bits <<= 1
	r.nBits--
	return bit, nil
}

// ReadBits reads an n-bit big-endian field, n in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: ReadBits width %d > 64", n))
	}
	if n == 0 {
		return 0, nil
	}
	if n <= r.nBits {
		v := r.bits >> (64 - n)
		r.bits <<= n
		r.nBits -= n
		return v, nil
	}
	r.Refill()
	if n <= r.nBits {
		v := r.bits >> (64 - n)
		r.bits <<= n
		r.nBits -= n
		return v, nil
	}
	// Wide read near the accumulator boundary (n in 57..64) or end of
	// stream: drain what is buffered, refill, take the rest.
	if n > uint(r.BitsRemaining()) {
		return 0, ErrUnexpectedEOF
	}
	take := r.nBits // < 64 here, since n <= 64 did not fit
	v := r.bits >> (64 - take)
	r.bits, r.nBits = 0, 0
	r.Refill()
	rest := n - take // <= 8 once a refill succeeded
	v = v<<rest | r.bits>>(64-rest)
	r.bits <<= rest
	r.nBits -= rest
	return v, nil
}

// ReadUnary reads a unary-coded value (count of one-bits before a zero-bit)
// by scanning the accumulator a word at a time.
func (r *Reader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		r.Refill()
		if r.nBits == 0 {
			return 0, ErrUnexpectedEOF
		}
		ones := uint(bits.LeadingZeros64(^r.bits))
		if ones >= r.nBits {
			// Every buffered bit is a one; consume them all and keep going.
			v += uint64(r.nBits)
			r.bits, r.nBits = 0, 0
			continue
		}
		r.bits <<= ones + 1
		r.nBits -= ones + 1
		return v + uint64(ones), nil
	}
}

// ReadBytes reads n whole bytes. The reader need not be byte aligned.
func (r *Reader) ReadBytes(n int) ([]byte, error) {
	if n > (len(r.data)-r.pos)+int(r.nBits>>3) {
		return nil, ErrUnexpectedEOF
	}
	out := make([]byte, n)
	i := 0
	if r.nBits&7 == 0 {
		// Byte-aligned: drain whole accumulator bytes, then copy directly.
		for r.nBits > 0 && i < n {
			out[i] = byte(r.bits >> 56)
			r.bits <<= 8
			r.nBits -= 8
			i++
		}
		// Clear any lookahead bits Refill left below the (now empty) valid
		// region: the direct copy below advances pos past their source
		// bytes, so they must not survive into the next refill.
		if r.nBits == 0 {
			r.bits = 0
		}
		copied := copy(out[i:], r.data[r.pos:])
		r.pos += copied
		i += copied
		if i < n {
			return nil, ErrUnexpectedEOF
		}
		return out, nil
	}
	for ; i < n; i++ {
		v, err := r.ReadBits(8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Align skips forward to the next byte boundary.
func (r *Reader) Align() {
	// Bits consumed so far ≡ -nBits (mod 8), so dropping nBits%8 more bits
	// lands on a byte boundary.
	drop := r.nBits & 7
	r.bits <<= drop
	r.nBits -= drop
}

// BitsRemaining reports the number of unread bits.
func (r *Reader) BitsRemaining() int {
	return (len(r.data)-r.pos)*8 + int(r.nBits)
}
