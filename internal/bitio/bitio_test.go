package bitio

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(0)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsWidths(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFFFF, 16)
	w.WriteBits(0, 0) // zero-width write is a no-op
	w.WriteBits(0x1234567890ABCDEF, 64)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("3-bit field: got %#x", v)
	}
	if v, _ := r.ReadBits(16); v != 0xFFFF {
		t.Fatalf("16-bit field: got %#x", v)
	}
	if v, _ := r.ReadBits(64); v != 0x1234567890ABCDEF {
		t.Fatalf("64-bit field: got %#x", v)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter(0)
	vals := []uint64{0, 1, 2, 7, 63, 100}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("unary: got %d want %d", got, want)
		}
	}
}

func TestWriteBytesAligned(t *testing.T) {
	w := NewWriter(0)
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	w.WriteBytes(payload)
	r := NewReader(w.Bytes())
	got, err := r.ReadBytes(4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got % x want % x", got, payload)
	}
}

func TestWriteBytesUnaligned(t *testing.T) {
	w := NewWriter(0)
	w.WriteBit(1)
	payload := []byte{0x01, 0x80, 0x55}
	w.WriteBytes(payload)
	r := NewReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("leading bit lost")
	}
	got, err := r.ReadBytes(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got % x want % x", got, payload)
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b11, 2)
	w.Align()
	w.WriteBits(0xAB, 8)
	out := w.Bytes()
	if len(out) != 2 || out[0] != 0b11000000 || out[1] != 0xAB {
		t.Fatalf("unexpected aligned output % x", out)
	}
	r := NewReader(out)
	r.ReadBits(2)
	r.Align()
	if v, _ := r.ReadBits(8); v != 0xAB {
		t.Fatalf("aligned read got %#x", v)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadBits(4); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadBytes(1); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestBitLenAndRemaining(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("BitLen = %d want 13", w.BitLen())
	}
	r := NewReader(w.Bytes()) // padded to 16 bits
	if r.BitsRemaining() != 16 {
		t.Fatalf("BitsRemaining = %d want 16", r.BitsRemaining())
	}
	r.ReadBits(5)
	if r.BitsRemaining() != 11 {
		t.Fatalf("BitsRemaining = %d want 11", r.BitsRemaining())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFF, 8)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatalf("BitLen after Reset = %d", w.BitLen())
	}
	w.WriteBits(0x0F, 4)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0xF0 {
		t.Fatalf("post-reset bytes % x", got)
	}
}

// Property: any sequence of (value,width) fields round-trips exactly.
func TestQuickFieldRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		count := int(n%64) + 1
		vals := make([]uint64, count)
		widths := make([]uint, count)
		w := NewWriter(0)
		for i := range vals {
			widths[i] = uint(rng.IntN(64) + 1)
			vals[i] = rng.Uint64() & (^uint64(0) >> (64 - widths[i]))
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset()
		for j := 0; j < 4096; j++ {
			w.WriteBits(uint64(j), 13)
		}
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for j := 0; j < 4096; j++ {
		w.WriteBits(uint64(j), 13)
	}
	data := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(data)
		for j := 0; j < 4096; j++ {
			r.ReadBits(13)
		}
	}
}
