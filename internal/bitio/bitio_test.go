package bitio

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(0)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsWidths(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFFFF, 16)
	w.WriteBits(0, 0) // zero-width write is a no-op
	w.WriteBits(0x1234567890ABCDEF, 64)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("3-bit field: got %#x", v)
	}
	if v, _ := r.ReadBits(16); v != 0xFFFF {
		t.Fatalf("16-bit field: got %#x", v)
	}
	if v, _ := r.ReadBits(64); v != 0x1234567890ABCDEF {
		t.Fatalf("64-bit field: got %#x", v)
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	w := NewWriter(0)
	vals := []uint64{0, 1, 2, 7, 63, 100}
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("unary: got %d want %d", got, want)
		}
	}
}

func TestWriteBytesAligned(t *testing.T) {
	w := NewWriter(0)
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	w.WriteBytes(payload)
	r := NewReader(w.Bytes())
	got, err := r.ReadBytes(4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got % x want % x", got, payload)
	}
}

func TestWriteBytesUnaligned(t *testing.T) {
	w := NewWriter(0)
	w.WriteBit(1)
	payload := []byte{0x01, 0x80, 0x55}
	w.WriteBytes(payload)
	r := NewReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("leading bit lost")
	}
	got, err := r.ReadBytes(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got % x want % x", got, payload)
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b11, 2)
	w.Align()
	w.WriteBits(0xAB, 8)
	out := w.Bytes()
	if len(out) != 2 || out[0] != 0b11000000 || out[1] != 0xAB {
		t.Fatalf("unexpected aligned output % x", out)
	}
	r := NewReader(out)
	r.ReadBits(2)
	r.Align()
	if v, _ := r.ReadBits(8); v != 0xAB {
		t.Fatalf("aligned read got %#x", v)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadBits(4); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadBytes(1); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestBitLenAndRemaining(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0, 13)
	if w.BitLen() != 13 {
		t.Fatalf("BitLen = %d want 13", w.BitLen())
	}
	r := NewReader(w.Bytes()) // padded to 16 bits
	if r.BitsRemaining() != 16 {
		t.Fatalf("BitsRemaining = %d want 16", r.BitsRemaining())
	}
	r.ReadBits(5)
	if r.BitsRemaining() != 11 {
		t.Fatalf("BitsRemaining = %d want 11", r.BitsRemaining())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFF, 8)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatalf("BitLen after Reset = %d", w.BitLen())
	}
	w.WriteBits(0x0F, 4)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0xF0 {
		t.Fatalf("post-reset bytes % x", got)
	}
}

// Property: any sequence of (value,width) fields round-trips exactly.
func TestQuickFieldRoundTrip(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 42))
		count := int(n%64) + 1
		vals := make([]uint64, count)
		widths := make([]uint, count)
		w := NewWriter(0)
		for i := range vals {
			widths[i] = uint(rng.IntN(64) + 1)
			vals[i] = rng.Uint64() & (^uint64(0) >> (64 - widths[i]))
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekConsumeFastPath(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0x3FFF, 14)
	w.WriteBits(0xABCDE, 20)
	data := w.Bytes()

	r := NewReader(data)
	r.Refill()
	if got := r.Peek(4); got != 0b1011 {
		t.Fatalf("Peek(4) = %#b", got)
	}
	// Peek must not consume.
	if got := r.Peek(4); got != 0b1011 {
		t.Fatalf("second Peek(4) = %#b", got)
	}
	r.Consume(4)
	r.Refill()
	if got := r.Peek(14); got != 0x3FFF {
		t.Fatalf("Peek(14) = %#x", got)
	}
	r.Consume(14)
	r.Refill()
	if got := r.Peek(20); got != 0xABCDE {
		t.Fatalf("Peek(20) = %#x", got)
	}
	r.Consume(20)
	if rem := r.BitsRemaining(); rem != len(data)*8-38 {
		t.Fatalf("BitsRemaining = %d want %d", rem, len(data)*8-38)
	}
}

func TestPeekPastEndReadsZero(t *testing.T) {
	r := NewReader([]byte{0xFF})
	r.Refill()
	if r.Buffered() != 8 {
		t.Fatalf("Buffered = %d want 8", r.Buffered())
	}
	// Bits beyond the stream must read as zero, however the 8 real bits
	// were consumed beforehand.
	if got := r.Peek(12); got != 0xFF0 {
		t.Fatalf("Peek(12) = %#x want 0xFF0", got)
	}
	r.Consume(8)
	r.Refill()
	if got := r.Peek(8); got != 0 {
		t.Fatalf("Peek past end = %#x want 0", got)
	}
}

func TestConsumeOverrunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Consume past Buffered must panic")
		}
	}()
	r := NewReader([]byte{0xAA})
	r.Refill()
	r.Consume(9)
}

// Refill/Peek/Consume interleaved with the classic APIs must agree with a
// pure ReadBits decode of the same stream.
func TestQuickPeekConsumeEquivalence(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		count := int(n%48) + 1
		vals := make([]uint64, count)
		widths := make([]uint, count)
		w := NewWriter(0)
		for i := range vals {
			widths[i] = uint(rng.IntN(56) + 1)
			vals[i] = rng.Uint64() & (^uint64(0) >> (64 - widths[i]))
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			if rng.IntN(2) == 0 {
				r.Refill()
				if r.Buffered() < widths[i] {
					return false
				}
				if r.Peek(widths[i]) != vals[i] {
					return false
				}
				r.Consume(widths[i])
			} else {
				got, err := r.ReadBits(widths[i])
				if err != nil || got != vals[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnaryBatchedEdges(t *testing.T) {
	// Values spanning the 64-bit chunk boundaries of the batched writer.
	vals := []uint64{0, 62, 63, 64, 65, 127, 128, 200}
	w := NewWriter(0)
	for _, v := range vals {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range vals {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("unary: got %d want %d", got, want)
		}
	}
	// All-ones stream without a terminator must hit EOF, not spin.
	r = NewReader([]byte{0xFF, 0xFF})
	if _, err := r.ReadUnary(); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestNewWriterBuffer(t *testing.T) {
	backing := make([]byte, 5, 32)
	w := NewWriterBuffer(backing)
	w.WriteBits(0xBEEF, 16)
	out := w.Bytes()
	if len(out) != 2 || out[0] != 0xBE || out[1] != 0xEF {
		t.Fatalf("bytes % x", out)
	}
	if &out[0] != &backing[:1][0] {
		t.Fatal("writer did not reuse the supplied backing array")
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Reset()
		for j := 0; j < 4096; j++ {
			w.WriteBits(uint64(j), 13)
		}
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 16)
	for j := 0; j < 4096; j++ {
		w.WriteBits(uint64(j), 13)
	}
	data := w.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(data)
		for j := 0; j < 4096; j++ {
			r.ReadBits(13)
		}
	}
}
