// Package compressors is the registry tying the four EBLC implementations
// together under their paper names, so pipelines and experiments can select
// a compressor by string the way FedSZ's config does.
package compressors

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ebcl"
	"repro/internal/sz2"
	"repro/internal/sz3"
	"repro/internal/szx"
	"repro/internal/zfp"
)

var (
	mu       sync.RWMutex
	registry = map[string]func() ebcl.Compressor{
		"sz2": func() ebcl.Compressor { return sz2.NewCompressor() },
		"sz3": func() ebcl.Compressor { return sz3.NewCompressor() },
		"szx": func() ebcl.Compressor { return szx.NewCompressor() },
		"zfp": func() ebcl.Compressor { return zfp.NewCompressor() },
	}
)

// Register adds a user-supplied compressor factory under name, making
// custom EBLCs usable in FedSZ streams (Decompress resolves compressors by
// the name the stream carries). Registering a built-in name is an error;
// re-registering a custom name replaces it. Names are limited to 255 bytes
// by the stream format.
func Register(name string, factory func() ebcl.Compressor) error {
	if name == "" || len(name) > 255 {
		return fmt.Errorf("compressors: invalid name %q", name)
	}
	if factory == nil {
		return fmt.Errorf("compressors: nil factory for %q", name)
	}
	switch name {
	case "sz2", "sz3", "szx", "zfp":
		return fmt.Errorf("compressors: cannot replace built-in %q", name)
	}
	mu.Lock()
	defer mu.Unlock()
	registry[name] = factory
	return nil
}

// Get returns a fresh compressor instance by name.
func Get(name string) (ebcl.Compressor, error) {
	mu.RLock()
	f, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("compressors: unknown compressor %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names returns the sorted registry names.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
