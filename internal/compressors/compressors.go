// Package compressors is the registry tying the four EBLC implementations
// together under their paper names, so pipelines and experiments can select
// a compressor by string the way FedSZ's config does.
package compressors

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ebcl"
	"repro/internal/sz2"
	"repro/internal/sz3"
	"repro/internal/szx"
	"repro/internal/zfp"
)

var (
	mu       sync.RWMutex
	registry = map[string]func() ebcl.BasicCompressor{
		"sz2": func() ebcl.BasicCompressor { return sz2.NewCompressor() },
		"sz3": func() ebcl.BasicCompressor { return sz3.NewCompressor() },
		"szx": func() ebcl.BasicCompressor { return szx.NewCompressor() },
		"zfp": func() ebcl.BasicCompressor { return zfp.NewCompressor() },
	}
)

// Register adds a user-supplied compressor factory under name, making
// custom EBLCs usable in FedSZ streams (Decompress resolves compressors by
// the name the stream carries). Registering a built-in name is an error;
// re-registering a custom name replaces it. Names are limited to 255 bytes
// by the stream format.
//
// The factory may return a codec implementing only the legacy one-shot
// BasicCompressor shape: Get promotes it with ebcl.Adapt, so pre-zero-copy
// codecs keep working in the append/into pipeline unchanged (at the cost of
// one copy per call). Codecs that also implement the full ebcl.Compressor
// contract pass through untouched and run zero-copy.
func Register(name string, factory func() ebcl.BasicCompressor) error {
	if name == "" || len(name) > 255 {
		return fmt.Errorf("compressors: invalid name %q", name)
	}
	if factory == nil {
		return fmt.Errorf("compressors: nil factory for %q", name)
	}
	switch name {
	case "sz2", "sz3", "szx", "zfp":
		return fmt.Errorf("compressors: cannot replace built-in %q", name)
	}
	mu.Lock()
	defer mu.Unlock()
	registry[name] = factory
	return nil
}

// Get returns a fresh compressor instance by name, promoted to the full
// zero-copy contract (see Register).
func Get(name string) (ebcl.Compressor, error) {
	mu.RLock()
	f, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("compressors: unknown compressor %q (have %v)", name, Names())
	}
	return ebcl.Adapt(f()), nil
}

// Names returns the sorted registry names.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
