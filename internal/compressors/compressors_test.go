package compressors_test

import (
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/compressors"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
)

func TestRegistryNames(t *testing.T) {
	names := compressors.Names()
	want := []string{"sz2", "sz3", "szx", "zfp"}
	if len(names) != len(want) {
		t.Fatalf("names %v want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names %v want %v", names, want)
		}
	}
}

func TestGetReturnsFreshInstances(t *testing.T) {
	a, err := compressors.Get("sz2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := compressors.Get("sz2")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("Get must return fresh instances")
	}
	if a.Name() != "sz2" {
		t.Fatalf("name %q", a.Name())
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := compressors.Get("brotli"); err == nil {
		t.Fatal("want error for unknown name")
	}
}

func TestConcurrentCompressionSafe(t *testing.T) {
	// core.Compress runs one compressor instance across goroutines; every
	// EBLC must therefore be safe for concurrent Compress/Decompress.
	rng := rand.New(rand.NewPCG(1, 2))
	data := eblctest.WeightLike(rng, 1<<15)
	for _, name := range compressors.Names() {
		comp, err := compressors.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errCh := make(chan error, 16)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				stream, err := comp.Compress(data, ebcl.Rel(1e-2))
				if err != nil {
					errCh <- err
					return
				}
				out, err := comp.Decompress(stream)
				if err != nil {
					errCh <- err
					return
				}
				if len(out) != len(data) {
					errCh <- ebcl.ErrCorrupt
				}
			}()
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatalf("%s: concurrent use failed: %v", name, err)
		}
	}
}
