// Package conformance cross-checks the full FedSZ pipeline over every
// combination of error-bounded lossy compressor, lossless codec, error
// mode, and edge-case state-dict shape. Where eblctest holds each EBLC to
// a per-codec contract, this suite holds the *assembled pipeline* to one:
// streams round-trip, error bounds hold on the lossy partition, the
// lossless partition is bit-exact, and the batched CompressAll /
// DecompressAll paths produce bit-identical results to per-call
// Compress / Decompress.
package conformance

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/compressors"
	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/lossless"
	"repro/internal/tensor"
)

// codecTraits captures the per-EBLC contract differences the suite must
// respect.
type codecTraits struct {
	// strictBound: max reconstruction error ≤ ebAbs. ZFP's fixed-precision
	// mapping has no formal bound (paper §V-D1), so it runs loose.
	strictBound bool
	looseFactor float64
	// preservesNonFinite: NaN/±Inf payload values survive bit-exactly.
	// All four codecs now escape non-finite data to literals: sz2/sz3
	// per-value, szx and zfp per-block.
	preservesNonFinite bool
}

var traits = map[string]codecTraits{
	"sz2": {strictBound: true, preservesNonFinite: true},
	"sz3": {strictBound: true, preservesNonFinite: true},
	"szx": {strictBound: true, preservesNonFinite: true},
	"zfp": {strictBound: false, looseFactor: 8, preservesNonFinite: true},
}

// dictShape builds one edge-case state dict per named shape.
func dictShape(t *testing.T, shape string, rng *rand.Rand) *tensor.StateDict {
	t.Helper()
	sd := tensor.NewStateDict()
	switch shape {
	case "empty":
	case "scalar0d":
		// A 0-d tensor has rank 0 and exactly one element.
		s := tensor.New()
		s.Data[0] = 42.5
		sd.Add("step", tensor.KindScalarMeta, s)
	case "below-threshold":
		// Every tensor under the 1024-element gate: all-lossless routing.
		for i, n := range []int{1, 3, 64, 1000} {
			w := tensor.New(n)
			for j := range w.Data {
				w.Data[j] = float32(rng.NormFloat64())
			}
			sd.Add("small."+string(rune('a'+i)), tensor.KindWeight, w)
		}
	case "multi":
		// ≥8 lossy tensors plus metadata: exercises the parallel fan-out.
		for i := 0; i < 8; i++ {
			w := tensor.FromData(eblctest.WeightLike(rng, 2048+i*64), 2048+i*64)
			sd.Add("layer"+string(rune('a'+i))+".weight", tensor.KindWeight, w)
		}
		b := tensor.New(32)
		for j := range b.Data {
			b.Data[j] = float32(0.01 * rng.NormFloat64())
		}
		sd.Add("head.bias", tensor.KindBias, b)
	case "all-below-bound":
		// A lossy tensor whose values all sit below the absolute bound —
		// quantizes to a (near-)constant stream.
		w := tensor.New(4096)
		for j := range w.Data {
			w.Data[j] = float32(1e-7 * rng.NormFloat64())
		}
		sd.Add("tiny.weight", tensor.KindWeight, w)
	case "nonfinite":
		w := tensor.FromData(eblctest.WeightLike(rng, 4096), 4096)
		w.Data[17] = float32(math.NaN())
		w.Data[1025] = float32(math.Inf(1))
		w.Data[3000] = float32(math.Inf(-1))
		sd.Add("poisoned.weight", tensor.KindWeight, w)
	default:
		t.Fatalf("unknown shape %q", shape)
	}
	return sd
}

func isFinite32(v float32) bool {
	f := float64(v)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// checkRoundTrip asserts the pipeline contract for one decoded dict.
func checkRoundTrip(t *testing.T, orig, got *tensor.StateDict, opts core.Options, tr codecTraits) {
	t.Helper()
	if got.Len() != orig.Len() {
		t.Fatalf("entries %d != %d", got.Len(), orig.Len())
	}
	for i, e := range orig.Entries() {
		g := got.Entries()[i]
		if g.Name != e.Name || g.Kind != e.Kind {
			t.Fatalf("entry %d: %s/%v != %s/%v", i, g.Name, g.Kind, e.Name, e.Kind)
		}
		if len(g.Tensor.Data) != len(e.Tensor.Data) {
			t.Fatalf("entry %q: %d elements, want %d", e.Name, len(g.Tensor.Data), len(e.Tensor.Data))
		}
		lossy := e.Kind == tensor.KindWeight && e.Tensor.NumElems() > core.DefaultThreshold
		if !lossy {
			// Lossless partition must survive bit-exactly.
			for j := range e.Tensor.Data {
				if math.Float32bits(e.Tensor.Data[j]) != math.Float32bits(g.Tensor.Data[j]) {
					t.Fatalf("lossless entry %q not bit-exact at %d", e.Name, j)
				}
			}
			continue
		}
		// Lossy partition: resolve the absolute bound the params promise.
		var ebAbs float64
		switch opts.LossyParams.Mode {
		case ebcl.ModeRelative:
			ebAbs = opts.LossyParams.Value * ebcl.ValueRange(e.Tensor.Data)
		case ebcl.ModeAbsolute:
			ebAbs = opts.LossyParams.Value
		}
		limit := ebAbs
		if !tr.strictBound {
			limit = ebAbs * tr.looseFactor
		}
		for j := range e.Tensor.Data {
			a, b := e.Tensor.Data[j], g.Tensor.Data[j]
			if !isFinite32(a) {
				if tr.preservesNonFinite && math.Float32bits(a) != math.Float32bits(b) {
					t.Fatalf("entry %q: non-finite value at %d not preserved: % x -> % x",
						e.Name, j, math.Float32bits(a), math.Float32bits(b))
				}
				continue
			}
			if !tr.preservesNonFinite && !isFinite32(b) {
				t.Fatalf("entry %q: finite %g decoded non-finite %g at %d", e.Name, a, b, j)
			}
			if tr.strictBound || allFiniteNear(e.Tensor.Data, j) {
				if d := math.Abs(float64(a) - float64(b)); d > limit*(1+1e-6)+1e-12 {
					t.Fatalf("entry %q: error %g exceeds %g at %d", e.Name, d, limit, j)
				}
			}
		}
	}
}

// allFiniteNear reports whether the 4-aligned block around index j is free
// of non-finite values. ZFP stores poisoned blocks as exact literals, so
// their finite neighbours are bit-exact rather than bounded — the loose
// bound check only applies to fully finite blocks.
func allFiniteNear(data []float32, j int) bool {
	lo := j &^ 3
	hi := lo + 4
	if hi > len(data) {
		hi = len(data)
	}
	for _, v := range data[lo:hi] {
		if !isFinite32(v) {
			return false
		}
	}
	return true
}

func TestCrossCodecPipelineConformance(t *testing.T) {
	shapes := []string{"empty", "scalar0d", "below-threshold", "multi", "all-below-bound", "nonfinite"}
	params := []struct {
		name string
		p    ebcl.Params
	}{
		{"REL1e-2", ebcl.Rel(1e-2)},
		{"ABS1e-3", ebcl.Abs(1e-3)},
	}
	for _, lossyName := range compressors.Names() {
		tr, ok := traits[lossyName]
		if !ok {
			t.Fatalf("no traits for compressor %q — add it to the conformance table", lossyName)
		}
		for _, losslessName := range lossless.Names() {
			for _, pp := range params {
				for _, shape := range shapes {
					name := lossyName + "/" + losslessName + "/" + pp.name + "/" + shape
					t.Run(name, func(t *testing.T) {
						lossy, err := compressors.Get(lossyName)
						if err != nil {
							t.Fatal(err)
						}
						codec, err := lossless.Get(losslessName)
						if err != nil {
							t.Fatal(err)
						}
						opts := core.Options{Lossy: lossy, LossyParams: pp.p, Lossless: codec}
						rng := rand.New(rand.NewPCG(99, uint64(len(name))))
						sd := dictShape(t, shape, rng)

						stream, _, err := core.Compress(sd, opts)
						if shape == "nonfinite" && pp.p.Mode == ebcl.ModeRelative && tr.strictBound {
							// A range-relative bound is undefined over NaN/Inf
							// data: the strict codecs must reject it cleanly
							// instead of emitting an undecodable stream.
							if err == nil {
								t.Fatal("REL bound over non-finite data compressed without error")
							}
							return
						}
						if err != nil {
							t.Fatal(err)
						}
						got, _, err := core.Decompress(stream)
						if err != nil {
							t.Fatal(err)
						}
						checkRoundTrip(t, sd, got, opts, tr)

						// Batched paths must be bit-identical to per-call.
						batchStreams, _, err := core.CompressAll(context.Background(), []*tensor.StateDict{sd, sd, sd}, opts, 2)
						if err != nil {
							t.Fatal(err)
						}
						for i, bs := range batchStreams {
							if !bytes.Equal(bs, stream) {
								t.Fatalf("batch stream %d differs from sequential", i)
							}
						}
						batchDicts, _, err := core.DecompressAll(context.Background(), batchStreams, 2)
						if err != nil {
							t.Fatal(err)
						}
						want := got.Marshal()
						for i, bd := range batchDicts {
							if !bytes.Equal(bd.Marshal(), want) {
								t.Fatalf("batch decode %d differs from sequential", i)
							}
						}
					})
				}
			}
		}
	}
}

// TestCorruptBatchKeepsErrCorrupt: the batch API must surface the same
// sentinel as the per-call path.
func TestCorruptBatchKeepsErrCorrupt(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	sd := dictShape(t, "multi", rng)
	stream, _, err := core.Compress(sd, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), stream...)
	bad[0] ^= 0xFF
	if _, _, err := core.DecompressAll(context.Background(), [][]byte{stream, bad}, 2); !errors.Is(err, core.ErrCorrupt) {
		t.Fatalf("batch error %v does not wrap ErrCorrupt", err)
	}
}
