package conformance

// Multi-round delta drift conformance: the cross-round residual format must
// not let error accumulate. Each round encodes against the *reconstructed*
// previous global — the dict both ends actually share — so the error on
// round t's data is exactly round t's encoding error, independent of how
// many delta rounds preceded it. driftGrowthFactor documents the slack the
// suite allows on top of the per-round bound; holding it at 1 (strict
// codecs) is the no-accumulation guarantee itself.

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/compressors"
	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/tensor"
)

// driftGrowthFactor is the documented multi-round error budget: after K
// delta rounds the reconstruction error on round K's data must stay within
// per-round bound × this factor. The reference chain is exact at both ends,
// so no growth is expected for strict codecs; zfp additionally carries its
// usual loose factor from the conformance traits table.
const driftGrowthFactor = 1.0

// driftRounds is K: enough rounds that naive accumulation (error ∝ K)
// would overshoot the budget several times over.
const driftRounds = 8

// driftDict builds the round-0 global: two lossy weights and a lossless
// bias, the standard partition mix.
func driftDict(rng *rand.Rand) *tensor.StateDict {
	sd := tensor.NewStateDict()
	sd.Add("conv.weight", tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, 4096), 64, 64))
	sd.Add("fc.weight", tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, 2048), 2048))
	b := tensor.New(64)
	for i := range b.Data {
		b.Data[i] = float32(0.01 * rng.NormFloat64())
	}
	sd.Add("fc.bias", tensor.KindBias, b)
	return sd
}

// drift perturbs sd in place the way a round of local SGD would: a small
// step around the current value, keeping rounds temporally correlated.
func drift(sd *tensor.StateDict, rng *rand.Rand, scale float64) {
	for _, e := range sd.Entries() {
		for i := range e.Tensor.Data {
			e.Tensor.Data[i] += float32(scale * rng.NormFloat64())
		}
	}
}

func TestDeltaMultiRoundDrift(t *testing.T) {
	params := []struct {
		name string
		p    ebcl.Params
	}{
		{"REL1e-2", ebcl.Rel(1e-2)},
		{"ABS1e-3", ebcl.Abs(1e-3)},
	}
	for _, lossyName := range compressors.Names() {
		tr, ok := traits[lossyName]
		if !ok {
			t.Fatalf("no traits for compressor %q", lossyName)
		}
		for _, pp := range params {
			t.Run(lossyName+"/"+pp.name, func(t *testing.T) {
				lossy, err := compressors.Get(lossyName)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewPCG(4242, uint64(len(lossyName))))
				truth := driftDict(rng)

				// shared is the reference chain: the reconstruction both
				// ends hold after each round, seeded by an absolute round 0.
				opts := core.Options{Lossy: lossy, LossyParams: pp.p}
				stream, _, err := core.Compress(truth, opts)
				if err != nil {
					t.Fatal(err)
				}
				shared, _, err := core.Decompress(stream)
				if err != nil {
					t.Fatal(err)
				}

				deltaRounds := 0
				for round := 1; round <= driftRounds; round++ {
					drift(truth, rng, 1e-3)
					epoch := uint32(round)
					dOpts := opts
					dOpts.Reference, dOpts.RefEpoch = shared, epoch
					stream, stats, err := core.Compress(truth, dOpts)
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if stream[4] != 3 {
						t.Fatalf("round %d: stream version %d, want 3", round, stream[4])
					}
					deltaRounds += stats.DeltaTensors
					recon, dstats, err := core.DecompressOpts(t.Context(), nil, stream,
						core.DecodeOptions{Reference: shared, RefEpoch: epoch})
					if err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
					if dstats.DeltaTensors != stats.DeltaTensors {
						t.Fatalf("round %d: decoder saw %d delta tensors, encoder emitted %d",
							round, dstats.DeltaTensors, stats.DeltaTensors)
					}

					// The drift contract: round K's reconstruction error vs
					// round K's data is one round's bound, not K rounds'.
					for i, e := range truth.Entries() {
						g := recon.Entries()[i]
						if e.Kind != tensor.KindWeight || e.Tensor.NumElems() <= core.DefaultThreshold {
							continue
						}
						ebAbs, err := ebcl.ResolveAbs(e.Tensor.Data, pp.p)
						if err != nil {
							t.Fatal(err)
						}
						limit := ebAbs * driftGrowthFactor
						if !tr.strictBound {
							limit = ebAbs * tr.looseFactor
						}
						for j := range e.Tensor.Data {
							d := math.Abs(float64(e.Tensor.Data[j]) - float64(g.Tensor.Data[j]))
							if d > limit*(1+1e-6)+1e-12 {
								t.Fatalf("round %d entry %q: error %g exceeds %g at %d — delta error accumulated",
									round, e.Name, d, limit, j)
							}
						}
					}
					shared = recon
				}
				// The rounds are tightly correlated (drift ≪ value range),
				// so for the strict codecs — whose output size tracks the
				// value range — the residual encoding must actually have
				// engaged, or the suite silently tests the absolute path.
				// zfp's size is rate-driven, so its residual sections may
				// legitimately never win; the per-tensor fallback covers it.
				if deltaRounds == 0 && tr.strictBound {
					t.Fatal("no tensor ever took the residual path across all rounds")
				}
			})
		}
	}
}

// TestDeltaEpochMismatch: a residual stream presented with the wrong epoch
// or no reference must fail with ErrReference — the renegotiation sentinel
// — and never decode against the wrong baseline.
func TestDeltaEpochMismatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	ref := driftDict(rng)
	data := ref.Clone()
	drift(data, rng, 1e-3)
	opts := core.Options{}
	opts.Reference, opts.RefEpoch = ref, 5
	stream, stats, err := core.Compress(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaTensors == 0 {
		t.Fatal("correlated dict produced no residual sections")
	}
	if _, _, err := core.DecompressOpts(t.Context(), nil, stream,
		core.DecodeOptions{Reference: ref, RefEpoch: 6}); !errors.Is(err, core.ErrReference) {
		t.Fatalf("epoch mismatch: %v, want ErrReference", err)
	}
	if _, _, err := core.DecompressOpts(t.Context(), nil, stream,
		core.DecodeOptions{}); !errors.Is(err, core.ErrReference) {
		t.Fatalf("missing reference: %v, want ErrReference", err)
	}
	// The matching epoch decodes fine.
	if _, _, err := core.DecompressOpts(t.Context(), nil, stream,
		core.DecodeOptions{Reference: ref, RefEpoch: 5}); err != nil {
		t.Fatal(err)
	}
}
