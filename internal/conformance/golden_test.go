package conformance

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/compressors"
	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// The golden-stream corpus locks the serialized formats across PRs: for
// each codec configuration, testdata holds the compressed FedSZ stream
// (.fsz), its wire framing (.wire), and the marshaled decoded state dict
// (.sd) as produced at check-in time. Decoders of any later revision must
// reproduce the .sd bytes exactly from both containers — decode stability
// is the contract; encoders may change (a stream re-encoded today need
// not match .fsz), but every stream ever written must keep decoding.
//
// Regenerate after an *intentional, version-bumped* format change with:
//
//	go test ./internal/conformance -run TestGoldenStreams -update

var update = flag.Bool("update", false, "rewrite the golden-stream corpus")

// goldenDict builds the deterministic state dict the corpus encodes:
// two lossy weight tensors plus bit-sensitive metadata.
func goldenDict(nonFinite bool) *tensor.StateDict {
	rng := rand.New(rand.NewPCG(2024, 1105))
	sd := tensor.NewStateDict()
	w1 := tensor.FromData(eblctest.WeightLike(rng, 4096), 64, 64)
	w2 := tensor.FromData(eblctest.WeightLike(rng, 2000), 2000)
	if nonFinite {
		w1.Data[17] = float32(math.NaN())
		w1.Data[1025] = float32(math.Inf(1))
		w2.Data[1999] = float32(math.Inf(-1))
	}
	sd.Add("conv1.weight", tensor.KindWeight, w1)
	sd.Add("fc.weight", tensor.KindWeight, w2)
	b := tensor.New(64)
	for i := range b.Data {
		b.Data[i] = float32(0.01 * rng.NormFloat64())
	}
	sd.Add("conv1.bias", tensor.KindBias, b)
	step := tensor.New(1)
	step.Data[0] = 42
	sd.Add("step", tensor.KindScalarMeta, step)
	return sd
}

// goldenDeltaEpoch tags the v3 delta corpus; decoders must present the
// same epoch to reconstruct it.
const goldenDeltaEpoch = 7

// goldenDeltaRef is the cross-round reference the v3 delta corpus encodes
// against: the golden dict itself plays round t, and the update (round t+1)
// is a small deterministic drift away — the temporally correlated regime
// the delta format exists for.
func goldenDeltaRef() *tensor.StateDict { return goldenDict(false) }

func goldenDeltaDict() *tensor.StateDict {
	sd := goldenDict(false)
	rng := rand.New(rand.NewPCG(2026, 808))
	for _, e := range sd.Entries() {
		for i := range e.Tensor.Data {
			e.Tensor.Data[i] += float32(0.002 * rng.NormFloat64())
		}
	}
	return sd
}

type goldenCase struct {
	name      string
	lossy     string
	params    ebcl.Params
	nonFinite bool
	// delta encodes the case against goldenDeltaRef at goldenDeltaEpoch —
	// the v3 cross-round residual format.
	delta bool
	// chunkElems sets the intra-tensor chunking target (the v4 format);
	// 0 leaves chunking at the default, which no golden-dict tensor
	// crosses.
	chunkElems int
	// version is the stream-format version byte the checked-in .fsz must
	// carry. frozen cases were written by an older encoder and are never
	// regenerated — -update must not replace a v1 artifact with whatever
	// the current encoder emits, or the backward-compatibility guarantee
	// silently stops being tested.
	version byte
	frozen  bool
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, lossy := range compressors.Names() {
		// Frozen v1 corpus: single-stream entropy stage, written before the
		// multi-stream format existed. Decode-only from here on.
		cases = append(cases, goldenCase{
			name:    fmt.Sprintf("rel1e-2_%s", lossy),
			lossy:   lossy,
			params:  ebcl.Rel(1e-2),
			version: 1,
			frozen:  true,
		})
		cases = append(cases, goldenCase{
			name:      fmt.Sprintf("abs1e-3_nonfinite_%s", lossy),
			lossy:     lossy,
			params:    ebcl.Abs(1e-3),
			nonFinite: true,
			version:   1,
			frozen:    true,
		})
		// v2 corpus: multi-stream entropy stage (the tensors here are large
		// enough that the encoder picks the 4-stream layout).
		cases = append(cases, goldenCase{
			name:    fmt.Sprintf("v2_rel1e-2_%s", lossy),
			lossy:   lossy,
			params:  ebcl.Rel(1e-2),
			version: 2,
		})
		cases = append(cases, goldenCase{
			name:      fmt.Sprintf("v2_abs1e-3_nonfinite_%s", lossy),
			lossy:     lossy,
			params:    ebcl.Abs(1e-3),
			nonFinite: true,
			version:   2,
		})
		// v3 corpus: cross-round delta format — residual sections against
		// the retained reference, per-tensor mode bytes, epoch-tagged
		// header.
		cases = append(cases, goldenCase{
			name:    fmt.Sprintf("v3_rel1e-2_delta_%s", lossy),
			lossy:   lossy,
			params:  ebcl.Rel(1e-2),
			version: 3,
			delta:   true,
		})
	}
	// v4 corpus: intra-tensor chunked blobs. A 512-element target splits
	// conv1.weight (4096 elems) into 8 chunks and fc.weight (2000 elems)
	// into 4, so both the multi-chunk jump-table layout and its delta
	// composition are locked. Two codecs suffice — the chunk framing is
	// codec-independent, and each sub-blob is an ordinary codec stream
	// already covered per-codec by the v2/v3 corpus.
	for _, lossy := range []string{"sz2", "sz3"} {
		cases = append(cases, goldenCase{
			name:       fmt.Sprintf("v4_rel1e-2_chunked_%s", lossy),
			lossy:      lossy,
			params:     ebcl.Rel(1e-2),
			version:    4,
			chunkElems: 512,
		})
		cases = append(cases, goldenCase{
			name:       fmt.Sprintf("v4_rel1e-2_delta_chunked_%s", lossy),
			lossy:      lossy,
			params:     ebcl.Rel(1e-2),
			version:    4,
			delta:      true,
			chunkElems: 512,
		})
	}
	return cases
}

func goldenPath(name, ext string) string {
	return filepath.Join("testdata", name+"."+ext)
}

// regenerate writes one case's three artifacts.
func regenerate(t *testing.T, gc goldenCase) {
	t.Helper()
	lossy, err := compressors.Get(gc.lossy)
	if err != nil {
		t.Fatal(err)
	}
	sd := goldenDict(gc.nonFinite)
	opts := core.Options{Lossy: lossy, LossyParams: gc.params, ChunkElems: gc.chunkElems}
	var dopts core.DecodeOptions
	if gc.delta {
		sd = goldenDeltaDict()
		opts.Reference, opts.RefEpoch = goldenDeltaRef(), goldenDeltaEpoch
		dopts = core.DecodeOptions{Reference: goldenDeltaRef(), RefEpoch: goldenDeltaEpoch}
	}
	stream, _, err := core.Compress(sd, opts)
	if err != nil {
		t.Fatal(err)
	}
	decoded, _, err := core.DecompressOpts(context.Background(), nil, stream, dopts)
	if err != nil {
		t.Fatal(err)
	}
	var framed bytes.Buffer
	if err := wire.NewWriter(&framed).WriteStream(stream); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct {
		ext  string
		data []byte
	}{
		{"fsz", stream},
		{"wire", framed.Bytes()},
		{"sd", decoded.Marshal()},
	} {
		if err := os.WriteFile(goldenPath(gc.name, f.ext), f.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGoldenStreams(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			if *update && !gc.frozen {
				regenerate(t, gc)
			}
			stream, err := os.ReadFile(goldenPath(gc.name, "fsz"))
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if len(stream) < 5 || stream[4] != gc.version {
				t.Fatalf("golden stream carries format version %d, want %d", stream[4], gc.version)
			}
			wantSD, err := os.ReadFile(goldenPath(gc.name, "sd"))
			if err != nil {
				t.Fatal(err)
			}
			framed, err := os.ReadFile(goldenPath(gc.name, "wire"))
			if err != nil {
				t.Fatal(err)
			}

			var dopts core.DecodeOptions
			if gc.delta {
				dopts = core.DecodeOptions{Reference: goldenDeltaRef(), RefEpoch: goldenDeltaEpoch}
				// Without the reference the residual sections must fail with
				// the renegotiation sentinel, never decode to wrong bytes.
				if _, _, err := core.Decompress(stream); !errors.Is(err, core.ErrReference) {
					t.Fatalf("delta stream without reference: %v, want ErrReference", err)
				}
			}

			// The checked-in stream must decode byte-for-byte.
			sd, _, err := core.DecompressOpts(context.Background(), nil, stream, dopts)
			if err != nil {
				t.Fatalf("golden stream no longer decodes: %v", err)
			}
			if !bytes.Equal(sd.Marshal(), wantSD) {
				t.Fatal("golden stream decodes to different bytes — the stream format drifted")
			}

			// The wire container must reassemble the identical payload and
			// decode identically through the streaming path.
			r := wire.NewReader(bytes.NewReader(framed))
			payload, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("golden wire stream no longer de-frames: %v", err)
			}
			if !bytes.Equal(payload, stream) {
				t.Fatal("wire payload differs from the golden stream — the wire format drifted")
			}
			wsd, _, err := core.DecompressFromOpts(context.Background(), nil, bytes.NewReader(payload), dopts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wsd.Marshal(), wantSD) {
				t.Fatal("streaming decode of golden wire stream differs")
			}
		})
	}
}

// TestChunkThresholdByteIdentity locks the v4 opt-out contract: enabling
// chunking with a threshold no tensor crosses must emit bytes identical
// to chunking disabled — the v2 layout absolute, the v3 layout with a
// reference. A deployment can therefore turn chunking on fleet-wide
// without bumping the stream version for small models.
func TestChunkThresholdByteIdentity(t *testing.T) {
	for _, name := range []string{"sz2", "sz3"} {
		lossy, err := compressors.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sd := goldenDict(false)
		off, _, err := core.Compress(sd, core.Options{Lossy: lossy, ChunkElems: -1})
		if err != nil {
			t.Fatal(err)
		}
		on, _, err := core.Compress(sd, core.Options{Lossy: lossy, ChunkElems: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(off, on) {
			t.Fatalf("%s: below-threshold chunked stream differs from v2 bytes", name)
		}
		dsd := goldenDeltaDict()
		dOff, _, err := core.Compress(dsd, core.Options{
			Lossy: lossy, ChunkElems: -1,
			Reference: goldenDeltaRef(), RefEpoch: goldenDeltaEpoch,
		})
		if err != nil {
			t.Fatal(err)
		}
		dOn, _, err := core.Compress(dsd, core.Options{
			Lossy: lossy, ChunkElems: 1 << 20,
			Reference: goldenDeltaRef(), RefEpoch: goldenDeltaEpoch,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dOff, dOn) {
			t.Fatalf("%s: below-threshold chunked delta stream differs from v3 bytes", name)
		}
	}
}
