package conformance

// Alias-safety and buffer-reuse suite for the zero-copy codec contract:
// every EBLC must append/reconstruct identical bytes whether dst is nil, a
// dirty recycled buffer, or carries a prefix; must fully overwrite the
// decode range so garbage in a recycled buffer cannot leak; and must not
// retain or alias the caller's input on either side. Run under -race in CI
// (the race short pass covers this package).

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/compressors"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/sched"
)

// reuseParams returns the error-control settings exercised per codec.
func reuseParams(name string) []ebcl.Params {
	if name == "zfp" {
		return []ebcl.Params{ebcl.Rel(1e-2), ebcl.Abs(1e-3), ebcl.Precision(14)}
	}
	return []ebcl.Params{ebcl.Rel(1e-2), ebcl.Abs(1e-3)}
}

// reuseInputs returns the data shapes exercised: weight-like bulk, block
// boundary edges, tiny arrays, constant, empty, and (under ABS) non-finite.
func reuseInputs(rng *rand.Rand, p ebcl.Params) map[string][]float32 {
	in := map[string][]float32{
		"weights":   eblctest.WeightLike(rng, 10000),
		"block127":  eblctest.WeightLike(rng, 127),
		"block129":  eblctest.WeightLike(rng, 129),
		"tiny":      eblctest.WeightLike(rng, 3),
		"single":    {0.25},
		"constant":  {1.5, 1.5, 1.5, 1.5, 1.5},
		"empty":     {},
		"smooth257": eblctest.SmoothLike(rng, 257),
	}
	if p.Mode == ebcl.ModeAbsolute {
		nf := eblctest.WeightLike(rng, 500)
		nf[7] = float32(math.NaN())
		nf[123] = float32(math.Inf(1))
		nf[499] = float32(math.Inf(-1))
		in["nonfinite"] = nf
	}
	return in
}

// dirtyBytes returns a pooled byte buffer of at least n capacity with its
// full capacity poisoned.
func dirtyBytes(n int) []byte {
	b := sched.GetBytes(n)
	b = b[:cap(b)]
	for i := range b {
		b[i] = 0xA5
	}
	return b[:0]
}

// dirtyFloats returns a pooled float buffer of at least n capacity
// poisoned with NaNs — the worst garbage a recycled reconstruction buffer
// could carry.
func dirtyFloats(n int) []float32 {
	f := sched.GetFloats(n)
	f = f[:cap(f)]
	for i := range f {
		f[i] = float32(math.NaN())
	}
	return f[:0]
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func testCodecReuse(t *testing.T, c ebcl.Compressor, p ebcl.Params, data []float32) {
	t.Helper()

	// Baseline via the one-shot path.
	ref, err := c.Compress(data, p)
	if err != nil {
		t.Fatalf("compress: %v", err)
	}

	// CompressAppend(nil) must reproduce Compress exactly.
	fromNil, err := c.CompressAppend(nil, data, p)
	if err != nil {
		t.Fatalf("CompressAppend(nil): %v", err)
	}
	if !bytes.Equal(fromNil, ref) {
		t.Fatalf("CompressAppend(nil) differs from Compress (%d vs %d bytes)", len(fromNil), len(ref))
	}

	// A dirty recycled dst must yield the same bytes.
	dirty := dirtyBytes(len(ref) + 32)
	fromDirty, err := c.CompressAppend(dirty, data, p)
	if err != nil {
		t.Fatalf("CompressAppend(dirty): %v", err)
	}
	if !bytes.Equal(fromDirty, ref) {
		t.Fatal("CompressAppend over a dirty recycled buffer produced different bytes")
	}
	sched.PutBytes(fromDirty)

	// Append semantics: an existing prefix survives, the stream follows it.
	prefix := []byte("prefix!")
	withPrefix, err := c.CompressAppend(append([]byte(nil), prefix...), data, p)
	if err != nil {
		t.Fatalf("CompressAppend(prefix): %v", err)
	}
	if !bytes.Equal(withPrefix[:len(prefix)], prefix) || !bytes.Equal(withPrefix[len(prefix):], ref) {
		t.Fatal("CompressAppend did not append after the existing prefix")
	}

	// The stream must not alias the input: mutating data afterwards must
	// not change the emitted bytes.
	streamCopy := append([]byte(nil), fromNil...)
	saved := append([]float32(nil), data...)
	for i := range data {
		data[i] = -999
	}
	if !bytes.Equal(fromNil, streamCopy) {
		t.Fatal("compressed stream aliases the input data")
	}
	copy(data, saved)

	// DecodedLen must match the decode without touching the payload.
	n, err := c.DecodedLen(ref)
	if err != nil {
		t.Fatalf("DecodedLen: %v", err)
	}
	refOut, err := c.Decompress(ref)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if n != len(refOut) {
		t.Fatalf("DecodedLen %d != decoded length %d", n, len(refOut))
	}

	// DecompressInto over a dirty NaN-poisoned recycled buffer must be
	// bit-identical to the fresh decode (i.e. every element overwritten).
	dirtyF := dirtyFloats(n + 8)
	intoDirty, err := c.DecompressInto(dirtyF, ref)
	if err != nil {
		t.Fatalf("DecompressInto(dirty): %v", err)
	}
	if !bitsEqual(intoDirty, refOut) {
		t.Fatal("DecompressInto over a dirty recycled buffer produced different values")
	}

	// Reusing the same buffer for a second decode must stay identical.
	again, err := c.DecompressInto(intoDirty[:0], ref)
	if err != nil {
		t.Fatalf("DecompressInto(reuse): %v", err)
	}
	if !bitsEqual(again, refOut) {
		t.Fatal("second DecompressInto into the same buffer diverged")
	}
	sched.PutFloats(again)

	// An undersized dst must force a correct reallocation.
	if n > 1 {
		small := make([]float32, 0, 1)
		grown, err := c.DecompressInto(small, ref)
		if err != nil {
			t.Fatalf("DecompressInto(undersized): %v", err)
		}
		if !bitsEqual(grown, refOut) {
			t.Fatal("DecompressInto with undersized dst diverged")
		}
	}

	// The decode must not retain the stream: mutating the stream after the
	// decode returned must not perturb the output.
	outCopy := append([]float32(nil), refOut...)
	for i := range ref {
		ref[i] ^= 0xFF
	}
	if !bitsEqual(refOut, outCopy) {
		t.Fatal("decoded output aliases the compressed stream")
	}
}

func TestZeroCopyReuseAndAliasSafety(t *testing.T) {
	for _, name := range compressors.Names() {
		t.Run(name, func(t *testing.T) {
			c, err := compressors.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range reuseParams(name) {
				rng := rand.New(rand.NewPCG(31, 7))
				for shape, data := range reuseInputs(rng, p) {
					t.Run(p.Mode.String()+"/"+shape, func(t *testing.T) {
						testCodecReuse(t, c, p, data)
					})
				}
			}
		})
	}
}

// legacyOneShot is a deliberately minimal pre-zero-copy codec: the adapter
// must give it the same reuse and alias-safety guarantees the native
// codecs provide.
type legacyOneShot struct{}

func (legacyOneShot) Name() string { return "legacy-oneshot" }

func (legacyOneShot) Compress(data []float32, p ebcl.Params) ([]byte, error) {
	out := make([]byte, 0, 4+4*len(data))
	out = append(out, byte(len(data)), byte(len(data)>>8), byte(len(data)>>16), byte(len(data)>>24))
	for _, f := range data {
		bits := math.Float32bits(f)
		out = append(out, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	}
	return out, nil
}

func (legacyOneShot) Decompress(stream []byte) ([]float32, error) {
	if len(stream) < 4 {
		return nil, ebcl.ErrCorrupt
	}
	n := int(stream[0]) | int(stream[1])<<8 | int(stream[2])<<16 | int(stream[3])<<24
	if len(stream) < 4+4*n {
		return nil, ebcl.ErrCorrupt
	}
	out := make([]float32, n)
	for i := range out {
		b := stream[4+4*i:]
		out[i] = math.Float32frombits(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	}
	return out, nil
}

func TestAdapterReuseAndAliasSafety(t *testing.T) {
	c := ebcl.Adapt(legacyOneShot{})
	if _, native := interface{}(legacyOneShot{}).(ebcl.Compressor); native {
		t.Fatal("test codec must not implement the full contract natively")
	}
	rng := rand.New(rand.NewPCG(5, 5))
	testCodecReuse(t, c, ebcl.Abs(1e-3), eblctest.WeightLike(rng, 300))

	// Adapt must pass native zero-copy codecs through untouched.
	native, err := compressors.Get("sz2")
	if err != nil {
		t.Fatal(err)
	}
	if ebcl.Adapt(native) != native {
		t.Fatal("Adapt re-wrapped a codec that already implements the contract")
	}
}
