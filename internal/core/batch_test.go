package core

import (
	"bytes"
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/sched"
	"repro/internal/tensor"
)

// wideDict builds a state dict with nTensors lossy-path weight tensors of
// elems elements each (plus metadata), so the per-tensor fan-out has real
// work on every index.
func wideDict(rng *rand.Rand, nTensors, elems int) *tensor.StateDict {
	sd := tensor.NewStateDict()
	for l := 0; l < nTensors; l++ {
		w := tensor.New(elems)
		for i := range w.Data {
			w.Data[i] = float32(0.03 * (rng.ExpFloat64() - rng.ExpFloat64()))
		}
		sd.Add(name("layer", l, "weight"), tensor.KindWeight, w)
		b := tensor.New(16)
		for i := range b.Data {
			b.Data[i] = float32(0.01 * rng.NormFloat64())
		}
		sd.Add(name("layer", l, "bias"), tensor.KindBias, b)
	}
	return sd
}

func name(prefix string, i int, suffix string) string {
	return prefix + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + "." + suffix
}

// TestParallelDecodeMatchesSerial: the shared-pool decode must be
// bit-identical to a serial decode of the same stream.
func TestParallelDecodeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	sd := wideDict(rng, 12, 4096)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := DecompressWith(context.Background(), sched.Serial(), stream)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := DecompressWith(context.Background(), sched.NewPool(8), stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Marshal(), parallel.Marshal()) {
		t.Fatal("parallel decode differs from serial decode")
	}
}

// TestCompressAllBitIdenticalToSequential: batch output i must equal a
// standalone Compress of input i, byte for byte.
func TestCompressAllBitIdenticalToSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	sds := make([]*tensor.StateDict, 8)
	for i := range sds {
		sds[i] = wideDict(rng, 4, 2048)
	}
	batch, stats, err := CompressAll(context.Background(), sds, Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(sds) || len(stats) != len(sds) {
		t.Fatalf("batch sizes %d/%d, want %d", len(batch), len(stats), len(sds))
	}
	for i, sd := range sds {
		single, sstats, err := Compress(sd, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batch[i], single) {
			t.Fatalf("client %d: batch stream differs from sequential", i)
		}
		if stats[i].CompressedBytes != sstats.CompressedBytes {
			t.Fatalf("client %d: stats mismatch", i)
		}
	}
}

// TestDecompressAllBitIdenticalToSequential runs the acceptance scenario:
// ≥32 synthetic client streams, batch decode bit-identical to per-call
// Decompress (run under -race in CI).
func TestDecompressAllBitIdenticalToSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	const nClients = 32
	sds := make([]*tensor.StateDict, nClients)
	for i := range sds {
		sds[i] = wideDict(rng, 3, 1536)
	}
	streams, _, err := CompressAll(context.Background(), sds, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch, bstats, err := DecompressAll(context.Background(), streams, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != nClients || len(bstats) != nClients {
		t.Fatalf("batch decoded %d, want %d", len(batch), nClients)
	}
	for i, s := range streams {
		single, _, err := Decompress(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batch[i].Marshal(), single.Marshal()) {
			t.Fatalf("client %d: batch decode differs from per-call decode", i)
		}
	}
}

// TestDecompressAllPropagatesCorruption: one bad stream fails the batch
// with a client-indexed ErrCorrupt, without panicking the pool workers.
func TestDecompressAllPropagatesCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	sds := make([]*tensor.StateDict, 4)
	for i := range sds {
		sds[i] = wideDict(rng, 2, 1500)
	}
	streams, _, err := CompressAll(context.Background(), sds, Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	streams[2] = streams[2][:len(streams[2])/2]
	if _, _, err := DecompressAll(context.Background(), streams, 2); err == nil {
		t.Fatal("truncated stream in batch decoded without error")
	}
}

// TestEmptyBatch: zero streams is a valid (empty) batch.
func TestEmptyBatch(t *testing.T) {
	streams, stats, err := CompressAll(context.Background(), nil, Options{}, 4)
	if err != nil || len(streams) != 0 || len(stats) != 0 {
		t.Fatalf("empty compress batch: %v", err)
	}
	sds, dstats, err := DecompressAll(context.Background(), nil, 4)
	if err != nil || len(sds) != 0 || len(dstats) != 0 {
		t.Fatalf("empty decompress batch: %v", err)
	}
}

func benchStream(b *testing.B, nTensors, elems int) []byte {
	b.Helper()
	rng := rand.New(rand.NewPCG(31, 32))
	sd := wideDict(rng, nTensors, elems)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		b.Fatal(err)
	}
	return stream
}

// BenchmarkDecompressSerial decodes a 12-tensor model on one goroutine —
// the seed path.
func BenchmarkDecompressSerial(b *testing.B) {
	stream := benchStream(b, 12, 32768)
	pool := sched.Serial()
	b.SetBytes(int64(12 * 32768 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecompressWith(context.Background(), pool, stream); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompressParallel decodes the same model on the shared pool;
// on a multicore machine this should beat BenchmarkDecompressSerial
// roughly linearly until the tensor count is exhausted.
func BenchmarkDecompressParallel(b *testing.B) {
	stream := benchStream(b, 12, 32768)
	pool := sched.NewPool(0)
	b.SetBytes(int64(12 * 32768 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecompressWith(context.Background(), pool, stream); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompressAll32 decodes a 32-client round under one budget —
// the aggregation-server hot path.
func BenchmarkDecompressAll32(b *testing.B) {
	rng := rand.New(rand.NewPCG(33, 34))
	const nClients = 32
	sds := make([]*tensor.StateDict, nClients)
	raw := 0
	for i := range sds {
		sds[i] = wideDict(rng, 4, 8192)
		raw += sds[i].SizeBytes()
	}
	streams, _, err := CompressAll(context.Background(), sds, Options{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(raw))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecompressAll(context.Background(), streams, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompressAll32 is the client-side mirror of the batch bench.
func BenchmarkCompressAll32(b *testing.B) {
	rng := rand.New(rand.NewPCG(35, 36))
	const nClients = 32
	sds := make([]*tensor.StateDict, nClients)
	raw := 0
	for i := range sds {
		sds[i] = wideDict(rng, 4, 8192)
		raw += sds[i].SizeBytes()
	}
	b.SetBytes(int64(raw))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CompressAll(context.Background(), sds, Options{}, 0); err != nil {
			b.Fatal(err)
		}
	}
}
