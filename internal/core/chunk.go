package core

// Intra-tensor chunking: the stream-format v4 layer that converts the
// per-tensor fan-out into wall-clock speedup on skewed state dicts. A real
// model usually has one dominant tensor (the final FC layer); per-tensor
// parallelism serializes on it and multicore hosts idle. v4 splits such a
// tensor into K block-aligned chunks, compresses each as a complete,
// independently decodable codec stream on the shared pool, and frames them
// behind a chunk jump table so decode fans out per chunk too.
//
// Chunked blob layout, inside a tensor section's ordinary length-prefixed
// blob area (all integers little-endian / uvarint as noted):
//
//	[0]      chunkMagic (0xFC)
//	uvarint  chunk count C (2..MaxChunks)
//	[4*C]    per-chunk byte sizes, uint32 LE (the jump table)
//	[...]    C concatenated sub-blobs, each a complete codec stream
//
// The marker byte cannot collide with a plain blob: every registry codec
// stream opens with a 4-byte little-endian magic whose first byte is
// 0x02 (sz2), 0x03 (sz3), 0x58 (szx), or 0x31 (zfp) — never 0xFC (the
// same argument the multi-stream Huffman marker makes one layer down).
// Chunk parsing is additionally gated on the stream version, so v1–v3
// decode semantics are untouched byte for byte.
//
// Chunk boundaries align to the ebcl.PredictorBlockElems grid (SZ2's
// per-block predictor-selection granularity), so splitting never changes
// any block's predictor inputs; encoder and decoder derive the identical
// split from (elems, C) alone. The split — like the decision to chunk at
// all — depends only on element counts and Options, never on pool
// parallelism, so the emitted bytes are reproducible across hosts.

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/ebcl"
	"repro/internal/sched"
)

const (
	// chunkMagic opens every chunked tensor blob. See the collision
	// argument in the package comment above.
	chunkMagic = 0xFC

	// MaxChunks bounds the chunk count a blob may declare. 16 covers any
	// near-term host (chunks beyond the core count only add framing), and
	// the decoder sizes its jump-table scratch from it.
	MaxChunks = 16

	// DefaultChunkElems is the chunking threshold and target chunk size:
	// tensors above it split into ceil(elems/DefaultChunkElems) chunks
	// (capped at MaxChunks). 512 Ki elements ≈ 2 MiB of float32 — big
	// enough that per-chunk Huffman tables and framing are noise, small
	// enough that a 4M-element FC layer spreads across 8 workers.
	DefaultChunkElems = 512 << 10
)

// chunkElemsOf resolves the Options field: 0 selects the default, negative
// disables chunking.
func chunkElemsOf(o Options) int {
	switch {
	case o.ChunkElems == 0:
		return DefaultChunkElems
	case o.ChunkElems < 0:
		return 0
	}
	return o.ChunkElems
}

// chunkCount returns the number of chunks a tensor of elems elements
// splits into under the given target (0 disables), clamped to MaxChunks
// and to the tensor's block count (a chunk must own at least one complete
// block, so tiny tensors never split). 1 means "do not chunk".
func chunkCount(elems, targetElems int) int {
	if targetElems <= 0 || elems <= targetElems {
		return 1
	}
	c := (elems + targetElems - 1) / targetElems
	if c > MaxChunks {
		c = MaxChunks
	}
	if blocks := (elems + ebcl.PredictorBlockElems - 1) / ebcl.PredictorBlockElems; c > blocks {
		c = blocks
	}
	return c
}

// chunkBounds returns the [lo, hi) element range of chunk i of chunks over
// an elems-element tensor. Boundaries fall on the PredictorBlockElems grid
// (the final chunk absorbs the partial trailing block); blocks distribute
// as evenly as possible, with the first blocks%chunks chunks carrying one
// extra block.
func chunkBounds(elems, chunks, i int) (lo, hi int) {
	blocks := (elems + ebcl.PredictorBlockElems - 1) / ebcl.PredictorBlockElems
	base, ext := blocks/chunks, blocks%chunks
	blockAt := func(k int) int {
		return (k*base + min(k, ext)) * ebcl.PredictorBlockElems
	}
	lo = blockAt(i)
	hi = blockAt(i + 1)
	if i == chunks-1 || hi > elems {
		hi = elems
	}
	return lo, hi
}

// isChunkedBlob reports whether blob uses the chunked layout. Callers gate
// this on the stream version: only v4 streams may carry chunked blobs.
func isChunkedBlob(blob []byte) bool {
	return len(blob) > 0 && blob[0] == chunkMagic
}

// chunkParams maps the caller's error-control setting onto individual
// chunks. A REL bound is interpreted against the *whole* tensor's value
// range (the documented SZ convention), so it must be resolved to an
// absolute bound before the tensor is split — otherwise each chunk would
// re-derive the bound from its own range and the error contract would
// silently change. ABS and PREC settings carry over unchanged. ok is false
// when the bound cannot be resolved (non-finite data under REL); the
// caller then falls back to the unchunked path, which preserves the
// existing behavior for such tensors exactly.
func chunkParams(data []float32, p ebcl.Params) (ebcl.Params, bool) {
	if p.Mode != ebcl.ModeRelative {
		return p, true
	}
	eb, err := ebcl.ResolveAbs(data, p)
	if err != nil || eb <= 0 {
		return p, false
	}
	return ebcl.Abs(eb), true
}

// appendChunkedBlob compresses data as a chunked blob appended to dst:
// marker, chunk count, jump table, then each chunk's complete codec
// stream. The chunks compress concurrently on pool (nil runs serially)
// into pooled staging buffers and are then concatenated — the memcpy is
// noise next to the compress itself. p must already be chunk-safe (see
// chunkParams). On error dst is unmodified, so the caller may retry a
// different encoding into the same buffer.
func appendChunkedBlob(pool *sched.Pool, lossy ebcl.Compressor, dst []byte, data []float32, p ebcl.Params, chunks int) ([]byte, error) {
	subs := make([][]byte, chunks)
	errs := make([]error, chunks)
	// Nested caller-runs fan-out: inside an encode worker this shares the
	// tensor-level budget (chunk-grained work items, no new machinery),
	// and the caller-runs discipline keeps the nesting deadlock-free.
	pool.ForEach(chunks, func(i int) {
		lo, hi := chunkBounds(len(data), chunks, i)
		buf := sched.GetBytes((hi-lo)/2 + 64)
		sub, err := lossy.CompressAppend(buf[:0], data[lo:hi], p)
		if err != nil {
			sched.PutBytes(buf)
			errs[i] = err
			return
		}
		subs[i] = sub
	})
	for i, err := range errs {
		if err != nil {
			for _, s := range subs {
				if s != nil {
					sched.PutBytes(s)
				}
			}
			return nil, fmt.Errorf("chunk %d/%d: %w", i, chunks, err)
		}
	}
	dst = append(dst, chunkMagic)
	dst = binary.AppendUvarint(dst, uint64(chunks))
	for _, s := range subs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	}
	for i, s := range subs {
		dst = append(dst, s...)
		sched.PutBytes(s)
		subs[i] = nil
	}
	return dst, nil
}

// compressChunkedSection builds the blob part of one chunked tensor
// section, appending to buf (which already holds the section metadata, a
// mode byte at modePos initialized to absolute, and the reserved length
// prefix at lenPos). When the stream carries a reference it composes with
// the delta machinery: if the residual looks viable, both the chunked
// residual and the chunked absolute encodings are produced and the smaller
// wins — the same per-tensor win policy (and exact DeltaBytesSaved
// accounting) as the unchunked tryDeltaSection. ok=false means the tensor
// cannot chunk after all (REL bound unresolvable on non-finite data); the
// caller then takes the plain unchunked path, which preserves the
// pre-chunking behavior for such tensors exactly.
func compressChunkedSection(pool *sched.Pool, o Options, name string, data []float32, buf []byte, modePos, lenPos, chunks int, deltaMode *bool, saved *int) (section []byte, ok bool, err error) {
	p, ok := chunkParams(data, o.LossyParams)
	if !ok {
		return nil, false, nil
	}

	// Residual candidacy mirrors tryDeltaSection: a same-named, same-sized
	// reference tensor, a resolvable bound, and a residual strictly tighter
	// than the data itself.
	var res []float32
	var rp ebcl.Params
	if o.Reference != nil {
		if rt := o.Reference.Get(name); rt != nil && rt.NumElems() == len(data) {
			if rpc, rok := residualParams(data, o.LossyParams); rok {
				r := sched.GetFloats(len(data))[:len(data)]
				rangeD, rangeR, cok := computeResidual(r, data, rt.Data)
				if cok && rangeR < rangeD {
					res, rp = r, rpc
				} else {
					sched.PutFloats(r)
				}
			}
		}
	}

	if res == nil {
		section, err = appendChunkedBlob(pool, o.Lossy, buf, data, p, chunks)
		return section, true, err
	}
	defer sched.PutFloats(res)

	section, rerr := appendChunkedBlob(pool, o.Lossy, buf, res, rp, chunks)
	if rerr != nil {
		// Residual-side codec error: take the absolute path, reproducing
		// whatever error the caller would have seen without a reference.
		section, err = appendChunkedBlob(pool, o.Lossy, buf, data, p, chunks)
		return section, true, err
	}
	deltaLen := len(section) - lenPos - ebcl.SectionLenBytes
	absScratch := sched.GetBytes(len(data)/2 + 64)
	absBlob, aerr := appendChunkedBlob(pool, o.Lossy, absScratch[:0], data, p, chunks)
	if aerr != nil {
		sched.PutBytes(absScratch)
		section[modePos] = sectionDelta
		*deltaMode = true
		return section, true, nil
	}
	if len(absBlob) < deltaLen {
		// Absolute wins: overwrite the residual blob in place (capacity is
		// guaranteed — the absolute blob is strictly smaller) and leave the
		// mode byte as initialized.
		section = append(section[:lenPos+ebcl.SectionLenBytes], absBlob...)
	} else {
		section[modePos] = sectionDelta
		*deltaMode = true
		*saved = len(absBlob) - deltaLen
	}
	sched.PutBytes(absBlob)
	return section, true, nil
}

// parseChunkedBlob validates a chunked blob's framing and returns the
// chunk count plus each chunk's sub-blob as views into blob. The jump
// table must account for the blob exactly — trailing slack would let
// corrupted sizes alias each other undetected (the same invariant the
// multi-stream Huffman jump table enforces).
func parseChunkedBlob(blob []byte, elems int) (subs [][]byte, err error) {
	pos := 1 // past chunkMagic
	c64, k := binary.Uvarint(blob[pos:])
	if k <= 0 {
		return nil, fmt.Errorf("%w: chunk count", ErrCorrupt)
	}
	pos += k
	chunks := int(c64)
	if chunks < 2 || chunks > MaxChunks {
		return nil, fmt.Errorf("%w: chunk count %d outside [2,%d]", ErrCorrupt, chunks, MaxChunks)
	}
	blocks := (elems + ebcl.PredictorBlockElems - 1) / ebcl.PredictorBlockElems
	if chunks > blocks {
		return nil, fmt.Errorf("%w: %d chunks for %d-element tensor", ErrCorrupt, chunks, elems)
	}
	if pos+4*chunks > len(blob) {
		return nil, fmt.Errorf("%w: chunk jump table truncated", ErrCorrupt)
	}
	subs = make([][]byte, chunks)
	off := pos + 4*chunks
	for i := 0; i < chunks; i++ {
		sz := int(binary.LittleEndian.Uint32(blob[pos+4*i:]))
		if sz > len(blob)-off {
			return nil, fmt.Errorf("%w: chunk %d size %d overruns blob", ErrCorrupt, i, sz)
		}
		subs[i] = blob[off : off+sz]
		off += sz
	}
	if off != len(blob) {
		return nil, fmt.Errorf("%w: chunk jump table leaves %d trailing bytes", ErrCorrupt, len(blob)-off)
	}
	return subs, nil
}

// decodeBlobInto reconstructs a tensor blob — plain or chunked — into
// dst's storage (capacity ≥ elems), returning the elems-length result.
// A non-nil ref is the residual baseline: it is folded back in, in place,
// per chunk (one pass while the chunk is still cache-warm). chunkedOK
// gates the chunked layout on the stream version: in v1–v3 streams a 0xFC
// first byte is codec data and fails the codec's own magic check, exactly
// as before chunking existed. Chunks decode concurrently on pool (nil
// runs serially), each into its own disjoint sub-range of dst, so no
// synchronization beyond the ForEach barrier is needed. Decode + fold time
// accumulates into work (per chunk, so the fan-out is accounted as summed
// work, not wall clock); nil skips the accounting.
func decodeBlobInto(pool *sched.Pool, lossy ebcl.Compressor, dst []float32, blob []byte, elems int, chunkedOK bool, ref []float32, work *atomic.Int64) ([]float32, error) {
	addWork := func(t0 time.Time) {
		if work != nil {
			work.Add(int64(time.Since(t0)))
		}
	}
	if !chunkedOK || !isChunkedBlob(blob) {
		t0 := time.Now()
		data, err := lossy.DecompressInto(dst, blob)
		if err != nil {
			addWork(t0)
			return nil, err
		}
		if len(data) != elems {
			addWork(t0)
			return nil, fmt.Errorf("decoded %d elements, want %d", len(data), elems)
		}
		for i, r := range ref {
			data[i] += r
		}
		addWork(t0)
		return data, nil
	}
	subs, err := parseChunkedBlob(blob, elems)
	if err != nil {
		return nil, err
	}
	full := dst[:elems]
	errs := make([]error, len(subs))
	pool.ForEach(len(subs), func(i int) {
		t0 := time.Now()
		defer addWork(t0)
		lo, hi := chunkBounds(elems, len(subs), i)
		// A zero-length sub-slice anchored at lo with capacity hi-lo: the
		// codec's DecompressInto reuses this storage when the declared
		// length fits, landing the chunk exactly in place.
		part, derr := lossy.DecompressInto(full[lo:lo:hi], subs[i])
		if derr != nil {
			errs[i] = fmt.Errorf("chunk %d/%d: %w", i, len(subs), derr)
			return
		}
		if len(part) != hi-lo {
			errs[i] = fmt.Errorf("chunk %d/%d: decoded %d elements, want %d", i, len(subs), len(part), hi-lo)
			return
		}
		if len(part) > 0 && &part[0] != &full[lo] {
			// The codec allocated (a corrupt sub-blob declared more
			// elements than the sub-range holds, then decoded to the right
			// count after all): land the chunk where it belongs.
			copy(full[lo:hi], part)
		}
		if ref != nil {
			for j, r := range ref[lo:hi] {
				full[lo+j] += r
			}
		}
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return full, nil
}
