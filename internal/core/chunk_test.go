package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/compressors"
	"repro/internal/ebcl"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// skewedDict models the shape that motivates chunking: one dominant tensor
// (the usual final FC layer) plus a tail of small ones, so per-tensor
// parallelism alone serializes on the big blob.
func skewedDict(rng *rand.Rand, bigElems int) *tensor.StateDict {
	sd := tensor.NewStateDict()
	big := tensor.New(bigElems)
	for i := range big.Data {
		big.Data[i] = float32(0.05 * (rng.ExpFloat64() - rng.ExpFloat64()))
	}
	sd.Add("fc.weight", tensor.KindWeight, big)
	mid := tensor.New(40, 40)
	for i := range mid.Data {
		mid.Data[i] = float32(0.02 * rng.NormFloat64())
	}
	sd.Add("conv.weight", tensor.KindWeight, mid)
	bias := tensor.New(32)
	for i := range bias.Data {
		bias.Data[i] = float32(rng.NormFloat64())
	}
	sd.Add("fc.bias", tensor.KindBias, bias)
	return sd
}

func TestChunkCountAndBounds(t *testing.T) {
	const blk = ebcl.PredictorBlockElems
	cases := []struct {
		elems, target, want int
	}{
		{1000, 0, 1},            // target 0: caller resolved "disabled"
		{1000, 2048, 1},         // below target
		{4096, 2048, 2},         // exact split
		{4097, 2048, 3},         // ceil
		{100 * blk, 1, 16},      // clamped to MaxChunks
		{3 * blk, 1, 3},         // clamped to block count
		{blk + 1, 1, 2},         // two blocks, second partial
		{1 << 22, 512 << 10, 8}, // the 4M-element FC layer
	}
	for _, c := range cases {
		if got := chunkCount(c.elems, c.target); got != c.want {
			t.Errorf("chunkCount(%d, %d) = %d, want %d", c.elems, c.target, got, c.want)
		}
	}

	// Bounds must partition [0, elems) exactly, with every boundary except
	// the last on the block grid.
	for _, elems := range []int{2 * blk, 3*blk + 17, 16 * blk, 100*blk + 1, 1 << 20} {
		for chunks := 2; chunks <= MaxChunks; chunks++ {
			if chunks > (elems+blk-1)/blk {
				continue
			}
			prev := 0
			for i := 0; i < chunks; i++ {
				lo, hi := chunkBounds(elems, chunks, i)
				if lo != prev {
					t.Fatalf("elems=%d chunks=%d: chunk %d starts at %d, want %d", elems, chunks, i, lo, prev)
				}
				if hi <= lo {
					t.Fatalf("elems=%d chunks=%d: chunk %d empty [%d,%d)", elems, chunks, i, lo, hi)
				}
				if i < chunks-1 && hi%blk != 0 {
					t.Fatalf("elems=%d chunks=%d: interior boundary %d off the block grid", elems, chunks, hi)
				}
				prev = hi
			}
			if prev != elems {
				t.Fatalf("elems=%d chunks=%d: chunks cover %d elements", elems, chunks, prev)
			}
		}
	}
}

func TestChunkedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 20))
	sd := skewedDict(rng, 18432)
	for _, name := range []string{"sz2", "sz3"} {
		for _, par := range []int{1, 4} {
			opts := Options{ChunkElems: 2048}
			lossy, err := compressors.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			opts.Lossy = lossy
			pool := sched.NewPool(par)
			stream, stats, err := CompressWith(context.Background(), pool, sd, opts)
			if err != nil {
				t.Fatalf("%s/p%d: %v", name, par, err)
			}
			if stream[4] != streamVersionV4 {
				t.Fatalf("%s/p%d: version %d, want %d", name, par, stream[4], streamVersionV4)
			}
			// 18432 elems / 2048 target = 9 chunks for fc.weight; conv.weight
			// (1600 elems) stays unchunked.
			if stats.ChunkedTensors != 1 {
				t.Fatalf("%s/p%d: ChunkedTensors = %d, want 1", name, par, stats.ChunkedTensors)
			}
			got, dstats, err := DecompressWith(context.Background(), pool, stream)
			if err != nil {
				t.Fatalf("%s/p%d decode: %v", name, par, err)
			}
			if dstats.ChunkedTensors != 1 {
				t.Fatalf("%s/p%d: decode ChunkedTensors = %d, want 1", name, par, dstats.ChunkedTensors)
			}
			for _, tn := range []string{"fc.weight", "conv.weight"} {
				a, b := sd.Get(tn), got.Get(tn)
				ebAbs := 1e-2 * ebcl.ValueRange(a.Data)
				if e := ebcl.MaxAbsError(a.Data, b.Data); e > ebAbs*(1+1e-6) {
					t.Fatalf("%s/p%d: %s error %g exceeds bound %g", name, par, tn, e, ebAbs)
				}
			}
		}
	}
}

// TestChunkedEncodeDeterminism pins the v4 byte-reproducibility contract:
// the emitted stream must not depend on pool parallelism.
func TestChunkedEncodeDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 21))
	sd := skewedDict(rng, 18432)
	opts := Options{ChunkElems: 2048}
	serial, _, err := CompressWith(context.Background(), nil, sd, opts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := CompressWith(context.Background(), sched.NewPool(8), sd, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatal("chunked stream bytes differ between serial and parallel encode")
	}
}

// TestChunkedSingleChunkByteIdentity: when no tensor crosses the chunk
// threshold the encoder must fall back to the v2 (or v3, with a
// reference) layout byte for byte — enabling chunking is free for small
// models, and old decoders keep working.
func TestChunkedSingleChunkByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 22))
	sd := skewedDict(rng, 18432)

	base, _, err := Compress(sd, Options{ChunkElems: -1})
	if err != nil {
		t.Fatal(err)
	}
	aboveThreshold, _, err := Compress(sd, Options{ChunkElems: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, aboveThreshold) {
		t.Fatal("stream with chunking enabled but below threshold differs from chunking-disabled stream")
	}
	if base[4] != streamVersion {
		t.Fatalf("unchunked stream version %d, want %d", base[4], streamVersion)
	}

	// Same identity under a delta reference (v3).
	ref := driftClone(rng, sd)
	dBase, _, err := Compress(sd, Options{ChunkElems: -1, Reference: ref, RefEpoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	dAbove, _, err := Compress(sd, Options{ChunkElems: 1 << 20, Reference: ref, RefEpoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dBase, dAbove) {
		t.Fatal("delta stream with chunking below threshold differs from chunking-disabled delta stream")
	}
	if dBase[4] != streamVersionV3 {
		t.Fatalf("unchunked delta stream version %d, want %d", dBase[4], streamVersionV3)
	}
}

// driftClone returns a slightly-perturbed deep copy of sd — a plausible
// previous-round reference.
func driftClone(rng *rand.Rand, sd *tensor.StateDict) *tensor.StateDict {
	ref := tensor.NewStateDict()
	for _, e := range sd.Entries() {
		c := tensor.New(e.Tensor.Shape...)
		for i, v := range e.Tensor.Data {
			c.Data[i] = v + float32(0.001*rng.NormFloat64())
		}
		ref.Add(e.Name, e.Kind, c)
	}
	return ref
}

func TestChunkedDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 23))
	ref := skewedDict(rng, 18432)
	sd := driftClone(rng, ref)
	opts := Options{ChunkElems: 2048, Reference: ref, RefEpoch: 7}
	pool := sched.NewPool(4)
	stream, stats, err := CompressWith(context.Background(), pool, sd, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stream[4] != streamVersionV4 {
		t.Fatalf("version %d, want %d", stream[4], streamVersionV4)
	}
	if stats.DeltaTensors == 0 {
		t.Fatal("drifted dict produced no residual sections")
	}
	if stats.ChunkedTensors != 1 {
		t.Fatalf("ChunkedTensors = %d, want 1", stats.ChunkedTensors)
	}

	got, dstats, err := DecompressOpts(context.Background(), pool, stream, DecodeOptions{Reference: ref, RefEpoch: 7})
	if err != nil {
		t.Fatal(err)
	}
	if dstats.DeltaTensors != stats.DeltaTensors {
		t.Fatalf("decode DeltaTensors %d != encode %d", dstats.DeltaTensors, stats.DeltaTensors)
	}
	for _, tn := range []string{"fc.weight", "conv.weight"} {
		a, b := sd.Get(tn), got.Get(tn)
		ebAbs := 1e-2 * ebcl.ValueRange(a.Data)
		if e := ebcl.MaxAbsError(a.Data, b.Data); e > ebAbs*(1+1e-6) {
			t.Fatalf("%s error %g exceeds bound %g", tn, e, ebAbs)
		}
	}

	// Wrong epoch must fail with ErrReference (renegotiation signal), not
	// ErrCorrupt.
	if _, _, err := DecompressOpts(context.Background(), pool, stream, DecodeOptions{Reference: ref, RefEpoch: 8}); !errors.Is(err, ErrReference) {
		t.Fatalf("epoch mismatch: got %v, want ErrReference", err)
	}
	// Chunked delta must beat absolute on a drifted dict.
	abs, _, err := Compress(sd, Options{ChunkElems: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) >= len(abs) {
		t.Errorf("chunked delta stream (%d B) not smaller than chunked absolute (%d B)", len(stream), len(abs))
	}
}

// TestChunkedSectionRouting drives the parse layer the sharded aggregation
// tier uses: a chunked stream's sections must parse and shard-decode to
// exactly the bytes the full-stream decoder produces.
func TestChunkedSectionRouting(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 24))
	sd := skewedDict(rng, 18432)
	stream, _, err := Compress(sd, Options{ChunkElems: 2048})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}

	secs, err := Sections(stream)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := ParseHeader(secs.Header)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != streamVersionV4 || !hdr.Chunked() {
		t.Fatalf("parsed version %d (chunked=%v), want v4", hdr.Version, hdr.Chunked())
	}
	dec, err := NewSectionDecoder(hdr)
	if err != nil {
		t.Fatal(err)
	}
	for _, sec := range secs.Tensors {
		pt, err := ParseTensorSection(hdr, sec)
		if err != nil {
			t.Fatal(err)
		}
		data, err := dec.DecodeTensor(pt, nil)
		if err != nil {
			t.Fatal(err)
		}
		ref := want.Get(pt.Name)
		for i := range data {
			if math.Float32bits(data[i]) != math.Float32bits(ref.Data[i]) {
				t.Fatalf("%s: shard decode diverges from stream decode at %d", pt.Name, i)
			}
		}
		sched.PutFloats(data)
	}
}

// TestChunkedConcurrentDecode decodes one chunked stream from many
// goroutines at once — the aggregation-server ingest shape — under the
// race detector.
func TestChunkedConcurrentDecode(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 25))
	sd := skewedDict(rng, 18432)
	stream, _, err := Compress(sd, Options{ChunkElems: 2048})
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(4)
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := DecompressWith(context.Background(), pool, stream)
			if err != nil {
				errs[c] = err
				return
			}
			a := sd.Get("fc.weight")
			b := got.Get("fc.weight")
			ebAbs := 1e-2 * ebcl.ValueRange(a.Data)
			if e := ebcl.MaxAbsError(a.Data, b.Data); e > ebAbs*(1+1e-6) {
				errs[c] = errors.New("bound exceeded under concurrent decode")
			}
			Release(got)
		}()
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
}

// TestChunkedNonFiniteFallsBack: a REL bound cannot be resolved over
// non-finite data, so such a tensor must fall back to the unchunked path
// with behavior identical to chunking disabled.
func TestChunkedNonFiniteFallsBack(t *testing.T) {
	rng := rand.New(rand.NewPCG(16, 26))
	sd := skewedDict(rng, 18432)
	sd.Get("fc.weight").Data[100] = float32(math.NaN())

	chunkedStream, chunkedErr := func() ([]byte, error) {
		s, _, err := Compress(sd, Options{ChunkElems: 2048})
		return s, err
	}()
	plainStream, plainErr := func() ([]byte, error) {
		s, _, err := Compress(sd, Options{ChunkElems: -1})
		return s, err
	}()
	if (chunkedErr == nil) != (plainErr == nil) {
		t.Fatalf("chunked err=%v, plain err=%v: behavior diverged", chunkedErr, plainErr)
	}
	if chunkedErr != nil {
		return
	}
	got, _, err := Decompress(chunkedStream)
	if err != nil {
		t.Fatal(err)
	}
	if v := got.Get("fc.weight").Data[100]; !math.IsNaN(float64(v)) {
		t.Fatalf("NaN not preserved, got %g", v)
	}
	want, _, err := Decompress(plainStream)
	if err != nil {
		t.Fatal(err)
	}
	a, b := want.Get("fc.weight"), got.Get("fc.weight")
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			t.Fatalf("fallback reconstruction diverges from plain path at %d", i)
		}
	}
	// An ABS bound needs no range resolution, so the tensor chunks even
	// with non-finite values, which escape losslessly per chunk.
	absStream, _, err := Compress(sd, Options{ChunkElems: 2048, LossyParams: ebcl.Abs(1e-3)})
	if err != nil {
		t.Fatal(err)
	}
	if absStream[4] != streamVersionV4 {
		t.Fatalf("ABS non-finite stream version %d, want v4", absStream[4])
	}
	gotAbs, _, err := Decompress(absStream)
	if err != nil {
		t.Fatal(err)
	}
	if v := gotAbs.Get("fc.weight").Data[100]; !math.IsNaN(float64(v)) {
		t.Fatalf("NaN not preserved through chunked ABS path, got %g", v)
	}
}
