// Package core implements the FedSZ compression scheme itself — the paper's
// primary contribution (Algorithm 1 and Figure 1):
//
//  1. Partition a model state dict into lossy-compressible dense weight
//     tensors (kind == weight AND element count above a threshold) and the
//     remaining metadata/non-weight tensors.
//  2. Lossy-compress each weight tensor (flattened to 1-D) with an
//     error-bounded lossy compressor; serialize and lossless-compress the
//     remainder as one blob.
//  3. Emit a single self-describing bitstream for transmission.
//
// Decompression reverses the pipeline and restores a state dict with the
// original entry order, shapes, and kinds.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/ebcl"
	"repro/internal/lossless"
	"repro/internal/sched"
	"repro/internal/sz2"
	"repro/internal/tensor"
)

const (
	streamMagic = 0x46535A31 // "FSZ1"

	// streamVersionV1 streams carry single-stream Huffman entropy payloads
	// and compact section length prefixes. The decoder accepts them forever;
	// the encoder no longer produces them.
	streamVersionV1 = 1
	// streamVersion (v2) marks streams whose quantization-code blobs may use
	// the multi-stream Huffman layout and whose tensor sections carry
	// fixed-width (padded-uvarint) length prefixes. This is what the encoder
	// emits for absolute (reference-free) streams.
	streamVersion = 2
	// streamVersionV3 marks cross-round delta streams: the header carries the
	// reference epoch and every tensor section carries a mode byte selecting
	// absolute or residual encoding. The encoder emits v3 only when
	// Options.Reference is set, so absolute streams stay bit-identical to v2.
	streamVersionV3 = 3
	// streamVersionV4 marks streams where at least one tensor blob uses the
	// chunked layout: the tensor splits into block-aligned chunks, each an
	// independently decodable codec stream, behind a chunk jump table (see
	// chunk.go). The header always carries the reference epoch (0 when no
	// reference was used) and every tensor section carries a mode byte, so
	// v4 composes with the v3 delta machinery — a chunked residual is just a
	// chunked blob under mode byte 1. The encoder emits v4 only when a
	// tensor actually chunks (a decision derived from element counts and
	// Options alone, never from the pool size), so streams whose tensors
	// all stay below the chunk threshold remain bit-identical to v2/v3.
	streamVersionV4 = 4

	pathLossless = 0
	pathLossy    = 1

	// Tensor-section mode bytes (v3/v4 streams only).
	sectionAbsolute = 0
	sectionDelta    = 1
)

// supportedStreamVersion reports whether the decoder understands version v.
// v1 and v2 remain fully decodable: the entropy layer self-describes its
// blob format and section length prefixes use uvarint semantics either way,
// so one decode path serves all versions — v3 adds the reference epoch and
// per-section mode byte, v4 additionally allows chunked tensor blobs.
func supportedStreamVersion(v byte) bool {
	return v == streamVersionV1 || v == streamVersion || v == streamVersionV3 ||
		v == streamVersionV4
}

// ErrCorrupt is returned for malformed FedSZ bitstreams.
var ErrCorrupt = errors.New("core: corrupt FedSZ stream")

// ErrReference marks a delta (v3) stream the decoder cannot reconstruct
// here: it holds no reference state dict, holds one for a different epoch,
// or the reference lacks a tensor the stream encodes as a residual. The
// stream itself is well-formed — deliberately distinct from ErrCorrupt so a
// transport can respond by renegotiating an absolute upload instead of
// treating the peer as broken.
var ErrReference = errors.New("core: delta reference unavailable or mismatched")

// DefaultThreshold is Algorithm 1's size gate: weight tensors with at least
// this many elements take the lossy path.
const DefaultThreshold = 1024

// Options configures the pipeline. The zero value selects the paper's
// recommended configuration: SZ2 at relative error bound 1e-2 with blosc-lz
// for the lossless partition.
type Options struct {
	// Lossy is the EBLC for weight tensors; nil selects SZ2.
	Lossy ebcl.Compressor
	// LossyParams is the error-control setting; zero selects REL 1e-2.
	LossyParams ebcl.Params
	// Lossless compresses the metadata partition; nil selects blosc-lz.
	Lossless lossless.Codec
	// Threshold gates the lossy path by element count; 0 selects
	// DefaultThreshold. Negative disables the gate (threshold 0).
	Threshold int
	// DisablePartitioning routes *every* tensor through the lossy path —
	// the ablation the paper warns causes "extreme degradation" (§V-C).
	DisablePartitioning bool
	// Reference, when non-nil, switches the encoder to the v3 cross-round
	// delta format: each lossy tensor with a same-named, same-sized entry in
	// the reference is compressed as the residual update − reference when
	// that wins (per-section fallback to absolute otherwise), and the stream
	// header records RefEpoch so the decoder can verify it reconstructs
	// against the same baseline. A REL bound is resolved against the
	// original tensor's value range before the residual is encoded, so the
	// documented error contract holds on the original data.
	Reference *tensor.StateDict
	// RefEpoch tags the v3 stream with the reference's epoch (ignored when
	// Reference is nil). Decoders refuse residual sections whose epoch does
	// not match their own reference (ErrReference).
	RefEpoch uint32
	// ChunkElems sets the intra-tensor chunking target: a lossy tensor with
	// more than this many elements splits into up to MaxChunks block-aligned
	// chunks that compress (and decode) concurrently, switching the stream
	// to the v4 format. 0 selects DefaultChunkElems; negative disables
	// chunking entirely (every stream keeps the v2/v3 layout). The chunk
	// count is derived from element counts alone, so the emitted bytes are
	// independent of the pool's parallelism.
	ChunkElems int
}

func (o Options) withDefaults() Options {
	if o.Lossy == nil {
		o.Lossy = sz2.NewCompressor()
	}
	if o.LossyParams == (ebcl.Params{}) {
		o.LossyParams = ebcl.Rel(1e-2)
	}
	if o.Lossless == nil {
		o.Lossless = lossless.NewBloscLZ()
	}
	switch {
	case o.Threshold == 0:
		o.Threshold = DefaultThreshold
	case o.Threshold < 0:
		o.Threshold = 0
	}
	return o
}

// Stats reports what one Compress call did.
type Stats struct {
	RawBytes        int // full serialized state dict size (4 B / element)
	CompressedBytes int // emitted stream size

	LossyTensors    int
	LossyRaw        int
	LossyCompressed int

	LosslessTensors    int
	LosslessRaw        int
	LosslessCompressed int

	// DeltaTensors counts lossy tensors whose emitted section is a
	// cross-round residual (always 0 outside v3 delta streams); the
	// remaining LossyTensors − DeltaTensors sections fell back to absolute
	// encoding.
	DeltaTensors int
	// DeltaBytesSaved totals the bytes the chosen residual sections saved
	// over their absolute candidates — the per-call slice of the
	// fedsz_delta_bytes_saved telemetry counter.
	DeltaBytesSaved int

	// ChunkedTensors counts lossy tensors emitted as chunked (v4) blobs;
	// 0 means the stream kept the v2/v3 layout.
	ChunkedTensors int

	// CompressTime is the wall clock of the whole encode, including time
	// spent blocked writing when streaming through CompressTo.
	CompressTime time.Duration
	// WriteWait is the time the encoder spent blocked emitting sections —
	// effectively zero for in-memory streams, the network-bound component
	// when compressing straight into a socket.
	WriteWait time.Duration
	// EncodeWork is the summed per-blob compress time across all tensors
	// and the lossless partition (it exceeds wall clock when the encode
	// fans out).
	EncodeWork time.Duration

	// BytesRecycled is the total buffer capacity (codec scratch, blobs,
	// payload staging) this encode returned to the sched pools instead of
	// dropping to the garbage collector — the observable for the zero-copy
	// codec contract. The counter is process-wide, so concurrent calls
	// attribute shared traffic approximately.
	BytesRecycled uint64
}

// EncodeOverlapRatio reports the fraction of encode work hidden behind the
// rest of the call — output writes and other blobs' encodes: 0 means the
// stream compressed strictly before sending (wall = work + wait), 1 means
// compression was fully overlapped with the upload (wall ≈ wait, the
// network-bound ideal of a streaming client). The mirror of
// DecompressStats.OverlapRatio.
func (s *Stats) EncodeOverlapRatio() float64 {
	if s.EncodeWork <= 0 {
		return 0
	}
	hidden := s.WriteWait + s.EncodeWork - s.CompressTime
	switch {
	case hidden <= 0:
		return 0
	case hidden >= s.EncodeWork:
		return 1
	}
	return float64(hidden) / float64(s.EncodeWork)
}

// Ratio returns the end-to-end compression ratio.
func (s *Stats) Ratio() float64 {
	if s.CompressedBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.CompressedBytes)
}

// LossyRatio returns the ratio achieved on the weight partition alone.
func (s *Stats) LossyRatio() float64 {
	if s.LossyCompressed == 0 {
		return 0
	}
	return float64(s.LossyRaw) / float64(s.LossyCompressed)
}

// takesLossyPath applies Algorithm 1 line 4.
func takesLossyPath(e tensor.Entry, o Options) bool {
	if o.DisablePartitioning {
		return true
	}
	return e.Kind == tensor.KindWeight && e.Tensor.NumElems() > o.Threshold
}

// Compress runs the FedSZ pipeline over a state dict on the process-wide
// shared worker pool.
func Compress(sd *tensor.StateDict, opts Options) ([]byte, *Stats, error) {
	return CompressWith(context.Background(), sched.Default(), sd, opts)
}

// CompressWith runs the FedSZ pipeline drawing per-tensor parallelism from
// the given pool (nil runs serially). Batch callers pass one pool so the
// whole batch shares a single parallelism budget. It is a thin wrapper
// over the incremental CompressSections encoder, appending each emitted
// section to one buffer — there is exactly one encoder, so the in-memory
// and streaming (CompressTo) outputs are byte-identical by construction.
func CompressWith(ctx context.Context, pool *sched.Pool, sd *tensor.StateDict, opts Options) ([]byte, *Stats, error) {
	out := make([]byte, 0, sd.SizeBytes()/4+256)
	stats, err := CompressSections(ctx, pool, sd, opts, func(_ SectionKind, payload []byte) error {
		out = append(out, payload...)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}

// DecompressStats reports what one Decompress call did.
type DecompressStats struct {
	// DecompressTime is the wall clock of the whole decode, including time
	// spent waiting for input when reading from a stream.
	DecompressTime time.Duration
	// ReadWait is the time the decoder spent blocked reading its input —
	// effectively zero for in-memory streams, the network-bound component
	// for socket ingest.
	ReadWait time.Duration
	// DecodeWork is the summed per-blob decode time across all tensors and
	// the lossless partition (it exceeds wall clock when decode fans out).
	DecodeWork time.Duration
	// PoolHits and PoolMisses are the sched byte-pool hit/miss deltas
	// observed over this decode — the size-classed pool's effectiveness
	// under this call's buffer traffic. The counters are process-wide, so
	// concurrent decodes attribute shared traffic approximately.
	PoolHits   uint64
	PoolMisses uint64
	// FloatPoolHits and FloatPoolMisses are the same deltas for the float32
	// pool the reconstructed tensors decode into — the decode-output side
	// of the zero-copy contract.
	FloatPoolHits   uint64
	FloatPoolMisses uint64
	// BytesRecycled is the total buffer capacity this decode returned to
	// the sched pools (blob scratch, entropy-stage tables, lossless-stage
	// payloads) instead of dropping to the garbage collector.
	BytesRecycled uint64
	// DeltaTensors counts tensor sections reconstructed as residual + the
	// supplied reference (always 0 for v1/v2 streams).
	DeltaTensors int
	// ChunkedTensors counts tensor sections whose blobs used the chunked
	// (v4) layout and therefore decoded chunk-parallel (always 0 for
	// v1–v3 streams).
	ChunkedTensors int
}

// DecodeOptions configures reference-aware (v3 delta) decoding. The zero
// value decodes absolute streams exactly as before; a v3 stream whose
// residual sections cannot be reconstructed with the supplied reference
// fails with ErrReference.
type DecodeOptions struct {
	// Reference is the baseline state dict residual sections add back onto;
	// nil refuses every residual section.
	Reference *tensor.StateDict
	// RefEpoch is the epoch Reference corresponds to; residual sections in
	// streams tagged with a different epoch are refused (the sender encoded
	// against a baseline this decoder does not hold).
	RefEpoch uint32
}

// OverlapRatio reports the fraction of decode work hidden behind the rest
// of the call — input waits and other blobs' decodes: 0 means the decode
// ran strictly after receiving (wall = wait + work), 1 means it was fully
// overlapped (wall ≈ wait, the network-bound ideal of a streaming server).
func (s *DecompressStats) OverlapRatio() float64 {
	if s.DecodeWork <= 0 {
		return 0
	}
	hidden := s.ReadWait + s.DecodeWork - s.DecompressTime
	switch {
	case hidden <= 0:
		return 0
	case hidden >= s.DecodeWork:
		return 1
	}
	return float64(hidden) / float64(s.DecodeWork)
}

// Decompress reverses Compress on the process-wide shared worker pool. The
// stream is self-describing: the lossy compressor and lossless codec are
// selected by the names it carries.
func Decompress(stream []byte) (*tensor.StateDict, *DecompressStats, error) {
	return DecompressWith(context.Background(), sched.Default(), stream)
}

// DecompressWith reverses Compress, decoding the per-tensor lossy blobs
// concurrently on the given pool (nil runs serially) — the mirror of the
// compress-side fan-out. It shares one decoder with the streaming
// DecompressFrom; the in-memory source serves zero-copy section views, so
// the batch server's hot path pays no receive buffering. Cancelling ctx
// stops the decode at the next section boundary and returns ctx.Err().
func DecompressWith(ctx context.Context, pool *sched.Pool, stream []byte) (*tensor.StateDict, *DecompressStats, error) {
	return decompressSource(ctx, pool, &byteSource{data: stream}, DecodeOptions{})
}

// DecompressOpts is DecompressWith with reference-aware decoding: v3 delta
// streams reconstruct residual sections against o.Reference (see
// DecodeOptions). v1/v2 streams ignore o entirely.
func DecompressOpts(ctx context.Context, pool *sched.Pool, stream []byte, o DecodeOptions) (*tensor.StateDict, *DecompressStats, error) {
	return decompressSource(ctx, pool, &byteSource{data: stream}, o)
}

// CompressAll runs the FedSZ pipeline over many client state dicts with
// one parallelism budget shared across the whole batch (zero or negative
// selects GOMAXPROCS). Unlike calling Compress in N goroutines — which
// would oversubscribe the machine N × GOMAXPROCS — the batch and the
// per-tensor fan-out inside each call draw from the same pool. Output i
// corresponds to input i and is bit-identical to Compress(sds[i], opts).
// Cancelling ctx stops the batch after the in-flight clients finish.
func CompressAll(ctx context.Context, sds []*tensor.StateDict, opts Options, parallelism int) ([][]byte, []*Stats, error) {
	return CompressAllWith(ctx, sched.NewPool(parallelism), sds, opts)
}

// CompressAllWith is CompressAll drawing from an existing pool — the
// session-codec path, where the batch shares the codec's own budget.
func CompressAllWith(ctx context.Context, pool *sched.Pool, sds []*tensor.StateDict, opts Options) ([][]byte, []*Stats, error) {
	streams := make([][]byte, len(sds))
	stats := make([]*Stats, len(sds))
	errs := make([]error, len(sds))
	if err := pool.ForEachCtx(ctx, len(sds), func(i int) {
		streams[i], stats[i], errs[i] = CompressWith(ctx, pool, sds[i], opts)
	}); err != nil {
		return nil, nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("core: batch compress client %d: %w", i, err)
		}
	}
	return streams, stats, nil
}

// DecompressAll reverses CompressAll: the aggregation-server hot path of
// the paper's Eqn-1 scenario, where one process ingests N concurrent
// client streams per round. All streams and all tensors within them decode
// under one shared parallelism budget (zero or negative selects
// GOMAXPROCS). Output i is bit-identical to Decompress(streams[i]).
// Cancelling ctx stops the batch after the in-flight clients finish.
func DecompressAll(ctx context.Context, streams [][]byte, parallelism int) ([]*tensor.StateDict, []*DecompressStats, error) {
	return DecompressAllWith(ctx, sched.NewPool(parallelism), streams)
}

// DecompressAllWith is DecompressAll drawing from an existing pool — the
// session-codec path, where the batch shares the codec's own budget.
func DecompressAllWith(ctx context.Context, pool *sched.Pool, streams [][]byte) ([]*tensor.StateDict, []*DecompressStats, error) {
	return DecompressAllOpts(ctx, pool, streams, DecodeOptions{})
}

// DecompressAllOpts is DecompressAllWith with reference-aware decoding: the
// aggregation-server round where every client encoded against the same
// broadcast reference, so one DecodeOptions serves the whole batch. v1/v2
// streams in the batch ignore o entirely.
func DecompressAllOpts(ctx context.Context, pool *sched.Pool, streams [][]byte, o DecodeOptions) ([]*tensor.StateDict, []*DecompressStats, error) {
	sds := make([]*tensor.StateDict, len(streams))
	stats := make([]*DecompressStats, len(streams))
	errs := make([]error, len(streams))
	if err := pool.ForEachCtx(ctx, len(streams), func(i int) {
		sds[i], stats[i], errs[i] = DecompressOpts(ctx, pool, streams[i], o)
	}); err != nil {
		return nil, nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("core: batch decompress client %d: %w", i, err)
		}
	}
	return sds, stats, nil
}

// Release returns sd's tensor buffers to the shared float pool and must
// only be called when nothing references the state dict anymore — the
// fold-and-discard discipline of an aggregation server: Decompress lands
// reconstructed tensors in pool-backed buffers, RunRound folds them into
// the accumulator, and Release recycles the storage for the next client's
// decode. Releasing a dict the caller still reads (or one whose tensors
// are shared with live state) corrupts data; when in doubt, let the
// garbage collector have it instead.
func Release(sd *tensor.StateDict) {
	if sd == nil {
		return
	}
	for _, e := range sd.Entries() {
		sched.PutFloats(e.Tensor.Data)
	}
}

func appendString(dst []byte, s string) []byte {
	if len(s) > 255 {
		panic(fmt.Sprintf("core: string too long (%d)", len(s)))
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

func readString(src []byte, pos int) (string, int, error) {
	if pos >= len(src) {
		return "", 0, ErrCorrupt
	}
	l := int(src[pos])
	pos++
	if pos+l > len(src) {
		return "", 0, ErrCorrupt
	}
	return string(src[pos : pos+l]), pos + l, nil
}
