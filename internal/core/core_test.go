package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ebcl"
	"repro/internal/lossless"
	"repro/internal/nn/models"
	"repro/internal/szx"
	"repro/internal/tensor"
)

// modelDict builds a small but structurally realistic state dict: big
// weights, small weights (below threshold), biases, running stats, scalars.
func modelDict(rng *rand.Rand) *tensor.StateDict {
	sd := tensor.NewStateDict()
	big := tensor.New(64, 32, 3, 3) // 18432 elems: lossy path
	for i := range big.Data {
		big.Data[i] = float32(0.03 * (rng.ExpFloat64() - rng.ExpFloat64()))
	}
	sd.Add("conv1.weight", tensor.KindWeight, big)
	small := tensor.New(10, 8) // 80 elems: below threshold, lossless path
	for i := range small.Data {
		small.Data[i] = float32(rng.NormFloat64())
	}
	sd.Add("head.weight", tensor.KindWeight, small)
	bias := tensor.New(64)
	for i := range bias.Data {
		bias.Data[i] = float32(0.01 * rng.NormFloat64())
	}
	sd.Add("conv1.bias", tensor.KindBias, bias)
	mean := tensor.New(64)
	variance := tensor.New(64)
	for i := range mean.Data {
		mean.Data[i] = float32(rng.NormFloat64())
		variance.Data[i] = float32(1 + 0.1*rng.NormFloat64())
	}
	sd.Add("bn1.running_mean", tensor.KindRunningStat, mean)
	sd.Add("bn1.running_var", tensor.KindRunningStat, variance)
	count := tensor.New(1)
	count.Data[0] = 7
	sd.Add("bn1.num_batches_tracked", tensor.KindScalarMeta, count)
	return sd
}

func TestRoundTripDefaults(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	sd := modelDict(rng)
	stream, stats, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ratio() < 2 {
		t.Errorf("ratio %.2f, want > 2 on weight-heavy dict", stats.Ratio())
	}
	if stats.LossyTensors != 1 || stats.LosslessTensors != 5 {
		t.Fatalf("partition counts lossy=%d lossless=%d", stats.LossyTensors, stats.LosslessTensors)
	}
	got, dstats, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if dstats.DecompressTime <= 0 {
		t.Error("decompress time not measured")
	}
	// Structure and order preserved.
	if got.Len() != sd.Len() {
		t.Fatalf("entries %d != %d", got.Len(), sd.Len())
	}
	for i, e := range sd.Entries() {
		g := got.Entries()[i]
		if g.Name != e.Name || g.Kind != e.Kind {
			t.Fatalf("entry %d: %s/%v != %s/%v", i, g.Name, g.Kind, e.Name, e.Kind)
		}
		if len(g.Tensor.Shape) != len(e.Tensor.Shape) {
			t.Fatalf("entry %d rank changed", i)
		}
	}
	// Lossless partition must be bit-exact.
	for _, name := range []string{"head.weight", "conv1.bias", "bn1.running_mean", "bn1.running_var", "bn1.num_batches_tracked"} {
		a, b := sd.Get(name), got.Get(name)
		for i := range a.Data {
			if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
				t.Fatalf("%s not bit-exact at %d", name, i)
			}
		}
	}
	// Lossy partition must respect the relative bound.
	a, b := sd.Get("conv1.weight"), got.Get("conv1.weight")
	ebAbs := 1e-2 * ebcl.ValueRange(a.Data)
	if got := ebcl.MaxAbsError(a.Data, b.Data); got > ebAbs*(1+1e-6) {
		t.Fatalf("weight error %g exceeds %g", got, ebAbs)
	}
}

func TestThresholdGate(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	sd := modelDict(rng)
	// A huge threshold forces everything through the lossless path.
	stream, stats, err := Compress(sd, Options{Threshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LossyTensors != 0 {
		t.Fatalf("lossy tensors %d with huge threshold", stats.LossyTensors)
	}
	got, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	d, err := got.MaxAbsDiff(sd)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("all-lossless round trip not exact: %g", d)
	}
	// Negative threshold lets even tiny weights take the lossy path.
	_, stats2, err := Compress(sd, Options{Threshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.LossyTensors != 2 {
		t.Fatalf("lossy tensors %d with disabled gate, want 2", stats2.LossyTensors)
	}
}

func TestDisablePartitioningAblation(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	sd := modelDict(rng)
	stream, stats, err := Compress(sd, Options{DisablePartitioning: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LosslessTensors != 0 {
		t.Fatalf("lossless tensors %d with partitioning disabled", stats.LosslessTensors)
	}
	got, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	// Running stats are now lossy: error is generally nonzero. The point of
	// the ablation is that metadata degrades; verify it did get perturbed
	// while remaining decodable.
	if got.Len() != sd.Len() {
		t.Fatal("structure lost")
	}
}

func TestAlternativeCompressors(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{
		Lossy:       szx.NewCompressor(),
		LossyParams: ebcl.Rel(1e-3),
		Lossless:    lossless.NewGzip(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sd.Get("conv1.weight"), got.Get("conv1.weight")
	ebAbs := 1e-3 * ebcl.ValueRange(a.Data)
	if gotErr := ebcl.MaxAbsError(a.Data, b.Data); gotErr > ebAbs*(1+1e-6) {
		t.Fatalf("szx error %g exceeds %g", gotErr, ebAbs)
	}
}

func TestProfileModelRatiosMatchPaperShape(t *testing.T) {
	// On a (scaled) AlexNet profile at REL 1e-2 the paper reports ~11-13x;
	// accept a generous band around that.
	rng := rand.New(rand.NewPCG(9, 10))
	sd, err := models.BuildProfile("alexnet", rng, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.Ratio()
	if r < 5 || r > 40 {
		t.Errorf("alexnet profile ratio %.2f outside plausible band [5,40]", r)
	}
	t.Logf("alexnet profile ratio @1e-2: %.2f", r)
}

func TestCorruptStreams(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"short":     stream[:3],
		"badmagic":  append([]byte{9, 9, 9, 9}, stream[4:]...),
		"truncated": stream[:len(stream)/2],
	}
	for name, c := range cases {
		if _, _, err := Decompress(c); err == nil {
			t.Errorf("%s stream decoded without error", name)
		}
	}
	// Bad version byte.
	bad := append([]byte(nil), stream...)
	bad[4] = 99
	if _, _, err := Decompress(bad); err == nil {
		t.Error("bad version decoded without error")
	}
}

func TestEmptyStateDict(t *testing.T) {
	sd := tensor.NewStateDict()
	stream, stats, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RawBytes != 0 {
		t.Fatal("empty dict should have zero raw bytes")
	}
	got, _, err := Decompress(stream)
	if err != nil || got.Len() != 0 {
		t.Fatalf("len=%d err=%v", got.Len(), err)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	sd := modelDict(rng)
	_, stats, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LossyRaw+stats.LosslessRaw != stats.RawBytes {
		t.Errorf("partition bytes %d+%d != raw %d", stats.LossyRaw, stats.LosslessRaw, stats.RawBytes)
	}
	if stats.CompressTime <= 0 {
		t.Error("compress time not measured")
	}
	if stats.LossyRatio() <= 1 {
		t.Errorf("lossy ratio %.2f should exceed 1", stats.LossyRatio())
	}
}
