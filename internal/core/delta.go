package core

// Cross-round delta encoding support: residual formation and the per-tensor
// win heuristic behind the v3 stream format, plus the delta telemetry
// counters. The policy lives here; the mechanics (mode byte, section
// rewrite) live in the encode worker.

import (
	"math"
	"sync"

	"repro/internal/ebcl"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// tryDeltaSection attempts the residual encoding of one lossy tensor into
// buf (which already holds the section prefix: metadata, an absolute mode
// byte at modePos, and the reserved length prefix at lenPos). It returns
// the complete unpatched section on success — with *deltaMode and *saved
// set when the residual won — and nil when the tensor must take the plain
// absolute path instead: no matching reference tensor, a PREC bound, a
// non-finite or non-shrinking residual, or a residual-side codec error (the
// absolute encode then reproduces whatever error the caller would have seen
// without a reference).
//
// When the residual looks viable both encodings are produced and the
// smaller section is kept — the per-tensor fallback that guarantees a delta
// stream is never larger than its absolute counterpart, and the comparison
// that makes DeltaBytesSaved exact. The ~2× encode cost on delta-eligible
// tensors is the trade documented in the README; the paper's Eqn-1 cost is
// dominated by the upload on constrained links.
func tryDeltaSection(o Options, name string, data []float32, buf []byte, modePos, lenPos int, deltaMode *bool, saved *int) []byte {
	rt := o.Reference.Get(name)
	if rt == nil || rt.NumElems() != len(data) {
		return nil
	}
	rp, ok := residualParams(data, o.LossyParams)
	if !ok {
		return nil
	}
	res := sched.GetFloats(len(data))[:len(data)]
	defer sched.PutFloats(res)
	rangeD, rangeR, ok := computeResidual(res, data, rt.Data)
	if !ok || rangeR >= rangeD {
		// The residual is no tighter than the data (cold reference, diverged
		// client): skip straight to absolute without paying a second encode.
		return nil
	}
	section, err := o.Lossy.CompressAppend(buf, res, rp)
	if err != nil {
		return nil
	}
	deltaLen := len(section) - lenPos - ebcl.SectionLenBytes
	absScratch := sched.GetBytes(len(data)/2 + 64)
	absBlob, aerr := o.Lossy.CompressAppend(absScratch[:0], data, o.LossyParams)
	if aerr != nil {
		sched.PutBytes(absScratch)
		*deltaMode = true
		return section
	}
	if len(absBlob) < deltaLen {
		// Absolute wins: overwrite the residual blob in place (capacity is
		// guaranteed — the absolute blob is strictly smaller) and leave the
		// mode byte as it was initialized.
		section = append(section[:lenPos+ebcl.SectionLenBytes], absBlob...)
	} else {
		section[modePos] = sectionDelta
		*deltaMode = true
		*saved = len(absBlob) - deltaLen
	}
	sched.PutBytes(absBlob)
	return section
}

// computeResidual fills res[i] = data[i] − ref[i] and reports the value
// ranges of data and of the residual. ok is false when any element of data,
// ref, or the residual is non-finite: float32 overflow (or Inf − Inf) would
// make ref + residual' diverge from data by more than any bound, so such
// tensors must take the absolute path, which preserves non-finite values
// losslessly exactly as before.
func computeResidual(res, data, ref []float32) (rangeData, rangeRes float64, ok bool) {
	if len(data) == 0 {
		return 0, 0, false
	}
	minD, maxD := data[0], data[0]
	r0 := data[0] - ref[0]
	minR, maxR := r0, r0
	for i, d := range data {
		r := d - ref[i]
		res[i] = r
		minD, maxD = min(minD, d), max(maxD, d)
		minR, maxR = min(minR, r), max(maxR, r)
	}
	rangeData = float64(maxD) - float64(minD)
	rangeRes = float64(maxR) - float64(minR)
	// A non-finite anywhere in data or res poisons one of the ranges (ref
	// alone cannot: finite data with non-finite ref makes res non-finite).
	if math.IsNaN(rangeData) || math.IsInf(rangeData, 0) ||
		math.IsNaN(rangeRes) || math.IsInf(rangeRes, 0) {
		return rangeData, rangeRes, false
	}
	return rangeData, rangeRes, true
}

// residualParams maps the caller's error-control setting onto the residual.
// A REL bound is resolved to an absolute bound against the *original*
// tensor's value range first (reconstruction is ref + residual' with the
// reference exact at both ends, so |recon − data| = |residual' − residual|
// ≤ that absolute bound — the documented contract on the original data). An
// ABS bound carries over unchanged. PREC has no bound to map, so fixed-
// precision tensors never take the delta path.
func residualParams(data []float32, p ebcl.Params) (ebcl.Params, bool) {
	switch p.Mode {
	case ebcl.ModeAbsolute:
		return p, true
	case ebcl.ModeRelative:
		eb, err := ebcl.ResolveAbs(data, p)
		if err != nil || eb <= 0 {
			return p, false
		}
		return ebcl.Abs(eb), true
	default:
		return p, false
	}
}

type deltaCounters struct {
	bytesSaved  *telemetry.Counter
	deltaSec    *telemetry.Counter
	absoluteSec *telemetry.Counter
}

var deltaMetrics = sync.OnceValue(func() *deltaCounters {
	r := telemetry.Default()
	return &deltaCounters{
		bytesSaved: r.Counter("fedsz_delta_bytes_saved",
			"Bytes saved by residual tensor sections over their absolute candidates."),
		deltaSec: r.Counter("fedsz_delta_sections",
			"Tensor sections in delta-capable (v3) streams, by chosen encoding mode.",
			telemetry.L("mode", "delta")),
		absoluteSec: r.Counter("fedsz_delta_sections",
			"Tensor sections in delta-capable (v3) streams, by chosen encoding mode.",
			telemetry.L("mode", "absolute")),
	}
})
