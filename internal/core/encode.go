package core

// Incremental encode: the section-emitting counterpart of stream.go's
// section-consuming decode.
//
// A FedSZ stream is sequential — header, per-tensor sections, one
// lossless-partition section — so it can be *produced* incrementally too:
// the encoder emits the header immediately, then each tensor section as
// its blob finishes compressing, while later tensors are still compressing
// on the shared worker pool. On a socket that means the upload of tensor i
// overlaps the compression of tensor i+1 — the client-side mirror of
// DecompressFrom's decode-while-receiving, and the missing half of the
// paper's Equation-1 accounting (the client pays tC *plus* the upload of
// S'; overlapping them shrinks the left-hand side).
//
// CompressSections is the one encoder behind every compress entry point:
// Compress appends the emitted sections to one in-memory buffer (the two
// paths are bit-identical by construction), CompressTo writes them to an
// io.Writer, and wire.Writer.WriteSection maps them 1:1 onto transport
// frames so a sender never materializes the whole stream.

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/ebcl"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// SectionKind identifies one unit of the incremental encoder's output. The
// concatenation of all emitted payloads, in emission order, is exactly the
// serialized FedSZ stream.
type SectionKind uint8

const (
	// SectionHeader is the stream preamble: magic, version, compressor
	// names, entry count, and path flags. Emitted first, exactly once.
	SectionHeader SectionKind = iota + 1
	// SectionTensor is one lossy tensor: name, kind, shape, and the
	// length-prefixed compressed blob. Emitted in state-dict order.
	SectionTensor
	// SectionLossless is the length-prefixed lossless-partition section.
	// Emitted last, exactly once.
	SectionLossless
)

// CompressSections runs the FedSZ pipeline over sd, emitting the stream
// incrementally: emit is called once with the header, once per lossy
// tensor in stream order as each blob finishes compressing, and once with
// the lossless section. Tensor blobs compress concurrently on pool (nil
// runs serially) while earlier sections are being emitted, with at most
// pool.Parallelism()+1 finished sections buffered ahead of the emit cursor
// — peak memory is O(parallelism × tensor), never O(stream).
//
// emit owns payload only for the duration of the call (the buffer is
// reused); an emit error aborts the encode and is returned verbatim.
// Cancelling ctx stops the encode at the next section boundary and makes
// in-flight workers exit before starting their blob; the context's error
// is returned.
func CompressSections(ctx context.Context, pool *sched.Pool, sd *tensor.StateDict, opts Options, emit func(SectionKind, []byte) error) (*Stats, error) {
	o := opts.withDefaults()
	start := time.Now()
	recycled0 := sched.RecycledBytes()
	stats := &Stats{RawBytes: sd.SizeBytes()}
	// A reference switches the stream to the v3 cross-round delta format;
	// without one the emitted bytes are exactly the v2 stream of before.
	deltaStream := o.Reference != nil

	entries := sd.Entries()
	flags := make([]byte, len(entries))
	rest := tensor.NewStateDict()
	type lossyMeta struct {
		name   string
		kind   tensor.Kind
		shape  []int
		data   []float32
		chunks int
	}
	var lossyMetas []lossyMeta
	// Any tensor big enough to chunk switches the whole stream to v4. The
	// decision is derived from element counts and Options alone — never
	// from pool parallelism — so the emitted bytes are reproducible; when
	// nothing chunks the stream stays bit-identical to v2/v3.
	chunkTarget := chunkElemsOf(o)
	chunkedStream := false
	for i, e := range entries {
		if takesLossyPath(e, o) {
			flags[i] = pathLossy
			chunks := chunkCount(e.Tensor.NumElems(), chunkTarget)
			if chunks > 1 {
				chunkedStream = true
			}
			lossyMetas = append(lossyMetas, lossyMeta{e.Name, e.Kind, e.Tensor.Shape, e.Tensor.Data, chunks})
			stats.LossyTensors++
			stats.LossyRaw += e.Tensor.SizeBytes()
		} else {
			flags[i] = pathLossless
			rest.Add(e.Name, e.Kind, e.Tensor)
			stats.LosslessTensors++
			stats.LosslessRaw += e.Tensor.SizeBytes()
		}
	}
	// v4 sections always carry a mode byte, and the v4 header always
	// carries the reference epoch (0 without a reference) — the v3 layout
	// with chunked blobs allowed.
	modeBytes := deltaStream || chunkedStream

	emitSection := func(kind SectionKind, payload []byte) error {
		t0 := time.Now()
		err := emit(kind, payload)
		stats.WriteWait += time.Since(t0)
		if err != nil {
			// A cancelled context usually kills the writer too (deadline
			// cut, closed socket); report the cancellation, not the wreck
			// it caused downstream.
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return err
		}
		stats.CompressedBytes += len(payload)
		return nil
	}

	scratch := sched.GetBytes(256)
	defer func() { sched.PutBytes(scratch) }()

	// Header first: a receiver can begin parsing before any blob exists.
	scratch = binary.LittleEndian.AppendUint32(scratch[:0], streamMagic)
	switch {
	case chunkedStream:
		scratch = append(scratch, streamVersionV4)
	case deltaStream:
		scratch = append(scratch, streamVersionV3)
	default:
		scratch = append(scratch, streamVersion)
	}
	scratch = appendString(scratch, o.Lossy.Name())
	scratch = appendString(scratch, o.Lossless.Name())
	if modeBytes {
		// RefEpoch is documented as ignored without a reference, so a v4
		// absolute stream pins the field to 0 rather than leaking it.
		epoch := uint32(0)
		if deltaStream {
			epoch = o.RefEpoch
		}
		scratch = binary.LittleEndian.AppendUint32(scratch, epoch)
	}
	scratch = binary.LittleEndian.AppendUint32(scratch, uint32(len(entries)))
	scratch = append(scratch, flags...)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := emitSection(SectionHeader, scratch); err != nil {
		return nil, err
	}

	// Fan the blob work out on the pool. done[i] closes when blob i is
	// ready; the emit loop below waits for blobs in stream order while
	// later ones are still compressing. The lossless partition is
	// independent of every tensor, so it compresses concurrently from the
	// start and is emitted last.
	n := len(lossyMetas)
	blobs := make([][]byte, n)
	blobLens := make([]int, n)
	deltaMode := make([]bool, n)
	chunked := make([]bool, n)
	savedBytes := make([]int, n)
	errs := make([]error, n)
	done := make([]chan struct{}, n)
	var encodeWork atomic.Int64
	g := pool.Group()
	submit := func(i int) {
		ch := make(chan struct{})
		done[i] = ch
		g.Go(func() {
			defer close(ch)
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			t0 := time.Now()
			// The worker builds the complete tensor section: metadata, a
			// reserved fixed-width length prefix, then the codec's output
			// appended directly behind it. Backfilling the prefix afterwards
			// means the compressed blob is emitted exactly where
			// CompressAppend wrote it — no blob→scratch memmove per section.
			// The pooled buffer is sized for a ~4x ratio; the emit loop
			// recycles it once the section is written.
			m := lossyMetas[i]
			buf := sched.GetBytes(len(m.data) + 64)
			buf = appendString(buf[:0], m.name)
			buf = append(buf, byte(m.kind), byte(len(m.shape)))
			for _, d := range m.shape {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
			}
			modePos := -1
			if modeBytes {
				// v3/v4 sections carry a mode byte ahead of the length
				// prefix; it starts absolute and is flipped only when the
				// residual encoding wins below.
				modePos = len(buf)
				buf = append(buf, sectionAbsolute)
			}
			lenPos := len(buf)
			buf = ebcl.ReserveSectionLen(buf)

			var section []byte
			var err error
			if m.chunks > 1 {
				// Chunked (v4) blob: the chunk jobs fan out on the same
				// pool, sharing the tensor-level budget. A REL bound on
				// non-finite data cannot chunk (ok=false) and falls through
				// to the plain path below, exactly as before chunking.
				var ok bool
				section, ok, err = compressChunkedSection(pool, o, m.name, m.data,
					buf, modePos, lenPos, m.chunks, &deltaMode[i], &savedBytes[i])
				if ok && err == nil {
					chunked[i] = true
				}
			}
			if section == nil && err == nil && deltaStream {
				section = tryDeltaSection(o, m.name, m.data, buf, modePos, lenPos,
					&deltaMode[i], &savedBytes[i])
			}
			if section == nil && err == nil {
				section, err = o.Lossy.CompressAppend(buf, m.data, o.LossyParams)
			}
			if err != nil {
				sched.PutBytes(buf)
				errs[i] = err
			} else {
				blobLens[i] = len(section) - lenPos - ebcl.SectionLenBytes
				ebcl.PatchSectionLen(section, lenPos, uint64(blobLens[i]))
				blobs[i] = section
			}
			encodeWork.Add(int64(time.Since(t0)))
		})
	}
	var restBlob []byte
	var restErr error
	restDone := make(chan struct{})
	g.Go(func() {
		defer close(restDone)
		if err := ctx.Err(); err != nil {
			restErr = err
			return
		}
		t0 := time.Now()
		restRaw := rest.MarshalAppend(sched.GetBytes(rest.MarshalSize()))
		restBlob, restErr = o.Lossless.Compress(restRaw)
		sched.PutBytes(restRaw)
		encodeWork.Add(int64(time.Since(t0)))
	})

	// abort drains in-flight work and recycles any blobs the emit loop has
	// not consumed, so a cancelled or failed encode leaks neither pool
	// slots nor buffers.
	abort := func() {
		g.Wait()
		for i := range blobs {
			if blobs[i] != nil {
				sched.PutBytes(blobs[i])
				blobs[i] = nil
			}
		}
		if restBlob != nil {
			sched.PutBytes(restBlob)
		}
	}
	finish := func() (*Stats, error) {
		stats.EncodeWork = time.Duration(encodeWork.Load())
		stats.CompressTime = time.Since(start)
		stats.BytesRecycled = sched.RecycledBytes() - recycled0
		stageFor(o.Lossy.Name()).encode.Observe(stats.CompressTime.Seconds())
		return stats, nil
	}

	// Keep a bounded window of blob tasks in flight ahead of the emit
	// cursor: enough to saturate the pool, small enough that a slow writer
	// cannot force the whole compressed stream to buffer in memory.
	window := pool.Parallelism() + 1
	submitted := 0
	for submitted < n && submitted < window {
		submit(submitted)
		submitted++
	}
	for i := 0; i < n; i++ {
		select {
		case <-done[i]:
		case <-ctx.Done():
			abort()
			return nil, ctx.Err()
		}
		if err := errs[i]; err != nil {
			abort()
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("core: lossy compress %q: %w", lossyMetas[i].name, err)
		}
		stats.LossyCompressed += blobLens[i]
		if chunked[i] {
			stats.ChunkedTensors++
		}
		if deltaStream {
			dm := deltaMetrics()
			if deltaMode[i] {
				stats.DeltaTensors++
				stats.DeltaBytesSaved += savedBytes[i]
				dm.deltaSec.Inc()
				dm.bytesSaved.Add(uint64(savedBytes[i]))
			} else {
				dm.absoluteSec.Inc()
			}
		}
		if err := emitSection(SectionTensor, blobs[i]); err != nil {
			abort()
			return nil, err
		}
		sched.PutBytes(blobs[i])
		blobs[i] = nil
		if submitted < n {
			submit(submitted)
			submitted++
		}
	}

	select {
	case <-restDone:
	case <-ctx.Done():
		abort()
		return nil, ctx.Err()
	}
	if restErr != nil {
		abort()
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("core: lossless compress: %w", restErr)
	}
	stats.LosslessCompressed = len(restBlob)
	scratch = ebcl.AppendSection(scratch[:0], restBlob)
	sched.PutBytes(restBlob)
	restBlob = nil
	if err := emitSection(SectionLossless, scratch); err != nil {
		abort()
		return nil, err
	}
	g.Wait()
	return finish()
}

// CompressTo streams the FedSZ encode of sd straight into w on the
// process-wide shared pool: the header and each finished tensor section
// are written while later tensors are still compressing, so on a socket
// the upload overlaps the encode. The bytes written are identical to
// Compress(sd, opts).
func CompressTo(ctx context.Context, w io.Writer, sd *tensor.StateDict, opts Options) (*Stats, error) {
	return CompressToWith(ctx, sched.Default(), w, sd, opts)
}

// CompressToWith is CompressTo drawing blob parallelism from the given
// pool (nil runs serially). Stats.WriteWait reports the time spent blocked
// in w.Write; Stats.EncodeOverlapRatio reports how much compress work the
// writes hid.
func CompressToWith(ctx context.Context, pool *sched.Pool, w io.Writer, sd *tensor.StateDict, opts Options) (*Stats, error) {
	return CompressSections(ctx, pool, sd, opts, func(_ SectionKind, payload []byte) error {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("core: compress write: %w", err)
		}
		return nil
	})
}
