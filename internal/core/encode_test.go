package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/compressors"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// encodeDict builds a multi-tensor dict large enough that the encoder's
// window pipeline actually pipelines.
func encodeDict(seed uint64, tensors, elems int) *tensor.StateDict {
	rng := rand.New(rand.NewPCG(seed, 77))
	sd := tensor.NewStateDict()
	for i := 0; i < tensors; i++ {
		sd.Add(names[i%len(names)]+string(rune('a'+i)), tensor.KindWeight,
			tensor.FromData(eblctest.WeightLike(rng, elems), elems))
	}
	b := tensor.New(64)
	for i := range b.Data {
		b.Data[i] = float32(0.01 * rng.NormFloat64())
	}
	sd.Add("head.bias", tensor.KindBias, b)
	return sd
}

var names = []string{"conv.weight.", "fc.weight.", "proj.weight."}

// TestCompressToMatchesCompress locks the core bit-identity contract: the
// incremental section encoder writing to an io.Writer must reproduce the
// buffered Compress bytes exactly, for every EBLC and both bound modes.
func TestCompressToMatchesCompress(t *testing.T) {
	sd := encodeDict(1, 5, 4096)
	for _, name := range compressors.Names() {
		comp, err := compressors.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, params := range []ebcl.Params{ebcl.Rel(1e-2), ebcl.Abs(1e-3)} {
			opts := Options{Lossy: comp, LossyParams: params}
			want, wstats, err := Compress(sd, opts)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, params.Mode, err)
			}
			var buf bytes.Buffer
			stats, err := CompressTo(context.Background(), &buf, sd, opts)
			if err != nil {
				t.Fatalf("%s/%v: CompressTo: %v", name, params.Mode, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s/%v: CompressTo bytes differ from Compress", name, params.Mode)
			}
			if stats.CompressedBytes != wstats.CompressedBytes || stats.CompressedBytes != buf.Len() {
				t.Fatalf("%s/%v: CompressedBytes %d (want %d, wrote %d)",
					name, params.Mode, stats.CompressedBytes, wstats.CompressedBytes, buf.Len())
			}
			if stats.EncodeWork <= 0 {
				t.Fatalf("%s/%v: EncodeWork not recorded: %+v", name, params.Mode, stats)
			}
		}
	}
}

// TestCompressToSerialPoolMatches: the nil-pool (serial) encoder must also
// be bit-identical — ordering never depends on scheduling.
func TestCompressToSerialPoolMatches(t *testing.T) {
	sd := encodeDict(2, 4, 2048)
	want, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := CompressToWith(context.Background(), nil, &buf, sd, Options{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("serial CompressTo differs from pooled Compress")
	}
}

// TestCompressToOverlap: under a throttled writer, tensor i's send must
// hide tensor i+1's compression — the encode-side pipelining payoff the
// streaming client exists for.
func TestCompressToOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("throttled-writer timing test")
	}
	sd := encodeDict(3, 8, 1<<16)
	pool := sched.NewPool(4)
	link := netsim.Link{BandwidthMbps: 20}
	stats, err := CompressToWith(context.Background(), pool, link.ThrottleWriter(io.Discard), sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.WriteWait <= 0 {
		t.Fatalf("no write wait recorded over a 20 Mbps link: %+v", stats)
	}
	if r := stats.EncodeOverlapRatio(); r <= 0 || r > 1 {
		t.Fatalf("encode overlap ratio %v, want in (0, 1]", r)
	}
}

// blockingWriter blocks in Write until released, then fails.
type blockingWriter struct {
	entered chan struct{}
	release chan struct{}
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	select {
	case w.entered <- struct{}{}:
	default:
	}
	<-w.release
	return 0, errors.New("blockingWriter: released")
}

// TestCompressToCancellation: cancelling mid-encode must return ctx.Err()
// promptly and leave the pool with no leaked slots or stuck workers.
func TestCompressToCancellation(t *testing.T) {
	sd := encodeDict(4, 6, 1<<15)
	pool := sched.NewPool(4)
	w := &blockingWriter{entered: make(chan struct{}, 1), release: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		_, err := CompressToWith(ctx, pool, w, sd, Options{})
		done <- err
	}()
	<-w.entered // encoder is blocked writing a section
	cancel()
	close(w.release) // unblock the writer; the encoder must prefer ctx.Err()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("CompressTo did not return after cancellation")
	}
	if n := pool.Busy(); n != 0 {
		t.Fatalf("%d pool slots leaked after cancellation", n)
	}
	// The pool must still drive a full encode+decode round trip.
	stream, _, err := CompressWith(context.Background(), pool, sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressWith(context.Background(), pool, stream); err != nil {
		t.Fatal(err)
	}
}

// stallReader serves the stream in small chunks, blocking after a
// cutoff until released — a socket that stalls mid-stream.
type stallReader struct {
	data    []byte
	pos     int
	cutoff  int
	stalled chan struct{}
	release chan struct{}
}

func (r *stallReader) Read(p []byte) (int, error) {
	if r.pos >= r.cutoff {
		select {
		case r.stalled <- struct{}{}:
		default:
		}
		<-r.release
	}
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:min(r.pos+512, len(r.data))])
	r.pos += n
	return n, nil
}

// TestDecompressFromCancellation: cancelling mid-receive must return
// ctx.Err() promptly (the next read aborts, not just the next section)
// and leak no pool slots.
func TestDecompressFromCancellation(t *testing.T) {
	sd := encodeDict(5, 6, 1<<14)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(4)
	r := &stallReader{
		data: stream, cutoff: len(stream) / 2,
		stalled: make(chan struct{}, 1), release: make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := DecompressFromWith(ctx, pool, r)
		done <- err
	}()
	<-r.stalled
	cancel()
	close(r.release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DecompressFrom did not return after cancellation")
	}
	if n := pool.Busy(); n != 0 {
		t.Fatalf("%d pool slots leaked after cancellation", n)
	}
	// Same stream, same pool, fresh context: must still decode cleanly.
	want, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressFromWith(context.Background(), pool, bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if d, err := got.MaxAbsDiff(want); err != nil || d != 0 {
		t.Fatalf("post-cancel decode differs: d=%v err=%v", d, err)
	}
}

// TestCompressAllCancelled: an already-cancelled context fails the batch
// entry points with the context error.
func TestCompressAllCancelled(t *testing.T) {
	sd := encodeDict(6, 2, 2048)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := CompressAll(ctx, []*tensor.StateDict{sd}, Options{}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("CompressAll: got %v", err)
	}
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressAll(ctx, [][]byte{stream}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("DecompressAll: got %v", err)
	}
}

// BenchmarkCompressTo measures the streaming encoder against a throttled
// link and reports the encode/send overlap ratio — the Eqn-1 client-side
// win: tC hidden behind the upload of S'.
func BenchmarkCompressTo(b *testing.B) {
	sd := encodeDict(7, 8, 1<<16)
	pool := sched.NewPool(4)
	link := netsim.Link{BandwidthMbps: 20}
	var overlap float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats, err := CompressToWith(context.Background(), pool, link.ThrottleWriter(io.Discard), sd, Options{})
		if err != nil {
			b.Fatal(err)
		}
		overlap = stats.EncodeOverlapRatio()
	}
	b.ReportMetric(overlap, "overlap")
}

// recordingCompressor wraps an EBLC and records the address of the first
// byte each CompressAppend call produced, so the no-copy test below can
// verify the emitted section aliases the codec's own output bytes.
type recordingCompressor struct {
	ebcl.Compressor
	blobPtrs []*byte
}

func (r *recordingCompressor) CompressAppend(dst []byte, data []float32, p ebcl.Params) ([]byte, error) {
	out, err := r.Compressor.CompressAppend(dst, data, p)
	if err == nil && len(out) > len(dst) {
		r.blobPtrs = append(r.blobPtrs, &out[len(dst)])
	}
	return out, err
}

// TestCompressSectionsEmitsBlobInPlace locks the zero-copy section
// contract: the tensor section handed to emit must contain the compressed
// blob exactly where CompressAppend wrote it (behind a reserved fixed-width
// length prefix), not a copy — and the padded prefix must still decode as a
// plain uvarint.
func TestCompressSectionsEmitsBlobInPlace(t *testing.T) {
	sd := encodeDict(7, 3, 4096)
	inner, err := compressors.Get("sz2")
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingCompressor{Compressor: inner}
	var stream []byte
	tensorIdx := 0
	// A nil pool runs the blob workers serially at submit time, so
	// rec.blobPtrs accumulates in emit order without synchronization.
	_, err = CompressSections(context.Background(), nil, sd, Options{Lossy: rec}, func(kind SectionKind, payload []byte) error {
		stream = append(stream, payload...)
		if kind != SectionTensor {
			return nil
		}
		_, pos, err := readString(payload, 0)
		if err != nil {
			t.Fatalf("tensor section %d: name: %v", tensorIdx, err)
		}
		rank := int(payload[pos+1])
		pos += 2 + 4*rank
		l, k := binary.Uvarint(payload[pos:])
		if k != ebcl.SectionLenBytes {
			t.Fatalf("tensor section %d: length prefix is %d bytes, want reserved %d", tensorIdx, k, ebcl.SectionLenBytes)
		}
		blobStart := pos + k
		if int(l) != len(payload)-blobStart {
			t.Fatalf("tensor section %d: prefix says %d blob bytes, section carries %d", tensorIdx, l, len(payload)-blobStart)
		}
		if tensorIdx >= len(rec.blobPtrs) {
			t.Fatalf("tensor section %d emitted but only %d CompressAppend calls recorded", tensorIdx, len(rec.blobPtrs))
		}
		if &payload[blobStart] != rec.blobPtrs[tensorIdx] {
			t.Fatalf("tensor section %d: emitted blob does not alias CompressAppend output (blob was copied)", tensorIdx)
		}
		tensorIdx++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tensorIdx == 0 {
		t.Fatal("no tensor sections emitted")
	}
	got, _, err := Decompress(stream)
	if err != nil {
		t.Fatalf("decode of zero-copy stream: %v", err)
	}
	if got.NumParams() != sd.NumParams() {
		t.Fatalf("round trip params %d, want %d", got.NumParams(), sd.NumParams())
	}
}
