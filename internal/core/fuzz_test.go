package core

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/compressors"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
)

// TestDecompressRandomCorruption flips random bytes in valid FedSZ streams
// and asserts the decoder neither panics nor hangs — it must return an
// error or a structurally valid dict. (Hostile length fields used to be
// able to trigger multi-gigabyte allocations; the decoders now bound their
// first allocations by the available input.)
func TestDecompressRandomCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		bad := append([]byte(nil), stream...)
		flips := rng.IntN(4) + 1
		for f := 0; f < flips; f++ {
			bad[rng.IntN(len(bad))] ^= byte(rng.IntN(255) + 1)
		}
		done := make(chan struct{})
		go func(b []byte) {
			defer close(done)
			got, _, err := Decompress(b)
			if err == nil && got == nil {
				t.Error("nil dict with nil error")
			}
		}(bad)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("trial %d: decompress hung", trial)
		}
	}
}

// TestDecompressTruncationSweep truncates a valid stream at every length
// and asserts clean failure.
func TestDecompressTruncationSweep(t *testing.T) {
	rng := rand.New(rand.NewPCG(79, 80))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	step := len(stream)/200 + 1
	for l := 0; l < len(stream); l += step {
		if _, _, err := Decompress(stream[:l]); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", l, len(stream))
		}
	}
}

// TestEBLCStreamCorruption runs the same random-flip discipline directly
// against each EBLC decoder.
func TestEBLCStreamCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 82))
	data := eblctest.WeightLike(rng, 4096)
	for _, name := range compressors.Names() {
		comp, err := compressors.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := comp.Compress(data, ebcl.Rel(1e-2))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 150; trial++ {
			bad := append([]byte(nil), stream...)
			bad[rng.IntN(len(bad))] ^= byte(rng.IntN(255) + 1)
			out, err := comp.Decompress(bad)
			if err == nil && len(out) != len(data) && len(out) > ebcl.MaxElements {
				t.Fatalf("%s: corrupt stream produced %d elements", name, len(out))
			}
		}
	}
}
