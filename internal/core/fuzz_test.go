package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/compressors"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/sched"
)

// TestDecompressRandomCorruption flips random bytes in valid FedSZ streams
// and asserts the decoder neither panics nor hangs — it must return an
// error or a structurally valid dict. (Hostile length fields used to be
// able to trigger multi-gigabyte allocations; the decoders now bound their
// first allocations by the available input.)
func TestDecompressRandomCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		bad := append([]byte(nil), stream...)
		flips := rng.IntN(4) + 1
		for f := 0; f < flips; f++ {
			bad[rng.IntN(len(bad))] ^= byte(rng.IntN(255) + 1)
		}
		done := make(chan struct{})
		go func(b []byte) {
			defer close(done)
			got, _, err := Decompress(b)
			if err == nil && got == nil {
				t.Error("nil dict with nil error")
			}
		}(bad)
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("trial %d: decompress hung", trial)
		}
	}
}

// TestDecompressTruncationSweep truncates a valid stream at every length
// and asserts clean failure.
func TestDecompressTruncationSweep(t *testing.T) {
	rng := rand.New(rand.NewPCG(79, 80))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	step := len(stream)/200 + 1
	for l := 0; l < len(stream); l += step {
		if _, _, err := Decompress(stream[:l]); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", l, len(stream))
		}
	}
}

// corpusEntry is one seeded corrupt stream. mustErr entries are
// corruptions that cannot possibly decode (truncations, mangled headers);
// the rest are random flips that may land in don't-care bytes, where the
// contract is only "no panic, no hang, no garbage dict".
type corpusEntry struct {
	name    string
	data    []byte
	mustErr bool
}

// corruptCorpus deterministically seeds a corpus of corrupt FedSZ streams
// from a valid one: every-k truncations, targeted header/flag/section
// damage, and random single- and multi-byte flips.
func corruptCorpus(tb testing.TB) []corpusEntry {
	tb.Helper()
	rng := rand.New(rand.NewPCG(101, 102))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	var corpus []corpusEntry
	add := func(name string, data []byte, mustErr bool) {
		corpus = append(corpus, corpusEntry{name, data, mustErr})
	}
	// Truncations at every ~2% of the stream, plus the boundary cases.
	step := len(stream)/50 + 1
	for l := 0; l < len(stream); l += step {
		add(fmt.Sprintf("trunc@%d", l), append([]byte(nil), stream[:l]...), true)
	}
	add("trunc@-1", append([]byte(nil), stream[:len(stream)-1]...), true)
	// Targeted header damage.
	flip := func(name string, off int, xor byte) {
		bad := append([]byte(nil), stream...)
		bad[off] ^= xor
		add(name, bad, true)
	}
	flip("magic", 0, 0xFF)
	flip("version", 4, 0x55)
	// Unknown compressor name: corrupt the first name byte past its length
	// prefix (pos 5 is the length, 6 the first character).
	flip("lossy-name", 6, 0x1F)
	// Entry count tampering (count lives after the two names).
	nameEnd := 5 + 1 + int(stream[5])
	nameEnd += 1 + int(stream[nameEnd])
	flip("entry-count", nameEnd, 0xFF)
	// Path flag outside {0,1}.
	flip("path-flag", nameEnd+4, 0x80)
	// Tensor-section damage: flips land inside the compressed blobs (where
	// the multi-stream entropy framing lives), and truncations cut a
	// sub-stream boundary mid-section. A flip may hit don't-care padding, so
	// only the truncations are must-error.
	secs, err := Sections(stream)
	if err != nil {
		tb.Fatal(err)
	}
	off := len(secs.Header)
	for i, ts := range secs.Tensors {
		for _, q := range []int{1, 2, 3} {
			bad := append([]byte(nil), stream...)
			bad[off+len(ts)*q/4] ^= 0xA5
			add(fmt.Sprintf("tensor%d-flip%d", i, q), bad, false)
		}
		add(fmt.Sprintf("tensor%d-trunc", i),
			append([]byte(nil), stream[:off+len(ts)/2]...), true)
		off += len(ts)
	}
	// Random flips: not guaranteed to error, but must never panic.
	for trial := 0; trial < 64; trial++ {
		bad := append([]byte(nil), stream...)
		flips := rng.IntN(4) + 1
		for f := 0; f < flips; f++ {
			bad[rng.IntN(len(bad))] ^= byte(rng.IntN(255) + 1)
		}
		add(fmt.Sprintf("flip%d", trial), bad, false)
	}
	return corpus
}

// TestDecompressCorruptCorpus asserts every must-error corpus entry fails
// with ErrCorrupt (never a panic) — under the serial decoder and under the
// new parallel decode at two budgets.
func TestDecompressCorruptCorpus(t *testing.T) {
	corpus := corruptCorpus(t)
	decoders := []struct {
		name string
		run  func([]byte) error
	}{
		{"serial", func(b []byte) error { _, _, err := DecompressWith(context.Background(), sched.Serial(), b); return err }},
		{"pool4", func(b []byte) error {
			_, _, err := DecompressWith(context.Background(), sched.NewPool(4), b)
			return err
		}},
		{"default", func(b []byte) error { _, _, err := Decompress(b); return err }},
	}
	for _, dec := range decoders {
		for _, e := range corpus {
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s/%s: decompress panicked: %v", dec.name, e.name, r)
					}
				}()
				return dec.run(e.data)
			}()
			if e.mustErr {
				if err == nil {
					t.Errorf("%s/%s: corrupt stream decoded without error", dec.name, e.name)
				} else if !errors.Is(err, ErrCorrupt) {
					t.Errorf("%s/%s: error %v does not wrap ErrCorrupt", dec.name, e.name, err)
				}
			}
		}
	}
}

// FuzzDecompress drives the decoder with the corrupt corpus as seeds. The
// invariants fuzzing protects: no panic, no hang, and a nil error implies
// a structurally valid state dict.
func FuzzDecompress(f *testing.F) {
	for _, e := range corruptCorpus(f) {
		f.Add(e.data)
	}
	for _, e := range chunkCorruptCorpus(f) {
		f.Add(e.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sd, _, err := Decompress(data)
		if err == nil {
			if sd == nil {
				t.Fatal("nil dict with nil error")
			}
			// A decodable dict must re-marshal without panicking.
			_ = sd.Marshal()
		}
	})
}

// TestEBLCStreamCorruption runs the same random-flip discipline directly
// against each EBLC decoder.
func TestEBLCStreamCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 82))
	data := eblctest.WeightLike(rng, 4096)
	for _, name := range compressors.Names() {
		comp, err := compressors.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := comp.Compress(data, ebcl.Rel(1e-2))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 150; trial++ {
			bad := append([]byte(nil), stream...)
			bad[rng.IntN(len(bad))] ^= byte(rng.IntN(255) + 1)
			out, err := comp.Decompress(bad)
			if err == nil && len(out) != len(data) && len(out) > ebcl.MaxElements {
				t.Fatalf("%s: corrupt stream produced %d elements", name, len(out))
			}
		}
	}
}

// chunkCorruptCorpus seeds corruptions targeting the v4 chunk jump table:
// shifted per-chunk sizes, inflated and undersized chunk counts, and
// truncations that cut inside a chunk sub-blob. Every entry must fail
// with ErrCorrupt — the jump table is fully validated before any chunk
// decodes, so none of these can reach a codec with out-of-bounds slices.
func chunkCorruptCorpus(tb testing.TB) []corpusEntry {
	tb.Helper()
	rng := rand.New(rand.NewPCG(103, 104))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{ChunkElems: 2048})
	if err != nil {
		tb.Fatal(err)
	}
	if stream[4] != streamVersionV4 {
		tb.Fatalf("fixture stream version %d, want v4", stream[4])
	}
	secs, err := Sections(stream)
	if err != nil {
		tb.Fatal(err)
	}
	hdr, err := ParseHeader(secs.Header)
	if err != nil {
		tb.Fatal(err)
	}
	// Locate the chunked tensor's blob inside the stream. The blob is the
	// section's tail (ParseTensorSection enforces no trailing bytes), so
	// its stream offset is the section end minus the blob length.
	blobOff := -1
	var blob []byte
	off := len(secs.Header)
	for _, sec := range secs.Tensors {
		pt, err := ParseTensorSection(hdr, sec)
		if err != nil {
			tb.Fatal(err)
		}
		if isChunkedBlob(pt.Blob) {
			blobOff = off + len(sec) - len(pt.Blob)
			blob = pt.Blob
			break
		}
		off += len(sec)
	}
	if blobOff < 0 {
		tb.Fatal("fixture stream has no chunked blob")
	}
	chunks, k := binary.Uvarint(blob[1:])
	if k <= 0 || chunks < 2 {
		tb.Fatalf("fixture blob chunk count %d", chunks)
	}
	countOff := blobOff + 1
	tableOff := countOff + k

	var corpus []corpusEntry
	mutate := func(name string, fn func(bad []byte)) {
		bad := append([]byte(nil), stream...)
		fn(bad)
		corpus = append(corpus, corpusEntry{"chunk-" + name, bad, true})
	}
	// Chunk counts outside [2, MaxChunks]; zero, one, and inflated all
	// single-byte uvarints, so the table geometry shifts consistently.
	mutate("count-zero", func(bad []byte) { bad[countOff] = 0 })
	mutate("count-one", func(bad []byte) { bad[countOff] = 1 })
	mutate("count-inflated", func(bad []byte) { bad[countOff] = MaxChunks + 1 })
	// A count that still parses but exceeds the tensor's block grid.
	mutate("count-over-blocks", func(bad []byte) { bad[countOff] = MaxChunks })
	// Jump-table shifts: the sizes must account for the blob exactly, so
	// ±1 on the first entry leaves a gap or overruns the final chunk.
	mutate("table-size+1", func(bad []byte) {
		s := binary.LittleEndian.Uint32(bad[tableOff:])
		binary.LittleEndian.PutUint32(bad[tableOff:], s+1)
	})
	mutate("table-size-1", func(bad []byte) {
		s := binary.LittleEndian.Uint32(bad[tableOff:])
		binary.LittleEndian.PutUint32(bad[tableOff:], s-1)
	})
	mutate("table-size-huge", func(bad []byte) {
		binary.LittleEndian.PutUint32(bad[tableOff:], 0xFFFFFFFF)
	})
	// Truncations that cut inside the jump table and inside a chunk
	// sub-blob (the section length prefix now points past the data).
	for _, cut := range []int{tableOff + 2, tableOff + 4*int(chunks) + 3, blobOff + len(blob)/2} {
		cut := cut
		corpus = append(corpus, corpusEntry{
			fmt.Sprintf("chunk-trunc@%d", cut),
			append([]byte(nil), stream[:cut]...),
			true,
		})
	}
	return corpus
}

// TestDecompressChunkCorruptCorpus: every chunk-targeted corruption fails
// with ErrCorrupt under serial and parallel decode — never a panic, never
// a silent wrong dict.
func TestDecompressChunkCorruptCorpus(t *testing.T) {
	corpus := chunkCorruptCorpus(t)
	decoders := []struct {
		name string
		run  func([]byte) error
	}{
		{"serial", func(b []byte) error { _, _, err := DecompressWith(context.Background(), sched.Serial(), b); return err }},
		{"pool4", func(b []byte) error {
			_, _, err := DecompressWith(context.Background(), sched.NewPool(4), b)
			return err
		}},
	}
	for _, dec := range decoders {
		for _, e := range corpus {
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s/%s: decompress panicked: %v", dec.name, e.name, r)
					}
				}()
				return dec.run(e.data)
			}()
			if err == nil {
				t.Errorf("%s/%s: corrupt chunked stream decoded without error", dec.name, e.name)
			} else if !errors.Is(err, ErrCorrupt) {
				t.Errorf("%s/%s: error %v does not wrap ErrCorrupt", dec.name, e.name, err)
			}
		}
	}
}
