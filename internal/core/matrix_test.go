package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/compressors"
	"repro/internal/ebcl"
	"repro/internal/lossless"
	"repro/internal/tensor"
)

// TestFullCodecMatrix exercises every (EBLC × lossless codec) pairing
// through the complete pipeline — the integration surface the paper's
// compressor-selection study sweeps.
func TestFullCodecMatrix(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	sd := modelDict(rng)
	for _, lossyName := range compressors.Names() {
		for _, codecName := range lossless.Names() {
			lossy, err := compressors.Get(lossyName)
			if err != nil {
				t.Fatal(err)
			}
			codec, err := lossless.Get(codecName)
			if err != nil {
				t.Fatal(err)
			}
			stream, stats, err := Compress(sd, Options{
				Lossy:       lossy,
				LossyParams: ebcl.Rel(1e-2),
				Lossless:    codec,
			})
			if err != nil {
				t.Fatalf("%s/%s compress: %v", lossyName, codecName, err)
			}
			if stats.Ratio() <= 1 {
				t.Errorf("%s/%s: ratio %.2f <= 1", lossyName, codecName, stats.Ratio())
			}
			got, _, err := Decompress(stream)
			if err != nil {
				t.Fatalf("%s/%s decompress: %v", lossyName, codecName, err)
			}
			// Lossless partition must always be exact regardless of pairing.
			for _, name := range []string{"conv1.bias", "bn1.running_mean", "bn1.num_batches_tracked"} {
				a, b := sd.Get(name), got.Get(name)
				for i := range a.Data {
					if a.Data[i] != b.Data[i] {
						t.Fatalf("%s/%s: %s corrupted", lossyName, codecName, name)
					}
				}
			}
			// Lossy partition within bound — except ZFP's fixed-precision
			// proxy, which is only approximately bounded (paper §V-D1).
			a, b := sd.Get("conv1.weight"), got.Get("conv1.weight")
			ebAbs := 1e-2 * ebcl.ValueRange(a.Data)
			limit := ebAbs
			if lossyName == "zfp" {
				limit = 8 * ebAbs
			}
			if gotErr := ebcl.MaxAbsError(a.Data, b.Data); gotErr > limit*(1+1e-6) {
				t.Fatalf("%s/%s: weight error %g exceeds %g", lossyName, codecName, gotErr, limit)
			}
		}
	}
}

// TestParallelCompressionDeterministic verifies the concurrent per-tensor
// compression emits byte-identical streams across runs (ordering is by
// index, not completion).
func TestParallelCompressionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 45))
	// Many lossy tensors to actually exercise the worker pool.
	sd := modelDict(rng)
	for i := 0; i < 12; i++ {
		extra := make([]float32, 5000)
		for j := range extra {
			extra[j] = float32(0.02 * rng.NormFloat64())
		}
		sd.Add(string(rune('a'+i))+".weight", tensor.KindWeight, tensor.FromData(extra, len(extra)))
	}
	s1, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatalf("stream lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("streams differ at byte %d", i)
		}
	}
}
