package core

// Pipeline stage timers: one encode and one decode latency histogram per
// lossy codec, registered lazily on telemetry.Default() the first time a
// codec is seen. The lookup is a plain map behind an RWMutex — a read-lock
// map hit boxes nothing, so the steady-state cost per encode/decode call
// is one RLock and one Observe (both allocation-free).

import (
	"sync"

	"repro/internal/telemetry"
)

type stageHists struct {
	encode *telemetry.Histogram
	decode *telemetry.Histogram
}

var (
	stageMu sync.RWMutex
	stages  = map[string]*stageHists{}
)

// stageFor returns the encode/decode histograms labeled with codec.
func stageFor(codec string) *stageHists {
	stageMu.RLock()
	h := stages[codec]
	stageMu.RUnlock()
	if h != nil {
		return h
	}
	stageMu.Lock()
	defer stageMu.Unlock()
	if h := stages[codec]; h != nil {
		return h
	}
	r := telemetry.Default()
	h = &stageHists{
		encode: r.Histogram("fedsz_encode_seconds",
			"Full-statedict encode wall time, by lossy codec.",
			telemetry.DurationBuckets, telemetry.L("codec", codec)),
		decode: r.Histogram("fedsz_decode_seconds",
			"Full-statedict decode wall time, by lossy codec.",
			telemetry.DurationBuckets, telemetry.L("codec", codec)),
	}
	stages[codec] = h
	return h
}
