package core

// Section-level parsing for ingest front-ends that route wire frames to
// aggregator shards. The wire format (internal/wire) frames a FedSZ stream
// at exactly the section boundaries Sections reports, so a router can
// parse a frame's payload in isolation — header metadata from the header
// frame, tensor identity (name, shape, mode) from each tensor frame —
// without reassembling the stream or touching the compressed blobs. The
// shard that owns a tensor then decodes just its blob via SectionDecoder.
// decompressSource remains the one full-stream decoder; these parsers
// read the same layout but leave decode scheduling to the caller.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/compressors"
	"repro/internal/ebcl"
	"repro/internal/lossless"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// ParsedHeader is the decoded form of a stream's header section — the
// payload of a wire FrameHeader.
type ParsedHeader struct {
	// Version is the stream format version (1–4).
	Version byte
	// LossyName and LosslessName select the codecs by registry name.
	LossyName    string
	LosslessName string
	// RefEpoch is the delta reference epoch (v3/v4 streams only, else 0; a
	// v4 stream encoded without a reference pins it to 0).
	RefEpoch uint32
	// Flags holds the per-entry path flags in original dict order — a view
	// into the section, valid only while the section bytes live.
	Flags []byte
	// LossyCount is the number of tensor sections that follow the header.
	LossyCount int
}

// IsDelta reports whether tensor sections carry a mode byte (v3 and v4
// layouts; in a v4 stream encoded without a reference every mode byte is
// absolute).
func (h *ParsedHeader) IsDelta() bool {
	return h.Version == streamVersionV3 || h.Version == streamVersionV4
}

// Chunked reports whether tensor sections may carry chunked (v4) blobs.
func (h *ParsedHeader) Chunked() bool { return h.Version == streamVersionV4 }

// ParseHeader parses a header section payload. The returned header's Flags
// field aliases section.
func ParseHeader(section []byte) (*ParsedHeader, error) {
	if len(section) < 5 || binary.LittleEndian.Uint32(section) != streamMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	h := &ParsedHeader{Version: section[4]}
	if !supportedStreamVersion(h.Version) {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, h.Version)
	}
	pos := 5
	var err error
	if h.LossyName, pos, err = readString(section, pos); err != nil {
		return nil, fmt.Errorf("%w: lossy compressor name", ErrCorrupt)
	}
	if h.LosslessName, pos, err = readString(section, pos); err != nil {
		return nil, fmt.Errorf("%w: lossless codec name", ErrCorrupt)
	}
	if h.IsDelta() {
		if pos+4 > len(section) {
			return nil, fmt.Errorf("%w: reference epoch", ErrCorrupt)
		}
		h.RefEpoch = binary.LittleEndian.Uint32(section[pos:])
		pos += 4
	}
	if pos+4 > len(section) {
		return nil, fmt.Errorf("%w: entry count", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(section[pos:]))
	pos += 4
	if count > maxStreamEntries || pos+count != len(section) {
		return nil, fmt.Errorf("%w: header flag array", ErrCorrupt)
	}
	h.Flags = section[pos : pos+count]
	for _, f := range h.Flags {
		switch f {
		case pathLossy:
			h.LossyCount++
		case pathLossless:
		default:
			return nil, fmt.Errorf("%w: path flag %d", ErrCorrupt, f)
		}
	}
	return h, nil
}

// ParsedTensor is the decoded metadata of one tensor section — the payload
// of a wire FrameTensor — with the compressed blob left untouched.
type ParsedTensor struct {
	Name  string
	Kind  tensor.Kind
	Shape []int
	Elems int
	// Delta marks a v3 residual section: the blob decodes to update −
	// reference and the owning shard must fold the reference back in.
	Delta bool
	// Blob is the compressed payload — a view into the section, valid only
	// while the section bytes live.
	Blob []byte
}

// ParseTensorSection parses one tensor section payload. hdr supplies the
// stream version (v3 sections carry a mode byte). The returned tensor's
// Blob aliases section.
func ParseTensorSection(hdr *ParsedHeader, section []byte) (*ParsedTensor, error) {
	pt := &ParsedTensor{}
	var err error
	pos := 0
	if pt.Name, pos, err = readString(section, pos); err != nil {
		return nil, fmt.Errorf("%w: tensor name", ErrCorrupt)
	}
	if pos+2 > len(section) {
		return nil, fmt.Errorf("%w: tensor metadata", ErrCorrupt)
	}
	pt.Kind = tensor.Kind(section[pos])
	rank := int(section[pos+1])
	pos += 2
	if pos+4*rank > len(section) {
		return nil, fmt.Errorf("%w: tensor shape", ErrCorrupt)
	}
	pt.Shape = make([]int, rank)
	pt.Elems = 1
	for d := range pt.Shape {
		pt.Shape[d] = int(binary.LittleEndian.Uint32(section[pos+4*d:]))
		pt.Elems *= pt.Shape[d]
		if pt.Elems > ebcl.MaxElements {
			return nil, fmt.Errorf("%w: tensor %q element count exceeds limit", ErrCorrupt, pt.Name)
		}
	}
	pos += 4 * rank
	if hdr.IsDelta() {
		if pos >= len(section) {
			return nil, fmt.Errorf("%w: tensor mode", ErrCorrupt)
		}
		switch section[pos] {
		case sectionAbsolute:
		case sectionDelta:
			pt.Delta = true
		default:
			return nil, fmt.Errorf("%w: tensor %q section mode %d", ErrCorrupt, pt.Name, section[pos])
		}
		pos++
	}
	if pt.Blob, pos, err = ebcl.ReadSection(section, pos); err != nil {
		return nil, fmt.Errorf("%w: lossy section %q: %w", ErrCorrupt, pt.Name, err)
	}
	if pos != len(section) {
		return nil, fmt.Errorf("%w: tensor section %q has %d trailing bytes", ErrCorrupt, pt.Name, len(section)-pos)
	}
	return pt, nil
}

// SectionDecoder decodes routed sections of one stream: the codecs are
// resolved once from the header names, then any shard can decode its
// tensors independently.
type SectionDecoder struct {
	hdr   *ParsedHeader
	lossy ebcl.Compressor
	codec lossless.Codec
}

// NewSectionDecoder resolves hdr's codec names against the registries.
func NewSectionDecoder(hdr *ParsedHeader) (*SectionDecoder, error) {
	lossy, err := compressors.Get(hdr.LossyName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	codec, err := lossless.Get(hdr.LosslessName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return &SectionDecoder{hdr: hdr, lossy: lossy, codec: codec}, nil
}

// DecodeTensor reconstructs one parsed tensor section into a pooled float
// buffer (release with sched.PutFloats, or hand it to a StateDict and
// recycle via Release). For a residual section, ref must be the
// same-epoch baseline values for this tensor — the caller verifies epochs
// via ParsedHeader.RefEpoch; a nil or mis-sized ref fails with
// ErrReference so the transport can renegotiate an absolute upload.
func (d *SectionDecoder) DecodeTensor(pt *ParsedTensor, ref []float32) ([]float32, error) {
	if pt.Delta && len(ref) != pt.Elems {
		return nil, fmt.Errorf("%w: reference lacks matching tensor %q", ErrReference, pt.Name)
	}
	if !pt.Delta {
		ref = nil
	}
	dst := sched.GetFloats(pt.Elems)
	// The shared blob decoder handles plain and chunked (v4) blobs alike
	// and folds the residual baseline back in when ref is non-nil; a shard
	// decodes its tensors serially (nil pool), keeping cross-shard
	// parallelism the scheduler's job.
	data, err := decodeBlobInto(nil, d.lossy, dst, pt.Blob, pt.Elems, d.hdr.Chunked(), ref, nil)
	if err != nil {
		sched.PutFloats(dst)
		return nil, fmt.Errorf("%w: lossy decompress %q: %w", ErrCorrupt, pt.Name, err)
	}
	return data, nil
}

// DecodeLossless reconstructs the metadata partition from a lossless
// section payload (the uvarint-length-prefixed blob a wire FrameLossless
// carries). The returned dict's buffers are heap-allocated, not pooled.
func (d *SectionDecoder) DecodeLossless(section []byte) (*tensor.StateDict, error) {
	blob, pos, err := ebcl.ReadSection(section, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: metadata section: %w", ErrCorrupt, err)
	}
	if pos != len(section) {
		return nil, fmt.Errorf("%w: metadata section has %d trailing bytes", ErrCorrupt, len(section)-pos)
	}
	raw, err := d.codec.Decompress(blob)
	if err != nil {
		return nil, fmt.Errorf("%w: lossless decompress: %w", ErrCorrupt, err)
	}
	sd, err := tensor.UnmarshalStateDict(raw)
	sched.PutBytes(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: metadata decode: %w", ErrCorrupt, err)
	}
	return sd, nil
}
