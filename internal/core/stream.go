package core

// Streaming decode: the io.Reader-based counterpart of Compress's output.
//
// A FedSZ stream is already sequential — header, per-tensor sections, one
// lossless-partition section — so it can be decoded incrementally while it
// is still arriving from a socket: as soon as tensor i's section is fully
// read, its decode is submitted to the shared worker pool and the reader
// goroutine moves on to tensor i+1. The in-memory Decompress is a thin
// wrapper over this path (a bytes.Reader delivers every section
// instantly), so there is exactly one decoder.
//
// Sections exposes the same boundaries to the transport layer: the wire
// format (internal/wire) frames a stream at section granularity, which
// means a receiver piping wire payloads into DecompressFrom decodes tensor
// i while tensor i+1 is still crossing the network.

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/compressors"
	"repro/internal/ebcl"
	"repro/internal/lossless"
	"repro/internal/sched"
	"repro/internal/tensor"
)

const (
	// maxStreamEntries bounds the tensor count a header may declare before
	// the flag array is allocated (a real model has a few hundred entries).
	maxStreamEntries = 1 << 20
	// maxSectionBytes bounds a single section's declared length.
	maxSectionBytes = 1 << 30
)

// StreamSections splits a FedSZ stream into its transport framing units.
// All fields are views into the original stream, not copies, and their
// concatenation (Header, Tensors..., Lossless) is the logical stream.
type StreamSections struct {
	// Header spans the fixed preamble: magic, version, compressor names,
	// entry count, and path flags.
	Header []byte
	// Tensors holds one unit per lossy tensor: name, kind, shape, and the
	// length-prefixed compressed blob.
	Tensors [][]byte
	// Lossless is the length-prefixed lossless-partition section.
	Lossless []byte
}

// Sections parses the section boundaries of a serialized FedSZ stream
// without decoding any payloads — the sender-side half of wire framing.
func Sections(stream []byte) (*StreamSections, error) {
	if len(stream) < 5 || binary.LittleEndian.Uint32(stream) != streamMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if !supportedStreamVersion(stream[4]) {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, stream[4])
	}
	// v3 and v4 headers carry a reference epoch and per-section mode bytes
	// (v4 pins the epoch to 0 when no reference was used).
	hasMode := stream[4] == streamVersionV3 || stream[4] == streamVersionV4
	pos := 5
	var err error
	if _, pos, err = readString(stream, pos); err != nil { // lossy name
		return nil, err
	}
	if _, pos, err = readString(stream, pos); err != nil { // lossless name
		return nil, err
	}
	if hasMode {
		if pos+4 > len(stream) {
			return nil, ErrCorrupt
		}
		pos += 4 // reference epoch
	}
	if pos+4 > len(stream) {
		return nil, ErrCorrupt
	}
	count := int(binary.LittleEndian.Uint32(stream[pos:]))
	pos += 4
	if count > maxStreamEntries || pos+count > len(stream) {
		return nil, ErrCorrupt
	}
	nLossy := 0
	for _, f := range stream[pos : pos+count] {
		switch f {
		case pathLossy:
			nLossy++
		case pathLossless:
		default:
			return nil, ErrCorrupt
		}
	}
	pos += count

	s := &StreamSections{Header: stream[:pos], Tensors: make([][]byte, 0, nLossy)}
	for i := 0; i < nLossy; i++ {
		tStart := pos
		if _, pos, err = readString(stream, pos); err != nil { // tensor name
			return nil, err
		}
		if pos+2 > len(stream) {
			return nil, ErrCorrupt
		}
		rank := int(stream[pos+1])
		pos += 2
		if pos+4*rank > len(stream) {
			return nil, ErrCorrupt
		}
		pos += 4 * rank
		if hasMode {
			if pos >= len(stream) {
				return nil, ErrCorrupt
			}
			if m := stream[pos]; m != sectionAbsolute && m != sectionDelta {
				return nil, fmt.Errorf("%w: tensor section mode %d", ErrCorrupt, m)
			}
			pos++
		}
		if _, pos, err = ebcl.ReadSection(stream, pos); err != nil {
			return nil, fmt.Errorf("%w: lossy section %d: %w", ErrCorrupt, i, err)
		}
		s.Tensors = append(s.Tensors, stream[tStart:pos])
	}
	lStart := pos
	if _, pos, err = ebcl.ReadSection(stream, pos); err != nil {
		return nil, fmt.Errorf("%w: metadata section: %w", ErrCorrupt, err)
	}
	s.Lossless = stream[lStart:pos]
	return s, nil
}

// streamSource abstracts the decoder's input. The in-memory source serves
// zero-copy section views straight out of the stream (the batch server's
// hot path); the reader source receives sections into pooled buffers as
// the bytes arrive.
type streamSource interface {
	// readFull fills buf or fails with a corruption error naming what.
	readFull(buf []byte, what string) error
	// readString reads a length-prefixed name.
	readString(what string) (string, error)
	// readSection reads one uvarint-length-prefixed section, returning its
	// bytes and a release callback valid once the bytes are dead (recycles
	// pooled buffers; no-op for in-memory views).
	readSection(what string) ([]byte, func(), error)
	// wait reports time spent blocked on input.
	wait() time.Duration
}

// corruptRead maps read failures to ErrCorrupt: a stream that ends (or
// errors) mid-structure is malformed from the decoder's point of view.
func corruptRead(context string, err error) error {
	return fmt.Errorf("%w: %s: %v", ErrCorrupt, context, err)
}

func releaseNothing() {}

// byteSource decodes an in-memory stream with zero-copy section views.
type byteSource struct {
	data []byte
	pos  int
}

func (s *byteSource) readFull(buf []byte, what string) error {
	if s.pos+len(buf) > len(s.data) {
		return corruptRead(what, io.ErrUnexpectedEOF)
	}
	copy(buf, s.data[s.pos:])
	s.pos += len(buf)
	return nil
}

func (s *byteSource) readString(what string) (string, error) {
	str, pos, err := readString(s.data, s.pos)
	if err != nil {
		return "", fmt.Errorf("%w: %s", err, what)
	}
	s.pos = pos
	return str, nil
}

func (s *byteSource) readSection(what string) ([]byte, func(), error) {
	blob, pos, err := ebcl.ReadSection(s.data, s.pos)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %s: %w", ErrCorrupt, what, err)
	}
	s.pos = pos
	return blob, releaseNothing, nil
}

func (s *byteSource) wait() time.Duration { return 0 }

// readTracker measures time spent blocked in the underlying Read — the
// "waiting for the network" component of a streaming decode — and aborts
// promptly once the decode's context is cancelled: each Read checks the
// context first, so cancellation takes effect at the next chunk boundary
// even mid-section. (A Read already blocked on a dead socket is the
// transport layer's problem — flserve bounds those with read deadlines.)
type readTracker struct {
	r       io.Reader
	ctx     context.Context
	blocked time.Duration
}

func (t *readTracker) Read(p []byte) (int, error) {
	if err := t.ctx.Err(); err != nil {
		return 0, err
	}
	t0 := time.Now()
	n, err := t.r.Read(p)
	t.blocked += time.Since(t0)
	return n, err
}

// readerSource decodes an arriving stream, receiving each section into a
// pooled buffer that grows with the bytes actually received (a hostile
// length prefix cannot force a giant up-front allocation).
type readerSource struct {
	br      *bufio.Reader
	tracker *readTracker
}

func newReaderSource(ctx context.Context, r io.Reader) *readerSource {
	t := &readTracker{r: r, ctx: ctx}
	return &readerSource{br: bufio.NewReaderSize(t, 4096), tracker: t}
}

func (s *readerSource) readFull(buf []byte, what string) error {
	if _, err := io.ReadFull(s.br, buf); err != nil {
		return corruptRead(what, err)
	}
	return nil
}

func (s *readerSource) readString(what string) (string, error) {
	l, err := s.br.ReadByte()
	if err != nil {
		return "", corruptRead(what, err)
	}
	buf := make([]byte, int(l))
	if err := s.readFull(buf, what); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (s *readerSource) readSection(what string) ([]byte, func(), error) {
	l, err := binary.ReadUvarint(s.br)
	if err != nil {
		return nil, nil, corruptRead(what, err)
	}
	if l > maxSectionBytes {
		return nil, nil, fmt.Errorf("%w: %s: section length %d exceeds limit", ErrCorrupt, what, l)
	}
	buf, err := sched.ReadFullPooled(s.br, int(l))
	if err != nil {
		return nil, nil, corruptRead(what, err)
	}
	return buf, func() { sched.PutBytes(buf) }, nil
}

func (s *readerSource) wait() time.Duration { return s.tracker.blocked }

// DecompressFrom decodes a FedSZ stream incrementally from r on the
// process-wide shared pool: tensor i decodes while tensor i+1 is still
// being read, which on a socket means decode overlaps receive.
func DecompressFrom(r io.Reader) (*tensor.StateDict, *DecompressStats, error) {
	return DecompressFromWith(context.Background(), sched.Default(), r)
}

// DecompressFromOpts is DecompressFromWith with reference-aware decoding:
// v3 delta streams reconstruct residual sections against o.Reference (see
// DecodeOptions). v1/v2 streams ignore o entirely.
func DecompressFromOpts(ctx context.Context, pool *sched.Pool, r io.Reader, o DecodeOptions) (*tensor.StateDict, *DecompressStats, error) {
	return decompressSource(ctx, pool, newReaderSource(ctx, r), o)
}

// DecompressFromWith is DecompressFrom drawing decode parallelism from the
// given pool (nil runs serially). The reading goroutine submits each fully
// received blob to the pool and immediately returns to reading; when the
// pool budget is exhausted it decodes inline, which pauses reading — the
// per-connection backpressure that keeps a streaming server's peak memory
// bounded by its parallelism budget rather than its client count.
//
// Cancelling ctx aborts the decode: reads stop at the next chunk, pending
// decode workers exit before starting their blob, and the call returns
// ctx.Err() after the in-flight workers drain (no pool slot or pooled
// buffer is leaked).
func DecompressFromWith(ctx context.Context, pool *sched.Pool, r io.Reader) (*tensor.StateDict, *DecompressStats, error) {
	return decompressSource(ctx, pool, newReaderSource(ctx, r), DecodeOptions{})
}

// decompressSource is the one decoder behind every entry point.
func decompressSource(ctx context.Context, pool *sched.Pool, src streamSource, dopts DecodeOptions) (*tensor.StateDict, *DecompressStats, error) {
	start := time.Now()
	poolHits0, poolMisses0 := sched.BytePoolCounters()
	floatHits0, floatMisses0 := sched.FloatPoolCounters()
	recycled0 := sched.RecycledBytes()

	// failRead prefers the context's error over the read failure it caused:
	// a cancelled socket read otherwise surfaces as a corrupt-looking short
	// stream.
	failRead := func(err error) (*tensor.StateDict, *DecompressStats, error) {
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, cerr
		}
		return nil, nil, err
	}

	var hdr [5]byte
	if err := src.readFull(hdr[:], "header"); err != nil {
		return failRead(err)
	}
	if binary.LittleEndian.Uint32(hdr[:]) != streamMagic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if !supportedStreamVersion(hdr[4]) {
		return nil, nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, hdr[4])
	}
	// v3/v4 streams carry a reference epoch and per-section mode bytes;
	// only v4 streams may carry chunked tensor blobs (in v1–v3 a 0xFC
	// first byte is codec data and fails the codec's own magic check).
	hasMode := hdr[4] == streamVersionV3 || hdr[4] == streamVersionV4
	chunkedOK := hdr[4] == streamVersionV4
	lossyName, err := src.readString("lossy compressor name")
	if err != nil {
		return failRead(err)
	}
	losslessName, err := src.readString("lossless codec name")
	if err != nil {
		return failRead(err)
	}
	var refEpoch uint32
	if hasMode {
		var eb [4]byte
		if err := src.readFull(eb[:], "reference epoch"); err != nil {
			return failRead(err)
		}
		refEpoch = binary.LittleEndian.Uint32(eb[:])
	}
	lossy, err := compressors.Get(lossyName)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	codec, err := lossless.Get(losslessName)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var cnt [4]byte
	if err := src.readFull(cnt[:], "entry count"); err != nil {
		return failRead(err)
	}
	count := int(binary.LittleEndian.Uint32(cnt[:]))
	if count > maxStreamEntries {
		return nil, nil, fmt.Errorf("%w: entry count %d exceeds limit", ErrCorrupt, count)
	}
	flags := make([]byte, count)
	if err := src.readFull(flags, "path flags"); err != nil {
		return failRead(err)
	}
	nLossy := 0
	for _, f := range flags {
		switch f {
		case pathLossy:
			nLossy++
		case pathLossless:
		default:
			return nil, nil, ErrCorrupt
		}
	}

	// Pipelined receive + decode: the loop below reads section i+1 while
	// earlier sections decode on the pool. Decode durations accumulate into
	// decodeWork so OverlapRatio can report how much of that work was
	// hidden behind reading.
	type lossyEntry struct {
		name  string
		kind  tensor.Kind
		shape []int
		elems int
		data  []float32
		err   error
	}
	entries := make([]lossyEntry, nLossy)
	nDelta := 0
	var nChunked atomic.Int64
	var decodeWork atomic.Int64
	var rest *tensor.StateDict
	var restErr error
	g := pool.Group()
	// fail funnels every abort path through one place so cancellation wins
	// over the secondary errors it induces (a cancelled read surfaces as a
	// corrupt-looking short stream), in-flight workers always drain, and
	// already-decoded tensor buffers — lossy and metadata partitions both
	// — go back to the pool.
	fail := func(err error) (*tensor.StateDict, *DecompressStats, error) {
		g.Wait()
		for i := range entries {
			if entries[i].data != nil {
				sched.PutFloats(entries[i].data)
				entries[i].data = nil
			}
		}
		if rest != nil {
			Release(rest)
			rest = nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, cerr
		}
		return nil, nil, err
	}
	for i := 0; i < nLossy; i++ {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		e := &entries[i]
		if e.name, err = src.readString("tensor name"); err != nil {
			return fail(err)
		}
		var meta [2]byte
		if err := src.readFull(meta[:], "tensor metadata"); err != nil {
			return fail(err)
		}
		e.kind = tensor.Kind(meta[0])
		rank := int(meta[1])
		dims := make([]byte, 4*rank)
		if err := src.readFull(dims, "tensor shape"); err != nil {
			return fail(err)
		}
		e.shape = make([]int, rank)
		e.elems = 1
		for d := range e.shape {
			e.shape[d] = int(binary.LittleEndian.Uint32(dims[4*d:]))
			e.elems *= e.shape[d]
			if e.elems > ebcl.MaxElements {
				return fail(fmt.Errorf("%w: tensor %q element count exceeds limit", ErrCorrupt, e.name))
			}
		}
		// v3/v4 sections carry a mode byte; a residual section is only
		// decodable when this decoder holds the same-epoch baseline with a
		// matching tensor — anything else is a reference mismatch, not
		// corruption, so the sender can renegotiate an absolute upload.
		var refData []float32
		if hasMode {
			var mb [1]byte
			if err := src.readFull(mb[:], "tensor mode"); err != nil {
				return fail(err)
			}
			switch mb[0] {
			case sectionAbsolute:
			case sectionDelta:
				if dopts.Reference == nil {
					return fail(fmt.Errorf("%w: residual section %q but no reference supplied", ErrReference, e.name))
				}
				if dopts.RefEpoch != refEpoch {
					return fail(fmt.Errorf("%w: stream encoded against epoch %d, decoder holds %d", ErrReference, refEpoch, dopts.RefEpoch))
				}
				rt := dopts.Reference.Get(e.name)
				if rt == nil || rt.NumElems() != e.elems {
					return fail(fmt.Errorf("%w: reference lacks matching tensor %q", ErrReference, e.name))
				}
				refData = rt.Data
				nDelta++
			default:
				return fail(fmt.Errorf("%w: tensor %q section mode %d", ErrCorrupt, e.name, mb[0]))
			}
		}
		blob, release, err := src.readSection(fmt.Sprintf("lossy section %q", e.name))
		if err != nil {
			return fail(err)
		}
		g.Go(func() {
			if cerr := ctx.Err(); cerr != nil {
				release()
				e.err = cerr
				return
			}
			// The reconstruction lands straight in a pool-backed buffer
			// sized from the tensor's declared shape — the into-style half
			// of the codec contract. The buffer stays with the output dict;
			// a fold-and-discard server recycles it via core.Release. A
			// chunked (v4) blob fans its chunks back out on the pool, and a
			// residual section folds the baseline back in per chunk — the
			// decode half of the subtract/add pair.
			if chunkedOK && isChunkedBlob(blob) {
				nChunked.Add(1)
			}
			dst := sched.GetFloats(e.elems)
			data, derr := decodeBlobInto(pool, lossy, dst, blob, e.elems, chunkedOK, refData, &decodeWork)
			release()
			if derr != nil {
				sched.PutFloats(dst)
				e.err = fmt.Errorf("%w: lossy decompress %q: %w", ErrCorrupt, e.name, derr)
				return
			}
			e.data = data
		})
	}
	restBlob, restRelease, err := src.readSection("metadata section")
	if err != nil {
		return fail(err)
	}
	g.Go(func() {
		if cerr := ctx.Err(); cerr != nil {
			restRelease()
			restErr = cerr
			return
		}
		t0 := time.Now()
		restRaw, derr := codec.Decompress(restBlob)
		restRelease()
		if derr != nil {
			decodeWork.Add(int64(time.Since(t0)))
			restErr = fmt.Errorf("%w: lossless decompress: %w", ErrCorrupt, derr)
			return
		}
		rest, derr = tensor.UnmarshalStateDict(restRaw)
		decodeWork.Add(int64(time.Since(t0)))
		sched.PutBytes(restRaw)
		if derr != nil {
			restErr = fmt.Errorf("%w: metadata decode: %w", ErrCorrupt, derr)
		}
	})
	g.Wait()
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	if restErr != nil {
		return fail(restErr)
	}
	for i := range entries {
		if entries[i].err != nil {
			return fail(entries[i].err)
		}
	}

	// Re-interleave to the original order. Duplicate names (impossible in a
	// stream Compress produced, StateDict.Add would panic) mark corruption.
	out := tensor.NewStateDict()
	li, ri := 0, 0
	restEntries := rest.Entries()
	for _, f := range flags {
		if f == pathLossy {
			if li >= len(entries) {
				return fail(ErrCorrupt)
			}
			e := entries[li]
			li++
			if out.Get(e.name) != nil {
				return fail(fmt.Errorf("%w: duplicate tensor %q", ErrCorrupt, e.name))
			}
			out.Add(e.name, e.kind, tensor.FromData(e.data, e.shape...))
		} else {
			if ri >= len(restEntries) {
				return fail(ErrCorrupt)
			}
			e := restEntries[ri]
			ri++
			if out.Get(e.Name) != nil {
				return fail(fmt.Errorf("%w: duplicate tensor %q", ErrCorrupt, e.Name))
			}
			out.Add(e.Name, e.Kind, e.Tensor)
		}
	}
	poolHits1, poolMisses1 := sched.BytePoolCounters()
	floatHits1, floatMisses1 := sched.FloatPoolCounters()
	elapsed := time.Since(start)
	stageFor(lossyName).decode.Observe(elapsed.Seconds())
	return out, &DecompressStats{
		DecompressTime:  elapsed,
		ReadWait:        src.wait(),
		DecodeWork:      time.Duration(decodeWork.Load()),
		PoolHits:        poolHits1 - poolHits0,
		PoolMisses:      poolMisses1 - poolMisses0,
		FloatPoolHits:   floatHits1 - floatHits0,
		FloatPoolMisses: floatMisses1 - floatMisses0,
		BytesRecycled:   sched.RecycledBytes() - recycled0,
		DeltaTensors:    nDelta,
		ChunkedTensors:  int(nChunked.Load()),
	}, nil
}
