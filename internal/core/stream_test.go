package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/sched"
)

// trickleReader delivers at most chunk bytes per Read with a small delay —
// a stand-in for a slow socket.
type trickleReader struct {
	r     io.Reader
	chunk int
	delay time.Duration
}

func (t *trickleReader) Read(p []byte) (int, error) {
	if len(p) > t.chunk {
		p = p[:t.chunk]
	}
	if t.delay > 0 {
		time.Sleep(t.delay)
	}
	return t.r.Read(p)
}

func TestDecompressFromMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 512, 1 << 20} {
		got, stats, err := DecompressFrom(&trickleReader{r: bytes.NewReader(stream), chunk: chunk})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatalf("chunk %d: streaming decode differs from in-memory", chunk)
		}
		if stats.DecompressTime <= 0 || stats.DecodeWork <= 0 {
			t.Fatalf("chunk %d: stats not populated: %+v", chunk, stats)
		}
	}
}

func TestDecompressFromSlowReaderOverlapsDecode(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 34))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow := &trickleReader{r: bytes.NewReader(stream), chunk: 4096, delay: 200 * time.Microsecond}
	got, stats, err := DecompressFromWith(context.Background(), sched.NewPool(4), slow)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sd.Len() {
		t.Fatalf("decoded %d entries, want %d", got.Len(), sd.Len())
	}
	if stats.ReadWait <= 0 {
		t.Fatalf("slow reader recorded no read wait: %+v", stats)
	}
	if r := stats.OverlapRatio(); r < 0 || r > 1 {
		t.Fatalf("overlap ratio %v out of [0,1]", r)
	}
}

func TestDecompressFromTruncationFailsCleanly(t *testing.T) {
	rng := rand.New(rand.NewPCG(35, 36))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	step := len(stream)/100 + 1
	for l := 0; l < len(stream); l += step {
		if _, _, err := DecompressFrom(bytes.NewReader(stream[:l])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", l, err)
		}
	}
}

func TestDecompressFromRejectsHostileLengths(t *testing.T) {
	rng := rand.New(rand.NewPCG(37, 38))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Entry count far beyond the cap must be rejected before allocation.
	bad := append([]byte(nil), stream...)
	nameEnd := 5 + 1 + int(bad[5])
	nameEnd += 1 + int(bad[nameEnd])
	bad[nameEnd+2] = 0xFF // count high bytes
	bad[nameEnd+3] = 0xFF
	if _, _, err := DecompressFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile entry count: %v", err)
	}
}

func TestSectionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(39, 40))
	sd := modelDict(rng)
	stream, stats, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	secs, err := Sections(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(secs.Tensors) != stats.LossyTensors {
		t.Fatalf("%d tensor sections, want %d", len(secs.Tensors), stats.LossyTensors)
	}
	var rebuilt []byte
	rebuilt = append(rebuilt, secs.Header...)
	for _, ts := range secs.Tensors {
		rebuilt = append(rebuilt, ts...)
	}
	rebuilt = append(rebuilt, secs.Lossless...)
	if !bytes.Equal(rebuilt, stream) {
		t.Fatal("concatenated sections differ from the original stream")
	}
	// Each boundary must still decode when fed incrementally.
	got, _, err := DecompressFrom(bytes.NewReader(rebuilt))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != sd.Len() {
		t.Fatalf("decoded %d entries, want %d", got.Len(), sd.Len())
	}
}

func TestSectionsRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	sd := modelDict(rng)
	stream, _, err := Compress(sd, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"version", func(b []byte) []byte { b[4] ^= 0x55; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
	} {
		bad := tc.mutate(append([]byte(nil), stream...))
		if _, err := Sections(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", tc.name, err)
		}
	}
}

func TestOverlapRatioBounds(t *testing.T) {
	for _, tc := range []struct {
		name  string
		stats DecompressStats
		want  float64
	}{
		{"no-work", DecompressStats{DecompressTime: time.Second}, 0},
		{"serial", DecompressStats{DecompressTime: 3 * time.Second, ReadWait: 2 * time.Second, DecodeWork: time.Second}, 0},
		{"full-overlap", DecompressStats{DecompressTime: 2 * time.Second, ReadWait: 2 * time.Second, DecodeWork: time.Second}, 1},
		{"half", DecompressStats{DecompressTime: 2500 * time.Millisecond, ReadWait: 2 * time.Second, DecodeWork: time.Second}, 0.5},
	} {
		if got := tc.stats.OverlapRatio(); got != tc.want {
			t.Errorf("%s: overlap %v, want %v", tc.name, got, tc.want)
		}
	}
}
