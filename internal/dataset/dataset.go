// Package dataset synthesizes the image-classification workloads of the
// FedSZ evaluation. The real CIFAR-10 / Fashion-MNIST / Caltech101 corpora
// are not available offline, so each is replaced by a class-prototype
// generator with the same input dimensions and class counts (paper Table
// IV): every class owns a smooth random pattern, and samples are noisy,
// gain-jittered draws around it. The resulting task is genuinely learnable
// by convolutional networks, which is all the paper's accuracy experiments
// require (convergence behaviour with and without compression noise).
package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/tensor"
)

// Spec describes a dataset at paper scale (Table IV).
type Spec struct {
	Name       string
	Channels   int
	Height     int
	Width      int
	Classes    int
	NumSamples int // paper-reported corpus size
}

// Specs returns the three paper datasets in Table IV order.
func Specs() []Spec {
	return []Spec{
		{Name: "cifar10", Channels: 3, Height: 32, Width: 32, Classes: 10, NumSamples: 60000},
		{Name: "fmnist", Channels: 1, Height: 28, Width: 28, Classes: 10, NumSamples: 70000},
		{Name: "caltech101", Channels: 3, Height: 224, Width: 224, Classes: 101, NumSamples: 9000},
	}
}

// SpecFor returns the spec for a dataset name.
func SpecFor(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Config controls synthesis. Height/Width may be scaled down from the paper
// spec to keep pure-Go training tractable; the experiments document the
// scale they use.
type Config struct {
	Spec
	TrainN int
	TestN  int
	Seed   uint64
}

// ScaledConfig returns a training-tractable configuration for the named
// dataset: images capped at maxSide pixels, with trainN/testN samples.
func ScaledConfig(name string, maxSide, trainN, testN int, seed uint64) (Config, error) {
	spec, err := SpecFor(name)
	if err != nil {
		return Config{}, err
	}
	if spec.Height > maxSide {
		spec.Height = maxSide
	}
	if spec.Width > maxSide {
		spec.Width = maxSide
	}
	return Config{Spec: spec, TrainN: trainN, TestN: testN, Seed: seed}, nil
}

// Dataset is an in-memory labelled image set.
type Dataset struct {
	Spec   Spec
	X      *tensor.Tensor // [N, C, H, W]
	Labels []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Batch copies samples [lo,hi) into a fresh tensor (and label slice), the
// unit of work for one SGD step.
func (d *Dataset) Batch(lo, hi int) (*tensor.Tensor, []int) {
	c, h, w := d.Spec.Channels, d.Spec.Height, d.Spec.Width
	n := hi - lo
	x := tensor.New(n, c, h, w)
	copy(x.Data, d.X.Data[lo*c*h*w:hi*c*h*w])
	return x, d.Labels[lo:hi]
}

// Generate synthesizes train and test sets that share class prototypes.
func Generate(cfg Config) (train, test *Dataset) {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xDA7A))
	protos := makePrototypes(rng, cfg.Spec)
	train = sample(rng, cfg.Spec, protos, cfg.TrainN)
	test = sample(rng, cfg.Spec, protos, cfg.TestN)
	return train, test
}

// makePrototypes builds one smooth pattern per class and channel: a sum of
// a few random low-frequency plane waves, normalized to ±1.
func makePrototypes(rng *rand.Rand, spec Spec) []float32 {
	c, h, w := spec.Channels, spec.Height, spec.Width
	protos := make([]float32, spec.Classes*c*h*w)
	for cl := 0; cl < spec.Classes; cl++ {
		for ch := 0; ch < c; ch++ {
			base := (cl*c + ch) * h * w
			type wave struct{ fx, fy, phase, amp float64 }
			waves := make([]wave, 4)
			for i := range waves {
				waves[i] = wave{
					fx:    float64(rng.IntN(4) + 1),
					fy:    float64(rng.IntN(4) + 1),
					phase: rng.Float64() * 2 * math.Pi,
					amp:   0.4 + 0.6*rng.Float64(),
				}
			}
			var maxAbs float64
			vals := make([]float64, h*w)
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					var v float64
					for _, wv := range waves {
						v += wv.amp * math.Sin(2*math.Pi*(wv.fx*float64(x)/float64(w)+wv.fy*float64(y)/float64(h))+wv.phase)
					}
					vals[y*w+x] = v
					if a := math.Abs(v); a > maxAbs {
						maxAbs = a
					}
				}
			}
			if maxAbs == 0 {
				maxAbs = 1
			}
			for i, v := range vals {
				protos[base+i] = float32(v / maxAbs)
			}
		}
	}
	return protos
}

// sample draws n labelled images: prototype × gain + Gaussian noise.
func sample(rng *rand.Rand, spec Spec, protos []float32, n int) *Dataset {
	c, h, w := spec.Channels, spec.Height, spec.Width
	plane := c * h * w
	x := tensor.New(n, c, h, w)
	labels := make([]int, n)
	for s := 0; s < n; s++ {
		cl := rng.IntN(spec.Classes)
		labels[s] = cl
		gain := float32(0.7 + 0.6*rng.Float64())
		src := protos[cl*plane : (cl+1)*plane]
		dst := x.Data[s*plane : (s+1)*plane]
		for i := range dst {
			dst[i] = gain*src[i] + float32(0.35*rng.NormFloat64())
		}
	}
	return &Dataset{Spec: spec, X: x, Labels: labels}
}

// ShardIID splits a dataset into nClients equal IID shards (the paper uses
// IID FedAvg with four clients).
func ShardIID(d *Dataset, nClients int, seed uint64) []*Dataset {
	rng := rand.New(rand.NewPCG(seed, 0x5A4D))
	n := d.Len()
	perm := rng.Perm(n)
	per := n / nClients
	c, h, w := d.Spec.Channels, d.Spec.Height, d.Spec.Width
	plane := c * h * w
	out := make([]*Dataset, nClients)
	for cl := 0; cl < nClients; cl++ {
		x := tensor.New(per, c, h, w)
		labels := make([]int, per)
		for i := 0; i < per; i++ {
			src := perm[cl*per+i]
			copy(x.Data[i*plane:(i+1)*plane], d.X.Data[src*plane:(src+1)*plane])
			labels[i] = d.Labels[src]
		}
		out[cl] = &Dataset{Spec: d.Spec, X: x, Labels: labels}
	}
	return out
}

// gammaSample draws Gamma(alpha, 1) via Marsaglia–Tsang squeeze (with the
// alpha<1 boost), the building block for Dirichlet draws; math/rand/v2 has
// no gamma sampler.
func gammaSample(rng *rand.Rand, alpha float64) float64 {
	if alpha < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a)
		return gammaSample(rng, alpha+1) * math.Pow(rng.Float64(), 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// dirichlet draws one point from Dirichlet(alpha·1) over k categories.
func dirichlet(rng *rand.Rand, alpha float64, k int) []float64 {
	p := make([]float64, k)
	var sum float64
	for i := range p {
		p[i] = gammaSample(rng, alpha)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

// ShardDirichlet splits a dataset into nClients label-skewed shards: for
// each class, the samples are distributed across clients according to a
// Dirichlet(alpha) draw — the standard non-IID federated partitioning.
// Small alpha (e.g. 0.1) concentrates each class on a few clients; large
// alpha approaches IID. Deterministic for a given seed. Every client is
// guaranteed at least one sample (the largest shard donates when a
// Dirichlet draw starves one), so downstream training never sees an empty
// partition.
func ShardDirichlet(d *Dataset, nClients int, alpha float64, seed uint64) []*Dataset {
	rng := rand.New(rand.NewPCG(seed, 0xD141))
	n := d.Len()

	// Per-class sample indices, shuffled so assignment within a class is
	// random.
	byClass := make([][]int, d.Spec.Classes)
	for i, l := range d.Labels {
		byClass[l] = append(byClass[l], i)
	}
	assign := make([][]int, nClients)
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		p := dirichlet(rng, alpha, nClients)
		// Largest-remainder apportionment of len(idxs) samples over p.
		counts := make([]int, nClients)
		rem := make([]float64, nClients)
		used := 0
		for c := range counts {
			exact := p[c] * float64(len(idxs))
			counts[c] = int(exact)
			rem[c] = exact - float64(counts[c])
			used += counts[c]
		}
		for used < len(idxs) {
			best := 0
			for c := 1; c < nClients; c++ {
				if rem[c] > rem[best] {
					best = c
				}
			}
			counts[best]++
			rem[best] = -1
			used++
		}
		off := 0
		for c, cnt := range counts {
			assign[c] = append(assign[c], idxs[off:off+cnt]...)
			off += cnt
		}
	}

	// No client may end up empty: donate from the largest shard.
	for c := range assign {
		for len(assign[c]) == 0 {
			big := 0
			for j := range assign {
				if len(assign[j]) > len(assign[big]) {
					big = j
				}
			}
			if len(assign[big]) < 2 {
				break
			}
			last := len(assign[big]) - 1
			assign[c] = append(assign[c], assign[big][last])
			assign[big] = assign[big][:last]
		}
	}

	c, h, w := d.Spec.Channels, d.Spec.Height, d.Spec.Width
	plane := c * h * w
	out := make([]*Dataset, nClients)
	total := 0
	for cl, idxs := range assign {
		x := tensor.New(len(idxs), c, h, w)
		labels := make([]int, len(idxs))
		for i, src := range idxs {
			copy(x.Data[i*plane:(i+1)*plane], d.X.Data[src*plane:(src+1)*plane])
			labels[i] = d.Labels[src]
		}
		out[cl] = &Dataset{Spec: d.Spec, X: x, Labels: labels}
		total += len(idxs)
	}
	if total != n {
		panic("dataset: Dirichlet shard dropped samples")
	}
	return out
}
