package dataset

import (
	"math"
	"testing"
)

func TestSpecsMatchTable4(t *testing.T) {
	specs := Specs()
	if len(specs) != 3 {
		t.Fatal("want 3 datasets")
	}
	want := map[string][4]int{ // classes, samples, H, C
		"cifar10":    {10, 60000, 32, 3},
		"fmnist":     {10, 70000, 28, 1},
		"caltech101": {101, 9000, 224, 3},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			t.Fatalf("unexpected dataset %q", s.Name)
		}
		if s.Classes != w[0] || s.NumSamples != w[1] || s.Height != w[2] || s.Channels != w[3] {
			t.Errorf("%s spec drifted: %+v", s.Name, s)
		}
	}
	if _, err := SpecFor("imagenet"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestScaledConfigCaps(t *testing.T) {
	cfg, err := ScaledConfig("caltech101", 32, 100, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Height != 32 || cfg.Width != 32 {
		t.Fatalf("caltech not scaled: %dx%d", cfg.Height, cfg.Width)
	}
	if cfg.Classes != 101 {
		t.Fatal("class count must not change when scaling")
	}
	cfg2, _ := ScaledConfig("fmnist", 32, 10, 10, 1)
	if cfg2.Height != 28 {
		t.Fatal("fmnist should keep native 28px under a 32px cap")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg, _ := ScaledConfig("cifar10", 16, 64, 32, 7)
	tr1, te1 := Generate(cfg)
	tr2, te2 := Generate(cfg)
	if tr1.Len() != 64 || te1.Len() != 32 {
		t.Fatalf("sizes %d/%d", tr1.Len(), te1.Len())
	}
	for i := range tr1.X.Data {
		if tr1.X.Data[i] != tr2.X.Data[i] {
			t.Fatal("generation not deterministic")
		}
	}
	for i := range te1.Labels {
		if te1.Labels[i] != te2.Labels[i] {
			t.Fatal("labels not deterministic")
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Same-class samples must be closer to their prototype than to other
	// classes' samples on average (otherwise nothing can learn the task).
	cfg, _ := ScaledConfig("cifar10", 16, 200, 1, 3)
	tr, _ := Generate(cfg)
	plane := cfg.Channels * cfg.Height * cfg.Width
	// Class means.
	sums := make([][]float64, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for i := range sums {
		sums[i] = make([]float64, plane)
	}
	for s := 0; s < tr.Len(); s++ {
		cl := tr.Labels[s]
		counts[cl]++
		for i := 0; i < plane; i++ {
			sums[cl][i] += float64(tr.X.Data[s*plane+i])
		}
	}
	// Nearest-centroid classification should beat chance handily.
	correct := 0
	for s := 0; s < tr.Len(); s++ {
		best, bestD := -1, math.Inf(1)
		for cl := 0; cl < cfg.Classes; cl++ {
			if counts[cl] == 0 {
				continue
			}
			var d float64
			for i := 0; i < plane; i++ {
				diff := float64(tr.X.Data[s*plane+i]) - sums[cl][i]/float64(counts[cl])
				d += diff * diff
			}
			if d < bestD {
				best, bestD = cl, d
			}
		}
		if best == tr.Labels[s] {
			correct++
		}
	}
	acc := float64(correct) / float64(tr.Len())
	if acc < 0.6 {
		t.Fatalf("nearest-centroid accuracy %.2f, dataset not separable", acc)
	}
}

func TestShardIID(t *testing.T) {
	cfg, _ := ScaledConfig("cifar10", 16, 100, 1, 5)
	tr, _ := Generate(cfg)
	shards := ShardIID(tr, 4, 9)
	if len(shards) != 4 {
		t.Fatal("want 4 shards")
	}
	total := 0
	for _, s := range shards {
		if s.Len() != 25 {
			t.Fatalf("shard size %d want 25", s.Len())
		}
		total += s.Len()
	}
	if total != 100 {
		t.Fatalf("shards cover %d of 100", total)
	}
}

func TestBatch(t *testing.T) {
	cfg, _ := ScaledConfig("fmnist", 16, 10, 1, 2)
	tr, _ := Generate(cfg)
	x, labels := tr.Batch(2, 5)
	if x.Shape[0] != 3 || len(labels) != 3 {
		t.Fatalf("batch shape %v labels %d", x.Shape, len(labels))
	}
	// Batch copies: mutating the batch must not touch the dataset.
	orig := tr.X.Data[2*cfg.Channels*cfg.Height*cfg.Width]
	x.Data[0] += 100
	if tr.X.Data[2*cfg.Channels*cfg.Height*cfg.Width] != orig {
		t.Fatal("Batch must copy")
	}
}

func TestScientificFieldIsSmooth(t *testing.T) {
	field := ScientificField(1, 4096)
	s := Smoothness(field)
	if s > 0.01 {
		t.Fatalf("scientific field smoothness %.4f, want < 0.01", s)
	}
	// Determinism.
	f2 := ScientificField(1, 4096)
	for i := range field {
		if field[i] != f2[i] {
			t.Fatal("field not deterministic")
		}
	}
}

func TestSmoothnessMetric(t *testing.T) {
	if Smoothness(nil) != 0 || Smoothness([]float32{1}) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
	flat := []float32{2, 2, 2, 2}
	if Smoothness(flat) != 0 {
		t.Fatal("constant should be perfectly smooth")
	}
	spiky := []float32{0, 1, 0, 1, 0, 1}
	smooth := []float32{0, 0.2, 0.4, 0.6, 0.8, 1}
	if Smoothness(spiky) <= Smoothness(smooth) {
		t.Fatal("spiky data must score higher than smooth data")
	}
}

// TestShardDirichlet checks the non-IID partitioner: conservation (every
// sample lands on exactly one client), determinism per seed, no empty
// shards, and that small alpha is measurably more label-skewed than large
// alpha.
func TestShardDirichlet(t *testing.T) {
	cfg, err := ScaledConfig("cifar10", 8, 400, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	train, _ := Generate(cfg)

	// Mean per-client label-distribution distance from uniform-share, the
	// skew statistic: 0 for a perfectly proportional split.
	skew := func(shards []*Dataset) float64 {
		var total float64
		classes := train.Spec.Classes
		overall := make([]float64, classes)
		for _, l := range train.Labels {
			overall[l]++
		}
		for _, s := range shards {
			counts := make([]float64, classes)
			for _, l := range s.Labels {
				counts[l]++
			}
			for c := 0; c < classes; c++ {
				want := overall[c] * float64(s.Len()) / float64(train.Len())
				total += math.Abs(counts[c] - want)
			}
		}
		return total / float64(train.Len())
	}

	for _, alpha := range []float64{0.1, 100} {
		shards := ShardDirichlet(train, 4, alpha, 7)
		if len(shards) != 4 {
			t.Fatalf("alpha=%v: %d shards", alpha, len(shards))
		}
		n := 0
		for i, s := range shards {
			if s.Len() == 0 {
				t.Fatalf("alpha=%v: shard %d empty", alpha, i)
			}
			n += s.Len()
		}
		if n != train.Len() {
			t.Fatalf("alpha=%v: %d samples across shards, want %d", alpha, n, train.Len())
		}
	}

	lo, hi := skew(ShardDirichlet(train, 4, 0.1, 7)), skew(ShardDirichlet(train, 4, 100, 7))
	if lo < 2*hi {
		t.Fatalf("alpha=0.1 skew %.3f not clearly above alpha=100 skew %.3f", lo, hi)
	}

	// Determinism: same seed → identical partition; different seed differs.
	a := ShardDirichlet(train, 4, 0.5, 9)
	b := ShardDirichlet(train, 4, 0.5, 9)
	for i := range a {
		if len(a[i].Labels) != len(b[i].Labels) {
			t.Fatalf("seed-stable split differs on shard %d", i)
		}
		for j := range a[i].Labels {
			if a[i].Labels[j] != b[i].Labels[j] {
				t.Fatalf("seed-stable split differs on shard %d sample %d", i, j)
			}
		}
	}
}
