package dataset

import (
	"math"
	"math/rand/v2"
)

// ScientificField synthesizes a smooth 1-D slice shaped like the MIRANDA
// hydrodynamics snapshots of paper Figure 2(b): a band-limited multi-scale
// signal with a slow drift, standing in for the SDRBench data that is not
// available offline. Its defining property — high local smoothness relative
// to FL weight data — is what Figure 2 contrasts.
func ScientificField(seed uint64, n int) []float32 {
	rng := rand.New(rand.NewPCG(seed, 0x5C1F))
	out := make([]float32, n)
	type mode struct{ freq, phase, amp float64 }
	modes := make([]mode, 8)
	for i := range modes {
		modes[i] = mode{
			freq:  math.Pow(2, float64(i))/2 + rng.Float64(),
			phase: rng.Float64() * 2 * math.Pi,
			amp:   2 / math.Pow(1.8, float64(i)), // red spectrum: energy at low freq
		}
	}
	drift := rng.Float64()*2 - 1
	for i := range out {
		x := float64(i) / float64(n)
		v := 2.5 + drift*x
		for _, m := range modes {
			v += m.amp * math.Sin(2*math.Pi*m.freq*x+m.phase)
		}
		out[i] = float32(v)
	}
	return out
}

// Smoothness returns the mean absolute first difference divided by the
// value range — the metric the Figure 2 experiment uses to quantify
// "spiky vs smooth". Lower is smoother.
func Smoothness(data []float32) float64 {
	if len(data) < 2 {
		return 0
	}
	min, max := data[0], data[0]
	var sum float64
	for i := 1; i < len(data); i++ {
		sum += math.Abs(float64(data[i]) - float64(data[i-1]))
		if data[i] < min {
			min = data[i]
		}
		if data[i] > max {
			max = data[i]
		}
	}
	r := float64(max) - float64(min)
	if r == 0 {
		return 0
	}
	return sum / float64(len(data)-1) / r
}
