package delta

// Controller closes the loop on the error bound: the paper tunes REL 1e-2
// offline as the sweet spot between wire cost and accuracy; the controller
// retunes it online, per round, from signals the pipeline already produces
// (bytes on the wire from Stats, accuracy from Federation.Evaluate),
// multiplicatively stepping the bound toward a target bytes-per-round while
// never crossing an accuracy floor.

import (
	"fmt"

	"repro/internal/ebcl"
)

// ControllerConfig bounds and paces the adjustment loop. TargetBytes and
// AccuracyFloor are the two objectives; at least one must be set.
type ControllerConfig struct {
	// TargetBytes is the bytes-per-round budget: observed wire bytes above
	// it loosen the bound (more compression), bytes comfortably below it
	// tighten the bound (better fidelity for free). Zero disables the
	// budget objective.
	TargetBytes int
	// AccuracyFloor tightens the bound whenever observed accuracy falls
	// below it, overriding the byte budget — accuracy is the constraint,
	// bytes the objective. Zero disables the floor.
	AccuracyFloor float64
	// Min and Max clamp the bound value. Zero values default to
	// [initial/64, initial×64].
	Min, Max float64
	// Step is the multiplicative adjustment factor (> 1). Zero defaults
	// to 1.25 — fast enough to cross the default clamp range in a dozen
	// rounds, slow enough not to oscillate around the target.
	Step float64
	// Deadband is the fraction below TargetBytes treated as on-target, so
	// the controller doesn't chase the noise between rounds. Zero defaults
	// to 0.15.
	Deadband float64
}

// Adjustment reports one Observe decision for tracing.
type Adjustment struct {
	Changed  bool
	Old, New float64
	// Reason is one of "accuracy_floor", "over_budget", "headroom",
	// "steady".
	Reason string
}

// Controller adapts a REL or ABS error bound round over round. It is not
// safe for concurrent use; RunRound drives it from the round loop.
type Controller struct {
	params ebcl.Params
	cfg    ControllerConfig
}

// NewController starts the loop at initial (the bound the codec was built
// with). PREC has no error bound to tune and is rejected.
func NewController(initial ebcl.Params, cfg ControllerConfig) (*Controller, error) {
	if initial.Mode != ebcl.ModeRelative && initial.Mode != ebcl.ModeAbsolute {
		return nil, fmt.Errorf("delta: controller requires a REL or ABS bound, got mode %v", initial.Mode)
	}
	if initial.Value <= 0 {
		return nil, fmt.Errorf("delta: controller initial bound must be positive, got %g", initial.Value)
	}
	if cfg.TargetBytes <= 0 && cfg.AccuracyFloor <= 0 {
		return nil, fmt.Errorf("delta: controller needs TargetBytes or AccuracyFloor")
	}
	if cfg.Step == 0 {
		cfg.Step = 1.25
	}
	if cfg.Step <= 1 {
		return nil, fmt.Errorf("delta: controller step must be > 1, got %g", cfg.Step)
	}
	if cfg.Deadband == 0 {
		cfg.Deadband = 0.15
	}
	if cfg.Deadband < 0 || cfg.Deadband >= 1 {
		return nil, fmt.Errorf("delta: controller deadband must be in [0, 1), got %g", cfg.Deadband)
	}
	if cfg.Min == 0 {
		cfg.Min = initial.Value / 64
	}
	if cfg.Max == 0 {
		cfg.Max = initial.Value * 64
	}
	if cfg.Min <= 0 || cfg.Max < cfg.Min {
		return nil, fmt.Errorf("delta: controller clamp [%g, %g] invalid", cfg.Min, cfg.Max)
	}
	return &Controller{params: initial, cfg: cfg}, nil
}

// Params returns the current error-control parameters to compress the next
// round with.
func (c *Controller) Params() ebcl.Params { return c.params }

// Observe feeds one round's outcome — total bytes on the wire and the
// evaluated global accuracy (pass a negative accuracy when no evaluation
// ran) — and steps the bound: below the accuracy floor tighten; over the
// byte budget loosen; comfortably under budget tighten to spend the
// headroom on fidelity; otherwise hold.
func (c *Controller) Observe(wireBytes int, accuracy float64) Adjustment {
	adj := Adjustment{Old: c.params.Value, New: c.params.Value, Reason: "steady"}
	switch {
	case c.cfg.AccuracyFloor > 0 && accuracy >= 0 && accuracy < c.cfg.AccuracyFloor:
		adj.New, adj.Reason = c.params.Value/c.cfg.Step, "accuracy_floor"
	case c.cfg.TargetBytes > 0 && wireBytes > c.cfg.TargetBytes:
		adj.New, adj.Reason = c.params.Value*c.cfg.Step, "over_budget"
	case c.cfg.TargetBytes > 0 && float64(wireBytes) < float64(c.cfg.TargetBytes)*(1-c.cfg.Deadband):
		adj.New, adj.Reason = c.params.Value/c.cfg.Step, "headroom"
	}
	adj.New = min(max(adj.New, c.cfg.Min), c.cfg.Max)
	adj.Changed = adj.New != adj.Old
	if !adj.Changed && adj.Reason != "steady" {
		// Clamped back to where it was: report the hold, not the intent.
		adj.Reason = "steady"
	}
	c.params.Value = adj.New
	return adj
}
