// Package delta implements cross-round delta compression for federated
// learning: round-t model updates are temporally correlated with the
// previous global model, which both ends of the wire already hold, so
// encoding the residual update − reference under the same error bound
// shrinks bytes-per-round — the paper's core cost metric — without touching
// the error contract (the reference is bit-identical at both ends, so the
// reconstruction error on the original data is exactly the residual's
// encoding error).
//
// The package provides the pieces the pipeline layers compose:
//
//   - Ref: the retained-reference holder transports embed
//     (fl.FedSZTransport, fl.NetTransport) and servers consume via
//     Provider (flserve.Config.RefProvider). The session-oriented
//     fedsz.DeltaCodec layers the same holder over a fedsz.Codec.
//   - Controller: a closed-loop tuner that retunes the REL/ABS error bound
//     each round toward a target bytes-per-round or an accuracy floor,
//     using the stats the pipeline already emits.
package delta

import (
	"sync"

	"repro/internal/tensor"
)

// Ref holds a retained cross-round reference: a deep copy of the last
// broadcast global state plus a monotonically increasing epoch that both
// ends use to verify they agree on the baseline. Set is called at round
// boundaries (it reuses the previous copy's pooled storage when shapes
// match); Get may be called concurrently with other Gets, but not with a
// Set — the round structure of RunRound guarantees that.
type Ref struct {
	mu    sync.Mutex
	sd    *tensor.StateDict
	epoch uint32
}

// Set retains a deep copy of sd as the new reference and returns the new
// epoch. The copy lands in the previous reference's storage when
// structurally compatible, so steady-state rounds allocate nothing.
func (r *Ref) Set(sd *tensor.StateDict) uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sd = sd.CloneInto(r.sd)
	r.epoch++
	return r.epoch
}

// Get returns the retained reference and its epoch; ok is false before the
// first Set. The returned dict is shared — read-only for the caller.
func (r *Ref) Get() (*tensor.StateDict, uint32, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sd, r.epoch, r.sd != nil
}

// Provider adapts the holder to flserve.Config.RefProvider: it returns the
// retained dict only for the exact epoch currently held, so a client that
// negotiated a stale epoch is steered to absolute uploads.
func (r *Ref) Provider() func(epoch uint32) *tensor.StateDict {
	return func(epoch uint32) *tensor.StateDict {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.sd != nil && epoch == r.epoch {
			return r.sd
		}
		return nil
	}
}

