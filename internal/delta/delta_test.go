package delta

import (
	"testing"

	"repro/internal/ebcl"
	"repro/internal/tensor"
)

func dict(vals ...float32) *tensor.StateDict {
	sd := tensor.NewStateDict()
	sd.Add("w", tensor.KindWeight, tensor.FromData(vals, len(vals)))
	return sd
}

func TestRefEpochAndProvider(t *testing.T) {
	var r Ref
	if _, _, ok := r.Get(); ok {
		t.Fatal("empty Ref reports a reference")
	}
	if got := r.Provider()(0); got != nil {
		t.Fatal("empty Ref provider returned a dict")
	}

	src := dict(1, 2, 3)
	if e := r.Set(src); e != 1 {
		t.Fatalf("first Set epoch %d, want 1", e)
	}
	// The holder keeps a copy: mutating the source must not leak through.
	src.Get("w").Data[0] = 99
	sd, epoch, ok := r.Get()
	if !ok || epoch != 1 {
		t.Fatalf("Get = (%v, %d), want (ok, 1)", ok, epoch)
	}
	if sd.Get("w").Data[0] != 1 {
		t.Fatal("Ref shares storage with the caller's dict")
	}

	p := r.Provider()
	if p(1) == nil {
		t.Fatal("provider refused the current epoch")
	}
	if p(0) != nil || p(2) != nil {
		t.Fatal("provider served a stale epoch")
	}
	if e := r.Set(dict(4, 5, 6)); e != 2 {
		t.Fatalf("second Set epoch %d, want 2", e)
	}
	if p(1) != nil {
		t.Fatal("provider served epoch 1 after the reference advanced")
	}
	if got := p(2); got == nil || got.Get("w").Data[0] != 4 {
		t.Fatal("provider did not serve the advanced reference")
	}
}

func TestControllerValidation(t *testing.T) {
	cfg := ControllerConfig{TargetBytes: 1000}
	if _, err := NewController(ebcl.Precision(16), cfg); err == nil {
		t.Fatal("PREC accepted — it has no bound to tune")
	}
	if _, err := NewController(ebcl.Rel(0), cfg); err == nil {
		t.Fatal("non-positive bound accepted")
	}
	if _, err := NewController(ebcl.Rel(1e-2), ControllerConfig{}); err == nil {
		t.Fatal("config with neither objective accepted")
	}
	if _, err := NewController(ebcl.Rel(1e-2), ControllerConfig{TargetBytes: 1, Step: 0.5}); err == nil {
		t.Fatal("step <= 1 accepted")
	}
}

func TestControllerObjectives(t *testing.T) {
	c, err := NewController(ebcl.Rel(1e-2), ControllerConfig{
		TargetBytes:   1000,
		AccuracyFloor: 0.5,
		Step:          2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Over budget with healthy accuracy: loosen.
	adj := c.Observe(2000, 0.9)
	if !adj.Changed || adj.Reason != "over_budget" || adj.New != 2e-2 {
		t.Fatalf("over budget: %+v", adj)
	}
	if c.Params().Value != 2e-2 {
		t.Fatalf("params not applied: %g", c.Params().Value)
	}

	// Accuracy below the floor overrides the byte budget: tighten even
	// while over budget.
	adj = c.Observe(2000, 0.4)
	if adj.Reason != "accuracy_floor" || adj.New != 1e-2 {
		t.Fatalf("accuracy floor: %+v", adj)
	}

	// Comfortably under budget: tighten to spend the headroom.
	adj = c.Observe(100, 0.9)
	if adj.Reason != "headroom" || adj.New != 5e-3 {
		t.Fatalf("headroom: %+v", adj)
	}

	// Inside the deadband: hold.
	adj = c.Observe(900, 0.9)
	if adj.Changed || adj.Reason != "steady" {
		t.Fatalf("deadband: %+v", adj)
	}

	// Negative accuracy means "no evaluation ran" — the floor must not
	// fire.
	adj = c.Observe(900, -1)
	if adj.Reason != "steady" {
		t.Fatalf("no-eval round: %+v", adj)
	}
}

func TestControllerClamp(t *testing.T) {
	c, err := NewController(ebcl.Abs(1e-3), ControllerConfig{
		TargetBytes: 1000, Step: 10, Min: 1e-4, Max: 1e-2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two loosening rounds: the second must clamp at Max and report steady.
	if adj := c.Observe(5000, -1); adj.New != 1e-2 {
		t.Fatalf("first loosen: %+v", adj)
	}
	if adj := c.Observe(5000, -1); adj.Changed || adj.Reason != "steady" {
		t.Fatalf("clamped loosen not reported steady: %+v", adj)
	}
	// Tighten straight into the Min clamp.
	c2, _ := NewController(ebcl.Abs(2e-4), ControllerConfig{TargetBytes: 1000, Step: 10, Min: 1e-4, Max: 1e-2})
	if adj := c2.Observe(10, -1); adj.New != 1e-4 {
		t.Fatalf("tighten clamp: %+v", adj)
	}
}
