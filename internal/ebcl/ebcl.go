// Package ebcl defines the shared machinery for the error-bounded lossy
// compressors (EBLCs) evaluated by FedSZ: the Compressor interface, error
// bound modes, the linear quantizer used by the prediction-based compressors
// (SZ2, SZ3), and verification helpers.
//
// Error bound semantics follow the SZ convention: a *relative* bound eb
// means the absolute reconstruction error of every element is at most
// eb × (max − min) of the input array. This global value-range
// interpretation is load-bearing for reproducing the paper: model weights
// cluster near zero inside a ±1 envelope, so a relative bound of 1e-2
// translates to a sizeable absolute bound around the near-zero mass.
package ebcl

import (
	"errors"
	"fmt"
	"math"
)

// Mode selects how the bound parameter is interpreted.
type Mode uint8

const (
	// ModeRelative bounds error by Value × (max − min) of the input.
	ModeRelative Mode = iota
	// ModeAbsolute bounds error by Value directly.
	ModeAbsolute
	// ModeFixedPrecision keeps int(Value) bit planes per value (ZFP's
	// closest analogue to a relative mode, per the paper §V-D1).
	ModeFixedPrecision
)

// String returns the mode's conventional name.
func (m Mode) String() string {
	switch m {
	case ModeRelative:
		return "REL"
	case ModeAbsolute:
		return "ABS"
	case ModeFixedPrecision:
		return "PREC"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Params carries the error-control configuration for one compression call.
type Params struct {
	Mode  Mode
	Value float64 // bound for REL/ABS; plane count for PREC
}

// Rel is shorthand for a relative error bound.
func Rel(eb float64) Params { return Params{Mode: ModeRelative, Value: eb} }

// Abs is shorthand for an absolute error bound.
func Abs(eb float64) Params { return Params{Mode: ModeAbsolute, Value: eb} }

// Precision is shorthand for ZFP-style fixed precision.
func Precision(bits int) Params { return Params{Mode: ModeFixedPrecision, Value: float64(bits)} }

// ErrCorrupt is returned when a compressed stream fails validation.
var ErrCorrupt = errors.New("ebcl: corrupt compressed stream")

// PredictorBlockElems is the element granularity of the prediction-based
// compressors' internal structure: SZ2 partitions its input into blocks of
// exactly this many elements (per-block Lorenzo-vs-regression selection),
// and SZ3's interpolation levels are derived from the array length. The
// core pipeline's intra-tensor chunking (stream-format v4) aligns chunk
// boundaries to this grid so splitting a tensor never changes a block's
// predictor inputs — each chunk is then a complete, independently
// decodable stream of the same codec.
const PredictorBlockElems = 256

// Compressor is an error-bounded lossy compressor over 1-D float32 arrays
// (FL model updates are flattened before compression, paper Algorithm 1).
//
// The contract is append/into-style so a steady-state pipeline never
// allocates at the lossy boundary: CompressAppend extends a caller-supplied
// (typically pool-recycled) byte buffer, and DecompressInto reconstructs
// into a caller-supplied float32 buffer sized via DecodedLen. The appended
// or reconstructed bytes must be identical regardless of dst's prior
// contents or capacity, and the result must alias neither the input nor any
// retained state — the caller may recycle both sides through the sched
// buffer pools. Implementations must be safe for concurrent use: the core
// pipeline encodes and decodes many tensors on one Compressor value in
// parallel.
//
// Compress and Decompress remain as one-shot conveniences; implementations
// provide them as thin wrappers over the append/into pair (nil dst).
// Pre-zero-copy codecs that only have the one-shot pair implement
// BasicCompressor instead and are promoted with Adapt.
type Compressor interface {
	// Name returns the compressor's registry name ("sz2", "sz3", ...).
	Name() string
	// CompressAppend encodes data under the given error-control parameters,
	// appending the stream to dst (which may be nil) and returning the
	// extended slice, like append.
	CompressAppend(dst []byte, data []float32, p Params) ([]byte, error)
	// DecompressInto reconstructs the (lossy) array into dst's storage: the
	// result has length DecodedLen(stream), reuses dst's backing array when
	// its capacity suffices (dst's length and prior contents are ignored),
	// and is freshly allocated otherwise. On error the returned slice is nil
	// and dst is unretained.
	DecompressInto(dst []float32, stream []byte) ([]float32, error)
	// DecodedLen reports the element count Decompress would produce — the
	// header probe callers use to size dst from a pool before decoding.
	DecodedLen(stream []byte) (int, error)
	// Compress encodes data into a freshly allocated buffer
	// (CompressAppend with a nil dst).
	Compress(data []float32, p Params) ([]byte, error)
	// Decompress reconstructs into a freshly allocated buffer
	// (DecompressInto with a nil dst).
	Decompress(stream []byte) ([]float32, error)
}

// BasicCompressor is the pre-zero-copy compressor shape: one-shot calls
// returning freshly allocated buffers. Third-party codecs registered via
// compressors.Register may still implement only this; Adapt promotes one to
// the full Compressor contract.
type BasicCompressor interface {
	Name() string
	Compress(data []float32, p Params) ([]byte, error)
	Decompress(stream []byte) ([]float32, error)
}

// Adapt promotes a BasicCompressor to the full zero-copy contract. A codec
// that already implements Compressor is returned unchanged; otherwise the
// adapter routes CompressAppend/DecompressInto through the one-shot calls
// plus a copy, and DecodedLen through a full decode — correct for any
// legacy codec, at legacy cost.
func Adapt(c BasicCompressor) Compressor {
	if full, ok := c.(Compressor); ok {
		return full
	}
	return adapted{c}
}

type adapted struct{ BasicCompressor }

func (a adapted) CompressAppend(dst []byte, data []float32, p Params) ([]byte, error) {
	blob, err := a.BasicCompressor.Compress(data, p)
	if err != nil {
		return nil, err
	}
	return append(dst, blob...), nil
}

func (a adapted) DecompressInto(dst []float32, stream []byte) ([]float32, error) {
	out, err := a.BasicCompressor.Decompress(stream)
	if err != nil {
		return nil, err
	}
	dst = GrowFloats(dst, len(out))
	copy(dst, out)
	return dst, nil
}

func (a adapted) DecodedLen(stream []byte) (int, error) {
	out, err := a.BasicCompressor.Decompress(stream)
	if err != nil {
		return 0, err
	}
	return len(out), nil
}

// GrowFloats returns a slice of length n backed by dst's array when
// cap(dst) >= n and freshly allocated otherwise — the dst-sizing step of
// every DecompressInto implementation. Contents are unspecified; callers
// overwrite every element.
func GrowFloats(dst []float32, n int) []float32 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float32, n)
}

// ValueRange returns max − min of data (0 for empty input).
func ValueRange(data []float32) float64 {
	if len(data) == 0 {
		return 0
	}
	min, max := data[0], data[0]
	for _, v := range data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return float64(max) - float64(min)
}

// ResolveAbs converts p into an absolute error bound for data. For
// ModeFixedPrecision it returns 0 (no formal bound).
func ResolveAbs(data []float32, p Params) (float64, error) {
	switch p.Mode {
	case ModeRelative:
		if p.Value <= 0 {
			return 0, fmt.Errorf("ebcl: relative bound must be positive, got %g", p.Value)
		}
		r := ValueRange(data)
		if math.IsNaN(r) || math.IsInf(r, 0) {
			// NaN/Inf in the data makes the value range — and therefore a
			// range-relative bound — undefined; the caller must use ABS.
			return 0, fmt.Errorf("ebcl: relative bound undefined for non-finite data (range %g); use an absolute bound", r)
		}
		return p.Value * r, nil
	case ModeAbsolute:
		if p.Value <= 0 {
			return 0, fmt.Errorf("ebcl: absolute bound must be positive, got %g", p.Value)
		}
		return p.Value, nil
	case ModeFixedPrecision:
		if p.Value < 1 || p.Value > 32 {
			return 0, fmt.Errorf("ebcl: precision must be in [1,32], got %g", p.Value)
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("ebcl: unknown mode %v", p.Mode)
	}
}

// MaxAbsError returns the largest |a[i]−b[i]|; the slices must be equal
// length.
func MaxAbsError(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ebcl: length mismatch %d != %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// WithinBound reports whether every reconstructed value is within ebAbs of
// the original, with a tiny epsilon slack for float32 rounding.
func WithinBound(orig, recon []float32, ebAbs float64) bool {
	return MaxAbsError(orig, recon) <= ebAbs*(1+1e-6)+1e-12
}
