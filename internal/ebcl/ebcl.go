// Package ebcl defines the shared machinery for the error-bounded lossy
// compressors (EBLCs) evaluated by FedSZ: the Compressor interface, error
// bound modes, the linear quantizer used by the prediction-based compressors
// (SZ2, SZ3), and verification helpers.
//
// Error bound semantics follow the SZ convention: a *relative* bound eb
// means the absolute reconstruction error of every element is at most
// eb × (max − min) of the input array. This global value-range
// interpretation is load-bearing for reproducing the paper: model weights
// cluster near zero inside a ±1 envelope, so a relative bound of 1e-2
// translates to a sizeable absolute bound around the near-zero mass.
package ebcl

import (
	"errors"
	"fmt"
	"math"
)

// Mode selects how the bound parameter is interpreted.
type Mode uint8

const (
	// ModeRelative bounds error by Value × (max − min) of the input.
	ModeRelative Mode = iota
	// ModeAbsolute bounds error by Value directly.
	ModeAbsolute
	// ModeFixedPrecision keeps int(Value) bit planes per value (ZFP's
	// closest analogue to a relative mode, per the paper §V-D1).
	ModeFixedPrecision
)

// String returns the mode's conventional name.
func (m Mode) String() string {
	switch m {
	case ModeRelative:
		return "REL"
	case ModeAbsolute:
		return "ABS"
	case ModeFixedPrecision:
		return "PREC"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Params carries the error-control configuration for one compression call.
type Params struct {
	Mode  Mode
	Value float64 // bound for REL/ABS; plane count for PREC
}

// Rel is shorthand for a relative error bound.
func Rel(eb float64) Params { return Params{Mode: ModeRelative, Value: eb} }

// Abs is shorthand for an absolute error bound.
func Abs(eb float64) Params { return Params{Mode: ModeAbsolute, Value: eb} }

// Precision is shorthand for ZFP-style fixed precision.
func Precision(bits int) Params { return Params{Mode: ModeFixedPrecision, Value: float64(bits)} }

// ErrCorrupt is returned when a compressed stream fails validation.
var ErrCorrupt = errors.New("ebcl: corrupt compressed stream")

// Compressor is an error-bounded lossy compressor over 1-D float32 arrays
// (FL model updates are flattened before compression, paper Algorithm 1).
//
// Implementations must be safe for concurrent use: the core pipeline
// decodes many tensors on one Compressor value in parallel. Returned
// buffers must be freshly allocated (not aliases of retained state or of
// the input) — ownership transfers to the caller, which may recycle them
// through the sched buffer pools.
type Compressor interface {
	// Name returns the compressor's registry name ("sz2", "sz3", ...).
	Name() string
	// Compress encodes data under the given error-control parameters.
	Compress(data []float32, p Params) ([]byte, error)
	// Decompress reconstructs the (lossy) array from a Compress output.
	Decompress(stream []byte) ([]float32, error)
}

// ValueRange returns max − min of data (0 for empty input).
func ValueRange(data []float32) float64 {
	if len(data) == 0 {
		return 0
	}
	min, max := data[0], data[0]
	for _, v := range data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return float64(max) - float64(min)
}

// ResolveAbs converts p into an absolute error bound for data. For
// ModeFixedPrecision it returns 0 (no formal bound).
func ResolveAbs(data []float32, p Params) (float64, error) {
	switch p.Mode {
	case ModeRelative:
		if p.Value <= 0 {
			return 0, fmt.Errorf("ebcl: relative bound must be positive, got %g", p.Value)
		}
		r := ValueRange(data)
		if math.IsNaN(r) || math.IsInf(r, 0) {
			// NaN/Inf in the data makes the value range — and therefore a
			// range-relative bound — undefined; the caller must use ABS.
			return 0, fmt.Errorf("ebcl: relative bound undefined for non-finite data (range %g); use an absolute bound", r)
		}
		return p.Value * r, nil
	case ModeAbsolute:
		if p.Value <= 0 {
			return 0, fmt.Errorf("ebcl: absolute bound must be positive, got %g", p.Value)
		}
		return p.Value, nil
	case ModeFixedPrecision:
		if p.Value < 1 || p.Value > 32 {
			return 0, fmt.Errorf("ebcl: precision must be in [1,32], got %g", p.Value)
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("ebcl: unknown mode %v", p.Mode)
	}
}

// MaxAbsError returns the largest |a[i]−b[i]|; the slices must be equal
// length.
func MaxAbsError(a, b []float32) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("ebcl: length mismatch %d != %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// WithinBound reports whether every reconstructed value is within ebAbs of
// the original, with a tiny epsilon slack for float32 rounding.
func WithinBound(orig, recon []float32, ebAbs float64) bool {
	return MaxAbsError(orig, recon) <= ebAbs*(1+1e-6)+1e-12
}
