package ebcl

import (
	"math"
	"testing"
)

func TestValueRange(t *testing.T) {
	cases := []struct {
		data []float32
		want float64
	}{
		{nil, 0},
		{[]float32{5}, 0},
		{[]float32{1, 2, 3}, 2},
		{[]float32{-1, 1}, 2},
		{[]float32{-3.5, -1.5}, 2},
	}
	for i, c := range cases {
		if got := ValueRange(c.data); got != c.want {
			t.Errorf("case %d: ValueRange = %v want %v", i, got, c.want)
		}
	}
}

func TestResolveAbs(t *testing.T) {
	data := []float32{-1, 1} // range 2
	if eb, err := ResolveAbs(data, Rel(0.01)); err != nil || math.Abs(eb-0.02) > 1e-15 {
		t.Fatalf("Rel: eb=%v err=%v", eb, err)
	}
	if eb, err := ResolveAbs(data, Abs(0.5)); err != nil || eb != 0.5 {
		t.Fatalf("Abs: eb=%v err=%v", eb, err)
	}
	if eb, err := ResolveAbs(data, Precision(10)); err != nil || eb != 0 {
		t.Fatalf("Precision: eb=%v err=%v", eb, err)
	}
	for _, bad := range []Params{Rel(0), Rel(-1), Abs(0), Precision(0), Precision(64), {Mode: Mode(9)}} {
		if _, err := ResolveAbs(data, bad); err == nil {
			t.Errorf("params %+v: want error", bad)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeRelative.String() != "REL" || ModeAbsolute.String() != "ABS" || ModeFixedPrecision.String() != "PREC" {
		t.Fatal("mode names changed")
	}
}

func TestQuantizerBasics(t *testing.T) {
	q := NewQuantizer(0.01)
	// Residual exactly representable.
	code, recon, ok := q.Quantize(1.04, 1.0)
	if !ok {
		t.Fatal("should be quantizable")
	}
	if code != QuantRadius+2 {
		t.Fatalf("code = %d want %d", code, QuantRadius+2)
	}
	if math.Abs(float64(recon)-1.04) > 0.01 {
		t.Fatalf("recon %v too far from 1.04", recon)
	}
	if got := q.Dequantize(code, 1.0); got != recon {
		t.Fatalf("Dequantize mismatch: %v != %v", got, recon)
	}
}

func TestQuantizerEscapes(t *testing.T) {
	q := NewQuantizer(0.01)
	// Residual beyond the code range must escape.
	if _, _, ok := q.Quantize(1000, 0); ok {
		t.Fatal("huge residual should escape")
	}
	// Non-finite values must escape rather than poison the stream.
	if _, _, ok := q.Quantize(math.NaN(), 0); ok {
		t.Fatal("NaN should escape")
	}
	if _, _, ok := q.Quantize(math.Inf(1), 0); ok {
		t.Fatal("+Inf should escape")
	}
}

func TestQuantizerBoundHolds(t *testing.T) {
	for _, eb := range []float64{1e-1, 1e-3, 1e-6} {
		q := NewQuantizer(eb)
		pred := 0.37
		for i := -3000; i <= 3000; i++ {
			orig := pred + float64(i)*eb*0.731
			code, recon, ok := q.Quantize(orig, pred)
			if !ok {
				continue
			}
			if err := math.Abs(float64(recon) - orig); err > eb*(1+1e-9) {
				t.Fatalf("eb=%g i=%d: error %g exceeds bound (code %d)", eb, i, err, code)
			}
		}
	}
}

func TestQuantizerZeroBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-positive bound")
		}
	}()
	NewQuantizer(0)
}

func TestMaxAbsErrorAndWithinBound(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{1.1, 2, 2.8}
	if got := MaxAbsError(a, b); math.Abs(got-0.2) > 1e-6 {
		t.Fatalf("MaxAbsError = %v", got)
	}
	if !WithinBound(a, b, 0.21) {
		t.Fatal("WithinBound false negative")
	}
	if WithinBound(a, b, 0.1) {
		t.Fatal("WithinBound false positive")
	}
}

func TestSectionRoundTrip(t *testing.T) {
	var buf []byte
	buf = AppendSection(buf, []byte("hello"))
	buf = AppendSection(buf, nil)
	buf = AppendSection(buf, []byte{1, 2, 3})
	s1, pos, err := ReadSection(buf, 0)
	if err != nil || string(s1) != "hello" {
		t.Fatalf("s1=%q err=%v", s1, err)
	}
	s2, pos, err := ReadSection(buf, pos)
	if err != nil || len(s2) != 0 {
		t.Fatalf("s2=%q err=%v", s2, err)
	}
	s3, _, err := ReadSection(buf, pos)
	if err != nil || len(s3) != 3 {
		t.Fatalf("s3=%v err=%v", s3, err)
	}
	if _, _, err := ReadSection(buf, len(buf)); err == nil {
		t.Fatal("read past end should fail")
	}
	if _, _, err := ReadSection([]byte{0xFF}, 0); err == nil {
		t.Fatal("truncated varint should fail")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	buf := AppendHeader(nil, 0xCAFE, 12345, LayoutFull)
	n, layout, rest, err := ParseHeader(buf, 0xCAFE)
	if err != nil || n != 12345 || layout != LayoutFull || len(rest) != 0 {
		t.Fatalf("n=%d layout=%d err=%v", n, layout, err)
	}
	if _, _, _, err := ParseHeader(buf, 0xBEEF); err == nil {
		t.Fatal("wrong magic should fail")
	}
	if _, _, _, err := ParseHeader(buf[:4], 0xCAFE); err == nil {
		t.Fatal("short header should fail")
	}
}

func TestLosslessStage(t *testing.T) {
	payload := make([]byte, 4096) // all zeros: highly compressible
	out := AppendLosslessStage(nil, payload, false)
	if len(out) >= len(payload) {
		t.Fatalf("stage did not compress: %d >= %d", len(out), len(payload))
	}
	back, release, err := ReadLosslessStage(out)
	if err != nil || len(back) != len(payload) {
		t.Fatalf("round trip: len=%d err=%v", len(back), err)
	}
	release()
	// Disabled stage stores raw.
	raw := AppendLosslessStage(nil, payload, true)
	if len(raw) != len(payload)+1 || raw[0] != 0 {
		t.Fatal("disabled stage should store raw")
	}
	if _, _, err := ReadLosslessStage(nil); err == nil {
		t.Fatal("empty stage should fail")
	}
	if _, _, err := ReadLosslessStage([]byte{7}); err == nil {
		t.Fatal("bad mode byte should fail")
	}
}
