package ebcl

// The linear quantizer shared by the prediction-based compressors (SZ2,
// SZ3). Prediction residuals are mapped to integer codes in bins of width
// 2·ebAbs, guaranteeing |reconstructed − original| ≤ ebAbs. Residuals whose
// code would fall outside ±(Radius−1) take the escape code 0 and are stored
// as uncompressed IEEE-754 literals ("unpredictable points" in SZ jargon).

const (
	// QuantRadius is the half-width of the quantization code alphabet.
	QuantRadius = 2048
	// QuantAlphabet is the total symbol count: escape code 0 plus
	// 2·Radius−1 residual codes centered at QuantRadius.
	QuantAlphabet = 2 * QuantRadius
	// EscapeCode marks an unpredictable point stored as a literal.
	EscapeCode = 0
)

// Quantizer maps residuals to codes and back for a fixed absolute bound.
type Quantizer struct {
	ebAbs    float64
	binWidth float64 // 2 · ebAbs
}

// NewQuantizer returns a quantizer for the given absolute bound. ebAbs must
// be positive. The quantizer is a value type so hot decode loops carry it
// without a heap allocation.
func NewQuantizer(ebAbs float64) Quantizer {
	if ebAbs <= 0 {
		panic("ebcl: quantizer requires positive bound")
	}
	return Quantizer{ebAbs: ebAbs, binWidth: 2 * ebAbs}
}

// Quantize returns the code for original given the prediction pred, and the
// value the decoder will reconstruct. ok is false when the residual exceeds
// the code range — the caller must emit EscapeCode and a literal.
func (q Quantizer) Quantize(original, pred float64) (code int, recon float32, ok bool) {
	resid := original - pred
	scaled := resid / q.binWidth
	// The comparison form also rejects NaN and ±Inf residuals (from
	// non-finite inputs), which must be stored as literals.
	if !(scaled > -(QuantRadius-0.5) && scaled < QuantRadius-0.5) {
		return EscapeCode, 0, false
	}
	k := int(fastRound(scaled))
	rec := pred + float64(k)*q.binWidth
	// float32 rounding of the reconstruction can nudge the error past the
	// bound near bin edges; verify and escape when it does.
	rec32 := float32(rec)
	diff := original - float64(rec32)
	if !(diff <= q.ebAbs && diff >= -q.ebAbs) {
		return EscapeCode, 0, false
	}
	return k + QuantRadius, rec32, true
}

// Dequantize reconstructs a value from a non-escape code and a prediction.
func (q Quantizer) Dequantize(code int, pred float64) float32 {
	return float32(pred + float64(code-QuantRadius)*q.binWidth)
}

func fastRound(x float64) float64 {
	if x >= 0 {
		return float64(int64(x + 0.5))
	}
	return float64(int64(x - 0.5))
}
