package ebcl

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/lossless"
	"repro/internal/sched"
)

// Shared stream framing for the SZ-family compressors: length-prefixed
// sections, a common header layout, and the optional trailing lossless
// stage (SZ2/SZ3 run Zstd after Huffman; we use the zstd-like codec).

// Layout identifiers for the byte following the common header.
const (
	LayoutEmpty    = 0 // zero-length input
	LayoutConstant = 1 // zero value range: single repeated value
	LayoutFull     = 2 // full compression pipeline
)

// AppendHeader writes the common header: magic, element count, layout byte.
func AppendHeader(dst []byte, magic uint32, n int, layout byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, magic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	return append(dst, layout)
}

// MaxElements caps the element count a stream header may declare (256 Mi
// elements = 1 GiB of float32), rejecting hostile headers before any large
// allocation. The largest model in the paper is 60 M parameters.
const MaxElements = 1 << 28

// ParseHeader validates the magic and returns the element count, layout
// byte, and the remaining stream.
func ParseHeader(stream []byte, wantMagic uint32) (n int, layout byte, rest []byte, err error) {
	if len(stream) < 9 {
		return 0, 0, nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(stream) != wantMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	n = int(binary.LittleEndian.Uint32(stream[4:]))
	if n > MaxElements {
		return 0, 0, nil, fmt.Errorf("%w: element count %d exceeds limit", ErrCorrupt, n)
	}
	return n, stream[8], stream[9:], nil
}

// AppendSection appends a uvarint-length-prefixed byte section.
func AppendSection(dst, section []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(section)))
	return append(dst, section...)
}

// SectionLenBytes is the width of the fixed-size length prefix written by
// ReserveSectionLen/PatchSectionLen: five varint groups cover lengths up to
// 2^35-1, beyond any section the pipeline frames.
const SectionLenBytes = 5

// ReserveSectionLen appends a SectionLenBytes-wide length-prefix
// placeholder, returning the grown slice. It is the zero-copy counterpart
// of AppendSection: a producer reserves the prefix, appends the section
// payload directly behind it (no staging buffer), then backfills the real
// length with PatchSectionLen. The padded encoding — continuation bits set
// on leading zero groups — is still a valid uvarint, so ReadSection and
// binary.ReadUvarint consume it transparently.
func ReserveSectionLen(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0, 0)
}

// PatchSectionLen writes n as a padded uvarint into the placeholder
// previously reserved at pos. n must fit SectionLenBytes varint groups
// (n < 2^35).
func PatchSectionLen(dst []byte, pos int, n uint64) {
	if n >= 1<<(7*SectionLenBytes) {
		panic(fmt.Sprintf("ebcl: section length %d exceeds %d-byte prefix", n, SectionLenBytes))
	}
	for i := 0; i < SectionLenBytes-1; i++ {
		dst[pos+i] = byte(n)&0x7F | 0x80
		n >>= 7
	}
	dst[pos+SectionLenBytes-1] = byte(n)
}

// ReadSection reads a section written by AppendSection starting at pos,
// returning the section contents and the next position.
func ReadSection(src []byte, pos int) ([]byte, int, error) {
	if pos >= len(src) {
		return nil, 0, ErrCorrupt
	}
	l, k := binary.Uvarint(src[pos:])
	if k <= 0 {
		return nil, 0, ErrCorrupt
	}
	pos += k
	if int(l) < 0 || pos+int(l) > len(src) {
		return nil, 0, ErrCorrupt
	}
	return src[pos : pos+int(l)], pos + int(l), nil
}

// FloatView reads a float32 literal section in place — the decode-side
// replacement for materializing a []float32 copy of the section bytes.
type FloatView struct{ b []byte }

// NewFloatView validates that b is a whole number of float32s.
func NewFloatView(b []byte) (FloatView, error) {
	if len(b)%4 != 0 {
		return FloatView{}, ErrCorrupt
	}
	return FloatView{b}, nil
}

// Len returns the element count.
func (v FloatView) Len() int { return len(v.b) / 4 }

// At returns element i (little-endian IEEE-754).
func (v FloatView) At(i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(v.b[4*i:]))
}

// AppendFloatSection appends a uvarint-length-prefixed float32 literal
// section without materializing an intermediate byte copy.
func AppendFloatSection(dst []byte, vals []float32) []byte {
	dst = binary.AppendUvarint(dst, uint64(4*len(vals)))
	for _, f := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(f))
	}
	return dst
}

var zcodec = lossless.NewZstdLike()

// AppendLosslessStage appends payload to out, passing it through the
// zstd-like codec first when that wins (and unless disabled). A mode byte
// records which representation was kept. The intermediate compressed
// buffer is copied into out, so it is recycled via the shared sched pool.
func AppendLosslessStage(out, payload []byte, disable bool) []byte {
	if !disable {
		if z, err := zcodec.Compress(payload); err == nil {
			if len(z) < len(payload) {
				out = append(out, 1)
				out = append(out, z...)
				sched.PutBytes(z)
				return out
			}
			sched.PutBytes(z)
		}
	}
	out = append(out, 0)
	return append(out, payload...)
}

func releaseNothing() {}

// ReadLosslessStage reverses AppendLosslessStage. The returned payload is
// either a view into rest or a pooled decompression buffer; release must be
// called exactly once when the payload bytes are dead so pooled buffers go
// back to the sched pool instead of the garbage collector.
func ReadLosslessStage(rest []byte) (payload []byte, release func(), err error) {
	if len(rest) < 1 {
		return nil, nil, ErrCorrupt
	}
	switch rest[0] {
	case 0:
		return rest[1:], releaseNothing, nil
	case 1:
		z, err := zcodec.Decompress(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		return z, func() { sched.PutBytes(z) }, nil
	default:
		return nil, nil, ErrCorrupt
	}
}
