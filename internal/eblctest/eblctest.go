// Package eblctest provides the shared conformance suite run against every
// error-bounded lossy compressor in this module. Each EBLC package has a
// thin test file invoking RunConformance, so all compressors are held to
// the same contract: round-trip decodability, error-bound compliance,
// sane ratios on weight-like data, and graceful handling of degenerate and
// corrupt inputs.
package eblctest

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/ebcl"
)

// Options tunes the suite per compressor.
type Options struct {
	// StrictBound asserts max error <= ebAbs. ZFP's fixed-precision mode has
	// no formal bound (paper §V-D1), so it runs with a loose multiple.
	StrictBound bool
	// LooseFactor multiplies the bound for non-strict compressors.
	LooseFactor float64
	// MinRatioAt1e2 is the minimum acceptable compression ratio on
	// weight-like data at a relative bound of 1e-2.
	MinRatioAt1e2 float64
}

// WeightLike synthesizes n values shaped like flattened FL model weights:
// a sharp near-zero mass (Laplacian-ish) plus sparse large-magnitude
// outliers, matching the "spiky" profile of paper Figure 2(a)/3.
func WeightLike(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		// Laplace(0, 0.03) via difference of exponentials.
		v := 0.03 * (rng.ExpFloat64() - rng.ExpFloat64())
		if rng.Float64() < 0.002 {
			v += rng.NormFloat64() * 0.5 // occasional outlier
		}
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		out[i] = float32(v)
	}
	return out
}

// SmoothLike synthesizes a smooth band-limited signal, the shape EBLCs were
// designed for (paper Figure 2(b)).
func SmoothLike(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	phase := rng.Float64() * 2 * math.Pi
	for i := range out {
		x := float64(i) / float64(n)
		out[i] = float32(math.Sin(2*math.Pi*5*x+phase) + 0.4*math.Sin(2*math.Pi*23*x) + 0.05*rng.NormFloat64())
	}
	return out
}

// RunConformance executes the shared suite.
func RunConformance(t *testing.T, c ebcl.Compressor, opt Options) {
	t.Helper()
	if opt.LooseFactor == 0 {
		opt.LooseFactor = 8
	}

	t.Run("EmptyInput", func(t *testing.T) {
		stream, err := c.Compress(nil, ebcl.Rel(1e-2))
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(stream)
		if err != nil || len(out) != 0 {
			t.Fatalf("len=%d err=%v", len(out), err)
		}
	})

	t.Run("ConstantInput", func(t *testing.T) {
		data := make([]float32, 1000)
		for i := range data {
			data[i] = 3.25
		}
		stream, err := c.Compress(data, ebcl.Rel(1e-2))
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(stream)
		if err != nil || len(out) != len(data) {
			t.Fatalf("len=%d err=%v", len(out), err)
		}
		// A constant array has zero range, so any reconstruction error is a
		// bug for every compressor, including ZFP.
		for i, v := range out {
			if math.Abs(float64(v)-3.25) > 1e-5 {
				t.Fatalf("element %d: %v != 3.25", i, v)
			}
		}
		if len(stream) > 64 {
			t.Errorf("constant stream is %d bytes, want tiny", len(stream))
		}
	})

	t.Run("SingleElement", func(t *testing.T) {
		stream, err := c.Compress([]float32{-0.75}, ebcl.Abs(1e-3))
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(stream)
		if err != nil || len(out) != 1 {
			t.Fatalf("len=%d err=%v", len(out), err)
		}
		if math.Abs(float64(out[0])+0.75) > 1e-2 {
			t.Fatalf("value %v", out[0])
		}
	})

	t.Run("BoundCompliance", func(t *testing.T) {
		rng := rand.New(rand.NewPCG(42, 1))
		for _, gen := range []struct {
			name string
			data []float32
		}{
			{"weights", WeightLike(rng, 20000)},
			{"smooth", SmoothLike(rng, 20000)},
		} {
			for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
				stream, err := c.Compress(gen.data, ebcl.Rel(eb))
				if err != nil {
					t.Fatalf("%s eb=%g: %v", gen.name, eb, err)
				}
				out, err := c.Decompress(stream)
				if err != nil {
					t.Fatalf("%s eb=%g decompress: %v", gen.name, eb, err)
				}
				if len(out) != len(gen.data) {
					t.Fatalf("%s eb=%g: length %d != %d", gen.name, eb, len(out), len(gen.data))
				}
				ebAbs := eb * ebcl.ValueRange(gen.data)
				limit := ebAbs
				if !opt.StrictBound {
					limit = ebAbs * opt.LooseFactor
				}
				if got := ebcl.MaxAbsError(gen.data, out); got > limit*(1+1e-6) {
					t.Fatalf("%s eb=%g: max error %g exceeds %g", gen.name, eb, got, limit)
				}
			}
		}
	})

	t.Run("AbsoluteMode", func(t *testing.T) {
		rng := rand.New(rand.NewPCG(7, 7))
		data := WeightLike(rng, 5000)
		stream, err := c.Compress(data, ebcl.Abs(0.005))
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		limit := 0.005
		if !opt.StrictBound {
			limit *= opt.LooseFactor
		}
		if got := ebcl.MaxAbsError(data, out); got > limit*(1+1e-6) {
			t.Fatalf("ABS mode: max error %g exceeds %g", got, limit)
		}
	})

	t.Run("RatioOnWeights", func(t *testing.T) {
		rng := rand.New(rand.NewPCG(3, 9))
		data := WeightLike(rng, 1<<17)
		stream, err := c.Compress(data, ebcl.Rel(1e-2))
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(4*len(data)) / float64(len(stream))
		if ratio < opt.MinRatioAt1e2 {
			t.Errorf("ratio %.2f at rel 1e-2, want >= %.2f", ratio, opt.MinRatioAt1e2)
		}
		t.Logf("%s ratio on weights @1e-2: %.2f", c.Name(), ratio)
	})

	t.Run("TighterBoundLowerRatio", func(t *testing.T) {
		rng := rand.New(rand.NewPCG(11, 4))
		data := WeightLike(rng, 1<<16)
		var prev float64 = math.Inf(1)
		for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
			stream, err := c.Compress(data, ebcl.Rel(eb))
			if err != nil {
				t.Fatal(err)
			}
			ratio := float64(4*len(data)) / float64(len(stream))
			// Allow small non-monotonic wiggle (10%) but not inversions.
			if ratio > prev*1.1 {
				t.Errorf("ratio %.2f at eb=%g exceeds looser bound's %.2f", ratio, eb, prev)
			}
			prev = ratio
		}
	})

	t.Run("InvalidParams", func(t *testing.T) {
		data := []float32{1, 2, 3}
		if _, err := c.Compress(data, ebcl.Rel(0)); err == nil {
			t.Error("zero relative bound should fail")
		}
		if _, err := c.Compress(data, ebcl.Abs(-1)); err == nil {
			t.Error("negative absolute bound should fail")
		}
	})

	t.Run("CorruptStream", func(t *testing.T) {
		for _, junk := range [][]byte{nil, {1, 2}, make([]byte, 16)} {
			if _, err := c.Decompress(junk); err == nil {
				t.Errorf("junk %v decoded without error", junk)
			}
		}
		// A valid stream with a flipped magic must be rejected.
		rng := rand.New(rand.NewPCG(1, 1))
		stream, err := c.Compress(WeightLike(rng, 256), ebcl.Rel(1e-2))
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), stream...)
		bad[0] ^= 0xFF
		if _, err := c.Decompress(bad); err == nil {
			t.Error("flipped magic decoded without error")
		}
	})

	t.Run("QuickProperty", func(t *testing.T) {
		// Property: for arbitrary finite float32 arrays and bounds, the
		// round trip preserves length and (for strict compressors) the
		// error bound.
		f := func(seed uint64, nSel uint16, ebSel uint8) bool {
			rng := rand.New(rand.NewPCG(seed, 0xABCD))
			n := int(nSel%3000) + 1
			data := make([]float32, n)
			scale := math.Pow(10, float64(int(ebSel%9))-4) // 1e-4 .. 1e4
			for i := range data {
				data[i] = float32(rng.NormFloat64() * scale)
			}
			eb := math.Pow(10, -float64(ebSel%4)-1) // 1e-1 .. 1e-4
			stream, err := c.Compress(data, ebcl.Rel(eb))
			if err != nil {
				return false
			}
			out, err := c.Decompress(stream)
			if err != nil || len(out) != n {
				return false
			}
			if opt.StrictBound {
				ebAbs := eb * ebcl.ValueRange(data)
				if ebcl.MaxAbsError(data, out) > ebAbs*(1+1e-6)+1e-12 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Error(err)
		}
	})

	t.Run("ZeroCopyContract", func(t *testing.T) {
		// The append/into methods must agree with the one-shot pair:
		// CompressAppend(nil) == Compress, DecodedLen == decoded length,
		// and DecompressInto into a dirty correctly-sized buffer must be
		// bit-identical to Decompress. (The full alias-safety matrix lives
		// in internal/conformance; this keeps every per-codec suite honest.)
		rng := rand.New(rand.NewPCG(13, 37))
		data := WeightLike(rng, 4099)
		ref, err := c.Compress(data, ebcl.Rel(1e-2))
		if err != nil {
			t.Fatal(err)
		}
		appended, err := c.CompressAppend(nil, data, ebcl.Rel(1e-2))
		if err != nil {
			t.Fatal(err)
		}
		if len(appended) != len(ref) || !bytes.Equal(appended, ref) {
			t.Fatal("CompressAppend(nil) differs from Compress")
		}
		n, err := c.DecodedLen(ref)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.Decompress(ref)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Fatalf("DecodedLen %d != decoded length %d", n, len(want))
		}
		dirty := make([]float32, n)
		for i := range dirty {
			dirty[i] = float32(math.NaN())
		}
		got, err := c.DecompressInto(dirty[:0], ref)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("DecompressInto over dirty buffer diverged at %d: %v != %v", i, got[i], want[i])
			}
		}
	})

	t.Run("OddLengths", func(t *testing.T) {
		rng := rand.New(rand.NewPCG(2, 2))
		for _, n := range []int{1, 2, 3, 4, 5, 7, 127, 128, 129, 255, 256, 257, 1023} {
			data := WeightLike(rng, n)
			stream, err := c.Compress(data, ebcl.Rel(1e-2))
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			out, err := c.Decompress(stream)
			if err != nil || len(out) != n {
				t.Fatalf("n=%d: len=%d err=%v", n, len(out), err)
			}
		}
	})
}
