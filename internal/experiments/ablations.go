package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/fl"
	"repro/internal/lossless"
	"repro/internal/nn/models"
)

// AblatePartition answers: what happens if metadata is lossy-compressed too
// (partitioning disabled)? The paper reports "extreme degradation" (§V-C).
func AblatePartition(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "ablate-partition",
		Title:   "Partitioning ablation: lossy-compressing metadata too (ResNet-mini, REL 1e-2)",
		Columns: []string{"Pipeline", "Final Acc(%)", "Ratio"},
	}
	// ResNet-mini carries batch-norm running stats, the metadata whose
	// corruption the partitioning protects against.
	for _, mode := range []struct {
		label   string
		disable bool
	}{
		{"partitioned (FedSZ)", false},
		{"unpartitioned (all lossy)", true},
	} {
		tr := fl.NewFedSZTransport(core.Options{
			LossyParams:         ebcl.Rel(1e-2),
			DisablePartitioning: mode.disable,
			Threshold:           -1, // let every tensor through in both modes
		})
		fed, err := buildFederation(cfg, "resnet50", "cifar10", tr, 0xAB1)
		if err != nil {
			return nil, err
		}
		res, err := fed.Run(context.Background(), cfg.Rounds, 1)
		if err != nil {
			return nil, err
		}
		ratio := float64(res[0].RawBytes) / float64(res[0].WireBytes)
		t.AddRow(mode.label, f2(100*res[len(res)-1].Accuracy), f2(ratio))
	}
	t.AddNote("paper §V-C reports 'extreme degradation' without partitioning; with a conforming EBLC at REL 1e-2 the metadata stays within bound here, so no gap appears at this scale")
	t.AddNote("the real hazard is looser bounds / longer training: running variances perturbed below zero make 1/sqrt(var+eps) non-finite and destroy the model — partitioning removes that risk class entirely")
	return t, nil
}

// AblateThreshold sweeps Algorithm 1's size gate.
func AblateThreshold(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "ablate-threshold",
		Title:   "Threshold sensitivity (AlexNet profile, REL 1e-2)",
		Columns: []string{"Threshold", "LossyTensors", "LosslessTensors", "Ratio"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xAB2))
	profile, err := models.BuildProfile("alexnet", rng, cfg.ProfileScale)
	if err != nil {
		return nil, err
	}
	for _, th := range []int{-1, 1024, 10_000, 100_000, 1 << 22} {
		_, stats, err := core.Compress(profile, core.Options{Threshold: th})
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", th)
		if th == -1 {
			label = "0 (gate off)"
		}
		t.AddRow(label, fmt.Sprintf("%d", stats.LossyTensors), fmt.Sprintf("%d", stats.LosslessTensors), f2(stats.Ratio()))
	}
	t.AddNote("the gate matters little for ratio on big models (weights dominate); it protects small tensors from per-stream overhead")
	return t, nil
}

// AblateErrorMode contrasts REL and ABS bounding at matched magnitudes
// (paper §V-D1 argues for relative bounds).
func AblateErrorMode(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "ablate-errormode",
		Title:   "REL vs ABS error bounding (AlexNet profile, SZ2)",
		Columns: []string{"Mode", "Setting", "Ratio", "MaxErr"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xAB3))
	profile, err := models.BuildProfile("alexnet", rng, cfg.ProfileScale)
	if err != nil {
		return nil, err
	}
	weights := lossyPartitionData(profile, core.DefaultThreshold)
	for _, p := range []ebcl.Params{
		ebcl.Rel(1e-2), ebcl.Rel(1e-3),
		ebcl.Abs(1e-2), ebcl.Abs(1e-3),
	} {
		_, stats, err := core.Compress(profile, core.Options{LossyParams: p})
		if err != nil {
			return nil, err
		}
		ebAbs, _ := ebcl.ResolveAbs(weights, p)
		t.AddRow(p.Mode.String(), fmt.Sprintf("%.0e", p.Value), f2(stats.Ratio()), fmt.Sprintf("<=%.2e", ebAbs))
	}
	t.AddNote("a REL bound adapts to each tensor's dynamic range (paper §V-D1); ABS at the same magnitude over-compresses wide layers and under-compresses narrow ones")
	return t, nil
}

// AblateLearningRate explores the paper's first future-work direction
// (§VIII-B): can hyperparameter tuning mitigate the accuracy cost of
// compression noise? Sweep the client learning rate with FedSZ at REL 1e-2
// against the default-lr uncompressed baseline.
func AblateLearningRate(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "ablate-lr",
		Title:   "Hyperparameter mitigation (future work §VIII-B): client LR sweep under FedSZ REL 1e-2",
		Columns: []string{"Transport", "LR", "Final Acc(%)"},
	}
	base, err := buildFederationLR(cfg, "alexnet", "cifar10", fl.RawTransport{}, 0xAB5, 0.02)
	if err != nil {
		return nil, err
	}
	res, err := base.Run(context.Background(), cfg.Rounds, 1)
	if err != nil {
		return nil, err
	}
	t.AddRow("uncompressed", "0.020", f2(100*res[len(res)-1].Accuracy))
	for _, lr := range []float64{0.01, 0.02, 0.03, 0.05} {
		tr := fl.NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
		fed, err := buildFederationLR(cfg, "alexnet", "cifar10", tr, 0xAB5, lr)
		if err != nil {
			return nil, err
		}
		res, err := fed.Run(context.Background(), cfg.Rounds, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow("fedsz", fmt.Sprintf("%.3f", lr), f2(100*res[len(res)-1].Accuracy))
	}
	t.AddNote("compression noise acts like extra SGD noise; a modestly higher LR often recovers the uncompressed trajectory")
	return t, nil
}

// AblateLossless swaps the metadata codec inside the full pipeline.
func AblateLossless(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "ablate-lossless",
		Title:   "Lossless backend inside the full pipeline (MobileNetV2 profile, REL 1e-2)",
		Columns: []string{"Codec", "PipelineRatio", "MetadataRatio", "CompressTime"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xAB4))
	// MobileNetV2 has the largest metadata share (Table III), so the codec
	// choice is most visible there.
	profile, err := models.BuildProfile("mobilenetv2", rng, cfg.ProfileScale)
	if err != nil {
		return nil, err
	}
	for _, name := range lossless.Names() {
		codec, err := lossless.Get(name)
		if err != nil {
			return nil, err
		}
		_, stats, err := core.Compress(profile, core.Options{Lossless: codec})
		if err != nil {
			return nil, err
		}
		metaRatio := 0.0
		if stats.LosslessCompressed > 0 {
			metaRatio = float64(stats.LosslessRaw) / float64(stats.LosslessCompressed)
		}
		t.AddRow(name, f2(stats.Ratio()), f3(metaRatio), ms(stats.CompressTime))
	}
	t.AddNote("paper Table II: blosclz is the pick — near-best ratio at the lowest runtime")
	return t, nil
}
