// Package experiments regenerates every table and figure of the FedSZ
// paper's evaluation section. Each generator returns a structured Table so
// the cmd/fedsz-bench CLI, the test suite, and the benchmark targets share
// one implementation.
//
// Two fidelity levels exist:
//
//   - Quick (default): profile models at ProfileScale of the paper's
//     parameter counts, mini-FL runs at reduced image size / round count.
//     Everything completes in minutes on a laptop.
//   - Full (-full in the CLI): larger profile scale, more rounds, all
//     model × dataset combinations.
//
// Absolute runtimes differ from the paper's Raspberry Pi 5 testbed; the
// reproduction targets are the *shapes*: compressor rankings, the 1e-2
// accuracy cliff, the ~500 Mbps compression crossover, scaling slopes, and
// the Laplacian error profile.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config tunes experiment cost.
type Config struct {
	// Seed drives all synthetic data and training.
	Seed uint64
	// ProfileScale scales paper parameter counts for profile models.
	ProfileScale float64
	// Rounds is the FL communication-round count for accuracy experiments.
	Rounds int
	// Clients is the FedAvg client count (the paper uses 4).
	Clients int
	// TrainN / TestN are per-dataset sample counts for mini-FL.
	TrainN, TestN int
	// ImageSide caps training image size.
	ImageSide int
	// AllCombos runs every model × dataset pair where the quick mode picks
	// representatives.
	AllCombos bool
}

// QuickConfig returns the default (fast) configuration.
func QuickConfig() Config {
	return Config{
		Seed:         1,
		ProfileScale: 0.05,
		Rounds:       8,
		Clients:      4,
		TrainN:       192,
		TestN:        64,
		ImageSide:    12,
	}
}

// FullConfig returns the high-fidelity configuration.
func FullConfig() Config {
	return Config{
		Seed:         1,
		ProfileScale: 0.2,
		Rounds:       15,
		Clients:      4,
		TrainN:       384,
		TestN:        128,
		ImageSide:    16,
		AllCombos:    true,
	}
}

// Table is the structured output of one experiment.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends an explanatory footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", max(total-2, 4)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Generator produces one experiment's table.
type Generator func(Config) (*Table, error)

// Registry maps experiment IDs to generators, in paper order.
func Registry() []struct {
	ID  string
	Gen Generator
} {
	return []struct {
		ID  string
		Gen Generator
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"table4", Table4},
		{"table5", Table5},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"eqn1", Eqn1Decision},
		{"ablate-partition", AblatePartition},
		{"ablate-threshold", AblateThreshold},
		{"ablate-errormode", AblateErrorMode},
		{"ablate-lossless", AblateLossless},
		{"ablate-lr", AblateLearningRate},
	}
}

// Get returns the generator for an experiment ID.
func Get(id string) (Generator, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Gen, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
}

// IDs lists all experiment IDs in registry order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// sortedKeys is a small helper for deterministic map iteration.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
