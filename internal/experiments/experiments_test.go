package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyConfig keeps generator tests fast: minimal rounds and data.
func tinyConfig() Config {
	return Config{
		Seed:         3,
		ProfileScale: 0.01,
		Rounds:       2,
		Clients:      2,
		TrainN:       48,
		TestN:        24,
		ImageSide:    10,
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"table1", "table2", "table3", "table4", "table5",
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"eqn1",
		"ablate-partition", "ablate-threshold", "ablate-errormode", "ablate-lossless",
		"ablate-lr",
	}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(ids), len(want), ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("registry order %v, want %v", ids, want)
		}
	}
	if _, err := Get("table1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"A", "BB"}}
	tb.AddRow("1", "2")
	tb.AddNote("hello %d", 7)
	out := tb.Render()
	for _, want := range []string{"demo", "A", "BB", "hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// runGen executes a generator under the tiny config and checks structure.
func runGen(t *testing.T, id string) *Table {
	t.Helper()
	gen, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := gen(tinyConfig())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tb.ID != id {
		t.Fatalf("%s: table id %q", id, tb.ID)
	}
	if len(tb.Rows) == 0 {
		t.Fatalf("%s: no rows", id)
	}
	for i, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("%s row %d: %d cells for %d columns", id, i, len(row), len(tb.Columns))
		}
	}
	return tb
}

func TestTable2Structure(t *testing.T) {
	tb := runGen(t, "table2")
	if len(tb.Rows) != 5 {
		t.Fatalf("want 5 lossless codecs, got %d", len(tb.Rows))
	}
	// Every ratio must be >= 0.9 (codecs never catastrophically expand).
	for _, row := range tb.Rows {
		r, err := strconv.ParseFloat(row[3], 64)
		if err != nil || r < 0.9 {
			t.Fatalf("codec %s ratio %q", row[0], row[3])
		}
	}
}

func TestTable3MatchesPaperOrdering(t *testing.T) {
	tb := runGen(t, "table3")
	if len(tb.Rows) != 3 {
		t.Fatal("want 3 models")
	}
	// %LossyData ordering: mobilenet < resnet < alexnet.
	frac := map[string]string{}
	for _, row := range tb.Rows {
		frac[row[0]] = row[3]
	}
	if !(frac["mobilenetv2"] < frac["resnet50"] && frac["resnet50"] < frac["alexnet"]) {
		t.Fatalf("lossy-data ordering violated: %v", frac)
	}
}

func TestTable4Structure(t *testing.T) {
	tb := runGen(t, "table4")
	if len(tb.Rows) != 3 {
		t.Fatal("want 3 datasets")
	}
}

func TestTable5RatiosGrowWithBound(t *testing.T) {
	tb := runGen(t, "table5")
	for _, row := range tb.Rows {
		var prev float64 = 1e18
		for _, cell := range row[2:] {
			r, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad ratio cell %q", cell)
			}
			if r > prev*1.1 {
				t.Fatalf("row %v: ratio not declining with tighter bounds", row)
			}
			prev = r
		}
		// REL 1e-2 column should be a solid ratio.
		r, _ := strconv.ParseFloat(row[3], 64)
		if r < 3 {
			t.Errorf("row %v: REL 1e-2 ratio %v < 3", row[:2], r)
		}
	}
}

func TestFig2WeightsSpikierThanScience(t *testing.T) {
	tb := runGen(t, "fig2")
	var wMin, sMax float64 = 1e18, 0
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad smoothness %q", row[2])
		}
		switch row[0] {
		case "fl-weights":
			if v < wMin {
				wMin = v
			}
		case "miranda-like":
			if v > sMax {
				sMax = v
			}
		}
	}
	if wMin <= sMax {
		t.Fatalf("weights (min %.4f) must be spikier than science data (max %.4f)", wMin, sMax)
	}
}

func TestFig3Structure(t *testing.T) {
	tb := runGen(t, "fig3")
	if len(tb.Rows) != 3 {
		t.Fatal("want 3 models")
	}
}

func TestFig8HasCrossover(t *testing.T) {
	tb := runGen(t, "fig8")
	// At 1 Mbps a compressor must win; at 10000 Mbps original must win.
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if first[len(first)-1] == "original" {
		t.Errorf("at 1 Mbps compression should win: %v", first)
	}
	if last[len(last)-1] != "original" {
		t.Errorf("at 10 Gbps original should win: %v", last)
	}
}

func TestFig9ScalingShapes(t *testing.T) {
	tb := runGen(t, "fig9")
	var weak, strong [][]string
	for _, row := range tb.Rows {
		switch row[0] {
		case "weak":
			weak = append(weak, row)
		case "strong":
			strong = append(strong, row)
		}
	}
	if len(weak) != 7 || len(strong) != 7 {
		t.Fatalf("want 7+7 scaling points, got %d+%d", len(weak), len(strong))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		if err != nil {
			t.Fatalf("bad duration %q", s)
		}
		return v
	}
	// Weak scaling: round time grows with clients.
	for i := 1; i < len(weak); i++ {
		if parse(weak[i][3]) <= parse(weak[i-1][3]) {
			t.Fatalf("weak scaling not growing: %v -> %v", weak[i-1], weak[i])
		}
	}
	// Strong scaling: round time shrinks (or holds) with workers.
	for i := 1; i < len(strong); i++ {
		if parse(strong[i][3]) > parse(strong[i-1][3])*1.001 {
			t.Fatalf("strong scaling regressed: %v -> %v", strong[i-1], strong[i])
		}
	}
}

func TestFig10LaplaceWins(t *testing.T) {
	tb := runGen(t, "fig10")
	wins := 0
	for _, row := range tb.Rows {
		if row[5] == "true" {
			wins++
		}
	}
	if wins < 2 {
		t.Fatalf("Laplace should beat Gaussian on most bounds, won %d of %d", wins, len(tb.Rows))
	}
}

func TestEqn1DecisionShape(t *testing.T) {
	tb := runGen(t, "eqn1")
	// Low bandwidth: compress; the decision may flip as bandwidth grows
	// but must never flip back.
	flips := 0
	prev := ""
	for _, row := range tb.Rows {
		if prev != "" && row[3] != prev {
			flips++
		}
		prev = row[3]
	}
	if tb.Rows[0][3] != "true" {
		t.Errorf("at 1 Mbps the decision must be compress: %v", tb.Rows[0])
	}
	if flips > 1 {
		t.Errorf("decision flipped %d times", flips)
	}
}

func TestAblateThresholdStructure(t *testing.T) {
	tb := runGen(t, "ablate-threshold")
	if len(tb.Rows) != 5 {
		t.Fatalf("want 5 thresholds, got %d", len(tb.Rows))
	}
	// Lossy tensor count must not increase with threshold.
	prev := 1 << 30
	for _, row := range tb.Rows {
		n, _ := strconv.Atoi(row[1])
		if n > prev {
			t.Fatalf("lossy tensors grew with threshold: %v", tb.Rows)
		}
		prev = n
	}
}

func TestAblateErrorModeStructure(t *testing.T) {
	tb := runGen(t, "ablate-errormode")
	if len(tb.Rows) != 4 {
		t.Fatal("want 4 rows")
	}
}

func TestAblateLosslessStructure(t *testing.T) {
	tb := runGen(t, "ablate-lossless")
	if len(tb.Rows) != 5 {
		t.Fatal("want 5 codecs")
	}
}
