package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
	"time"

	"repro/internal/compressors"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ebcl"
	"repro/internal/fl"
	"repro/internal/netsim"
	"repro/internal/nn/models"
	"repro/internal/stats"
)

// Fig2 reproduces "Comparing FL Model Parameters vs Scientific Simulation
// Data": snippet smoothness of trained weights vs a synthetic MIRANDA-like
// field.
func Fig2(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig2",
		Title:   "Spikiness of FL weights vs scientific data (mean |Δ| / range; higher = spikier)",
		Columns: []string{"Source", "Snippet", "Smoothness", "Range"},
	}
	// Trained mini-model weights (a short FL run makes them realistic).
	fed, err := buildFederation(cfg, "alexnet", "cifar10", fl.RawTransport{}, 0xF2)
	if err != nil {
		return nil, err
	}
	if _, err := fed.Run(context.Background(), min(cfg.Rounds, 3), 1); err != nil {
		return nil, err
	}
	weights := lossyPartitionData(fed.Global.StateDict(), 0)
	snippet := 500
	for i := 0; i+snippet < len(weights) && i < 5*len(weights)/6; i += len(weights) / 5 {
		s := weights[i : i+snippet]
		sm := dataset.Smoothness(s)
		lo, hi := minMax(s)
		t.AddRow("fl-weights", fmt.Sprintf("[%d,%d)", i, i+snippet), f4(sm), fmt.Sprintf("[%.2f,%.2f]", lo, hi))
	}
	field := dataset.ScientificField(cfg.Seed, 1<<16)
	for k := 0; k < 3; k++ {
		lo := k * len(field) / 4
		s := field[lo : lo+snippet]
		sm := dataset.Smoothness(s)
		a, b := minMax(s)
		t.AddRow("miranda-like", fmt.Sprintf("[%d,%d)", lo, lo+snippet), f4(sm), fmt.Sprintf("[%.2f,%.2f]", a, b))
	}
	t.AddNote("paper shape: FL weights are spiky (high |Δ|/range), simulation fields are smooth — this is why ZFP underperforms on model data")
	return t, nil
}

func minMax(s []float32) (float32, float32) {
	lo, hi := s[0], s[0]
	for _, v := range s[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Fig3 reproduces "Distribution of Pretrained Weights for Various Models"
// as text histograms over the profile dicts.
func Fig3(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "Weight distributions per model (profile dicts, 15-bin histogram over [-0.3, 0.3])",
		Columns: []string{"Model", "Std", "P01", "P99", "Histogram"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xF13))
	for _, name := range models.Names() {
		profile, err := models.BuildProfile(name, rng, cfg.ProfileScale)
		if err != nil {
			return nil, err
		}
		w := lossyPartitionData(profile, 0)
		summ := stats.Summarize(w)
		h := stats.NewHistogram(w, -0.3, 0.3, 15)
		t.AddRow(name, f3(summ.Std), f3(stats.Quantile(w, 0.01)), f3(stats.Quantile(w, 0.99)), sparkline(h))
	}
	t.AddNote("paper shape: all models' weights inside ±1 with sharp zero peaks; AlexNet/ResNet50 narrow, MobileNetV2 wide")
	return t, nil
}

// sparkline renders a histogram as a compact bar string.
func sparkline(h *stats.Histogram) string {
	glyphs := []rune(" .:-=+*#%@")
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for _, c := range h.Counts {
		idx := c * (len(glyphs) - 1) / maxC
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// Fig4 reproduces "Accuracy Convergence Comparison for EBLCs": per-round
// accuracy for each compressor plus the uncompressed baseline; SZx
// collapses to chance.
func Fig4(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig4",
		Title:   "Accuracy convergence per compressor (mini-FL, AlexNet-mini on CIFAR10-like, REL 1e-2)",
		Columns: []string{"Transport", "AccByRound", "Final(%)"},
	}
	runs := []struct {
		label string
		comp  string
	}{
		{"uncompressed", ""},
		{"fedsz-sz2", "sz2"},
		{"fedsz-sz3", "sz3"},
		{"fedsz-zfp", "zfp"},
		{"fedsz-szx", "szx"},
	}
	for _, r := range runs {
		var transport fl.Transport = fl.RawTransport{}
		if r.comp != "" {
			comp, err := compressors.Get(r.comp)
			if err != nil {
				return nil, err
			}
			transport = fl.NewFedSZTransport(core.Options{Lossy: comp, LossyParams: ebcl.Rel(1e-2)})
		}
		fed, err := buildFederation(cfg, "alexnet", "cifar10", transport, 0xF4)
		if err != nil {
			return nil, err
		}
		results, err := fed.Run(context.Background(), cfg.Rounds, 1)
		if err != nil {
			return nil, err
		}
		var curve []string
		for _, res := range results {
			curve = append(curve, fmt.Sprintf("%.0f", 100*res.Accuracy))
		}
		t.AddRow(r.label, strings.Join(curve, " "), f2(100*results[len(results)-1].Accuracy))
	}
	t.AddNote("paper shape: SZ2/SZ3/ZFP track the uncompressed curve")
	t.AddNote("divergence: the paper reports SZx at 10%% (chance) for every bound; a bound-conforming SZx cannot produce that collapse on these models — its truncation error is provably <= eb x range. The failure mode exists (outlier-dominated ranges collapse near-zero blocks, see szx tests) but the paper's blanket 10%% is attributable to its specific SZx v1.0.0 integration. See EXPERIMENTS.md")
	return t, nil
}

// fig5Bounds are the sweep points of paper Figure 5.
var fig5Bounds = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// Fig5 reproduces "Inference Accuracy Across Diverse Models and Datasets
// while Varying FedSZ Relative Error Bound".
func Fig5(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "Final accuracy vs REL error bound (FedSZ-SZ2 vs uncompressed)",
		Columns: []string{"Model", "Dataset", "Uncomp(%)", "1e-5", "1e-4", "1e-3", "1e-2", "1e-1"},
	}
	for _, combo := range modelDatasetCombos(cfg) {
		modelName, ds := combo[0], combo[1]
		fedRaw, err := buildFederation(cfg, modelName, ds, fl.RawTransport{}, 0xF5)
		if err != nil {
			return nil, err
		}
		rawRes, err := fedRaw.Run(context.Background(), cfg.Rounds, 1)
		if err != nil {
			return nil, err
		}
		row := []string{modelName, ds, f2(100 * rawRes[len(rawRes)-1].Accuracy)}
		for _, eb := range fig5Bounds {
			tr := fl.NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(eb)})
			fed, err := buildFederation(cfg, modelName, ds, tr, 0xF5)
			if err != nil {
				return nil, err
			}
			res, err := fed.Run(context.Background(), cfg.Rounds, 1)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(100*res[len(res)-1].Accuracy))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: accuracy flat for bounds <= 1e-2, sharp decline at 1e-1")
	return t, nil
}

// Fig6 reproduces "Client Runtime per Epoch Breakdown including FedSZ
// Compression".
func Fig6(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig6",
		Title:   "Round time breakdown with FedSZ at REL 1e-2 (train / validate / compress+decompress)",
		Columns: []string{"Model", "Dataset", "Train", "Validate", "Codec", "Codec%"},
	}
	for _, combo := range modelDatasetCombos(cfg) {
		modelName, ds := combo[0], combo[1]
		tr := fl.NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
		fed, err := buildFederation(cfg, modelName, ds, tr, 0xF6)
		if err != nil {
			return nil, err
		}
		res, err := fed.RunRound(context.Background(), 0, 1)
		if err != nil {
			return nil, err
		}
		codec := res.Timings.Compress + res.Timings.Decompress
		total := res.Timings.Train + res.Timings.Validate + codec
		t.AddRow(modelName, ds, ms(res.Timings.Train), ms(res.Timings.Validate), ms(codec),
			pct(float64(codec)/float64(total)))
	}
	t.AddNote("paper shape: compression is a small share of round time (avg 4.7%%, worst 17%%); mini models shrink training cost so the share runs higher here")
	return t, nil
}

// fig7Bounds are the sweep points of paper Figure 7.
var fig7Bounds = []float64{1e-5, 1e-4, 1e-3, 1e-2}

// Fig7 reproduces "Total Communication Time for Models over Different REL
// Error Bounds on 10Mbps Network".
func Fig7(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "Communication time on a 10 Mbps link, FedSZ vs uncompressed (paper-scale extrapolation)",
		Columns: []string{"Model", "REL", "FedSZ(s)", "Uncompressed(s)", "Reduction"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xF7))
	for _, modelName := range models.Names() {
		profile, err := models.BuildProfile(modelName, rng, cfg.ProfileScale)
		if err != nil {
			return nil, err
		}
		for _, eb := range fig7Bounds {
			stream, st, err := core.Compress(profile, core.Options{LossyParams: ebcl.Rel(eb)})
			if err != nil {
				return nil, err
			}
			dDur, err := measureDecompress(stream)
			if err != nil {
				return nil, err
			}
			scaleUp := 1 / cfg.ProfileScale
			tC := time.Duration(float64(st.CompressTime) * scaleUp)
			tD := time.Duration(float64(dDur) * scaleUp)
			raw := int(float64(st.RawBytes) * scaleUp)
			comp := int(float64(st.CompressedBytes) * scaleUp)
			d := shouldCompress(tC, tD, raw, comp, netsim.EdgeLink)
			t.AddRow(modelName, fmt.Sprintf("%.0e", eb), secs(d.CompressedTime),
				secs(d.UncompressedTime), f2(d.Speedup())+"x")
		}
	}
	t.AddNote("paper shape: order-of-magnitude reduction at every bound on 10 Mbps (13.26x for AlexNet at 1e-2)")
	return t, nil
}

// Fig8 reproduces "Communication Time for Transmitting AlexNet over
// Variable Network": time vs bandwidth per compressor, with the compression
// crossover.
func Fig8(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "AlexNet transfer time vs bandwidth per compressor (codec time + transfer, paper-scale extrapolation)",
		Columns: []string{"Bandwidth(Mbps)", "sz2", "sz3", "zfp", "original", "winner"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xF8))
	profile, err := models.BuildProfile("alexnet", rng, cfg.ProfileScale)
	if err != nil {
		return nil, err
	}
	type cost struct {
		codec time.Duration
		bytes int
	}
	scaleUp := 1 / cfg.ProfileScale
	costs := map[string]cost{}
	for _, name := range []string{"sz2", "sz3", "zfp"} {
		comp, err := compressors.Get(name)
		if err != nil {
			return nil, err
		}
		stream, st, err := core.Compress(profile, core.Options{Lossy: comp, LossyParams: ebcl.Rel(1e-2)})
		if err != nil {
			return nil, err
		}
		dDur, err := measureDecompress(stream)
		if err != nil {
			return nil, err
		}
		costs[name] = cost{
			codec: time.Duration(float64(st.CompressTime+dDur) * scaleUp),
			bytes: int(float64(st.CompressedBytes) * scaleUp),
		}
	}
	rawBytes := int(float64(profile.SizeBytes()) * scaleUp)
	var crossover float64 = -1
	for _, mbps := range []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000} {
		link := linkMbps(mbps)
		rawTime := link.TransmitTime(rawBytes)
		row := []string{fmt.Sprintf("%g", mbps)}
		best, bestT := "original", rawTime
		for _, name := range []string{"sz2", "sz3", "zfp"} {
			c := costs[name]
			total := c.codec + link.TransmitTime(c.bytes)
			row = append(row, secs(total))
			if total < bestT {
				best, bestT = name, total
			}
		}
		row = append(row, secs(rawTime), best)
		if best == "original" && crossover < 0 {
			crossover = mbps
		}
		t.AddRow(row...)
	}
	if crossover > 0 {
		t.AddNote("compression stops paying off near %g Mbps (paper: ~500 Mbps)", crossover)
	} else {
		t.AddNote("compression wins at every tested bandwidth")
	}
	return t, nil
}

// fig9Cores are the MPI core counts of paper Figure 9.
var fig9Cores = []int{2, 4, 8, 16, 32, 64, 128}

// Fig9 reproduces the weak/strong scaling study: virtual round times for
// MobileNetV2 on CIFAR-10 at 10 Mbps with and without FedSZ.
func Fig9(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "Weak & strong scaling at 10 Mbps (MobileNetV2-mini profile, virtual clock)",
		Columns: []string{"Mode", "Workers", "Clients", "FedSZ", "Uncompressed", "Speedup(FedSZ)"},
	}
	// Calibrate one client's real costs from a mini round.
	tr := fl.NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
	fed, err := buildFederation(cfg, "mobilenetv2", "cifar10", tr, 0xF9)
	if err != nil {
		return nil, err
	}
	res, err := fed.RunRound(context.Background(), 0, 1)
	if err != nil {
		return nil, err
	}
	nClients := len(fed.Clients)
	fz := netsim.ClientProfile{
		ComputeTime:  res.Timings.Train,
		CompressTime: (res.Timings.Compress + res.Timings.Decompress) / time.Duration(nClients),
		UploadBytes:  res.WireBytes / nClients,
	}
	raw := netsim.ClientProfile{
		ComputeTime: res.Timings.Train,
		UploadBytes: res.RawBytes / nClients,
	}
	weakFZ := netsim.WeakScaling(fz, fig9Cores, netsim.EdgeLink)
	weakRaw := netsim.WeakScaling(raw, fig9Cores, netsim.EdgeLink)
	for i := range fig9Cores {
		t.AddRow("weak", fmt.Sprintf("%d", weakFZ[i].Workers), fmt.Sprintf("%d", weakFZ[i].Clients),
			secs(weakFZ[i].RoundTime), secs(weakRaw[i].RoundTime),
			f2(float64(weakRaw[i].RoundTime)/float64(weakFZ[i].RoundTime))+"x")
	}
	strongFZ := netsim.StrongScaling(fz, 127, fig9Cores, netsim.EdgeLink)
	strongRaw := netsim.StrongScaling(raw, 127, fig9Cores, netsim.EdgeLink)
	for i := range fig9Cores {
		t.AddRow("strong", fmt.Sprintf("%d", strongFZ[i].Workers), "127",
			secs(strongFZ[i].RoundTime), secs(strongRaw[i].RoundTime),
			f2(float64(strongRaw[i].RoundTime)/float64(strongFZ[i].RoundTime))+"x")
	}
	t.AddNote("client compute/upload calibrated from a real mini-FL round; transfers simulated on a shared 10 Mbps server link")
	t.AddNote("paper shape: weak scaling grows ~linearly (comm-bound); strong scaling speeds up with workers; FedSZ beats uncompressed throughout")
	return t, nil
}

// fig10Bounds are the error-bound settings of paper Figure 10.
var fig10Bounds = []float64{0.5, 0.1, 0.05}

// Fig10 reproduces "Distribution of Errors for Different Error Bounds" and
// the Laplacian-fit observation motivating the DP discussion.
func Fig10(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "Decompression error distributions (SZ2): Laplace vs Gaussian fit quality",
		Columns: []string{"REL", "ErrStd", "Laplace b", "KS(Laplace)", "KS(Gauss)", "LaplaceWins", "Histogram"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xF10))
	profile, err := models.BuildProfile("alexnet", rng, cfg.ProfileScale)
	if err != nil {
		return nil, err
	}
	weights := lossyPartitionData(profile, core.DefaultThreshold)
	comp, err := compressors.Get("sz2")
	if err != nil {
		return nil, err
	}
	for _, eb := range fig10Bounds {
		stream, err := comp.Compress(weights, ebcl.Rel(eb))
		if err != nil {
			return nil, err
		}
		recon, err := comp.Decompress(stream)
		if err != nil {
			return nil, err
		}
		errs := stats.Errors(weights, recon)
		summ := stats.Summarize(errs)
		lf := stats.FitLaplace(errs)
		gf := stats.FitGaussian(errs)
		ksL := stats.KSDistance(errs, lf.CDF)
		ksG := stats.KSDistance(errs, gf.CDF)
		lim := 3 * summ.Std
		if lim == 0 {
			lim = 1e-9
		}
		h := stats.NewHistogram(errs, -lim, lim, 15)
		t.AddRow(fmt.Sprintf("%g", eb), fmt.Sprintf("%.2e", summ.Std), fmt.Sprintf("%.2e", lf.B),
			f4(ksL), f4(ksG), fmt.Sprintf("%v", ksL < ksG), sparkline(h))
	}
	t.AddNote("paper shape: error histograms peaked at zero with heavy tails, closer to Laplace than Gaussian — the DP potential of §VII-D")
	return t, nil
}
