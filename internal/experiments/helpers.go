package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/dataset"
	"repro/internal/fl"
	"repro/internal/netsim"
	"repro/internal/nn/models"
	"repro/internal/tensor"
)

// netsim shims keep the generator files terse.
func linkMbps(m float64) netsim.Link { return netsim.Link{BandwidthMbps: m} }

var shouldCompress = netsim.ShouldCompress

// lossyPartitionData concatenates the dense weight tensors of a state dict
// — the data the EBLC actually sees (Algorithm 1).
func lossyPartitionData(sd *tensor.StateDict, threshold int) []float32 {
	var out []float32
	for _, e := range sd.Entries() {
		if e.Kind == tensor.KindWeight && e.Tensor.NumElems() > threshold {
			out = append(out, e.Tensor.Data...)
		}
	}
	return out
}

// metadataBlob serializes the lossless partition the way the pipeline does.
func metadataBlob(sd *tensor.StateDict, threshold int) []byte {
	rest := tensor.NewStateDict()
	for _, e := range sd.Entries() {
		if !(e.Kind == tensor.KindWeight && e.Tensor.NumElems() > threshold) {
			rest.Add(e.Name, e.Kind, e.Tensor)
		}
	}
	return rest.Marshal()
}

// buildFederation wires a mini-FL run for (model, dataset) under cfg at
// the default learning rate.
func buildFederation(cfg Config, modelName, datasetName string, transport fl.Transport, seedSalt uint64) (*fl.Federation, error) {
	return buildFederationLR(cfg, modelName, datasetName, transport, seedSalt, 0.02)
}

// buildFederationLR is buildFederation with an explicit client learning
// rate (used by the hyperparameter-mitigation ablation).
func buildFederationLR(cfg Config, modelName, datasetName string, transport fl.Transport, seedSalt uint64, lr float64) (*fl.Federation, error) {
	dcfg, err := dataset.ScaledConfig(datasetName, cfg.ImageSide, cfg.TrainN, cfg.TestN, cfg.Seed+seedSalt)
	if err != nil {
		return nil, err
	}
	train, test := dataset.Generate(dcfg)
	shards := dataset.ShardIID(train, cfg.Clients, cfg.Seed+seedSalt)
	in := models.Input{Channels: dcfg.Channels, Height: dcfg.Height, Width: dcfg.Width, Classes: dcfg.Classes}
	rng := rand.New(rand.NewPCG(cfg.Seed+seedSalt, 1))
	global, err := models.BuildMini(modelName, rng, in)
	if err != nil {
		return nil, err
	}
	clients := make([]*fl.Client, cfg.Clients)
	for i := range clients {
		crng := rand.New(rand.NewPCG(cfg.Seed+seedSalt, uint64(i)+10))
		net, err := models.BuildMini(modelName, crng, in)
		if err != nil {
			return nil, err
		}
		clients[i] = fl.NewClient(i, net, shards[i], 16, lr, cfg.Seed+seedSalt)
	}
	return fl.NewFederation(global, clients, transport, test), nil
}

// measure times f and returns its duration.
func measure(f func() error) (time.Duration, error) {
	t0 := time.Now()
	err := f()
	return time.Since(t0), err
}

// throughputMBps converts (bytes processed, duration) to MB/s.
func throughputMBps(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}

// Formatting helpers.

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string  { return fmt.Sprintf("%.4f", x) }
func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
func secs(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// modelDatasetCombos returns the (model, dataset) pairs an experiment runs:
// everything in full mode, representatives in quick mode.
func modelDatasetCombos(cfg Config) [][2]string {
	if cfg.AllCombos {
		var out [][2]string
		for _, m := range models.Names() {
			for _, d := range []string{"cifar10", "fmnist", "caltech101"} {
				out = append(out, [2]string{m, d})
			}
		}
		return out
	}
	return [][2]string{
		{"alexnet", "cifar10"},
		{"mobilenetv2", "fmnist"},
		{"resnet50", "cifar10"},
	}
}
