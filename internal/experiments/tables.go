package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/compressors"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ebcl"
	"repro/internal/fl"
	"repro/internal/lossless"
	"repro/internal/nn/models"
)

// table1Bounds are the relative error bounds of paper Table I.
var table1Bounds = []float64{1e-2, 1e-3, 1e-4}

// Table1 reproduces "EBLC Comparison Across Different Models for CIFAR-10":
// per (model, compressor, bound) — compression runtime, throughput,
// compression ratio, and final top-1 accuracy from a mini-FL run.
func Table1(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "EBLC comparison across models (runtime/throughput/ratio on profile weights; top-1 from mini-FL on CIFAR10-like)",
		Columns: []string{"Model", "Compressor", "REL", "Runtime", "Throughput(MB/s)", "Ratio", "Top-1(%)"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7AB1))
	for _, modelName := range models.Names() {
		profile, err := models.BuildProfile(modelName, rng, cfg.ProfileScale)
		if err != nil {
			return nil, err
		}
		weights := lossyPartitionData(profile, core.DefaultThreshold)
		rawBytes := 4 * len(weights)
		for _, compName := range []string{"sz2", "sz3", "szx", "zfp"} {
			comp, err := compressors.Get(compName)
			if err != nil {
				return nil, err
			}
			// Accuracy once per (model, compressor): the paper reports a
			// column per bound; quick mode measures at 1e-2 and reuses the
			// run at other bounds only when the compressor is bound-stable.
			accByBound := map[float64]float64{}
			for _, eb := range table1Bounds {
				if !cfg.AllCombos && eb != 1e-2 {
					continue
				}
				acc, err := table1Accuracy(cfg, modelName, compName, eb)
				if err != nil {
					return nil, err
				}
				accByBound[eb] = acc
			}
			for _, eb := range table1Bounds {
				var stream []byte
				dur, err := measure(func() error {
					var cerr error
					stream, cerr = comp.Compress(weights, ebcl.Rel(eb))
					return cerr
				})
				if err != nil {
					return nil, fmt.Errorf("table1 %s/%s: %w", modelName, compName, err)
				}
				ratio := float64(rawBytes) / float64(len(stream))
				accCell := "-"
				if acc, ok := accByBound[eb]; ok {
					accCell = f2(100 * acc)
				} else if acc, ok := accByBound[1e-2]; ok {
					accCell = f2(100*acc) + "*"
				}
				t.AddRow(modelName, compName, fmt.Sprintf("%.0e", eb),
					secs(dur), f2(throughputMBps(rawBytes, dur)), f2(ratio), accCell)
			}
		}
	}
	t.AddNote("profile scale %.2f of paper parameter counts; runtimes are this host, not a Raspberry Pi 5", cfg.ProfileScale)
	if !cfg.AllCombos {
		t.AddNote("* quick mode: accuracy measured at REL 1e-2 and reused for tighter bounds (use -full for per-bound runs)")
	}
	t.AddNote("paper shape: SZ2 best ratio, SZx fastest but collapses accuracy to chance, ZFP lowest ratio on spiky 1-D data")
	return t, nil
}

// table1Accuracy runs mini-FL with the named compressor and returns final
// top-1 accuracy.
func table1Accuracy(cfg Config, modelName, compName string, eb float64) (float64, error) {
	comp, err := compressors.Get(compName)
	if err != nil {
		return 0, err
	}
	tr := fl.NewFedSZTransport(core.Options{Lossy: comp, LossyParams: ebcl.Rel(eb)})
	fed, err := buildFederation(cfg, modelName, "cifar10", tr, 0x71)
	if err != nil {
		return 0, err
	}
	results, err := fed.Run(context.Background(), cfg.Rounds, 1)
	if err != nil {
		return 0, err
	}
	return results[len(results)-1].Accuracy, nil
}

// Table2 reproduces "Lossless Compressor Comparison for Compressing AlexNet
// Metadata".
func Table2(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "Lossless codec comparison on AlexNet metadata partition",
		Columns: []string{"Compressor", "Runtime", "Throughput(MB/s)", "Ratio"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7AB2))
	profile, err := models.BuildProfile("alexnet", rng, cfg.ProfileScale)
	if err != nil {
		return nil, err
	}
	blob := metadataBlob(profile, core.DefaultThreshold)
	for _, name := range lossless.Names() {
		codec, err := lossless.Get(name)
		if err != nil {
			return nil, err
		}
		var enc []byte
		dur, err := measure(func() error {
			var cerr error
			enc, cerr = codec.Compress(blob)
			return cerr
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(name, ms(dur), f2(throughputMBps(len(blob), dur)),
			f3(float64(len(blob))/float64(len(enc))))
	}
	t.AddNote("metadata partition is %d bytes (%.2f%% of the state dict), small non-uniform float arrays → low ratios, as in the paper", len(blob), 100*float64(len(blob))/float64(profile.SizeBytes()))
	t.AddNote("paper shape: blosclz fastest with competitive ratio; xz best ratio but orders slower")
	return t, nil
}

// Table3 reproduces "DNNs for FedSZ Profiling: Mean Statistics".
func Table3(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "Model statistics (paper scale, from profile specs; mini variants shown for the training substrate)",
		Columns: []string{"Model", "Params", "Size(MB)", "%LossyData", "GFLOPs", "MiniParams"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7AB3))
	for _, spec := range models.ProfileSpecs() {
		profile, err := models.BuildProfile(spec.Name, rng, cfg.ProfileScale)
		if err != nil {
			return nil, err
		}
		lossy := len(lossyPartitionData(profile, core.DefaultThreshold))
		mini, err := models.BuildMini(spec.Name, rng, models.Input{Channels: 3, Height: 16, Width: 16, Classes: 10})
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Name,
			fmt.Sprintf("%.1e", float64(spec.Params)),
			fmt.Sprintf("%d", spec.SizeMB),
			pct(float64(lossy)/float64(profile.NumParams())),
			f2(spec.GFLOPs),
			fmt.Sprintf("%d", mini.NumParams()))
	}
	t.AddNote("Params/Size/GFLOPs are Table III reference values; %%LossyData measured from the generated profile dict")
	return t, nil
}

// Table4 reproduces "Dataset Characteristics for FedSZ Benchmarking".
func Table4(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table4",
		Title:   "Dataset characteristics (paper scale; training uses scaled synthetic class-prototype sets)",
		Columns: []string{"Dataset", "#Samples", "InputDim", "Classes", "TrainDim(quick)"},
	}
	for _, s := range dataset.Specs() {
		dcfg, err := dataset.ScaledConfig(s.Name, cfg.ImageSide, cfg.TrainN, cfg.TestN, cfg.Seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.Name,
			fmt.Sprintf("%d", s.NumSamples),
			fmt.Sprintf("%dx%dx%d", s.Height, s.Width, s.Channels),
			fmt.Sprintf("%d", s.Classes),
			fmt.Sprintf("%dx%dx%d (n=%d)", dcfg.Height, dcfg.Width, dcfg.Channels, cfg.TrainN))
	}
	t.AddNote("real corpora are unavailable offline; synthetic class-prototype generators preserve dimensions, class counts, and learnability")
	return t, nil
}

// table5Bounds are the relative error bounds of paper Table V.
var table5Bounds = []float64{1e-1, 1e-2, 1e-3, 1e-4}

// Table5 reproduces "Compression Ratios for FedSZ for Various Models and
// Datasets": the end-to-end pipeline ratio (SZ2 + blosclz).
func Table5(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "table5",
		Title:   "FedSZ end-to-end state-dict compression ratios (SZ2 + blosclz)",
		Columns: []string{"Model", "Dataset", "REL 1e-1", "REL 1e-2", "REL 1e-3", "REL 1e-4"},
	}
	datasets := []string{"cifar10", "caltech101", "fmnist"}
	for mi, modelName := range models.Names() {
		for di, ds := range datasets {
			// Per-(model,dataset) seed: the dataset influences trained
			// weights in the paper; here it perturbs the profile draw.
			rng := rand.New(rand.NewPCG(cfg.Seed+uint64(mi*10+di), 0x7AB5))
			profile, err := models.BuildProfile(modelName, rng, cfg.ProfileScale)
			if err != nil {
				return nil, err
			}
			row := []string{modelName, ds}
			for _, eb := range table5Bounds {
				_, stats, err := core.Compress(profile, core.Options{LossyParams: ebcl.Rel(eb)})
				if err != nil {
					return nil, err
				}
				row = append(row, f2(stats.Ratio()))
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("paper shape: ratios grow with looser bounds; ~5.5-12.6x at REL 1e-2 across models")
	t.AddNote("dataset column varies the synthetic weight draw (the paper's trained weights differ per dataset)")
	return t, nil
}

// Eqn1Decision validates the compression decision rule across a parameter
// grid (Section II-B).
func Eqn1Decision(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "eqn1",
		Title:   "Eqn-1 compress/don't-compress decision across bandwidths (measured SZ2 costs, AlexNet profile)",
		Columns: []string{"Bandwidth(Mbps)", "RawXfer", "CompXfer+Codec", "Compress?", "Speedup"},
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7AB6))
	profile, err := models.BuildProfile("alexnet", rng, cfg.ProfileScale)
	if err != nil {
		return nil, err
	}
	stream, stats, err := core.Compress(profile, core.Options{})
	if err != nil {
		return nil, err
	}
	dDur, err := measureDecompress(stream)
	if err != nil {
		return nil, err
	}
	// Extrapolate codec time and sizes to paper scale (linear in bytes).
	scaleUp := 1 / cfg.ProfileScale
	tC := time.Duration(float64(stats.CompressTime) * scaleUp)
	tD := time.Duration(float64(dDur) * scaleUp)
	raw := int(float64(stats.RawBytes) * scaleUp)
	comp := int(float64(stats.CompressedBytes) * scaleUp)
	for _, mbps := range []float64{1, 10, 100, 500, 1000, 10000} {
		link := linkMbps(mbps)
		d := shouldCompress(tC, tD, raw, comp, link)
		t.AddRow(fmt.Sprintf("%g", mbps), secs(d.UncompressedTime), secs(d.CompressedTime),
			fmt.Sprintf("%v", d.Compress), f2(d.Speedup()))
	}
	t.AddNote("codec times and sizes extrapolated linearly from profile scale %.2f to paper scale", cfg.ProfileScale)
	return t, nil
}

func measureDecompress(stream []byte) (time.Duration, error) {
	return measure(func() error {
		_, _, err := core.Decompress(stream)
		return err
	})
}
