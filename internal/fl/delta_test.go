package fl

import (
	"bytes"
	"context"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/ebcl"
	"repro/internal/nn/models"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// TestFedSZTransportDeltaRounds: the in-memory transport with Delta set must
// run full rounds end to end, actually take the residual path (the rounds
// are temporally correlated by construction), spend fewer wire bytes than
// the identical federation on absolute streams, and still learn.
func TestFedSZTransportDeltaRounds(t *testing.T) {
	const rounds = 3
	abs := NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
	absRes, err := smokeFederation(t, abs, 42).Run(context.Background(), rounds, 1)
	if err != nil {
		t.Fatal(err)
	}

	dt := NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
	dt.Delta = true
	dRes, err := smokeFederation(t, dt, 42).Run(context.Background(), rounds, 1)
	if err != nil {
		t.Fatal(err)
	}

	// The residual encoding must have engaged — otherwise this test silently
	// exercises the absolute path twice.
	if dt.LastStats == nil || dt.LastStats.DeltaTensors == 0 {
		t.Fatalf("delta transport never took the residual path: %+v", dt.LastStats)
	}
	if dt.LastStats.DeltaBytesSaved <= 0 {
		t.Fatalf("residual path engaged but saved nothing: %+v", dt.LastStats)
	}

	// Local SGD steps are small relative to the weights, so residual streams
	// must cost fewer total bytes than absolute streams over the same rounds.
	absWire, dWire := 0, 0
	for r := 0; r < rounds; r++ {
		absWire += absRes[r].WireBytes
		dWire += dRes[r].WireBytes
	}
	if dWire >= absWire {
		t.Errorf("delta wire bytes %d not below absolute %d", dWire, absWire)
	}

	// Delta changes the encoding, not the error contract: learning stays in
	// the same band as the absolute run.
	if d := absRes[rounds-1].Accuracy - dRes[rounds-1].Accuracy; d > 0.15 {
		t.Errorf("delta cost %.3f accuracy (abs %.3f, delta %.3f)",
			d, absRes[rounds-1].Accuracy, dRes[rounds-1].Accuracy)
	}
	t.Logf("wire abs=%d delta=%d (%.1f%% saved), delta tensors last round=%d",
		absWire, dWire, 100*(1-float64(dWire)/float64(absWire)), dt.LastStats.DeltaTensors)
}

// TestNetTransportDeltaStreamingMatchesInMemory: the socket path — FLS2
// negotiation, residual encode straight into the framer, server decode
// against the provider's reference — must reproduce the in-memory delta
// pipeline bit for bit.
func TestNetTransportDeltaStreamingMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	nt := NewNetTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
	nt.Delta = true
	in := models.Input{Channels: 3, Height: 12, Width: 12, Classes: 10}
	refNet, err := models.BuildMini("alexnet", rng, in)
	if err != nil {
		t.Fatal(err)
	}
	ref := refNet.StateDict()
	nt.SetReference(ref)

	// Correlated updates: the reference plus a small SGD-sized step.
	sds := make([]*tensor.StateDict, 4)
	for i := range sds {
		sd := ref.Clone()
		for _, e := range sd.Entries() {
			for j := range e.Tensor.Data {
				e.Tensor.Data[j] += float32(1e-3 * rng.NormFloat64())
			}
		}
		sds[i] = sd
	}
	sr, err := nt.EncodeUploadAll(context.Background(), sds)
	if err != nil {
		t.Fatal(err)
	}

	held, epoch, ok := nt.ref.Get()
	if !ok || epoch != 1 {
		t.Fatalf("reference not retained: ok=%v epoch=%d", ok, epoch)
	}
	opts := nt.Opts
	opts.Reference, opts.RefEpoch = held, epoch
	dopts := core.DecodeOptions{Reference: held, RefEpoch: epoch}
	deltaSections := 0
	for i, sd := range sds {
		stream, stats, err := core.CompressWith(context.Background(), sched.Default(), sd, opts)
		if err != nil {
			t.Fatal(err)
		}
		if stream[4] != 3 {
			t.Fatalf("client %d: in-memory stream version %d, want 3", i, stream[4])
		}
		deltaSections += stats.DeltaTensors
		want, _, err := core.DecompressOpts(context.Background(), sched.Default(), stream, dopts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sr.Decoded[i].Marshal(), want.Marshal()) {
			t.Fatalf("client %d: streamed delta decode not bit-identical to in-memory delta decode", i)
		}
	}
	if deltaSections == 0 {
		t.Fatal("correlated updates produced no residual sections")
	}
	if nt.LastStats.Updates != len(sds) || nt.LastStats.Rejected != 0 {
		t.Fatalf("server stats %+v", nt.LastStats)
	}
}

// TestControllerRetunesTransport: with a Controller whose byte budget is
// impossible to meet, every round must loosen the transport's bound through
// the TunableTransport seam.
func TestControllerRetunesTransport(t *testing.T) {
	tr := NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
	fed := smokeFederation(t, tr, 7)
	ctrl, err := delta.NewController(ebcl.Rel(1e-2), delta.ControllerConfig{TargetBytes: 1, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	fed.Controller = ctrl
	if _, err := fed.Run(context.Background(), 2, 1); err != nil {
		t.Fatal(err)
	}
	// Both rounds exceed the 1-byte budget: two doubling steps.
	if got := tr.Opts.LossyParams.Value; got != 4e-2 {
		t.Fatalf("controller did not retune the transport: bound %g, want 4e-2", got)
	}
}

// TestRunRoundAccumulatorMismatchFails: a retained accumulator from a
// structurally different model must fail the round with the explicit
// incompatibility error, not silently reallocate.
func TestRunRoundAccumulatorMismatchFails(t *testing.T) {
	fed := smokeFederation(t, RawTransport{}, 3)
	if _, err := fed.RunRound(context.Background(), 0, 1); err != nil {
		t.Fatal(err)
	}
	// Simulate the bug the check exists for: the global model changed
	// structure while the pooled accumulator from the old one survived.
	stale := tensor.NewStateDict()
	stale.Add("conv.weight", tensor.KindWeight, tensor.New(8, 8))
	fed.acc = stale
	_, err := fed.RunRound(context.Background(), 1, 1)
	if err == nil || !strings.Contains(err.Error(), "accumulator incompatible") {
		t.Fatalf("stale accumulator not detected: %v", err)
	}
}
