// Package fl implements the federated-learning substrate: FedAvg clients
// and server, round orchestration with pluggable update transports (raw or
// FedSZ-compressed), and per-phase timing — the APPFL/MPI stack of the
// paper replaced by goroutines.
package fl

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/delta"
	"repro/internal/ebcl"
	"repro/internal/flserve"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// Transport encodes a client's state dict for the wire and decodes it at
// the server — the seam where FedSZ plugs in. Every method honours ctx
// cancellation (best-effort for the in-memory transports, end-to-end for
// the socket-backed one).
//
// Decoded state dicts are owned by the caller: their tensor buffers may be
// pool-backed, and a caller that folds a decoded dict and discards it may
// recycle the storage via core.Release — the steady-state zero-allocation
// path RunRound takes.
type Transport interface {
	// Name identifies the transport in experiment output.
	Name() string
	// Encode serializes the update; returns the payload and byte counts
	// (raw, wire) plus the compression time spent.
	Encode(ctx context.Context, sd *tensor.StateDict) (payload []byte, rawBytes int, err error)
	// Decode reverses Encode; the result transfers to the caller.
	Decode(ctx context.Context, payload []byte) (*tensor.StateDict, error)
}

// BatchTransport is an optional Transport extension: a server-side decoder
// that ingests a whole round of client payloads under one parallelism
// budget. RunRound uses it when available instead of per-payload Decode.
type BatchTransport interface {
	Transport
	// DecodeAll decodes payload i into result i; results must be
	// identical to calling Decode on each payload. The returned durations
	// report each payload's own decode time (summed, they reproduce the
	// serial per-client cost the paper's Figure 6 accounts).
	DecodeAll(ctx context.Context, payloads [][]byte) ([]*tensor.StateDict, []time.Duration, error)
}

// StreamRound is what one fused encode+upload+decode pass over a batch of
// client updates produced.
type StreamRound struct {
	// Decoded holds the server-side decoded dicts, index-aligned with the
	// input state dicts.
	Decoded []*tensor.StateDict
	// EncodeDur and DecodeDur report each client's own compress/decode
	// work, socket waits excluded — the per-client accounting of paper
	// Figure 6 regardless of how uploads and decodes overlapped.
	EncodeDur []time.Duration
	DecodeDur []time.Duration
	// RawBytes sums the uncompressed update sizes; WireBytes counts the
	// bytes that actually crossed the socket (framing included).
	RawBytes  int
	WireBytes int64
}

// StreamBatchTransport is an optional Transport extension for transports
// that can fuse client-side encode with the upload itself: each state
// dict compresses section-by-section straight into the transport — no
// intermediate whole-stream payload — while the server decodes it as it
// arrives. RunRound prefers this over Encode+DecodeAll when available.
type StreamBatchTransport interface {
	Transport
	// EncodeUploadAll streams every state dict through the transport and
	// returns the server-decoded results in input order. Results must be
	// bit-identical to Decode(Encode(sd)).
	EncodeUploadAll(ctx context.Context, sds []*tensor.StateDict) (*StreamRound, error)
}

// ReferenceTransport is an optional Transport extension for transports that
// can compress cross-round deltas: RunRound hands it the broadcast global
// state at the top of every round, and the transport encodes subsequent
// updates as residuals against that retained reference (the v3 delta stream
// format), falling back to absolute per tensor — or per connection, when
// the receiving end does not hold the reference.
type ReferenceTransport interface {
	Transport
	// SetReference retains sd as the round's encode/decode baseline. The
	// transport copies what it needs; sd remains owned by the caller. Must
	// not be called concurrently with an in-flight round.
	SetReference(sd *tensor.StateDict)
}

// TunableTransport is an optional Transport extension for transports whose
// lossy error bound can be retuned between rounds — the knob the adaptive
// controller (Federation.Controller) turns.
type TunableTransport interface {
	Transport
	// SetLossyParams replaces the error-control parameters used by
	// subsequent Encodes. Must not be called concurrently with an in-flight
	// round.
	SetLossyParams(p ebcl.Params)
}

// RawTransport transmits the uncompressed serialized state dict.
type RawTransport struct{}

// Name implements Transport.
func (RawTransport) Name() string { return "uncompressed" }

// Encode implements Transport.
func (RawTransport) Encode(_ context.Context, sd *tensor.StateDict) ([]byte, int, error) {
	b := sd.Marshal()
	return b, sd.SizeBytes(), nil
}

// Decode implements Transport.
func (RawTransport) Decode(_ context.Context, p []byte) (*tensor.StateDict, error) {
	return tensor.UnmarshalStateDict(p)
}

// FedSZTransport compresses updates with the FedSZ pipeline.
type FedSZTransport struct {
	Opts core.Options
	// Parallel is the server-side decode budget shared across a round's
	// batch (0 selects GOMAXPROCS).
	Parallel int
	// Delta enables cross-round delta compression: once RunRound supplies a
	// reference via SetReference, updates encode as v3 residual streams
	// against it and decode against the same retained copy. Set before the
	// first round.
	Delta bool
	// LastStats holds the most recent Encode's pipeline statistics.
	mu        sync.Mutex
	LastStats *core.Stats

	ref delta.Ref
}

// NewFedSZTransport wraps pipeline options as a transport.
func NewFedSZTransport(opts core.Options) *FedSZTransport {
	return &FedSZTransport{Opts: opts}
}

// Name implements Transport.
func (t *FedSZTransport) Name() string { return "fedsz" }

// SetReference implements ReferenceTransport: with Delta set it retains a
// copy of sd as the encode/decode baseline for the round; without Delta it
// is a no-op and the transport keeps emitting absolute streams.
func (t *FedSZTransport) SetReference(sd *tensor.StateDict) {
	if t.Delta {
		t.ref.Set(sd)
	}
}

// SetLossyParams implements TunableTransport.
func (t *FedSZTransport) SetLossyParams(p ebcl.Params) {
	t.mu.Lock()
	t.Opts.LossyParams = p
	t.mu.Unlock()
}

// encodeOpts resolves the options for one Encode, folding in the retained
// delta reference when one is set.
func (t *FedSZTransport) encodeOpts() core.Options {
	t.mu.Lock()
	opts := t.Opts
	t.mu.Unlock()
	if ref, epoch, ok := t.ref.Get(); ok {
		opts.Reference, opts.RefEpoch = ref, epoch
	}
	return opts
}

// decodeOpts mirrors encodeOpts for the server side of the same round.
func (t *FedSZTransport) decodeOpts() core.DecodeOptions {
	if ref, epoch, ok := t.ref.Get(); ok {
		return core.DecodeOptions{Reference: ref, RefEpoch: epoch}
	}
	return core.DecodeOptions{}
}

// Encode implements Transport.
func (t *FedSZTransport) Encode(ctx context.Context, sd *tensor.StateDict) ([]byte, int, error) {
	payload, stats, err := core.CompressWith(ctx, sched.Default(), sd, t.encodeOpts())
	if err != nil {
		return nil, 0, err
	}
	t.mu.Lock()
	t.LastStats = stats
	t.mu.Unlock()
	return payload, stats.RawBytes, nil
}

// Decode implements Transport.
func (t *FedSZTransport) Decode(ctx context.Context, p []byte) (*tensor.StateDict, error) {
	sd, _, err := core.DecompressOpts(ctx, sched.Default(), p, t.decodeOpts())
	return sd, err
}

// DecodeAll implements BatchTransport: the whole round's payloads decode
// under one shared parallelism budget.
func (t *FedSZTransport) DecodeAll(ctx context.Context, payloads [][]byte) ([]*tensor.StateDict, []time.Duration, error) {
	sds, stats, err := core.DecompressAllOpts(ctx, sched.NewPool(t.Parallel), payloads, t.decodeOpts())
	if err != nil {
		return nil, nil, err
	}
	durs := make([]time.Duration, len(stats))
	for i, s := range stats {
		durs[i] = s.DecompressTime
	}
	return sds, durs, nil
}

// NetTransport is FedSZTransport carried over real loopback TCP: client
// updates upload to an in-process flserve aggregation server, which
// decodes each tensor while the next is still arriving (see
// internal/flserve for the pipelining and backpressure model). Where
// FedSZTransport.DecodeAll measures the batched in-memory path, this
// transport measures the same round end-to-end on sockets — framing,
// CRC verification, kernel buffers, and TCP flow control included.
//
// A round's uploads are multiplexed over a handful of reused connections
// (the flserve multi-update protocol), so dial and prelude cost is paid
// per session, not per client. Through EncodeUploadAll the transport also
// fuses the client-side encode into the upload: each state dict
// compresses straight into its session's wire framer, overlapping encode
// with send.
type NetTransport struct {
	Opts core.Options
	// Parallel is the server-side decode budget (0 selects GOMAXPROCS).
	Parallel int
	// Link optionally throttles each client's upload to a constrained
	// uplink (the paper's 10 Mbps edge setting); zero uploads unthrottled.
	Link netsim.Link
	// Sessions is how many connections a round's uploads are multiplexed
	// over (0 selects min(4, clients)). 1 reproduces the strict
	// one-connection-per-round mode.
	Sessions int
	// Timeout and Retries form the per-upload deadline/retry policy passed
	// through to the flserve client (zero values: no per-attempt timeout,
	// no retries).
	Timeout time.Duration
	Retries int
	// Delta enables cross-round delta uploads on the streaming path: once
	// RunRound supplies a reference via SetReference, each session opens
	// with the FLS2 epoch negotiation and — when the server accepts —
	// streams v3 residual encodes; a refused session (or a non-delta
	// server) falls back to absolute uploads on the same connection, so
	// delta clients and plain FLS1 clients interoperate freely. Set before
	// the first round.
	Delta bool
	// LastStats holds the server's ingest counters from the most recent
	// batch call, including the decode/receive overlap ratio. It is
	// written only as that call returns; read it after the round, not
	// concurrently with one.
	LastStats flserve.Stats

	ref delta.Ref
}

// NewNetTransport wraps pipeline options as a socket-backed transport.
func NewNetTransport(opts core.Options) *NetTransport {
	return &NetTransport{Opts: opts}
}

// Name implements Transport.
func (t *NetTransport) Name() string { return "fedsz+tcp" }

// SetReference implements ReferenceTransport: with Delta set it retains a
// copy of sd as the round's baseline, served to the ephemeral aggregation
// server via the epoch-checked provider and encoded against on sessions
// whose FLS2 negotiation succeeded. A no-op without Delta.
func (t *NetTransport) SetReference(sd *tensor.StateDict) {
	if t.Delta {
		t.ref.Set(sd)
	}
}

// SetLossyParams implements TunableTransport.
func (t *NetTransport) SetLossyParams(p ebcl.Params) { t.Opts.LossyParams = p }

// uploadOpts resolves the encode options for one session: the retained
// reference rides along only when this session's delta negotiation
// succeeded — the per-connection absolute fallback that keeps a refused (or
// legacy) session wire-compatible.
func (t *NetTransport) uploadOpts(s *flserve.Session) core.Options {
	opts := t.Opts
	if s.DeltaAccepted() {
		if ref, epoch, ok := t.ref.Get(); ok {
			opts.Reference, opts.RefEpoch = ref, epoch
		}
	}
	return opts
}

// Encode implements Transport.
func (t *NetTransport) Encode(ctx context.Context, sd *tensor.StateDict) ([]byte, int, error) {
	payload, stats, err := core.CompressWith(ctx, sched.Default(), sd, t.Opts)
	if err != nil {
		return nil, 0, err
	}
	return payload, stats.RawBytes, nil
}

// Decode implements Transport (the in-memory fallback for single payloads).
func (t *NetTransport) Decode(ctx context.Context, p []byte) (*tensor.StateDict, error) {
	sd, _, err := core.DecompressWith(ctx, sched.Default(), p)
	return sd, err
}

// dial opens one round session: the FLS2 delta negotiation when a
// reference is retained, the plain FLS1 prelude otherwise. A server that
// refuses the negotiation still yields a usable session — uploads just go
// absolute.
func (t *NetTransport) dial(ctx context.Context, c *flserve.Client) (*flserve.Session, error) {
	if t.Delta {
		if _, epoch, ok := t.ref.Get(); ok {
			return c.DialDelta(ctx, epoch)
		}
	}
	return c.Dial(ctx)
}

// netRound is the shared server+session scaffolding behind DecodeAll and
// EncodeUploadAll: an ephemeral aggregation server, a handler collecting
// results by client ID, and n updates multiplexed over a few reused
// sessions. upload sends update i on its session.
func (t *NetTransport) netRound(ctx context.Context, n int, upload func(ctx context.Context, s *flserve.Session, i int) error) ([]*tensor.StateDict, []time.Duration, error) {
	results := make([]*tensor.StateDict, n)
	durs := make([]time.Duration, n)
	var mu sync.Mutex
	var refProvider func(uint32) *tensor.StateDict
	if t.Delta {
		refProvider = t.ref.Provider()
	}
	srv, err := flserve.Listen("127.0.0.1:0", flserve.Config{
		Parallel:      t.Parallel,
		UploadTimeout: t.Timeout,
		RefProvider:   refProvider,
		Handler: func(u flserve.Update) error {
			mu.Lock()
			defer mu.Unlock()
			if int(u.Client) >= n {
				return fmt.Errorf("fl: unexpected client id %d", u.Client)
			}
			if results[u.Client] != nil {
				// A retry after a lost ack re-delivers an already-folded
				// update; keep the first result (uploads are at-least-once)
				// and recycle the duplicate's decode buffers.
				core.Release(u.State)
				return nil
			}
			results[u.Client] = u.State
			d := u.Stats.DecompressTime - u.Stats.ReadWait
			if d < u.Stats.DecodeWork {
				d = u.Stats.DecodeWork
			}
			durs[u.Client] = d
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}

	sessions := t.Sessions
	if sessions <= 0 {
		sessions = 4
	}
	sessions = min(sessions, n)
	client := &flserve.Client{
		Addr: srv.Addr().String(), Link: t.Link,
		Timeout: t.Timeout, Retries: t.Retries,
	}
	upErrs := make([]error, n)
	var wg sync.WaitGroup
	// Stripe updates over the sessions: session s carries clients s,
	// s+sessions, s+2·sessions, … sequentially over one connection. The
	// client's Timeout/Retries policy applies per update: a transport
	// failure closes the dead session, re-dials, and retries that update
	// with backoff; a server rejection or context end fails it outright
	// (the server drops the connection after any failed update, so the
	// session is re-dialed either way).
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var sess *flserve.Session
			defer func() {
				if sess != nil {
					sess.Close()
				}
			}()
			backoff := client.RetryBackoff
			if backoff <= 0 {
				backoff = 50 * time.Millisecond
			}
			for i := s; i < n; i += sessions {
				var err error
				for try := 0; ; try++ {
					actx, cancel := ctx, context.CancelFunc(func() {})
					if client.Timeout > 0 {
						actx, cancel = context.WithTimeout(ctx, client.Timeout)
					}
					if sess == nil {
						sess, err = t.dial(actx, client)
					}
					if err == nil {
						err = upload(actx, sess, i)
					}
					cancel()
					if err == nil {
						break
					}
					// Any failure leaves the connection unusable.
					if sess != nil {
						sess.Close()
						sess = nil
					}
					if errors.Is(err, flserve.ErrRejected) || ctx.Err() != nil || try >= client.Retries {
						break
					}
					select {
					case <-time.After(backoff):
					case <-ctx.Done():
					}
					backoff *= 2
				}
				if upErrs[i] = err; err != nil {
					// Fail this stripe's remaining clients rather than keep
					// re-dialing into a presumably broken round.
					for j := i + sessions; j < n; j += sessions {
						upErrs[j] = fmt.Errorf("fl: session aborted by client %d failure", i)
					}
					return
				}
			}
		}(s)
	}
	wg.Wait()
	closeErr := srv.Close()
	for i, err := range upErrs {
		if err != nil {
			return nil, nil, fmt.Errorf("fl: net upload client %d: %w", i, err)
		}
	}
	if closeErr != nil {
		return nil, nil, closeErr
	}
	for i, sd := range results {
		if sd == nil {
			return nil, nil, fmt.Errorf("fl: client %d update never arrived", i)
		}
	}
	t.LastStats = srv.Stats()
	return results, durs, nil
}

// DecodeAll implements BatchTransport: pre-compressed payloads upload over
// the reused sessions (client i carries ID i) and the decoded dicts return
// in payload order, bit-identical to Decode on each payload. The returned
// durations report each payload's own decode cost (wall clock minus time
// blocked on the socket), preserving the per-client accounting of paper
// Figure 6.
func (t *NetTransport) DecodeAll(ctx context.Context, payloads [][]byte) ([]*tensor.StateDict, []time.Duration, error) {
	return t.netRound(ctx, len(payloads), func(ctx context.Context, s *flserve.Session, i int) error {
		return s.Upload(ctx, uint32(i), payloads[i])
	})
}

// EncodeUploadAll implements StreamBatchTransport: each state dict
// compresses straight into its session's wire framer — header and tensor
// sections hit the socket while later tensors are still compressing — so
// no client ever materializes its whole compressed stream. Decoded
// results are bit-identical to the in-memory pipeline's.
func (t *NetTransport) EncodeUploadAll(ctx context.Context, sds []*tensor.StateDict) (*StreamRound, error) {
	encDurs := make([]time.Duration, len(sds))
	rawBytes := 0
	for _, sd := range sds {
		rawBytes += sd.SizeBytes()
	}
	decoded, decDurs, err := t.netRound(ctx, len(sds), func(ctx context.Context, s *flserve.Session, i int) error {
		stats, err := s.UploadState(ctx, uint32(i), sds[i], t.uploadOpts(s), sched.Default())
		if err != nil {
			return err
		}
		// The client's own compress cost, socket waits excluded — the
		// encode-side mirror of the decode duration derivation.
		d := stats.CompressTime - stats.WriteWait
		if d < stats.EncodeWork {
			d = stats.EncodeWork
		}
		encDurs[i] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &StreamRound{
		Decoded:   decoded,
		EncodeDur: encDurs,
		DecodeDur: decDurs,
		RawBytes:  rawBytes,
		WireBytes: t.LastStats.WireBytes,
	}, nil
}

// Client is one FedAvg participant: a local model, a data shard, and an
// SGD optimizer.
type Client struct {
	ID        int
	Net       *nn.Network
	Data      *dataset.Dataset
	BatchSize int
	Opt       *nn.SGD
	rng       *rand.Rand
}

// NewClient constructs a client around an existing network.
func NewClient(id int, net *nn.Network, data *dataset.Dataset, batchSize int, lr float64, seed uint64) *Client {
	return &Client{
		ID: id, Net: net, Data: data, BatchSize: batchSize,
		Opt: nn.NewSGD(lr, 0.9, 5e-4),
		rng: rand.New(rand.NewPCG(seed, uint64(id)+1)),
	}
}

// TrainEpochs runs local SGD for the given epoch count and returns the
// final mean loss.
func (c *Client) TrainEpochs(epochs int) float64 {
	var lastLoss float64
	n := c.Data.Len()
	for e := 0; e < epochs; e++ {
		perm := c.rng.Perm(n)
		var epochLoss float64
		batches := 0
		for lo := 0; lo+c.BatchSize <= n; lo += c.BatchSize {
			x, labels := batchByIndex(c.Data, perm[lo:lo+c.BatchSize])
			c.Net.ZeroGrads()
			logits := c.Net.Forward(x, true)
			loss, grad := nn.SoftmaxCrossEntropy(logits, labels)
			c.Net.Backward(grad)
			c.Opt.Step(c.Net.Params())
			epochLoss += loss
			batches++
		}
		if batches > 0 {
			lastLoss = epochLoss / float64(batches)
		}
	}
	return lastLoss
}

func batchByIndex(d *dataset.Dataset, idx []int) (*tensor.Tensor, []int) {
	c, h, w := d.Spec.Channels, d.Spec.Height, d.Spec.Width
	plane := c * h * w
	x := tensor.New(len(idx), c, h, w)
	labels := make([]int, len(idx))
	for i, s := range idx {
		copy(x.Data[i*plane:(i+1)*plane], d.X.Data[s*plane:(s+1)*plane])
		labels[i] = d.Labels[s]
	}
	return x, labels
}

// RoundTimings breaks a communication round into the phases of paper
// Figure 6.
type RoundTimings struct {
	Train    time.Duration // max over clients (they run in parallel)
	Compress time.Duration // sum of client Encode times
	// Decompress sums each client payload's own decode time — the
	// per-client accounting of paper Figure 6, regardless of how the
	// server parallelizes the batch.
	Decompress time.Duration
	// DecompressWall is the wall-clock of the server-side decode +
	// aggregate phase; with a BatchTransport on a multicore server it is
	// smaller than Decompress.
	DecompressWall time.Duration
	Validate       time.Duration
}

// RoundResult reports one FedAvg communication round.
type RoundResult struct {
	Round     int
	Loss      float64 // mean client training loss
	Accuracy  float64 // server-side validation accuracy
	RawBytes  int     // total uncompressed update bytes (all clients)
	WireBytes int     // total transmitted bytes (all clients)
	Timings   RoundTimings
}

// Federation owns a global model and a set of clients.
type Federation struct {
	Global    *nn.Network
	Clients   []*Client
	Transport Transport
	Test      *dataset.Dataset
	EvalBatch int

	// Tracer, when non-nil, receives one "round" summary event per
	// RunRound with the loss/accuracy/bytes/phase-duration breakdown.
	Tracer *telemetry.Tracer

	// Controller, when non-nil, closes the loop on the transport's lossy
	// error bound: after each round's evaluation it observes the wire bytes
	// and accuracy and retunes the bound toward its byte budget or accuracy
	// floor, applying the adjustment through TunableTransport (transports
	// that do not implement it leave the controller inert). Each decision
	// is traced as a "controller" event.
	Controller *delta.Controller

	// acc is the FedAvg accumulator, pooled on first use and rezeroed in
	// place every subsequent round (LoadStateDict copies out of it, so
	// holding it across rounds is safe).
	acc *tensor.StateDict
}

// NewFederation wires a federation together. All client networks must be
// structurally identical to the global network.
func NewFederation(global *nn.Network, clients []*Client, transport Transport, test *dataset.Dataset) *Federation {
	return &Federation{Global: global, Clients: clients, Transport: transport, Test: test, EvalBatch: 64}
}

// RunRound executes one FedAvg round: broadcast → parallel local training →
// transport-encoded upload → aggregation → validation. Cancelling ctx
// aborts the round between phases and inside the transport calls.
func (f *Federation) RunRound(ctx context.Context, round, localEpochs int) (*RoundResult, error) {
	res := &RoundResult{Round: round}
	globalState := f.Global.StateDict()
	if rt, ok := f.Transport.(ReferenceTransport); ok {
		// The state every client trains from this round is the delta
		// baseline both ends encode and decode against.
		rt.SetReference(globalState)
	}
	_, streaming := f.Transport.(StreamBatchTransport)

	type clientOut struct {
		payload  []byte
		state    *tensor.StateDict
		raw      int
		loss     float64
		trainDur time.Duration
		encDur   time.Duration
		err      error
	}
	outs := make([]clientOut, len(f.Clients))
	var wg sync.WaitGroup
	for i, c := range f.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			if err := c.Net.LoadStateDict(globalState); err != nil {
				outs[i].err = err
				return
			}
			t0 := time.Now()
			outs[i].loss = c.TrainEpochs(localEpochs)
			outs[i].trainDur = time.Since(t0)
			if streaming {
				// A streaming transport fuses encode with upload; the
				// client hands over its state dict instead of a payload.
				outs[i].state = c.Net.StateDict()
				return
			}
			t0 = time.Now()
			payload, raw, err := f.Transport.Encode(ctx, c.Net.StateDict())
			outs[i].encDur = time.Since(t0)
			outs[i].payload, outs[i].raw, outs[i].err = payload, raw, err
		}(i, c)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	payloads := make([][]byte, len(outs))
	states := make([]*tensor.StateDict, len(outs))
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			return nil, fmt.Errorf("fl: client %d: %w", i, o.err)
		}
		payloads[i] = o.payload
		states[i] = o.state
		res.Loss += o.loss / float64(len(f.Clients))
		res.RawBytes += o.raw
		res.WireBytes += len(o.payload)
		if o.trainDur > res.Timings.Train {
			res.Timings.Train = o.trainDur
		}
		res.Timings.Compress += o.encDur
	}

	// Server-side decode + FedAvg aggregation in deterministic client
	// order, chunk-wise so each chunk is folded into the accumulator and
	// released before the next decodes — peak memory stays O(chunk × model)
	// rather than O(clients × model). A StreamBatchTransport additionally
	// fuses the encode into each chunk's upload; a BatchTransport decodes
	// pre-encoded payloads under one shared parallelism budget.
	if f.acc != nil {
		// A retained accumulator that no longer matches the model means the
		// global network changed structure mid-federation — a bug ZeroInto's
		// silent reallocation would paper over (stale pooled buffers, wrong
		// aggregation). Fail loudly instead.
		if err := f.acc.CheckCompatible(globalState); err != nil {
			return nil, fmt.Errorf("fl: accumulator incompatible with global model: %w", err)
		}
	}
	f.acc = globalState.ZeroInto(f.acc)
	acc := f.acc
	weight := 1 / float32(len(f.Clients))
	chunk := 2 * runtime.GOMAXPROCS(0)
	t0 := time.Now()
	switch tr := f.Transport.(type) {
	case StreamBatchTransport:
		for lo := 0; lo < len(states); lo += chunk {
			hi := min(lo+chunk, len(states))
			sr, err := tr.EncodeUploadAll(ctx, states[lo:hi])
			if err != nil {
				return nil, fmt.Errorf("fl: stream round clients %d-%d: %w", lo, hi-1, err)
			}
			res.RawBytes += sr.RawBytes
			res.WireBytes += int(sr.WireBytes)
			for _, d := range sr.EncodeDur {
				res.Timings.Compress += d
			}
			for _, d := range sr.DecodeDur {
				res.Timings.Decompress += d
			}
			for i, sd := range sr.Decoded {
				if err := acc.AddScaled(sd, weight); err != nil {
					return nil, fmt.Errorf("fl: aggregate client %d: %w", lo+i, err)
				}
				// Folded and dead: hand the decode buffers back to the pool
				// so the next chunk's decodes reuse them.
				core.Release(sd)
				states[lo+i] = nil
			}
		}
	case BatchTransport:
		for lo := 0; lo < len(payloads); lo += chunk {
			hi := min(lo+chunk, len(payloads))
			sds, durs, err := tr.DecodeAll(ctx, payloads[lo:hi])
			if err != nil {
				return nil, fmt.Errorf("fl: batch decode clients %d-%d: %w", lo, hi-1, err)
			}
			for _, d := range durs {
				res.Timings.Decompress += d
			}
			for i, sd := range sds {
				if err := acc.AddScaled(sd, weight); err != nil {
					return nil, fmt.Errorf("fl: aggregate client %d: %w", lo+i, err)
				}
				core.Release(sd)
				payloads[lo+i] = nil
			}
		}
	default:
		for i, p := range payloads {
			t1 := time.Now()
			sd, err := f.Transport.Decode(ctx, p)
			res.Timings.Decompress += time.Since(t1)
			if err != nil {
				return nil, fmt.Errorf("fl: decode client %d: %w", i, err)
			}
			if err := acc.AddScaled(sd, weight); err != nil {
				return nil, fmt.Errorf("fl: aggregate client %d: %w", i, err)
			}
			core.Release(sd)
			payloads[i] = nil
		}
	}
	res.Timings.DecompressWall = time.Since(t0)
	if err := f.Global.LoadStateDict(acc); err != nil {
		return nil, err
	}

	t0 = time.Now()
	res.Accuracy = f.Evaluate()
	res.Timings.Validate = time.Since(t0)

	if f.Controller != nil {
		if tt, ok := f.Transport.(TunableTransport); ok {
			adj := f.Controller.Observe(res.WireBytes, res.Accuracy)
			if adj.Changed {
				tt.SetLossyParams(f.Controller.Params())
			}
			f.Tracer.Event("controller",
				telemetry.A("round", res.Round),
				telemetry.A("reason", adj.Reason),
				telemetry.A("changed", adj.Changed),
				telemetry.A("old_bound", adj.Old),
				telemetry.A("new_bound", adj.New),
				telemetry.A("wire_bytes", res.WireBytes),
				telemetry.A("accuracy", res.Accuracy),
			)
		}
	}
	f.Tracer.Event("round",
		telemetry.A("round", res.Round),
		telemetry.A("transport", f.Transport.Name()),
		telemetry.A("loss", res.Loss),
		telemetry.A("accuracy", res.Accuracy),
		telemetry.A("raw_bytes", res.RawBytes),
		telemetry.A("wire_bytes", res.WireBytes),
		telemetry.A("train_us", res.Timings.Train.Microseconds()),
		telemetry.A("compress_us", res.Timings.Compress.Microseconds()),
		telemetry.A("decompress_us", res.Timings.Decompress.Microseconds()),
		telemetry.A("decompress_wall_us", res.Timings.DecompressWall.Microseconds()),
		telemetry.A("validate_us", res.Timings.Validate.Microseconds()),
	)
	return res, nil
}

// Evaluate computes global-model top-1 accuracy on the test set.
func (f *Federation) Evaluate() float64 {
	n := f.Test.Len()
	correct := 0.0
	for lo := 0; lo < n; lo += f.EvalBatch {
		hi := min(lo+f.EvalBatch, n)
		x, labels := f.Test.Batch(lo, hi)
		logits := f.Global.Forward(x, false)
		correct += nn.Accuracy(logits, labels) * float64(hi-lo)
	}
	return correct / float64(n)
}

// Run executes rounds communication rounds and returns per-round results.
// Cancelling ctx stops after the in-flight round.
func (f *Federation) Run(ctx context.Context, rounds, localEpochs int) ([]*RoundResult, error) {
	out := make([]*RoundResult, 0, rounds)
	for r := 0; r < rounds; r++ {
		res, err := f.RunRound(ctx, r, localEpochs)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
