// Package fl implements the federated-learning substrate: FedAvg clients
// and server, round orchestration with pluggable update transports (raw or
// FedSZ-compressed), and per-phase timing — the APPFL/MPI stack of the
// paper replaced by goroutines.
package fl

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flserve"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Transport encodes a client's state dict for the wire and decodes it at
// the server — the seam where FedSZ plugs in.
type Transport interface {
	// Name identifies the transport in experiment output.
	Name() string
	// Encode serializes the update; returns the payload and byte counts
	// (raw, wire) plus the compression time spent.
	Encode(sd *tensor.StateDict) (payload []byte, rawBytes int, err error)
	// Decode reverses Encode.
	Decode(payload []byte) (*tensor.StateDict, error)
}

// BatchTransport is an optional Transport extension: a server-side decoder
// that ingests a whole round of client payloads under one parallelism
// budget. RunRound uses it when available instead of per-payload Decode.
type BatchTransport interface {
	Transport
	// DecodeAll decodes payload i into result i; results must be
	// identical to calling Decode on each payload. The returned durations
	// report each payload's own decode time (summed, they reproduce the
	// serial per-client cost the paper's Figure 6 accounts).
	DecodeAll(payloads [][]byte) ([]*tensor.StateDict, []time.Duration, error)
}

// RawTransport transmits the uncompressed serialized state dict.
type RawTransport struct{}

// Name implements Transport.
func (RawTransport) Name() string { return "uncompressed" }

// Encode implements Transport.
func (RawTransport) Encode(sd *tensor.StateDict) ([]byte, int, error) {
	b := sd.Marshal()
	return b, sd.SizeBytes(), nil
}

// Decode implements Transport.
func (RawTransport) Decode(p []byte) (*tensor.StateDict, error) {
	return tensor.UnmarshalStateDict(p)
}

// FedSZTransport compresses updates with the FedSZ pipeline.
type FedSZTransport struct {
	Opts core.Options
	// Parallel is the server-side decode budget shared across a round's
	// batch (0 selects GOMAXPROCS).
	Parallel int
	// LastStats holds the most recent Encode's pipeline statistics.
	mu        sync.Mutex
	LastStats *core.Stats
}

// NewFedSZTransport wraps pipeline options as a transport.
func NewFedSZTransport(opts core.Options) *FedSZTransport {
	return &FedSZTransport{Opts: opts}
}

// Name implements Transport.
func (t *FedSZTransport) Name() string { return "fedsz" }

// Encode implements Transport.
func (t *FedSZTransport) Encode(sd *tensor.StateDict) ([]byte, int, error) {
	payload, stats, err := core.Compress(sd, t.Opts)
	if err != nil {
		return nil, 0, err
	}
	t.mu.Lock()
	t.LastStats = stats
	t.mu.Unlock()
	return payload, stats.RawBytes, nil
}

// Decode implements Transport.
func (t *FedSZTransport) Decode(p []byte) (*tensor.StateDict, error) {
	sd, _, err := core.Decompress(p)
	return sd, err
}

// DecodeAll implements BatchTransport: the whole round's payloads decode
// under one shared parallelism budget.
func (t *FedSZTransport) DecodeAll(payloads [][]byte) ([]*tensor.StateDict, []time.Duration, error) {
	sds, stats, err := core.DecompressAll(payloads, t.Parallel)
	if err != nil {
		return nil, nil, err
	}
	durs := make([]time.Duration, len(stats))
	for i, s := range stats {
		durs[i] = s.DecompressTime
	}
	return sds, durs, nil
}

// NetTransport is FedSZTransport carried over real loopback TCP: client
// payloads upload concurrently to an in-process flserve aggregation
// server, which decodes each tensor while the next is still arriving (see
// internal/flserve for the pipelining and backpressure model). Where
// FedSZTransport.DecodeAll measures the batched in-memory path, this
// transport measures the same round end-to-end on sockets — framing,
// CRC verification, kernel buffers, and TCP flow control included.
type NetTransport struct {
	Opts core.Options
	// Parallel is the server-side decode budget (0 selects GOMAXPROCS).
	Parallel int
	// Link optionally throttles each client's upload to a constrained
	// uplink (the paper's 10 Mbps edge setting); zero uploads unthrottled.
	Link netsim.Link
	// LastStats holds the server's ingest counters from the most recent
	// DecodeAll, including the decode/receive overlap ratio. It is written
	// only as DecodeAll returns; read it after the round, not concurrently
	// with one.
	LastStats flserve.Stats
}

// NewNetTransport wraps pipeline options as a socket-backed transport.
func NewNetTransport(opts core.Options) *NetTransport {
	return &NetTransport{Opts: opts}
}

// Name implements Transport.
func (t *NetTransport) Name() string { return "fedsz+tcp" }

// Encode implements Transport.
func (t *NetTransport) Encode(sd *tensor.StateDict) ([]byte, int, error) {
	payload, stats, err := core.Compress(sd, t.Opts)
	if err != nil {
		return nil, 0, err
	}
	return payload, stats.RawBytes, nil
}

// Decode implements Transport (the in-memory fallback for single payloads).
func (t *NetTransport) Decode(p []byte) (*tensor.StateDict, error) {
	sd, _, err := core.Decompress(p)
	return sd, err
}

// DecodeAll implements BatchTransport: it starts an ephemeral aggregation
// server on a loopback socket, uploads every payload concurrently (client
// i carries ID i), and returns the decoded dicts in payload order. Results
// are bit-identical to Decode on each payload. The returned durations
// report each payload's own decode cost (wall clock minus time blocked on
// the socket), preserving the per-client accounting of paper Figure 6.
func (t *NetTransport) DecodeAll(payloads [][]byte) ([]*tensor.StateDict, []time.Duration, error) {
	results := make([]*tensor.StateDict, len(payloads))
	durs := make([]time.Duration, len(payloads))
	var mu sync.Mutex
	srv, err := flserve.Listen("127.0.0.1:0", flserve.Config{
		Parallel: t.Parallel,
		Handler: func(u flserve.Update) error {
			mu.Lock()
			defer mu.Unlock()
			if int(u.Client) >= len(results) || results[u.Client] != nil {
				return fmt.Errorf("fl: unexpected client id %d", u.Client)
			}
			results[u.Client] = u.State
			d := u.Stats.DecompressTime - u.Stats.ReadWait
			if d < u.Stats.DecodeWork {
				d = u.Stats.DecodeWork
			}
			durs[u.Client] = d
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	addr := srv.Addr().String()
	upErrs := make([]error, len(payloads))
	var wg sync.WaitGroup
	for i, p := range payloads {
		wg.Add(1)
		go func(i int, p []byte) {
			defer wg.Done()
			c := &flserve.Client{Addr: addr, Link: t.Link}
			upErrs[i] = c.Upload(uint32(i), p)
		}(i, p)
	}
	wg.Wait()
	closeErr := srv.Close()
	for i, err := range upErrs {
		if err != nil {
			return nil, nil, fmt.Errorf("fl: net upload client %d: %w", i, err)
		}
	}
	if closeErr != nil {
		return nil, nil, closeErr
	}
	for i, sd := range results {
		if sd == nil {
			return nil, nil, fmt.Errorf("fl: client %d update never arrived", i)
		}
	}
	t.LastStats = srv.Stats()
	return results, durs, nil
}

// Client is one FedAvg participant: a local model, a data shard, and an
// SGD optimizer.
type Client struct {
	ID        int
	Net       *nn.Network
	Data      *dataset.Dataset
	BatchSize int
	Opt       *nn.SGD
	rng       *rand.Rand
}

// NewClient constructs a client around an existing network.
func NewClient(id int, net *nn.Network, data *dataset.Dataset, batchSize int, lr float64, seed uint64) *Client {
	return &Client{
		ID: id, Net: net, Data: data, BatchSize: batchSize,
		Opt: nn.NewSGD(lr, 0.9, 5e-4),
		rng: rand.New(rand.NewPCG(seed, uint64(id)+1)),
	}
}

// TrainEpochs runs local SGD for the given epoch count and returns the
// final mean loss.
func (c *Client) TrainEpochs(epochs int) float64 {
	var lastLoss float64
	n := c.Data.Len()
	for e := 0; e < epochs; e++ {
		perm := c.rng.Perm(n)
		var epochLoss float64
		batches := 0
		for lo := 0; lo+c.BatchSize <= n; lo += c.BatchSize {
			x, labels := batchByIndex(c.Data, perm[lo:lo+c.BatchSize])
			c.Net.ZeroGrads()
			logits := c.Net.Forward(x, true)
			loss, grad := nn.SoftmaxCrossEntropy(logits, labels)
			c.Net.Backward(grad)
			c.Opt.Step(c.Net.Params())
			epochLoss += loss
			batches++
		}
		if batches > 0 {
			lastLoss = epochLoss / float64(batches)
		}
	}
	return lastLoss
}

func batchByIndex(d *dataset.Dataset, idx []int) (*tensor.Tensor, []int) {
	c, h, w := d.Spec.Channels, d.Spec.Height, d.Spec.Width
	plane := c * h * w
	x := tensor.New(len(idx), c, h, w)
	labels := make([]int, len(idx))
	for i, s := range idx {
		copy(x.Data[i*plane:(i+1)*plane], d.X.Data[s*plane:(s+1)*plane])
		labels[i] = d.Labels[s]
	}
	return x, labels
}

// RoundTimings breaks a communication round into the phases of paper
// Figure 6.
type RoundTimings struct {
	Train    time.Duration // max over clients (they run in parallel)
	Compress time.Duration // sum of client Encode times
	// Decompress sums each client payload's own decode time — the
	// per-client accounting of paper Figure 6, regardless of how the
	// server parallelizes the batch.
	Decompress time.Duration
	// DecompressWall is the wall-clock of the server-side decode +
	// aggregate phase; with a BatchTransport on a multicore server it is
	// smaller than Decompress.
	DecompressWall time.Duration
	Validate       time.Duration
}

// RoundResult reports one FedAvg communication round.
type RoundResult struct {
	Round     int
	Loss      float64 // mean client training loss
	Accuracy  float64 // server-side validation accuracy
	RawBytes  int     // total uncompressed update bytes (all clients)
	WireBytes int     // total transmitted bytes (all clients)
	Timings   RoundTimings
}

// Federation owns a global model and a set of clients.
type Federation struct {
	Global    *nn.Network
	Clients   []*Client
	Transport Transport
	Test      *dataset.Dataset
	EvalBatch int
}

// NewFederation wires a federation together. All client networks must be
// structurally identical to the global network.
func NewFederation(global *nn.Network, clients []*Client, transport Transport, test *dataset.Dataset) *Federation {
	return &Federation{Global: global, Clients: clients, Transport: transport, Test: test, EvalBatch: 64}
}

// RunRound executes one FedAvg round: broadcast → parallel local training →
// transport-encoded upload → aggregation → validation.
func (f *Federation) RunRound(round, localEpochs int) (*RoundResult, error) {
	res := &RoundResult{Round: round}
	globalState := f.Global.StateDict()

	type clientOut struct {
		payload  []byte
		raw      int
		loss     float64
		trainDur time.Duration
		encDur   time.Duration
		err      error
	}
	outs := make([]clientOut, len(f.Clients))
	var wg sync.WaitGroup
	for i, c := range f.Clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			if err := c.Net.LoadStateDict(globalState); err != nil {
				outs[i].err = err
				return
			}
			t0 := time.Now()
			outs[i].loss = c.TrainEpochs(localEpochs)
			outs[i].trainDur = time.Since(t0)
			t0 = time.Now()
			payload, raw, err := f.Transport.Encode(c.Net.StateDict())
			outs[i].encDur = time.Since(t0)
			outs[i].payload, outs[i].raw, outs[i].err = payload, raw, err
		}(i, c)
	}
	wg.Wait()

	payloads := make([][]byte, len(outs))
	for i := range outs {
		o := &outs[i]
		if o.err != nil {
			return nil, fmt.Errorf("fl: client %d: %w", i, o.err)
		}
		payloads[i] = o.payload
		res.Loss += o.loss / float64(len(f.Clients))
		res.RawBytes += o.raw
		res.WireBytes += len(o.payload)
		if o.trainDur > res.Timings.Train {
			res.Timings.Train = o.trainDur
		}
		res.Timings.Compress += o.encDur
	}

	// Server-side decode + FedAvg aggregation in deterministic client
	// order. A BatchTransport decodes chunk-wise under one shared
	// parallelism budget; each chunk is folded into the accumulator and
	// released before the next decodes, so peak memory stays
	// O(chunk × model) rather than O(clients × model).
	acc := globalState.Zero()
	weight := 1 / float32(len(f.Clients))
	t0 := time.Now()
	if bt, ok := f.Transport.(BatchTransport); ok {
		chunk := 2 * runtime.GOMAXPROCS(0)
		for lo := 0; lo < len(payloads); lo += chunk {
			hi := min(lo+chunk, len(payloads))
			sds, durs, err := bt.DecodeAll(payloads[lo:hi])
			if err != nil {
				return nil, fmt.Errorf("fl: batch decode clients %d-%d: %w", lo, hi-1, err)
			}
			for _, d := range durs {
				res.Timings.Decompress += d
			}
			for i, sd := range sds {
				if err := acc.AddScaled(sd, weight); err != nil {
					return nil, fmt.Errorf("fl: aggregate client %d: %w", lo+i, err)
				}
				payloads[lo+i] = nil
			}
		}
	} else {
		for i, p := range payloads {
			t1 := time.Now()
			sd, err := f.Transport.Decode(p)
			res.Timings.Decompress += time.Since(t1)
			if err != nil {
				return nil, fmt.Errorf("fl: decode client %d: %w", i, err)
			}
			if err := acc.AddScaled(sd, weight); err != nil {
				return nil, fmt.Errorf("fl: aggregate client %d: %w", i, err)
			}
			payloads[i] = nil
		}
	}
	res.Timings.DecompressWall = time.Since(t0)
	if err := f.Global.LoadStateDict(acc); err != nil {
		return nil, err
	}

	t0 = time.Now()
	res.Accuracy = f.Evaluate()
	res.Timings.Validate = time.Since(t0)
	return res, nil
}

// Evaluate computes global-model top-1 accuracy on the test set.
func (f *Federation) Evaluate() float64 {
	n := f.Test.Len()
	correct := 0.0
	for lo := 0; lo < n; lo += f.EvalBatch {
		hi := min(lo+f.EvalBatch, n)
		x, labels := f.Test.Batch(lo, hi)
		logits := f.Global.Forward(x, false)
		correct += nn.Accuracy(logits, labels) * float64(hi-lo)
	}
	return correct / float64(n)
}

// Run executes rounds communication rounds and returns per-round results.
func (f *Federation) Run(rounds, localEpochs int) ([]*RoundResult, error) {
	out := make([]*RoundResult, 0, rounds)
	for r := 0; r < rounds; r++ {
		res, err := f.RunRound(r, localEpochs)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
