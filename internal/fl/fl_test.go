package fl

import (
	"bytes"
	"context"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ebcl"
	"repro/internal/nn/models"
	"repro/internal/tensor"
)

// newTestFederation assembles a 4-client federation (the paper's client
// count) on a scaled CIFAR10-like task.
func newTestFederation(transport Transport, seed uint64) (*Federation, error) {
	cfg, err := dataset.ScaledConfig("cifar10", 12, 192, 64, seed)
	if err != nil {
		return nil, err
	}
	train, test := dataset.Generate(cfg)
	shards := dataset.ShardIID(train, 4, seed)
	in := models.Input{Channels: cfg.Channels, Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes}
	rng := rand.New(rand.NewPCG(seed, 1))
	global, err := models.BuildMini("alexnet", rng, in)
	if err != nil {
		return nil, err
	}
	clients := make([]*Client, 4)
	for i := range clients {
		crng := rand.New(rand.NewPCG(seed, uint64(i)+10))
		net, err := models.BuildMini("alexnet", crng, in)
		if err != nil {
			return nil, err
		}
		clients[i] = NewClient(i, net, shards[i], 16, 0.02, seed)
	}
	return NewFederation(global, clients, transport, test), nil
}

func buildFederation(t *testing.T, transport Transport, seed uint64) *Federation {
	t.Helper()
	fed, err := newTestFederation(transport, seed)
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

// convergenceRounds is the fixture's round count: enough for the FedAvg
// convergence assertions, shared by every multi-round test below.
const convergenceRounds = 12

// convergenceFixture caches one raw and one FedSZ federation run at seed
// 42 so the three multi-round convergence tests train once instead of
// four times — the shared model/dataset fixture that keeps the full
// (non-short) suite fast. Tests only read from it.
type convergenceFixture struct {
	rawInitial float64
	raw        []*RoundResult
	fedszTr    *FedSZTransport
	fedsz      []*RoundResult
	err        error
}

var convergence = sync.OnceValue(func() *convergenceFixture {
	fx := &convergenceFixture{}
	fedRaw, err := newTestFederation(RawTransport{}, 42)
	if err != nil {
		fx.err = err
		return fx
	}
	fx.rawInitial = fedRaw.Evaluate()
	if fx.raw, err = fedRaw.Run(context.Background(), convergenceRounds, 1); err != nil {
		fx.err = err
		return fx
	}
	fx.fedszTr = NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
	fedSZ, err := newTestFederation(fx.fedszTr, 42)
	if err != nil {
		fx.err = err
		return fx
	}
	fx.fedsz, fx.err = fedSZ.Run(context.Background(), convergenceRounds, 1)
	return fx
})

// convergenceFx returns the shared fixture, skipping in short mode (the
// smoke tests cover the round pipeline there).
func convergenceFx(t *testing.T) *convergenceFixture {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-round convergence fixture; TestRoundPipelineSmoke covers the short suite")
	}
	fx := convergence()
	if fx.err != nil {
		t.Fatal(fx.err)
	}
	return fx
}

func TestRawTransportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	net, _ := models.BuildMini("alexnet", rng, models.Input{Channels: 3, Height: 12, Width: 12, Classes: 10})
	sd := net.StateDict()
	var tr RawTransport
	p, raw, err := tr.Encode(context.Background(), sd)
	if err != nil {
		t.Fatal(err)
	}
	if raw != sd.SizeBytes() {
		t.Fatalf("raw bytes %d != %d", raw, sd.SizeBytes())
	}
	got, err := tr.Decode(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := got.MaxAbsDiff(sd)
	if err != nil || d != 0 {
		t.Fatalf("raw transport not exact: d=%v err=%v", d, err)
	}
}

func TestFedAvgImprovesAccuracy(t *testing.T) {
	fx := convergenceFx(t)
	final := fx.raw[len(fx.raw)-1].Accuracy
	if final < fx.rawInitial+0.2 {
		t.Fatalf("accuracy %f -> %f: FedAvg did not learn", fx.rawInitial, final)
	}
	// Timing and byte accounting sanity.
	r := fx.raw[0]
	if r.RawBytes <= 0 || r.WireBytes <= 0 {
		t.Fatal("byte accounting missing")
	}
	if r.Timings.Train <= 0 || r.Timings.Validate <= 0 {
		t.Fatal("timings missing")
	}
	// Raw transport: wire bytes ≈ raw bytes + small framing.
	if r.WireBytes < r.RawBytes {
		t.Fatal("raw transport cannot shrink data")
	}
}

func TestFedSZTransportShrinksUpdatesAndPreservesLearning(t *testing.T) {
	fx := convergenceFx(t)
	r := fx.fedsz[0]
	ratio := float64(r.RawBytes) / float64(r.WireBytes)
	if ratio < 3 {
		t.Errorf("wire ratio %.2f, want >= 3", ratio)
	}
	if r.Timings.Compress <= 0 || r.Timings.Decompress <= 0 {
		t.Error("compression timings missing")
	}
	final := fx.fedsz[len(fx.fedsz)-1].Accuracy
	if final < 0.5 {
		t.Errorf("compressed federation accuracy %.2f, want >= 0.5", final)
	}
	if fx.fedszTr.LastStats == nil || fx.fedszTr.LastStats.Ratio() < 3 {
		t.Error("transport stats not recorded")
	}
}

func TestCompressedMatchesUncompressedWithinHalfPercentShape(t *testing.T) {
	fx := convergenceFx(t)
	// The paper's headline claim at REL 1e-2: compressed accuracy within
	// ~0.5% of uncompressed after 50 rounds. At this micro scale (12 px,
	// 12 rounds) training noise is larger than 0.5%, so assert a loose
	// band (10 points at convergence) — the experiments harness runs the
	// full version.
	rawAcc := fx.raw[len(fx.raw)-1].Accuracy
	szAcc := fx.fedsz[len(fx.fedsz)-1].Accuracy
	if rawAcc-szAcc > 0.10 {
		t.Errorf("compression cost %.3f accuracy (raw %.3f, fedsz %.3f)", rawAcc-szAcc, rawAcc, szAcc)
	}
	t.Logf("raw=%.3f fedsz=%.3f", rawAcc, szAcc)
}

// smokeFederation is a deliberately tiny build (2 clients, 10 px images,
// 48 samples) so the short suite still executes the full round pipeline:
// broadcast → train → encode → batched server decode → aggregate → eval.
func smokeFederation(t *testing.T, transport Transport, seed uint64) *Federation {
	return shardedSmokeFederation(t, transport, seed, func(d *dataset.Dataset) []*dataset.Dataset {
		return dataset.ShardIID(d, 2, seed)
	})
}

func shardedSmokeFederation(t *testing.T, transport Transport, seed uint64, shard func(*dataset.Dataset) []*dataset.Dataset) *Federation {
	t.Helper()
	cfg, err := dataset.ScaledConfig("cifar10", 10, 48, 16, seed)
	if err != nil {
		t.Fatal(err)
	}
	train, test := dataset.Generate(cfg)
	shards := shard(train)
	in := models.Input{Channels: cfg.Channels, Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes}
	rng := rand.New(rand.NewPCG(seed, 1))
	global, err := models.BuildMini("alexnet", rng, in)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, 2)
	for i := range clients {
		crng := rand.New(rand.NewPCG(seed, uint64(i)+10))
		net, err := models.BuildMini("alexnet", crng, in)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = NewClient(i, net, shards[i], 16, 0.02, seed)
	}
	return NewFederation(global, clients, transport, test)
}

// TestRoundPipelineSmoke is the 2-round fast variant that always runs: it
// exercises every phase of the round for both transports and checks the
// accounting invariants, without waiting for convergence.
func TestRoundPipelineSmoke(t *testing.T) {
	for _, tc := range []struct {
		name      string
		transport Transport
	}{
		{"raw", RawTransport{}},
		{"fedsz", NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})},
		{"fedsz+tcp", NewNetTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fed := smokeFederation(t, tc.transport, 42)
			results, err := fed.Run(context.Background(), 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 2 {
				t.Fatalf("got %d rounds", len(results))
			}
			for _, r := range results {
				if r.RawBytes <= 0 || r.WireBytes <= 0 {
					t.Fatal("byte accounting missing")
				}
				if r.Timings.Train <= 0 || r.Timings.Decompress <= 0 || r.Timings.DecompressWall <= 0 || r.Timings.Validate <= 0 {
					t.Fatalf("timings missing: %+v", r.Timings)
				}
			}
		})
	}
}

// TestRoundPipelineNonIIDSmoke runs the same 2-round pipeline over a
// label-skewed Dirichlet(0.3) partition: federated rounds must complete
// with intact accounting even when client label distributions diverge —
// the non-IID regime the paper's FedAvg baseline is usually stressed
// under.
func TestRoundPipelineNonIIDSmoke(t *testing.T) {
	const seed = 42
	fed := shardedSmokeFederation(t, NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(1e-2)}), seed,
		func(d *dataset.Dataset) []*dataset.Dataset {
			shards := dataset.ShardDirichlet(d, 2, 0.3, seed)
			// The partition must actually be skewed, or this test is just
			// TestRoundPipelineSmoke again.
			counts := make([][]int, len(shards))
			for i, s := range shards {
				counts[i] = make([]int, d.Spec.Classes)
				for _, l := range s.Labels {
					counts[i][l]++
				}
			}
			skewed := false
			for cl := 0; cl < d.Spec.Classes; cl++ {
				a, b := counts[0][cl], counts[1][cl]
				if a+b >= 4 && (a == 0 || b == 0 || a >= 3*b || b >= 3*a) {
					skewed = true
				}
			}
			if !skewed {
				t.Fatalf("Dirichlet(0.3) split not skewed: %v vs %v", counts[0], counts[1])
			}
			return shards
		})
	results, err := fed.Run(context.Background(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.RawBytes <= 0 || r.WireBytes <= 0 {
			t.Fatal("byte accounting missing")
		}
	}
}

// TestBatchDecodeMatchesPerPayload: the BatchTransport wiring RunRound
// uses must decode bit-identically to per-payload Decode.
func TestBatchDecodeMatchesPerPayload(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	tr := NewFedSZTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
	var bt BatchTransport = tr // compile-time: FedSZTransport batches

	payloads := make([][]byte, 6)
	for i := range payloads {
		net, err := models.BuildMini("alexnet", rng, models.Input{Channels: 3, Height: 12, Width: 12, Classes: 10})
		if err != nil {
			t.Fatal(err)
		}
		payloads[i], _, err = tr.Encode(context.Background(), net.StateDict())
		if err != nil {
			t.Fatal(err)
		}
	}
	batch, durs, err := bt.DecodeAll(context.Background(), payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(durs) != len(payloads) {
		t.Fatalf("got %d durations for %d payloads", len(durs), len(payloads))
	}
	for i, d := range durs {
		if d <= 0 {
			t.Fatalf("payload %d: non-positive decode duration %v", i, d)
		}
	}
	for i, p := range payloads {
		single, err := tr.Decode(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		d, err := batch[i].MaxAbsDiff(single)
		if err != nil || d != 0 {
			t.Fatalf("payload %d: batch decode differs (d=%v err=%v)", i, d, err)
		}
	}
}

// TestNetTransportMatchesInMemoryDecode: the loopback-socket batch path
// must produce state dicts bit-identical to per-payload in-memory decode.
func TestNetTransportMatchesInMemoryDecode(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	nt := NewNetTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
	var bt BatchTransport = nt // compile-time: NetTransport batches

	payloads := make([][]byte, 6)
	for i := range payloads {
		net, err := models.BuildMini("alexnet", rng, models.Input{Channels: 3, Height: 12, Width: 12, Classes: 10})
		if err != nil {
			t.Fatal(err)
		}
		payloads[i], _, err = nt.Encode(context.Background(), net.StateDict())
		if err != nil {
			t.Fatal(err)
		}
	}
	batch, durs, err := bt.DecodeAll(context.Background(), payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(durs) != len(payloads) {
		t.Fatalf("got %d durations for %d payloads", len(durs), len(payloads))
	}
	for i, d := range durs {
		if d <= 0 {
			t.Fatalf("payload %d: non-positive decode duration %v", i, d)
		}
	}
	for i, p := range payloads {
		single, err := nt.Decode(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batch[i].Marshal(), single.Marshal()) {
			t.Fatalf("payload %d: socket decode not bit-identical to in-memory decode", i)
		}
	}
	if st := nt.LastStats; st.Updates != len(payloads) || st.Rejected != 0 {
		t.Fatalf("server stats %+v", st)
	}
}

// TestNetTransportRejectsCorruptPayload: a damaged upload must fail the
// round cleanly rather than fold garbage.
func TestNetTransportRejectsCorruptPayload(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	nt := NewNetTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
	net, err := models.BuildMini("alexnet", rng, models.Input{Channels: 3, Height: 12, Width: 12, Classes: 10})
	if err != nil {
		t.Fatal(err)
	}
	good, _, err := nt.Encode(context.Background(), net.StateDict())
	if err != nil {
		t.Fatal(err)
	}
	// Truncation is guaranteed-detectable corruption (a mid-payload bit
	// flip may land in don't-care bytes and decode to garbage values).
	bad := append([]byte(nil), good[:len(good)-7]...)
	if _, _, err := nt.DecodeAll(context.Background(), [][]byte{good, bad}); err == nil {
		t.Fatal("corrupt payload decoded without error")
	}
}

func TestClientTrainingReducesLoss(t *testing.T) {
	cfg, _ := dataset.ScaledConfig("fmnist", 12, 64, 16, 5)
	train, _ := dataset.Generate(cfg)
	rng := rand.New(rand.NewPCG(5, 5))
	net, _ := models.BuildMini("alexnet", rng, models.Input{Channels: cfg.Channels, Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes})
	c := NewClient(0, net, train, 16, 0.02, 5)
	first := c.TrainEpochs(1)
	var last float64
	for i := 0; i < 4; i++ {
		last = c.TrainEpochs(1)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %f -> %f", first, last)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	fed := buildFederation(t, RawTransport{}, 11)
	a := fed.Evaluate()
	b := fed.Evaluate()
	if a != b {
		t.Fatalf("evaluation not deterministic: %v != %v", a, b)
	}
}

func TestSGDStateIsolatedBetweenClients(t *testing.T) {
	// Two clients starting from the same broadcast and data must produce
	// identical updates (determinism of the whole client path).
	cfg, _ := dataset.ScaledConfig("cifar10", 12, 32, 8, 21)
	train, _ := dataset.Generate(cfg)
	in := models.Input{Channels: cfg.Channels, Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes}
	mk := func() *Client {
		rng := rand.New(rand.NewPCG(21, 3))
		net, _ := models.BuildMini("alexnet", rng, in)
		return NewClient(0, net, train, 8, 0.02, 99)
	}
	c1, c2 := mk(), mk()
	c1.TrainEpochs(1)
	c2.TrainEpochs(1)
	d, err := c1.Net.StateDict().MaxAbsDiff(c2.Net.StateDict())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("identical clients diverged by %g", d)
	}
}

var benchSink float64

func BenchmarkFederatedRound(b *testing.B) {
	cfg, _ := dataset.ScaledConfig("cifar10", 12, 64, 32, 1)
	train, test := dataset.Generate(cfg)
	shards := dataset.ShardIID(train, 2, 1)
	in := models.Input{Channels: cfg.Channels, Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes}
	rng := rand.New(rand.NewPCG(1, 1))
	global, _ := models.BuildMini("alexnet", rng, in)
	clients := make([]*Client, 2)
	for i := range clients {
		crng := rand.New(rand.NewPCG(1, uint64(i)+10))
		net, _ := models.BuildMini("alexnet", crng, in)
		clients[i] = NewClient(i, net, shards[i], 16, 0.02, 1)
	}
	fed := NewFederation(global, clients, NewFedSZTransport(core.Options{}), test)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fed.RunRound(context.Background(), i, 1)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res.Accuracy
	}
}

// TestNetTransportEncodeUploadAll: the fused streaming round — encode
// straight into the socket, decode while receiving — must reproduce the
// in-memory pipeline bit-for-bit and account bytes and timings.
func TestNetTransportEncodeUploadAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	nt := NewNetTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
	var st StreamBatchTransport = nt // compile-time: NetTransport streams

	sds := make([]*tensor.StateDict, 5)
	for i := range sds {
		net, err := models.BuildMini("alexnet", rng, models.Input{Channels: 3, Height: 12, Width: 12, Classes: 10})
		if err != nil {
			t.Fatal(err)
		}
		sds[i] = net.StateDict()
	}
	sr, err := st.EncodeUploadAll(context.Background(), sds)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Decoded) != len(sds) || len(sr.EncodeDur) != len(sds) || len(sr.DecodeDur) != len(sds) {
		t.Fatalf("result sizes: %d/%d/%d for %d inputs",
			len(sr.Decoded), len(sr.EncodeDur), len(sr.DecodeDur), len(sds))
	}
	for i, sd := range sds {
		payload, _, err := nt.Encode(context.Background(), sd)
		if err != nil {
			t.Fatal(err)
		}
		want, err := nt.Decode(context.Background(), payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sr.Decoded[i].Marshal(), want.Marshal()) {
			t.Fatalf("client %d: streamed-encode decode not bit-identical to in-memory", i)
		}
		if sr.EncodeDur[i] <= 0 || sr.DecodeDur[i] <= 0 {
			t.Fatalf("client %d: timings missing (enc %v dec %v)", i, sr.EncodeDur[i], sr.DecodeDur[i])
		}
	}
	if sr.RawBytes <= 0 || sr.WireBytes <= 0 {
		t.Fatalf("byte accounting missing: %+v", sr)
	}
	if nt.LastStats.Updates != len(sds) || nt.LastStats.Rejected != 0 {
		t.Fatalf("server stats %+v", nt.LastStats)
	}
}

// TestNetTransportSingleSession: Sessions=1 carries the whole round over
// one reused connection (the strict multi-update mode).
func TestNetTransportSingleSession(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	nt := NewNetTransport(core.Options{LossyParams: ebcl.Rel(1e-2)})
	nt.Sessions = 1
	payloads := make([][]byte, 4)
	for i := range payloads {
		net, err := models.BuildMini("alexnet", rng, models.Input{Channels: 3, Height: 12, Width: 12, Classes: 10})
		if err != nil {
			t.Fatal(err)
		}
		payloads[i], _, err = nt.Encode(context.Background(), net.StateDict())
		if err != nil {
			t.Fatal(err)
		}
	}
	batch, _, err := nt.DecodeAll(context.Background(), payloads)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range payloads {
		want, err := nt.Decode(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batch[i].Marshal(), want.Marshal()) {
			t.Fatalf("payload %d: single-session decode differs", i)
		}
	}
	if nt.LastStats.Updates != len(payloads) {
		t.Fatalf("server stats %+v", nt.LastStats)
	}
}
