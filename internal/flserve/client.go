package flserve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/tensor"
	"repro/internal/wire"
)

// ErrRejected marks a server-side rejection: the server received the
// update and refused it (decode failure, handler error). It is distinct
// from a transport failure — the client's retry loop re-dials transport
// failures but never retries a rejection.
var ErrRejected = errors.New("flserve: server rejected update")

// ErrShed marks an admission-control shed: the server was over its queue
// depth and declined the connection before looking at the update. Unlike
// a rejection, a shed is retryable by definition — nothing about the
// update was judged — and the client's retry loop honours the server's
// retry-after hint. Match with errors.Is(err, ErrShed); the concrete
// *ShedError carries the hint.
var ErrShed = errors.New("flserve: server shed connection (overloaded)")

// ShedError is the typed form of a shed ack.
type ShedError struct {
	// RetryAfter is the server's suggested backoff before re-dialing.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("flserve: server shed connection (overloaded), retry after %v", e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrShed) true.
func (e *ShedError) Unwrap() error { return ErrShed }

// Temporary reports true: a shed is transient overload, not a verdict on
// the update.
func (e *ShedError) Temporary() bool { return true }

// Client uploads FedSZ-compressed updates to an aggregation server.
type Client struct {
	// Addr is the server's TCP address.
	Addr string
	// Link optionally shapes the uplink to a constrained bandwidth (the
	// paper's 10 Mbps edge setting); the zero value uploads unthrottled.
	Link netsim.Link
	// Timeout bounds each upload attempt end to end — dial through ack —
	// on top of whatever deadline the caller's context carries (0 applies
	// no per-attempt bound).
	Timeout time.Duration
	// Retries is how many extra attempts a failed upload gets, re-dialing
	// each time with doubling backoff. Only transport failures retry; a
	// server rejection (ErrRejected) returns immediately. Delivery is
	// at-least-once: an ack lost after the server folded the update makes
	// the retry a duplicate, which handlers must tolerate or deduplicate
	// by client ID.
	Retries int
	// RetryBackoff is the first retry delay (0 selects 50 ms); it doubles
	// per attempt.
	RetryBackoff time.Duration
}

// Session is one dialed connection to an aggregation server carrying any
// number of updates — the multi-update protocol that amortizes dial and
// prelude cost across a round. Upload and UploadState may be called
// repeatedly (not concurrently); each waits for the server's per-update
// ack. Close the session when the round is done.
type Session struct {
	conn net.Conn
	bw   *bufio.Writer
	// deltaAccepted records the server's answer to an FLS2 negotiation:
	// true means uploads on this session may carry residual (v3) streams
	// encoded against the negotiated reference epoch.
	deltaAccepted bool
	// weighted marks an FLS3 session: uploads go through UploadWeighted.
	weighted bool
}

// DeltaAccepted reports whether the server agreed to decode residual (v3)
// streams on this session; always false for plain Dial sessions. When
// false, upload absolute streams — the server does not hold the reference
// this client wanted to encode against.
func (s *Session) DeltaAccepted() bool { return s.deltaAccepted }

// Dial opens a session to c.Addr, honouring ctx for the connection
// attempt, and sends the protocol magic (buffered until the first upload).
func (c *Client) Dial(ctx context.Context) (*Session, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return nil, fmt.Errorf("flserve: dial %s: %w", c.Addr, err)
	}
	var dst io.Writer = conn
	if c.Link.BandwidthMbps > 0 {
		dst = c.Link.ThrottleWriter(conn)
	}
	s := &Session{conn: conn, bw: bufio.NewWriterSize(dst, 64<<10)}
	var magic [4]byte
	binary.LittleEndian.PutUint32(magic[:], connMagic)
	if _, err := s.bw.Write(magic[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("flserve: session prelude: %w", err)
	}
	return s, nil
}

// DialWeighted opens a weighted (FLS3) session: every update on it
// carries an explicit aggregation weight — the edge→root hop of a
// hierarchical topology, where one fused update stands in for a whole
// local population. Like Dial there is no handshake round trip; the
// prelude is buffered until the first upload.
func (c *Client) DialWeighted(ctx context.Context) (*Session, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return nil, fmt.Errorf("flserve: dial %s: %w", c.Addr, err)
	}
	var dst io.Writer = conn
	if c.Link.BandwidthMbps > 0 {
		dst = c.Link.ThrottleWriter(conn)
	}
	s := &Session{conn: conn, bw: bufio.NewWriterSize(dst, 64<<10), weighted: true}
	var magic [4]byte
	binary.LittleEndian.PutUint32(magic[:], connMagicWeighted)
	if _, err := s.bw.Write(magic[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("flserve: session prelude: %w", err)
	}
	return s, nil
}

// DialDelta opens a session that negotiates cross-round delta uploads: the
// FLS2 prelude proposes the client's reference epoch, and the server's
// one-byte answer (exposed as Session.DeltaAccepted) says whether residual
// (v3) streams encoded against that epoch will decode there. Refusal is not
// an error — the session is live either way; the caller just uploads
// absolute streams. The negotiation costs one round trip, paid once per
// session, not per update.
func (c *Client) DialDelta(ctx context.Context, epoch uint32) (*Session, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.Addr)
	if err != nil {
		return nil, fmt.Errorf("flserve: dial %s: %w", c.Addr, err)
	}
	var dst io.Writer = conn
	if c.Link.BandwidthMbps > 0 {
		dst = c.Link.ThrottleWriter(conn)
	}
	s := &Session{conn: conn, bw: bufio.NewWriterSize(dst, 64<<10)}
	defer s.arm(ctx)()
	var prelude [8]byte
	binary.LittleEndian.PutUint32(prelude[:4], connMagicDelta)
	binary.LittleEndian.PutUint32(prelude[4:], epoch)
	if _, err := s.bw.Write(prelude[:]); err != nil {
		conn.Close()
		return nil, ctxErr(ctx, fmt.Errorf("flserve: session prelude: %w", err))
	}
	// Unlike Dial, the prelude must flush now: the server answers it before
	// reading any update.
	if err := s.bw.Flush(); err != nil {
		conn.Close()
		return nil, ctxErr(ctx, fmt.Errorf("flserve: session prelude: %w", err))
	}
	var accept [1]byte
	if _, err := io.ReadFull(conn, accept[:]); err != nil {
		conn.Close()
		return nil, ctxErr(ctx, fmt.Errorf("flserve: delta negotiation: %w", err))
	}
	if accept[0] == ackShed {
		// The server shed the connection before negotiating; surface the
		// typed retryable error with its hint.
		var hint [2]byte
		shed := &ShedError{}
		if _, err := io.ReadFull(conn, hint[:]); err == nil {
			shed.RetryAfter = time.Duration(binary.LittleEndian.Uint16(hint[:])) * time.Millisecond
		}
		conn.Close()
		return nil, ctxErr(ctx, shed)
	}
	s.deltaAccepted = accept[0] == 1
	return s, nil
}

// Close ends the session. The server sees a clean EOF at the update
// boundary and finishes the connection without a rejection.
func (s *Session) Close() error { return s.conn.Close() }

// arm wires ctx into the connection: the ctx deadline (if any) becomes the
// conn deadline, and a cancellation cuts the conn immediately so blocked
// reads and writes return. The returned stop must be called when the
// operation finishes.
func (s *Session) arm(ctx context.Context) func() {
	if d, ok := ctx.Deadline(); ok {
		s.conn.SetDeadline(d) //nolint:errcheck — a dead conn fails the next I/O anyway
	} else {
		s.conn.SetDeadline(time.Time{}) //nolint:errcheck
	}
	if ctx.Done() == nil {
		return func() {}
	}
	stop := context.AfterFunc(ctx, func() {
		s.conn.SetDeadline(time.Unix(1, 0)) //nolint:errcheck — unblocks in-flight I/O
	})
	return func() { stop() }
}

// ctxErr prefers the context's error over the I/O failure it induced.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// Upload sends one pre-compressed update (a serialized FedSZ stream) under
// the given client ID and waits for the server's ack: a nil return means
// the server decoded and folded the update. On a weighted (FLS3) session
// it sends weight 1; use UploadWeighted to declare a population weight.
func (s *Session) Upload(ctx context.Context, clientID uint32, stream []byte) error {
	return s.UploadWeighted(ctx, clientID, 1, stream)
}

// UploadWeighted is Upload declaring an explicit aggregation weight — an
// edge aggregator forwarding the fused mean of n clients uploads it with
// weight n, so the upstream fold counts it as n clients' worth. The
// session must have been opened with DialWeighted unless weight is 1
// (FLS1/FLS2 sessions have no weight field on the wire).
func (s *Session) UploadWeighted(ctx context.Context, clientID uint32, weight float64, stream []byte) error {
	defer s.arm(ctx)()
	if err := s.writeUpdatePrelude(clientID, weight); err != nil {
		return ctxErr(ctx, err)
	}
	if err := wire.NewWriter(s.bw).WriteStream(stream); err != nil {
		return ctxErr(ctx, fmt.Errorf("flserve: upload: %w", err))
	}
	return s.finishUpdate(ctx)
}

// writeUpdatePrelude emits the per-update clientID (and, on weighted
// sessions, the weight field).
func (s *Session) writeUpdatePrelude(clientID uint32, weight float64) error {
	if weight != 1 && !s.weighted {
		return fmt.Errorf("flserve: weighted upload on unweighted session (use DialWeighted)")
	}
	var idb [4]byte
	binary.LittleEndian.PutUint32(idb[:], clientID)
	if _, err := s.bw.Write(idb[:]); err != nil {
		return fmt.Errorf("flserve: upload prelude: %w", err)
	}
	if s.weighted {
		var wb [8]byte
		binary.LittleEndian.PutUint64(wb[:], math.Float64bits(weight))
		if _, err := s.bw.Write(wb[:]); err != nil {
			return fmt.Errorf("flserve: upload prelude: %w", err)
		}
	}
	return nil
}

// UploadState compresses sd straight into the session's wire framer — the
// header and each finished tensor section hit the socket while later
// tensors are still compressing on pool (nil compresses serially) — so the
// upload overlaps the encode with no intermediate whole-stream buffer. The
// returned stats carry the encode timings, including WriteWait and
// EncodeOverlapRatio for the overlap actually achieved.
func (s *Session) UploadState(ctx context.Context, clientID uint32, sd *tensor.StateDict, opts core.Options, pool *sched.Pool) (*core.Stats, error) {
	defer s.arm(ctx)()
	if err := s.writeUpdatePrelude(clientID, 1); err != nil {
		return nil, ctxErr(ctx, err)
	}
	stats, err := wire.EncodeStream(ctx, pool, wire.NewWriter(s.bw), sd, opts)
	if err != nil {
		return nil, ctxErr(ctx, fmt.Errorf("flserve: streaming upload: %w", err))
	}
	if err := s.finishUpdate(ctx); err != nil {
		return nil, err
	}
	return stats, nil
}

func (s *Session) finishUpdate(ctx context.Context) error {
	if err := s.bw.Flush(); err != nil {
		return ctxErr(ctx, fmt.Errorf("flserve: upload flush: %w", err))
	}
	if err := readAck(s.conn); err != nil {
		return ctxErr(ctx, err)
	}
	return nil
}

// Upload dials, sends one update, and waits for the ack, retrying
// transport failures per the client's Retries/RetryBackoff policy.
func (c *Client) Upload(ctx context.Context, clientID uint32, stream []byte) error {
	return c.withRetry(ctx, func(actx context.Context) error {
		s, err := c.Dial(actx)
		if err != nil {
			return err
		}
		defer s.Close()
		return s.Upload(actx, clientID, stream)
	})
}

// UploadWeighted dials a weighted (FLS3) session, sends one update with
// the given aggregation weight, and waits for the ack, retrying transport
// failures and sheds per the client's policy.
func (c *Client) UploadWeighted(ctx context.Context, clientID uint32, weight float64, stream []byte) error {
	return c.withRetry(ctx, func(actx context.Context) error {
		s, err := c.DialWeighted(actx)
		if err != nil {
			return err
		}
		defer s.Close()
		return s.UploadWeighted(actx, clientID, weight, stream)
	})
}

// UploadState dials and streams the compression of sd straight into the
// socket (see Session.UploadState), retrying transport failures. On a
// retry the state dict is re-encoded from scratch — nothing buffered from
// the failed attempt is reused.
func (c *Client) UploadState(ctx context.Context, clientID uint32, sd *tensor.StateDict, opts core.Options, pool *sched.Pool) (*core.Stats, error) {
	var stats *core.Stats
	err := c.withRetry(ctx, func(actx context.Context) error {
		s, err := c.Dial(actx)
		if err != nil {
			return err
		}
		defer s.Close()
		stats, err = s.UploadState(actx, clientID, sd, opts, pool)
		return err
	})
	if err != nil {
		return nil, err
	}
	return stats, nil
}

// withRetry runs attempt under the per-attempt Timeout, re-dialing
// transport failures up to Retries times with doubling backoff. Context
// cancellation and server rejections end the loop immediately.
func (c *Client) withRetry(ctx context.Context, attempt func(context.Context) error) error {
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var err error
	for try := 0; ; try++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if c.Timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, c.Timeout)
		}
		err = attempt(actx)
		cancel()
		if err == nil || errors.Is(err, ErrRejected) || ctx.Err() != nil || try >= c.Retries {
			return err
		}
		wait := backoff
		// A shed carries the server's own backoff suggestion; never retry
		// sooner than the server asked.
		var shed *ShedError
		if errors.As(err, &shed) && shed.RetryAfter > wait {
			wait = shed.RetryAfter
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff *= 2
	}
}

// Upload is shorthand for an unthrottled single upload to addr with no
// per-attempt timeout or retries.
func Upload(addr string, clientID uint32, stream []byte) error {
	return (&Client{Addr: addr}).Upload(context.Background(), clientID, stream)
}

func readAck(conn net.Conn) error {
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		return fmt.Errorf("flserve: reading ack: %w", err)
	}
	switch status[0] {
	case ackAccepted:
		return nil
	case ackShed:
		var hint [2]byte
		if _, err := io.ReadFull(conn, hint[:]); err != nil {
			return &ShedError{}
		}
		return &ShedError{RetryAfter: time.Duration(binary.LittleEndian.Uint16(hint[:])) * time.Millisecond}
	}
	var msgLen [2]byte
	if _, err := io.ReadFull(conn, msgLen[:]); err != nil {
		return ErrRejected
	}
	msg := make([]byte, binary.LittleEndian.Uint16(msgLen[:]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		return ErrRejected
	}
	return fmt.Errorf("%w: %s", ErrRejected, msg)
}
