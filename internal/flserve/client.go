package flserve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"

	"repro/internal/netsim"
	"repro/internal/wire"
)

// Client uploads FedSZ-compressed updates to an aggregation server.
type Client struct {
	// Addr is the server's TCP address.
	Addr string
	// Link optionally shapes the uplink to a constrained bandwidth (the
	// paper's 10 Mbps edge setting); the zero value uploads unthrottled.
	Link netsim.Link
}

// Upload sends one compressed update (a serialized FedSZ stream) under the
// given client ID and waits for the server's ack: a nil return means the
// server decoded and folded the update.
func (c *Client) Upload(clientID uint32, stream []byte) error {
	conn, err := net.Dial("tcp", c.Addr)
	if err != nil {
		return fmt.Errorf("flserve: dial %s: %w", c.Addr, err)
	}
	defer conn.Close()

	var dst io.Writer = conn
	if c.Link.BandwidthMbps > 0 {
		dst = c.Link.ThrottleWriter(conn)
	}
	bw := bufio.NewWriterSize(dst, 64<<10)
	var prelude [8]byte
	binary.LittleEndian.PutUint32(prelude[:], connMagic)
	binary.LittleEndian.PutUint32(prelude[4:], clientID)
	if _, err := bw.Write(prelude[:]); err != nil {
		return fmt.Errorf("flserve: upload prelude: %w", err)
	}
	if err := wire.NewWriter(bw).WriteStream(stream); err != nil {
		return fmt.Errorf("flserve: upload: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flserve: upload flush: %w", err)
	}
	return readAck(conn)
}

// Upload is shorthand for an unthrottled single upload to addr.
func Upload(addr string, clientID uint32, stream []byte) error {
	return (&Client{Addr: addr}).Upload(clientID, stream)
}

func readAck(conn net.Conn) error {
	var status [1]byte
	if _, err := io.ReadFull(conn, status[:]); err != nil {
		return fmt.Errorf("flserve: reading ack: %w", err)
	}
	if status[0] == 0 {
		return nil
	}
	var msgLen [2]byte
	if _, err := io.ReadFull(conn, msgLen[:]); err != nil {
		return fmt.Errorf("flserve: server rejected update")
	}
	msg := make([]byte, binary.LittleEndian.Uint16(msgLen[:]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		return fmt.Errorf("flserve: server rejected update")
	}
	return fmt.Errorf("flserve: server rejected update: %s", msg)
}
