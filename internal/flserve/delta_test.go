package flserve

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/tensor"
)

// correlatedUpdate returns ref plus a small SGD-sized step — the temporal
// correlation that makes residual sections win.
func correlatedUpdate(ref *tensor.StateDict, seed uint64) *tensor.StateDict {
	rng := rand.New(rand.NewPCG(seed, seed^0xD317A))
	sd := ref.Clone()
	for _, e := range sd.Entries() {
		for i := range e.Tensor.Data {
			e.Tensor.Data[i] += float32(1e-3 * rng.NormFloat64())
		}
	}
	return sd
}

// TestDeltaNegotiation covers the FLS2 prelude end to end: an accepted
// epoch decodes residual uploads, a stale epoch is refused but the session
// stays live for absolute uploads, a residual stream on a refused session
// is rejected (never folded against the wrong baseline), and plain FLS1
// clients interoperate unchanged with a delta-capable server — the
// wire-compatibility contract.
func TestDeltaNegotiation(t *testing.T) {
	const epoch = 9
	ref := clientUpdate(100)
	upd := correlatedUpdate(ref, 7)
	col := newCollector()
	srv, err := Listen("127.0.0.1:0", Config{
		Handler: col.handle,
		RefProvider: func(e uint32) *tensor.StateDict {
			if e == epoch {
				return ref
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Addr: srv.Addr().String()}
	ctx := context.Background()

	opts := core.Options{LossyParams: ebcl.Rel(1e-2)}
	absStream, _, err := core.Compress(upd, opts)
	if err != nil {
		t.Fatal(err)
	}
	dOpts := opts
	dOpts.Reference, dOpts.RefEpoch = ref, epoch
	deltaStream, stats, err := core.Compress(upd, dOpts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeltaTensors == 0 {
		t.Fatal("correlated update produced no residual sections")
	}

	// Matching epoch: accepted, and the residual stream decodes server-side.
	// A later absolute upload on the same accepted session is also fine —
	// acceptance permits v3, it does not require it.
	s, err := c.DialDelta(ctx, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !s.DeltaAccepted() {
		t.Fatal("matching epoch refused")
	}
	if err := s.Upload(ctx, 0, deltaStream); err != nil {
		t.Fatalf("residual upload on accepted session: %v", err)
	}
	if err := s.Upload(ctx, 1, absStream); err != nil {
		t.Fatalf("absolute upload on accepted session: %v", err)
	}
	s.Close()

	// Stale epoch: refused, not an error — the session carries absolute
	// uploads.
	s2, err := c.DialDelta(ctx, epoch+1)
	if err != nil {
		t.Fatal(err)
	}
	if s2.DeltaAccepted() {
		t.Fatal("stale epoch accepted")
	}
	if err := s2.Upload(ctx, 2, absStream); err != nil {
		t.Fatalf("absolute upload on refused session: %v", err)
	}
	s2.Close()

	// A residual stream on a refused session must be rejected — the server
	// holds no baseline for it and must never decode against the wrong one.
	s3, err := c.DialDelta(ctx, epoch+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Upload(ctx, 3, deltaStream); !errors.Is(err, ErrRejected) {
		t.Fatalf("residual upload on refused session: %v, want ErrRejected", err)
	}
	s3.Close()

	// Legacy FLS1 client against the same server: byte-for-byte unchanged.
	if err := Upload(srv.Addr().String(), 4, absStream); err != nil {
		t.Fatalf("FLS1 client against delta-capable server: %v", err)
	}

	// Every accepted upload decoded bit-identically to the in-memory path.
	wantDelta, _, err := core.DecompressOpts(ctx, nil, deltaStream,
		core.DecodeOptions{Reference: ref, RefEpoch: epoch})
	if err != nil {
		t.Fatal(err)
	}
	wantAbs, _, err := core.Decompress(absStream)
	if err != nil {
		t.Fatal(err)
	}
	col.mu.Lock()
	defer col.mu.Unlock()
	if len(col.updates) != 4 {
		t.Fatalf("server folded %d updates, want 4", len(col.updates))
	}
	if !bytes.Equal(col.updates[0].State.Marshal(), wantDelta.Marshal()) {
		t.Fatal("residual upload decode differs from in-memory delta decode")
	}
	for _, id := range []uint32{1, 2, 4} {
		if !bytes.Equal(col.updates[id].State.Marshal(), wantAbs.Marshal()) {
			t.Fatalf("client %d: absolute upload decode differs from in-memory decode", id)
		}
	}
	st := srv.Stats()
	if st.Updates != 4 || st.Rejected != 1 {
		t.Fatalf("stats %+v, want 4 updates / 1 rejected", st)
	}
}

// TestMeanIntoShapeMismatch: a destination dict that no longer matches the
// accumulator must yield the explicit error, never a silent reallocation.
func TestMeanIntoShapeMismatch(t *testing.T) {
	var agg Aggregator
	for i := uint64(1); i <= 2; i++ {
		if err := agg.Add(Update{Client: uint32(i), State: clientUpdate(i)}); err != nil {
			t.Fatal(err)
		}
	}

	bad := tensor.NewStateDict()
	bad.Add("conv.weight", tensor.KindWeight, tensor.New(8, 8))
	if _, n, err := agg.MeanInto(bad); err == nil || n != 2 ||
		!strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("mismatched destination: n=%d err=%v, want explicit incompatibility", n, err)
	}

	// A compatible destination is filled in place.
	dst := clientUpdate(3)
	out, n, err := agg.MeanInto(dst)
	if err != nil || n != 2 {
		t.Fatalf("compatible destination: n=%d err=%v", n, err)
	}
	if out != dst {
		t.Fatal("MeanInto did not reuse the compatible destination")
	}
	want, wn := agg.Mean()
	if wn != 2 {
		t.Fatalf("Mean count %d, want 2", wn)
	}
	if d, err := out.MaxAbsDiff(want); err != nil || d != 0 {
		t.Fatalf("MeanInto result differs from Mean: d=%v err=%v", d, err)
	}

	// Empty accumulator: nil result, no error, any destination accepted.
	var empty Aggregator
	if out, n, err := empty.MeanInto(bad); out != nil || n != 0 || err != nil {
		t.Fatalf("empty accumulator: (%v, %d, %v), want (nil, 0, nil)", out, n, err)
	}
}
