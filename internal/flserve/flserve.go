// Package flserve implements the streaming side of the paper's
// aggregation-server scenario (Eqn 1, Figures 6–9): a TCP server that
// ingests many concurrent FedSZ-compressed client updates, decoding each
// tensor while the next is still crossing the network, and folding
// finished updates incrementally into a FedAvg accumulator.
//
// # Connection protocol
//
// A connection opens with the "FLS1" magic and then carries any number of
// updates — one wire stream each, acked individually — so a client (or a
// whole round's worth of clients multiplexed by fl.NetTransport) pays the
// dial and prelude cost once:
//
//	client → server: magic(u32 "FLS1") update*
//	update:          clientID(u32) wireStream
//	server → client: status(u8) [msgLen(u16) msg]    (status 0 = accepted)
//
// A clean EOF where the next clientID would start ends the connection; the
// historical one-update-per-connection exchange is exactly the first
// iteration of this loop, so old single-shot clients are wire-compatible.
// wireStream is the internal/wire framing of a FedSZ stream; each ack is
// written only after that update has been decoded, verified, and handed to
// the handler, so a successful Upload means the server has durably folded
// the update. After a failed update the server acks the error and drops
// the connection (stream synchronization is unreliable past a damaged
// frame); clients resume on a fresh dial.
//
// # Pipelining and backpressure
//
// Each connection pipes its socket through wire.Reader (per-frame CRC
// verification) into core.DecompressFrom, which submits every fully
// received tensor blob to the server's shared sched.Pool and immediately
// resumes reading. Decode therefore overlaps receive on every connection,
// while total decode parallelism across all connections stays at the
// configured budget. Backpressure is layered:
//
//   - Config.MaxConns bounds concurrent connections (the accept loop holds
//     a slot before accepting), so peak memory is O(MaxConns × frame)
//     plus in-flight decodes — never O(clients × model).
//   - When the decode pool is saturated, the connection goroutine decodes
//     inline instead of reading, which stops draining the socket and lets
//     TCP flow control push back on the sender.
package flserve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/wire"
)

const (
	connMagic = 0x464C5331 // "FLS1"
	// connMagicDelta opens a delta-negotiating connection: the magic is
	// followed by the client's reference epoch (u32), and the server answers
	// one byte — 1 when it holds that epoch's reference and will decode
	// residual (v3) streams on this connection, 0 when the client must fall
	// back to absolute uploads. FLS1 connections skip the exchange entirely,
	// so pre-delta clients are wire-compatible byte for byte.
	connMagicDelta = 0x464C5332 // "FLS2"
	// connMagicWeighted opens a weighted-update connection (the edge→root
	// hop of a hierarchical topology): every update carries an 8-byte
	// weight between the clientID and the wire stream, so an edge
	// aggregator can forward one fused update that counts for its whole
	// local population. There is no handshake reply — like FLS1 — and FLS1
	// connections are unchanged (implicit weight 1).
	connMagicWeighted = 0x464C5333 // "FLS3"
	// ackMsgLimit truncates error messages echoed to clients.
	ackMsgLimit = 512

	// Ack status bytes. A shed ack carries a u16 retry-after hint in
	// milliseconds instead of a message — the explicit reject-newest
	// admission policy, distinct from a rejection so clients classify it as
	// retryable congestion, never as corruption.
	ackAccepted = 0
	ackRejected = 1
	ackShed     = 2
)

// Update is one decoded client update delivered to the handler.
type Update struct {
	// Client is the ID the uploader sent in its connection prelude.
	Client uint32
	// Remote is the uploading connection's remote address — the attribute
	// that lets handler logs and trace events correlate an update with its
	// connection.
	Remote string
	// State is the decoded state dict; the handler takes ownership.
	State *tensor.StateDict
	// Weight is the update's aggregation weight: 1 for FLS1/FLS2 uploads,
	// the sender-declared population weight for FLS3 (an edge forwarding
	// the fused mean of n clients sends weight n). Handlers fold
	// weight-scaled sums and divide by the weight total.
	Weight float64
	// WireBytes counts the bytes this update occupied on the wire: its
	// share of the connection prelude, the clientID, and the full wire
	// stream (framing plus payload), computed from the de-framer's logical
	// counts so it stays exact on multi-update connections.
	WireBytes int64
	// Stats carries the streaming decode's timing, including ReadWait and
	// DecodeWork for overlap accounting.
	Stats core.DecompressStats
}

// Config tunes a Server.
type Config struct {
	// Parallel is the decode budget shared across every connection
	// (0 selects GOMAXPROCS) — the same one-budget discipline as
	// core.DecompressAll, now fed by sockets.
	Parallel int
	// MaxConns bounds concurrently served connections (0 selects
	// 4×GOMAXPROCS). The accept loop blocks when the bound is reached.
	MaxConns int
	// QueueDepth switches admission control from accept-loop backpressure
	// to explicit load shedding: connections beyond the MaxConns serving
	// set wait in a bounded queue of this depth, and arrivals past the
	// queue are shed — acked with a retry-after hint and closed — instead
	// of piling into the listener backlog. 0 keeps the legacy discipline
	// (the accept loop blocks on a slot before accepting, so the kernel
	// backlog absorbs bursts). Shedding makes overload predictable: memory
	// stays O(MaxConns + QueueDepth) and excess clients learn to back off
	// immediately rather than timing out in the backlog.
	QueueDepth int
	// RetryAfterHint is the backoff the shed ack suggests to clients
	// (0 selects 100 ms; capped at ~65 s by the wire field).
	RetryAfterHint time.Duration
	// Handler receives each successfully decoded update. It may be called
	// concurrently from different connections; an error rejects the update
	// (the client sees a non-zero ack) without stopping the server.
	// Exactly one of Handler and Ingestor is required.
	Handler func(Update) error
	// Ingestor, when non-nil, replaces the whole-stream decode + Handler
	// pair: the server hands it each update's framed byte stream directly,
	// so a section-routing implementation (internal/agg.Sharded) can
	// dispatch wire frames to aggregator shards without materializing the
	// decoded state dict on the connection goroutine. Acks, metrics, and
	// timeout handling stay with the server.
	Ingestor StreamIngestor
	// IdleTimeout bounds how long a connection may sit without delivering
	// a byte before it is dropped, so a stalled client cannot pin a
	// MaxConns slot forever (0 selects 2 minutes; negative disables). The
	// deadline is refreshed on every read, so slow-but-moving uploads are
	// unaffected.
	IdleTimeout time.Duration
	// UploadTimeout bounds one update end to end — clientID through ack —
	// regardless of how steadily it trickles in (0 disables). It becomes
	// the per-update context deadline: blocked reads are cut at the
	// deadline and in-flight decode workers for that update exit early.
	UploadTimeout time.Duration
	// Tracer, when non-nil, receives one span per connection and one event
	// per update — the per-connection timeline complementing the
	// aggregated metrics the server always publishes on
	// telemetry.Default().
	Tracer *telemetry.Tracer
	// RefProvider resolves a delta client's negotiated reference epoch to
	// the retained reference state dict (nil when the server does not hold
	// that epoch — the client is then steered to absolute uploads). Leave
	// nil to refuse every delta negotiation; FLS1 connections never consult
	// it. The returned dict is read concurrently by in-flight decodes, so
	// the provider must not hand out a dict that is mutated while
	// connections are live (internal/delta.Ref.Provider retains a stable
	// copy per epoch).
	RefProvider func(epoch uint32) *tensor.StateDict
}

// StreamIngestor consumes one wire-framed update directly from the
// connection — the section-routed alternative to the built-in
// decode-then-Handler path. Implementations must read the update's wire
// stream from r through its trailer (the server acks only on a nil
// return), fold it, and report the wire byte count plus decode stats for
// the server's accounting. Calls arrive concurrently from different
// connections. An error rejects the update and drops the connection;
// corruption must surface as core.ErrCorrupt-wrapped errors and reference
// mismatches as core.ErrReference, exactly like the built-in path.
type StreamIngestor interface {
	IngestStream(ctx context.Context, client uint32, weight float64, dopts core.DecodeOptions, r io.Reader) (int64, core.DecompressStats, error)
}

// defaultIdleTimeout is Config.IdleTimeout's zero-value default.
const defaultIdleTimeout = 2 * time.Minute

// defaultRetryAfterHint is Config.RetryAfterHint's zero-value default.
const defaultRetryAfterHint = 100 * time.Millisecond

// Stats aggregates what a Server has ingested so far. Obtain one from
// Server.Snapshot (atomics-backed, safe to call while connections are
// live).
type Stats struct {
	// Updates counts successfully decoded, handled updates.
	Updates int
	// Rejected counts connections that failed protocol, decode, or handler.
	Rejected int
	// Shed counts connections refused by admission control (QueueDepth
	// exceeded) — load the server declined, not failures.
	Shed int
	// WireBytes sums raw socket bytes across accepted updates.
	WireBytes int64
	// ReadWait, DecodeWork, and Wall sum the corresponding per-update
	// decode timings (Wall is summed per-update wall clock — clientID
	// through handler return — not server uptime).
	ReadWait   time.Duration
	DecodeWork time.Duration
	Wall       time.Duration
	// BytesRecycled sums each accepted update's decode-side pool recycling
	// (see core.DecompressStats.BytesRecycled) — the observable that the
	// ingest path is running its steady-state zero-alloc loop.
	BytesRecycled uint64
}

// OverlapRatio reports the fraction of decode work hidden behind reading
// (and other tensors' decodes), aggregated over all ingested updates — the
// pipelining payoff: 0 means receive-then-decode, 1 means decode fully
// overlapped with receive.
func (s Stats) OverlapRatio() float64 {
	if s.DecodeWork <= 0 {
		return 0
	}
	hidden := s.ReadWait + s.DecodeWork - s.Wall
	switch {
	case hidden <= 0:
		return 0
	case hidden >= s.DecodeWork:
		return 1
	}
	return float64(hidden) / float64(s.DecodeWork)
}

// Server is a streaming FedSZ aggregation server.
type Server struct {
	cfg  Config
	ln   net.Listener
	pool *sched.Pool
	sem  chan struct{}
	// queue is the bounded admission queue (QueueDepth > 0 only): the
	// accept loop enqueues, the dispatch loop waits for a serving slot,
	// and an arrival finding the queue full is shed.
	queue chan net.Conn
	wg    sync.WaitGroup

	closed atomic.Bool

	// Ingest counters, all atomic so Snapshot (and a /metrics scrape
	// rendering the shared telemetry families) never contends with — or
	// races — the per-connection goroutines updating them.
	updates       atomic.Int64
	rejected      atomic.Int64
	shed          atomic.Int64
	wireBytes     atomic.Int64
	readWaitNS    atomic.Int64
	decodeWorkNS  atomic.Int64
	wallNS        atomic.Int64
	bytesRecycled atomic.Uint64
}

// Listen starts a server on a TCP address ("127.0.0.1:0" picks a free
// port; Addr reports it).
func Listen(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("flserve: %w", err)
	}
	return Serve(ln, cfg), nil
}

// Serve starts a server on an existing listener and takes ownership of it.
func Serve(ln net.Listener, cfg Config) *Server {
	if (cfg.Handler == nil) == (cfg.Ingestor == nil) {
		panic("flserve: exactly one of Config.Handler and Config.Ingestor is required")
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 4 * runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.IdleTimeout == 0:
		cfg.IdleTimeout = defaultIdleTimeout
	case cfg.IdleTimeout < 0:
		cfg.IdleTimeout = 0
	}
	if cfg.RetryAfterHint <= 0 {
		cfg.RetryAfterHint = defaultRetryAfterHint
	}
	s := &Server{
		cfg:  cfg,
		ln:   ln,
		pool: sched.NewPool(cfg.Parallel),
		sem:  make(chan struct{}, cfg.MaxConns),
	}
	metrics().maxConns.Set(float64(cfg.MaxConns))
	s.wg.Add(1)
	if cfg.QueueDepth > 0 {
		s.queue = make(chan net.Conn, cfg.QueueDepth)
		s.wg.Add(1)
		go s.dispatchLoop()
		go s.shedAcceptLoop()
	} else {
		go s.acceptLoop()
	}
	return s
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Snapshot returns a point-in-time copy of the ingest counters. Every
// field is read atomically, so calling it while connections are live —
// the situation of a /metrics scrape against a serving process — is
// race-free; the fields are not one consistent cut (an update folding
// mid-read may be counted in Updates but not yet in WireBytes), which a
// monitoring read tolerates by construction.
func (s *Server) Snapshot() Stats {
	return Stats{
		Updates:       int(s.updates.Load()),
		Rejected:      int(s.rejected.Load()),
		Shed:          int(s.shed.Load()),
		WireBytes:     s.wireBytes.Load(),
		ReadWait:      time.Duration(s.readWaitNS.Load()),
		DecodeWork:    time.Duration(s.decodeWorkNS.Load()),
		Wall:          time.Duration(s.wallNS.Load()),
		BytesRecycled: s.bytesRecycled.Load(),
	}
}

// Stats returns a snapshot of the ingest counters (alias of Snapshot).
func (s *Server) Stats() Stats { return s.Snapshot() }

// Close stops accepting, waits for in-flight connections to finish, and
// returns the listener's close error, if any.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		s.wg.Wait()
		return nil
	}
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) isClosed() bool { return s.closed.Load() }

// acceptLoop admits connections under the MaxConns bound: the slot is
// taken before Accept, so the listener's backlog — not server memory —
// absorbs bursts beyond the bound.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		s.sem <- struct{}{}
		conn, err := s.ln.Accept()
		if err != nil {
			<-s.sem
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (fd exhaustion, aborted handshake):
			// back off briefly instead of spinning on a persistent error.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		m := metrics()
		m.connsAccepted.Inc()
		m.connsActive.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			defer m.connsActive.Dec()
			s.handleConn(conn)
		}()
	}
}

// shedAcceptLoop is the QueueDepth > 0 admission policy: accept eagerly,
// queue up to QueueDepth connections behind the MaxConns serving set, and
// shed (reject-newest) everything beyond — the newest arrival is the one
// turned away, since the queued ones have already waited. Closing the
// listener ends the loop; the queue channel is then closed so the
// dispatcher can drain and shed whatever was still waiting.
func (s *Server) shedAcceptLoop() {
	defer s.wg.Done()
	defer close(s.queue)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		m := metrics()
		m.connsAccepted.Inc()
		select {
		case s.queue <- conn:
			m.queueDepth.Inc()
		default:
			s.shedConn(conn)
		}
	}
}

// dispatchLoop feeds queued connections into serving slots. It owns the
// receive side of the queue; after the accept loop closes the channel,
// the remaining queued connections are shed rather than served, so Close
// never strands a client waiting for a slot that will not come.
func (s *Server) dispatchLoop() {
	defer s.wg.Done()
	m := metrics()
	for conn := range s.queue {
		m.queueDepth.Dec()
		if s.isClosed() {
			s.shedConn(conn)
			continue
		}
		s.sem <- struct{}{}
		m.connsActive.Inc()
		s.wg.Add(1)
		go func(conn net.Conn) {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			defer m.connsActive.Dec()
			s.handleConn(conn)
		}(conn)
	}
}

// shedConn acks a shed — status byte 2 plus the retry-after hint in
// milliseconds — and closes the connection. The write races the client's
// own upload harmlessly: the client reads the ack when it next looks for
// one, and a client that never looks just sees the close.
func (s *Server) shedConn(conn net.Conn) {
	s.shed.Add(1)
	metrics().shed.Inc()
	ms := s.cfg.RetryAfterHint.Milliseconds()
	if ms > 65535 {
		ms = 65535
	}
	buf := [3]byte{ackShed}
	binary.LittleEndian.PutUint16(buf[1:], uint16(ms))
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	conn.Write(buf[:])                                     //nolint:errcheck — the close is the message of last resort
	conn.Close()
}

// timeoutKind classifies which bound cut a connection, for the
// fedsz_server_timeout_kills_total metric.
type timeoutKind uint8

const (
	timeoutNone timeoutKind = iota
	timeoutIdle
	timeoutUpload
)

// connReader refreshes the idle deadline before each read, so only a
// connection that stops delivering bytes for the whole timeout gets
// dropped. An update deadline, when set, caps every refresh so a
// trickling upload cannot outlive its UploadTimeout.
type connReader struct {
	conn     net.Conn
	idle     time.Duration
	deadline time.Time
	// timedOut records which bound was armed when a read failed with a
	// timeout — by the time the failure surfaces from the decoder the
	// net.Error has been flattened into a corruption message, so the
	// classification must be captured here at the Read.
	timedOut timeoutKind
}

func (c *connReader) Read(p []byte) (int, error) {
	var d time.Time
	armed := timeoutNone
	if c.idle > 0 {
		d = time.Now().Add(c.idle)
		armed = timeoutIdle
	}
	if !c.deadline.IsZero() && (d.IsZero() || c.deadline.Before(d)) {
		d = c.deadline
		armed = timeoutUpload
	}
	if !d.IsZero() {
		if err := c.conn.SetReadDeadline(d); err != nil {
			return 0, err
		}
	}
	n, err := c.conn.Read(p)
	if err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			c.timedOut = armed
		}
	}
	return n, err
}

// handleConn serves one connection's update loop: magic once, then any
// number of [clientID, wire stream] updates, each acked after its decode
// and handler fold. The connection ends on a clean EOF at an update
// boundary, on any failed update (acked, then dropped), or on idle/upload
// timeout.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	remote := conn.RemoteAddr().String()
	m := metrics()
	updates, rejected := 0, 0
	span := s.cfg.Tracer.Span("conn", telemetry.A("remote", remote))
	defer func() {
		// recordTimeout: whichever bound cut the connection is known only
		// after the update loop ends.
		span.End(telemetry.A("updates", updates), telemetry.A("rejected", rejected))
	}()
	cr := &connReader{conn: conn, idle: s.cfg.IdleTimeout}
	defer func() {
		switch cr.timedOut {
		case timeoutIdle:
			m.idleKills.Inc()
		case timeoutUpload:
			m.uploadKills.Inc()
		}
	}()
	br := bufio.NewReaderSize(cr, 32<<10)

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		rejected++
		s.rejectConn(conn, fmt.Errorf("%w: connection magic: %v", core.ErrCorrupt, err))
		return
	}
	preludeBytes := int64(len(magic))
	weighted := false
	var dopts core.DecodeOptions
	switch binary.LittleEndian.Uint32(magic[:]) {
	case connMagic:
	case connMagicWeighted:
		weighted = true
	case connMagicDelta:
		// Delta negotiation: the client proposes a reference epoch; accept
		// only when RefProvider holds that exact baseline, else answer 0 and
		// carry on — the client re-encodes absolute and the connection
		// proceeds identically to FLS1.
		var eb [4]byte
		if _, err := io.ReadFull(br, eb[:]); err != nil {
			rejected++
			s.rejectConn(conn, fmt.Errorf("%w: delta epoch: %v", core.ErrCorrupt, err))
			return
		}
		preludeBytes += int64(len(eb))
		epoch := binary.LittleEndian.Uint32(eb[:])
		var ref *tensor.StateDict
		if s.cfg.RefProvider != nil {
			ref = s.cfg.RefProvider(epoch)
		}
		accept := byte(0)
		if ref != nil {
			accept = 1
			dopts = core.DecodeOptions{Reference: ref, RefEpoch: epoch}
			m.deltaAccepted.Inc()
		} else {
			m.deltaRefused.Inc()
		}
		if _, err := conn.Write([]byte{accept}); err != nil {
			rejected++
			s.rejected.Add(1)
			metrics().connsRejected.Inc()
			return
		}
	default:
		rejected++
		s.rejectConn(conn, fmt.Errorf("%w: bad connection magic", core.ErrCorrupt))
		return
	}

	first := true // update 1 carries the connection prelude in its WireBytes
	for {
		var idb [4]byte
		if _, err := io.ReadFull(br, idb[:]); err != nil {
			if err != io.EOF {
				// Mid-record death (truncated ID, idle timeout): the peer did
				// not end the connection at an update boundary.
				rejected++
				s.rejectConn(conn, fmt.Errorf("%w: update prelude: %v", core.ErrCorrupt, err))
			}
			return
		}
		client := binary.LittleEndian.Uint32(idb[:])
		weight := 1.0
		preludeLen := int64(len(idb))
		if weighted {
			var wb [8]byte
			if _, err := io.ReadFull(br, wb[:]); err != nil {
				rejected++
				s.rejectConn(conn, fmt.Errorf("%w: update weight: %v", core.ErrCorrupt, err))
				return
			}
			preludeLen += int64(len(wb))
			weight = math.Float64frombits(binary.LittleEndian.Uint64(wb[:]))
			if !(weight > 0) || math.IsInf(weight, 0) {
				rejected++
				s.rejectConn(conn, fmt.Errorf("%w: update weight %v", core.ErrCorrupt, weight))
				return
			}
		}
		start := time.Now()

		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if s.cfg.UploadTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.cfg.UploadTimeout)
			cr.deadline = time.Now().Add(s.cfg.UploadTimeout)
		}
		var u *Update
		var err error
		if s.cfg.Ingestor != nil {
			var wireBytes int64
			var dstats core.DecompressStats
			wireBytes, dstats, err = s.cfg.Ingestor.IngestStream(ctx, client, weight, dopts, br)
			if err == nil {
				u = &Update{Client: client, Weight: weight, WireBytes: wireBytes, Stats: dstats}
			}
		} else {
			u, err = s.ingestUpdate(ctx, br, client, dopts)
		}
		cancel()
		cr.deadline = time.Time{}

		if err == nil {
			u.Remote = remote
			u.Weight = weight
			u.WireBytes += preludeLen
			if first {
				u.WireBytes += preludeBytes
			}
			if s.cfg.Handler != nil {
				err = s.cfg.Handler(*u)
			}
		}
		first = false
		if err != nil {
			rejected++
			s.rejected.Add(1)
			m.updatesRejected.Inc()
		} else {
			wall := time.Since(start)
			updates++
			s.updates.Add(1)
			s.wireBytes.Add(u.WireBytes)
			s.readWaitNS.Add(int64(u.Stats.ReadWait))
			s.decodeWorkNS.Add(int64(u.Stats.DecodeWork))
			s.wallNS.Add(int64(wall))
			s.bytesRecycled.Add(u.Stats.BytesRecycled)
			m.updates.Inc()
			m.wireBytes.Add(uint64(u.WireBytes))
			m.wireHist.Observe(float64(u.WireBytes))
			m.decodeHist.Observe(u.Stats.DecompressTime.Seconds())
			m.overlapHist.Observe(u.Stats.OverlapRatio())
			s.cfg.Tracer.Event("update",
				telemetry.A("client", client),
				telemetry.A("remote", remote),
				telemetry.A("wire_bytes", u.WireBytes),
				telemetry.A("decode_us", u.Stats.DecompressTime.Microseconds()),
				telemetry.A("read_wait_us", u.Stats.ReadWait.Microseconds()),
				telemetry.A("wall_us", wall.Microseconds()),
				telemetry.A("overlap", u.Stats.OverlapRatio()),
			)
		}
		writeAck(conn, err)
		if err != nil {
			return
		}
	}
}

// rejectConn accounts and acks a connection-level failure.
func (s *Server) rejectConn(conn net.Conn, err error) {
	s.rejected.Add(1)
	metrics().connsRejected.Inc()
	writeAck(conn, err)
}

// ingestUpdate reads one update off the connection: a wire-framed FedSZ
// stream decoded incrementally on the shared pool under the update's
// context, then trailer verification. The returned WireBytes covers the
// wire stream only (the caller adds the per-update prelude); it is
// computed from the de-framer's logical counts, which stay exact under
// the multi-update protocol where bufio read-ahead may already hold the
// next update's bytes.
func (s *Server) ingestUpdate(ctx context.Context, br *bufio.Reader, client uint32, dopts core.DecodeOptions) (*Update, error) {
	wr := wire.NewReader(br)
	defer wr.Close()
	sd, dstats, err := core.DecompressFromOpts(ctx, s.pool, wr, dopts)
	if err != nil {
		return nil, err
	}
	// The decoder consumes exactly the logical stream; the wire trailer
	// (frame counts + whole-stream CRC) may still be pending. Drain to EOF
	// so an update is only ever acked after its trailer verified.
	if _, err := io.Copy(io.Discard, wr); err != nil {
		return nil, err
	}
	return &Update{
		Client:    client,
		State:     sd,
		WireBytes: wr.WireBytes(),
		Stats:     *dstats,
	}, nil
}

func writeAck(conn net.Conn, err error) {
	if err == nil {
		conn.Write([]byte{ackAccepted}) //nolint:errcheck — client failure is its problem
		return
	}
	msg := err.Error()
	if len(msg) > ackMsgLimit {
		msg = msg[:ackMsgLimit]
	}
	buf := make([]byte, 0, 3+len(msg))
	buf = append(buf, ackRejected)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(msg)))
	buf = append(buf, msg...)
	conn.Write(buf) //nolint:errcheck
}

// Aggregator is a Handler target that folds updates incrementally into a
// FedAvg sum — each update is added and released as it completes, so peak
// memory is one accumulator plus in-flight decodes, independent of client
// count.
//
// Client uploads are at-least-once under the retry policy (an ack lost
// after the fold makes the retry a duplicate), so handlers must tolerate
// or deduplicate; set DedupByClient when each client contributes exactly
// one update per Aggregator lifetime.
type Aggregator struct {
	// DedupByClient makes Add fold only the first update per client ID and
	// silently accept (ack, drop) any later duplicate — the right setting
	// for a single-round aggregation where a retried upload must not
	// double-weight its client. Leave false when one client legitimately
	// contributes multiple updates (e.g. a long-lived server spanning
	// rounds). Set before the first Add.
	DedupByClient bool

	mu   sync.Mutex
	sum  *tensor.StateDict
	n    int
	wsum float64
	seen map[uint32]bool
}

// Add folds one update into the accumulator; it is the Handler for an
// aggregating server. The first update defines the expected structure.
// A weighted update (FLS3, Update.Weight ≠ 1) contributes weight-scaled:
// the accumulator becomes Σ wᵢ·updateᵢ and Mean divides by Σ wᵢ, so an
// edge forwarding the fused mean of n clients at weight n contributes
// exactly as its n clients would have. All-weight-1 traffic folds
// bit-identically to the historical unweighted path.
func (a *Aggregator) Add(u Update) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.DedupByClient {
		if a.seen == nil {
			a.seen = make(map[uint32]bool)
		}
		if a.seen[u.Client] {
			// Retried duplicate: ack success, fold nothing, recycle the
			// duplicate decode's buffers.
			core.Release(u.State)
			return nil
		}
		a.seen[u.Client] = true
	}
	w := u.Weight
	if w == 0 {
		w = 1
	}
	if a.sum == nil {
		a.sum = u.State
		if w != 1 {
			a.sum.Scale(float32(w))
		}
		a.n = 1
		a.wsum = w
		return nil
	}
	if err := a.sum.AddScaled(u.State, float32(w)); err != nil {
		return fmt.Errorf("flserve: aggregate client %d: %w", u.Client, err)
	}
	a.n++
	a.wsum += w
	// The update is folded and dead; its pool-backed tensor buffers feed
	// the next in-flight decode — the server's steady-state zero-alloc
	// loop.
	core.Release(u.State)
	return nil
}

// Count returns the number of folded updates.
func (a *Aggregator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// WeightSum returns the total aggregation weight folded so far — equal to
// Count for unweighted traffic, the represented population size when
// edges forward weighted fused updates.
func (a *Aggregator) WeightSum() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.wsum
}

// Mean returns the FedAvg mean of the folded updates (a copy over pooled
// tensor buffers) and their count; nil and 0 before the first update.
// Recycle the returned dict via core.Release once it has been consumed.
func (a *Aggregator) Mean() (*tensor.StateDict, int) {
	sd, n, _ := a.MeanInto(nil) // nil dst cannot mismatch
	return sd, n
}

// MeanInto is Mean writing into dst's storage (the steady-state path for a
// server computing a mean every round). A non-nil dst must be structurally
// compatible with the accumulator; a mismatch — the model changed shape
// while the server kept its old scratch — returns an explicit error rather
// than silently reallocating over a dict the caller believes it is reusing.
// dst == nil builds the copy over pooled tensor buffers exactly as Mean
// does.
func (a *Aggregator) MeanInto(dst *tensor.StateDict) (*tensor.StateDict, int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sum == nil {
		return nil, 0, nil
	}
	if dst != nil {
		if err := dst.CheckCompatible(a.sum); err != nil {
			return nil, a.n, fmt.Errorf("flserve: MeanInto destination incompatible with accumulator: %w", err)
		}
	}
	out := a.sum.CloneInto(dst)
	if a.wsum == float64(a.n) {
		// Unweighted traffic: keep the historical float32 divide so the
		// mean stays bit-identical to pre-weighting servers.
		out.Scale(1 / float32(a.n))
	} else {
		out.Scale(float32(1 / a.wsum))
	}
	return out, a.n, nil
}
