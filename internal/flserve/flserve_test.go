package flserve

import (
	"bytes"
	"context"
	"math/rand/v2"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/netsim"
	"repro/internal/tensor"
)

// clientUpdate synthesizes one client's model update: two lossy weight
// tensors plus metadata, distinct per seed.
func clientUpdate(seed uint64) *tensor.StateDict {
	rng := rand.New(rand.NewPCG(seed, seed^0x9E37))
	sd := tensor.NewStateDict()
	sd.Add("conv.weight", tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, 4096), 64, 64))
	sd.Add("fc.weight", tensor.KindWeight, tensor.FromData(eblctest.WeightLike(rng, 2048), 2048))
	b := tensor.New(64)
	for i := range b.Data {
		b.Data[i] = float32(0.01 * rng.NormFloat64())
	}
	sd.Add("conv.bias", tensor.KindBias, b)
	return sd
}

func compressUpdates(t testing.TB, n int) ([][]byte, []*tensor.StateDict) {
	t.Helper()
	streams := make([][]byte, n)
	expected := make([]*tensor.StateDict, n)
	for i := range streams {
		var err error
		streams[i], _, err = core.Compress(clientUpdate(uint64(i)+1), core.Options{LossyParams: ebcl.Rel(1e-2)})
		if err != nil {
			t.Fatal(err)
		}
		expected[i], _, err = core.Decompress(streams[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	return streams, expected
}

// collector is a Handler that keeps every decoded update by client ID.
type collector struct {
	mu      sync.Mutex
	updates map[uint32]Update
}

func newCollector() *collector { return &collector{updates: make(map[uint32]Update)} }

func (c *collector) handle(u Update) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.updates[u.Client] = u
	return nil
}

// uploadAll fires n concurrent uploads and fails the test on any error.
func uploadAll(t *testing.T, addr string, streams [][]byte, link netsim.Link) {
	t.Helper()
	errs := make([]error, len(streams))
	var wg sync.WaitGroup
	for i, s := range streams {
		wg.Add(1)
		go func(i int, s []byte) {
			defer wg.Done()
			c := &Client{Addr: addr, Link: link}
			errs[i] = c.Upload(context.Background(), uint32(i), s)
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d upload: %v", i, err)
		}
	}
}

// TestLoopbackIngest32Concurrent is the acceptance e2e: 32 concurrent
// client connections, every decoded state dict bit-identical to the
// in-memory core.Decompress of the same payload.
func TestLoopbackIngest32Concurrent(t *testing.T) {
	const n = 32
	streams, expected := compressUpdates(t, n)
	col := newCollector()
	srv, err := Listen("127.0.0.1:0", Config{Handler: col.handle})
	if err != nil {
		t.Fatal(err)
	}
	uploadAll(t, srv.Addr().String(), streams, netsim.Link{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	if len(col.updates) != n {
		t.Fatalf("server delivered %d updates, want %d", len(col.updates), n)
	}
	for i := 0; i < n; i++ {
		u, ok := col.updates[uint32(i)]
		if !ok {
			t.Fatalf("client %d update missing", i)
		}
		if !bytes.Equal(u.State.Marshal(), expected[i].Marshal()) {
			t.Fatalf("client %d: streamed decode not bit-identical to in-memory decode", i)
		}
		if u.WireBytes <= int64(len(streams[i])) {
			t.Fatalf("client %d: wire bytes %d not accounting framing over %d payload", i, u.WireBytes, len(streams[i]))
		}
		if u.Stats.DecompressTime <= 0 || u.Stats.DecodeWork <= 0 {
			t.Fatalf("client %d: decode stats missing: %+v", i, u.Stats)
		}
	}
	st := srv.Stats()
	if st.Updates != n || st.Rejected != 0 {
		t.Fatalf("stats %+v", st)
	}
	if r := st.OverlapRatio(); r < 0 || r > 1 {
		t.Fatalf("overlap ratio %v out of [0,1]", r)
	}
}

// TestAggregatorMatchesManualFedAvg: the incremental fold must equal the
// all-at-once mean of the decoded updates (within float summation noise —
// arrival order is nondeterministic).
func TestAggregatorMatchesManualFedAvg(t *testing.T) {
	const n = 8
	streams, expected := compressUpdates(t, n)
	var agg Aggregator
	srv, err := Listen("127.0.0.1:0", Config{Parallel: 4, Handler: agg.Add})
	if err != nil {
		t.Fatal(err)
	}
	uploadAll(t, srv.Addr().String(), streams, netsim.Link{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	mean, count := agg.Mean()
	if count != n {
		t.Fatalf("aggregated %d updates, want %d", count, n)
	}
	want := expected[0].Zero()
	for _, sd := range expected {
		if err := want.AddScaled(sd, 1/float32(n)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := mean.MaxAbsDiff(want)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-5 {
		t.Fatalf("incremental mean differs from reference by %g", d)
	}
}

// TestMaxConnsBackpressure: more clients than connection slots must all
// eventually succeed (the accept loop blocks rather than drops).
func TestMaxConnsBackpressure(t *testing.T) {
	const n = 12
	streams, _ := compressUpdates(t, n)
	var agg Aggregator
	srv, err := Listen("127.0.0.1:0", Config{MaxConns: 2, Parallel: 2, Handler: agg.Add})
	if err != nil {
		t.Fatal(err)
	}
	uploadAll(t, srv.Addr().String(), streams, netsim.Link{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := agg.Count(); got != n {
		t.Fatalf("aggregated %d of %d updates", got, n)
	}
}

// TestCorruptUploadRejectedServerSurvives: a damaged stream must produce a
// client-visible rejection and leave the server serving.
func TestCorruptUploadRejectedServerSurvives(t *testing.T) {
	streams, _ := compressUpdates(t, 2)
	col := newCollector()
	srv, err := Listen("127.0.0.1:0", Config{Handler: col.handle})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	bad := append([]byte(nil), streams[0]...)
	bad[len(bad)/2] ^= 0xFF
	if err := Upload(addr, 0, bad); err == nil {
		// A flip in the lossy payload region is CRC-detectable at the wire
		// layer; whichever layer catches it, the ack must be a rejection.
		t.Fatal("corrupt upload acked as success")
	}
	if err := Upload(addr, 1, streams[1]); err != nil {
		t.Fatalf("server did not survive corrupt upload: %v", err)
	}
	st := srv.Stats()
	if st.Updates != 1 || st.Rejected != 1 {
		t.Fatalf("stats %+v, want 1 update / 1 rejected", st)
	}
}

// TestThrottledUploadRecordsReadWait: with a constrained uplink the decode
// must observe time blocked on the socket — the precondition for any
// receive/decode overlap.
func TestThrottledUploadRecordsReadWait(t *testing.T) {
	streams, _ := compressUpdates(t, 2)
	col := newCollector()
	srv, err := Listen("127.0.0.1:0", Config{Parallel: 2, Handler: col.handle})
	if err != nil {
		t.Fatal(err)
	}
	uploadAll(t, srv.Addr().String(), streams, netsim.Link{BandwidthMbps: 50})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for id, u := range col.updates {
		if u.Stats.ReadWait <= 0 {
			t.Fatalf("client %d: no read wait recorded over a 50 Mbps link: %+v", id, u.Stats)
		}
		if r := u.Stats.OverlapRatio(); r < 0 || r > 1 {
			t.Fatalf("client %d: overlap ratio %v out of [0,1]", id, r)
		}
	}
}

// TestIdleClientDroppedFreesSlot: a stalled client must be disconnected
// after the idle timeout so it cannot pin a MaxConns slot forever.
func TestIdleClientDroppedFreesSlot(t *testing.T) {
	streams, _ := compressUpdates(t, 1)
	var agg Aggregator
	srv, err := Listen("127.0.0.1:0", Config{
		MaxConns:    1,
		IdleTimeout: 100 * time.Millisecond,
		Handler:     agg.Add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Occupy the only slot with a connection that sends half a prelude
	// and goes silent.
	stalled, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if _, err := stalled.Write([]byte{0x31, 0x53}); err != nil {
		t.Fatal(err)
	}

	// A well-behaved upload must still get through once the stalled
	// connection times out and releases the slot.
	done := make(chan error, 1)
	go func() { done <- Upload(srv.Addr().String(), 7, streams[0]) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("upload after stalled peer: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled connection pinned the slot; upload never completed")
	}
	if got := agg.Count(); got != 1 {
		t.Fatalf("aggregated %d updates, want 1", got)
	}
}

// TestGarbagePreludeRejected: junk before the protocol magic is refused.
func TestGarbagePreludeRejected(t *testing.T) {
	var agg Aggregator
	srv, err := Listen("127.0.0.1:0", Config{Handler: agg.Add})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	streams, _ := compressUpdates(t, 1)
	c := &Client{Addr: srv.Addr().String()}
	// Valid stream, but uploaded to a server expecting the prelude first —
	// simulate by corrupting the magic via a raw wire write.
	if err := c.Upload(context.Background(), 0, streams[0]); err != nil {
		t.Fatalf("control upload failed: %v", err)
	}
	if err := rawUpload(srv.Addr().String(), []byte("GARBAGEGARBAGE")); err == nil {
		t.Fatal("garbage prelude accepted")
	}
}

func rawUpload(addr string, data []byte) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := conn.Write(data); err != nil {
		return err
	}
	return readAck(conn)
}

func BenchmarkLoopbackIngest(b *testing.B) {
	const n = 16
	streams := make([][]byte, n)
	for i := range streams {
		var err error
		streams[i], _, err = core.Compress(clientUpdate(uint64(i)+1), core.Options{LossyParams: ebcl.Rel(1e-2)})
		if err != nil {
			b.Fatal(err)
		}
	}
	var agg Aggregator
	srv, err := Listen("127.0.0.1:0", Config{Handler: agg.Add})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j, s := range streams {
			wg.Add(1)
			go func(j int, s []byte) {
				defer wg.Done()
				if err := Upload(addr, uint32(j), s); err != nil {
					b.Error(err)
				}
			}(j, s)
		}
		wg.Wait()
	}
	b.StopTimer()
	st := srv.Stats()
	b.ReportMetric(st.OverlapRatio(), "overlap")
}
