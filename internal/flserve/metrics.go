package flserve

// Server metrics: the ingest-side families every Server in the process
// shares on telemetry.Default(). Registration is lazy (first Server) and
// get-or-create, so tests running many servers concurrently and a
// production process running one both work; the counters are monotonic
// process-wide totals, exactly what a Prometheus scrape wants.

import (
	"sync"

	"repro/internal/telemetry"
)

type serverMetrics struct {
	connsAccepted *telemetry.Counter
	connsActive   *telemetry.Gauge
	connsRejected *telemetry.Counter
	maxConns      *telemetry.Gauge
	idleKills     *telemetry.Counter
	uploadKills   *telemetry.Counter
	shed          *telemetry.Counter
	queueDepth    *telemetry.Gauge

	updates         *telemetry.Counter
	updatesRejected *telemetry.Counter
	wireBytes       *telemetry.Counter
	wireHist        *telemetry.Histogram
	decodeHist      *telemetry.Histogram
	overlapHist     *telemetry.Histogram

	deltaAccepted *telemetry.Counter
	deltaRefused  *telemetry.Counter
}

var metrics = sync.OnceValue(func() *serverMetrics {
	r := telemetry.Default()
	return &serverMetrics{
		connsAccepted: r.Counter("fedsz_server_connections_accepted_total",
			"Connections accepted by the ingest listener."),
		connsActive: r.Gauge("fedsz_server_connections_active",
			"Connections currently being served."),
		connsRejected: r.Counter("fedsz_server_connections_rejected_total",
			"Connections dropped for protocol failures (bad magic, truncated prelude)."),
		maxConns: r.Gauge("fedsz_server_max_conns",
			"Configured MaxConns bound; fedsz_server_connections_active/fedsz_server_max_conns is accept-loop saturation."),
		idleKills: r.Counter("fedsz_server_timeout_kills_total",
			"Connections killed by a timeout, by kind.", telemetry.L("kind", "idle")),
		uploadKills: r.Counter("fedsz_server_timeout_kills_total",
			"Connections killed by a timeout, by kind.", telemetry.L("kind", "upload")),
		shed: r.Counter("fedsz_server_shed_total",
			"Connections refused by admission control (ingest queue full) — load declined, not failures."),
		queueDepth: r.Gauge("fedsz_server_queue_depth",
			"Connections waiting in the bounded ingest queue for a serving slot."),
		updates: r.Counter("fedsz_server_updates_total",
			"Updates decoded, verified, and folded by the handler."),
		updatesRejected: r.Counter("fedsz_server_updates_rejected_total",
			"Updates rejected by decode, verification, or the handler."),
		wireBytes: r.Counter("fedsz_server_wire_bytes_total",
			"Raw socket bytes across accepted updates."),
		wireHist: r.Histogram("fedsz_server_update_wire_bytes",
			"Per-update wire size (framing included).", telemetry.ByteBuckets),
		decodeHist: r.Histogram("fedsz_server_decode_seconds",
			"Per-update decode wall time, clientID through handler hand-off.", telemetry.DurationBuckets),
		overlapHist: r.Histogram("fedsz_server_overlap_ratio",
			"Per-update fraction of decode work hidden behind receive (0 = strictly sequential, 1 = fully overlapped).",
			telemetry.RatioBuckets),
		deltaAccepted: r.Counter("fedsz_server_delta_negotiations_total",
			"FLS2 delta negotiations, by outcome.", telemetry.L("outcome", "accepted")),
		deltaRefused: r.Counter("fedsz_server_delta_negotiations_total",
			"FLS2 delta negotiations, by outcome.", telemetry.L("outcome", "refused")),
	}
})
