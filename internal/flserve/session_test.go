package flserve

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ebcl"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/wire"
)

// TestSessionMultiUpdate: N wire streams over one dial, acked
// individually, each decoded bit-identically — the multi-update protocol
// that amortizes connection cost across a round.
func TestSessionMultiUpdate(t *testing.T) {
	const n = 6
	streams, expected := compressUpdates(t, n)
	col := newCollector()
	srv, err := Listen("127.0.0.1:0", Config{Parallel: 2, Handler: col.handle})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c := &Client{Addr: srv.Addr().String()}
	sess, err := c.Dial(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := sess.Upload(ctx, uint32(i), streams[i]); err != nil {
			t.Fatalf("update %d on shared connection: %v", i, err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Updates != n || st.Rejected != 0 {
		t.Fatalf("stats %+v, want %d clean updates over one connection", st, n)
	}
	for i := 0; i < n; i++ {
		u, ok := col.updates[uint32(i)]
		if !ok {
			t.Fatalf("update %d missing", i)
		}
		if !bytes.Equal(u.State.Marshal(), expected[i].Marshal()) {
			t.Fatalf("update %d: multi-update decode not bit-identical", i)
		}
		if u.WireBytes <= int64(len(streams[i])) {
			t.Fatalf("update %d: per-update wire bytes %d not accounting framing over %d",
				i, u.WireBytes, len(streams[i]))
		}
	}
}

// TestUploadStateStreamsEncode: the streaming-encode upload must decode
// bit-identically to the buffered pipeline and report encode stats.
func TestUploadStateStreamsEncode(t *testing.T) {
	sd := clientUpdate(99)
	opts := core.Options{LossyParams: ebcl.Rel(1e-2)}
	want, _, err := core.Compress(sd, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantDict, _, err := core.Decompress(want)
	if err != nil {
		t.Fatal(err)
	}

	col := newCollector()
	srv, err := Listen("127.0.0.1:0", Config{Parallel: 2, Handler: col.handle})
	if err != nil {
		t.Fatal(err)
	}
	c := &Client{Addr: srv.Addr().String(), Link: netsim.Link{BandwidthMbps: 200}}
	stats, err := c.UploadState(context.Background(), 7, sd, opts, sched.NewPool(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.CompressedBytes != len(want) {
		t.Fatalf("streamed %d bytes, buffered pipeline %d", stats.CompressedBytes, len(want))
	}
	if stats.EncodeWork <= 0 {
		t.Fatalf("encode stats missing: %+v", stats)
	}
	u, ok := col.updates[7]
	if !ok {
		t.Fatal("update never delivered")
	}
	if !bytes.Equal(u.State.Marshal(), wantDict.Marshal()) {
		t.Fatal("streaming-encode upload decoded differently from buffered pipeline")
	}
}

// TestUploadTimeoutDropsStalledUpdate: a client that starts an update and
// stalls must be cut at the per-upload deadline — rejected, connection
// dropped, MaxConns slot released.
func TestUploadTimeoutDropsStalledUpdate(t *testing.T) {
	streams, _ := compressUpdates(t, 1)
	var agg Aggregator
	srv, err := Listen("127.0.0.1:0", Config{
		MaxConns:      1,
		UploadTimeout: 150 * time.Millisecond,
		IdleTimeout:   -1, // isolate the upload deadline from the idle path
		Handler:       agg.Add,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Valid magic + clientID, then silence mid-update.
	stalled, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if _, err := stalled.Write([]byte{0x31, 0x53, 0x4C, 0x46, 9, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- Upload(srv.Addr().String(), 1, streams[0]) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("upload after stalled update: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled update outlived its UploadTimeout and pinned the slot")
	}
	if got := agg.Count(); got != 1 {
		t.Fatalf("aggregated %d updates, want 1", got)
	}
	if st := srv.Stats(); st.Rejected != 1 {
		t.Fatalf("stats %+v, want the stalled update rejected", st)
	}
}

// TestClientRetriesTransportFailure: a dial that fails until the server
// appears must succeed within the retry budget; a server rejection must
// not retry.
func TestClientRetriesTransportFailure(t *testing.T) {
	streams, _ := compressUpdates(t, 1)
	// Reserve an address with no listener, then bring the server up after
	// the first attempt has failed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var agg Aggregator
	started := make(chan struct{})
	go func() {
		time.Sleep(200 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			close(started)
			return
		}
		Serve(ln2, Config{Handler: agg.Add})
		close(started)
	}()

	c := &Client{Addr: addr, Retries: 8, RetryBackoff: 100 * time.Millisecond}
	if err := c.Upload(context.Background(), 3, streams[0]); err != nil {
		t.Fatalf("upload with retries: %v", err)
	}
	<-started
	if agg.Count() != 1 {
		t.Fatalf("aggregated %d updates, want 1", agg.Count())
	}

	// Rejections must not retry: a corrupt stream against the live server
	// fails fast even with a retry budget. A mid-payload flip keeps the
	// client-side section framing parseable; the wire layer or decoder on
	// the server rejects it.
	bad := append([]byte(nil), streams[0]...)
	bad[len(bad)/2] ^= 0xFF
	cr := &Client{Addr: addr, Retries: 3, RetryBackoff: 10 * time.Millisecond}
	t0 := time.Now()
	err = cr.Upload(context.Background(), 4, bad)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("corrupt upload: got %v, want ErrRejected", err)
	}
	if time.Since(t0) > 2*time.Second {
		t.Fatal("rejection appears to have been retried")
	}
}

// TestUploadCancelledContext: cancelling the context mid-upload surfaces
// context.Canceled, not a masked I/O error.
func TestUploadCancelledContext(t *testing.T) {
	streams, _ := compressUpdates(t, 1)
	var agg Aggregator
	srv, err := Listen("127.0.0.1:0", Config{Handler: agg.Add})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Client{Addr: srv.Addr().String(), Link: netsim.Link{BandwidthMbps: 5}}
	if err := c.Upload(ctx, 0, streams[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestAggregatorDedupByClient: with the at-least-once retry policy a
// duplicate upload (ack lost after fold, client retried) must not
// double-weight its client when dedup is on.
func TestAggregatorDedupByClient(t *testing.T) {
	streams, expected := compressUpdates(t, 2)
	agg := Aggregator{DedupByClient: true}
	srv, err := Listen("127.0.0.1:0", Config{Handler: agg.Add})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, id := range []uint32{0, 1, 0} { // client 0 retried
		if err := (&Client{Addr: srv.Addr().String()}).Upload(ctx, id, streams[id]); err != nil {
			t.Fatalf("upload %d: %v", id, err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	mean, n := agg.Mean()
	if n != 2 {
		t.Fatalf("folded %d updates, want 2 (duplicate dropped)", n)
	}
	want := expected[0].Zero()
	for _, sd := range expected {
		if err := want.AddScaled(sd, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if d, err := mean.MaxAbsDiff(want); err != nil || d > 1e-6 {
		t.Fatalf("dedup mean off by %v (err=%v)", d, err)
	}
}

// TestWireBytesExactOnSharedConnection: per-update WireBytes summed over a
// multi-update session must equal the bytes the client actually sent —
// the de-framer's logical accounting, immune to bufio read-ahead.
func TestWireBytesExactOnSharedConnection(t *testing.T) {
	const n = 4
	streams, _ := compressUpdates(t, n)
	col := newCollector()
	srv, err := Listen("127.0.0.1:0", Config{Handler: col.handle})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c := &Client{Addr: srv.Addr().String()}
	sess, err := c.Dial(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sent := int64(4) // connection magic
	for i := 0; i < n; i++ {
		if err := sess.Upload(ctx, uint32(i), streams[i]); err != nil {
			t.Fatal(err)
		}
		var framed bytes.Buffer
		if err := (wireWriterFor(&framed)).WriteStream(streams[i]); err != nil {
			t.Fatal(err)
		}
		sent += 4 + int64(framed.Len()) // clientID + wire stream
	}
	sess.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var got int64
	for _, u := range col.updates {
		got += u.WireBytes
	}
	if got != sent {
		t.Fatalf("summed WireBytes %d, client sent %d", got, sent)
	}
}

// wireWriterFor keeps the wire import local to the helper.
func wireWriterFor(w *bytes.Buffer) *wire.Writer { return wire.NewWriter(w) }
