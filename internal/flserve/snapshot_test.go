package flserve

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// TestSnapshotScrapeUnderLoad hammers Snapshot() and a full Prometheus
// render from scraper goroutines while uploads are in flight — the
// -race proof that the server's counters and the registry are safe to
// read concurrently with the ingest hot path.
func TestSnapshotScrapeUnderLoad(t *testing.T) {
	const n = 16
	streams, _ := compressUpdates(t, n)
	srv, err := Listen("127.0.0.1:0", Config{Handler: func(Update) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}

	var stopScrape atomic.Bool
	var scrapes sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for !stopScrape.Load() {
				st := srv.Snapshot()
				if st.Updates < 0 || st.WireBytes < 0 || st.Rejected < 0 {
					panic("snapshot went negative")
				}
				if r := st.OverlapRatio(); r < 0 || r > 1 {
					panic("overlap ratio out of [0,1]")
				}
				if err := telemetry.Default().WritePrometheus(io.Discard); err != nil {
					panic(err)
				}
			}
		}()
	}

	uploadAll(t, srv.Addr().String(), streams, netsim.Link{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	stopScrape.Store(true)
	scrapes.Wait()

	st := srv.Snapshot()
	if st.Updates != n || st.Rejected != 0 {
		t.Fatalf("final snapshot %+v, want %d updates / 0 rejected", st, n)
	}
	if st.WireBytes == 0 || st.DecodeWork == 0 {
		t.Fatalf("final snapshot missing accounting: %+v", st)
	}
}
