package huffman

import (
	"math/rand/v2"
	"testing"

	"repro/internal/sched"
)

// szQuantStream builds a symbol stream shaped like SZ2 quantization codes:
// a tight normal mass centered at QuantRadius with occasional escapes —
// the distribution the entropy stage decodes on the aggregation server's
// hot path.
func szQuantStream(n int) []uint16 {
	rng := rand.New(rand.NewPCG(42, 1105))
	syms := make([]uint16, n)
	for i := range syms {
		if rng.IntN(512) == 0 {
			syms[i] = quantEscape
			continue
		}
		v := quantRadius + int(rng.NormFloat64()*6)
		if v < 1 {
			v = 1
		}
		if v >= quantAlphabet {
			v = quantAlphabet - 1
		}
		syms[i] = uint16(v)
	}
	return syms
}

// BenchmarkHuffmanDecode compares the table-driven decoder against the
// retained bit-by-bit reference decoder on the SZ2 quantization-code
// distribution. The acceptance bar for PR 3 is table ≥ 3× reference.
func BenchmarkHuffmanDecode(b *testing.B) {
	syms := szQuantStream(1 << 16)
	enc, err := EncodeAllU16(syms, quantAlphabet)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("table", func(b *testing.B) {
		b.SetBytes(int64(len(syms)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := DecodeAllU16(enc, quantAlphabet)
			if err != nil {
				b.Fatal(err)
			}
			sched.PutUint16s(out)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.SetBytes(int64(len(syms)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := decodeAllRef(enc, quantAlphabet); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkHuffmanEncode(b *testing.B) {
	syms := szQuantStream(1 << 16)
	b.SetBytes(int64(len(syms)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := EncodeAllU16(syms, quantAlphabet)
		if err != nil {
			b.Fatal(err)
		}
		sched.PutBytes(enc)
	}
}
