// Package huffman implements a canonical, length-limited Huffman codec over
// integer alphabets. It is the entropy stage shared by the SZ2 and SZ3 lossy
// compressors (quantization codes) and the zstd-like / xz-like lossless
// codecs (literal and match-length alphabets).
//
// Code tables are serialized as the list of per-symbol code lengths, so the
// decoder can rebuild the exact canonical code without transmitting the
// codes themselves.
//
// Decoding is table-driven in the zlib/zstd style: a primary lookup table
// indexed by the next primaryBits bits resolves short codes in one probe,
// with per-prefix secondary tables for longer codes. The original
// bit-by-bit canonical decoder is retained as Decode — it is the reference
// implementation the table decoder is differentially tested against, and
// the fallback that reproduces exact error behavior on truncated or
// corrupt streams. Both decoders read the same serialized format; only the
// number of bits moved per memory access differs.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitio"
	"repro/internal/sched"
)

// MaxCodeLen is the maximum code length produced by NewCodec. Length
// limiting keeps the decoder tables small and bounds worst-case expansion.
const MaxCodeLen = 24

// primaryBits is the index width of the first-level decode table: one
// 2^11-entry probe resolves every code up to 11 bits — which covers all hot
// symbols of the skewed quantization-code and literal distributions — and
// longer codes chain through a compact per-prefix secondary table.
const primaryBits = 11

// Decode-table entry layout (uint32):
//
//	bits 0..4  code length to consume (direct) or secondary width (link)
//	bit  5     link flag: entry points at a secondary table
//	bits 6..   symbol (direct) or secondary-table base offset (link)
//
// A zero entry marks a bit pattern that is no code's prefix (possible only
// for incomplete codes, e.g. the single-symbol case) and routes the caller
// to the reference decoder for exact error reporting.
const (
	entryLenMask = 0x1F
	entryLink    = 0x20
	entryShift   = 6
)

var (
	// ErrCorrupt is returned when a bitstream does not decode to a valid
	// symbol sequence under the codec's tables.
	ErrCorrupt = errors.New("huffman: corrupt bitstream")
	// ErrBadLengths is returned when a serialized length table does not
	// describe a valid (complete or empty) canonical code.
	ErrBadLengths = errors.New("huffman: invalid code length table")
)

// Codec holds the canonical code for one alphabet. A Codec is immutable and
// safe for concurrent use after construction.
type Codec struct {
	numSymbols int
	lengths    []uint8  // per-symbol code length, 0 = unused symbol
	enc        []uint32 // per-symbol packed (code<<5 | length), 0 = no code

	// Reference-decoder acceleration: firstCode[l] is the canonical code
	// value of the first code of length l; index[l] is the offset into
	// sorted where codes of length l begin; sorted lists symbols ordered by
	// (length, symbol).
	firstCode [MaxCodeLen + 2]uint32
	index     [MaxCodeLen + 2]int32
	sorted    []int32
	maxLen    uint8

	// Table decoder: primary table of 1<<tableBits entries followed by the
	// secondary tables for codes longer than tableBits.
	tableBits uint
	table     []uint32

	// subBits is build-time scratch (per-prefix secondary widths) retained
	// so pooled codec shells rebuild without reallocating it.
	subBits []uint8
}

// codecPool recycles Codec shells — and, crucially, the enc/sorted/table
// array storage hanging off them — across the bulk encode/decode calls.
// The entropy stage builds one transient codec per blob; in steady state a
// rebuild into a pooled shell allocates nothing.
var codecPool = sync.Pool{New: func() any { return new(Codec) }}

// putCodec returns a bulk-path codec shell to the reuse pool. The caller
// must hold no references to the codec or its tables afterwards.
func putCodec(c *Codec) {
	// An adversarial length table can inflate the secondary tables; don't
	// let one hostile blob pin megabytes in the pool.
	if cap(c.table) > 1<<20 {
		return
	}
	codecPool.Put(c)
}

// grow returns a slice of length n backed by s's array when the capacity
// suffices and freshly allocated otherwise; contents are unspecified.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

type hNode struct {
	weight      uint64
	symbol      int32 // -1 for internal
	left, right *hNode
	depth       int
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	// Tie-break on depth for more balanced trees (shorter max length).
	return h[i].depth < h[j].depth
}
func (h hHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x interface{}) { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewCodec builds a canonical Huffman code for an alphabet of
// len(frequencies) symbols with the given occurrence counts. Symbols with
// zero frequency get no code. Codes longer than MaxCodeLen are flattened by
// iteratively halving large frequencies (the standard length-limiting
// heuristic), which preserves decodability at a tiny ratio cost.
func NewCodec(frequencies []uint64) (*Codec, error) {
	c := new(Codec)
	if err := c.initFromFreqs(frequencies); err != nil {
		return nil, err
	}
	return c, nil
}

// initFromFreqs (re)builds c for the given frequency table, reusing c's
// table storage — the pooled-shell path behind the bulk encoder.
func (c *Codec) initFromFreqs(frequencies []uint64) error {
	if len(frequencies) == 0 {
		return errors.New("huffman: empty alphabet")
	}
	freqs := sched.GetUint64s(len(frequencies))
	freqs = append(freqs, frequencies...)
	defer sched.PutUint64s(freqs)

	lengths := grow(c.lengths, len(freqs))
	for attempt := 0; ; attempt++ {
		buildLengths(freqs, lengths)
		maxLen := uint8(0)
		for _, l := range lengths {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= MaxCodeLen {
			return c.init(lengths)
		}
		if attempt > 64 {
			return errors.New("huffman: failed to limit code lengths")
		}
		// Flatten the distribution and retry.
		for i, f := range freqs {
			if f > 0 {
				freqs[i] = f/2 + 1
			}
		}
	}
}

// buildScratch recycles the Huffman tree-construction storage: the classic
// algorithm needs 2·used−1 nodes, previously one heap allocation each —
// the dominant allocation count of the whole compress path.
type buildScratch struct {
	nodes []hNode
	heap  hHeap
}

var buildPool = sync.Pool{New: func() any { return new(buildScratch) }}

// buildLengths runs the classic two-queue Huffman construction, writing
// per-symbol code lengths into lengths (len(lengths) == len(freqs)).
func buildLengths(freqs []uint64, lengths []uint8) {
	clear(lengths)
	used := 0
	last := int32(-1)
	for i, f := range freqs {
		if f > 0 {
			used++
			last = int32(i)
		}
	}
	switch used {
	case 0:
		return // empty code: encoder never emits symbols
	case 1:
		lengths[last] = 1 // single symbol still needs one bit
		return
	}
	sc := buildPool.Get().(*buildScratch)
	// The arena is sized up front so appends never reallocate: heap entries
	// are pointers into it and must stay stable.
	if cap(sc.nodes) < 2*used {
		sc.nodes = make([]hNode, 0, 2*used)
	}
	nodes := sc.nodes[:0]
	h := sc.heap[:0]
	for i, f := range freqs {
		if f > 0 {
			nodes = append(nodes, hNode{weight: f, symbol: int32(i)})
		}
	}
	for i := range nodes {
		h = append(h, &nodes[i])
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hNode)
		b := heap.Pop(&h).(*hNode)
		d := a.depth
		if b.depth > d {
			d = b.depth
		}
		nodes = append(nodes, hNode{weight: a.weight + b.weight, symbol: -1, left: a, right: b, depth: d + 1})
		heap.Push(&h, &nodes[len(nodes)-1])
	}
	root := h[0]
	var walk func(n *hNode, depth uint8)
	walk = func(n *hNode, depth uint8) {
		if n.symbol >= 0 {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	sc.nodes, sc.heap = nodes[:0], h[:0]
	buildPool.Put(sc)
}

// NewCodecFromLengths rebuilds a codec from a serialized length table (the
// decoder-side constructor).
func NewCodecFromLengths(lengths []uint8) (*Codec, error) {
	c := new(Codec)
	if err := c.init(append([]uint8(nil), lengths...)); err != nil {
		return nil, err
	}
	return c, nil
}

// init (re)builds c from a length table, taking ownership of lengths and
// reusing c's table storage when its capacity suffices — pooled codec
// shells rebuild allocation-free in steady state.
func (c *Codec) init(lengths []uint8) error {
	c.numSymbols, c.lengths, c.maxLen = len(lengths), lengths, 0
	// Count codes per length; validate Kraft sum.
	var counts [MaxCodeLen + 2]uint32
	used := 0
	for _, l := range lengths {
		if l > MaxCodeLen {
			return ErrBadLengths
		}
		if l > 0 {
			counts[l]++
			used++
			if l > c.maxLen {
				c.maxLen = l
			}
		}
	}
	if used == 0 {
		c.enc = c.enc[:0]
		c.sorted = c.sorted[:0]
		c.table = c.table[:0]
		c.tableBits = 0
		return nil
	}
	var kraft uint64
	for l := uint8(1); l <= c.maxLen; l++ {
		kraft += uint64(counts[l]) << (uint(c.maxLen) - uint(l))
	}
	if used > 1 && kraft != 1<<uint(c.maxLen) {
		return ErrBadLengths
	}
	// Canonical first codes per length.
	code := uint32(0)
	var next [MaxCodeLen + 2]uint32
	var offset int32
	for l := uint8(1); l <= c.maxLen; l++ {
		code <<= 1
		c.firstCode[l] = code
		next[l] = code
		c.index[l] = offset
		offset += int32(counts[l])
		code += counts[l]
	}
	// Assign codes symbol-ascending within each length (canonical order):
	// one ascending pass over the symbols lands each in its length class in
	// exactly sorted-(length, symbol) order, no sort needed.
	c.enc = grow(c.enc, len(lengths))
	clear(c.enc)
	c.sorted = grow(c.sorted, used)
	var pos [MaxCodeLen + 2]int32
	copy(pos[:], c.index[:])
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		c.enc[s] = next[l]<<5 | uint32(l)
		next[l]++
		c.sorted[pos[l]] = int32(s)
		pos[l]++
	}
	c.buildDecodeTable()
	return nil
}

// code returns the canonical code bits of symbol s (which must have one).
func (c *Codec) code(s int32) uint32 { return c.enc[s] >> 5 }

// buildDecodeTable constructs the primary + secondary lookup tables from
// the already-assigned canonical codes. Every bit pattern that starts a
// valid code maps to a filled entry; patterns outside the code (possible
// only for incomplete codes) stay zero.
func (c *Codec) buildDecodeTable() {
	tb := uint(c.maxLen)
	if tb > primaryBits {
		tb = primaryBits
	}
	c.tableBits = tb
	prim := uint32(1) << tb

	// Width of each prefix's secondary table: the longest code sharing that
	// primary index determines how many extra bits it must resolve.
	var subBits []uint8
	total := prim
	if uint(c.maxLen) > tb {
		c.subBits = grow(c.subBits, int(prim))
		subBits = c.subBits
		clear(subBits)
		for _, s := range c.sorted {
			l := uint(c.lengths[s])
			if l <= tb {
				continue
			}
			prefix := c.code(s) >> (l - tb)
			if x := uint8(l - tb); x > subBits[prefix] {
				subBits[prefix] = x
			}
		}
		for _, b := range subBits {
			if b > 0 {
				total += uint32(1) << b
			}
		}
	}
	c.table = grow(c.table, int(total))
	clear(c.table)

	// Link entries first, so long-code filling can locate its table.
	nextBase := prim
	for prefix, b := range subBits {
		if b > 0 {
			c.table[prefix] = nextBase<<entryShift | entryLink | uint32(b)
			nextBase += uint32(1) << b
		}
	}
	for _, s := range c.sorted {
		l := uint(c.lengths[s])
		entry := uint32(s)<<entryShift | uint32(l)
		if l <= tb {
			// Short code: replicate over every suffix of the primary index.
			base := c.code(s) << (tb - l)
			for j := uint32(0); j < 1<<(tb-l); j++ {
				c.table[base+j] = entry
			}
			continue
		}
		code := c.code(s)
		link := c.table[code>>(l-tb)]
		base := link >> entryShift
		b := uint(link & entryLenMask)
		low := code & (1<<(l-tb) - 1)
		start := base + low<<(b-(l-tb))
		for j := uint32(0); j < 1<<(b-(l-tb)); j++ {
			c.table[start+j] = entry
		}
	}
}

// Lengths returns the per-symbol code length table for serialization. The
// returned slice must not be modified.
func (c *Codec) Lengths() []uint8 { return c.lengths }

// NumSymbols returns the alphabet size the codec was built for.
func (c *Codec) NumSymbols() int { return c.numSymbols }

// CodeLen returns the code length of symbol s (0 if s has no code).
func (c *Codec) CodeLen(s int) uint8 { return c.lengths[s] }

// Encode appends the code for symbol s to w. Encoding a symbol with no code
// panics: it indicates the frequency table the codec was built from did not
// cover the data.
func (c *Codec) Encode(w *bitio.Writer, s int) {
	e := c.enc[s]
	if e == 0 {
		panic(fmt.Sprintf("huffman: symbol %d has no code", s))
	}
	w.WriteBits(uint64(e>>5), uint(e&entryLenMask))
}

// Decode reads one symbol from r bit-by-bit over the canonical first-code
// ladder. It is the reference decoder: DecodeFast and the bulk decoders are
// differentially tested against it, and delegate to it on truncated or
// invalid streams so error semantics are identical across paths.
func (c *Codec) Decode(r *bitio.Reader) (int, error) {
	var code uint32
	for l := uint8(1); l <= c.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(bit)
		// Codes of length l occupy [firstCode[l], firstCode[l]+count).
		first := c.firstCode[l]
		idx := c.index[l]
		var count uint32
		if l < c.maxLen {
			count = (c.firstCode[l+1] >> 1) - first
		} else {
			count = uint32(len(c.sorted)) - uint32(idx)
		}
		if code >= first && code-first < count {
			return int(c.sorted[idx+int32(code-first)]), nil
		}
	}
	return 0, ErrCorrupt
}

// decodeFast resolves one symbol through the lookup tables. ok reports
// whether the fast path applied; on false nothing was consumed and the
// caller must take the reference path (stream truncated mid-code, or the
// peeked pattern is no code's prefix).
func (c *Codec) decodeFast(r *bitio.Reader) (s int, ok bool) {
	if len(c.table) == 0 {
		return 0, false // empty code: no symbol can decode
	}
	r.Refill()
	e := c.table[r.Peek(c.tableBits)]
	if e&entryLink != 0 {
		sub := uint(e & entryLenMask)
		e = c.table[e>>entryShift+uint32(r.Peek(c.tableBits+sub)&(1<<sub-1))]
	}
	n := uint(e & entryLenMask)
	// After Refill the accumulator holds min(56, BitsRemaining) bits and
	// every code fits in 24, so n exceeding Buffered means the stream ends
	// mid-code.
	if n == 0 || n > r.Buffered() {
		return 0, false
	}
	r.Consume(n)
	return int(e >> entryShift), true
}

// DecodeFast reads one symbol via the multi-bit table decoder. It returns
// exactly what Decode would — same symbols, same errors, same stream
// position — one table probe at a time instead of one bit at a time.
func (c *Codec) DecodeFast(r *bitio.Reader) (int, error) {
	if s, ok := c.decodeFast(r); ok {
		return s, nil
	}
	return c.Decode(r)
}

// symbol constrains the integer element types the bulk coders move.
type symbol interface{ ~int | ~uint16 }

// encodeSeq is the shared bulk encoder: histogram (pooled scratch), codec
// construction, then header + packed codes into a pooled output buffer.
func encodeSeq[E symbol](symbols []E, alphabet int) ([]byte, error) {
	freqs := sched.GetUint64s(alphabet)[:alphabet]
	clear(freqs)
	for _, v := range symbols {
		s := int(v)
		if s < 0 || s >= alphabet {
			sched.PutUint64s(freqs)
			return nil, fmt.Errorf("huffman: symbol %d out of alphabet [0,%d)", s, alphabet)
		}
		freqs[s]++
	}
	c := codecPool.Get().(*Codec)
	err := c.initFromFreqs(freqs)
	sched.PutUint64s(freqs)
	if err != nil {
		putCodec(c)
		return nil, err
	}
	w := bitio.NewWriterBuffer(sched.GetBytes(len(symbols)/2 + 64))
	writeLengthTable(w, c.lengths)
	w.WriteBits(uint64(len(symbols)), 32)
	enc := c.enc
	for _, v := range symbols {
		e := enc[v]
		if e == 0 {
			panic(fmt.Sprintf("huffman: symbol %d has no code", int(v)))
		}
		w.WriteBits(uint64(e>>5), uint(e&entryLenMask))
	}
	putCodec(c)
	return w.Bytes(), nil
}

// decodeSeq is the shared bulk decoder: rebuild the codec from the length
// table, then fill out through the table decoder, falling back to the
// reference decoder at the stream tail or on corruption.
func decodeSeq[E symbol](r *bitio.Reader, c *Codec, out []E) error {
	for i := range out {
		s, ok := c.decodeFast(r)
		if !ok {
			var err error
			if s, err = c.Decode(r); err != nil {
				return err
			}
		}
		out[i] = E(s)
	}
	return nil
}

// decodeHeader reads the length table and symbol count shared by the bulk
// decoders, rebuilding the codec into a pooled shell. The caller must
// return the codec via putCodec once decoding finishes.
func decodeHeader(r *bitio.Reader, alphabet int) (*Codec, int, error) {
	c := codecPool.Get().(*Codec)
	lengths, err := readLengthTable(r, alphabet, c.lengths)
	if err != nil {
		putCodec(c)
		return nil, 0, err
	}
	if err := c.init(lengths); err != nil {
		putCodec(c)
		return nil, 0, err
	}
	n64, err := r.ReadBits(32)
	if err != nil {
		putCodec(c)
		return nil, 0, err
	}
	n := int(n64)
	// Every symbol costs at least one bit, so a count exceeding the
	// remaining stream is corruption — reject before allocating.
	if n > r.BitsRemaining() {
		putCodec(c)
		return nil, 0, ErrCorrupt
	}
	return c, n, nil
}

// EncodeAll encodes a full symbol sequence and returns header+payload bytes:
// the length table (varint count + raw lengths) followed by the bit-packed
// codes. Use DecodeAll to reverse. The returned buffer comes from the
// shared sched byte pool; callers that copy it elsewhere should recycle it
// via sched.PutBytes.
func EncodeAll(symbols []int, alphabet int) ([]byte, error) {
	return encodeSeq(symbols, alphabet)
}

// EncodeAllU16 is EncodeAll for the uint16 symbol pipeline the quantization
// stages use (codes ≤ 4096 fit in 16 bits, halving traffic and letting the
// scratch come from the sched pools). The wire format is identical to
// EncodeAll's.
func EncodeAllU16(symbols []uint16, alphabet int) ([]byte, error) {
	return encodeSeq(symbols, alphabet)
}

// DecodeAll reverses EncodeAll into a freshly allocated []int.
func DecodeAll(data []byte, alphabet int) ([]int, error) {
	r := bitio.NewReader(data)
	c, n, err := decodeHeader(r, alphabet)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	err = decodeSeq(r, c, out)
	putCodec(c)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeAllU16 reverses EncodeAll/EncodeAllU16 into a buffer drawn from the
// sched uint16 pool; the caller owns it and should recycle it via
// sched.PutUint16s. The alphabet must fit uint16 symbols (≤ 65536).
func DecodeAllU16(data []byte, alphabet int) ([]uint16, error) {
	if alphabet > 1<<16 {
		return nil, fmt.Errorf("huffman: alphabet %d exceeds uint16 symbols", alphabet)
	}
	r := bitio.NewReader(data)
	c, n, err := decodeHeader(r, alphabet)
	if err != nil {
		return nil, err
	}
	out := sched.GetUint16s(n)[:n]
	err = decodeSeq(r, c, out)
	putCodec(c)
	if err != nil {
		sched.PutUint16s(out)
		return nil, err
	}
	return out, nil
}

// writeLengthTable emits the code-length table using a simple run-length
// scheme: (length:5, runLen:12) pairs, which is compact because quantization
// code tables are dominated by long zero runs.
func writeLengthTable(w *bitio.Writer, lengths []uint8) {
	w.WriteBits(uint64(len(lengths)), 24)
	i := 0
	for i < len(lengths) {
		l := lengths[i]
		j := i + 1
		for j < len(lengths) && lengths[j] == l && j-i < 1<<12-1 {
			j++
		}
		w.WriteBits(uint64(l), 5)
		w.WriteBits(uint64(j-i), 12)
		i = j
	}
}

// readLengthTable parses a serialized length table, writing it into buf's
// storage when the capacity suffices (the pooled-codec rebuild path).
func readLengthTable(r *bitio.Reader, maxAlphabet int, buf []uint8) ([]uint8, error) {
	n64, err := r.ReadBits(24)
	if err != nil {
		return nil, err
	}
	n := int(n64)
	if n == 0 || n > maxAlphabet {
		return nil, ErrBadLengths
	}
	lengths := grow(buf, n)
	clear(lengths)
	i := 0
	for i < n {
		l, err := r.ReadBits(5)
		if err != nil {
			return nil, err
		}
		run, err := r.ReadBits(12)
		if err != nil {
			return nil, err
		}
		if run == 0 || i+int(run) > n {
			return nil, ErrBadLengths
		}
		for k := 0; k < int(run); k++ {
			lengths[i+k] = uint8(l)
		}
		i += int(run)
	}
	return lengths, nil
}
