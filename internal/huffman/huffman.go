// Package huffman implements a canonical, length-limited Huffman codec over
// integer alphabets. It is the entropy stage shared by the SZ2 and SZ3 lossy
// compressors (quantization codes) and the zstd-like / xz-like lossless
// codecs (literal and match-length alphabets).
//
// Code tables are serialized as the list of per-symbol code lengths, so the
// decoder can rebuild the exact canonical code without transmitting the
// codes themselves.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitio"
)

// MaxCodeLen is the maximum code length produced by NewCodec. Length
// limiting keeps the decoder tables small and bounds worst-case expansion.
const MaxCodeLen = 24

var (
	// ErrCorrupt is returned when a bitstream does not decode to a valid
	// symbol sequence under the codec's tables.
	ErrCorrupt = errors.New("huffman: corrupt bitstream")
	// ErrBadLengths is returned when a serialized length table does not
	// describe a valid (complete or empty) canonical code.
	ErrBadLengths = errors.New("huffman: invalid code length table")
)

// Codec holds the canonical code for one alphabet. A Codec is immutable and
// safe for concurrent use after construction.
type Codec struct {
	numSymbols int
	lengths    []uint8  // per-symbol code length, 0 = unused symbol
	codes      []uint32 // per-symbol canonical code (MSB-first)

	// Decoding acceleration: firstCode[l] is the canonical code value of the
	// first code of length l; index[l] is the offset into sorted where codes
	// of length l begin; sorted lists symbols ordered by (length, symbol).
	firstCode [MaxCodeLen + 2]uint32
	index     [MaxCodeLen + 2]int32
	sorted    []int32
	maxLen    uint8
}

type hNode struct {
	weight      uint64
	symbol      int32 // -1 for internal
	left, right *hNode
	depth       int
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	// Tie-break on depth for more balanced trees (shorter max length).
	return h[i].depth < h[j].depth
}
func (h hHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x interface{}) { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewCodec builds a canonical Huffman code for an alphabet of
// len(frequencies) symbols with the given occurrence counts. Symbols with
// zero frequency get no code. Codes longer than MaxCodeLen are flattened by
// iteratively halving large frequencies (the standard length-limiting
// heuristic), which preserves decodability at a tiny ratio cost.
func NewCodec(frequencies []uint64) (*Codec, error) {
	if len(frequencies) == 0 {
		return nil, errors.New("huffman: empty alphabet")
	}
	freqs := make([]uint64, len(frequencies))
	copy(freqs, frequencies)

	for attempt := 0; ; attempt++ {
		lengths, err := buildLengths(freqs)
		if err != nil {
			return nil, err
		}
		maxLen := uint8(0)
		for _, l := range lengths {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= MaxCodeLen {
			return newCodecFromLengths(lengths)
		}
		if attempt > 64 {
			return nil, errors.New("huffman: failed to limit code lengths")
		}
		// Flatten the distribution and retry.
		for i, f := range freqs {
			if f > 0 {
				freqs[i] = f/2 + 1
			}
		}
	}
}

// buildLengths runs the classic two-queue Huffman construction and returns
// per-symbol code lengths.
func buildLengths(freqs []uint64) ([]uint8, error) {
	lengths := make([]uint8, len(freqs))
	h := make(hHeap, 0, len(freqs))
	for i, f := range freqs {
		if f > 0 {
			h = append(h, &hNode{weight: f, symbol: int32(i)})
		}
	}
	switch len(h) {
	case 0:
		return lengths, nil // empty code: encoder never emits symbols
	case 1:
		lengths[h[0].symbol] = 1 // single symbol still needs one bit
		return lengths, nil
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hNode)
		b := heap.Pop(&h).(*hNode)
		d := a.depth
		if b.depth > d {
			d = b.depth
		}
		heap.Push(&h, &hNode{weight: a.weight + b.weight, symbol: -1, left: a, right: b, depth: d + 1})
	}
	root := h[0]
	var walk func(n *hNode, depth uint8)
	walk = func(n *hNode, depth uint8) {
		if n.symbol >= 0 {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths, nil
}

// NewCodecFromLengths rebuilds a codec from a serialized length table (the
// decoder-side constructor).
func NewCodecFromLengths(lengths []uint8) (*Codec, error) {
	return newCodecFromLengths(append([]uint8(nil), lengths...))
}

func newCodecFromLengths(lengths []uint8) (*Codec, error) {
	c := &Codec{numSymbols: len(lengths), lengths: lengths}
	// Count codes per length; validate Kraft sum.
	var counts [MaxCodeLen + 2]uint32
	used := 0
	for _, l := range lengths {
		if l > MaxCodeLen {
			return nil, ErrBadLengths
		}
		if l > 0 {
			counts[l]++
			used++
			if l > c.maxLen {
				c.maxLen = l
			}
		}
	}
	if used == 0 {
		return c, nil
	}
	var kraft uint64
	for l := uint8(1); l <= c.maxLen; l++ {
		kraft += uint64(counts[l]) << (uint(c.maxLen) - uint(l))
	}
	if used > 1 && kraft != 1<<uint(c.maxLen) {
		return nil, ErrBadLengths
	}
	// Canonical first codes per length.
	code := uint32(0)
	var next [MaxCodeLen + 2]uint32
	var offset int32
	for l := uint8(1); l <= c.maxLen; l++ {
		code <<= 1
		c.firstCode[l] = code
		next[l] = code
		c.index[l] = offset
		offset += int32(counts[l])
		code += counts[l]
	}
	// Assign codes symbol-ascending within each length (canonical order).
	c.codes = make([]uint32, len(lengths))
	c.sorted = make([]int32, used)
	type sl struct {
		sym int32
		l   uint8
	}
	order := make([]sl, 0, used)
	for s, l := range lengths {
		if l > 0 {
			order = append(order, sl{int32(s), l})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].l != order[j].l {
			return order[i].l < order[j].l
		}
		return order[i].sym < order[j].sym
	})
	pos := make([]int32, MaxCodeLen+2)
	copy(pos, c.index[:])
	for _, e := range order {
		c.codes[e.sym] = next[e.l]
		next[e.l]++
		c.sorted[pos[e.l]] = e.sym
		pos[e.l]++
	}
	return c, nil
}

// Lengths returns the per-symbol code length table for serialization. The
// returned slice must not be modified.
func (c *Codec) Lengths() []uint8 { return c.lengths }

// NumSymbols returns the alphabet size the codec was built for.
func (c *Codec) NumSymbols() int { return c.numSymbols }

// CodeLen returns the code length of symbol s (0 if s has no code).
func (c *Codec) CodeLen(s int) uint8 { return c.lengths[s] }

// Encode appends the code for symbol s to w. Encoding a symbol with no code
// panics: it indicates the frequency table the codec was built from did not
// cover the data.
func (c *Codec) Encode(w *bitio.Writer, s int) {
	l := c.lengths[s]
	if l == 0 {
		panic(fmt.Sprintf("huffman: symbol %d has no code", s))
	}
	w.WriteBits(uint64(c.codes[s]), uint(l))
}

// Decode reads one symbol from r.
func (c *Codec) Decode(r *bitio.Reader) (int, error) {
	var code uint32
	for l := uint8(1); l <= c.maxLen; l++ {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(bit)
		// Codes of length l occupy [firstCode[l], firstCode[l]+count).
		first := c.firstCode[l]
		idx := c.index[l]
		var count uint32
		if l < c.maxLen {
			count = (c.firstCode[l+1] >> 1) - first
		} else {
			count = uint32(len(c.sorted)) - uint32(idx)
		}
		if code >= first && code-first < count {
			return int(c.sorted[idx+int32(code-first)]), nil
		}
	}
	return 0, ErrCorrupt
}

// EncodeAll encodes a full symbol sequence and returns header+payload bytes:
// the length table (varint count + raw lengths) followed by the bit-packed
// codes. Use DecodeAll to reverse.
func EncodeAll(symbols []int, alphabet int) ([]byte, error) {
	freqs := make([]uint64, alphabet)
	for _, s := range symbols {
		if s < 0 || s >= alphabet {
			return nil, fmt.Errorf("huffman: symbol %d out of alphabet [0,%d)", s, alphabet)
		}
		freqs[s]++
	}
	c, err := NewCodec(freqs)
	if err != nil {
		return nil, err
	}
	w := bitio.NewWriter(len(symbols)/2 + 64)
	writeLengthTable(w, c.Lengths())
	w.WriteBits(uint64(len(symbols)), 32)
	for _, s := range symbols {
		c.Encode(w, s)
	}
	return w.Bytes(), nil
}

// DecodeAll reverses EncodeAll.
func DecodeAll(data []byte, alphabet int) ([]int, error) {
	r := bitio.NewReader(data)
	lengths, err := readLengthTable(r, alphabet)
	if err != nil {
		return nil, err
	}
	c, err := NewCodecFromLengths(lengths)
	if err != nil {
		return nil, err
	}
	n64, err := r.ReadBits(32)
	if err != nil {
		return nil, err
	}
	n := int(n64)
	// Every symbol costs at least one bit, so a count exceeding the
	// remaining stream is corruption — reject before allocating.
	if n > r.BitsRemaining() {
		return nil, ErrCorrupt
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		s, err := c.Decode(r)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// writeLengthTable emits the code-length table using a simple run-length
// scheme: (length:5, runLen:12) pairs, which is compact because quantization
// code tables are dominated by long zero runs.
func writeLengthTable(w *bitio.Writer, lengths []uint8) {
	w.WriteBits(uint64(len(lengths)), 24)
	i := 0
	for i < len(lengths) {
		l := lengths[i]
		j := i + 1
		for j < len(lengths) && lengths[j] == l && j-i < 1<<12-1 {
			j++
		}
		w.WriteBits(uint64(l), 5)
		w.WriteBits(uint64(j-i), 12)
		i = j
	}
}

func readLengthTable(r *bitio.Reader, maxAlphabet int) ([]uint8, error) {
	n64, err := r.ReadBits(24)
	if err != nil {
		return nil, err
	}
	n := int(n64)
	if n == 0 || n > maxAlphabet {
		return nil, ErrBadLengths
	}
	lengths := make([]uint8, n)
	i := 0
	for i < n {
		l, err := r.ReadBits(5)
		if err != nil {
			return nil, err
		}
		run, err := r.ReadBits(12)
		if err != nil {
			return nil, err
		}
		if run == 0 || i+int(run) > n {
			return nil, ErrBadLengths
		}
		for k := 0; k < int(run); k++ {
			lengths[i+k] = uint8(l)
		}
		i += int(run)
	}
	return lengths, nil
}
