package huffman

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/bitio"
)

func TestSingleSymbol(t *testing.T) {
	c, err := NewCodec([]uint64{0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	for i := 0; i < 5; i++ {
		c.Encode(w, 1)
	}
	r := bitio.NewReader(w.Bytes())
	for i := 0; i < 5; i++ {
		s, err := c.Decode(r)
		if err != nil || s != 1 {
			t.Fatalf("decode %d: got %d err %v", i, s, err)
		}
	}
}

func TestTwoSymbols(t *testing.T) {
	c, err := NewCodec([]uint64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if c.CodeLen(0) != 1 || c.CodeLen(1) != 1 {
		t.Fatalf("lengths %d %d, want 1 1", c.CodeLen(0), c.CodeLen(1))
	}
}

func TestSkewedDistribution(t *testing.T) {
	// A very skewed distribution must give the hot symbol a short code.
	freqs := make([]uint64, 64)
	freqs[10] = 1_000_000
	for i := range freqs {
		if i != 10 {
			freqs[i] = 1
		}
	}
	c, err := NewCodec(freqs)
	if err != nil {
		t.Fatal(err)
	}
	if c.CodeLen(10) > 2 {
		t.Fatalf("hot symbol code length %d, want <= 2", c.CodeLen(10))
	}
	for i := range freqs {
		if c.CodeLen(i) == 0 {
			t.Fatalf("symbol %d lost its code", i)
		}
	}
}

func TestLengthLimiting(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; lengths must be capped.
	freqs := make([]uint64, 48)
	a, b := uint64(1), uint64(1)
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
		if a > 1<<60 {
			a = 1 << 60
		}
	}
	c, err := NewCodec(freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range freqs {
		if l := c.CodeLen(i); l == 0 || l > MaxCodeLen {
			t.Fatalf("symbol %d length %d outside (0,%d]", i, l, MaxCodeLen)
		}
	}
}

func TestRoundTripSequence(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const alphabet = 512
	syms := make([]int, 20000)
	for i := range syms {
		// Geometric-ish distribution centered at 256, like quantization codes.
		v := 256 + int(rng.NormFloat64()*12)
		if v < 0 {
			v = 0
		}
		if v >= alphabet {
			v = alphabet - 1
		}
		syms[i] = v
	}
	enc, err := EncodeAll(syms, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(syms)*2 {
		t.Fatalf("no compression: %d bytes for %d symbols", len(enc), len(syms))
	}
	dec, err := DecodeAll(enc, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(syms) {
		t.Fatalf("len mismatch %d != %d", len(dec), len(syms))
	}
	for i := range syms {
		if dec[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, dec[i], syms[i])
		}
	}
}

func TestEncodeAllEmpty(t *testing.T) {
	enc, err := EncodeAll(nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeAll(enc, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("want empty, got %d symbols", len(dec))
	}
}

func TestEncodeAllOutOfRange(t *testing.T) {
	if _, err := EncodeAll([]int{5}, 4); err == nil {
		t.Fatal("want error for out-of-alphabet symbol")
	}
	if _, err := EncodeAll([]int{-1}, 4); err == nil {
		t.Fatal("want error for negative symbol")
	}
}

func TestCodecSerializationViaLengths(t *testing.T) {
	freqs := []uint64{9, 0, 4, 1, 1, 7, 0, 2}
	c1, err := NewCodec(freqs)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCodecFromLengths(c1.Lengths())
	if err != nil {
		t.Fatal(err)
	}
	w := bitio.NewWriter(0)
	seq := []int{0, 5, 2, 0, 7, 3, 4, 5, 0}
	for _, s := range seq {
		c1.Encode(w, s)
	}
	r := bitio.NewReader(w.Bytes())
	for i, want := range seq {
		got, err := c2.Decode(r)
		if err != nil || got != want {
			t.Fatalf("pos %d: got %d want %d err %v", i, got, want, err)
		}
	}
}

func TestBadLengthTables(t *testing.T) {
	// Over-subscribed code (violates Kraft inequality).
	if _, err := NewCodecFromLengths([]uint8{1, 1, 1}); err == nil {
		t.Fatal("want error for oversubscribed lengths")
	}
	// Over-long code.
	if _, err := NewCodecFromLengths([]uint8{MaxCodeLen + 1}); err == nil {
		t.Fatal("want error for over-long code")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, err := DecodeAll([]byte{0x00, 0x01}, 16); err == nil {
		t.Fatal("want error for truncated stream")
	}
}

// Property: random symbol sequences over random alphabet sizes round-trip.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, alphaSel uint8, nSel uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		alphabet := int(alphaSel%250) + 2
		n := int(nSel % 2000)
		syms := make([]int, n)
		for i := range syms {
			syms[i] = rng.IntN(alphabet)
		}
		enc, err := EncodeAll(syms, alphabet)
		if err != nil {
			return false
		}
		dec, err := DecodeAll(enc, alphabet)
		if err != nil || len(dec) != n {
			return false
		}
		for i := range syms {
			if dec[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeAll(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	syms := make([]int, 1<<16)
	for i := range syms {
		v := 256 + int(rng.NormFloat64()*8)
		if v < 0 {
			v = 0
		}
		if v > 511 {
			v = 511
		}
		syms[i] = v
	}
	b.SetBytes(int64(len(syms)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeAll(syms, 512); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeAll(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	syms := make([]int, 1<<16)
	for i := range syms {
		v := 256 + int(rng.NormFloat64()*8)
		if v < 0 {
			v = 0
		}
		if v > 511 {
			v = 511
		}
		syms[i] = v
	}
	enc, _ := EncodeAll(syms, 512)
	b.SetBytes(int64(len(syms)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAll(enc, 512); err != nil {
			b.Fatal(err)
		}
	}
}
