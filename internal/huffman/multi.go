// Multi-stream bulk entropy coding: the zstd-style N-stream Huffman split.
//
// Single-stream Huffman decode is latency-bound, not bandwidth-bound: each
// decoded symbol's length feeds the next Refill/Peek/Consume, so the CPU
// sits on one serial dependency chain. EncodeMultiU16 splits the symbol
// sequence into N contiguous chunks, encodes each as an independent
// byte-aligned bitstream under one shared code table, and DecodeMultiU16
// walks the streams round-robin in one wide loop — N dependency chains in
// flight, which is where the throughput comes from (zstd's 4-stream Huffman
// does exactly this).
//
// Blob layout (all integers little-endian / uvarint as noted):
//
//	[0] multiMagic (0xF5)
//	uvarint  symbol count n
//	uvarint  stream count N   (1..maxStreams)
//	uvarint  length-table byte size L
//	[L]      code-length table (writeLengthTable serialization, byte-padded)
//	[4*N]    per-stream byte sizes, uint32 LE (the jump table)
//	[...]    N concatenated byte-aligned sub-streams
//
// The marker byte cannot collide with the single-stream format: that format
// opens with a 24-bit alphabet count whose first (most significant) byte is
// 0x00 or 0x01 for every alphabet ≤ 65536, never 0xF5. DecodeMultiU16 uses
// this to transparently fall back to DecodeAllU16 on v1 blobs, so callers
// migrated to the multi-stream entry points keep decoding old streams.
package huffman

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitio"
	"repro/internal/sched"
)

const (
	// multiMagic opens every multi-stream blob. See the collision argument
	// in the package comment above.
	multiMagic = 0xF5

	// DefaultStreams is the stream count the quantization stages use — four
	// independent dependency chains, matching zstd's 4-stream Huffman.
	DefaultStreams = 4

	// maxStreams bounds the stream count a blob may declare; the decoder
	// keeps per-stream state in fixed stack arrays of this size.
	maxStreams = 16

	// multiMinSymbols is the break-even point below which EncodeMultiU16
	// emits the single-stream format instead: per-stream framing costs
	// 4 bytes plus up to 7 padding bits each, which tiny blobs can't repay.
	multiMinSymbols = 512
)

// EncodeMultiU16 encodes symbols into the multi-stream blob format using
// streams independent bitstreams (DefaultStreams for the standard pipeline).
// Inputs shorter than multiMinSymbols, or streams == 1, fall back to the
// single-stream EncodeAllU16 format; DecodeMultiU16 handles both. The
// returned buffer comes from the shared sched byte pool.
func EncodeMultiU16(symbols []uint16, alphabet, streams int) ([]byte, error) {
	if streams < 1 || streams > maxStreams {
		return nil, fmt.Errorf("huffman: stream count %d outside [1,%d]", streams, maxStreams)
	}
	if alphabet > 1<<16 {
		return nil, fmt.Errorf("huffman: alphabet %d exceeds uint16 symbols", alphabet)
	}
	if streams == 1 || len(symbols) < multiMinSymbols {
		return encodeSeq(symbols, alphabet)
	}

	freqs := sched.GetUint64s(alphabet)[:alphabet]
	clear(freqs)
	for _, v := range symbols {
		s := int(v)
		if s >= alphabet {
			sched.PutUint64s(freqs)
			return nil, fmt.Errorf("huffman: symbol %d out of alphabet [0,%d)", s, alphabet)
		}
		freqs[s]++
	}
	c := codecPool.Get().(*Codec)
	err := c.initFromFreqs(freqs)
	sched.PutUint64s(freqs)
	if err != nil {
		putCodec(c)
		return nil, err
	}

	n := len(symbols)
	out := sched.GetBytes(n/2 + 128)[:0]
	out = append(out, multiMagic)
	out = binary.AppendUvarint(out, uint64(n))
	out = binary.AppendUvarint(out, uint64(streams))

	// The length table is serialized into its own byte-padded segment so the
	// jump table and sub-streams after it stay byte-addressable.
	tw := bitio.NewWriterBuffer(sched.GetBytes(len(c.lengths)/4 + 16))
	writeLengthTable(tw, c.lengths)
	tbl := tw.Bytes()
	out = binary.AppendUvarint(out, uint64(len(tbl)))
	out = append(out, tbl...)
	sched.PutBytes(tbl)

	// Reserve the fixed-width jump table and backfill each stream's byte
	// size once it is encoded — no second pass, no intermediate buffers.
	sizePos := len(out)
	var zeros [4 * maxStreams]byte
	out = append(out, zeros[:4*streams]...)

	// First n%streams chunks carry one extra symbol; the decoder derives the
	// same split from n and streams alone.
	base, ext := n/streams, n%streams
	enc := c.enc
	off := 0
	for i := 0; i < streams; i++ {
		cnt := base
		if i < ext {
			cnt++
		}
		start := len(out)
		w := bitio.NewWriterAppend(out)
		// Two codes per accumulator push: the writer is MSB-first, so the
		// pair packs as c1<<n2|c2 in n1+n2 bits — at most 2×MaxCodeLen = 48,
		// always within one WriteBits. Halving the push count halves the
		// per-call flush checks on the hottest loop in the encoder; the
		// emitted bitstream is identical to the one-push-per-symbol form.
		sub := symbols[off : off+cnt]
		j := 0
		for ; j+1 < len(sub); j += 2 {
			e1, e2 := enc[sub[j]], enc[sub[j+1]]
			n2 := uint(e2 & entryLenMask)
			w.WriteBits(uint64(e1>>5)<<n2|uint64(e2>>5), uint(e1&entryLenMask)+n2)
		}
		if j < len(sub) {
			e := enc[sub[j]]
			w.WriteBits(uint64(e>>5), uint(e&entryLenMask))
		}
		out = w.Bytes()
		binary.LittleEndian.PutUint32(out[sizePos+4*i:], uint32(len(out)-start))
		off += cnt
	}
	putCodec(c)
	return out, nil
}

// DecodeMultiU16 reverses EncodeMultiU16 into a buffer drawn from the sched
// uint16 pool (recycle via sched.PutUint16s). Blobs without the multi-stream
// marker are delegated to DecodeAllU16, so this is a strict superset of the
// single-stream decoder.
func DecodeMultiU16(data []byte, alphabet int) ([]uint16, error) {
	if len(data) == 0 || data[0] != multiMagic {
		return DecodeAllU16(data, alphabet)
	}
	if alphabet > 1<<16 {
		return nil, fmt.Errorf("huffman: alphabet %d exceeds uint16 symbols", alphabet)
	}
	pos := 1
	n64, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, ErrCorrupt
	}
	pos += k
	ns64, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, ErrCorrupt
	}
	pos += k
	tl64, k := binary.Uvarint(data[pos:])
	if k <= 0 {
		return nil, ErrCorrupt
	}
	pos += k
	n, streams, tblLen := int(n64), int(ns64), int(tl64)
	if n < 0 || streams < 1 || streams > maxStreams || tblLen < 0 || tblLen > len(data)-pos {
		return nil, ErrCorrupt
	}
	// Every symbol costs at least one bit; reject inflated counts before
	// allocating the output.
	if n64 > 8*uint64(len(data)-pos-tblLen) {
		return nil, ErrCorrupt
	}

	c := codecPool.Get().(*Codec)
	tr := bitio.NewReader(data[pos : pos+tblLen])
	lengths, err := readLengthTable(tr, alphabet, c.lengths)
	if err != nil {
		putCodec(c)
		return nil, err
	}
	if err := c.init(lengths); err != nil {
		putCodec(c)
		return nil, err
	}
	pos += tblLen

	if 4*streams > len(data)-pos {
		putCodec(c)
		return nil, ErrCorrupt
	}
	var offs [maxStreams + 1]int
	offs[0] = pos + 4*streams
	for i := 0; i < streams; i++ {
		sz := int(binary.LittleEndian.Uint32(data[pos+4*i:]))
		next := offs[i] + sz
		if next > len(data) {
			putCodec(c)
			return nil, ErrCorrupt
		}
		offs[i+1] = next
	}
	// The jump table must account for the blob exactly: trailing slack would
	// let corrupted sizes alias each other undetected.
	if offs[streams] != len(data) {
		putCodec(c)
		return nil, ErrCorrupt
	}

	out := sched.GetUint16s(n)[:n]
	err = c.decodeStreams(data, offs[:streams+1], out, streams)
	putCodec(c)
	if err != nil {
		sched.PutUint16s(out)
		return nil, err
	}
	return out, nil
}

// decodeStreams splits out into the per-stream chunks mirroring the encoder
// and decodes every sub-stream, taking the interleaved 4-wide path when the
// blob used the default stream count.
func (c *Codec) decodeStreams(data []byte, offs []int, out []uint16, streams int) error {
	n := len(out)
	base, ext := n/streams, n%streams
	var srcs [maxStreams][]byte
	var chunks [maxStreams][]uint16
	off := 0
	for i := 0; i < streams; i++ {
		cnt := base
		if i < ext {
			cnt++
		}
		srcs[i] = data[offs[i]:offs[i+1]]
		chunks[i] = out[off : off+cnt]
		// A sub-stream shorter than one bit per symbol cannot be valid.
		if cnt > 8*len(srcs[i]) {
			return ErrCorrupt
		}
		off += cnt
	}
	if streams == DefaultStreams {
		return c.decode4((*[4][]byte)(srcs[:4]), (*[4][]uint16)(chunks[:4]))
	}
	var r bitio.Reader
	for i := 0; i < streams; i++ {
		r.Reset(srcs[i])
		if err := decodeSeq(&r, c, chunks[i]); err != nil {
			return err
		}
		if r.BitsRemaining() >= 8 {
			return ErrCorrupt
		}
	}
	return nil
}

// decode4 is the wide decode loop: four stack-value Readers advanced
// round-robin, decoding until any stream's buffered bits dip below one
// max-length code before refilling again. One refill buffers ≥ 56 bits
// and real quantization codes average ~5, so each refill round covers
// several symbols per stream — the refill itself, not the table probe, is
// what the two-symbols-per-refill layout spends its time on. The
// interleave keeps four independent chains in the pipeline — the
// single-stream decoder's refill→peek→consume latency chain is the
// bulk-decode bottleneck.
//
// Any fast-path miss (stream tail, zero entry, mid-code truncation) drops
// to the careful per-stream tail, which finishes through DecodeFast/Decode
// for exactly the reference decoder's error semantics.
func (c *Codec) decode4(srcs *[4][]byte, outs *[4][]uint16) error {
	var r0, r1, r2, r3 bitio.Reader
	r0.Reset(srcs[0])
	r1.Reset(srcs[1])
	r2.Reset(srcs[2])
	r3.Reset(srcs[3])
	o0, o1, o2, o3 := outs[0], outs[1], outs[2], outs[3]
	var p0, p1, p2, p3 int
	if len(c.table) > 0 {
		tab, tb := c.table, c.tableBits
		// Every entry's length (and every Peek width tb+sub) is at most
		// maxLen, so a stream holding maxLen buffered bits can always decode
		// one more symbol without rechecking mid-probe.
		ml := uint(c.maxLen)
	fast:
		for {
			// rem bounds the round by the fullest any chunk can get; chunk
			// lengths differ by at most one, so at most one symbol per
			// stream is left to the careful tail on output exhaustion.
			rem := len(o0) - p0
			if r := len(o1) - p1; r < rem {
				rem = r
			}
			if r := len(o2) - p2; r < rem {
				rem = r
			}
			if r := len(o3) - p3; r < rem {
				rem = r
			}
			if rem == 0 {
				break
			}
			r0.Refill()
			r1.Refill()
			r2.Refill()
			r3.Refill()
			if r0.Buffered() < ml || r1.Buffered() < ml || r2.Buffered() < ml || r3.Buffered() < ml {
				break
			}
			for rem > 0 &&
				r0.Buffered() >= ml && r1.Buffered() >= ml && r2.Buffered() >= ml && r3.Buffered() >= ml {
				rem--
				e0 := tab[r0.Peek(tb)]
				if e0&entryLink != 0 {
					sub := uint(e0 & entryLenMask)
					e0 = tab[e0>>entryShift+uint32(r0.Peek(tb+sub)&(1<<sub-1))]
				}
				n0 := uint(e0 & entryLenMask)
				if n0 == 0 {
					break fast
				}
				r0.ConsumeFast(n0)
				o0[p0] = uint16(e0 >> entryShift)
				p0++

				e1 := tab[r1.Peek(tb)]
				if e1&entryLink != 0 {
					sub := uint(e1 & entryLenMask)
					e1 = tab[e1>>entryShift+uint32(r1.Peek(tb+sub)&(1<<sub-1))]
				}
				n1 := uint(e1 & entryLenMask)
				if n1 == 0 {
					break fast
				}
				r1.ConsumeFast(n1)
				o1[p1] = uint16(e1 >> entryShift)
				p1++

				e2 := tab[r2.Peek(tb)]
				if e2&entryLink != 0 {
					sub := uint(e2 & entryLenMask)
					e2 = tab[e2>>entryShift+uint32(r2.Peek(tb+sub)&(1<<sub-1))]
				}
				n2 := uint(e2 & entryLenMask)
				if n2 == 0 {
					break fast
				}
				r2.ConsumeFast(n2)
				o2[p2] = uint16(e2 >> entryShift)
				p2++

				e3 := tab[r3.Peek(tb)]
				if e3&entryLink != 0 {
					sub := uint(e3 & entryLenMask)
					e3 = tab[e3>>entryShift+uint32(r3.Peek(tb+sub)&(1<<sub-1))]
				}
				n3 := uint(e3 & entryLenMask)
				if n3 == 0 {
					break fast
				}
				r3.ConsumeFast(n3)
				o3[p3] = uint16(e3 >> entryShift)
				p3++
			}
		}
	}
	rs := [4]*bitio.Reader{&r0, &r1, &r2, &r3}
	ps := [4]int{p0, p1, p2, p3}
	for k := 0; k < 4; k++ {
		out, r := outs[k], rs[k]
		for i := ps[k]; i < len(out); i++ {
			s, err := c.DecodeFast(r)
			if err != nil {
				return err
			}
			out[i] = uint16(s)
		}
		// Leftover beyond the final byte's padding means the declared stream
		// boundary does not match the encoded symbols.
		if r.BitsRemaining() >= 8 {
			return ErrCorrupt
		}
	}
	return nil
}
