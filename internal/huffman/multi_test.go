package huffman

// Tests for the multi-stream (v2) bulk format: round trips across stream
// counts and sizes, v1 fallback interop, and must-error guarantees on
// corrupted sub-stream boundaries.

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"testing"

	"repro/internal/bitio"
	"repro/internal/sched"
)

// quantLikeSymbols draws a skewed, escape-bearing distribution shaped like
// real quantization codes.
func quantLikeSymbols(rng *rand.Rand, n int) []uint16 {
	syms := make([]uint16, n)
	for i := range syms {
		if rng.IntN(200) == 0 {
			syms[i] = quantEscape
			continue
		}
		syms[i] = uint16(quantRadius + int(rng.NormFloat64()*6))
	}
	return syms
}

// multiSizePos parses a multi-stream blob up to its jump table, returning
// the byte offset of the per-stream size words and the stream count.
func multiSizePos(t *testing.T, blob []byte) (pos, streams int) {
	t.Helper()
	if len(blob) == 0 || blob[0] != multiMagic {
		t.Fatal("not a multi-stream blob")
	}
	pos = 1
	for field := 0; field < 3; field++ {
		v, k := binary.Uvarint(blob[pos:])
		if k <= 0 {
			t.Fatal("bad multi header uvarint")
		}
		pos += k
		switch field {
		case 1:
			streams = int(v)
		case 2:
			pos += int(v) // skip the length table
		}
	}
	return pos, streams
}

func TestMultiRoundTripStreamCounts(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 5))
	for _, n := range []int{0, 1, 7, multiMinSymbols - 1, multiMinSymbols, multiMinSymbols + 1, 4096, 100_000} {
		syms := quantLikeSymbols(rng, n)
		for _, streams := range []int{1, 2, 3, 4, 5, 8, maxStreams} {
			enc, err := EncodeMultiU16(syms, quantAlphabet, streams)
			if err != nil {
				t.Fatalf("n=%d streams=%d: encode: %v", n, streams, err)
			}
			dec, err := DecodeMultiU16(enc, quantAlphabet)
			if err != nil {
				t.Fatalf("n=%d streams=%d: decode: %v", n, streams, err)
			}
			if len(dec) != n {
				t.Fatalf("n=%d streams=%d: decoded %d symbols", n, streams, len(dec))
			}
			for i := range syms {
				if dec[i] != syms[i] {
					t.Fatalf("n=%d streams=%d: symbol %d = %d, want %d", n, streams, i, dec[i], syms[i])
				}
			}
			sched.PutUint16s(dec)
			sched.PutBytes(enc)
		}
	}
}

// TestMultiFormatSelection locks the framing decisions: small inputs and
// streams==1 stay on the v1 single-stream layout (decodable by
// DecodeAllU16), larger ones get the marker byte.
func TestMultiFormatSelection(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 2))
	small := quantLikeSymbols(rng, multiMinSymbols-1)
	enc, err := EncodeMultiU16(small, quantAlphabet, DefaultStreams)
	if err != nil {
		t.Fatal(err)
	}
	if enc[0] == multiMagic {
		t.Fatal("sub-threshold input should use the single-stream layout")
	}
	dec, err := DecodeAllU16(enc, quantAlphabet)
	if err != nil {
		t.Fatalf("fallback blob must decode as v1: %v", err)
	}
	sched.PutUint16s(dec)
	sched.PutBytes(enc)

	big := quantLikeSymbols(rng, 4*multiMinSymbols)
	enc1, err := EncodeMultiU16(big, quantAlphabet, 1)
	if err != nil {
		t.Fatal(err)
	}
	if enc1[0] == multiMagic {
		t.Fatal("streams=1 should use the single-stream layout")
	}
	// A v1 blob over any alphabet ≤ 65536 starts with the high byte of a
	// 24-bit count ≤ 0x01 — the marker cannot be ambiguous.
	if enc1[0] > 0x01 {
		t.Fatalf("single-stream first byte 0x%02x breaks the marker disambiguation", enc1[0])
	}
	sched.PutBytes(enc1)

	encN, err := EncodeMultiU16(big, quantAlphabet, DefaultStreams)
	if err != nil {
		t.Fatal(err)
	}
	if encN[0] != multiMagic {
		t.Fatal("multi-stream blob missing marker byte")
	}
	sched.PutBytes(encN)
}

func TestMultiDecodeMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 44))
	syms := quantLikeSymbols(rng, 20_000)
	single, err := EncodeAllU16(syms, quantAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	// DecodeMultiU16 must transparently decode v1 blobs...
	dec, err := DecodeMultiU16(single, quantAlphabet)
	if err != nil {
		t.Fatalf("DecodeMultiU16 on v1 blob: %v", err)
	}
	for i := range syms {
		if dec[i] != syms[i] {
			t.Fatalf("v1 fallback symbol %d = %d, want %d", i, dec[i], syms[i])
		}
	}
	sched.PutUint16s(dec)
	sched.PutBytes(single)
}

func TestEncodeMultiArgErrors(t *testing.T) {
	syms := make([]uint16, 1024)
	if _, err := EncodeMultiU16(syms, quantAlphabet, 0); err == nil {
		t.Fatal("streams=0 must error")
	}
	if _, err := EncodeMultiU16(syms, quantAlphabet, maxStreams+1); err == nil {
		t.Fatal("streams over the cap must error")
	}
	if _, err := EncodeMultiU16(syms, 1<<16+1, DefaultStreams); err == nil {
		t.Fatal("alphabet over uint16 must error")
	}
	syms[512] = 99
	if _, err := EncodeMultiU16(syms, 64, DefaultStreams); err == nil {
		t.Fatal("symbol outside alphabet must error")
	}
}

// corruptMultiBlobs builds a family of structurally corrupted multi-stream
// blobs, every one of which must fail decoding (never panic, never succeed).
func corruptMultiBlobs(t *testing.T, blob []byte) map[string][]byte {
	t.Helper()
	sizePos, streams := multiSizePos(t, blob)
	clone := func() []byte { return append([]byte(nil), blob...) }
	muts := map[string][]byte{
		"truncated mid-substream":   blob[:len(blob)-3],
		"truncated at jump table":   blob[:sizePos+2],
		"truncated after header":    blob[:1],
		"size inflated":             clone(),
		"size deflated":             clone(),
		"boundary shifted (sum ok)": clone(),
		"stream count zero":         clone(),
		"stream count over cap":     clone(),
		"symbol count inflated":     clone(),
	}
	s0 := binary.LittleEndian.Uint32(muts["size inflated"][sizePos:])
	binary.LittleEndian.PutUint32(muts["size inflated"][sizePos:], s0+1)
	binary.LittleEndian.PutUint32(muts["size deflated"][sizePos:], s0-1)
	// Shift one boundary while keeping the total intact: stream 0 swallows
	// stream 1's first byte. The per-stream slack check must catch it.
	b := muts["boundary shifted (sum ok)"]
	s1 := binary.LittleEndian.Uint32(b[sizePos+4:])
	binary.LittleEndian.PutUint32(b[sizePos:], s0+1)
	binary.LittleEndian.PutUint32(b[sizePos+4:], s1-1)
	// The stream-count uvarint sits right after the symbol-count uvarint.
	nLen := 0
	for _, v := range blob[1:] {
		nLen++
		if v < 0x80 {
			break
		}
	}
	muts["stream count zero"][1+nLen] = 0
	if streams >= 0x80 {
		t.Fatal("test assumes single-byte stream count")
	}
	muts["stream count over cap"][1+nLen] = maxStreams + 1
	muts["symbol count inflated"][1] = 0x7F // bigger count, same payload
	return muts
}

func TestDecodeMultiCorruptBoundaries(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	syms := quantLikeSymbols(rng, 8192)
	blob, err := EncodeMultiU16(syms, quantAlphabet, DefaultStreams)
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range corruptMultiBlobs(t, blob) {
		out, err := DecodeMultiU16(mut, quantAlphabet)
		if err == nil {
			sched.PutUint16s(out)
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
	sched.PutBytes(blob)
}

func BenchmarkMultiDecode(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	const nSyms = 1 << 16
	syms := quantLikeSymbols(rng, nSyms)
	enc, err := EncodeMultiU16(syms, quantAlphabet, DefaultStreams)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(nSyms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := DecodeMultiU16(enc, quantAlphabet)
		if err != nil {
			b.Fatal(err)
		}
		sched.PutUint16s(out)
	}
}

// TestMultiEncodePairPacking re-encodes every sub-stream of a multi blob
// one symbol per WriteBits push and asserts byte identity with the paired
// hot loop in EncodeMultiU16 — the pairing is a call-count optimization
// only and must never change the emitted bitstream.
func TestMultiEncodePairPacking(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, n := range []int{multiMinSymbols, multiMinSymbols + 1, 4097, 1 << 15} {
		for _, streams := range []int{2, 4, 7} {
			syms := quantLikeSymbols(rng, n)
			blob, err := EncodeMultiU16(syms, quantAlphabet, streams)
			if err != nil {
				t.Fatal(err)
			}

			// Rebuild the codec the encoder derived from these symbols.
			freqs := make([]uint64, quantAlphabet)
			for _, v := range syms {
				freqs[v]++
			}
			c := new(Codec)
			if err := c.initFromFreqs(freqs); err != nil {
				t.Fatal(err)
			}

			// Walk the frame to the jump table, then check each sub-stream
			// against a strictly sequential per-symbol reference encode.
			pos := 1
			_, k := binary.Uvarint(blob[pos:])
			pos += k
			gotStreams, k := binary.Uvarint(blob[pos:])
			pos += k
			if int(gotStreams) != streams {
				t.Fatalf("blob carries %d streams, want %d", gotStreams, streams)
			}
			tblLen, k := binary.Uvarint(blob[pos:])
			pos += k + int(tblLen)
			sizes := make([]int, streams)
			for i := range sizes {
				sizes[i] = int(binary.LittleEndian.Uint32(blob[pos+4*i:]))
			}
			pos += 4 * streams

			base, ext := n/streams, n%streams
			off := 0
			for i := 0; i < streams; i++ {
				cnt := base
				if i < ext {
					cnt++
				}
				w := bitio.NewWriter(cnt)
				for _, v := range syms[off : off+cnt] {
					e := c.enc[v]
					w.WriteBits(uint64(e>>5), uint(e&entryLenMask))
				}
				ref := w.Bytes()
				got := blob[pos : pos+sizes[i]]
				if !bytes.Equal(got, ref) {
					t.Fatalf("n=%d streams=%d: sub-stream %d differs from per-symbol reference", n, streams, i)
				}
				pos += sizes[i]
				off += cnt
			}
			sched.PutBytes(blob)
		}
	}
}
