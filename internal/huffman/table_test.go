package huffman

// Differential tests pitting the table-driven decoder against the retained
// bit-by-bit reference decoder: on any input — well-formed, truncated, or
// bit-flipped — the two must produce identical symbols, identical errors,
// and identical stream positions.

import (
	"encoding/binary"
	"math/rand/v2"
	"testing"

	"repro/internal/bitio"
	"repro/internal/sched"
)

// Mirrors of ebcl's quantizer constants (huffman cannot import ebcl in
// tests without a cycle): alphabet 2·2048 with escape code 0.
const (
	quantRadius   = 2048
	quantAlphabet = 2 * quantRadius
	quantEscape   = 0
)

// decodeAllRef mirrors DecodeAll using only the reference decoder.
func decodeAllRef(data []byte, alphabet int) ([]int, error) {
	r := bitio.NewReader(data)
	c, n, err := decodeHeader(r, alphabet)
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		s, err := c.Decode(r)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// diffDecode decodes data with both decoders and fails the test on any
// divergence. It returns whichever succeeded (nil on agreed error).
func diffDecode(t *testing.T, data []byte, alphabet int) []int {
	t.Helper()
	fast, fastErr := DecodeAll(data, alphabet)
	ref, refErr := decodeAllRef(data, alphabet)
	if (fastErr == nil) != (refErr == nil) {
		t.Fatalf("decoder divergence: table err=%v, reference err=%v", fastErr, refErr)
	}
	if fastErr != nil {
		if fastErr.Error() != refErr.Error() {
			t.Fatalf("error divergence: table %v, reference %v", fastErr, refErr)
		}
		return nil
	}
	if len(fast) != len(ref) {
		t.Fatalf("length divergence: table %d, reference %d", len(fast), len(ref))
	}
	for i := range fast {
		if fast[i] != ref[i] {
			t.Fatalf("symbol %d divergence: table %d, reference %d", i, fast[i], ref[i])
		}
	}
	return fast
}

// randomFreqs draws a frequency table whose shape varies from flat to
// Fibonacci-deep, so the resulting codes cover short-only, mixed, and
// secondary-table (length > primaryBits) regimes.
func randomFreqs(rng *rand.Rand, alphabet int) []uint64 {
	freqs := make([]uint64, alphabet)
	switch rng.IntN(4) {
	case 0: // flat-ish
		for i := range freqs {
			freqs[i] = uint64(rng.IntN(8))
		}
	case 1: // heavily skewed: one hot symbol, long tail
		freqs[rng.IntN(alphabet)] = 1 << 20
		for i := range freqs {
			if rng.IntN(3) == 0 {
				freqs[i] += uint64(rng.IntN(3))
			}
		}
	case 2: // exponential decay forces deep codes
		f := uint64(1)
		for i := range freqs {
			freqs[i] = f
			if i%2 == 1 && f < 1<<40 {
				f *= 2
			}
		}
	default: // sparse
		for range make([]struct{}, rng.IntN(alphabet)+1) {
			freqs[rng.IntN(alphabet)] = uint64(rng.IntN(100) + 1)
		}
	}
	// Ensure at least one symbol is coded.
	freqs[rng.IntN(alphabet)] += 1
	return freqs
}

func TestTableVsReferenceRandomTables(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 13))
	for trial := 0; trial < 200; trial++ {
		alphabet := rng.IntN(4096) + 2
		c, err := NewCodec(randomFreqs(rng, alphabet))
		if err != nil {
			t.Fatal(err)
		}
		// Encode a random stream of coded symbols.
		var coded []int
		for s := 0; s < alphabet; s++ {
			if c.CodeLen(s) > 0 {
				coded = append(coded, s)
			}
		}
		n := rng.IntN(512)
		syms := make([]int, n)
		w := bitio.NewWriter(0)
		for i := range syms {
			syms[i] = coded[rng.IntN(len(coded))]
			c.Encode(w, syms[i])
		}
		data := w.Bytes()

		// Symbol-by-symbol: both decoders must agree on value and position.
		fr, rr := bitio.NewReader(data), bitio.NewReader(data)
		for i := range syms {
			fs, fe := c.DecodeFast(fr)
			rs, re := c.Decode(rr)
			if fe != nil || re != nil {
				t.Fatalf("trial %d sym %d: unexpected errors %v / %v", trial, i, fe, re)
			}
			if fs != rs || fs != syms[i] {
				t.Fatalf("trial %d sym %d: table %d reference %d want %d", trial, i, fs, rs, syms[i])
			}
			if fr.BitsRemaining() != rr.BitsRemaining() {
				t.Fatalf("trial %d sym %d: position divergence %d vs %d bits",
					trial, i, fr.BitsRemaining(), rr.BitsRemaining())
			}
		}
	}
}

func TestTableVsReferenceAdversarial(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 29))
	for trial := 0; trial < 100; trial++ {
		alphabet := rng.IntN(1000) + 2
		n := rng.IntN(300) + 1
		syms := make([]int, n)
		for i := range syms {
			// Skewed so codes of many lengths appear.
			syms[i] = int(float64(alphabet) * rng.Float64() * rng.Float64())
		}
		enc, err := EncodeAll(syms, alphabet)
		if err != nil {
			t.Fatal(err)
		}
		diffDecode(t, enc, alphabet)

		// Truncations must agree (typically: both error).
		for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
			if cut < len(enc) {
				diffDecode(t, enc[:cut], alphabet)
			}
		}
		// Bit flips must agree — anywhere in header, table, or payload.
		for flips := 0; flips < 8; flips++ {
			mut := append([]byte(nil), enc...)
			pos := rng.IntN(len(mut))
			mut[pos] ^= 1 << rng.IntN(8)
			diffDecode(t, mut, alphabet)
		}
	}
}

func TestDecodeAllU16MatchesDecodeAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	syms := make([]uint16, 5000)
	for i := range syms {
		syms[i] = uint16(rng.IntN(quantAlphabet))
	}
	enc, err := EncodeAllU16(syms, quantAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := DecodeAll(enc, quantAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := DecodeAllU16(enc, quantAlphabet)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.PutUint16s(narrow)
	if len(wide) != len(narrow) || len(narrow) != len(syms) {
		t.Fatalf("lengths %d / %d / %d", len(wide), len(narrow), len(syms))
	}
	for i := range syms {
		if uint16(wide[i]) != narrow[i] || narrow[i] != syms[i] {
			t.Fatalf("symbol %d: int %d u16 %d want %d", i, wide[i], narrow[i], syms[i])
		}
	}
	if _, err := DecodeAllU16(enc, 1<<16+1); err == nil {
		t.Fatal("want error for alphabet exceeding uint16")
	}
}

func FuzzHuffmanRoundTrip(f *testing.F) {
	// Seed corpus: valid streams over several alphabets plus raw junk.
	seed1, _ := EncodeAll([]int{1, 2, 3, 3, 3, 0, 7}, 8)
	rng := rand.New(rand.NewPCG(1, 9))
	quant := make([]uint16, 600)
	for i := range quant {
		quant[i] = uint16(quantRadius + int(rng.NormFloat64()*4))
	}
	seed2, _ := EncodeAllU16(quant, quantAlphabet)
	f.Add(seed1, uint16(8))
	f.Add(seed2, uint16(quantAlphabet))
	f.Add([]byte{0x00, 0x01, 0xFF}, uint16(300))
	f.Add(seed2[:len(seed2)/2], uint16(quantAlphabet))
	// Multi-stream seeds: a valid 4-stream blob plus boundary corruptions —
	// truncated sub-streams and shifted/inflated jump-table sizes — which the
	// decoder must reject without panicking.
	quantLong := make([]uint16, 4*multiMinSymbols)
	for i := range quantLong {
		quantLong[i] = uint16(quantRadius + int(rng.NormFloat64()*5))
	}
	seed3, _ := EncodeMultiU16(quantLong, quantAlphabet, DefaultStreams)
	f.Add(seed3, uint16(quantAlphabet))
	f.Add(seed3[:len(seed3)-5], uint16(quantAlphabet))
	f.Add(seed3[:len(seed3)/3], uint16(quantAlphabet))
	{
		sizePos := 1
		for field := 0; field < 3; field++ {
			v, k := binary.Uvarint(seed3[sizePos:])
			sizePos += k
			if field == 2 {
				sizePos += int(v)
			}
		}
		shift := append([]byte(nil), seed3...)
		s0 := binary.LittleEndian.Uint32(shift[sizePos:])
		s1 := binary.LittleEndian.Uint32(shift[sizePos+4:])
		binary.LittleEndian.PutUint32(shift[sizePos:], s0+1)
		binary.LittleEndian.PutUint32(shift[sizePos+4:], s1-1)
		f.Add(shift, uint16(quantAlphabet))
		inflate := append([]byte(nil), seed3...)
		binary.LittleEndian.PutUint32(inflate[sizePos:], s0+7)
		f.Add(inflate, uint16(quantAlphabet))
	}

	f.Fuzz(func(t *testing.T, data []byte, alphaSel uint16) {
		alphabet := int(alphaSel)%4096 + 1
		streams := int(alphaSel>>12)%DefaultStreams + 1

		// Round trip: bytes reduced into the alphabet must survive
		// encode → decode exactly.
		syms := make([]uint16, len(data))
		for i, b := range data {
			syms[i] = uint16(int(b) % alphabet)
		}
		enc, err := EncodeAllU16(syms, alphabet)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec, err := DecodeAllU16(enc, alphabet)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if len(dec) != len(syms) {
			t.Fatalf("round trip length %d want %d", len(dec), len(syms))
		}
		for i := range syms {
			if dec[i] != syms[i] {
				t.Fatalf("round trip symbol %d: got %d want %d", i, dec[i], syms[i])
			}
		}
		sched.PutUint16s(dec)
		sched.PutBytes(enc)

		// Multi-stream round trip at a fuzz-chosen stream count; the decoder
		// must reproduce the input whether the encoder picked the multi or
		// fallback layout.
		menc, err := EncodeMultiU16(syms, alphabet, streams)
		if err != nil {
			t.Fatalf("multi encode (streams=%d): %v", streams, err)
		}
		mdec, err := DecodeMultiU16(menc, alphabet)
		if err != nil {
			t.Fatalf("multi decode of own encoding (streams=%d): %v", streams, err)
		}
		if len(mdec) != len(syms) {
			t.Fatalf("multi round trip length %d want %d", len(mdec), len(syms))
		}
		for i := range syms {
			if mdec[i] != syms[i] {
				t.Fatalf("multi round trip symbol %d: got %d want %d", i, mdec[i], syms[i])
			}
		}
		sched.PutUint16s(mdec)
		sched.PutBytes(menc)

		// Arbitrary bytes through the multi decoder must decode or error,
		// never panic — this is what the corrupted-boundary seeds exercise.
		if out, err := DecodeMultiU16(data, alphabet); err == nil {
			sched.PutUint16s(out)
		}

		// Differential: the raw input treated as a stream must decode (or
		// fail) identically under the table and reference decoders.
		fast, fastErr := DecodeAll(data, alphabet)
		ref, refErr := decodeAllRef(data, alphabet)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("decoder divergence: table err=%v, reference err=%v", fastErr, refErr)
		}
		for i := range fast {
			if fast[i] != ref[i] {
				t.Fatalf("symbol %d divergence: table %d reference %d", i, fast[i], ref[i])
			}
		}
	})
}
