package lossless

import (
	"encoding/binary"

	"repro/internal/sched"
)

// BloscLZ is the speed-tuned codec modelled on blosc-lz: a byte-shuffle
// filter (element size 4, matching the float32 payloads FedSZ feeds it)
// followed by a fast greedy LZ77 with short hash chains and incompressible-
// region skipping. It is the FedSZ default for the lossless partition.
type BloscLZ struct {
	elemSize int
	cfg      matcherConfig
}

// NewBloscLZ returns the codec with blosc-like defaults: 4-byte shuffle and
// a shallow match search tuned for throughput.
func NewBloscLZ() *BloscLZ {
	return &BloscLZ{
		elemSize: 4,
		cfg:      matcherConfig{maxChain: 1, lazy: false, skipStep: true},
	}
}

// Name implements Codec.
func (c *BloscLZ) Name() string { return "blosclz" }

// Frame layout:
//
//	u32 rawLen | u8 shuffled | interleaved LZ stream
//
// Interleaved stream per sequence: uvarint litLen, literal bytes,
// uvarint(matchLen) (0 = tail), u16 offset-1 when matchLen > 0.
// matchLen stores matchLen-lzMinMatch+1 so 0 is reserved for the tail.

// Compress implements Codec.
func (c *BloscLZ) Compress(src []byte) ([]byte, error) {
	out := sched.GetBytes(len(src)/2 + 16)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(src)))
	shuffled := byte(0)
	work := src
	if c.elemSize > 1 && len(src) >= 4*c.elemSize {
		shuffled = 1
		work = shuffleBytes(src, c.elemSize)
	}
	out = append(out, shuffled)
	seqs, lits := lzParse(work, c.cfg)
	if shuffled == 1 {
		sched.PutBytes(work) // lzParse copied what it needs into lits
	}
	litPos := 0
	for _, s := range seqs {
		out = appendUvarint(out, uint64(s.litLen))
		out = append(out, lits[litPos:litPos+s.litLen]...)
		litPos += s.litLen
		if s.matchLen == 0 {
			out = appendUvarint(out, 0)
			continue
		}
		out = appendUvarint(out, uint64(s.matchLen-lzMinMatch+1))
		out = binary.LittleEndian.AppendUint16(out, uint16(s.offset-1))
	}
	putSeqs(seqs)
	sched.PutBytes(lits)
	return out, nil
}

// Decompress implements Codec.
func (c *BloscLZ) Decompress(src []byte) ([]byte, error) {
	if len(src) < 5 {
		return nil, ErrCorrupt
	}
	rawLen := int(binary.LittleEndian.Uint32(src))
	shuffled := src[4]
	pos := 5
	out := sched.GetBytes(initialCap(rawLen, len(src)))
	for len(out) < rawLen {
		litLen64, p, err := readUvarint(src, pos)
		if err != nil {
			return nil, err
		}
		pos = p
		litLen := int(litLen64)
		if pos+litLen > len(src) || len(out)+litLen > rawLen {
			return nil, ErrCorrupt
		}
		out = append(out, src[pos:pos+litLen]...)
		pos += litLen
		mCode, p, err := readUvarint(src, pos)
		if err != nil {
			return nil, err
		}
		pos = p
		if mCode == 0 {
			break
		}
		mLen := int(mCode) + lzMinMatch - 1
		if pos+2 > len(src) {
			return nil, ErrCorrupt
		}
		off := int(binary.LittleEndian.Uint16(src[pos:])) + 1
		pos += 2
		if off > len(out) || len(out)+mLen > rawLen {
			return nil, ErrCorrupt
		}
		start := len(out) - off
		for k := 0; k < mLen; k++ {
			out = append(out, out[start+k])
		}
	}
	if len(out) != rawLen {
		return nil, ErrCorrupt
	}
	if shuffled == 1 {
		un := unshuffleBytes(out, c.elemSize)
		sched.PutBytes(out)
		out = un
	}
	return out, nil
}
