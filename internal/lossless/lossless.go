// Package lossless implements the lossless codecs FedSZ evaluates for the
// metadata / non-weight partition of a model update (paper Table II):
//
//   - blosclz  — byte-shuffle filter + speed-tuned LZ77 (stand-in for the C
//     blosc-lz library): fastest, good ratio on shuffled float data.
//   - zstdlike — LZ77 with deeper matching + Huffman-coded literals
//     (stand-in for Zstandard): mid speed, mid ratio.
//   - xzlike   — lazy-match LZ77 with exhaustive chains + Huffman-coded
//     literal and control streams (stand-in for XZ/LZMA): slowest, best
//     ratio.
//   - gzip, zlib — thin wrappers over the Go standard library DEFLATE
//     implementations, matching the Python libraries the paper used.
//
// All codecs implement the Codec interface and are self-framing: Decompress
// needs only the bytes Compress produced.
package lossless

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCorrupt is returned when a compressed buffer fails integrity checks.
var ErrCorrupt = errors.New("lossless: corrupt compressed data")

// Codec is a self-framing lossless byte compressor.
//
// Implementations must be safe for concurrent use and must return freshly
// allocated buffers (never aliases of the input or of retained state):
// ownership transfers to the caller, which may recycle them through the
// sched buffer pools.
type Codec interface {
	// Name returns the registry name of the codec (e.g. "blosclz").
	Name() string
	// Compress returns a self-describing compressed representation of src.
	Compress(src []byte) ([]byte, error)
	// Decompress reverses Compress bit-exactly.
	Decompress(src []byte) ([]byte, error)
}

var registry = map[string]Codec{}

// Register adds a codec to the global registry; it panics on duplicates and
// is intended to be called from package init functions.
func Register(c Codec) {
	if _, dup := registry[c.Name()]; dup {
		panic(fmt.Sprintf("lossless: duplicate codec %q", c.Name()))
	}
	registry[c.Name()] = c
}

// Get returns the codec registered under name.
func Get(name string) (Codec, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("lossless: unknown codec %q", name)
	}
	return c, nil
}

// Names returns the sorted list of registered codec names.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(NewBloscLZ())
	Register(NewZstdLike())
	Register(NewXZLike())
	Register(NewGzip())
	Register(NewZlib())
}
