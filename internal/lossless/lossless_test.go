package lossless

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// corpora produces the payload shapes the FedSZ pipeline actually feeds the
// lossless stage: float32 metadata arrays, repetitive buffers, random noise.
func corpora() map[string][]byte {
	rng := rand.New(rand.NewPCG(10, 20))

	// Small float32 running stats (near-constant values).
	stats := make([]byte, 0, 4*512)
	for i := 0; i < 512; i++ {
		v := float32(1.0 + 0.001*rng.NormFloat64())
		bits := math.Float32bits(v)
		stats = append(stats, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	}

	// Repetitive text-like data.
	rep := bytes.Repeat([]byte("federated learning model update metadata "), 200)

	// Incompressible noise.
	noise := make([]byte, 8192)
	for i := range noise {
		noise[i] = byte(rng.Uint32())
	}

	// Tiny and empty buffers.
	return map[string][]byte{
		"float_stats": stats,
		"repetitive":  rep,
		"noise":       noise,
		"tiny":        {1, 2, 3},
		"empty":       {},
		"single":      {42},
	}
}

func TestAllCodecsRoundTrip(t *testing.T) {
	for _, name := range Names() {
		c, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for cname, data := range corpora() {
			enc, err := c.Compress(data)
			if err != nil {
				t.Fatalf("%s/%s compress: %v", name, cname, err)
			}
			dec, err := c.Decompress(enc)
			if err != nil {
				t.Fatalf("%s/%s decompress: %v", name, cname, err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("%s/%s: round trip not bit-exact (%d vs %d bytes)", name, cname, len(dec), len(data))
			}
		}
	}
}

func TestRepetitiveDataCompresses(t *testing.T) {
	data := corpora()["repetitive"]
	for _, name := range Names() {
		c, _ := Get(name)
		enc, err := c.Compress(data)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(len(data)) / float64(len(enc))
		if ratio < 3 {
			t.Errorf("%s: ratio %.2f on repetitive data, want >= 3", name, ratio)
		}
	}
}

func TestXZBeatsBloscOnEntropyRichData(t *testing.T) {
	// The paper's Table II ordering: xz's ratio >= blosclz's on metadata.
	data := corpora()["float_stats"]
	bl, _ := Get("blosclz")
	xz, _ := Get("xzlike")
	eb, _ := bl.Compress(data)
	ex, _ := xz.Compress(data)
	if len(ex) > len(eb)+len(data)/20 {
		t.Errorf("xzlike (%d) should not be much worse than blosclz (%d)", len(ex), len(eb))
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"blosclz", "gzip", "xzlike", "zlib", "zstdlike"}
	if len(names) != len(want) {
		t.Fatalf("registry has %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry order %v, want %v", names, want)
		}
	}
	if _, err := Get("nonexistent"); err == nil {
		t.Fatal("want error for unknown codec")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	Register(NewBloscLZ())
}

func TestDecompressCorrupt(t *testing.T) {
	junk := [][]byte{nil, {1}, {1, 2, 3, 4}, bytes.Repeat([]byte{0xFF}, 64)}
	for _, name := range []string{"blosclz", "zstdlike", "xzlike"} {
		c, _ := Get(name)
		for i, j := range junk {
			if _, err := c.Decompress(j); err == nil {
				// A nil/short buffer decoding successfully to empty output is
				// acceptable only if it declares rawLen 0 — all our junk
				// buffers with >= 5 bytes declare nonzero lengths.
				if i >= 2 {
					t.Errorf("%s: junk case %d decoded without error", name, i)
				}
			}
		}
	}
}

func TestTruncatedStream(t *testing.T) {
	data := corpora()["repetitive"]
	for _, name := range []string{"blosclz", "zstdlike", "xzlike"} {
		c, _ := Get(name)
		enc, _ := c.Compress(data)
		if _, err := c.Decompress(enc[:len(enc)/2]); err == nil {
			t.Errorf("%s: truncated stream decoded without error", name)
		}
	}
}

func TestShuffleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000, 1001, 1002, 1003} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Uint32())
		}
		for _, es := range []int{1, 2, 4, 8} {
			sh := shuffleBytes(data, es)
			un := unshuffleBytes(sh, es)
			if !bytes.Equal(un, data) {
				t.Fatalf("shuffle(%d) round trip failed for n=%d", es, n)
			}
		}
	}
}

func TestShuffleGroupsBytes(t *testing.T) {
	// elements 0x04030201 repeated: after shuffle all 0x01s come first.
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 8)
	sh := shuffleBytes(data, 4)
	for i := 0; i < 8; i++ {
		if sh[i] != 1 || sh[8+i] != 2 || sh[16+i] != 3 || sh[24+i] != 4 {
			t.Fatalf("shuffle layout wrong: % x", sh)
		}
	}
}

func TestLZParseReconstruct(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	cfgs := []matcherConfig{
		{maxChain: 4, skipStep: true},
		{maxChain: 32},
		{maxChain: 512, lazy: true},
	}
	inputs := [][]byte{
		[]byte("abcabcabcabcabcabc"),
		bytes.Repeat([]byte{0}, 1000),
		make([]byte, 4096),
	}
	for i := range inputs[2] {
		inputs[2][i] = byte(rng.IntN(4)) // low-entropy random
	}
	for _, cfg := range cfgs {
		for i, in := range inputs {
			seqs, lits := lzParse(in, cfg)
			out, err := lzReconstruct(seqs, lits, len(in))
			if err != nil {
				t.Fatalf("cfg %+v input %d: %v", cfg, i, err)
			}
			if !bytes.Equal(out, in) {
				t.Fatalf("cfg %+v input %d: reconstruction mismatch", cfg, i)
			}
		}
	}
}

// Property: every codec round-trips arbitrary byte strings.
func TestQuickRoundTripAllCodecs(t *testing.T) {
	for _, name := range Names() {
		c, _ := Get(name)
		f := func(data []byte) bool {
			enc, err := c.Compress(data)
			if err != nil {
				return false
			}
			dec, err := c.Decompress(enc)
			return err == nil && bytes.Equal(dec, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func benchCodec(b *testing.B, name string, compress bool) {
	c, err := Get(name)
	if err != nil {
		b.Fatal(err)
	}
	data := corpora()["float_stats"]
	data = bytes.Repeat(data, 32) // ~64 KB
	enc, _ := c.Compress(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if compress {
			if _, err := c.Compress(data); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := c.Decompress(enc); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCompressBloscLZ(b *testing.B)   { benchCodec(b, "blosclz", true) }
func BenchmarkCompressZstdLike(b *testing.B)  { benchCodec(b, "zstdlike", true) }
func BenchmarkCompressXZLike(b *testing.B)    { benchCodec(b, "xzlike", true) }
func BenchmarkCompressGzip(b *testing.B)      { benchCodec(b, "gzip", true) }
func BenchmarkDecompressBloscLZ(b *testing.B) { benchCodec(b, "blosclz", false) }
func BenchmarkDecompressXZLike(b *testing.B)  { benchCodec(b, "xzlike", false) }
