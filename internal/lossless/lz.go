package lossless

import (
	"encoding/binary"
	"sync"

	"repro/internal/sched"
)

// Shared LZ77 machinery: a hash-chain matcher producing (literal run, match)
// sequences, plus the interleaved byte serialization used by the blosclz
// codec. The zstd-like and xz-like codecs reuse the parse but entropy-code
// the streams.

const (
	lzMinMatch  = 4
	lzMaxOffset = 1 << 16 // 2-byte offsets
	lzHashBits  = 15
)

// sequence describes one LZ77 step: emit litLen literal bytes, then copy
// matchLen bytes from offset bytes back. matchLen == 0 marks the final
// literal-only tail.
type sequence struct {
	litLen   int
	matchLen int
	offset   int
}

// matcherConfig tunes the speed/ratio trade-off of the parse.
type matcherConfig struct {
	maxChain int  // how many chain links to follow per position
	lazy     bool // evaluate position+1 before committing to a match
	skipStep bool // accelerate through incompressible regions (speed tuning)
}

func lzHash(v uint32) uint32 {
	// Fibonacci hashing of the 4-byte window.
	return (v * 2654435761) >> (32 - lzHashBits)
}

// headPool recycles the 128 KiB hash-head arrays across lzParse calls —
// with per-tensor fan-out the matcher runs hundreds of times per round.
var headPool = sync.Pool{New: func() any {
	h := make([]int32, 1<<lzHashBits)
	return &h
}}

// seqPool recycles the sequence slices both the parse and the entropy-coded
// decoders materialize; get/put mirror the sched slice pools.
var seqPool = sync.Pool{New: func() any { return new([]sequence) }}

func getSeqs(n int) []sequence {
	sp := seqPool.Get().(*[]sequence)
	s := *sp
	*sp = nil
	seqPool.Put(sp)
	if cap(s) < n {
		return make([]sequence, 0, max(n, 16))
	}
	return s[:0]
}

func putSeqs(s []sequence) {
	if cap(s) == 0 || cap(s) > 1<<20 {
		return
	}
	s = s[:0]
	sp := seqPool.Get().(*[]sequence)
	*sp = s
	seqPool.Put(sp)
}

// lzParse greedily (or lazily) factors src into sequences. literals holds
// the concatenated literal bytes referenced by the sequences, in order
// (copied, never aliasing src). Both returned slices come from pools; the
// caller releases them via putSeqs and sched.PutBytes once consumed.
func lzParse(src []byte, cfg matcherConfig) (seqs []sequence, literals []byte) {
	n := len(src)
	seqs = getSeqs(n / 32)
	literals = sched.GetBytes(n)
	if n < lzMinMatch {
		if n > 0 {
			seqs = append(seqs, sequence{litLen: n})
			literals = append(literals, src...)
		}
		return seqs, literals
	}
	headp := headPool.Get().(*[]int32)
	defer headPool.Put(headp)
	head := *headp
	for i := range head {
		head[i] = -1
	}
	chain := sched.GetInt32s(n)[:n]
	defer sched.PutInt32s(chain)

	insert := func(i int) {
		if i+lzMinMatch > n {
			return
		}
		h := lzHash(binary.LittleEndian.Uint32(src[i:]))
		chain[i] = head[h]
		head[h] = int32(i)
	}

	findMatch := func(i int) (bestLen, bestOff int) {
		if i+lzMinMatch > n {
			return 0, 0
		}
		h := lzHash(binary.LittleEndian.Uint32(src[i:]))
		cand := head[h]
		limit := n - i
		for steps := 0; cand >= 0 && steps < cfg.maxChain; steps++ {
			j := int(cand)
			if i-j >= lzMaxOffset {
				break
			}
			if src[j] == src[i] && (bestLen == 0 || (i+bestLen < n && src[j+bestLen] == src[i+bestLen])) {
				l := 0
				for l < limit && src[j+l] == src[i+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestOff = l, i-j
				}
			}
			cand = chain[j]
		}
		if bestLen < lzMinMatch {
			return 0, 0
		}
		return bestLen, bestOff
	}

	litStart := 0
	i := 0
	misses := 0
	for i < n {
		mLen, mOff := findMatch(i)
		if cfg.lazy && mLen >= lzMinMatch && i+1 < n {
			// Peek one position ahead; a longer match there beats taking
			// this one now.
			insert(i)
			nLen, nOff := findMatch(i + 1)
			if nLen > mLen+1 {
				i++
				mLen, mOff = nLen, nOff
			} else {
				// Undo the speculative insert bookkeeping cost is zero; the
				// entry is still valid for future searches.
			}
		}
		if mLen == 0 {
			if cfg.lazy {
				// Entry may already be inserted by the lazy peek; harmless
				// to insert again (most recent wins).
				insert(i)
			} else {
				insert(i)
			}
			misses++
			step := 1
			if cfg.skipStep && misses > 64 {
				// blosc-style acceleration: skip faster through
				// incompressible data at a small ratio cost.
				step = 1 + (misses-64)>>5
			}
			i += step
			continue
		}
		misses = 0
		seqs = append(seqs, sequence{litLen: i - litStart, matchLen: mLen, offset: mOff})
		literals = append(literals, src[litStart:i]...)
		// Index the interior of the match sparsely (speed).
		end := i + mLen
		stride := 1
		if mLen > 64 {
			stride = 4
		}
		for j := i; j < end && j < n; j += stride {
			insert(j)
		}
		i = end
		litStart = i
	}
	if litStart < n {
		seqs = append(seqs, sequence{litLen: n - litStart})
		literals = append(literals, src[litStart:]...)
	}
	return seqs, literals
}

// initialCap bounds the first output allocation of a decoder: a hostile
// header can declare a multi-gigabyte rawLen, so start from a multiple of
// the compressed size and let append grow if the data is really there.
func initialCap(rawLen, srcLen int) int {
	c := srcLen * 8
	if c > rawLen {
		c = rawLen
	}
	if c < 64 {
		c = 64
	}
	return c
}

// lzReconstruct rebuilds the original bytes from sequences and literals.
// rawLen is the expected output size (for allocation and validation). The
// output comes from the sched byte pool; per the Codec contract the caller
// owns it and may recycle it.
func lzReconstruct(seqs []sequence, literals []byte, rawLen int) ([]byte, error) {
	out := sched.GetBytes(initialCap(rawLen, len(literals)+len(seqs)))
	lit := 0
	for _, s := range seqs {
		if s.litLen < 0 || lit+s.litLen > len(literals) {
			return nil, ErrCorrupt
		}
		out = append(out, literals[lit:lit+s.litLen]...)
		lit += s.litLen
		if s.matchLen > 0 {
			if s.offset <= 0 || s.offset > len(out) {
				return nil, ErrCorrupt
			}
			// Overlapping copies must proceed byte-by-byte.
			start := len(out) - s.offset
			for k := 0; k < s.matchLen; k++ {
				out = append(out, out[start+k])
			}
		}
	}
	if len(out) != rawLen {
		return nil, ErrCorrupt
	}
	return out, nil
}

// appendUvarint / readUvarint are thin wrappers so all codecs share one
// varint convention.
func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func readUvarint(src []byte, pos int) (uint64, int, error) {
	v, n := binary.Uvarint(src[pos:])
	if n <= 0 {
		return 0, 0, ErrCorrupt
	}
	return v, pos + n, nil
}
