package lossless

import "repro/internal/sched"

// Byte-shuffle filter (the heart of blosc): rearrange an array of fixed-size
// elements so that byte 0 of every element comes first, then byte 1, etc.
// For float32 data this groups the (highly similar) sign/exponent bytes,
// turning low-entropy structure into long runs the LZ stage can exploit.
//
// Both directions draw their output buffer from the shared sched pool;
// callers that only need the result transiently recycle it with
// sched.PutBytes.

// shuffleBytes returns src rearranged with the given element size. Bytes
// beyond the last full element (the remainder) are appended unshuffled.
func shuffleBytes(src []byte, elemSize int) []byte {
	out := sched.GetBytes(len(src))[:len(src)]
	if elemSize <= 1 || len(src) < 2*elemSize {
		copy(out, src)
		return out
	}
	n := len(src) / elemSize
	for b := 0; b < elemSize; b++ {
		base := b * n
		for i := 0; i < n; i++ {
			out[base+i] = src[i*elemSize+b]
		}
	}
	copy(out[n*elemSize:], src[n*elemSize:])
	return out
}

// unshuffleBytes reverses shuffleBytes.
func unshuffleBytes(src []byte, elemSize int) []byte {
	out := sched.GetBytes(len(src))[:len(src)]
	if elemSize <= 1 || len(src) < 2*elemSize {
		copy(out, src)
		return out
	}
	n := len(src) / elemSize
	for b := 0; b < elemSize; b++ {
		base := b * n
		for i := 0; i < n; i++ {
			out[i*elemSize+b] = src[base+i]
		}
	}
	copy(out[n*elemSize:], src[n*elemSize:])
	return out
}
