package lossless

import (
	"bytes"
	"compress/gzip"
	"compress/zlib"
	"io"
)

// Gzip wraps the standard library gzip implementation, matching the Python
// gzip module the paper benchmarks.
type Gzip struct{ level int }

// NewGzip returns the codec at the default compression level.
func NewGzip() *Gzip { return &Gzip{level: gzip.DefaultCompression} }

// Name implements Codec.
func (c *Gzip) Name() string { return "gzip" }

// Compress implements Codec.
func (c *Gzip) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, c.level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress implements Codec.
func (c *Gzip) Decompress(src []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// Zlib wraps the standard library zlib implementation, matching the Python
// zlib module the paper benchmarks.
type Zlib struct{ level int }

// NewZlib returns the codec at the default compression level.
func NewZlib() *Zlib { return &Zlib{level: zlib.DefaultCompression} }

// Name implements Codec.
func (c *Zlib) Name() string { return "zlib" }

// Compress implements Codec.
func (c *Zlib) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := zlib.NewWriterLevel(&buf, c.level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decompress implements Codec.
func (c *Zlib) Decompress(src []byte) ([]byte, error) {
	r, err := zlib.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}
