package lossless

import (
	"encoding/binary"

	"repro/internal/sched"
)

// XZLike is the highest-effort codec in the suite, modelled on XZ/LZMA's
// position in the paper's Table II: by far the slowest and (marginally) the
// best ratio. It combines a byte-shuffle filter, exhaustive lazy LZ77
// matching, and Huffman coding of both the literal stream and the control
// stream (sequence lengths and offsets serialized to bytes first).
type XZLike struct {
	elemSize int
	cfg      matcherConfig
}

// NewXZLike returns the codec at full effort.
func NewXZLike() *XZLike {
	return &XZLike{
		elemSize: 4,
		cfg:      matcherConfig{maxChain: 512, lazy: true},
	}
}

// Name implements Codec.
func (c *XZLike) Name() string { return "xzlike" }

// Frame layout:
//
//	u32 rawLen | u8 shuffled | u8 litMode | u8 ctlMode |
//	uvarint litBlobLen | litBlob | uvarint ctlBlobLen | ctlBlob
//
// The control blob is the varint-packed sequence stream (as in zstdlike),
// itself entropy-coded when that wins.

// Compress implements Codec.
func (c *XZLike) Compress(src []byte) ([]byte, error) {
	work := src
	shuffled := byte(0)
	if c.elemSize > 1 && len(src) >= 4*c.elemSize {
		shuffled = 1
		work = shuffleBytes(src, c.elemSize)
	}
	seqs, lits := lzParse(work, c.cfg)
	if shuffled == 1 {
		sched.PutBytes(work) // lzParse copied what it needs into lits
	}

	ctl := sched.GetBytes(len(seqs)*5 + 16)
	ctl = appendUvarint(ctl, uint64(len(seqs)))
	for _, s := range seqs {
		ctl = appendUvarint(ctl, uint64(s.litLen))
		if s.matchLen == 0 {
			ctl = appendUvarint(ctl, 0)
			continue
		}
		ctl = appendUvarint(ctl, uint64(s.matchLen-lzMinMatch+1))
		ctl = binary.LittleEndian.AppendUint16(ctl, uint16(s.offset-1))
	}
	putSeqs(seqs)

	litBlob, litMode, err := encodeLiterals(lits)
	sched.PutBytes(lits)
	if err != nil {
		sched.PutBytes(ctl)
		return nil, err
	}
	ctlBlob, ctlMode, err := encodeLiterals(ctl)
	sched.PutBytes(ctl)
	if err != nil {
		sched.PutBytes(litBlob)
		return nil, err
	}

	out := sched.GetBytes(len(litBlob) + len(ctlBlob) + 16)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(src)))
	out = append(out, shuffled, litMode, ctlMode)
	out = appendUvarint(out, uint64(len(litBlob)))
	out = append(out, litBlob...)
	sched.PutBytes(litBlob)
	out = appendUvarint(out, uint64(len(ctlBlob)))
	out = append(out, ctlBlob...)
	sched.PutBytes(ctlBlob)
	return out, nil
}

// Decompress implements Codec.
func (c *XZLike) Decompress(src []byte) ([]byte, error) {
	if len(src) < 7 {
		return nil, ErrCorrupt
	}
	rawLen := int(binary.LittleEndian.Uint32(src))
	shuffled, litMode, ctlMode := src[4], src[5], src[6]
	pos := 7
	litLen64, pos, err := readUvarint(src, pos)
	if err != nil {
		return nil, err
	}
	if pos+int(litLen64) > len(src) {
		return nil, ErrCorrupt
	}
	lits, err := decodeLiterals(src[pos:pos+int(litLen64)], litMode)
	if err != nil {
		return nil, err
	}
	pos += int(litLen64)
	ctlLen64, pos, err := readUvarint(src, pos)
	if err != nil {
		return nil, err
	}
	if pos+int(ctlLen64) > len(src) {
		return nil, ErrCorrupt
	}
	ctl, err := decodeLiterals(src[pos:pos+int(ctlLen64)], ctlMode)
	if err != nil {
		releaseLiterals(lits, litMode)
		return nil, err
	}
	fail := func(err error) ([]byte, error) {
		releaseLiterals(lits, litMode)
		releaseLiterals(ctl, ctlMode)
		return nil, err
	}

	cpos := 0
	nSeqs64, cpos, err := readUvarint(ctl, cpos)
	if err != nil {
		return fail(err)
	}
	seqs := getSeqs(min(clampInt(nSeqs64), (len(ctl)-cpos)/2+1))
	defer func() { putSeqs(seqs) }()
	for i := uint64(0); i < nSeqs64; i++ {
		var s sequence
		var v uint64
		v, cpos, err = readUvarint(ctl, cpos)
		if err != nil {
			return fail(err)
		}
		s.litLen = int(v)
		v, cpos, err = readUvarint(ctl, cpos)
		if err != nil {
			return fail(err)
		}
		if v > 0 {
			s.matchLen = int(v) + lzMinMatch - 1
			if cpos+2 > len(ctl) {
				return fail(ErrCorrupt)
			}
			s.offset = int(binary.LittleEndian.Uint16(ctl[cpos:])) + 1
			cpos += 2
		}
		seqs = append(seqs, s)
	}
	out, err := lzReconstruct(seqs, lits, rawLen)
	releaseLiterals(lits, litMode)
	releaseLiterals(ctl, ctlMode)
	if err != nil {
		return nil, err
	}
	if shuffled == 1 {
		un := unshuffleBytes(out, c.elemSize)
		sched.PutBytes(out)
		out = un
	}
	return out, nil
}
