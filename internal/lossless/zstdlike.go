package lossless

import (
	"encoding/binary"

	"repro/internal/huffman"
	"repro/internal/sched"
)

// ZstdLike is a Zstandard-inspired codec: the same LZ77 factorization with a
// deeper match search than blosclz, plus Huffman entropy coding of the
// literal stream. Control data (sequence counts, lengths, offsets) is
// varint-packed. Slower than blosclz, better ratio on entropy-rich data.
type ZstdLike struct {
	cfg matcherConfig
}

// NewZstdLike returns the codec with mid-effort matching.
func NewZstdLike() *ZstdLike {
	return &ZstdLike{cfg: matcherConfig{maxChain: 32, lazy: false}}
}

// Name implements Codec.
func (c *ZstdLike) Name() string { return "zstdlike" }

// Frame layout:
//
//	u32 rawLen | u8 litMode | uvarint litBlobLen | litBlob |
//	uvarint nSeqs | per-seq: uvarint litLen, uvarint matchCode, u16 offset-1
//
// litMode 0 = raw literals, 1 = Huffman (chosen by whichever is smaller).

// Compress implements Codec.
func (c *ZstdLike) Compress(src []byte) ([]byte, error) {
	seqs, lits := lzParse(src, c.cfg)
	litBlob, litMode, err := encodeLiterals(lits)
	sched.PutBytes(lits)
	if err != nil {
		putSeqs(seqs)
		return nil, err
	}
	out := sched.GetBytes(len(litBlob) + len(seqs)*4 + 16)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(src)))
	out = append(out, litMode)
	out = appendUvarint(out, uint64(len(litBlob)))
	out = append(out, litBlob...)
	sched.PutBytes(litBlob)
	out = appendUvarint(out, uint64(len(seqs)))
	for _, s := range seqs {
		out = appendUvarint(out, uint64(s.litLen))
		if s.matchLen == 0 {
			out = appendUvarint(out, 0)
			continue
		}
		out = appendUvarint(out, uint64(s.matchLen-lzMinMatch+1))
		out = binary.LittleEndian.AppendUint16(out, uint16(s.offset-1))
	}
	putSeqs(seqs)
	return out, nil
}

// Decompress implements Codec.
func (c *ZstdLike) Decompress(src []byte) ([]byte, error) {
	if len(src) < 5 {
		return nil, ErrCorrupt
	}
	rawLen := int(binary.LittleEndian.Uint32(src))
	litMode := src[4]
	pos := 5
	blobLen64, pos, err := readUvarint(src, pos)
	if err != nil {
		return nil, err
	}
	blobLen := int(blobLen64)
	if pos+blobLen > len(src) {
		return nil, ErrCorrupt
	}
	lits, err := decodeLiterals(src[pos:pos+blobLen], litMode)
	if err != nil {
		return nil, err
	}
	pos += blobLen
	nSeqs64, pos, err := readUvarint(src, pos)
	if err != nil {
		releaseLiterals(lits, litMode)
		return nil, err
	}
	// The capacity is a hint bounded by what the stream could really carry
	// (each sequence costs >= 2 bytes), so a hostile count cannot force a
	// giant allocation; append grows if the data is there.
	seqs := getSeqs(min(clampInt(nSeqs64), (len(src)-pos)/2+1))
	defer func() { putSeqs(seqs) }()
	for i := uint64(0); i < nSeqs64; i++ {
		var s sequence
		var v uint64
		v, pos, err = readUvarint(src, pos)
		if err != nil {
			releaseLiterals(lits, litMode)
			return nil, err
		}
		s.litLen = int(v)
		v, pos, err = readUvarint(src, pos)
		if err != nil {
			releaseLiterals(lits, litMode)
			return nil, err
		}
		if v > 0 {
			s.matchLen = int(v) + lzMinMatch - 1
			if pos+2 > len(src) {
				releaseLiterals(lits, litMode)
				return nil, ErrCorrupt
			}
			s.offset = int(binary.LittleEndian.Uint16(src[pos:])) + 1
			pos += 2
		}
		seqs = append(seqs, s)
	}
	out, err := lzReconstruct(seqs, lits, rawLen)
	releaseLiterals(lits, litMode)
	return out, err
}

// encodeLiterals Huffman-codes lits when that wins; otherwise stores raw.
// The returned blob always comes from the sched byte pool; the caller must
// recycle it via sched.PutBytes after copying it into the frame.
func encodeLiterals(lits []byte) (blob []byte, mode byte, err error) {
	if len(lits) >= 64 {
		syms := sched.GetUint16s(len(lits))[:len(lits)]
		for i, b := range lits {
			syms[i] = uint16(b)
		}
		enc, err := huffman.EncodeAllU16(syms, 256)
		sched.PutUint16s(syms)
		if err != nil {
			return nil, 0, err
		}
		if len(enc) < len(lits) {
			return enc, 1, nil
		}
		sched.PutBytes(enc)
	}
	return append(sched.GetBytes(len(lits)), lits...), 0, nil
}

// decodeLiterals reverses encodeLiterals. Mode 0 returns a view into blob;
// mode 1 returns a pooled buffer — releaseLiterals recycles whichever the
// mode produced once the bytes are dead.
func decodeLiterals(blob []byte, mode byte) ([]byte, error) {
	switch mode {
	case 0:
		return blob, nil
	case 1:
		syms, err := huffman.DecodeAllU16(blob, 256)
		if err != nil {
			return nil, err
		}
		out := sched.GetBytes(len(syms))[:len(syms)]
		for i, s := range syms {
			out[i] = byte(s)
		}
		sched.PutUint16s(syms)
		return out, nil
	default:
		return nil, ErrCorrupt
	}
}

// releaseLiterals recycles a decodeLiterals result (no-op for mode-0 views).
func releaseLiterals(lits []byte, mode byte) {
	if mode == 1 {
		sched.PutBytes(lits)
	}
}

// clampInt converts an untrusted uint64 to a non-negative int without
// overflow surprises (huge values saturate).
func clampInt(v uint64) int {
	const maxInt = int(^uint(0) >> 1)
	if v > uint64(maxInt) {
		return maxInt
	}
	return int(v)
}
