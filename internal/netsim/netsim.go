// Package netsim models the constrained networks of the FedSZ evaluation.
// The paper emulates low bandwidth by sleeping inside MPI sends (§VI-C);
// this package instead computes transmission times analytically on a
// virtual clock from real measured payload sizes, which makes hour-long
// "transfers" cost nothing and keeps the scaling experiments deterministic.
package netsim

import (
	"fmt"
	"io"
	"time"
)

// Link models a client↔server path.
type Link struct {
	// BandwidthMbps is the usable throughput in megabits per second.
	BandwidthMbps float64
	// LatencyMs is the one-way propagation latency added per transfer.
	LatencyMs float64
}

// Common paper settings.
var (
	// EdgeLink is the 10 Mbps wide-area edge network of Figures 7 and 9.
	EdgeLink = Link{BandwidthMbps: 10}
	// DataCenterLink approximates the 10 Gbps cluster fabric.
	DataCenterLink = Link{BandwidthMbps: 10_000}
)

// TransmitTime returns the virtual wall-clock time to move `bytes` across
// the link.
func (l Link) TransmitTime(bytes int) time.Duration {
	if l.BandwidthMbps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive bandwidth %g", l.BandwidthMbps))
	}
	seconds := float64(bytes*8)/(l.BandwidthMbps*1e6) + l.LatencyMs/1e3
	return time.Duration(seconds * float64(time.Second))
}

// ThrottleWriter wraps w so sustained throughput approximates the link's
// bandwidth, with the link latency charged once up front. Where the rest
// of this package accounts transfer time analytically on a virtual clock,
// a throttled writer spends real wall-clock time — it is the bridge
// between the analytic model and the streaming transport (internal/wire,
// internal/flserve): wrapping a client's socket in one emulates the
// paper's constrained uplinks on a real connection, so decode-under-
// receive overlap can be measured end-to-end instead of modeled.
func (l Link) ThrottleWriter(w io.Writer) io.Writer {
	if l.BandwidthMbps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive bandwidth %g", l.BandwidthMbps))
	}
	return &throttledWriter{w: w, link: l}
}

// throttleChunk keeps individual sleeps short so pacing is smooth rather
// than bursty (16 KiB at 10 Mbps ≈ 13 ms per chunk).
const throttleChunk = 16 << 10

type throttledWriter struct {
	w    io.Writer
	link Link
	// next is the virtual send clock: the real time before which the next
	// chunk must not complete.
	next time.Time
}

func (t *throttledWriter) Write(p []byte) (int, error) {
	if t.next.IsZero() {
		t.next = time.Now().Add(time.Duration(t.link.LatencyMs * float64(time.Millisecond)))
	}
	written := 0
	for written < len(p) {
		chunk := min(len(p)-written, throttleChunk)
		// Charge the chunk's transmission time on the virtual clock, then
		// sleep until the clock catches up. Accumulating on `next` (rather
		// than sleeping per chunk) keeps long-run throughput exact even
		// though individual sleeps overshoot.
		t.next = t.next.Add(time.Duration(float64(chunk*8) / (t.link.BandwidthMbps * 1e6) * float64(time.Second)))
		if d := time.Until(t.next); d > 0 {
			time.Sleep(d)
		}
		n, err := t.w.Write(p[written : written+chunk])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Decision is the outcome of the Eqn-1 test.
type Decision struct {
	Compress         bool
	CompressedTime   time.Duration // tC + tD + S'/B
	UncompressedTime time.Duration // S/B
}

// Speedup returns uncompressed/compressed total time.
func (d Decision) Speedup() float64 {
	if d.CompressedTime == 0 {
		return 0
	}
	return float64(d.UncompressedTime) / float64(d.CompressedTime)
}

// ShouldCompress evaluates the paper's Equation 1: compression pays off when
// tC + tD + S'/B < S/B.
func ShouldCompress(tC, tD time.Duration, rawBytes, compressedBytes int, link Link) Decision {
	comp := tC + tD + link.TransmitTime(compressedBytes)
	raw := link.TransmitTime(rawBytes)
	return Decision{Compress: comp < raw, CompressedTime: comp, UncompressedTime: raw}
}

// ClientProfile describes one client's per-round costs for the scaling
// simulator: real compute durations plus the bytes it uploads.
type ClientProfile struct {
	ComputeTime  time.Duration // local training (+ validation share)
	CompressTime time.Duration // zero for uncompressed transports
	UploadBytes  int
}

// ScalingPoint is one measurement of Figure 9.
type ScalingPoint struct {
	Workers   int
	Clients   int
	RoundTime time.Duration // virtual wall clock for one communication round
}

// SimulateRound computes the virtual round time for `clients` identical
// clients scheduled over `workers` parallel slots, all uploading through
// one shared server link (the serialized ingest is what makes communication
// dominate at scale, as in the paper's 10 Mbps runs).
func SimulateRound(profile ClientProfile, clients, workers int, link Link) ScalingPoint {
	if workers < 1 || clients < 1 {
		panic("netsim: need at least one worker and client")
	}
	waves := (clients + workers - 1) / workers
	compute := time.Duration(waves) * (profile.ComputeTime + profile.CompressTime)
	// The server drains uploads serially over the shared link.
	comm := time.Duration(clients) * link.TransmitTime(profile.UploadBytes)
	return ScalingPoint{Workers: workers, Clients: clients, RoundTime: compute + comm}
}

// WeakScaling runs the paper's weak-scaling sweep: one client per worker,
// worker counts as given (Fig. 9a reports per-client epoch time).
func WeakScaling(profile ClientProfile, workerCounts []int, link Link) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(workerCounts))
	for _, w := range workerCounts {
		out = append(out, SimulateRound(profile, w, w, link))
	}
	return out
}

// StrongScaling runs the fixed-client sweep (127 clients in the paper).
func StrongScaling(profile ClientProfile, clients int, workerCounts []int, link Link) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(workerCounts))
	for _, w := range workerCounts {
		out = append(out, SimulateRound(profile, clients, w, link))
	}
	return out
}

// Speedup returns base.RoundTime / p.RoundTime — the strong-scaling metric.
func Speedup(base, p ScalingPoint) float64 {
	if p.RoundTime == 0 {
		return 0
	}
	return float64(base.RoundTime) / float64(p.RoundTime)
}
