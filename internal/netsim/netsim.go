// Package netsim models the constrained networks of the FedSZ evaluation.
// The paper emulates low bandwidth by sleeping inside MPI sends (§VI-C);
// this package instead computes transmission times analytically on a
// virtual clock from real measured payload sizes, which makes hour-long
// "transfers" cost nothing and keeps the scaling experiments deterministic.
package netsim

import (
	"fmt"
	"time"
)

// Link models a client↔server path.
type Link struct {
	// BandwidthMbps is the usable throughput in megabits per second.
	BandwidthMbps float64
	// LatencyMs is the one-way propagation latency added per transfer.
	LatencyMs float64
}

// Common paper settings.
var (
	// EdgeLink is the 10 Mbps wide-area edge network of Figures 7 and 9.
	EdgeLink = Link{BandwidthMbps: 10}
	// DataCenterLink approximates the 10 Gbps cluster fabric.
	DataCenterLink = Link{BandwidthMbps: 10_000}
)

// TransmitTime returns the virtual wall-clock time to move `bytes` across
// the link.
func (l Link) TransmitTime(bytes int) time.Duration {
	if l.BandwidthMbps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive bandwidth %g", l.BandwidthMbps))
	}
	seconds := float64(bytes*8)/(l.BandwidthMbps*1e6) + l.LatencyMs/1e3
	return time.Duration(seconds * float64(time.Second))
}

// Decision is the outcome of the Eqn-1 test.
type Decision struct {
	Compress         bool
	CompressedTime   time.Duration // tC + tD + S'/B
	UncompressedTime time.Duration // S/B
}

// Speedup returns uncompressed/compressed total time.
func (d Decision) Speedup() float64 {
	if d.CompressedTime == 0 {
		return 0
	}
	return float64(d.UncompressedTime) / float64(d.CompressedTime)
}

// ShouldCompress evaluates the paper's Equation 1: compression pays off when
// tC + tD + S'/B < S/B.
func ShouldCompress(tC, tD time.Duration, rawBytes, compressedBytes int, link Link) Decision {
	comp := tC + tD + link.TransmitTime(compressedBytes)
	raw := link.TransmitTime(rawBytes)
	return Decision{Compress: comp < raw, CompressedTime: comp, UncompressedTime: raw}
}

// ClientProfile describes one client's per-round costs for the scaling
// simulator: real compute durations plus the bytes it uploads.
type ClientProfile struct {
	ComputeTime  time.Duration // local training (+ validation share)
	CompressTime time.Duration // zero for uncompressed transports
	UploadBytes  int
}

// ScalingPoint is one measurement of Figure 9.
type ScalingPoint struct {
	Workers   int
	Clients   int
	RoundTime time.Duration // virtual wall clock for one communication round
}

// SimulateRound computes the virtual round time for `clients` identical
// clients scheduled over `workers` parallel slots, all uploading through
// one shared server link (the serialized ingest is what makes communication
// dominate at scale, as in the paper's 10 Mbps runs).
func SimulateRound(profile ClientProfile, clients, workers int, link Link) ScalingPoint {
	if workers < 1 || clients < 1 {
		panic("netsim: need at least one worker and client")
	}
	waves := (clients + workers - 1) / workers
	compute := time.Duration(waves) * (profile.ComputeTime + profile.CompressTime)
	// The server drains uploads serially over the shared link.
	comm := time.Duration(clients) * link.TransmitTime(profile.UploadBytes)
	return ScalingPoint{Workers: workers, Clients: clients, RoundTime: compute + comm}
}

// WeakScaling runs the paper's weak-scaling sweep: one client per worker,
// worker counts as given (Fig. 9a reports per-client epoch time).
func WeakScaling(profile ClientProfile, workerCounts []int, link Link) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(workerCounts))
	for _, w := range workerCounts {
		out = append(out, SimulateRound(profile, w, w, link))
	}
	return out
}

// StrongScaling runs the fixed-client sweep (127 clients in the paper).
func StrongScaling(profile ClientProfile, clients int, workerCounts []int, link Link) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(workerCounts))
	for _, w := range workerCounts {
		out = append(out, SimulateRound(profile, clients, w, link))
	}
	return out
}

// Speedup returns base.RoundTime / p.RoundTime — the strong-scaling metric.
func Speedup(base, p ScalingPoint) float64 {
	if p.RoundTime == 0 {
		return 0
	}
	return float64(base.RoundTime) / float64(p.RoundTime)
}
