package netsim

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestTransmitTime(t *testing.T) {
	l := Link{BandwidthMbps: 10}
	// 10 Mbps = 1.25 MB/s: 1.25 MB should take 1 s.
	got := l.TransmitTime(1_250_000)
	if math.Abs(got.Seconds()-1) > 1e-9 {
		t.Fatalf("TransmitTime = %v want 1s", got)
	}
	// Latency adds on top.
	l.LatencyMs = 50
	got = l.TransmitTime(0)
	if math.Abs(got.Seconds()-0.05) > 1e-9 {
		t.Fatalf("latency-only transfer = %v want 50ms", got)
	}
}

func TestTransmitTimePanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Link{}.TransmitTime(10)
}

func TestEqn1Decision(t *testing.T) {
	// Paper example scale: 230 MB AlexNet at 10 Mbps takes ~184 s raw; with
	// 12x compression and ~4 s codec time, compression must win.
	raw := 230 << 20
	comp := raw / 12
	d := ShouldCompress(3*time.Second, 1*time.Second, raw, comp, Link{BandwidthMbps: 10})
	if !d.Compress {
		t.Fatal("compression should win at 10 Mbps")
	}
	if d.Speedup() < 5 {
		t.Fatalf("speedup %.2f, want > 5 at 10 Mbps", d.Speedup())
	}
	// At 10 Gbps the raw transfer takes ~0.18 s; codec time dominates and
	// compression must lose (the paper's ~500 Mbps crossover).
	d = ShouldCompress(3*time.Second, 1*time.Second, raw, comp, Link{BandwidthMbps: 10_000})
	if d.Compress {
		t.Fatal("compression should lose at 10 Gbps")
	}
}

func TestCrossoverMonotonic(t *testing.T) {
	// As bandwidth grows, the compress/don't-compress decision flips
	// exactly once.
	raw := 100 << 20
	comp := raw / 10
	prev := true
	flips := 0
	for _, mbps := range []float64{1, 10, 50, 100, 500, 1000, 5000, 10000} {
		d := ShouldCompress(time.Second, 500*time.Millisecond, raw, comp, Link{BandwidthMbps: mbps})
		if d.Compress != prev {
			flips++
			prev = d.Compress
		}
	}
	if flips != 1 {
		t.Fatalf("decision flipped %d times, want exactly 1", flips)
	}
}

func TestWeakScalingGrowsWithClients(t *testing.T) {
	profile := ClientProfile{ComputeTime: 2 * time.Second, UploadBytes: 1 << 20}
	points := WeakScaling(profile, []int{2, 4, 8, 16}, EdgeLink)
	if len(points) != 4 {
		t.Fatal("want 4 points")
	}
	for i := 1; i < len(points); i++ {
		if points[i].RoundTime <= points[i-1].RoundTime {
			t.Fatalf("weak scaling must grow: %v then %v", points[i-1], points[i])
		}
	}
	// At 10 Mbps the shared-link comm term dominates: doubling clients
	// should roughly double round time at the high end.
	r := float64(points[3].RoundTime) / float64(points[2].RoundTime)
	if r < 1.5 || r > 2.5 {
		t.Fatalf("weak-scaling growth factor %.2f, want ~2", r)
	}
}

func TestStrongScalingSpeedsUp(t *testing.T) {
	profile := ClientProfile{ComputeTime: 2 * time.Second, CompressTime: 100 * time.Millisecond, UploadBytes: 1 << 18}
	points := StrongScaling(profile, 127, []int{2, 4, 8, 16, 32, 64, 128}, EdgeLink)
	base := points[0]
	prev := 0.0
	for _, p := range points {
		s := Speedup(base, p)
		if s+1e-9 < prev {
			t.Fatalf("strong scaling speedup regressed: %v", points)
		}
		prev = s
	}
	if prev < 3 {
		t.Fatalf("peak strong-scaling speedup %.2f, want >= 3", prev)
	}
}

func TestCompressionHelpsScaling(t *testing.T) {
	// Figure 9's FedSZ-vs-uncompressed gap: same compute, 10x fewer bytes
	// should cut the round time by a large factor at 10 Mbps.
	raw := ClientProfile{ComputeTime: time.Second, UploadBytes: 10 << 20}
	fz := ClientProfile{ComputeTime: time.Second, CompressTime: 200 * time.Millisecond, UploadBytes: 1 << 20}
	pr := SimulateRound(raw, 16, 16, EdgeLink)
	pf := SimulateRound(fz, 16, 16, EdgeLink)
	if float64(pr.RoundTime)/float64(pf.RoundTime) < 4 {
		t.Fatalf("compression speedup %.2f, want >= 4 (raw %v fedsz %v)",
			float64(pr.RoundTime)/float64(pf.RoundTime), pr.RoundTime, pf.RoundTime)
	}
}

func TestSimulateRoundValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for zero workers")
		}
	}()
	SimulateRound(ClientProfile{}, 1, 0, EdgeLink)
}

func TestThrottleWriterPacesThroughput(t *testing.T) {
	// 250 KB at 100 Mbps is 20 ms of transmission; assert the write takes
	// at least half of that (generous slack for coarse sleep timers) and
	// delivers every byte intact.
	link := Link{BandwidthMbps: 100}
	var buf bytes.Buffer
	w := link.ThrottleWriter(&buf)
	payload := make([]byte, 250_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	t0 := time.Now()
	n, err := w.Write(payload)
	elapsed := time.Since(t0)
	if err != nil || n != len(payload) {
		t.Fatalf("write n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), payload) {
		t.Fatal("throttled writer corrupted the payload")
	}
	want := link.TransmitTime(len(payload))
	if elapsed < want/2 {
		t.Fatalf("250 KB at 100 Mbps took %v, want >= %v", elapsed, want/2)
	}
}

func TestThrottleWriterChargesLatencyOnce(t *testing.T) {
	link := Link{BandwidthMbps: 10_000, LatencyMs: 30}
	var buf bytes.Buffer
	w := link.ThrottleWriter(&buf)
	t0 := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := w.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(t0)
	if elapsed < 25*time.Millisecond {
		t.Fatalf("latency not charged: %v", elapsed)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("latency charged per write, not once: %v", elapsed)
	}
}
