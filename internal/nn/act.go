package nn

import (
	"repro/internal/tensor"
)

// ReLU applies max(0, x); with Cap > 0 it becomes a capped ReLU (ReLU6 for
// Cap = 6, the MobileNetV2 activation).
type ReLU struct {
	name string
	Cap  float32
	mask []bool
}

// NewReLU constructs an uncapped ReLU.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// NewReLU6 constructs the capped variant used by MobileNetV2.
func NewReLU6(name string) *ReLU { return &ReLU{name: name, Cap: 6} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// FLOPs implements Layer.
func (r *ReLU) FLOPs(in []int) (int64, []int) { return 0, in }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	if train {
		if cap(r.mask) < len(x.Data) {
			r.mask = make([]bool, len(x.Data))
		}
		r.mask = r.mask[:len(x.Data)]
	}
	for i, v := range x.Data {
		pass := v > 0 && (r.Cap == 0 || v < r.Cap)
		switch {
		case v <= 0:
			y.Data[i] = 0
		case r.Cap > 0 && v >= r.Cap:
			y.Data[i] = r.Cap
		default:
			y.Data[i] = v
		}
		if train {
			r.mask[i] = pass
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dy.Shape...)
	for i, v := range dy.Data {
		if r.mask[i] {
			dx.Data[i] = v
		}
	}
	return dx
}
