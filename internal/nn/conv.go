package nn

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/tensor"
)

// Conv2D is a standard 2-D convolution implemented as im2col + GEMM.
// Input/output layout is NCHW.
type Conv2D struct {
	name                 string
	InC, OutC            int
	KH, KW, Stride, Pad  int
	W                    *Param // [OutC, InC, KH, KW]
	B                    *Param // [OutC]
	x                    *tensor.Tensor
	cols                 []float32 // cached im2col of last forward (train)
	inH, inW, outH, outW int
	batch                int
}

// NewConv2D constructs the layer with He-normal weights.
func NewConv2D(rng *rand.Rand, name string, inC, outC, k, stride, pad int) *Conv2D {
	w := tensor.New(outC, inC, k, k)
	KaimingConv(rng, w)
	c := &Conv2D{
		name: name, InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad,
		W: &Param{Name: name + ".weight", Kind: tensor.KindWeight, Val: w, Grad: tensor.New(outC, inC, k, k)},
		B: &Param{Name: name + ".bias", Kind: tensor.KindBias, Val: tensor.New(outC), Grad: tensor.New(outC)},
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// FLOPs implements Layer.
func (c *Conv2D) FLOPs(in []int) (int64, []int) {
	h, w := in[1], in[2]
	outH := (h+2*c.Pad-c.KH)/c.Stride + 1
	outW := (w+2*c.Pad-c.KW)/c.Stride + 1
	f := int64(c.OutC) * int64(outH) * int64(outW) * int64(c.InC) * int64(c.KH) * int64(c.KW)
	return f, []int{c.OutC, outH, outW}
}

func (c *Conv2D) outDims(h, w int) (int, int) {
	return (h+2*c.Pad-c.KH)/c.Stride + 1, (w+2*c.Pad-c.KW)/c.Stride + 1
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ch != c.InC {
		panic(fmt.Sprintf("%s: input channels %d != %d", c.name, ch, c.InC))
	}
	outH, outW := c.outDims(h, w)
	c.batch, c.inH, c.inW, c.outH, c.outW = n, h, w, outH, outW
	y := tensor.New(n, c.OutC, outH, outW)
	patch := c.InC * c.KH * c.KW
	colSize := patch * outH * outW
	if train {
		if cap(c.cols) < n*colSize {
			c.cols = make([]float32, n*colSize)
		}
		c.cols = c.cols[:n*colSize]
		c.x = x
	}
	scratch := c.cols
	if !train {
		scratch = make([]float32, colSize)
	}
	wFlat := c.W.Val.Data // [OutC, patch]
	for s := 0; s < n; s++ {
		var cols []float32
		if train {
			cols = scratch[s*colSize : (s+1)*colSize]
		} else {
			cols = scratch
		}
		im2col(x.Data[s*ch*h*w:(s+1)*ch*h*w], ch, h, w, c.KH, c.KW, c.Stride, c.Pad, cols)
		out := y.Data[s*c.OutC*outH*outW : (s+1)*c.OutC*outH*outW]
		Gemm(wFlat, c.OutC, patch, cols, outH*outW, out, false)
		for oc := 0; oc < c.OutC; oc++ {
			bv := c.B.Val.Data[oc]
			if bv == 0 {
				continue
			}
			row := out[oc*outH*outW : (oc+1)*outH*outW]
			for i := range row {
				row[i] += bv
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := c.batch
	patch := c.InC * c.KH * c.KW
	colSize := patch * c.outH * c.outW
	plane := c.outH * c.outW
	dx := tensor.New(n, c.InC, c.inH, c.inW)
	dcols := make([]float32, colSize)
	wFlat := c.W.Val.Data
	for s := 0; s < n; s++ {
		dys := dy.Data[s*c.OutC*plane : (s+1)*c.OutC*plane]
		cols := c.cols[s*colSize : (s+1)*colSize]
		// dW += dy · colsᵀ  (OutC×plane · plane×patch)
		GemmTB(dys, c.OutC, plane, cols, patch, c.W.Grad.Data, true)
		// dcols = Wᵀ · dy  (patch×OutC · OutC×plane)
		GemmTA(wFlat, c.OutC, patch, dys, plane, dcols, false)
		col2im(dcols, c.InC, c.inH, c.inW, c.KH, c.KW, c.Stride, c.Pad,
			dx.Data[s*c.InC*c.inH*c.inW:(s+1)*c.InC*c.inH*c.inW])
		// dB += sum over spatial positions.
		for oc := 0; oc < c.OutC; oc++ {
			var sum float32
			row := dys[oc*plane : (oc+1)*plane]
			for _, v := range row {
				sum += v
			}
			c.B.Grad.Data[oc] += sum
		}
	}
	return dx
}

// im2col unrolls conv patches: cols is [C*KH*KW, outH*outW] row-major.
func im2col(img []float32, ch, h, w, kh, kw, stride, pad int, cols []float32) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	plane := outH * outW
	row := 0
	for c := 0; c < ch; c++ {
		base := c * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				dst := cols[row*plane : (row+1)*plane]
				row++
				di := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < outW; ox++ {
							dst[di] = 0
							di++
						}
						continue
					}
					src := img[base+iy*w:]
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							dst[di] = 0
						} else {
							dst[di] = src[ix]
						}
						di++
					}
				}
			}
		}
	}
}

// col2im scatters gradient columns back to image space (accumulating).
func col2im(cols []float32, ch, h, w, kh, kw, stride, pad int, img []float32) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	plane := outH * outW
	row := 0
	for c := 0; c < ch; c++ {
		base := c * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				src := cols[row*plane : (row+1)*plane]
				row++
				si := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						si += outW
						continue
					}
					dst := img[base+iy*w:]
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							dst[ix] += src[si]
						}
						si++
					}
				}
			}
		}
	}
}

// DepthwiseConv2D applies one k×k filter per channel (groups == channels),
// the MobileNetV2 building block.
type DepthwiseConv2D struct {
	name                 string
	C, K, Stride, Pad    int
	W                    *Param // [C, 1, K, K]
	B                    *Param // [C]
	x                    *tensor.Tensor
	inH, inW, outH, outW int
}

// NewDepthwiseConv2D constructs the layer.
func NewDepthwiseConv2D(rng *rand.Rand, name string, ch, k, stride, pad int) *DepthwiseConv2D {
	w := tensor.New(ch, 1, k, k)
	KaimingConv(rng, w)
	return &DepthwiseConv2D{
		name: name, C: ch, K: k, Stride: stride, Pad: pad,
		W: &Param{Name: name + ".weight", Kind: tensor.KindWeight, Val: w, Grad: tensor.New(ch, 1, k, k)},
		B: &Param{Name: name + ".bias", Kind: tensor.KindBias, Val: tensor.New(ch), Grad: tensor.New(ch)},
	}
}

// Name implements Layer.
func (d *DepthwiseConv2D) Name() string { return d.name }

// Params implements Layer.
func (d *DepthwiseConv2D) Params() []*Param { return []*Param{d.W, d.B} }

// FLOPs implements Layer.
func (d *DepthwiseConv2D) FLOPs(in []int) (int64, []int) {
	h, w := in[1], in[2]
	outH := (h+2*d.Pad-d.K)/d.Stride + 1
	outW := (w+2*d.Pad-d.K)/d.Stride + 1
	f := int64(d.C) * int64(outH) * int64(outW) * int64(d.K) * int64(d.K)
	return f, []int{d.C, outH, outW}
}

// Forward implements Layer.
func (d *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ch != d.C {
		panic(fmt.Sprintf("%s: channels %d != %d", d.name, ch, d.C))
	}
	outH := (h+2*d.Pad-d.K)/d.Stride + 1
	outW := (w+2*d.Pad-d.K)/d.Stride + 1
	d.inH, d.inW, d.outH, d.outW = h, w, outH, outW
	if train {
		d.x = x
	}
	y := tensor.New(n, ch, outH, outW)
	for s := 0; s < n; s++ {
		for c := 0; c < ch; c++ {
			src := x.Data[(s*ch+c)*h*w:]
			dst := y.Data[(s*ch+c)*outH*outW:]
			ker := d.W.Val.Data[c*d.K*d.K:]
			bv := d.B.Val.Data[c]
			di := 0
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					var acc float32
					for ky := 0; ky < d.K; ky++ {
						iy := oy*d.Stride - d.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < d.K; kx++ {
							ix := ox*d.Stride - d.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							acc += src[iy*w+ix] * ker[ky*d.K+kx]
						}
					}
					dst[di] = acc + bv
					di++
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (d *DepthwiseConv2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	x := d.x
	n, ch := x.Shape[0], x.Shape[1]
	h, w := d.inH, d.inW
	dx := tensor.New(n, ch, h, w)
	for s := 0; s < n; s++ {
		for c := 0; c < ch; c++ {
			src := x.Data[(s*ch+c)*h*w:]
			g := dy.Data[(s*ch+c)*d.outH*d.outW:]
			ker := d.W.Val.Data[c*d.K*d.K:]
			kg := d.W.Grad.Data[c*d.K*d.K:]
			dsrc := dx.Data[(s*ch+c)*h*w:]
			var bsum float32
			gi := 0
			for oy := 0; oy < d.outH; oy++ {
				for ox := 0; ox < d.outW; ox++ {
					gv := g[gi]
					gi++
					bsum += gv
					if gv == 0 {
						continue
					}
					for ky := 0; ky < d.K; ky++ {
						iy := oy*d.Stride - d.Pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < d.K; kx++ {
							ix := ox*d.Stride - d.Pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							kg[ky*d.K+kx] += gv * src[iy*w+ix]
							dsrc[iy*w+ix] += gv * ker[ky*d.K+kx]
						}
					}
				}
			}
			d.B.Grad.Data[c] += bsum
		}
	}
	return dx
}
