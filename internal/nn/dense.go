package nn

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/tensor"
)

// Dense is a fully connected layer y = x·Wᵀ + b over [N, In] inputs.
type Dense struct {
	name    string
	In, Out int
	W       *Param // [Out, In]
	B       *Param // [Out]
	x       *tensor.Tensor
}

// NewDense constructs the layer with Xavier-uniform weights.
func NewDense(rng *rand.Rand, name string, in, out int) *Dense {
	w := tensor.New(out, in)
	XavierDense(rng, w)
	return &Dense{
		name: name, In: in, Out: out,
		W: &Param{Name: name + ".weight", Kind: tensor.KindWeight, Val: w, Grad: tensor.New(out, in)},
		B: &Param{Name: name + ".bias", Kind: tensor.KindBias, Val: tensor.New(out), Grad: tensor.New(out)},
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// FLOPs implements Layer.
func (d *Dense) FLOPs(in []int) (int64, []int) {
	return int64(d.In) * int64(d.Out), []int{d.Out}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Shape[0]
	if x.NumElems()/n != d.In {
		panic(fmt.Sprintf("%s: input features %d != %d", d.name, x.NumElems()/n, d.In))
	}
	if train {
		d.x = x
	}
	y := tensor.New(n, d.Out)
	// y = x · Wᵀ : [n,In]·[In,Out] with B stored as [Out,In].
	GemmTB(x.Data, n, d.In, d.W.Val.Data, d.Out, y.Data, false)
	for s := 0; s < n; s++ {
		row := y.Data[s*d.Out : (s+1)*d.Out]
		for j := range row {
			row[j] += d.B.Val.Data[j]
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n := dy.Shape[0]
	// dW += dyᵀ · x : [Out,n]·[n,In]
	GemmTA(dy.Data, n, d.Out, d.x.Data, d.In, d.W.Grad.Data, true)
	// db += column sums of dy.
	for s := 0; s < n; s++ {
		row := dy.Data[s*d.Out : (s+1)*d.Out]
		for j, v := range row {
			d.B.Grad.Data[j] += v
		}
	}
	// dx = dy · W : [n,Out]·[Out,In]
	dx := tensor.New(n, d.In)
	Gemm(dy.Data, n, d.Out, d.W.Val.Data, d.In, dx.Data, false)
	return dx
}

// Flatten reshapes [N, C, H, W] to [N, C·H·W]; it is shape bookkeeping only.
type Flatten struct {
	name    string
	inShape []int
}

// NewFlatten constructs the layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// FLOPs implements Layer.
func (f *Flatten) FLOPs(in []int) (int64, []int) {
	n := 1
	for _, d := range in {
		n *= d
	}
	return 0, []int{n}
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = append([]int(nil), x.Shape...)
	}
	n := x.Shape[0]
	return x.Reshape(n, x.NumElems()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(f.inShape...)
}
