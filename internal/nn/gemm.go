package nn

import (
	"runtime"
	"sync"
)

// Parallel single-precision GEMM kernels. These are the hot loops of the
// training substrate; they use the classic i-k-j ordering (unit-stride inner
// loop over B and C rows) and fan rows of A out to a worker pool.

// gemmParallelThreshold is the m·n·k product below which the serial kernel
// wins (goroutine fan-out costs more than it saves).
const gemmParallelThreshold = 1 << 16

var gemmWorkers = runtime.NumCPU()

// Gemm computes C = A·B (+ C if accumulate) for row-major matrices:
// A is m×k, B is k×n, C is m×n.
func Gemm(a []float32, m, k int, b []float32, n int, c []float32, accumulate bool) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("nn: gemm dimension mismatch")
	}
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	if m*n*k < gemmParallelThreshold || gemmWorkers == 1 || m == 1 {
		gemmRows(a, m, k, b, n, c, 0, m)
		return
	}
	workers := gemmWorkers
	if workers > m {
		workers = m
	}
	rowsPer := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		if lo >= m {
			break
		}
		hi := min(lo+rowsPer, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRows(a, m, k, b, n, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRows computes rows [lo,hi) of C += A·B.
func gemmRows(a []float32, m, k int, b []float32, n int, c []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// GemmTA computes C = Aᵀ·B where A is k×m (so Aᵀ is m×k), B is k×n,
// C is m×n. Used for weight gradients.
func GemmTA(a []float32, k, m int, b []float32, n int, c []float32, accumulate bool) {
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	// C[i][j] += sum_p A[p][i] * B[p][j]: iterate p outer for unit stride.
	run := func(lo, hi int) {
		for p := lo; p < hi; p++ {
			ap := a[p*m : (p+1)*m]
			bp := b[p*n : (p+1)*n]
			for i, av := range ap {
				if av == 0 {
					continue
				}
				ci := c[i*n : (i+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	}
	// Parallelizing over p races on C; keep serial (gradient GEMMs are a
	// minority of the time) unless m is large enough to split over i.
	if m*n*k < gemmParallelThreshold || gemmWorkers == 1 {
		run(0, k)
		return
	}
	// Split over output rows i instead: C[i] = sum_p A[p][i]*B[p].
	workers := min(gemmWorkers, m)
	rowsPer := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		if lo >= m {
			break
		}
		hi := min(lo+rowsPer, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for p := 0; p < k; p++ {
				ap := a[p*m : (p+1)*m]
				bp := b[p*n : (p+1)*n]
				for i := lo; i < hi; i++ {
					av := ap[i]
					if av == 0 {
						continue
					}
					ci := c[i*n : (i+1)*n]
					for j, bv := range bp {
						ci[j] += av * bv
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// GemmTB computes C = A·Bᵀ where A is m×k, B is n×k, C is m×n. Used for
// input gradients of dense layers.
func GemmTB(a []float32, m, k int, b []float32, n int, c []float32, accumulate bool) {
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a[i*k : (i+1)*k]
			ci := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b[j*k : (j+1)*k]
				var s float32
				for p, av := range ai {
					s += av * bj[p]
				}
				ci[j] += s
			}
		}
	}
	if m*n*k < gemmParallelThreshold || gemmWorkers == 1 || m == 1 {
		run(0, m)
		return
	}
	workers := min(gemmWorkers, m)
	rowsPer := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		if lo >= m {
			break
		}
		hi := min(lo+rowsPer, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			run(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
