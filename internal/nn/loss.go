package nn

import (
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss over a batch of
// logits [N, Classes] and integer labels, plus the gradient w.r.t. logits —
// the softmax/CE fusion keeps the backward numerically clean.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, c := logits.Shape[0], logits.Shape[1]
	grad = tensor.New(n, c)
	invN := 1 / float64(n)
	for s := 0; s < n; s++ {
		row := logits.Data[s*c : (s+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		label := labels[s]
		loss += -(float64(row[label]-maxv) - logSum) * invN
		for j := range row {
			p := math.Exp(float64(row[j]-maxv)) / sum
			g := p
			if j == label {
				g -= 1
			}
			grad.Data[s*c+j] = float32(g * invN)
		}
	}
	return loss, grad
}

// Accuracy returns the top-1 accuracy of logits [N, Classes] against labels.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, c := logits.Shape[0], logits.Shape[1]
	correct := 0
	for s := 0; s < n; s++ {
		row := logits.Data[s*c : (s+1)*c]
		best := 0
		for j := 1; j < c; j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		if best == labels[s] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
