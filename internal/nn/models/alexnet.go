package models

import (
	"math/rand/v2"

	"repro/internal/nn"
)

// AlexNetMini is a scaled-down AlexNet: stacked 3×3 convolutions with max
// pooling and a large dense head, no batch normalization — which is why the
// paper's Table III reports 99.98% of AlexNet's state as lossy-compressible
// weights (only conv/dense biases are metadata).
func AlexNetMini(rng *rand.Rand, in Input) *nn.Network {
	h, w := in.Height, in.Width
	layers := []nn.Layer{
		nn.NewConv2D(rng, "features.0", in.Channels, 24, 3, 1, 1),
		nn.NewReLU("features.1"),
		nn.NewMaxPool2D("features.2", 2),
		nn.NewConv2D(rng, "features.3", 24, 48, 3, 1, 1),
		nn.NewReLU("features.4"),
		nn.NewMaxPool2D("features.5", 2),
		nn.NewConv2D(rng, "features.6", 48, 64, 3, 1, 1),
		nn.NewReLU("features.7"),
		nn.NewConv2D(rng, "features.8", 64, 48, 3, 1, 1),
		nn.NewReLU("features.9"),
		nn.NewMaxPool2D("features.10", 2),
		nn.NewFlatten("flatten"),
	}
	fh, fw := h/8, w/8
	feat := 48 * fh * fw
	layers = append(layers,
		nn.NewDense(rng, "classifier.0", feat, 192),
		nn.NewReLU("classifier.1"),
		nn.NewDense(rng, "classifier.2", 192, in.Classes),
	)
	return nn.NewNetwork("alexnet-mini", layers...)
}
