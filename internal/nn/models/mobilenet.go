package models

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// tensorT shortens the layer signatures below.
type tensorT = tensor.Tensor

// MobileNetV2Mini is a scaled-down MobileNetV2: a conv+BN+ReLU6 stem
// followed by inverted-residual bottlenecks (1×1 expand → 3×3 depthwise →
// 1×1 project, residual add when shapes match), global pooling, and a dense
// classifier. Its relatively heavy use of batch norm is why Table III
// reports the lowest lossy fraction (96.94%) of the three models.
func MobileNetV2Mini(rng *rand.Rand, in Input) *nn.Network {
	layers := []nn.Layer{
		nn.NewConv2D(rng, "features.0.0", in.Channels, 16, 3, 1, 1),
		nn.NewBatchNorm2D("features.0.1", 16),
		nn.NewReLU6("features.0.2"),
	}
	type spec struct {
		expand, out, stride int
	}
	specs := []spec{
		{2, 16, 1},
		{3, 24, 2},
		{3, 24, 1},
		{3, 32, 2},
		{3, 32, 1},
	}
	cur := 16
	for i, s := range specs {
		layers = append(layers, invertedResidual(rng, fmt.Sprintf("features.%d", i+1), cur, s.out, s.expand, s.stride))
		cur = s.out
	}
	layers = append(layers,
		nn.NewConv2D(rng, "features.head.0", cur, 64, 1, 1, 0),
		nn.NewBatchNorm2D("features.head.1", 64),
		nn.NewReLU6("features.head.2"),
		nn.NewGlobalAvgPool("avgpool"),
		nn.NewDense(rng, "classifier", 64, in.Classes),
	)
	return nn.NewNetwork("mobilenetv2-mini", layers...)
}

// invertedResidual builds the MobileNetV2 bottleneck. The residual add is
// applied only for stride-1 blocks with matching channel counts.
func invertedResidual(rng *rand.Rand, name string, inC, outC, expand, stride int) nn.Layer {
	mid := inC * expand
	body := []nn.Layer{
		nn.NewConv2D(rng, name+".expand", inC, mid, 1, 1, 0),
		nn.NewBatchNorm2D(name+".expand_bn", mid),
		nn.NewReLU6(name + ".expand_relu"),
		nn.NewDepthwiseConv2D(rng, name+".depthwise", mid, 3, stride, 1),
		nn.NewBatchNorm2D(name+".depthwise_bn", mid),
		nn.NewReLU6(name + ".depthwise_relu"),
		nn.NewConv2D(rng, name+".project", mid, outC, 1, 1, 0),
		nn.NewBatchNorm2D(name+".project_bn", outC),
	}
	if stride == 1 && inC == outC {
		return nn.NewResidual(name, body, nil)
	}
	// Non-residual bottleneck: wrap as a residual with a projection skip of
	// zero-cost is wrong; instead return a plain sequential wrapper.
	return &sequentialBlock{name: name, layers: body}
}

// sequentialBlock groups layers under one name without a skip connection.
type sequentialBlock struct {
	name   string
	layers []nn.Layer
}

func (s *sequentialBlock) Name() string { return s.name }

func (s *sequentialBlock) Params() []*nn.Param {
	var out []*nn.Param
	for _, l := range s.layers {
		out = append(out, l.Params()...)
	}
	return out
}

func (s *sequentialBlock) FLOPs(in []int) (int64, []int) {
	var total int64
	shape := in
	for _, l := range s.layers {
		f, out := l.FLOPs(shape)
		total += f
		shape = out
	}
	return total, shape
}

func (s *sequentialBlock) Forward(x *tensorT, train bool) *tensorT {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

func (s *sequentialBlock) Backward(dy *tensorT) *tensorT {
	for i := len(s.layers) - 1; i >= 0; i-- {
		dy = s.layers[i].Backward(dy)
	}
	return dy
}
