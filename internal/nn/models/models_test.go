package models

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func miniInput() Input { return Input{Channels: 3, Height: 16, Width: 16, Classes: 10} }

func TestBuildMiniAllModels(t *testing.T) {
	for _, name := range Names() {
		rng := rand.New(rand.NewPCG(1, 2))
		net, err := BuildMini(name, rng, miniInput())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x := tensor.New(2, 3, 16, 16)
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64())
		}
		y := net.Forward(x, true)
		if y.Shape[0] != 2 || y.Shape[1] != 10 {
			t.Fatalf("%s: output shape %v", name, y.Shape)
		}
		for _, v := range y.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite logits", name)
			}
		}
		// Backward must run and produce an input-shaped gradient.
		_, grad := nn.SoftmaxCrossEntropy(y, []int{0, 1})
		dx := net.Backward(grad)
		if dx.NumElems() != x.NumElems() {
			t.Fatalf("%s: dx size %d != %d", name, dx.NumElems(), x.NumElems())
		}
		t.Logf("%s: %d params, %.1f MFLOPs/sample", name, net.NumParams(),
			float64(net.FLOPs([]int{3, 16, 16}))/1e6)
	}
	if _, err := BuildMini("vgg", rand.New(rand.NewPCG(0, 0)), miniInput()); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestMiniModelsStructuralSignatures(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	// AlexNet: no batch norm → no running stats → highest lossy fraction.
	// MobileNet/ResNet: BN present.
	fractions := map[string]float64{}
	for _, name := range Names() {
		net, err := BuildMini(name, rng, miniInput())
		if err != nil {
			t.Fatal(err)
		}
		sd := net.StateDict()
		lossy, total := 0, 0
		hasRunning := false
		for _, e := range sd.Entries() {
			total += e.Tensor.NumElems()
			if e.Kind == tensor.KindWeight {
				lossy += e.Tensor.NumElems()
			}
			if e.Kind == tensor.KindRunningStat {
				hasRunning = true
			}
		}
		fractions[name] = float64(lossy) / float64(total)
		if name == "alexnet" && hasRunning {
			t.Error("alexnet-mini must not contain batch norm state")
		}
		if name != "alexnet" && !hasRunning {
			t.Errorf("%s-mini must contain batch norm running stats", name)
		}
	}
	// Ordering from Table III: alexnet most lossy, mobilenet least.
	if !(fractions["alexnet"] > fractions["resnet50"] && fractions["resnet50"] > fractions["mobilenetv2"]) {
		t.Errorf("lossy fraction ordering violated: %v", fractions)
	}
}

func TestStateDictNamesUnique(t *testing.T) {
	// StateDict construction panics on duplicates; just building one per
	// model exercises the invariant.
	rng := rand.New(rand.NewPCG(5, 6))
	for _, name := range Names() {
		net, _ := BuildMini(name, rng, miniInput())
		sd := net.StateDict()
		if sd.Len() < 4 {
			t.Fatalf("%s: suspiciously few entries (%d)", name, sd.Len())
		}
	}
}

func TestProfileSpecsMatchTable3(t *testing.T) {
	specs := ProfileSpecs()
	if len(specs) != 3 {
		t.Fatal("want 3 profile specs")
	}
	byName := map[string]ProfileSpec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	if byName["alexnet"].Params != 60_000_000 || byName["alexnet"].LossyFraction != 0.9998 {
		t.Errorf("alexnet spec drifted: %+v", byName["alexnet"])
	}
	if byName["resnet50"].GFLOPs != 8 || byName["mobilenetv2"].GFLOPs != 0.35 {
		t.Error("GFLOPs drifted from Table III")
	}
	if _, err := ProfileSpecFor("nope"); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestBuildProfileShapes(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	const scale = 0.01
	for _, spec := range ProfileSpecs() {
		sd, err := BuildProfile(spec.Name, rng, scale)
		if err != nil {
			t.Fatal(err)
		}
		total := sd.NumParams()
		want := int(float64(spec.Params) * scale)
		if math.Abs(float64(total-want)) > float64(want)/50 {
			t.Errorf("%s: %d params, want ~%d", spec.Name, total, want)
		}
		lossy := 0
		for _, e := range sd.Entries() {
			if e.Kind == tensor.KindWeight {
				lossy += e.Tensor.NumElems()
			}
		}
		frac := float64(lossy) / float64(total)
		if math.Abs(frac-spec.LossyFraction) > 0.01 {
			t.Errorf("%s: lossy fraction %.4f want %.4f", spec.Name, frac, spec.LossyFraction)
		}
		// Weights must be within ±1 (Fig. 3) and concentrated near zero.
		var inTight, n int
		for _, e := range sd.Entries() {
			if e.Kind != tensor.KindWeight {
				continue
			}
			for _, v := range e.Tensor.Data {
				if v < -1 || v > 1 {
					t.Fatalf("%s: weight %v outside ±1", spec.Name, v)
				}
				if v > -0.1 && v < 0.1 {
					inTight++
				}
				n++
			}
		}
		if float64(inTight)/float64(n) < 0.5 {
			t.Errorf("%s: weight mass not concentrated near zero", spec.Name)
		}
	}
	if _, err := BuildProfile("alexnet", rng, 0); err == nil {
		t.Error("zero scale should error")
	}
	if _, err := BuildProfile("alexnet", rng, 2); err == nil {
		t.Error("scale > 1 should error")
	}
}

func TestMiniModelLearns(t *testing.T) {
	// The substrate's end-to-end purpose: a mini model must learn a
	// prototype dataset well above chance within a few epochs.
	rng := rand.New(rand.NewPCG(9, 10))
	net, err := BuildMini("alexnet", rng, Input{Channels: 3, Height: 16, Width: 16, Classes: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny synthetic 4-class task: one blob quadrant per class.
	n := 96
	x := tensor.New(n, 3, 16, 16)
	labels := make([]int, n)
	for s := 0; s < n; s++ {
		cl := s % 4
		labels[s] = cl
		for i := 0; i < 3*16*16; i++ {
			x.Data[s*3*16*16+i] = float32(0.1 * rng.NormFloat64())
		}
		// Bright quadrant identifies the class.
		qy, qx := cl/2, cl%2
		for ch := 0; ch < 3; ch++ {
			for y := 0; y < 8; y++ {
				for xx := 0; xx < 8; xx++ {
					idx := s*3*16*16 + ch*256 + (qy*8+y)*16 + qx*8 + xx
					x.Data[idx] += 1
				}
			}
		}
	}
	opt := nn.NewSGD(0.02, 0.9, 0)
	var acc float64
	for epoch := 0; epoch < 30; epoch++ {
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step(net.Params())
		acc = nn.Accuracy(logits, labels)
		if acc > 0.98 {
			break
		}
	}
	if acc < 0.9 {
		t.Fatalf("accuracy %.2f after training, want >= 0.9", acc)
	}
}
