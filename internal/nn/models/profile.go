package models

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/tensor"
)

// Profile state dicts: synthetic model states at (scaled) paper parameter
// counts, used by the compression-ratio and runtime experiments where only
// the weight *data* matters. Per-layer distributions follow Figure 3 of the
// paper: every model's weights live inside ±1 with heavy mass near zero,
// but with different spreads (MobileNetV2 widest, AlexNet narrowest).

// ProfileSpec describes one paper model for profile generation.
type ProfileSpec struct {
	Name string
	// Params is the paper's parameter count (Table III).
	Params int
	// LossyFraction is the fraction of state (by element count) that is
	// dense weight data (Table III "% Lossy Data").
	LossyFraction float64
	// GFLOPs is the paper-reported forward cost (Table III).
	GFLOPs float64
	// SizeMB is the paper-reported state size (Table III).
	SizeMB int
	// weightScale is the Laplace scale of the bulk weight mass (Fig. 3).
	weightScale float64
}

// ProfileSpecs returns the three paper models (Table III).
func ProfileSpecs() []ProfileSpec {
	return []ProfileSpec{
		{Name: "mobilenetv2", Params: 3_500_000, LossyFraction: 0.9694, GFLOPs: 0.35, SizeMB: 14, weightScale: 0.06},
		{Name: "resnet50", Params: 45_000_000, LossyFraction: 0.9947, GFLOPs: 8, SizeMB: 180, weightScale: 0.015},
		{Name: "alexnet", Params: 60_000_000, LossyFraction: 0.9998, GFLOPs: 0.75, SizeMB: 230, weightScale: 0.012},
	}
}

// ProfileSpecFor returns the spec for a paper model name.
func ProfileSpecFor(name string) (ProfileSpec, error) {
	for _, s := range ProfileSpecs() {
		if s.Name == name {
			return s, nil
		}
	}
	return ProfileSpec{}, fmt.Errorf("models: no profile spec for %q", name)
}

// BuildProfile synthesizes a state dict for the named paper model with
// parameter count Params·scale. scale in (0, 1] trades benchmark fidelity
// for runtime; the experiments default to 0.1 and report both raw and
// paper-extrapolated sizes.
func BuildProfile(name string, rng *rand.Rand, scale float64) (*tensor.StateDict, error) {
	spec, err := ProfileSpecFor(name)
	if err != nil {
		return nil, err
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("models: profile scale %g outside (0,1]", scale)
	}
	total := int(float64(spec.Params) * scale)
	lossy := int(float64(total) * spec.LossyFraction)
	meta := total - lossy

	sd := tensor.NewStateDict()
	// Split the weight mass across layers of varying width and spread, the
	// way real conv stacks look (early layers wider distributions).
	nLayers := 12
	remaining := lossy
	for i := 0; i < nLayers && remaining > 0; i++ {
		sz := remaining / (nLayers - i)
		if i == nLayers-1 {
			sz = remaining
		}
		remaining -= sz
		// Layer spread varies ±2x around the model's bulk scale.
		s := spec.weightScale * (0.5 + 1.5*float64(i)/float64(nLayers-1))
		t := tensor.New(sz)
		for j := range t.Data {
			v := s * (rng.ExpFloat64() - rng.ExpFloat64()) // Laplace(0, s)
			if v > 1 {
				v = 1
			} else if v < -1 {
				v = -1
			}
			t.Data[j] = float32(v)
		}
		sd.Add(fmt.Sprintf("features.%d.weight", i), tensor.KindWeight, t)
	}
	// Metadata: biases, running means (near 0), running vars (near 1),
	// counters — small, non-uniform float arrays (paper §V-E).
	if meta > 0 {
		nb := meta / 3
		nm := meta / 3
		nv := meta - nb - nm
		bias := tensor.New(max(nb, 1))
		for j := range bias.Data {
			bias.Data[j] = float32(0.01 * rng.NormFloat64())
		}
		sd.Add("features.bias_all", tensor.KindBias, bias)
		mean := tensor.New(max(nm, 1))
		for j := range mean.Data {
			mean.Data[j] = float32(0.1 * rng.NormFloat64())
		}
		sd.Add("bn.running_mean_all", tensor.KindRunningStat, mean)
		variance := tensor.New(max(nv, 1))
		for j := range variance.Data {
			variance.Data[j] = float32(1 + 0.2*rng.NormFloat64())
		}
		sd.Add("bn.running_var_all", tensor.KindRunningStat, variance)
		count := tensor.New(1)
		count.Data[0] = 1000
		sd.Add("bn.num_batches_tracked", tensor.KindScalarMeta, count)
	}
	return sd, nil
}
