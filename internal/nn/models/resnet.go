package models

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/nn"
)

// ResNetMini is a scaled-down residual network in the ResNet50 family:
// conv+BN stem, three stages of basic residual blocks with projection
// shortcuts on the downsampling blocks, global average pooling, dense head.
// Batch-norm running statistics populate the lossless partition.
func ResNetMini(rng *rand.Rand, in Input) *nn.Network {
	layers := []nn.Layer{
		nn.NewConv2D(rng, "conv1", in.Channels, 16, 3, 1, 1),
		nn.NewBatchNorm2D("bn1", 16),
		nn.NewReLU("relu1"),
	}
	chans := []int{16, 32, 48}
	cur := 16
	for stage, ch := range chans {
		stride := 1
		if stage > 0 {
			stride = 2
		}
		layers = append(layers, basicBlock(rng, fmt.Sprintf("layer%d.0", stage+1), cur, ch, stride))
		layers = append(layers, basicBlock(rng, fmt.Sprintf("layer%d.1", stage+1), ch, ch, 1))
		cur = ch
	}
	layers = append(layers,
		nn.NewGlobalAvgPool("avgpool"),
		nn.NewDense(rng, "fc", cur, in.Classes),
	)
	return nn.NewNetwork("resnet-mini", layers...)
}

// basicBlock is the two-conv residual block. A 1×1 projection shortcut is
// used when the shape changes.
func basicBlock(rng *rand.Rand, name string, inC, outC, stride int) nn.Layer {
	body := []nn.Layer{
		nn.NewConv2D(rng, name+".conv1", inC, outC, 3, stride, 1),
		nn.NewBatchNorm2D(name+".bn1", outC),
		nn.NewReLU(name + ".relu1"),
		nn.NewConv2D(rng, name+".conv2", outC, outC, 3, 1, 1),
		nn.NewBatchNorm2D(name+".bn2", outC),
	}
	var skip []nn.Layer
	if inC != outC || stride != 1 {
		skip = []nn.Layer{
			nn.NewConv2D(rng, name+".downsample.0", inC, outC, 1, stride, 0),
			nn.NewBatchNorm2D(name+".downsample.1", outC),
		}
	}
	return nn.NewResidual(name, body, skip)
}
