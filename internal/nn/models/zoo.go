// Package models provides the three architectures the FedSZ paper evaluates
// (AlexNet, MobileNetV2, ResNet50) in two forms:
//
//   - Mini variants: genuinely trainable scaled-down networks with the same
//     structural signatures (AlexNet: conv+pool+big dense, no batch norm;
//     MobileNetV2: inverted residuals with depthwise conv + BN + ReLU6;
//     ResNet: basic residual blocks with BN). These run the accuracy
//     experiments.
//   - Profile variants: synthetic state dicts at (scaled) paper parameter
//     counts whose per-layer weight distributions match Figure 3, used for
//     compression-ratio and runtime benchmarking where only the *data*
//     matters, not trainability.
package models

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/nn"
)

// Input describes the image shape a mini model is built for.
type Input struct {
	Channels, Height, Width int
	Classes                 int
}

// BuildMini constructs a trainable mini model by paper name ("alexnet",
// "mobilenetv2", "resnet50").
func BuildMini(name string, rng *rand.Rand, in Input) (*nn.Network, error) {
	switch name {
	case "alexnet":
		return AlexNetMini(rng, in), nil
	case "mobilenetv2":
		return MobileNetV2Mini(rng, in), nil
	case "resnet50":
		return ResNetMini(rng, in), nil
	default:
		return nil, fmt.Errorf("models: unknown model %q", name)
	}
}

// Names lists the supported model names in paper order.
func Names() []string { return []string{"alexnet", "mobilenetv2", "resnet50"} }
