// Package nn is a small pure-Go deep-learning substrate: enough of a neural
// network framework (conv / dense / batch-norm / pooling layers with
// backpropagation, SGD, and parallel GEMM) to run real federated-learning
// rounds for the FedSZ accuracy experiments.
//
// Design notes:
//
//   - Tensors are NCHW row-major float32 (tensor.Tensor).
//   - Layers cache their forward inputs, so a Network is single-goroutine;
//     data parallelism happens one level up (several clients train
//     concurrently) and inside GEMM (row-parallel workers).
//   - Every trainable or stateful array is exposed as a Param with a
//     tensor.Kind, which is exactly what the FedSZ partitioner consumes.
package nn

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/tensor"
)

// Param is one named, kinded array owned by a layer. Grad is nil for
// non-trainable state (running statistics, counters).
type Param struct {
	Name string
	Kind tensor.Kind
	Val  *tensor.Tensor
	Grad *tensor.Tensor
}

// Trainable reports whether the optimizer should update this parameter.
func (p *Param) Trainable() bool { return p.Grad != nil }

// Layer is one differentiable stage of a network.
type Layer interface {
	// Name returns the layer's instance name (used to prefix param names).
	Name() string
	// Forward computes the layer output. train selects training-time
	// behaviour (batch statistics, cached activations).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/dy and returns dL/dx, accumulating parameter
	// gradients. Must follow a Forward call with train=true.
	Backward(dy *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's parameters (empty for stateless layers).
	Params() []*Param
	// FLOPs returns the approximate forward multiply-add count for one
	// sample of the given input shape (C,H,W or features), and the output
	// shape, letting the model zoo derive Table III without running data.
	FLOPs(inShape []int) (flops int64, outShape []int)
}

// Network is an ordered sequence of layers with state-dict plumbing.
type Network struct {
	ModelName string
	Layers    []Layer
}

// NewNetwork builds a network from layers.
func NewNetwork(name string, layers ...Layer) *Network {
	return &Network{ModelName: name, Layers: layers}
}

// Forward runs the full stack.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the full reverse stack.
func (n *Network) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dy = n.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns all parameters in layer order.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrads clears all gradient accumulators.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		if p.Grad != nil {
			p.Grad.Fill(0)
		}
	}
}

// NumParams counts every element, trainable or not (matching PyTorch's
// state_dict size that FedSZ transmits).
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Val.NumElems()
	}
	return total
}

// StateDict snapshots all parameters into an ordered state dict. Values are
// deep-copied so the snapshot is stable under further training.
func (n *Network) StateDict() *tensor.StateDict {
	sd := tensor.NewStateDict()
	for _, p := range n.Params() {
		sd.Add(p.Name, p.Kind, p.Val.Clone())
	}
	return sd
}

// LoadStateDict copies values from sd into the network's parameters. Every
// network parameter must be present with a matching element count.
func (n *Network) LoadStateDict(sd *tensor.StateDict) error {
	for _, p := range n.Params() {
		t := sd.Get(p.Name)
		if t == nil {
			return fmt.Errorf("nn: state dict missing %q", p.Name)
		}
		if t.NumElems() != p.Val.NumElems() {
			return fmt.Errorf("nn: %q size mismatch: %d != %d", p.Name, t.NumElems(), p.Val.NumElems())
		}
		copy(p.Val.Data, t.Data)
	}
	return nil
}

// FLOPs reports one-sample forward multiply-adds for the given input shape.
func (n *Network) FLOPs(inShape []int) int64 {
	var total int64
	shape := inShape
	for _, l := range n.Layers {
		f, out := l.FLOPs(shape)
		total += f
		shape = out
	}
	return total
}

// Initializers.

// KaimingConv fills a [outC, inC, kH, kW] kernel with He-normal values.
func KaimingConv(rng *rand.Rand, t *tensor.Tensor) {
	fanIn := 1
	for _, d := range t.Shape[1:] {
		fanIn *= d
	}
	std := math.Sqrt(2 / float64(fanIn))
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// XavierDense fills a [out, in] matrix with Glorot-uniform values.
func XavierDense(rng *rand.Rand, t *tensor.Tensor) {
	fanOut, fanIn := t.Shape[0], t.Shape[1]
	limit := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range t.Data {
		t.Data[i] = float32((rng.Float64()*2 - 1) * limit)
	}
}
