package nn

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad estimates dLoss/dx[i] by central differences, where loss is
// the sum of layer outputs weighted by fixed random coefficients.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewPCG(99, 100))

	forwardLoss := func() (float64, *tensor.Tensor, []float32) {
		y := layer.Forward(x, true)
		w := make([]float32, y.NumElems())
		r := rand.New(rand.NewPCG(1, 1)) // fixed weights across calls
		for i := range w {
			w[i] = float32(r.NormFloat64())
		}
		var loss float64
		for i, v := range y.Data {
			loss += float64(v) * float64(w[i])
		}
		return loss, y, w
	}

	// Analytic gradients.
	_, y, w := forwardLoss()
	dy := tensor.New(y.Shape...)
	for i := range dy.Data {
		dy.Data[i] = w[i]
	}
	for _, p := range layer.Params() {
		if p.Grad != nil {
			p.Grad.Fill(0)
		}
	}
	dx := layer.Backward(dy)

	const eps = 1e-3
	lossAt := func() float64 {
		loss, _, _ := forwardLoss()
		return loss
	}

	// Check input gradient on a sample of positions.
	idxs := samplePositions(rng, x.NumElems(), 12)
	for _, i := range idxs {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossAt()
		x.Data[i] = orig - eps
		lm := lossAt()
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		got := float64(dx.Data[i])
		if math.Abs(num-got) > tol*(1+math.Abs(num)) {
			t.Errorf("%s: dx[%d] numeric %.5f analytic %.5f", layer.Name(), i, num, got)
		}
	}
	// Check parameter gradients.
	for _, p := range layer.Params() {
		if p.Grad == nil {
			continue
		}
		pidxs := samplePositions(rng, p.Val.NumElems(), 8)
		for _, i := range pidxs {
			orig := p.Val.Data[i]
			p.Val.Data[i] = orig + float32(eps)
			lp := lossAt()
			p.Val.Data[i] = orig - float32(eps)
			lm := lossAt()
			p.Val.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := float64(p.Grad.Data[i])
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Errorf("%s: %s grad[%d] numeric %.5f analytic %.5f", layer.Name(), p.Name, i, num, got)
			}
		}
	}
}

func samplePositions(rng *rand.Rand, n, k int) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, k)
	for i := range out {
		out[i] = rng.IntN(n)
	}
	return out
}

func randomInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	l := NewConv2D(rng, "conv", 2, 3, 3, 1, 1)
	checkLayerGradients(t, l, randomInput(rng, 2, 2, 5, 5), 1e-2)
}

func TestConv2DStride2Gradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	l := NewConv2D(rng, "conv_s2", 2, 4, 3, 2, 1)
	checkLayerGradients(t, l, randomInput(rng, 2, 2, 6, 6), 1e-2)
}

func TestDepthwiseConvGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	l := NewDepthwiseConv2D(rng, "dw", 3, 3, 1, 1)
	checkLayerGradients(t, l, randomInput(rng, 2, 3, 5, 5), 1e-2)
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 5))
	l := NewDense(rng, "fc", 7, 4)
	checkLayerGradients(t, l, randomInput(rng, 3, 7), 1e-2)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	l := NewBatchNorm2D("bn", 3)
	// Batch norm's running-stat update inside Forward perturbs nothing the
	// loss sees, so central differences remain valid.
	checkLayerGradients(t, l, randomInput(rng, 4, 3, 3, 3), 2e-2)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 7))
	l := NewReLU("relu")
	x := randomInput(rng, 2, 3, 4, 4)
	// Keep values away from the kink for stable numerics.
	for i := range x.Data {
		if v := math.Abs(float64(x.Data[i])); v < 0.05 {
			x.Data[i] += 0.2
		}
	}
	checkLayerGradients(t, l, x, 1e-2)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	l := NewMaxPool2D("pool", 2)
	checkLayerGradients(t, l, randomInput(rng, 2, 2, 4, 4), 1e-2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	l := NewGlobalAvgPool("gap")
	checkLayerGradients(t, l, randomInput(rng, 2, 3, 4, 4), 1e-2)
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	body := []Layer{
		NewConv2D(rng, "res.conv1", 2, 2, 3, 1, 1),
		NewReLU("res.relu"),
	}
	l := NewResidual("res", body, nil)
	checkLayerGradients(t, l, randomInput(rng, 2, 2, 4, 4), 1e-2)
}

func TestResidualProjectionGradients(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 11))
	body := []Layer{NewConv2D(rng, "res2.conv1", 2, 4, 3, 2, 1)}
	skip := []Layer{NewConv2D(rng, "res2.down", 2, 4, 1, 2, 0)}
	l := NewResidual("res2", body, skip)
	checkLayerGradients(t, l, randomInput(rng, 2, 2, 4, 4), 1e-2)
}

func TestGemmAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for _, dims := range [][3]int{{3, 4, 5}, {1, 7, 2}, {64, 32, 48}, {100, 1, 100}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		want := make([]float32, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float32
				for p := 0; p < k; p++ {
					s += a[i*k+p] * b[p*n+j]
				}
				want[i*n+j] = s
			}
		}
		got := make([]float32, m*n)
		Gemm(a, m, k, b, n, got, false)
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-3 {
				t.Fatalf("%v: Gemm[%d] = %v want %v", dims, i, got[i], want[i])
			}
		}
		// GemmTA: Aᵀ·B with A stored k×m.
		at := make([]float32, k*m)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				at[p*m+i] = a[i*k+p]
			}
		}
		gotTA := make([]float32, m*n)
		GemmTA(at, k, m, b, n, gotTA, false)
		for i := range want {
			if math.Abs(float64(gotTA[i]-want[i])) > 1e-3 {
				t.Fatalf("%v: GemmTA[%d] = %v want %v", dims, i, gotTA[i], want[i])
			}
		}
		// GemmTB: A·Bᵀ with B stored n×k.
		bt := make([]float32, n*k)
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				bt[j*k+p] = b[p*n+j]
			}
		}
		gotTB := make([]float32, m*n)
		GemmTB(a, m, k, bt, n, gotTB, false)
		for i := range want {
			if math.Abs(float64(gotTB[i]-want[i])) > 1e-3 {
				t.Fatalf("%v: GemmTB[%d] = %v want %v", dims, i, gotTB[i], want[i])
			}
		}
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.FromData([]float32{2, 0, 0, 0, 3, 0}, 2, 3)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 1})
	if loss < 0 || loss > 1 {
		t.Fatalf("loss %v implausible for confident correct logits", loss)
	}
	// Gradient rows must sum to ~0 (softmax property).
	for s := 0; s < 2; s++ {
		var sum float64
		for j := 0; j < 3; j++ {
			sum += float64(grad.Data[s*3+j])
		}
		if math.Abs(sum) > 1e-6 {
			t.Fatalf("grad row %d sums to %v", s, sum)
		}
	}
	// Numerical check on one logit.
	const eps = 1e-3
	logits.Data[1] += eps
	lp, _ := SoftmaxCrossEntropy(logits, []int{0, 1})
	logits.Data[1] -= 2 * eps
	lm, _ := SoftmaxCrossEntropy(logits, []int{0, 1})
	num := (lp - lm) / (2 * eps)
	if math.Abs(num-float64(grad.Data[1])) > 1e-3 {
		t.Fatalf("numeric %v analytic %v", num, grad.Data[1])
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromData([]float32{1, 2, 0, 5, 1, 1}, 2, 3)
	if got := Accuracy(logits, []int{1, 0}); got != 1 {
		t.Fatalf("accuracy = %v want 1", got)
	}
	if got := Accuracy(logits, []int{0, 0}); got != 0.5 {
		t.Fatalf("accuracy = %v want 0.5", got)
	}
}

func TestSGDMomentumStep(t *testing.T) {
	p := &Param{Name: "w", Val: tensor.FromData([]float32{1}, 1), Grad: tensor.FromData([]float32{2}, 1)}
	opt := NewSGD(0.1, 0.9, 0)
	opt.Step([]*Param{p})
	if math.Abs(float64(p.Val.Data[0])-0.8) > 1e-6 {
		t.Fatalf("after step 1: %v want 0.8", p.Val.Data[0])
	}
	// Second step with same gradient: velocity = 0.9*2+2 = 3.8.
	opt.Step([]*Param{p})
	if math.Abs(float64(p.Val.Data[0])-(0.8-0.38)) > 1e-6 {
		t.Fatalf("after step 2: %v want 0.42", p.Val.Data[0])
	}
}

func TestSGDSkipsNonTrainable(t *testing.T) {
	p := &Param{Name: "running", Val: tensor.FromData([]float32{5}, 1)}
	NewSGD(1, 0, 0).Step([]*Param{p})
	if p.Val.Data[0] != 5 {
		t.Fatal("non-trainable param was updated")
	}
}

func TestStateDictRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	net := NewNetwork("tiny",
		NewConv2D(rng, "c1", 1, 2, 3, 1, 1),
		NewBatchNorm2D("bn1", 2),
		NewReLU("r1"),
		NewFlatten("fl"),
		NewDense(rng, "fc", 2*4*4, 3),
	)
	sd := net.StateDict()
	// Kinds present: weights, biases, running stats, scalar meta.
	kinds := map[tensor.Kind]bool{}
	for _, e := range sd.Entries() {
		kinds[e.Kind] = true
	}
	for _, k := range []tensor.Kind{tensor.KindWeight, tensor.KindBias, tensor.KindRunningStat, tensor.KindScalarMeta} {
		if !kinds[k] {
			t.Fatalf("state dict missing kind %v", k)
		}
	}
	// Perturb, reload, verify restoration.
	for _, p := range net.Params() {
		for i := range p.Val.Data {
			p.Val.Data[i] += 1
		}
	}
	if err := net.LoadStateDict(sd); err != nil {
		t.Fatal(err)
	}
	sd2 := net.StateDict()
	d, err := sd2.MaxAbsDiff(sd)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("reload not exact: %v", d)
	}
	// Missing entry errors.
	bad := tensor.NewStateDict()
	if err := net.LoadStateDict(bad); err == nil {
		t.Fatal("want error for missing entries")
	}
}

func TestNetworkLearnsXORLikeTask(t *testing.T) {
	// End-to-end sanity: a small dense net must fit a nonlinear synthetic
	// task, proving forward/backward/SGD compose correctly.
	rng := rand.New(rand.NewPCG(15, 16))
	net := NewNetwork("mlp",
		NewDense(rng, "fc1", 2, 16),
		NewReLU("r1"),
		NewDense(rng, "fc2", 16, 2),
	)
	opt := NewSGD(0.1, 0.9, 0)
	n := 128
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x.Data[i*2], x.Data[i*2+1] = float32(a), float32(b)
		if (a > 0) != (b > 0) {
			labels[i] = 1
		}
	}
	var acc float64
	for epoch := 0; epoch < 200; epoch++ {
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(logits, labels)
		net.Backward(grad)
		opt.Step(net.Params())
		acc = Accuracy(logits, labels)
		if acc > 0.95 {
			break
		}
	}
	if acc < 0.9 {
		t.Fatalf("XOR task accuracy %.2f after training, want >= 0.9", acc)
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 18))
	bn := NewBatchNorm2D("bn", 1)
	// Feed batches with mean 3, std 2; running stats should approach them.
	for i := 0; i < 200; i++ {
		x := tensor.New(8, 1, 4, 4)
		for j := range x.Data {
			x.Data[j] = float32(3 + 2*rng.NormFloat64())
		}
		bn.Forward(x, true)
	}
	if m := float64(bn.RunMean.Val.Data[0]); math.Abs(m-3) > 0.3 {
		t.Fatalf("running mean %v want ~3", m)
	}
	if v := float64(bn.RunVar.Val.Data[0]); math.Abs(v-4) > 1.2 {
		t.Fatalf("running var %v want ~4", v)
	}
	if bn.NumBatches.Val.Data[0] != 200 {
		t.Fatalf("num_batches %v want 200", bn.NumBatches.Val.Data[0])
	}
	// Eval mode must use running stats (output mean ≈ beta = 0).
	x := tensor.New(4, 1, 4, 4)
	for j := range x.Data {
		x.Data[j] = float32(3 + 2*rng.NormFloat64())
	}
	y := bn.Forward(x, false)
	var mean float64
	for _, v := range y.Data {
		mean += float64(v)
	}
	mean /= float64(len(y.Data))
	if math.Abs(mean) > 0.3 {
		t.Fatalf("eval-mode output mean %v want ~0", mean)
	}
}

func BenchmarkGemm256(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	const m, k, n = 256, 256, 256
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range bb {
		bb[i] = float32(rng.NormFloat64())
	}
	b.SetBytes(int64(m) * k * n / 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(a, m, k, bb, n, c, false)
	}
}
