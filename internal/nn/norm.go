package nn

import (
	"math"

	"repro/internal/tensor"
)

// BatchNorm2D normalizes per channel over (N, H, W). Its running mean and
// variance buffers are exactly the non-trainable metadata that FedSZ's
// partitioner must route to the lossless path (paper §V-C), so this layer
// is load-bearing for the pipeline's realism, not just for accuracy.
type BatchNorm2D struct {
	name     string
	C        int
	Momentum float64
	Eps      float64

	Gamma, Beta     *Param // trainable scale/shift, [C]
	RunMean, RunVar *Param // running statistics, [C]
	NumBatches      *Param // scalar counter (PyTorch's num_batches_tracked)

	// Training caches.
	x          *tensor.Tensor
	xhat       []float32
	mean, vstd []float64 // batch mean, 1/sqrt(var+eps)
}

// NewBatchNorm2D constructs the layer with gamma=1, beta=0, runVar=1.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		name: name, C: c, Momentum: 0.1, Eps: 1e-5,
		Gamma:      &Param{Name: name + ".weight", Kind: tensor.KindWeight, Val: tensor.New(c), Grad: tensor.New(c)},
		Beta:       &Param{Name: name + ".bias", Kind: tensor.KindBias, Val: tensor.New(c), Grad: tensor.New(c)},
		RunMean:    &Param{Name: name + ".running_mean", Kind: tensor.KindRunningStat, Val: tensor.New(c)},
		RunVar:     &Param{Name: name + ".running_var", Kind: tensor.KindRunningStat, Val: tensor.New(c)},
		NumBatches: &Param{Name: name + ".num_batches_tracked", Kind: tensor.KindScalarMeta, Val: tensor.New(1)},
	}
	bn.Gamma.Val.Fill(1)
	bn.RunVar.Val.Fill(1)
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.name }

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param {
	return []*Param{bn.Gamma, bn.Beta, bn.RunMean, bn.RunVar, bn.NumBatches}
}

// FLOPs implements Layer.
func (bn *BatchNorm2D) FLOPs(in []int) (int64, []int) {
	n := int64(1)
	for _, d := range in {
		n *= int64(d)
	}
	return 2 * n, in
}

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	plane := h * w
	y := tensor.New(x.Shape...)
	if !train {
		for ch := 0; ch < c; ch++ {
			m := float64(bn.RunMean.Val.Data[ch])
			inv := 1 / math.Sqrt(float64(bn.RunVar.Val.Data[ch])+bn.Eps)
			g, b := float64(bn.Gamma.Val.Data[ch]), float64(bn.Beta.Val.Data[ch])
			for s := 0; s < n; s++ {
				src := x.Data[(s*c+ch)*plane : (s*c+ch+1)*plane]
				dst := y.Data[(s*c+ch)*plane : (s*c+ch+1)*plane]
				for i, v := range src {
					dst[i] = float32((float64(v)-m)*inv*g + b)
				}
			}
		}
		return y
	}

	bn.x = x
	if cap(bn.xhat) < len(x.Data) {
		bn.xhat = make([]float32, len(x.Data))
	}
	bn.xhat = bn.xhat[:len(x.Data)]
	if bn.mean == nil {
		bn.mean = make([]float64, c)
		bn.vstd = make([]float64, c)
	}
	count := float64(n * plane)
	for ch := 0; ch < c; ch++ {
		var sum, sq float64
		for s := 0; s < n; s++ {
			src := x.Data[(s*c+ch)*plane : (s*c+ch+1)*plane]
			for _, v := range src {
				fv := float64(v)
				sum += fv
				sq += fv * fv
			}
		}
		m := sum / count
		variance := sq/count - m*m
		if variance < 0 {
			variance = 0
		}
		inv := 1 / math.Sqrt(variance+bn.Eps)
		bn.mean[ch], bn.vstd[ch] = m, inv
		g, b := float64(bn.Gamma.Val.Data[ch]), float64(bn.Beta.Val.Data[ch])
		for s := 0; s < n; s++ {
			base := (s*c + ch) * plane
			for i := 0; i < plane; i++ {
				xh := (float64(x.Data[base+i]) - m) * inv
				bn.xhat[base+i] = float32(xh)
				y.Data[base+i] = float32(xh*g + b)
			}
		}
		// Running statistics (unbiased variance, as PyTorch).
		unbiased := variance
		if count > 1 {
			unbiased = variance * count / (count - 1)
		}
		bn.RunMean.Val.Data[ch] = float32((1-bn.Momentum)*float64(bn.RunMean.Val.Data[ch]) + bn.Momentum*m)
		bn.RunVar.Val.Data[ch] = float32((1-bn.Momentum)*float64(bn.RunVar.Val.Data[ch]) + bn.Momentum*unbiased)
	}
	bn.NumBatches.Val.Data[0]++
	return y
}

// Backward implements Layer.
func (bn *BatchNorm2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := dy.Shape[0], dy.Shape[1], dy.Shape[2], dy.Shape[3]
	plane := h * w
	count := float64(n * plane)
	dx := tensor.New(dy.Shape...)
	for ch := 0; ch < c; ch++ {
		g := float64(bn.Gamma.Val.Data[ch])
		inv := bn.vstd[ch]
		var sumDy, sumDyXhat float64
		for s := 0; s < n; s++ {
			base := (s*c + ch) * plane
			for i := 0; i < plane; i++ {
				d := float64(dy.Data[base+i])
				sumDy += d
				sumDyXhat += d * float64(bn.xhat[base+i])
			}
		}
		bn.Beta.Grad.Data[ch] += float32(sumDy)
		bn.Gamma.Grad.Data[ch] += float32(sumDyXhat)
		for s := 0; s < n; s++ {
			base := (s*c + ch) * plane
			for i := 0; i < plane; i++ {
				d := float64(dy.Data[base+i])
				xh := float64(bn.xhat[base+i])
				dx.Data[base+i] = float32(g * inv / count * (count*d - sumDy - xh*sumDyXhat))
			}
		}
	}
	return dx
}
