package nn

import (
	"repro/internal/tensor"
)

// MaxPool2D applies k×k max pooling with stride k.
type MaxPool2D struct {
	name    string
	K       int
	argmax  []int32
	inShape []int
}

// NewMaxPool2D constructs the layer.
func NewMaxPool2D(name string, k int) *MaxPool2D { return &MaxPool2D{name: name, K: k} }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// FLOPs implements Layer.
func (p *MaxPool2D) FLOPs(in []int) (int64, []int) {
	return 0, []int{in[0], in[1] / p.K, in[2] / p.K}
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH, outW := h/p.K, w/p.K
	y := tensor.New(n, c, outH, outW)
	if train {
		p.inShape = append([]int(nil), x.Shape...)
		if cap(p.argmax) < y.NumElems() {
			p.argmax = make([]int32, y.NumElems())
		}
		p.argmax = p.argmax[:y.NumElems()]
	}
	oi := 0
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			src := x.Data[(s*c+ch)*h*w:]
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := float32(0)
					bestIdx := int32(-1)
					for ky := 0; ky < p.K; ky++ {
						for kx := 0; kx < p.K; kx++ {
							idx := (oy*p.K+ky)*w + ox*p.K + kx
							if bestIdx < 0 || src[idx] > best {
								best = src[idx]
								bestIdx = int32(idx)
							}
						}
					}
					y.Data[oi] = best
					if train {
						p.argmax[oi] = int32((s*c+ch)*h*w) + bestIdx
					}
					oi++
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inShape...)
	for i, v := range dy.Data {
		dx.Data[p.argmax[i]] += v
	}
	return dx
}

// GlobalAvgPool averages each channel's spatial plane, producing [N, C].
type GlobalAvgPool struct {
	name    string
	inShape []int
}

// NewGlobalAvgPool constructs the layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return p.name }

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// FLOPs implements Layer.
func (p *GlobalAvgPool) FLOPs(in []int) (int64, []int) {
	return int64(in[0]) * int64(in[1]) * int64(in[2]), []int{in[0]}
}

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	plane := h * w
	if train {
		p.inShape = append([]int(nil), x.Shape...)
	}
	y := tensor.New(n, c)
	inv := 1 / float32(plane)
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			src := x.Data[(s*c+ch)*plane : (s*c+ch+1)*plane]
			var sum float32
			for _, v := range src {
				sum += v
			}
			y.Data[s*c+ch] = sum * inv
		}
	}
	return y
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(dy *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	plane := h * w
	dx := tensor.New(p.inShape...)
	inv := 1 / float32(plane)
	for s := 0; s < n; s++ {
		for ch := 0; ch < c; ch++ {
			g := dy.Data[s*c+ch] * inv
			dst := dx.Data[(s*c+ch)*plane : (s*c+ch+1)*plane]
			for i := range dst {
				dst[i] = g
			}
		}
	}
	return dx
}
