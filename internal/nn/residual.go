package nn

import (
	"repro/internal/tensor"
)

// Residual wraps an inner layer stack with a skip connection:
// y = body(x) + skip(x). skip is nil for an identity shortcut (shapes must
// match) or a projection stack (1×1 conv [+ BN]) when they don't — the
// ResNet basic-block and MobileNetV2 inverted-residual pattern.
type Residual struct {
	name string
	Body []Layer
	Skip []Layer
}

// NewResidual constructs the block. Pass skip == nil for identity.
func NewResidual(name string, body []Layer, skip []Layer) *Residual {
	return &Residual{name: name, Body: body, Skip: skip}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Params implements Layer.
func (r *Residual) Params() []*Param {
	var out []*Param
	for _, l := range r.Body {
		out = append(out, l.Params()...)
	}
	for _, l := range r.Skip {
		out = append(out, l.Params()...)
	}
	return out
}

// FLOPs implements Layer.
func (r *Residual) FLOPs(in []int) (int64, []int) {
	var total int64
	shape := in
	for _, l := range r.Body {
		f, out := l.FLOPs(shape)
		total += f
		shape = out
	}
	skipShape := in
	for _, l := range r.Skip {
		f, out := l.FLOPs(skipShape)
		total += f
		skipShape = out
	}
	return total, shape
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x
	for _, l := range r.Body {
		y = l.Forward(y, train)
	}
	s := x
	for _, l := range r.Skip {
		s = l.Forward(s, train)
	}
	out := tensor.New(y.Shape...)
	for i := range out.Data {
		out.Data[i] = y.Data[i] + s.Data[i]
	}
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	db := dy
	for i := len(r.Body) - 1; i >= 0; i-- {
		db = r.Body[i].Backward(db)
	}
	ds := dy
	for i := len(r.Skip) - 1; i >= 0; i-- {
		ds = r.Skip[i].Backward(ds)
	}
	dx := tensor.New(db.Shape...)
	for i := range dx.Data {
		dx.Data[i] = db.Data[i] + ds.Data[i]
	}
	return dx
}
