package nn

// SGD is stochastic gradient descent with classical momentum and optional
// L2 weight decay — the local optimizer FedAvg clients run (paper §VI-A).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param][]float32
}

// NewSGD constructs the optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param][]float32)}
}

// Step applies one update to all trainable parameters and leaves gradients
// untouched (call Network.ZeroGrads before the next accumulation).
func (o *SGD) Step(params []*Param) {
	lr := float32(o.LR)
	mom := float32(o.Momentum)
	wd := float32(o.WeightDecay)
	for _, p := range params {
		if !p.Trainable() {
			continue
		}
		v := o.velocity[p]
		if v == nil && mom != 0 {
			v = make([]float32, p.Val.NumElems())
			o.velocity[p] = v
		}
		for i := range p.Val.Data {
			g := p.Grad.Data[i]
			if wd != 0 {
				g += wd * p.Val.Data[i]
			}
			if mom != 0 {
				v[i] = mom*v[i] + g
				g = v[i]
			}
			p.Val.Data[i] -= lr * g
		}
	}
}
