package sched

// Pool observability: the buffer pools keep their own lock-free counters
// (see bufferPool.counters, recycledBytes); telemetry only needs to sample
// them at scrape time. GaugeFunc keeps the pools themselves free of any
// telemetry dependency on the Get/Put hot path.

import "repro/internal/telemetry"

// RegisterMetrics exports the package-wide pool counters on reg as lazy
// gauges. Call it once per registry from wiring code (servers, benches);
// re-registering on the same registry is a no-op thanks to the registry's
// get-or-create semantics.
func RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("fedsz_pool_hits_total",
		"Buffer pool Get calls served from a pooled buffer, by pool.",
		func() float64 { h, _ := BytePoolCounters(); return float64(h) },
		telemetry.L("pool", "bytes"))
	reg.GaugeFunc("fedsz_pool_misses_total",
		"Buffer pool Get calls that had to allocate, by pool.",
		func() float64 { _, m := BytePoolCounters(); return float64(m) },
		telemetry.L("pool", "bytes"))
	reg.GaugeFunc("fedsz_pool_hits_total",
		"Buffer pool Get calls served from a pooled buffer, by pool.",
		func() float64 { h, _ := FloatPoolCounters(); return float64(h) },
		telemetry.L("pool", "floats"))
	reg.GaugeFunc("fedsz_pool_misses_total",
		"Buffer pool Get calls that had to allocate, by pool.",
		func() float64 { _, m := FloatPoolCounters(); return float64(m) },
		telemetry.L("pool", "floats"))
	reg.GaugeFunc("fedsz_pool_recycled_bytes_total",
		"Total buffer bytes returned to the pools for reuse.",
		func() float64 { return float64(RecycledBytes()) })
}
