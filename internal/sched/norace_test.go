//go:build !race

package sched

const raceEnabled = false
