//go:build race

package sched

// raceEnabled reports that this test binary runs under the race detector,
// whose sync.Pool deliberately drops a random ~25% of Puts — retention
// assertions are meaningless there.
const raceEnabled = true
