// Package sched is the shared concurrency substrate for the FedSZ
// pipeline: a bounded worker pool with caller-runs semantics and
// sync.Pool-backed reuse of the large transient byte/float32 buffers the
// codecs churn through.
//
// The pool exists to give one *process-wide* (or one *batch-wide*)
// parallelism budget. The seed code bounded each Compress call by
// GOMAXPROCS independently, so an aggregation server decoding N client
// streams concurrently oversubscribed the machine N-fold. A sched.Pool is
// instead shared: the outer batch loop and the per-tensor fan-out inside
// each call draw helper tokens from the same budget, so total concurrency
// stays at the configured parallelism regardless of nesting.
//
// Deadlock freedom comes from the caller-runs discipline: ForEach never
// blocks waiting for a token — the calling goroutine always works through
// items itself, and helper goroutines join only when a token is free.
// Nested ForEach calls therefore cannot starve each other.
package sched

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded parallelism budget. The zero value is not usable; call
// NewPool. A nil *Pool is valid and runs everything serially.
type Pool struct {
	// sem holds helper tokens: parallelism-1 slots, since the calling
	// goroutine always participates as the +1.
	sem chan struct{}
}

// NewPool returns a pool with the given parallelism budget. Zero or
// negative selects GOMAXPROCS.
func NewPool(parallelism int) *Pool {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, parallelism-1)}
}

// Serial returns a pool that runs everything on the calling goroutine —
// equivalent to NewPool(1), useful as an explicit "no concurrency" choice.
func Serial() *Pool { return NewPool(1) }

var defaultPool = sync.OnceValue(func() *Pool { return NewPool(0) })

// Default returns the process-wide shared pool, sized to GOMAXPROCS.
// Every caller that does not bring its own pool shares this budget, so
// concurrent Compress/Decompress calls cannot oversubscribe the machine.
func Default() *Pool { return defaultPool() }

// Parallelism returns the pool's configured budget (1 for a nil pool).
func (p *Pool) Parallelism() int {
	if p == nil {
		return 1
	}
	return cap(p.sem) + 1
}

// ForEach runs fn(i) for every i in [0, n). The calling goroutine always
// participates; up to Parallelism()-1 helper goroutines join while tokens
// are free in the shared budget. ForEach returns when all n items are done.
// fn must be safe for concurrent invocation on distinct i.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || cap(p.sem) == 0 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	// Recruit helpers without blocking: each takes a token for its whole
	// drain of the index counter and releases it on exit.
	for h := 0; h < n-1; h++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.sem }()
				work()
			}()
			continue
		default:
		}
		break // budget exhausted; the caller covers the rest
	}
	work()
	wg.Wait()
}

// Group schedules independent tasks against the pool's helper budget
// without a barrier between submissions — the pipelining primitive behind
// decode-while-receiving: a reader goroutine submits tensor i's decode and
// immediately returns to reading tensor i+1 from the network.
//
// Go follows the same caller-runs discipline as ForEach: it never blocks
// waiting for a token. When the budget is exhausted the submitting
// goroutine runs the task inline, which stalls submission — exactly the
// backpressure a streaming ingester wants (the socket read pauses, TCP
// flow control pushes back on the sender) — and keeps nested use
// deadlock-free.
type Group struct {
	p  *Pool
	wg sync.WaitGroup
}

// Group returns a new task group drawing helpers from p (nil runs every
// task inline).
func (p *Pool) Group() *Group { return &Group{p: p} }

// Go runs fn on a helper goroutine when a budget token is free, otherwise
// inline on the calling goroutine. It never blocks waiting for capacity.
func (g *Group) Go(fn func()) {
	if g.p != nil && cap(g.p.sem) > 0 {
		select {
		case g.p.sem <- struct{}{}:
			g.wg.Add(1)
			go func() {
				defer g.wg.Done()
				defer func() { <-g.p.sem }()
				fn()
			}()
			return
		default:
		}
	}
	fn()
}

// Wait blocks until every task submitted so far has finished. Go may be
// called again afterwards; Wait must not run concurrently with Go.
func (g *Group) Wait() { g.wg.Wait() }

// maxPooledBytes caps what the buffer pools retain so a one-off giant
// model does not pin its buffers forever (64 MiB ≈ a 16 M-parameter
// partition, well above the per-tensor sizes the pipeline sees).
const maxPooledBytes = 64 << 20

var bytePool = sync.Pool{New: func() any { return new([]byte) }}

// GetBytes returns a zero-length byte slice with capacity at least n,
// reusing a pooled buffer when one is large enough. Pass the result to
// PutBytes when it is no longer referenced anywhere.
func GetBytes(n int) []byte {
	bp := bytePool.Get().(*[]byte)
	b := *bp
	*bp = nil
	bytePool.Put(bp)
	if cap(b) < n {
		return make([]byte, 0, n)
	}
	return b[:0]
}

// PutBytes recycles b for a future GetBytes. The caller must not retain
// any reference (including sub-slices) to b afterwards.
func PutBytes(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBytes {
		return
	}
	b = b[:0]
	bp := bytePool.Get().(*[]byte)
	*bp = b
	bytePool.Put(bp)
}

// readChunk is ReadFullPooled's growth step: allocation tracks bytes
// actually received, so a hostile length prefix cannot force a large
// up-front allocation.
const readChunk = 1 << 20

// ReadFullPooled reads exactly n bytes from r into a pooled buffer,
// growing it chunk-by-chunk with the data received — the untrusted-length
// receive discipline shared by the stream decoder and the wire de-framer.
// On success the caller owns the buffer and should recycle it via
// PutBytes; on error the buffer has already been recycled.
func ReadFullPooled(r io.Reader, n int) ([]byte, error) {
	buf := GetBytes(min(n, readChunk))
	for len(buf) < n {
		chunk := min(n-len(buf), readChunk)
		if cap(buf) < len(buf)+chunk {
			grown := GetBytes(max(2*cap(buf), len(buf)+chunk))
			grown = append(grown, buf...)
			PutBytes(buf)
			buf = grown
		}
		read := len(buf)
		buf = buf[:read+chunk]
		if _, err := io.ReadFull(r, buf[read:]); err != nil {
			PutBytes(buf)
			return nil, err
		}
	}
	return buf, nil
}

var floatPool = sync.Pool{New: func() any { return new([]float32) }}

// GetFloats returns a zero-length float32 slice with capacity at least n,
// reusing a pooled buffer when one is large enough.
func GetFloats(n int) []float32 {
	fp := floatPool.Get().(*[]float32)
	f := *fp
	*fp = nil
	floatPool.Put(fp)
	if cap(f) < n {
		return make([]float32, 0, n)
	}
	return f[:0]
}

// PutFloats recycles f for a future GetFloats. The caller must not retain
// any reference to f afterwards.
func PutFloats(f []float32) {
	if cap(f) == 0 || cap(f)*4 > maxPooledBytes {
		return
	}
	f = f[:0]
	fp := floatPool.Get().(*[]float32)
	*fp = f
	floatPool.Put(fp)
}
