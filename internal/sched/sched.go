// Package sched is the shared concurrency substrate for the FedSZ
// pipeline: a bounded worker pool with caller-runs semantics and
// sync.Pool-backed reuse of the large transient byte/float32 buffers the
// codecs churn through.
//
// The pool exists to give one *process-wide* (or one *batch-wide*)
// parallelism budget. The seed code bounded each Compress call by
// GOMAXPROCS independently, so an aggregation server decoding N client
// streams concurrently oversubscribed the machine N-fold. A sched.Pool is
// instead shared: the outer batch loop and the per-tensor fan-out inside
// each call draw helper tokens from the same budget, so total concurrency
// stays at the configured parallelism regardless of nesting.
//
// Deadlock freedom comes from the caller-runs discipline: ForEach never
// blocks waiting for a token — the calling goroutine always works through
// items itself, and helper goroutines join only when a token is free.
// Nested ForEach calls therefore cannot starve each other.
package sched

import (
	"context"
	"io"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded parallelism budget. The zero value is not usable; call
// NewPool. A nil *Pool is valid and runs everything serially.
type Pool struct {
	// sem holds helper tokens: parallelism-1 slots, since the calling
	// goroutine always participates as the +1.
	sem chan struct{}
}

// NewPool returns a pool with the given parallelism budget. Zero or
// negative selects GOMAXPROCS.
func NewPool(parallelism int) *Pool {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, parallelism-1)}
}

// Serial returns a pool that runs everything on the calling goroutine —
// equivalent to NewPool(1), useful as an explicit "no concurrency" choice.
func Serial() *Pool { return NewPool(1) }

var defaultPool = sync.OnceValue(func() *Pool { return NewPool(0) })

// Default returns the process-wide shared pool, sized to GOMAXPROCS.
// Every caller that does not bring its own pool shares this budget, so
// concurrent Compress/Decompress calls cannot oversubscribe the machine.
func Default() *Pool { return defaultPool() }

// Parallelism returns the pool's configured budget (1 for a nil pool).
func (p *Pool) Parallelism() int {
	if p == nil {
		return 1
	}
	return cap(p.sem) + 1
}

// Busy returns the number of helper tokens currently held (0 for a nil or
// quiescent pool) — the observable for asserting that an aborted ForEach
// or Group drained without leaking pool slots.
func (p *Pool) Busy() int {
	if p == nil {
		return 0
	}
	return len(p.sem)
}

// ForEach runs fn(i) for every i in [0, n). The calling goroutine always
// participates; up to Parallelism()-1 helper goroutines join while tokens
// are free in the shared budget. ForEach returns when all n items are done.
// fn must be safe for concurrent invocation on distinct i.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p == nil || cap(p.sem) == 0 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	// Recruit helpers without blocking: each takes a token for its whole
	// drain of the index counter and releases it on exit.
	for h := 0; h < n-1; h++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.sem }()
				work()
			}()
			continue
		default:
		}
		break // budget exhausted; the caller covers the rest
	}
	work()
	wg.Wait()
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done no
// new indices are claimed (items already running finish), and the context's
// error is returned. fn is never told about the cancellation — callers that
// need per-item errors should check ctx inside fn as well. A nil ctx is
// treated as context.Background().
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int)) error {
	if ctx == nil || ctx.Done() == nil {
		p.ForEach(n, fn)
		return nil
	}
	p.ForEach(n, func(i int) {
		if ctx.Err() != nil {
			return
		}
		fn(i)
	})
	return ctx.Err()
}

// Group schedules independent tasks against the pool's helper budget
// without a barrier between submissions — the pipelining primitive behind
// decode-while-receiving: a reader goroutine submits tensor i's decode and
// immediately returns to reading tensor i+1 from the network.
//
// Go follows the same caller-runs discipline as ForEach: it never blocks
// waiting for a token. When the budget is exhausted the submitting
// goroutine runs the task inline, which stalls submission — exactly the
// backpressure a streaming ingester wants (the socket read pauses, TCP
// flow control pushes back on the sender) — and keeps nested use
// deadlock-free.
type Group struct {
	p  *Pool
	wg sync.WaitGroup
}

// Group returns a new task group drawing helpers from p (nil runs every
// task inline).
func (p *Pool) Group() *Group { return &Group{p: p} }

// Go runs fn on a helper goroutine when a budget token is free, otherwise
// inline on the calling goroutine. It never blocks waiting for capacity.
func (g *Group) Go(fn func()) {
	if g.p != nil && cap(g.p.sem) > 0 {
		select {
		case g.p.sem <- struct{}{}:
			g.wg.Add(1)
			go func() {
				defer g.wg.Done()
				defer func() { <-g.p.sem }()
				fn()
			}()
			return
		default:
		}
	}
	fn()
}

// Wait blocks until every task submitted so far has finished. Go may be
// called again afterwards; Wait must not run concurrently with Go.
func (g *Group) Wait() { g.wg.Wait() }

// maxPooledBytes caps what the buffer pools retain so a one-off giant
// model does not pin its buffers forever (64 MiB ≈ a 16 M-parameter
// partition, well above the per-tensor sizes the pipeline sees).
const maxPooledBytes = 64 << 20

// recycledBytes counts the capacity (in bytes) of every buffer returned to
// any sched pool — the observable behind Stats.BytesRecycled: how much
// storage the zero-copy pipeline handed back for reuse instead of dropping
// to the garbage collector.
var recycledBytes atomic.Uint64

// RecycledBytes returns the process-wide total of buffer bytes recycled
// through the sched pools. Callers snapshot before/after a region and diff.
func RecycledBytes() uint64 { return recycledBytes.Load() }

// slicePool is the shared implementation behind the typed Get/Put pairs: a
// size-classed set of sync.Pools of slice headers handing out zero-length
// slices with enough capacity. Like the byte pool, requests round up to
// power-of-two element classes so a small tensor cannot "win" and pin a
// multi-megabyte reconstruction buffer. elemSize bounds retention in bytes,
// not elements, so every element type shares the same 64 MiB ceiling.
type slicePool[T any] struct {
	classes [maxClassBits + 1]sync.Pool
	// headers recycles *empty* slice headers: get pops a full header from
	// a class, takes its buffer, and parks the emptied header here for the
	// next put. Puts must never Get() from a class pool for a header — a
	// popped header still carries a live buffer, and overwriting it drops
	// that buffer (consecutive puts would then retain only one of k).
	headers  sync.Pool
	hits     atomic.Uint64
	misses   atomic.Uint64
	elemSize int
}

func newSlicePool[T any](elemSize int) *slicePool[T] {
	return &slicePool[T]{elemSize: elemSize}
}

func (p *slicePool[T]) get(n int) []T {
	if n*p.elemSize > maxPooledBytes {
		p.misses.Add(1)
		return make([]T, 0, n)
	}
	c := classFor(n)
	// Miss at the home class falls through to one probe of the next class
	// up: its floor-filed buffers always cover n, and a mixed-size workload
	// (one dominant tensor plus a tail of small ones) otherwise leaves the
	// small classes starved while adjacent classes hold idle buffers. The
	// worst-case handout is 4× the request — bounded, unlike the unclassed
	// pool this design replaced.
	for probe := c; probe <= c+1 && probe <= maxClassBits; probe++ {
		if sp, ok := p.classes[probe].Get().(*[]T); ok {
			s := *sp
			*sp = nil
			p.headers.Put(sp)
			if cap(s) >= n {
				p.hits.Add(1)
				return s[:0]
			}
		}
	}
	p.misses.Add(1)
	return make([]T, 0, 1<<c)
}

func (p *slicePool[T]) put(s []T) {
	// Buffers file under the class their capacity fully covers (floor of
	// log2 elements), so a get from that class always has enough room.
	// Classes below the get-side floor are never probed, so tiny buffers
	// are cheaper to drop than to file.
	if cap(s) < 1<<minClassBits || cap(s)*p.elemSize > maxPooledBytes {
		return
	}
	c := bits.Len(uint(cap(s))) - 1
	recycledBytes.Add(uint64(cap(s) * p.elemSize))
	s = s[:0]
	sp, _ := p.headers.Get().(*[]T)
	if sp == nil {
		sp = new([]T)
	}
	*sp = s
	p.classes[c].Put(sp)
}

func (p *slicePool[T]) counters() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

var (
	u16Pool = newSlicePool[uint16](2)
	u64Pool = newSlicePool[uint64](8)
	i32Pool = newSlicePool[int32](4)
	f64Pool = newSlicePool[float64](8)
)

// Byte buffers are the pipeline's highest-churn allocation (every tensor
// blob, wire frame, and lossless scratch passes through GetBytes), and
// under a streaming server the requested sizes are wildly mixed: 100-byte
// metadata sections next to multi-megabyte weight blobs. A single pool
// class degenerates there — a small request can "win" a huge buffer and
// pin it, or a big request can miss because the pool only holds small
// ones. GetBytes therefore rounds requests up to power-of-two size
// classes with one sync.Pool per class: requests only ever hit buffers of
// their own class, so many concurrent connections with mixed tensor sizes
// stop churning one shared free list.
const (
	// minClassBits floors the classes at 64 B; smaller buffers are cheaper
	// to allocate than to pool.
	minClassBits = 6
	// maxClassBits caps pooled retention at 64 MiB (== maxPooledBytes), so
	// a one-off giant model does not pin its buffers forever.
	maxClassBits = 26
)

type classedBytePool struct {
	classes [maxClassBits + 1]sync.Pool
	// headers parks emptied slice headers for reuse by put — see
	// slicePool.headers for why put must not pop class pools for headers.
	headers sync.Pool
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// classFor returns the smallest class whose buffers hold n bytes.
func classFor(n int) int {
	c := bits.Len(uint(n - 1))
	if n <= 1 {
		c = 0
	}
	if c < minClassBits {
		c = minClassBits
	}
	return c
}

func (p *classedBytePool) get(n int) []byte {
	if n > maxPooledBytes {
		p.misses.Add(1)
		return make([]byte, 0, n)
	}
	c := classFor(n)
	// One fallback probe of the next class up on a home-class miss — see
	// slicePool.get for the starvation pattern this breaks and the 4× cap
	// on handout amplification.
	for probe := c; probe <= c+1 && probe <= maxClassBits; probe++ {
		if sp, ok := p.classes[probe].Get().(*[]byte); ok {
			s := *sp
			*sp = nil
			p.headers.Put(sp)
			// Floor-capacity filing guarantees cap(s) >= 1<<probe >= n; the
			// check is defensive against a future filing change.
			if cap(s) >= n {
				p.hits.Add(1)
				return s[:0]
			}
		}
	}
	p.misses.Add(1)
	return make([]byte, 0, 1<<c)
}

func (p *classedBytePool) put(s []byte) {
	// Buffers file under the class their capacity fully covers (floor of
	// log2), so a future get from that class always has enough room even
	// when the capacity is not an exact power of two.
	if cap(s) < 1<<minClassBits || cap(s) > maxPooledBytes {
		return
	}
	c := bits.Len(uint(cap(s))) - 1
	recycledBytes.Add(uint64(cap(s)))
	s = s[:0]
	sp, _ := p.headers.Get().(*[]byte)
	if sp == nil {
		sp = new([]byte)
	}
	*sp = s
	p.classes[c].Put(sp)
}

var bytePool classedBytePool

// GetBytes returns a zero-length byte slice with capacity at least n,
// reusing a pooled buffer of n's power-of-two size class when one is
// available. Pass the result to PutBytes when it is no longer referenced
// anywhere.
func GetBytes(n int) []byte { return bytePool.get(n) }

// PutBytes recycles b for a future GetBytes. The caller must not retain
// any reference (including sub-slices) to b afterwards.
func PutBytes(b []byte) { bytePool.put(b) }

// BytePoolCounters reports the process-wide GetBytes hit/miss totals —
// the observable for deciding whether concurrent connections are churning
// the pools. Callers snapshot before/after a region and diff; under
// concurrency the delta attributes shared traffic approximately.
func BytePoolCounters() (hits, misses uint64) {
	return bytePool.hits.Load(), bytePool.misses.Load()
}

// GetUint16s returns a zero-length uint16 slice with capacity at least n —
// the scratch type the entropy stage moves quantization codes in.
func GetUint16s(n int) []uint16 { return u16Pool.get(n) }

// PutUint16s recycles s for a future GetUint16s. The caller must not retain
// any reference to s afterwards.
func PutUint16s(s []uint16) { u16Pool.put(s) }

// GetUint64s returns a zero-length uint64 slice with capacity at least n
// (Huffman frequency-count scratch).
func GetUint64s(n int) []uint64 { return u64Pool.get(n) }

// PutUint64s recycles s for a future GetUint64s. The caller must not retain
// any reference to s afterwards.
func PutUint64s(s []uint64) { u64Pool.put(s) }

// readChunk is ReadFullPooled's growth step: allocation tracks bytes
// actually received, so a hostile length prefix cannot force a large
// up-front allocation.
const readChunk = 1 << 20

// ReadFullPooled reads exactly n bytes from r into a pooled buffer,
// growing it chunk-by-chunk with the data received — the untrusted-length
// receive discipline shared by the stream decoder and the wire de-framer.
// On success the caller owns the buffer and should recycle it via
// PutBytes; on error the buffer has already been recycled.
func ReadFullPooled(r io.Reader, n int) ([]byte, error) {
	buf := GetBytes(min(n, readChunk))
	for len(buf) < n {
		chunk := min(n-len(buf), readChunk)
		if cap(buf) < len(buf)+chunk {
			grown := GetBytes(max(2*cap(buf), len(buf)+chunk))
			grown = append(grown, buf...)
			PutBytes(buf)
			buf = grown
		}
		read := len(buf)
		buf = buf[:read+chunk]
		if _, err := io.ReadFull(r, buf[read:]); err != nil {
			PutBytes(buf)
			return nil, err
		}
	}
	return buf, nil
}

var floatPool = newSlicePool[float32](4)

// GetFloats returns a zero-length float32 slice with capacity at least n,
// reusing a pooled buffer of n's power-of-two size class when one is
// available — the buffer type decoded tensors land in on the zero-copy
// decompress path.
func GetFloats(n int) []float32 { return floatPool.get(n) }

// PutFloats recycles f for a future GetFloats. The caller must not retain
// any reference to f afterwards.
func PutFloats(f []float32) { floatPool.put(f) }

// FloatPoolCounters reports the process-wide GetFloats hit/miss totals —
// the decode-output mirror of BytePoolCounters. Callers snapshot
// before/after a region and diff.
func FloatPoolCounters() (hits, misses uint64) { return floatPool.counters() }

// GetFloat64s returns a zero-length float64 slice with capacity at least n
// (interpolation-predictor reconstruction scratch).
func GetFloat64s(n int) []float64 { return f64Pool.get(n) }

// PutFloat64s recycles f for a future GetFloat64s. The caller must not
// retain any reference to f afterwards.
func PutFloat64s(f []float64) { f64Pool.put(f) }

// GetInt32s returns a zero-length int32 slice with capacity at least n
// (LZ hash-chain scratch).
func GetInt32s(n int) []int32 { return i32Pool.get(n) }

// PutInt32s recycles s for a future GetInt32s. The caller must not retain
// any reference to s afterwards.
func PutInt32s(s []int32) { i32Pool.put(s) }
