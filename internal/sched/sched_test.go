package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, par := range []int{1, 2, 4, 16} {
		p := NewPool(par)
		for _, n := range []int{0, 1, 2, 3, 17, 100, 1000} {
			seen := make([]atomic.Int32, n)
			p.ForEach(n, func(i int) { seen[i].Add(1) })
			for i := range seen {
				if got := seen[i].Load(); got != 1 {
					t.Fatalf("par=%d n=%d: index %d ran %d times", par, n, i, got)
				}
			}
		}
	}
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Parallelism() != 1 {
		t.Fatalf("nil pool parallelism %d", p.Parallelism())
	}
	sum := 0
	p.ForEach(10, func(i int) { sum += i }) // no race: must run on caller
	if sum != 45 {
		t.Fatalf("sum %d", sum)
	}
}

func TestConcurrencyStaysWithinBudget(t *testing.T) {
	const par = 4
	p := NewPool(par)
	var cur, peak atomic.Int32
	p.ForEach(200, func(i int) {
		c := cur.Add(1)
		for {
			pk := peak.Load()
			if c <= pk || peak.CompareAndSwap(pk, c) {
				break
			}
		}
		for j := 0; j < 1000; j++ { // hold the slot briefly
			_ = j
		}
		cur.Add(-1)
	})
	if pk := peak.Load(); pk > par {
		t.Fatalf("peak concurrency %d exceeds budget %d", pk, par)
	}
}

func TestNestedForEachDoesNotDeadlock(t *testing.T) {
	p := NewPool(2)
	var total atomic.Int64
	p.ForEach(8, func(i int) {
		p.ForEach(8, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 64 {
		t.Fatalf("total %d", total.Load())
	}
}

func TestSharedBudgetAcrossGoroutines(t *testing.T) {
	// Many goroutines hammering one pool must all complete (token leak or
	// lost-wakeup bugs would hang here and trip the test timeout).
	p := NewPool(3)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.ForEach(50, func(i int) { total.Add(1) })
		}()
	}
	wg.Wait()
	if total.Load() != 16*50 {
		t.Fatalf("total %d", total.Load())
	}
}

func TestGroupRunsEveryTask(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		p := NewPool(par)
		g := p.Group()
		var total atomic.Int64
		for i := 0; i < 300; i++ {
			g.Go(func() { total.Add(1) })
		}
		g.Wait()
		if total.Load() != 300 {
			t.Fatalf("par=%d: ran %d of 300 tasks", par, total.Load())
		}
	}
}

func TestGroupNilPoolRunsInline(t *testing.T) {
	var p *Pool
	g := p.Group()
	sum := 0
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() { sum += i }) // no race: must run on caller
	}
	g.Wait()
	if sum != 45 {
		t.Fatalf("sum %d", sum)
	}
}

func TestGroupStaysWithinBudget(t *testing.T) {
	const par = 3
	p := NewPool(par)
	g := p.Group()
	var cur, peak atomic.Int32
	for i := 0; i < 200; i++ {
		g.Go(func() {
			c := cur.Add(1)
			for {
				pk := peak.Load()
				if c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			for j := 0; j < 1000; j++ {
				_ = j
			}
			cur.Add(-1)
		})
	}
	g.Wait()
	if pk := peak.Load(); pk > par {
		t.Fatalf("peak concurrency %d exceeds budget %d", pk, par)
	}
}

func TestGroupNestedInForEachDoesNotDeadlock(t *testing.T) {
	p := NewPool(2)
	var total atomic.Int64
	p.ForEach(8, func(i int) {
		g := p.Group()
		for j := 0; j < 8; j++ {
			g.Go(func() { total.Add(1) })
		}
		g.Wait()
	})
	if total.Load() != 64 {
		t.Fatalf("total %d", total.Load())
	}
}

func TestGroupReusableAfterWait(t *testing.T) {
	p := NewPool(4)
	g := p.Group()
	var total atomic.Int64
	g.Go(func() { total.Add(1) })
	g.Wait()
	g.Go(func() { total.Add(1) })
	g.Wait()
	if total.Load() != 2 {
		t.Fatalf("total %d", total.Load())
	}
}

func TestBytePoolRoundTrip(t *testing.T) {
	b := GetBytes(100)
	if len(b) != 0 || cap(b) < 100 {
		t.Fatalf("len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	PutBytes(b)
	c := GetBytes(10)
	if len(c) != 0 {
		t.Fatalf("reused buffer not reset: len=%d", len(c))
	}
	PutBytes(nil) // must not panic
}

func TestFloatPoolRoundTrip(t *testing.T) {
	f := GetFloats(64)
	if len(f) != 0 || cap(f) < 64 {
		t.Fatalf("len=%d cap=%d", len(f), cap(f))
	}
	f = append(f, 1.5)
	PutFloats(f)
	g := GetFloats(8)
	if len(g) != 0 {
		t.Fatalf("reused buffer not reset: len=%d", len(g))
	}
	PutFloats(nil)
}

func TestUint16PoolRoundTrip(t *testing.T) {
	s := GetUint16s(128)
	if len(s) != 0 || cap(s) < 128 {
		t.Fatalf("len=%d cap=%d", len(s), cap(s))
	}
	s = append(s, 7)
	PutUint16s(s)
	g := GetUint16s(16)
	if len(g) != 0 {
		t.Fatalf("reused buffer not reset: len=%d", len(g))
	}
	PutUint16s(nil)
}

func TestUint64PoolRoundTrip(t *testing.T) {
	s := GetUint64s(32)
	if len(s) != 0 || cap(s) < 32 {
		t.Fatalf("len=%d cap=%d", len(s), cap(s))
	}
	s = append(s, 9)
	PutUint64s(s)
	g := GetUint64s(4)
	if len(g) != 0 {
		t.Fatalf("reused buffer not reset: len=%d", len(g))
	}
	PutUint64s(nil)
}

func BenchmarkForEachOverhead(b *testing.B) {
	p := NewPool(0)
	var sink atomic.Int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ForEach(16, func(j int) { sink.Add(1) })
	}
}

func TestForEachCtxCancelled(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	if err := p.ForEachCtx(ctx, 100, func(i int) { ran.Add(1) }); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a cancelled context", ran.Load())
	}
	if err := p.ForEachCtx(context.Background(), 10, func(i int) { ran.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Fatalf("live context ran %d of 10 items", ran.Load())
	}
}

func TestGetBytesSizeClasses(t *testing.T) {
	// A fresh pooled buffer is rounded up to its power-of-two class.
	b := GetBytes(1000)
	if cap(b) < 1024 {
		t.Fatalf("cap %d, want at least the 1024 class", cap(b))
	}
	PutBytes(b)
	// Same-class requests reuse pooled buffers. sync.Pool drops items
	// randomly under the race detector, so assert statistically: across
	// many put/get rounds at least one must hit, and every buffer handed
	// out is the exact class capacity.
	h0, _ := BytePoolCounters()
	for i := 0; i < 64; i++ {
		b2 := GetBytes(600)
		if cap(b2) < 1024 {
			t.Fatalf("reused cap %d, want at least the 1024 class", cap(b2))
		}
		PutBytes(b2)
	}
	if h1, _ := BytePoolCounters(); h1 == h0 {
		t.Fatal("64 same-class put/get rounds never hit the pool")
	}
	// A much larger class must never steal a small buffer: the handed-out
	// capacity is always the request's own class.
	big := GetBytes(1 << 20)
	if cap(big) < 1<<20 {
		t.Fatalf("big cap %d, want at least 1<<20", cap(big))
	}
	PutBytes(big)
	// Tiny buffers are not pooled at all.
	tiny := GetBytes(8)
	if cap(tiny) < 64 {
		t.Fatalf("tiny cap %d, want at least the floor class 64", cap(tiny))
	}
}

func TestPutBytesForeignCapacityFilesByFloor(t *testing.T) {
	// A buffer whose capacity is not a power of two files under the class
	// its capacity fully covers, so a later get still fits.
	odd := make([]byte, 0, 1536) // floor class 1024
	PutBytes(odd)
	got := GetBytes(900)
	if cap(got) < 900 {
		t.Fatalf("foreign buffer reused with cap %d for a 900-byte request", cap(got))
	}
	PutBytes(got)
}

// TestConsecutivePutsAllRetained locks the pool's header discipline: a
// fold-and-release loop (core.Release) puts a whole model's same-class
// buffers back-to-back, and every one of them must survive for the next
// round's gets — put must never pop a class pool for a slice header, since
// the popped header still carries a live buffer that would be dropped.
func TestConsecutivePutsAllRetained(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops random Puts; retention is not observable")
	}
	const k = 8
	const n = 100000 // distinctive class so other tests' buffers don't serve the gets
	bufs := make([][]float32, k)
	for i := range bufs {
		bufs[i] = GetFloats(n)
	}
	h0, _ := FloatPoolCounters()
	for _, b := range bufs {
		PutFloats(b)
	}
	for i := 0; i < k; i++ {
		GetFloats(n)
	}
	h1, _ := FloatPoolCounters()
	if hits := h1 - h0; hits != k {
		t.Fatalf("only %d of %d consecutively-released buffers survived the pool", hits, k)
	}
}

// TestCrossClassFallbackProbe locks the one-class-up probe: a request
// whose home class is empty must reuse an idle buffer from the adjacent
// larger class instead of allocating. This is the skewed-dict shape — one
// dominant tensor's buffers parked one class above a tail of smaller
// requests.
func TestCrossClassFallbackProbe(t *testing.T) {
	// 4 MiB buffer files under byte class 22; a 2 MiB request homes in
	// class 21 and must be served by the probe. sync.Pool drops items
	// randomly under the race detector, so assert statistically across
	// rounds (the served buffer refiles under class 22 each time).
	h0, _ := BytePoolCounters()
	big := make([]byte, 0, 4<<20)
	PutBytes(big)
	for i := 0; i < 64; i++ {
		b := GetBytes(2 << 20)
		if cap(b) < 2<<20 {
			t.Fatalf("cap %d below the 2 MiB request", cap(b))
		}
		PutBytes(b)
	}
	if h1, _ := BytePoolCounters(); h1 == h0 {
		t.Fatal("64 rounds against an adjacent-class buffer never hit the pool")
	}

	// Same discipline on the float pool (decode-output buffers).
	fh0, _ := FloatPoolCounters()
	PutFloats(make([]float32, 0, 1<<20))
	for i := 0; i < 64; i++ {
		f := GetFloats(1 << 19)
		if cap(f) < 1<<19 {
			t.Fatalf("float cap %d below the request", cap(f))
		}
		PutFloats(f)
	}
	if fh1, _ := FloatPoolCounters(); fh1 == fh0 {
		t.Fatal("float pool fallback probe never hit")
	}
}
