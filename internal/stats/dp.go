package stats

import (
	"math"
)

// Differential-privacy estimation — the paper's future-work direction
// (§VII-D / §VIII-B): if FedSZ's decompression error behaves like Laplace
// noise, the classic Laplace mechanism (Dwork et al., TCC 2006) maps a
// noise scale b and query sensitivity Δ to an ε-DP guarantee via
// ε = Δ / b. These helpers quantify that correspondence; they do NOT
// constitute a formal DP proof (the compression error is data-dependent,
// which the paper also cautions about).

// DPEstimate summarizes the Laplace-mechanism view of a compression-error
// vector.
type DPEstimate struct {
	// Fit is the Laplace fit of the error distribution.
	Fit LaplaceFit
	// Sensitivity is the assumed L1 sensitivity of the released quantity.
	Sensitivity float64
	// Epsilon is the ε the Laplace mechanism would need scale Fit.B for.
	Epsilon float64
	// KSLaplace / KSGauss measure how Laplacian the noise actually is.
	KSLaplace, KSGauss float64
}

// EstimateLaplaceDP fits the error vector and converts the fitted scale to
// an equivalent Laplace-mechanism ε for the given L1 sensitivity.
// Sensitivity must be positive.
func EstimateLaplaceDP(errs []float32, sensitivity float64) DPEstimate {
	if sensitivity <= 0 {
		panic("stats: sensitivity must be positive")
	}
	lf := FitLaplace(errs)
	gf := FitGaussian(errs)
	eps := math.Inf(1)
	if lf.B > 0 {
		eps = sensitivity / lf.B
	}
	return DPEstimate{
		Fit:         lf,
		Sensitivity: sensitivity,
		Epsilon:     eps,
		KSLaplace:   KSDistance(errs, lf.CDF),
		KSGauss:     KSDistance(errs, gf.CDF),
	}
}

// PlausiblyLaplacian reports whether the error vector is closer to its
// Laplace fit than to its Gaussian fit and the Laplace fit is tight enough
// (KS below threshold) for the ε estimate to be meaningful.
func (d DPEstimate) PlausiblyLaplacian(ksThreshold float64) bool {
	return d.KSLaplace < d.KSGauss && d.KSLaplace < ksThreshold
}

// NoiseScaleForEpsilon inverts the Laplace mechanism: the noise scale b
// required for ε-DP at the given L1 sensitivity. Callers can compare this
// to the scale a chosen error bound induces to pick a bound that provides
// a target privacy level "for free".
func NoiseScaleForEpsilon(sensitivity, epsilon float64) float64 {
	if sensitivity <= 0 || epsilon <= 0 {
		panic("stats: sensitivity and epsilon must be positive")
	}
	return sensitivity / epsilon
}
