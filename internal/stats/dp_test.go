package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestEstimateLaplaceDPOnSyntheticNoise(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	// Laplace(0, 0.02) noise with sensitivity 1: ε should estimate ~50.
	errs := laplaceSample(rng, 0, 0.02, 30000)
	d := EstimateLaplaceDP(errs, 1)
	if math.Abs(d.Epsilon-50) > 5 {
		t.Fatalf("epsilon %v want ~50", d.Epsilon)
	}
	if !d.PlausiblyLaplacian(0.05) {
		t.Fatalf("true Laplace noise rejected: KS(L)=%v KS(G)=%v", d.KSLaplace, d.KSGauss)
	}
}

func TestGaussianNoiseNotPlausiblyLaplacian(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	errs := gaussSample(rng, 0, 0.02, 30000)
	d := EstimateLaplaceDP(errs, 1)
	if d.KSLaplace >= d.KSGauss {
		// Acceptable only if the KS margin makes Plausibly false anyway.
		t.Logf("KS(L)=%v KS(G)=%v", d.KSLaplace, d.KSGauss)
	}
	if d.PlausiblyLaplacian(0.01) {
		t.Fatal("Gaussian noise should not pass a tight Laplacian check")
	}
}

func TestNoiseScaleForEpsilonInverse(t *testing.T) {
	b := NoiseScaleForEpsilon(2, 10) // Δ=2, ε=10 → b=0.2
	if math.Abs(b-0.2) > 1e-12 {
		t.Fatalf("b = %v want 0.2", b)
	}
	// Round trip: a Laplace fit at that scale recovers ε.
	rng := rand.New(rand.NewPCG(5, 6))
	errs := laplaceSample(rng, 0, b, 30000)
	d := EstimateLaplaceDP(errs, 2)
	if math.Abs(d.Epsilon-10) > 1 {
		t.Fatalf("round-trip epsilon %v want ~10", d.Epsilon)
	}
}

func TestDPValidation(t *testing.T) {
	for _, f := range []func(){
		func() { EstimateLaplaceDP([]float32{1}, 0) },
		func() { NoiseScaleForEpsilon(0, 1) },
		func() { NoiseScaleForEpsilon(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic for non-positive parameter")
				}
			}()
			f()
		}()
	}
}

func TestEpsilonTracksErrorBound(t *testing.T) {
	// Looser bounds inject more noise → smaller ε (more privacy). This is
	// the qualitative relationship §VII-D suggests exploiting.
	rng := rand.New(rand.NewPCG(7, 8))
	small := EstimateLaplaceDP(laplaceSample(rng, 0, 0.01, 20000), 1)
	large := EstimateLaplaceDP(laplaceSample(rng, 0, 0.1, 20000), 1)
	if large.Epsilon >= small.Epsilon {
		t.Fatalf("more noise must mean smaller epsilon: %v vs %v", large.Epsilon, small.Epsilon)
	}
}
