// Package stats provides the statistics toolkit behind the paper's
// distribution figures: summaries, histograms, Laplace and Gaussian fits,
// and Kolmogorov–Smirnov distances. Figure 10's observation — that FedSZ's
// decompression error is approximately Laplacian — is reproduced by fitting
// both families to the error vector and comparing KS distances.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic moments of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	MeanAbs   float64
}

// Summarize computes a Summary (zero value for empty input).
func Summarize(data []float32) Summary {
	if len(data) == 0 {
		return Summary{}
	}
	s := Summary{N: len(data), Min: float64(data[0]), Max: float64(data[0])}
	var sum, sq, absSum float64
	for _, v := range data {
		f := float64(v)
		sum += f
		sq += f * f
		absSum += math.Abs(f)
		if f < s.Min {
			s.Min = f
		}
		if f > s.Max {
			s.Max = f
		}
	}
	s.Mean = sum / float64(s.N)
	variance := sq/float64(s.N) - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Std = math.Sqrt(variance)
	s.MeanAbs = absSum / float64(s.N)
	return s
}

// Histogram is a fixed-bin density estimate.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram bins data into `bins` equal-width buckets over [lo, hi];
// out-of-range samples clamp to the edge bins.
func NewHistogram(data []float32, lo, hi float64, bins int) *Histogram {
	if bins < 1 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram spec [%g,%g)/%d", lo, hi, bins))
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, v := range data {
		idx := int((float64(v) - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		h.Counts[idx]++
		h.Total++
	}
	return h
}

// Density returns the normalized density of bin i.
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / float64(h.Total) / width
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// LaplaceFit is the maximum-likelihood Laplace(μ, b): μ = median,
// b = mean |x − μ|.
type LaplaceFit struct {
	Mu, B float64
}

// FitLaplace estimates the parameters.
func FitLaplace(data []float32) LaplaceFit {
	if len(data) == 0 {
		return LaplaceFit{}
	}
	sorted := make([]float64, len(data))
	for i, v := range data {
		sorted[i] = float64(v)
	}
	sort.Float64s(sorted)
	mu := median(sorted)
	var sum float64
	for _, v := range sorted {
		sum += math.Abs(v - mu)
	}
	b := sum / float64(len(sorted))
	if b == 0 {
		b = math.SmallestNonzeroFloat64
	}
	return LaplaceFit{Mu: mu, B: b}
}

// CDF evaluates the Laplace cumulative distribution.
func (f LaplaceFit) CDF(x float64) float64 {
	if x < f.Mu {
		return 0.5 * math.Exp((x-f.Mu)/f.B)
	}
	return 1 - 0.5*math.Exp(-(x-f.Mu)/f.B)
}

// GaussianFit is the ML Gaussian (mean, std).
type GaussianFit struct {
	Mu, Sigma float64
}

// FitGaussian estimates the parameters.
func FitGaussian(data []float32) GaussianFit {
	s := Summarize(data)
	sigma := s.Std
	if sigma == 0 {
		sigma = math.SmallestNonzeroFloat64
	}
	return GaussianFit{Mu: s.Mean, Sigma: sigma}
}

// CDF evaluates the Gaussian cumulative distribution.
func (f GaussianFit) CDF(x float64) float64 {
	return 0.5 * (1 + math.Erf((x-f.Mu)/(f.Sigma*math.Sqrt2)))
}

// KSDistance computes the Kolmogorov–Smirnov statistic between the
// empirical distribution of data and a model CDF.
func KSDistance(data []float32, cdf func(float64) float64) float64 {
	n := len(data)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	for i, v := range data {
		sorted[i] = float64(v)
	}
	sort.Float64s(sorted)
	var d float64
	for i, x := range sorted {
		c := cdf(x)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		d = math.Max(d, math.Max(math.Abs(c-lo), math.Abs(c-hi)))
	}
	return d
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func Quantile(data []float32, q float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sorted := make([]float64, len(data))
	for i, v := range data {
		sorted[i] = float64(v)
	}
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Errors returns the element-wise difference recon − orig, the vector the
// DP analysis (Fig. 10) studies.
func Errors(orig, recon []float32) []float32 {
	if len(orig) != len(recon) {
		panic(fmt.Sprintf("stats: length mismatch %d != %d", len(orig), len(recon)))
	}
	out := make([]float32, len(orig))
	for i := range orig {
		out[i] = recon[i] - orig[i]
	}
	return out
}
