package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func laplaceSample(rng *rand.Rand, mu, b float64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(mu + b*(rng.ExpFloat64()-rng.ExpFloat64()))
	}
	return out
}

func gaussSample(rng *rand.Rand, mu, sigma float64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(mu + sigma*rng.NormFloat64())
	}
	return out
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float32{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(1.25)) > 1e-9 {
		t.Fatalf("std %v", s.Std)
	}
	if s.MeanAbs != 2.5 {
		t.Fatalf("meanAbs %v", s.MeanAbs)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float32{-1.5, -0.5, 0, 0.5, 2}, -1, 1, 4)
	if h.Total != 5 {
		t.Fatalf("total %d", h.Total)
	}
	// Bins: [-1,-0.5) [-0.5,0) [0,0.5) [0.5,1). -1.5 clamps into bin 0;
	// -0.5, 0, 0.5 land on left edges; 2 clamps into bin 3.
	want := []int{1, 1, 1, 2}
	for i := range want {
		if h.Counts[i] != want[i] {
			t.Fatalf("counts %v want %v", h.Counts, want)
		}
	}
	// Density integrates to 1.
	var area float64
	width := 0.5
	for i := range h.Counts {
		area += h.Density(i) * width
	}
	if math.Abs(area-1) > 1e-9 {
		t.Fatalf("density area %v", area)
	}
	if got := h.BinCenter(0); math.Abs(got+0.75) > 1e-9 {
		t.Fatalf("bin center %v", got)
	}
}

func TestFitLaplaceRecoverParams(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	data := laplaceSample(rng, 0.3, 0.05, 50000)
	f := FitLaplace(data)
	if math.Abs(f.Mu-0.3) > 0.01 {
		t.Fatalf("mu %v want ~0.3", f.Mu)
	}
	if math.Abs(f.B-0.05) > 0.005 {
		t.Fatalf("b %v want ~0.05", f.B)
	}
}

func TestFitGaussianRecoverParams(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	data := gaussSample(rng, -1, 0.2, 50000)
	f := FitGaussian(data)
	if math.Abs(f.Mu+1) > 0.01 || math.Abs(f.Sigma-0.2) > 0.01 {
		t.Fatalf("fit %+v", f)
	}
}

func TestCDFProperties(t *testing.T) {
	l := LaplaceFit{Mu: 0, B: 1}
	if math.Abs(l.CDF(0)-0.5) > 1e-12 {
		t.Fatal("Laplace CDF(mu) != 0.5")
	}
	if l.CDF(-50) > 1e-9 || l.CDF(50) < 1-1e-9 {
		t.Fatal("Laplace CDF tails wrong")
	}
	g := GaussianFit{Mu: 0, Sigma: 1}
	if math.Abs(g.CDF(0)-0.5) > 1e-12 {
		t.Fatal("Gaussian CDF(mu) != 0.5")
	}
	// Monotonicity spot check.
	prev := -1.0
	for x := -3.0; x <= 3; x += 0.25 {
		c := g.CDF(x)
		if c < prev {
			t.Fatal("Gaussian CDF not monotone")
		}
		prev = c
	}
}

func TestKSDiscriminatesLaplaceFromGaussian(t *testing.T) {
	// The Figure 10 methodology: Laplace-distributed data must be closer
	// (in KS distance) to its Laplace fit than to its Gaussian fit.
	rng := rand.New(rand.NewPCG(5, 6))
	data := laplaceSample(rng, 0, 0.1, 20000)
	lf := FitLaplace(data)
	gf := FitGaussian(data)
	dl := KSDistance(data, lf.CDF)
	dg := KSDistance(data, gf.CDF)
	if dl >= dg {
		t.Fatalf("KS(laplace)=%.4f should beat KS(gauss)=%.4f on Laplacian data", dl, dg)
	}
	// And the reverse for Gaussian data.
	data = gaussSample(rng, 0, 0.1, 20000)
	lf = FitLaplace(data)
	gf = FitGaussian(data)
	dl = KSDistance(data, lf.CDF)
	dg = KSDistance(data, gf.CDF)
	if dg >= dl {
		t.Fatalf("KS(gauss)=%.4f should beat KS(laplace)=%.4f on Gaussian data", dg, dl)
	}
}

func TestKSPerfectFitIsSmall(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	data := gaussSample(rng, 0, 1, 10000)
	f := FitGaussian(data)
	if d := KSDistance(data, f.CDF); d > 0.02 {
		t.Fatalf("KS %v too large for a correct fit", d)
	}
}

func TestQuantile(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5}
	if Quantile(data, 0) != 1 || Quantile(data, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if got := Quantile(data, 0.5); got != 3 {
		t.Fatalf("median %v", got)
	}
	if got := Quantile(data, 0.25); got != 2 {
		t.Fatalf("q25 %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

func TestErrors(t *testing.T) {
	e := Errors([]float32{1, 2}, []float32{1.5, 1.5})
	if e[0] != 0.5 || e[1] != -0.5 {
		t.Fatalf("errors %v", e)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Errors([]float32{1}, []float32{1, 2})
}
