// Package sz2 is a pure-Go reimplementation of the SZ2 error-bounded lossy
// compressor (Liang et al., IEEE Big Data 2018) specialized for the 1-D
// float32 arrays FedSZ produces by flattening model weight tensors.
//
// Pipeline (mirroring the C library's design):
//
//  1. Split the array into fixed-size blocks.
//  2. Per block, choose between a 1-D Lorenzo predictor (previous
//     reconstructed value) and a per-block linear regression predictor,
//     whichever yields smaller expected residuals (SZ2's hybrid design).
//  3. Quantize prediction residuals into 2·eb-wide bins; residuals outside
//     the code range become escape-coded IEEE-754 literals.
//  4. Entropy-code the quantization codes with canonical Huffman.
//  5. Run the concatenated payload through an LZ+Huffman lossless stage
//     (standing in for SZ2's Zstd stage) and keep it when smaller.
//
// Decompression reverses the stages; Lorenzo predictions use previously
// *reconstructed* values so encoder and decoder stay in lockstep.
package sz2

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ebcl"
	"repro/internal/huffman"
	"repro/internal/sched"
)

const (
	magic = 0x535A0002 // "SZ\0\2"
	// blockSize is the per-block predictor-selection granularity; it is
	// pinned to the shared constant so the core pipeline's chunk-aligned
	// (v4) splits land exactly on block boundaries and per-block predictor
	// decisions are unchanged by chunking.
	blockSize = ebcl.PredictorBlockElems

	predLorenzo    = 0
	predRegression = 1
)

// Params is re-exported so callers importing only this package can build
// error bounds without also importing ebcl.
type Params = ebcl.Params

// Compressor implements ebcl.Compressor. The zero value is ready to use;
// NewCompressor exists for symmetry with the other EBLC packages.
type Compressor struct {
	// DisableLosslessStage skips the final LZ pass (used by ablation
	// benchmarks to isolate the entropy stage's contribution).
	DisableLosslessStage bool
}

// NewCompressor returns an SZ2 compressor with default settings.
func NewCompressor() *Compressor { return &Compressor{} }

// Name implements ebcl.Compressor.
func (c *Compressor) Name() string { return "sz2" }

// Compress implements ebcl.Compressor (CompressAppend with a nil dst).
func (c *Compressor) Compress(data []float32, p Params) ([]byte, error) {
	return c.CompressAppend(nil, data, p)
}

// Decompress implements ebcl.Compressor (DecompressInto with a nil dst).
func (c *Compressor) Decompress(stream []byte) ([]float32, error) {
	return c.DecompressInto(nil, stream)
}

// DecodedLen implements ebcl.Compressor: the element count from the stream
// header, without decoding any payload.
func (c *Compressor) DecodedLen(stream []byte) (int, error) {
	n, _, _, err := ebcl.ParseHeader(stream, magic)
	return n, err
}

// CompressAppend implements ebcl.Compressor, appending the encoded stream
// to dst. All scratch (quantization codes, block predictor kinds,
// regression coefficients, escape literals, the pre-lossless payload) comes
// from the sched pools.
func (c *Compressor) CompressAppend(dst []byte, data []float32, p Params) ([]byte, error) {
	if p.Mode == ebcl.ModeFixedPrecision {
		return nil, fmt.Errorf("sz2: fixed-precision mode unsupported")
	}
	ebAbs, err := ebcl.ResolveAbs(data, p)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return ebcl.AppendHeader(dst, magic, 0, ebcl.LayoutEmpty), nil
	}
	if ebAbs == 0 {
		out := ebcl.AppendHeader(dst, magic, len(data), ebcl.LayoutConstant)
		return binary.LittleEndian.AppendUint32(out, math.Float32bits(data[0])), nil
	}

	q := ebcl.NewQuantizer(ebAbs)
	nBlocks := (len(data) + blockSize - 1) / blockSize
	predKinds := sched.GetBytes(nBlocks)[:nBlocks]
	coeffs := sched.GetFloats(2 * nBlocks)
	codes := sched.GetUint16s(len(data))[:len(data)]
	literals := sched.GetFloats(len(data) / 64)

	prevRecon := 0.0 // Lorenzo state: last reconstructed value
	for b := 0; b < nBlocks; b++ {
		lo := b * blockSize
		hi := min(lo+blockSize, len(data))
		block := data[lo:hi]
		kind, a, bb := chooseBlockPredictor(block, prevRecon)
		predKinds[b] = kind
		if kind == predRegression {
			coeffs = append(coeffs, a, bb)
			// Regression predictions depend only on the index, so the
			// quantize loop runs 4-wide: four independent Quantize chains in
			// flight instead of one. Only the 4th lane's outcome feeds the
			// Lorenzo state for the next block.
			af, bf := float64(a), float64(bb)
			i := 0
			for ; i+4 <= len(block); i += 4 {
				c0, _, ok0 := q.Quantize(float64(block[i]), af*float64(i)+bf)
				c1, _, ok1 := q.Quantize(float64(block[i+1]), af*float64(i+1)+bf)
				c2, _, ok2 := q.Quantize(float64(block[i+2]), af*float64(i+2)+bf)
				c3, r3, ok3 := q.Quantize(float64(block[i+3]), af*float64(i+3)+bf)
				if ok0 && ok1 && ok2 && ok3 {
					codes[lo+i] = uint16(c0)
					codes[lo+i+1] = uint16(c1)
					codes[lo+i+2] = uint16(c2)
					codes[lo+i+3] = uint16(c3)
					prevRecon = float64(r3)
					continue
				}
				for k, v := range block[i : i+4] {
					code, recon, ok := q.Quantize(float64(v), af*float64(i+k)+bf)
					if !ok {
						codes[lo+i+k] = ebcl.EscapeCode
						literals = append(literals, v)
						prevRecon = float64(v)
						continue
					}
					codes[lo+i+k] = uint16(code)
					prevRecon = float64(recon)
				}
			}
			for ; i < len(block); i++ {
				v := block[i]
				code, recon, ok := q.Quantize(float64(v), af*float64(i)+bf)
				if !ok {
					codes[lo+i] = ebcl.EscapeCode
					literals = append(literals, v)
					prevRecon = float64(v)
					continue
				}
				codes[lo+i] = uint16(code)
				prevRecon = float64(recon)
			}
			continue
		}
		// Lorenzo: inherently serial — every prediction is the previous
		// reconstruction.
		for i, v := range block {
			code, recon, ok := q.Quantize(float64(v), prevRecon)
			if !ok {
				codes[lo+i] = ebcl.EscapeCode
				literals = append(literals, v)
				prevRecon = float64(v)
				continue
			}
			codes[lo+i] = uint16(code)
			prevRecon = float64(recon)
		}
	}

	codeBlob, err := huffman.EncodeMultiU16(codes, ebcl.QuantAlphabet, huffman.DefaultStreams)
	sched.PutUint16s(codes)
	if err != nil {
		sched.PutBytes(predKinds)
		sched.PutFloats(coeffs)
		sched.PutFloats(literals)
		return nil, err
	}

	payload := sched.GetBytes(len(codeBlob) + 4*len(literals) + 4*len(coeffs) + len(predKinds) + 64)
	payload = ebcl.AppendSection(payload, predKinds)
	payload = ebcl.AppendFloatSection(payload, coeffs)
	payload = ebcl.AppendSection(payload, codeBlob)
	payload = ebcl.AppendFloatSection(payload, literals)
	sched.PutBytes(predKinds)
	sched.PutFloats(coeffs)
	sched.PutBytes(codeBlob)
	sched.PutFloats(literals)

	out := ebcl.AppendHeader(dst, magic, len(data), ebcl.LayoutFull)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(ebAbs))
	out = ebcl.AppendLosslessStage(out, payload, c.DisableLosslessStage)
	sched.PutBytes(payload)
	return out, nil
}

// DecompressInto implements ebcl.Compressor, reconstructing into dst's
// storage. Coefficient and literal sections are read in place (no
// materialized copies) and the lossless-stage scratch is recycled.
func (c *Compressor) DecompressInto(dst []float32, stream []byte) ([]float32, error) {
	n, layout, rest, err := ebcl.ParseHeader(stream, magic)
	if err != nil {
		return nil, err
	}
	switch layout {
	case ebcl.LayoutEmpty:
		return ebcl.GrowFloats(dst, 0), nil
	case ebcl.LayoutConstant:
		if len(rest) < 4 {
			return nil, ebcl.ErrCorrupt
		}
		v := math.Float32frombits(binary.LittleEndian.Uint32(rest))
		out := ebcl.GrowFloats(dst, n)
		for i := range out {
			out[i] = v
		}
		return out, nil
	case ebcl.LayoutFull:
	default:
		return nil, ebcl.ErrCorrupt
	}
	if len(rest) < 8 {
		return nil, ebcl.ErrCorrupt
	}
	ebAbs := math.Float64frombits(binary.LittleEndian.Uint64(rest))
	if !(ebAbs > 0) || math.IsInf(ebAbs, 0) {
		return nil, ebcl.ErrCorrupt
	}
	payload, release, err := ebcl.ReadLosslessStage(rest[8:])
	if err != nil {
		return nil, err
	}
	defer release()
	predKinds, pos, err := ebcl.ReadSection(payload, 0)
	if err != nil {
		return nil, err
	}
	coefBlob, pos, err := ebcl.ReadSection(payload, pos)
	if err != nil {
		return nil, err
	}
	codeBlob, pos, err := ebcl.ReadSection(payload, pos)
	if err != nil {
		return nil, err
	}
	litBlob, _, err := ebcl.ReadSection(payload, pos)
	if err != nil {
		return nil, err
	}
	coeffs, err := ebcl.NewFloatView(coefBlob)
	if err != nil {
		return nil, ebcl.ErrCorrupt
	}
	literals, err := ebcl.NewFloatView(litBlob)
	if err != nil {
		return nil, ebcl.ErrCorrupt
	}
	codes, err := huffman.DecodeMultiU16(codeBlob, ebcl.QuantAlphabet)
	if err != nil {
		return nil, err
	}
	defer sched.PutUint16s(codes)
	if len(codes) != n {
		return nil, ebcl.ErrCorrupt
	}
	nBlocks := (n + blockSize - 1) / blockSize
	if len(predKinds) != nBlocks {
		return nil, ebcl.ErrCorrupt
	}

	q := ebcl.NewQuantizer(ebAbs)
	out := ebcl.GrowFloats(dst, n)
	prevRecon := 0.0
	coefIdx, litIdx := 0, 0
	for b := 0; b < nBlocks; b++ {
		lo := b * blockSize
		hi := min(lo+blockSize, n)
		kind := predKinds[b]
		var a, bb float32
		switch kind {
		case predRegression:
			if coefIdx+2 > coeffs.Len() {
				return nil, ebcl.ErrCorrupt
			}
			a, bb = coeffs.At(coefIdx), coeffs.At(coefIdx+1)
			coefIdx += 2
		case predLorenzo:
		default:
			return nil, ebcl.ErrCorrupt
		}
		if kind == predRegression {
			// Index-based predictions: dequantize 4-wide. Escape codes
			// (rare) drop the quad to the scalar path; the Lorenzo state
			// only needs the block's final reconstruction.
			af, bf := float64(a), float64(bb)
			i := lo
			for ; i+4 <= hi; i += 4 {
				c0, c1, c2, c3 := codes[i], codes[i+1], codes[i+2], codes[i+3]
				if c0 != ebcl.EscapeCode && c1 != ebcl.EscapeCode && c2 != ebcl.EscapeCode && c3 != ebcl.EscapeCode {
					out[i] = q.Dequantize(int(c0), af*float64(i-lo)+bf)
					out[i+1] = q.Dequantize(int(c1), af*float64(i+1-lo)+bf)
					out[i+2] = q.Dequantize(int(c2), af*float64(i+2-lo)+bf)
					out[i+3] = q.Dequantize(int(c3), af*float64(i+3-lo)+bf)
					continue
				}
				for j := i; j < i+4; j++ {
					code := codes[j]
					if code == ebcl.EscapeCode {
						if litIdx >= literals.Len() {
							return nil, ebcl.ErrCorrupt
						}
						out[j] = literals.At(litIdx)
						litIdx++
						continue
					}
					out[j] = q.Dequantize(int(code), af*float64(j-lo)+bf)
				}
			}
			for ; i < hi; i++ {
				code := codes[i]
				if code == ebcl.EscapeCode {
					if litIdx >= literals.Len() {
						return nil, ebcl.ErrCorrupt
					}
					out[i] = literals.At(litIdx)
					litIdx++
					continue
				}
				out[i] = q.Dequantize(int(code), af*float64(i-lo)+bf)
			}
			prevRecon = float64(out[hi-1])
			continue
		}
		for i := lo; i < hi; i++ {
			code := codes[i]
			if code == ebcl.EscapeCode {
				if litIdx >= literals.Len() {
					return nil, ebcl.ErrCorrupt
				}
				out[i] = literals.At(litIdx)
				litIdx++
				prevRecon = float64(out[i])
				continue
			}
			out[i] = q.Dequantize(int(code), prevRecon)
			prevRecon = float64(out[i])
		}
	}
	if litIdx != literals.Len() {
		return nil, ebcl.ErrCorrupt
	}
	return out, nil
}

// chooseBlockPredictor estimates which predictor yields smaller residuals
// over the block, mirroring SZ2's sampled hybrid selection. Lorenzo error is
// approximated on original values (the reconstructed stream differs by at
// most ebAbs per point, which does not change the ranking materially).
func chooseBlockPredictor(block []float32, prev float64) (kind byte, a, b float32) {
	if len(block) < 8 {
		return predLorenzo, 0, 0
	}
	af, bf := fitLine(block)
	// Four independent partial sums per metric: the Lorenzo term only needs
	// the previous *original* value (not an accumulator chain), so the whole
	// scoring pass is data-parallel and runs 4-wide.
	var l0, l1, l2, l3 float64
	var r0, r1, r2, r3 float64
	p := prev
	i := 0
	for ; i+4 <= len(block); i += 4 {
		f0, f1, f2, f3 := float64(block[i]), float64(block[i+1]), float64(block[i+2]), float64(block[i+3])
		l0 += math.Abs(f0 - p)
		l1 += math.Abs(f1 - f0)
		l2 += math.Abs(f2 - f1)
		l3 += math.Abs(f3 - f2)
		r0 += math.Abs(f0 - (af*float64(i) + bf))
		r1 += math.Abs(f1 - (af*float64(i+1) + bf))
		r2 += math.Abs(f2 - (af*float64(i+2) + bf))
		r3 += math.Abs(f3 - (af*float64(i+3) + bf))
		p = f3
	}
	lorenzoErr := l0 + l1 + l2 + l3
	regErr := r0 + r1 + r2 + r3
	for ; i < len(block); i++ {
		fv := float64(block[i])
		lorenzoErr += math.Abs(fv - p)
		p = fv
		regErr += math.Abs(fv - (af*float64(i) + bf))
	}
	// The regression block pays 8 bytes of coefficients; require a real win.
	if regErr*1.05+1e-12 < lorenzoErr {
		return predRegression, float32(af), float32(bf)
	}
	return predLorenzo, 0, 0
}

// fitLine computes the least-squares line v ≈ a·i + b over block indices.
// The x moments are closed-form over 0..n-1 (exact in float64 for any block
// this codec sees); only the data moments sy and sxy need a pass, which runs
// 4-wide with independent partial sums.
func fitLine(block []float32) (a, b float64) {
	m := len(block)
	n := float64(m)
	sx := n * (n - 1) / 2
	sxx := n * (n - 1) * (2*n - 1) / 6
	var y0, y1, y2, y3, xy0, xy1, xy2, xy3 float64
	i := 0
	for ; i+4 <= m; i += 4 {
		f0, f1, f2, f3 := float64(block[i]), float64(block[i+1]), float64(block[i+2]), float64(block[i+3])
		y0 += f0
		y1 += f1
		y2 += f2
		y3 += f3
		xy0 += float64(i) * f0
		xy1 += float64(i+1) * f1
		xy2 += float64(i+2) * f2
		xy3 += float64(i+3) * f3
	}
	sy := y0 + y1 + y2 + y3
	sxy := xy0 + xy1 + xy2 + xy3
	for ; i < m; i++ {
		y := float64(block[i])
		sy += y
		sxy += float64(i) * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	a = (n*sxy - sx*sy) / den
	b = (sy - a*sx) / n
	return a, b
}
