package sz2_test

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/sz2"
)

func TestConformance(t *testing.T) {
	eblctest.RunConformance(t, sz2.NewCompressor(), eblctest.Options{
		StrictBound:   true,
		MinRatioAt1e2: 5,
	})
}

func TestDisableLosslessStage(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	data := eblctest.WeightLike(rng, 1<<15)
	plain := &sz2.Compressor{DisableLosslessStage: true}
	staged := sz2.NewCompressor()
	sp, err := plain.Compress(data, ebcl.Rel(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := staged.Compress(data, ebcl.Rel(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) > len(sp) {
		t.Errorf("lossless stage grew the stream: %d > %d", len(ss), len(sp))
	}
	// Both must decompress identically within bound.
	op, err := plain.Decompress(sp)
	if err != nil {
		t.Fatal(err)
	}
	os, err := staged.Decompress(ss)
	if err != nil {
		t.Fatal(err)
	}
	for i := range op {
		if op[i] != os[i] {
			t.Fatalf("stage changed reconstruction at %d", i)
		}
	}
}

func TestRegressionBlocksChosenOnLinearData(t *testing.T) {
	// A strongly linear ramp with noise should engage the regression
	// predictor and still satisfy the bound.
	data := make([]float32, 4096)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := range data {
		data[i] = float32(0.001*float64(i) + 0.0001*rng.NormFloat64())
	}
	c := sz2.NewCompressor()
	stream, err := c.Compress(data, ebcl.Rel(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	ebAbs := 1e-3 * ebcl.ValueRange(data)
	if got := ebcl.MaxAbsError(data, out); got > ebAbs*(1+1e-6) {
		t.Fatalf("max error %g exceeds %g", got, ebAbs)
	}
	ratio := float64(4*len(data)) / float64(len(stream))
	if ratio < 8 {
		t.Errorf("linear data should compress well, got ratio %.2f", ratio)
	}
}

func TestNonFiniteValuesSurviveAsLiterals(t *testing.T) {
	data := []float32{0.5, float32(math.Inf(1)), -0.5, float32(math.NaN()), 0.25}
	c := sz2.NewCompressor()
	stream, err := c.Compress(data, ebcl.Abs(0.01))
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(out[1]), 1) {
		t.Errorf("Inf not preserved: %v", out[1])
	}
	if !math.IsNaN(float64(out[3])) {
		t.Errorf("NaN not preserved: %v", out[3])
	}
	for _, i := range []int{0, 2, 4} {
		if math.Abs(float64(out[i])-float64(data[i])) > 0.01 {
			t.Errorf("finite value %d off: %v vs %v", i, out[i], data[i])
		}
	}
}

func BenchmarkCompress1e2(b *testing.B) { benchCompress(b, 1e-2) }
func BenchmarkCompress1e4(b *testing.B) { benchCompress(b, 1e-4) }

func benchCompress(b *testing.B, eb float64) {
	rng := rand.New(rand.NewPCG(1, 2))
	data := eblctest.WeightLike(rng, 1<<20)
	c := sz2.NewCompressor()
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, ebcl.Rel(eb)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress1e2(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	data := eblctest.WeightLike(rng, 1<<20)
	c := sz2.NewCompressor()
	stream, err := c.Compress(data, ebcl.Rel(1e-2))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(stream); err != nil {
			b.Fatal(err)
		}
	}
}
