// Package sz3 is a pure-Go reimplementation of the SZ3 error-bounded lossy
// compressor (Liang et al., IEEE TBD 2023; Zhao et al., ICDE 2021) for 1-D
// float32 arrays.
//
// SZ3 replaces SZ2's block-local Lorenzo/regression hybrid with a
// multi-level *interpolation* predictor: reconstruct a coarse grid first,
// then repeatedly predict the midpoints of the current grid with dynamic
// spline interpolation (cubic where four support points exist, linear
// otherwise), quantizing each residual. No regression coefficients need to
// be stored — the property the paper credits for SZ3's ratio advantage at
// high error bounds — but the per-level predictor selection makes it
// measurably slower than SZ2, also as reported.
package sz3

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ebcl"
	"repro/internal/huffman"
	"repro/internal/sched"
)

const (
	magic = 0x535A0003 // "SZ\0\3"

	levelLinear = 0
	levelCubic  = 1
)

// The interpolation level structure is derived from the array length alone,
// so any split point yields two valid independent streams; the core
// pipeline's v4 chunking still aligns to ebcl.PredictorBlockElems (shared
// with SZ2's block grid) so one grid serves every registry codec. Chunking
// additionally bounds this codec's per-decode scratch — the float64
// reconstruction grid is sized by the (sub-)stream length — to a chunk
// rather than the whole tensor.

// Params re-exports ebcl.Params.
type Params = ebcl.Params

// Compressor implements ebcl.Compressor.
type Compressor struct {
	// DisableLosslessStage skips the trailing LZ pass (ablation hook).
	DisableLosslessStage bool
}

// NewCompressor returns an SZ3 compressor with default settings.
func NewCompressor() *Compressor { return &Compressor{} }

// Name implements ebcl.Compressor.
func (c *Compressor) Name() string { return "sz3" }

// Compress implements ebcl.Compressor (CompressAppend with a nil dst).
func (c *Compressor) Compress(data []float32, p Params) ([]byte, error) {
	return c.CompressAppend(nil, data, p)
}

// Decompress implements ebcl.Compressor (DecompressInto with a nil dst).
func (c *Compressor) Decompress(stream []byte) ([]float32, error) {
	return c.DecompressInto(nil, stream)
}

// DecodedLen implements ebcl.Compressor: the element count from the stream
// header, without decoding any payload.
func (c *Compressor) DecodedLen(stream []byte) (int, error) {
	n, _, _, err := ebcl.ParseHeader(stream, magic)
	return n, err
}

// CompressAppend implements ebcl.Compressor, appending the encoded stream
// to dst. All scratch — the float64 reconstruction grid, quantization
// codes, escape literals, and the pre-lossless payload — comes from the
// sched pools.
func (c *Compressor) CompressAppend(dst []byte, data []float32, p Params) ([]byte, error) {
	if p.Mode == ebcl.ModeFixedPrecision {
		return nil, fmt.Errorf("sz3: fixed-precision mode unsupported")
	}
	ebAbs, err := ebcl.ResolveAbs(data, p)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return ebcl.AppendHeader(dst, magic, 0, ebcl.LayoutEmpty), nil
	}
	if ebAbs == 0 {
		out := ebcl.AppendHeader(dst, magic, len(data), ebcl.LayoutConstant)
		return binary.LittleEndian.AppendUint32(out, math.Float32bits(data[0])), nil
	}

	n := len(data)
	q := ebcl.NewQuantizer(ebAbs)
	recon := sched.GetFloat64s(n)[:n]
	defer sched.PutFloat64s(recon)
	codes := sched.GetUint16s(n)
	literals := sched.GetFloats(n / 64)
	levelKinds := sched.GetBytes(64)

	// Anchor: quantize data[0] against a zero prediction.
	quantizePoint := func(i int, pred float64) {
		code, rec, ok := q.Quantize(float64(data[i]), pred)
		if !ok {
			codes = append(codes, ebcl.EscapeCode)
			literals = append(literals, data[i])
			recon[i] = float64(data[i])
			return
		}
		codes = append(codes, uint16(code))
		recon[i] = float64(rec)
	}
	quantizePoint(0, 0)

	// Levels from the largest power-of-two stride covering the array down
	// to 1. Before level s, indices that are multiples of 2s are
	// reconstructed; the level fills indices ≡ s (mod 2s).
	//
	// Within a level every point reads only the coarser grid (indices that
	// are multiples of 2s) and writes its own index (≡ s mod 2s), so the
	// four interpolations of an unrolled group never alias the writes —
	// computing the predictions up front gives four independent gather+FMA
	// chains per iteration.
	for s := topStride(n); s >= 1; s /= 2 {
		kind := chooseLevelPredictor(data, n, s)
		levelKinds = append(levelKinds, kind)
		step := 2 * s
		i := s
		for ; i+3*step < n; i += 4 * step {
			p0 := interpolate(recon, n, i, s, kind)
			p1 := interpolate(recon, n, i+step, s, kind)
			p2 := interpolate(recon, n, i+2*step, s, kind)
			p3 := interpolate(recon, n, i+3*step, s, kind)
			quantizePoint(i, p0)
			quantizePoint(i+step, p1)
			quantizePoint(i+2*step, p2)
			quantizePoint(i+3*step, p3)
		}
		for ; i < n; i += step {
			pred := interpolate(recon, n, i, s, kind)
			quantizePoint(i, pred)
		}
	}

	codeBlob, err := huffman.EncodeMultiU16(codes, ebcl.QuantAlphabet, huffman.DefaultStreams)
	sched.PutUint16s(codes)
	if err != nil {
		sched.PutFloats(literals)
		sched.PutBytes(levelKinds)
		return nil, err
	}
	payload := sched.GetBytes(len(codeBlob) + 4*len(literals) + len(levelKinds) + 64)
	payload = ebcl.AppendSection(payload, levelKinds)
	payload = ebcl.AppendSection(payload, codeBlob)
	payload = ebcl.AppendFloatSection(payload, literals)
	sched.PutBytes(codeBlob)
	sched.PutFloats(literals)
	sched.PutBytes(levelKinds)

	out := ebcl.AppendHeader(dst, magic, n, ebcl.LayoutFull)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(ebAbs))
	out = ebcl.AppendLosslessStage(out, payload, c.DisableLosslessStage)
	sched.PutBytes(payload)
	return out, nil
}

// DecompressInto implements ebcl.Compressor, reconstructing into dst's
// storage. The literal section is read in place, the float64 grid comes
// from the sched pool, and the lossless-stage scratch is recycled.
func (c *Compressor) DecompressInto(dst []float32, stream []byte) ([]float32, error) {
	n, layout, rest, err := ebcl.ParseHeader(stream, magic)
	if err != nil {
		return nil, err
	}
	switch layout {
	case ebcl.LayoutEmpty:
		return ebcl.GrowFloats(dst, 0), nil
	case ebcl.LayoutConstant:
		if len(rest) < 4 {
			return nil, ebcl.ErrCorrupt
		}
		v := math.Float32frombits(binary.LittleEndian.Uint32(rest))
		out := ebcl.GrowFloats(dst, n)
		for i := range out {
			out[i] = v
		}
		return out, nil
	case ebcl.LayoutFull:
	default:
		return nil, ebcl.ErrCorrupt
	}
	if len(rest) < 8 {
		return nil, ebcl.ErrCorrupt
	}
	ebAbs := math.Float64frombits(binary.LittleEndian.Uint64(rest))
	if !(ebAbs > 0) || math.IsInf(ebAbs, 0) {
		return nil, ebcl.ErrCorrupt
	}
	payload, release, err := ebcl.ReadLosslessStage(rest[8:])
	if err != nil {
		return nil, err
	}
	defer release()
	levelKinds, pos, err := ebcl.ReadSection(payload, 0)
	if err != nil {
		return nil, err
	}
	codeBlob, pos, err := ebcl.ReadSection(payload, pos)
	if err != nil {
		return nil, err
	}
	litBlob, _, err := ebcl.ReadSection(payload, pos)
	if err != nil {
		return nil, err
	}
	literals, err := ebcl.NewFloatView(litBlob)
	if err != nil {
		return nil, ebcl.ErrCorrupt
	}
	codes, err := huffman.DecodeMultiU16(codeBlob, ebcl.QuantAlphabet)
	if err != nil {
		return nil, err
	}
	defer sched.PutUint16s(codes)
	if len(codes) != n {
		return nil, ebcl.ErrCorrupt
	}
	wantLevels := 0
	for s := topStride(n); s >= 1; s /= 2 {
		wantLevels++
	}
	if len(levelKinds) != wantLevels {
		return nil, ebcl.ErrCorrupt
	}

	q := ebcl.NewQuantizer(ebAbs)
	recon := sched.GetFloat64s(n)[:n]
	defer sched.PutFloat64s(recon)
	out := ebcl.GrowFloats(dst, n)
	codeIdx, litIdx := 0, 0
	reconstructPoint := func(i int, pred float64) error {
		code := codes[codeIdx]
		codeIdx++
		if code == ebcl.EscapeCode {
			if litIdx >= literals.Len() {
				return ebcl.ErrCorrupt
			}
			out[i] = literals.At(litIdx)
			litIdx++
		} else {
			out[i] = q.Dequantize(int(code), pred)
		}
		recon[i] = float64(out[i])
		return nil
	}
	if err := reconstructPoint(0, 0); err != nil {
		return nil, err
	}
	lvl := 0
	for s := topStride(n); s >= 1; s /= 2 {
		kind := levelKinds[lvl]
		lvl++
		if kind != levelLinear && kind != levelCubic {
			return nil, ebcl.ErrCorrupt
		}
		// Mirror of the encoder's unroll: interpolations read only the
		// coarser grid while reconstructPoint writes the current level, so
		// hoisting four predictions is alias-free and bit-identical to the
		// one-at-a-time order.
		step := 2 * s
		i := s
		for ; i+3*step < n; i += 4 * step {
			p0 := interpolate(recon, n, i, s, kind)
			p1 := interpolate(recon, n, i+step, s, kind)
			p2 := interpolate(recon, n, i+2*step, s, kind)
			p3 := interpolate(recon, n, i+3*step, s, kind)
			if err := reconstructPoint(i, p0); err != nil {
				return nil, err
			}
			if err := reconstructPoint(i+step, p1); err != nil {
				return nil, err
			}
			if err := reconstructPoint(i+2*step, p2); err != nil {
				return nil, err
			}
			if err := reconstructPoint(i+3*step, p3); err != nil {
				return nil, err
			}
		}
		for ; i < n; i += step {
			pred := interpolate(recon, n, i, s, kind)
			if err := reconstructPoint(i, pred); err != nil {
				return nil, err
			}
		}
	}
	if litIdx != literals.Len() {
		return nil, ebcl.ErrCorrupt
	}
	return out, nil
}

// topStride returns the largest power-of-two stride < n (minimum 1).
func topStride(n int) int {
	s := 1
	for 2*s < n {
		s *= 2
	}
	return s
}

// interpolate predicts recon[i] at level stride s. Neighbours at i±s and
// i±3s lie on the already-reconstructed coarser grid. Falls back from cubic
// to linear to left-neighbour as support shrinks at the boundaries.
func interpolate(recon []float64, n, i, s int, kind byte) float64 {
	left := i - s // always >= 0 by construction
	right := i + s
	if right >= n {
		return recon[left]
	}
	if kind == levelCubic && i-3*s >= 0 && i+3*s < n {
		// 4-point cubic (Catmull-Rom at midpoint): (-1, 9, 9, -1)/16.
		return (-recon[i-3*s] + 9*recon[left] + 9*recon[right] - recon[i+3*s]) / 16
	}
	return (recon[left] + recon[right]) / 2
}

// chooseLevelPredictor samples both interpolants against the original data
// and picks the one with smaller total absolute residual — SZ3's dynamic
// spline selection (the extra pass is what makes SZ3 slower than SZ2).
func chooseLevelPredictor(data []float32, n, s int) byte {
	// Interior points (full cubic support, right neighbour in range) are
	// scored 4-wide with independent accumulators; the few boundary points
	// fall through to the scalar loop.
	var lin0, lin1, lin2, lin3 float64
	var cub0, cub1, cub2, cub3 float64
	var linErr, cubErr float64
	count := 0
	step := 2 * s
	i := s
	if lo := 3 * s; i < lo {
		for ; i < n && i < lo; i += step {
			left, right := i-s, i+s
			if right >= n {
				continue
			}
			v := float64(data[i])
			lin := (float64(data[left]) + float64(data[right])) / 2
			linErr += math.Abs(v - lin)
			cubErr += math.Abs(v - lin)
			count++
		}
	}
	score := func(i int) (lin, cub float64) {
		v := float64(data[i])
		dl, dr := float64(data[i-s]), float64(data[i+s])
		l := (dl + dr) / 2
		c := (-float64(data[i-3*s]) + 9*dl + 9*dr - float64(data[i+3*s])) / 16
		return math.Abs(v - l), math.Abs(v - c)
	}
	for ; i+3*step+3*s < n; i += 4 * step {
		l0, c0 := score(i)
		l1, c1 := score(i + step)
		l2, c2 := score(i + 2*step)
		l3, c3 := score(i + 3*step)
		lin0 += l0
		lin1 += l1
		lin2 += l2
		lin3 += l3
		cub0 += c0
		cub1 += c1
		cub2 += c2
		cub3 += c3
		count += 4
	}
	linErr += lin0 + lin1 + lin2 + lin3
	cubErr += cub0 + cub1 + cub2 + cub3
	for ; i < n; i += step {
		left, right := i-s, i+s
		if right >= n {
			continue
		}
		v := float64(data[i])
		lin := (float64(data[left]) + float64(data[right])) / 2
		linErr += math.Abs(v - lin)
		if i-3*s >= 0 && i+3*s < n {
			cub := (-float64(data[i-3*s]) + 9*float64(data[left]) + 9*float64(data[right]) - float64(data[i+3*s])) / 16
			cubErr += math.Abs(v - cub)
		} else {
			cubErr += math.Abs(v - lin)
		}
		count++
	}
	if count > 0 && cubErr < linErr {
		return levelCubic
	}
	return levelLinear
}
