package sz3_test

import (
	"math/rand/v2"
	"testing"

	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/sz3"
)

func TestConformance(t *testing.T) {
	eblctest.RunConformance(t, sz3.NewCompressor(), eblctest.Options{
		StrictBound:   true,
		MinRatioAt1e2: 5,
	})
}

func TestSmoothDataFavoursInterpolation(t *testing.T) {
	// SZ3's raison d'être: on smooth data its interpolation predictor
	// should deliver strong ratios at a loose bound.
	rng := rand.New(rand.NewPCG(8, 8))
	data := eblctest.SmoothLike(rng, 1<<16)
	c := sz3.NewCompressor()
	stream, err := c.Compress(data, ebcl.Rel(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(4*len(data)) / float64(len(stream))
	if ratio < 8 {
		t.Errorf("smooth-data ratio %.2f, want >= 8", ratio)
	}
}

func TestReconstructionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	data := eblctest.WeightLike(rng, 10000)
	c := sz3.NewCompressor()
	s1, err := c.Compress(data, ebcl.Rel(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Compress(data, ebcl.Rel(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatal("compression is not deterministic")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("compression is not deterministic")
		}
	}
}

func BenchmarkCompress1e2(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	data := eblctest.WeightLike(rng, 1<<20)
	c := sz3.NewCompressor()
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, ebcl.Rel(1e-2)); err != nil {
			b.Fatal(err)
		}
	}
}
