// Package szx is a pure-Go reimplementation of the SZx ultrafast
// error-bounded lossy compressor (Yu et al., HPDC 2022) for 1-D float32
// arrays.
//
// SZx trades ratio and reconstruction quality for extreme speed using only
// bit-level operations:
//
//   - The array is split into fixed-size blocks.
//   - A block whose value range fits within twice the absolute error bound
//     becomes a *constant block*: a single float32 (the block midpoint)
//     represents every element.
//   - Other blocks are *truncation blocks*: each value keeps its sign bit,
//     exponent, and just enough leading mantissa bits for the worst-case
//     truncation error to stay within the bound.
//
// Both representations respect the error bound, yet on federated-learning
// weight data the constant-block path is exactly what destroys model
// accuracy in the paper (Table I: 10% top-1 for every bound): under a
// range-relative bound, most near-zero weight blocks collapse to their
// midpoint, erasing the sign structure the network relies on.
package szx

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitio"
	"repro/internal/ebcl"
)

const (
	magic     = 0x535A0058 // "SZ\0X"
	blockSize = 128
)

// Params re-exports ebcl.Params.
type Params = ebcl.Params

// Compressor implements ebcl.Compressor.
type Compressor struct{}

// NewCompressor returns an SZx compressor.
func NewCompressor() *Compressor { return &Compressor{} }

// Name implements ebcl.Compressor.
func (c *Compressor) Name() string { return "szx" }

// Compress implements ebcl.Compressor (CompressAppend with a nil dst).
func (c *Compressor) Compress(data []float32, p Params) ([]byte, error) {
	return c.CompressAppend(nil, data, p)
}

// Decompress implements ebcl.Compressor (DecompressInto with a nil dst).
func (c *Compressor) Decompress(stream []byte) ([]float32, error) {
	return c.DecompressInto(nil, stream)
}

// DecodedLen implements ebcl.Compressor: the element count from the stream
// header, without decoding any payload.
func (c *Compressor) DecodedLen(stream []byte) (int, error) {
	n, _, _, err := ebcl.ParseHeader(stream, magic)
	return n, err
}

// CompressAppend implements ebcl.Compressor, appending the encoded stream
// to dst. The bit writer emits directly behind the header in dst's storage
// — no intermediate bit buffer or copy.
func (c *Compressor) CompressAppend(dst []byte, data []float32, p Params) ([]byte, error) {
	if p.Mode == ebcl.ModeFixedPrecision {
		return nil, fmt.Errorf("szx: fixed-precision mode unsupported")
	}
	ebAbs, err := ebcl.ResolveAbs(data, p)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return ebcl.AppendHeader(dst, magic, 0, ebcl.LayoutEmpty), nil
	}
	if ebAbs == 0 {
		out := ebcl.AppendHeader(dst, magic, len(data), ebcl.LayoutConstant)
		return binary.LittleEndian.AppendUint32(out, math.Float32bits(data[0])), nil
	}

	// Mantissa bits are kept relative to the bound's binary exponent.
	ebExp := ilogb(ebAbs)

	out := ebcl.AppendHeader(dst, magic, len(data), ebcl.LayoutFull)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(ebAbs))
	w := bitio.NewWriterAppend(out)
	nBlocks := (len(data) + blockSize - 1) / blockSize
	for b := 0; b < nBlocks; b++ {
		lo := b * blockSize
		hi := min(lo+blockSize, len(data))
		block := data[lo:hi]
		bMin, bMax := block[0], block[0]
		var maxAbs float64
		finite := true
		for _, v := range block {
			if v < bMin {
				bMin = v
			}
			if v > bMax {
				bMax = v
			}
			// One always-predicted branch covers NaN and ±Inf: both fail
			// a <= MaxFloat64. Keeps the scan at seed-path speed.
			if a := math.Abs(float64(v)); a <= math.MaxFloat64 {
				if a > maxAbs {
					maxAbs = a
				}
			} else {
				finite = false
			}
		}
		if finite && float64(bMax)-float64(bMin) <= 2*ebAbs {
			// Constant block: midpoint representation.
			w.WriteBit(1)
			mid := float32((float64(bMax) + float64(bMin)) / 2)
			w.WriteBits(uint64(math.Float32bits(mid)), 32)
			continue
		}
		w.WriteBit(0)
		// Keep k mantissa bits so truncation error 2^(emax-k) <= 2^ebExp.
		// A block holding NaN/Inf keeps the full mantissa: truncation could
		// silently turn NaN into Inf, and a non-finite maxAbs has no usable
		// exponent, so such blocks are stored losslessly.
		k := 23
		if finite {
			emax := ilogb(maxAbs)
			k = emax - ebExp
			if k < 0 {
				k = 0
			}
			if k > 23 {
				k = 23
			}
		}
		w.WriteBits(uint64(k), 5)
		keep := uint(9 + k) // sign + 8 exponent + k mantissa bits
		for _, v := range block {
			bits := math.Float32bits(v)
			w.WriteBits(uint64(bits>>(32-keep)), keep)
		}
	}
	return w.Bytes(), nil
}

// DecompressInto implements ebcl.Compressor, reconstructing into dst's
// storage.
func (c *Compressor) DecompressInto(dst []float32, stream []byte) ([]float32, error) {
	n, layout, rest, err := ebcl.ParseHeader(stream, magic)
	if err != nil {
		return nil, err
	}
	switch layout {
	case ebcl.LayoutEmpty:
		return ebcl.GrowFloats(dst, 0), nil
	case ebcl.LayoutConstant:
		if len(rest) < 4 {
			return nil, ebcl.ErrCorrupt
		}
		v := math.Float32frombits(binary.LittleEndian.Uint32(rest))
		out := ebcl.GrowFloats(dst, n)
		for i := range out {
			out[i] = v
		}
		return out, nil
	case ebcl.LayoutFull:
	default:
		return nil, ebcl.ErrCorrupt
	}
	if len(rest) < 8 {
		return nil, ebcl.ErrCorrupt
	}
	r := bitio.NewReader(rest[8:])
	nBlocks := (n + blockSize - 1) / blockSize
	// Reject impossible block counts before allocating the output. A full
	// block costs at least 33 bits (constant: 1+32; truncation: 6+9·128),
	// while the final block may be partial — as small as one k=0 value,
	// 1+5+9 = 15 bits.
	if nBlocks > 0 && r.BitsRemaining() < (nBlocks-1)*33+15 {
		return nil, ebcl.ErrCorrupt
	}
	out := ebcl.GrowFloats(dst, n)
	for b := 0; b < nBlocks; b++ {
		lo := b * blockSize
		hi := min(lo+blockSize, n)
		// One refill covers the whole block prelude: flag plus either the
		// 32-bit constant or the 5-bit mantissa config (≤ 33 bits).
		r.Refill()
		if r.Buffered() < 1 {
			return nil, ebcl.ErrCorrupt
		}
		if r.Peek(1) == 1 {
			if r.Buffered() < 33 {
				return nil, ebcl.ErrCorrupt
			}
			v := math.Float32frombits(uint32(r.Peek(33)))
			r.Consume(33)
			for i := lo; i < hi; i++ {
				out[i] = v
			}
			continue
		}
		if r.Buffered() < 6 {
			return nil, ebcl.ErrCorrupt
		}
		keep := 9 + uint(r.Peek(6)&31)
		r.Consume(6)
		for i := lo; i < hi; i++ {
			// keep ≤ 32 < 56, so a refill short of keep bits means the
			// stream itself ends mid-value.
			r.Refill()
			if r.Buffered() < keep {
				return nil, ebcl.ErrCorrupt
			}
			out[i] = math.Float32frombits(uint32(r.Peek(keep)) << (32 - keep))
			r.Consume(keep)
		}
	}
	return out, nil
}

// ilogb returns floor(log2(x)) for finite positive x.
func ilogb(x float64) int {
	if x <= 0 {
		return -126
	}
	return int(math.Floor(math.Log2(x)))
}
