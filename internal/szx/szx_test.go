package szx_test

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/ebcl"
	"repro/internal/eblctest"
	"repro/internal/sz2"
	"repro/internal/szx"
)

func TestConformance(t *testing.T) {
	eblctest.RunConformance(t, szx.NewCompressor(), eblctest.Options{
		StrictBound:   true,
		MinRatioAt1e2: 2,
	})
}

// TestTinyTruncationBlock regression-tests the pre-decode size guard: a
// single partial truncation block with k=0 encodes in just 1+5+9·n bits,
// which the previous ≥33-bits-per-block estimate rejected as corrupt.
func TestTinyTruncationBlock(t *testing.T) {
	data := []float32{-1.9, 1.9}
	c := szx.NewCompressor()
	enc, err := c.Compress(data, ebcl.Abs(1.0))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(enc)
	if err != nil {
		t.Fatalf("valid tiny truncation block rejected: %v", err)
	}
	if !ebcl.WithinBound(data, dec, 1.0) {
		t.Fatalf("reconstruction %v out of bound for %v", dec, data)
	}
}

func TestConstantBlockCollapse(t *testing.T) {
	// The paper's key SZx observation: under a range-relative bound, blocks
	// of small weights collapse to a single midpoint, erasing sign
	// structure. Construct data where the global range is dominated by two
	// outliers and verify the near-zero mass collapses.
	rng := rand.New(rand.NewPCG(6, 6))
	n := 4096
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(0.005 * rng.NormFloat64()) // tiny weights
	}
	data[0], data[1] = 1, -1 // outliers set range to 2
	c := szx.NewCompressor()
	stream, err := c.Compress(data, ebcl.Rel(1e-2)) // ebAbs = 0.02
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	// Bound still holds...
	if got := ebcl.MaxAbsError(data, out); got > 0.02*(1+1e-6) {
		t.Fatalf("bound violated: %g", got)
	}
	// ...but sign structure is destroyed: many values changed sign.
	signFlips := 0
	for i := 2; i < n; i++ {
		if (data[i] > 0) != (out[i] > 0) && out[i] != data[i] {
			signFlips++
		}
	}
	if signFlips < n/10 {
		t.Errorf("expected widespread sign collapse, got %d flips of %d", signFlips, n)
	}
	// And the ratio is high because nearly every block went constant.
	ratio := float64(4*n) / float64(len(stream))
	if ratio < 20 {
		t.Errorf("collapsed data should compress hard, ratio %.2f", ratio)
	}
}

func TestSpeedSupremacy(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	// SZx must be much faster than SZ2 (paper Table I shows ~50x); assert a
	// loose 2x to stay robust on shared machines.
	rng := rand.New(rand.NewPCG(9, 9))
	data := eblctest.WeightLike(rng, 1<<20)
	cx := szx.NewCompressor()
	c2 := sz2.NewCompressor()
	t0 := time.Now()
	if _, err := cx.Compress(data, ebcl.Rel(1e-2)); err != nil {
		t.Fatal(err)
	}
	dx := time.Since(t0)
	t0 = time.Now()
	if _, err := c2.Compress(data, ebcl.Rel(1e-2)); err != nil {
		t.Fatal(err)
	}
	d2 := time.Since(t0)
	t.Logf("szx=%v sz2=%v", dx, d2)
	if dx*2 > d2 {
		t.Errorf("szx (%v) not at least 2x faster than sz2 (%v)", dx, d2)
	}
}

func BenchmarkCompress1e2(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	data := eblctest.WeightLike(rng, 1<<20)
	c := szx.NewCompressor()
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(data, ebcl.Rel(1e-2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress1e2(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	data := eblctest.WeightLike(rng, 1<<20)
	c := szx.NewCompressor()
	stream, _ := c.Compress(data, ebcl.Rel(1e-2))
	b.SetBytes(int64(4 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(stream); err != nil {
			b.Fatal(err)
		}
	}
}
