package telemetry

// HTTP surface: the handler a deployed fedsz-serve mounts on its
// -metrics-addr listener — Prometheus scrapes on /metrics, liveness on
// /healthz, and the runtime profiler under /debug/pprof/ so a server
// misbehaving under load can be profiled in place.

import (
	"net/http"
	"net/http/pprof"
)

// NewHTTPHandler returns a handler serving reg as Prometheus text on
// /metrics, "ok" on /healthz, and the net/http/pprof suite under
// /debug/pprof/. Mount it on a listener separate from the ingest port —
// the observability plane should not share fate (or auth posture) with
// the data plane.
func NewHTTPHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w) //nolint:errcheck — a dead scraper is its problem
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n")) //nolint:errcheck
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
