package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_total", "demo").Add(3)
	srv := httptest.NewServer(NewHTTPHandler(r))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "demo_total 3\n") {
		t.Fatalf("/metrics missing sample:\n%s", body)
	}
	if _, err := ParseText([]byte(body)); err != nil {
		t.Fatalf("/metrics body does not parse: %v", err)
	}

	code, body, _ = get("/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body, _ = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d (body %d bytes)", code, len(body))
	}
	code, _, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}
