package telemetry

// promtext: a small parser for the Prometheus text exposition format —
// enough to round-trip WritePrometheus output in tests and to let clients
// (the streaming example, CI smoke checks) read individual samples off a
// /metrics scrape without a Prometheus dependency.

import (
	"fmt"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name (including any
// _bucket/_sum/_count suffix), its labels, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for key ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// ParseText parses a Prometheus text exposition. # HELP/# TYPE comment
// lines are validated for shape and skipped; every sample line must parse
// or the whole input is rejected.
func ParseText(data []byte) ([]Sample, error) {
	var out []Sample
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return nil, fmt.Errorf("promtext line %d: %w", ln+1, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// checkComment validates a # HELP / # TYPE line's shape (other comments
// pass untouched).
func checkComment(line string) error {
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return nil
	}
	kind, rest, _ := strings.Cut(rest, " ")
	switch kind {
	case "HELP", "TYPE":
		name, arg, _ := strings.Cut(rest, " ")
		if !validName(name, false) {
			return fmt.Errorf("%s for invalid metric name %q", kind, name)
		}
		if kind == "TYPE" {
			switch metricType(arg) {
			case typeCounter, typeGauge, typeHistogram, "summary", "untyped":
			default:
				return fmt.Errorf("unknown TYPE %q for %q", arg, name)
			}
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name, false) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		if s.Labels, rest, err = parseLabels(rest[1:]); err != nil {
			return s, err
		}
	}
	rest = strings.TrimLeft(rest, " ")
	// A timestamp (second field) is permitted by the format; take the
	// first field as the value.
	val, _, _ := strings.Cut(rest, " ")
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", val, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `k="v",...}` and returns the map plus what follows
// the closing brace.
func parseLabels(rest string) (map[string]string, string, error) {
	labels := map[string]string{}
	for {
		rest = strings.TrimLeft(rest, " ,")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' near %q", rest)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validName(key, true) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("unquoted value for label %q", key)
		}
		val, remainder, err := parseQuoted(rest[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", key, err)
		}
		if _, dup := labels[key]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val
		rest = remainder
	}
}

// parseQuoted consumes an escaped label value up to its closing quote.
func parseQuoted(rest string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		switch c := rest[i]; c {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			i++
			if i >= len(rest) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", rest[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

// FindSample returns the first sample matching name and every given label
// pair, or false when none matches — the one-liner a smoke test needs.
func FindSample(samples []Sample, name string, labels ...Label) (Sample, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for _, l := range labels {
			if s.Labels[l.Key] != l.Value {
				ok = false
				break
			}
		}
		if ok {
			return s, true
		}
	}
	return Sample{}, false
}
