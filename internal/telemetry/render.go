package telemetry

// Prometheus text exposition rendering (version 0.0.4): the scrape-time
// half of the registry. All formatting cost lives here, none on the
// metric-update hot paths.

import (
	"io"
	"math"
	"sort"
	"strconv"
)

// appendEscaped writes s with backslash, double-quote (label values only),
// and newline escaped per the exposition format.
func appendEscaped(dst []byte, s string, quoteValue bool) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\\':
			dst = append(dst, '\\', '\\')
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '"' && quoteValue:
			dst = append(dst, '\\', '"')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// appendFloat formats a sample value: integral values render without an
// exponent, +Inf as "+Inf" (the spelling le-labels require).
func appendFloat(dst []byte, v float64) []byte {
	switch {
	case math.IsInf(v, +1):
		return append(dst, "+Inf"...)
	case math.IsInf(v, -1):
		return append(dst, "-Inf"...)
	case math.IsNaN(v):
		return append(dst, "NaN"...)
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.AppendInt(dst, int64(v), 10)
	}
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// appendLabels renders {k="v",...}; extra, when non-empty, appends one
// more pair (the histogram "le" label) after the series labels.
func appendLabels(dst []byte, labels []Label, extraKey string, extraVal []byte) []byte {
	if len(labels) == 0 && extraKey == "" {
		return dst
	}
	dst = append(dst, '{')
	for i, l := range labels {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, l.Key...)
		dst = append(dst, '=', '"')
		dst = appendEscaped(dst, l.Value, true)
		dst = append(dst, '"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, extraKey...)
		dst = append(dst, '=', '"')
		dst = append(dst, extraVal...)
		dst = append(dst, '"')
	}
	return append(dst, '}')
}

func appendSample(dst []byte, name string, labels []Label, suffix string, extraKey string, extraVal []byte, v float64) []byte {
	dst = append(dst, name...)
	dst = append(dst, suffix...)
	dst = appendLabels(dst, labels, extraKey, extraVal)
	dst = append(dst, ' ')
	dst = appendFloat(dst, v)
	return append(dst, '\n')
}

// WritePrometheus renders every family in the registry to w in the text
// exposition format, families sorted by name, series in registration
// order. Histogram series render cumulative _bucket samples (including
// +Inf), then _sum and _count; the +Inf bucket always equals _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	buf := make([]byte, 0, 4096)
	for _, f := range fams {
		// Snapshot the series list under the lock; the metrics themselves
		// are atomic and read without it.
		r.mu.Lock()
		series := make([]*series, len(f.series))
		copy(series, f.series)
		r.mu.Unlock()
		if len(series) == 0 {
			continue
		}

		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = appendEscaped(buf, f.help, false)
		buf = append(buf, '\n')
		buf = append(buf, "# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, string(f.typ)...)
		buf = append(buf, '\n')

		for _, s := range series {
			switch f.typ {
			case typeCounter:
				buf = appendSample(buf, f.name, s.labels, "", "", nil, float64(s.c.Value()))
			case typeGauge:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				} else {
					v = s.g.Value()
				}
				buf = appendSample(buf, f.name, s.labels, "", "", nil, v)
			case typeHistogram:
				cum, sum := s.h.snapshot()
				// The +Inf bucket must equal _count even when Observes race
				// the snapshot; derive both from the same cumulative total.
				total := cum[len(cum)-1]
				var le []byte
				for i, bound := range s.h.upper {
					le = appendFloat(le[:0], bound)
					buf = appendSample(buf, f.name, s.labels, "_bucket", "le", le, float64(cum[i]))
				}
				buf = appendSample(buf, f.name, s.labels, "_bucket", "le", []byte("+Inf"), float64(total))
				buf = appendSample(buf, f.name, s.labels, "_sum", "", nil, sum)
				buf = appendSample(buf, f.name, s.labels, "_count", "", nil, float64(total))
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		buf = buf[:0]
	}
	_, err := w.Write(buf)
	return err
}
