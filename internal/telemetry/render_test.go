package telemetry

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry exercising every rendering edge the
// exposition format has: metric and label escaping, multiple series per
// family, gauge funcs, histogram +Inf buckets, and float formatting.
func goldenRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("acme_requests_total", "Requests served.", L("method", "get"), L("path", `/metrics`))
	c.Add(1027)
	r.Counter("acme_requests_total", "Requests served.", L("method", "post"), L("path", `/up"load`)).Add(3)

	g := r.Gauge("acme_temperature_celsius", "Ambient temperature.\nSecond help line with a \\ backslash.")
	g.Set(-40.25)
	r.GaugeFunc("acme_boot_time_seconds", "Boot time.", func() float64 { return 1.5e9 })

	h := r.Histogram("acme_request_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 3} {
		h.Observe(v)
	}
	hl := r.Histogram("acme_request_seconds", "Request latency.", []float64{0.01, 0.1, 1},
		L("tricky", "newline\nquote\"backslash\\done"))
	hl.Observe(0.05)

	e := r.Gauge("acme_edge_values", "Non-finite and big values.", L("case", "inf"))
	e.Set(math.Inf(1))
	r.Gauge("acme_edge_values", "Non-finite and big values.", L("case", "big")).Set(1e18)
	r.Gauge("acme_edge_values", "Non-finite and big values.", L("case", "tiny")).Set(2.5e-9)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden (re-bless with -update):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestExpositionRoundTrip re-parses the rendered exposition and checks the
// invariants a Prometheus server would rely on: every +Inf bucket equals
// its _count, bucket counts are monotonic in le, and the escaped label
// values survive the round trip byte-for-byte.
func TestExpositionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	if s, ok := FindSample(samples, "acme_requests_total", L("method", "post")); !ok || s.Label("path") != `/up"load` {
		t.Fatalf("escaped label value lost: %+v (found %v)", s, ok)
	}
	if s, ok := FindSample(samples, "acme_request_seconds_count", L("tricky", "newline\nquote\"backslash\\done")); !ok || s.Value != 1 {
		t.Fatalf("tricky-label histogram count: %+v (found %v)", s, ok)
	}

	// Histogram invariants for the unlabeled series (matching tricky=""
	// selects the series that lacks the label).
	inf, ok := FindSample(samples, "acme_request_seconds_bucket", L("le", "+Inf"), L("tricky", ""))
	if !ok {
		t.Fatal("no +Inf bucket for acme_request_seconds")
	}
	cnt, ok := FindSample(samples, "acme_request_seconds_count", L("tricky", ""))
	if !ok || cnt.Value != inf.Value {
		t.Fatalf("_count %v != +Inf bucket %v", cnt.Value, inf.Value)
	}
	if cnt.Value != 5 {
		t.Fatalf("_count = %v, want 5", cnt.Value)
	}
	var sum Sample
	for _, s := range samples {
		if s.Name == "acme_request_seconds_sum" && s.Label("tricky") == "" {
			sum = s
		}
	}
	if want := 0.005 + 0.02 + 0.02 + 0.5 + 3; math.Abs(sum.Value-want) > 1e-12 {
		t.Fatalf("_sum = %v, want %v", sum.Value, want)
	}
	prev := -1.0
	for _, s := range samples {
		if s.Name != "acme_request_seconds_bucket" || s.Label("tricky") != "" {
			continue
		}
		if s.Value < prev {
			t.Fatalf("bucket counts not monotonic: %v after %v", s.Value, prev)
		}
		prev = s.Value
	}

	if s, _ := FindSample(samples, "acme_edge_values", L("case", "inf")); !math.IsInf(s.Value, 1) {
		t.Fatalf("inf gauge parsed as %v", s.Value)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`metric{a="unterminated} 1`,
		`metric{a=unquoted} 1`,
		`metric{a="x",a="y"} 1`,
		`metric notanumber`,
		`0badname 1`,
		"# TYPE m nonsense",
	} {
		if _, err := ParseText([]byte(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
}
